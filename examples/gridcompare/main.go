// Gridcompare: side-by-side Section III characterization of all eight
// systems the paper covers — Google plus the seven Grid/HPC archives —
// printed as one comparison table, with the trace also exported in the
// archive's native format to show the codec round trip.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"

	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/swf"
	"repro/internal/workload"
)

const (
	horizon = 5 * 86400
	seed    = 3
)

func main() {
	tbl := &report.Table{
		ID:    "gridcompare",
		Title: fmt.Sprintf("Workload characterization, %d-day synthetic traces", horizon/86400),
		Columns: []string{
			"system", "jobs", "len p50 (s)", "P(<1000s)", "jobs/h avg",
			"fairness", "CPU p50", "procs p90",
		},
	}

	addRow := func(name string, jobs []repro.Job) {
		lens := workload.JobLengths(jobs)
		rates := workload.SubmissionRates(jobs, horizon)
		cpu := workload.CPUUsage(jobs)
		procs := workload.ProcessorCounts(jobs)
		tbl.AddRow(name,
			fmt.Sprintf("%d", len(jobs)),
			report.I(stats.Quantile(lens, 0.5)),
			report.F2(stats.NewECDF(lens).Eval(1000)),
			report.F(rates.Avg),
			report.F2(rates.Fairness),
			report.F2(stats.Quantile(cpu, 0.5)),
			report.I(stats.Quantile(procs, 0.9)),
		)
	}

	_, gJobs := repro.GenerateGoogleWorkload(horizon, seed)
	addRow("Google", gJobs)

	for _, name := range repro.GridSystemNames() {
		jobs, err := repro.GenerateGridWorkload(name, horizon, seed)
		if err != nil {
			log.Fatal(err)
		}
		addRow(name, jobs)

		// Round-trip one system through the SWF codec as a sanity
		// check that real archive traces flow through the same path.
		if name == "AuverGrid" {
			var buf bytes.Buffer
			w := swf.NewWriter(&buf, swf.SWF)
			if err := w.WriteJobs(jobs); err != nil {
				log.Fatal(err)
			}
			if err := w.Flush(); err != nil {
				log.Fatal(err)
			}
			size := buf.Len()
			back, err := swf.ReadJobs(&buf, swf.SWF, false)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("SWF round trip: %d jobs -> %d bytes -> %d jobs\n\n",
				len(jobs), size, len(back))
		}
	}

	if err := tbl.Render(log.Writer()); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Reading the table against the paper:")
	fmt.Println("  - Google: shortest jobs, highest rate, fairness near 1, single processor.")
	fmt.Println("  - Grids: hour-scale jobs, bursty submissions (fairness << 1), parallel widths.")
}
