// Prediction: the paper's conclusion motivates host-load prediction
// ("we will try to exploit the best-fit load prediction method based
// on our characterization work") and warns that Google load is much
// harder to predict because its noise is ~20x a Grid's and its
// autocorrelation is far lower.
//
// This example runs the internal/predict suite — persistence, moving
// averages, exponential smoothing, AR(1) and a Markov level predictor —
// on simulated Google host load and on synthetic AuverGrid/SHARCNET
// host load, reports per-predictor accuracy, and selects the best-fit
// method per platform.
package main

import (
	"fmt"
	"log"

	"repro"

	"repro/internal/hostload"
	"repro/internal/predict"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

const (
	horizon = 4 * 86400
	seed    = 11
	hosts   = 20
	warmup  = 24 // 2 hours of 5-minute samples
)

func main() {
	fmt.Println("Host-load predictability: Google cloud vs Grid")
	fmt.Printf("(%d hosts each, %d days, 5-minute samples)\n\n", hosts, horizon/86400)

	res, err := repro.SimulateGoogleCluster(hosts, horizon, seed)
	if err != nil {
		log.Fatal(err)
	}
	var google []*timeseries.Series
	for _, m := range res.Machines {
		google = append(google, hostload.RelativeSeries(m, hostload.CPUUsage, trace.LowPriority))
	}

	mkGrid := func(system string) []*timeseries.Series {
		var out []*timeseries.Series
		cfg := synth.DefaultGridHost(system)
		s := rng.New(seed).Child(system)
		for i := 0; i < hosts; i++ {
			cpu, _ := synth.GridHostSeries(cfg, horizon, s.Child(fmt.Sprintf("h%d", i)))
			out = append(out, cpu)
		}
		return out
	}
	populations := []struct {
		name   string
		series []*timeseries.Series
	}{
		{"Google", google},
		{"AuverGrid", mkGrid("AuverGrid")},
		{"SHARCNET", mkGrid("SHARCNET")},
	}

	// Signal statistics first (the paper's Fig 13 numbers).
	fmt.Println("signal statistics (CPU load):")
	for _, pop := range populations {
		noise := hostload.SeriesNoise(pop.series, 2)
		ac := hostload.MeanSeriesAutocorrelation(pop.series, 1)
		fmt.Printf("  %-9s noise mean %.4f   lag-1 autocorrelation %.3f\n", pop.name, noise.Mean, ac)
	}
	fmt.Println()

	// Full predictor suite, MAE per platform.
	fmt.Printf("%-22s", "one-step MAE:")
	for _, pop := range populations {
		fmt.Printf("%12s", pop.name)
	}
	fmt.Println()
	for _, p := range predict.Standard() {
		fmt.Printf("%-22s", p.Name())
		for _, pop := range populations {
			e := predict.EvaluateAll(p, pop.series, warmup)
			fmt.Printf("%12.4f", e.MAE)
		}
		fmt.Println()
	}
	fmt.Println()

	// Best-fit selection per platform (the paper's stated goal).
	fmt.Println("best-fit predictor per platform:")
	var maes []float64
	for _, pop := range populations {
		p, e := predict.Best(predict.Standard(), pop.series, warmup)
		fmt.Printf("  %-9s -> %-20s MAE %.4f  RMSE %.4f  level-hit %.0f%%\n",
			pop.name, p.Name(), e.MAE, e.RMSE, 100*e.LevelHitRate)
		maes = append(maes, e.MAE)
	}
	fmt.Printf("\nGoogle's best error is %.0fx AuverGrid's — matching the paper's\n", maes[0]/maes[1])
	fmt.Println("conclusion that Cloud host load is far harder to predict, and that")
	fmt.Println("prediction should be tailored per platform (and per priority group).")
}
