// Archivefit: close the loop between real archive traces and the
// synthetic models. The example writes an AuverGrid-style trace in SWF
// format (standing in for a downloaded archive file), reads it back
// through the same codec a real trace would use, fits the parametric
// families to its job lengths and interarrival gaps, and prints the
// calibration constants a synth.GridSystem would be built from.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"

	"repro/internal/fit"
	"repro/internal/stats"
	"repro/internal/swf"
	"repro/internal/workload"
)

const (
	horizon = 10 * 86400
	seed    = 17
)

func main() {
	// 1. "Download" an archive trace (here: generate one and serialise
	// it in the archive's own format).
	jobs, err := repro.GenerateGridWorkload("AuverGrid", horizon, seed)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	w := swf.NewWriter(&buf, swf.SWF)
	if err := w.Header("Computer: AuverGrid", fmt.Sprintf("MaxJobs: %d", len(jobs))); err != nil {
		log.Fatal(err)
	}
	if err := w.WriteJobs(jobs); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive file: %d jobs, %d bytes of SWF\n\n", len(jobs), buf.Len())

	// 2. Load it back exactly as a real archive file would be loaded.
	recs, header, err := swf.ReadWithHeader(&buf, swf.SWF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("header: Computer=%s MaxJobs=%s\n", header["Computer"], header["MaxJobs"])
	loaded := make([]repro.Job, 0, len(recs))
	for _, r := range recs {
		loaded = append(loaded, r.ToJob())
	}

	// 3. Fit the parametric families to the trace's key dimensions.
	fmt.Println("\nfitted models (ranked by one-sample KS distance):")
	dims := []struct {
		name   string
		sample []float64
	}{
		{"job length (s)", positive(workload.JobLengths(loaded))},
		{"interarrival gap (s)", positive(workload.SubmissionIntervals(loaded))},
		{"memory (MB)", positive(memoryOf(loaded))},
	}
	for _, d := range dims {
		models, err := fit.Fit(d.sample)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s", d.name)
		for i, m := range models {
			if i >= 2 {
				break
			}
			fmt.Printf("  %s %v (KS %.3f)", m.Name, round(m.Params), m.KS)
		}
		fmt.Println()
	}

	// 4. The calibration constants a GridSystem would carry.
	lens := workload.JobLengths(loaded)
	rates := workload.SubmissionRates(loaded, horizon)
	fmt.Println("\ncalibration constants for a synth.GridSystem:")
	fmt.Printf("  arrivals:  %.1f jobs/hour, fairness %.2f\n", rates.Avg, rates.Fairness)
	fmt.Printf("  lengths:   median %.0f s, p90 %.0f s, max %.1f d\n",
		stats.Quantile(lens, 0.5), stats.Quantile(lens, 0.9), stats.Max(lens)/86400)
	mc := workload.SummarizeMassCount(lens)
	fmt.Printf("  mass-count: joint ratio %.0f/%.0f, mm-distance %.1f h\n",
		mc.JointItems, mc.JointMass, mc.MMDistance/3600)
}

func positive(xs []float64) []float64 {
	out := xs[:0:0]
	for _, x := range xs {
		if x > 0 {
			out = append(out, x)
		}
	}
	return out
}

func memoryOf(jobs []repro.Job) []float64 {
	out := make([]float64, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.MemAvg)
	}
	return out
}

func round(params map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(params))
	for k, v := range params {
		out[k] = float64(int(v*1000)) / 1000
	}
	return out
}
