// Quickstart: generate a Cloud (Google) and a Grid (AuverGrid)
// workload, run the paper's headline characterizations and print the
// comparison — job lengths, submission behaviour and resource usage.
package main

import (
	"fmt"
	"log"

	"repro"

	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const horizon = 2 * 86400 // two days
	const seed = 42

	fmt.Println("Generating workloads (2 days)...")
	gTasks, gJobs := repro.GenerateGoogleWorkload(horizon, seed)
	agJobs, err := repro.GenerateGridWorkload("AuverGrid", horizon, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Google:    %d jobs, %d tasks\n", len(gJobs), len(gTasks))
	fmt.Printf("  AuverGrid: %d jobs\n\n", len(agJobs))

	// Job lengths (paper Fig 3).
	gLens := workload.JobLengths(gJobs)
	agLens := workload.JobLengths(agJobs)
	fmt.Println("Job length (submission to completion):")
	fmt.Printf("  Google    median %6.0f s, P(<1000s)=%.0f%%\n",
		stats.Quantile(gLens, 0.5), 100*stats.NewECDF(gLens).Eval(1000))
	fmt.Printf("  AuverGrid median %6.0f s, P(<1000s)=%.0f%%\n\n",
		stats.Quantile(agLens, 0.5), 100*stats.NewECDF(agLens).Eval(1000))

	// Task-length heavy tail (paper Fig 4).
	mc := workload.SummarizeMassCount(workload.TaskLengths(gTasks))
	fmt.Printf("Google task lengths: joint ratio %.0f/%.0f (paper: 6/94) — %.0f%% of tasks carry %.0f%% of the compute mass\n\n",
		mc.JointItems, mc.JointMass, mc.JointItems, mc.JointMass)

	// Submission behaviour (paper Table I).
	gr := workload.SubmissionRates(gJobs, horizon)
	ar := workload.SubmissionRates(agJobs, horizon)
	fmt.Println("Submissions per hour (max/avg/min, Jain fairness):")
	fmt.Printf("  Google    %4.0f / %5.1f / %3.0f   fairness %.2f\n", gr.Max, gr.Avg, gr.Min, gr.Fairness)
	fmt.Printf("  AuverGrid %4.0f / %5.1f / %3.0f   fairness %.2f\n\n", ar.Max, ar.Avg, ar.Min, ar.Fairness)

	// Host load: run a small cluster simulation (paper Section IV).
	fmt.Println("Simulating a 25-machine Google-style cluster...")
	res, err := repro.SimulateGoogleCluster(25, horizon, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d scheduling attempts, %.1f%% abnormal completions (paper: 59.2%%)\n",
		res.Stats.Attempts, 100*res.Stats.AbnormalFraction())
	m := res.Machines[0]
	cpu := m.CPU()
	fmt.Printf("  machine 0: mean CPU %.2f of capacity %.2f, CPU noise %.4f\n",
		stats.Mean(cpu.Values), m.Machine.CPU, cpu.Noise(2))
	fmt.Println("\nDone. See cmd/repro for the full table/figure reproduction.")
}
