// Consolidation: the capacity-planning scenario from the paper's
// introduction — "the resource management system can proactively shift
// and consolidate load via (VM) migration to improve host utilization,
// using fewer machines and shutting off unneeded hosts."
//
// The example simulates a Google-style cluster, aggregates the
// cluster-wide demand with internal/capacity, and answers: how many
// machines would suffice to pack the observed load under target
// utilisation ceilings — and how much headroom must be left for the
// load noise the paper measures? It closes with a placement-policy
// comparison.
package main

import (
	"fmt"
	"log"

	"repro/internal/capacity"
	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/synth"
)

const (
	machines = 60
	horizon  = 3 * 86400
	seed     = 7
	// Target ceilings: the paper notes Google reserves headroom "to
	// meet service level objectives in case of unexpected load spikes".
	cpuCeiling = 0.70
	memCeiling = 0.85
)

func main() {
	s := rng.New(seed)
	park := synth.GoogleMachines(machines, s.Child("machines"))
	gcfg := synth.ScaledGoogleConfig(machines, horizon)
	tasks := synth.GenerateGoogleTasks(gcfg, s.Child("workload"))

	cfg := cluster.DefaultConfig(park, horizon)
	res, err := cluster.Simulate(cfg, tasks, s.Child("sim"))
	if err != nil {
		log.Fatal(err)
	}

	demand, err := capacity.ClusterDemand(res.Machines)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := capacity.MakePlan(demand, cpuCeiling, memCeiling)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Consolidation study: %d machines, %d days\n\n", machines, horizon/86400)
	fmt.Printf("mean cluster CPU utilisation: %.1f%%   memory: %.1f%%\n",
		100*plan.MeanCPUUtil, 100*plan.MeanMemUtil)
	fmt.Printf("machines needed (ceilings %.0f%% CPU / %.0f%% mem):\n", 100*cpuCeiling, 100*memCeiling)
	fmt.Printf("  p50: %.0f   p90: %.0f   p99: %.0f   max: %.0f   (of %d)\n",
		plan.P50, plan.P90, plan.P99, plan.Peak, machines)
	fmt.Printf("  => %.0f machines (%.0f%%) could be powered down outside the p99 peak\n\n",
		plan.FreeableAtP99, 100*plan.FreeableAtP99/machines)

	// The volatility caveat: consolidation must absorb the load noise
	// the paper measures (Google noise ~20x a Grid's).
	headroom := capacity.NoiseHeadroom(res.Machines, 2, 3)
	fmt.Printf("3-sigma noise headroom per host: %.0f%% of capacity\n", 100*headroom)
	fmt.Printf("  => effective CPU ceiling after headroom: %.0f%%\n\n", 100*(cpuCeiling-headroom))

	// Placement-policy comparison: how evenly does each policy load
	// the park? (Balanced = the paper's Google scheduler; best-fit
	// packs tightly, enabling shutdowns without migration.)
	fmt.Println("placement policy comparison (mean CPU per machine, spread):")
	for _, pol := range []cluster.Policy{cluster.Balanced, cluster.BestFit, cluster.Random} {
		c := cluster.DefaultConfig(park, horizon)
		c.Placement = pol
		r, err := cluster.Simulate(c, synth.GenerateGoogleTasks(gcfg, rng.New(seed).Child("workload")), rng.New(seed).Child("sim"))
		if err != nil {
			log.Fatal(err)
		}
		sp := capacity.Spread(r.Machines, 0.02)
		fmt.Printf("  %-9s mean %.3f  std %.3f  near-idle machines %d/%d\n",
			pol, sp.MeanLoad, sp.StdLoad, sp.NearIdle, machines)
	}
	fmt.Println("\nBest-fit concentrates load onto fewer hosts (shutdown-friendly);")
	fmt.Println("balanced spreads it (the paper's observed Google behaviour).")
}
