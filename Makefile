GO ?= go
# Bench time for bench-json / bench-diff. The 100ms default keeps
# bench-diff fast enough for make check while still giving the
# nanosecond-scale micro-benches enough iterations to mean something;
# use BENCHTIME=1s for numbers worth committing.
BENCHTIME ?= 100ms
# Current benchmark snapshot file, and the newest committed one to
# diff against. The baseline must be picked by the *numeric* PR suffix:
# make's $(sort) is lexical, so it would rank BENCH_pr10.json before
# BENCH_pr2.json and silently diff against a stale snapshot once the
# PR counter hits double digits. sort -t_ -k2.3 -n keys on the digits
# after "BENCH_pr" instead.
BENCH_OUT ?= BENCH_pr7.json
BENCH_BASE ?= $(shell ls BENCH_pr*.json 2>/dev/null | grep -vx '$(BENCH_OUT)' | sort -t_ -k2.3 -n | tail -n1)

.PHONY: build test race bench bench-parallel verify repro-quick check ci fmt-check bench-json bench-diff chaos smoke-replicas

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The concurrency gate: the parallel experiment pipeline and the
# index-sharded analysis scans must stay race-clean.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Serial-vs-parallel pipeline wall time.
bench-parallel:
	$(GO) test -bench='BenchmarkRunAll(Serial|Parallel)$$' -run=^$$ .

verify: test race

# Chaos suite: deterministic fault injection end to end. The headline
# invariant is that a chaos run under -keep-going emits byte-identical
# artifacts for every experiment the fault did not touch, plus the
# signal-handling, retry, and checkpoint-resume contracts.
chaos:
	$(GO) test -run 'TestChaos|TestCLIChaos|TestSIG|TestBuildRetry|TestBuildFails|TestCLICheckpoint|TestCheckpointResume' \
		./cmd/repro ./internal/core
	$(GO) test ./internal/fault ./internal/ckpt ./internal/replica
	$(GO) test -run 'TestSimulateCtx|TestSimulateFaultSite|TestPanicStops|TestForEachCtx' \
		./internal/cluster ./internal/par
	$(GO) test -run 'TestHealthzDegraded|TestPeerFill|TestCacheFill' ./internal/serve

# Multi-replica fleet smoke: 3 daemons over one shared checkpoint dir
# (one chaos-armed), reprobench -strict against all three, single-signal
# drain. The same contract the CI multi-replica-smoke job gates on.
smoke-replicas:
	./scripts/multi_replica_smoke.sh

# Fail if any file needs gofmt. Kept as its own target so both make
# check and the CI workflow gate on the exact same command.
fmt-check:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

# Full hygiene gate: formatting, vet, the race detector, the
# instrumentation-never-changes-outputs invariant, and the chaos suite.
check: fmt-check chaos
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run 'TestInstrumentationByteIdentical|TestInstrumentationDoesNotChangeResults' \
		./cmd/repro ./internal/core
	$(GO) test -run 'TestReferencePlacementByteIdentical' ./internal/cluster
	$(GO) test -run 'TestSketchMatchesExact|TestUsageSketchMatchesExactUsage' ./internal/stats ./internal/hostload
	$(GO) test -run 'TestMetricsExposition|TestAccessLogWritten|TestMultiReplicaSmoke' ./cmd/reprod
	$(GO) test -run 'TestColdRequestTraceChain|TestServedBytesIdenticalTraced|TestETag|TestTwoReplicas|TestLeaseTakeover' \
		./internal/serve ./internal/replica
	$(MAKE) smoke-replicas
	-$(MAKE) bench-diff BENCH_OUT=/tmp/BENCH_check.json

# Machine-readable benchmark snapshot: the pipeline benches (including
# the resilient-runner overhead and warm checkpoint-resume pair) plus
# the simulator, observability, and checkpoint micro-benches, and the
# reprobench serving load test (hot/cold mix against a self-hosted
# daemon, with the server-vs-client quantile cross-check), as JSON.
bench-json:
	$(GO) test -bench='BenchmarkRunAll(Serial|Parallel|ParallelInstrumented|ParallelResilient|CheckpointWarm)$$' -benchmem -benchtime=$(BENCHTIME) -run=^$$ . > /tmp/bench_root.txt
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run=^$$ ./internal/cluster >> /tmp/bench_root.txt
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run=^$$ ./internal/obs >> /tmp/bench_root.txt
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run=^$$ ./internal/ckpt >> /tmp/bench_root.txt
	$(GO) test -bench='BenchmarkUsageSamples(Exact|Streaming)$$' -benchmem -benchtime=$(BENCHTIME) -run=^$$ ./internal/hostload >> /tmp/bench_root.txt
	$(GO) run ./cmd/reprobench -requests 128 -concurrency 8 >> /tmp/bench_root.txt
	cat /tmp/bench_root.txt | $(GO) run ./cmd/benchjson > $(BENCH_OUT)
	@echo wrote $(BENCH_OUT)

# Re-run the bench suite and diff it against the newest committed
# snapshot. Exits non-zero if any benchmark's ns/op or allocs/op
# regressed beyond benchjson's threshold (10% by default).
bench-diff: bench-json
	$(GO) run ./cmd/benchjson -old $(BENCH_BASE) -new $(BENCH_OUT)

# What .github/workflows/ci.yml runs, runnable locally so "CI is red"
# never needs a push to debug. bench-diff is advisory there (a separate
# continue-on-error job), so it is advisory here too: the leading dash
# keeps a perf regression from masking a correctness failure.
ci: fmt-check build test race chaos smoke-replicas
	-$(MAKE) bench-diff BENCH_OUT=/tmp/BENCH_ci.json

repro-quick:
	$(GO) run ./cmd/repro -scale quick
