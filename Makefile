GO ?= go

.PHONY: build test race bench verify repro-quick check bench-json chaos

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The concurrency gate: the parallel experiment pipeline and the
# index-sharded analysis scans must stay race-clean.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Serial-vs-parallel pipeline wall time.
bench-parallel:
	$(GO) test -bench='BenchmarkRunAll(Serial|Parallel)$$' -run=^$$ .

verify: test race

# Chaos suite: deterministic fault injection end to end. The headline
# invariant is that a chaos run under -keep-going emits byte-identical
# artifacts for every experiment the fault did not touch, plus the
# signal-handling, retry, and checkpoint-resume contracts.
chaos:
	$(GO) test -run 'TestChaos|TestCLIChaos|TestSIG|TestBuildRetry|TestBuildFails|TestCLICheckpoint|TestCheckpointResume' \
		./cmd/repro ./internal/core
	$(GO) test ./internal/fault ./internal/ckpt
	$(GO) test -run 'TestSimulateCtx|TestSimulateFaultSite|TestPanicStops|TestForEachCtx' \
		./internal/cluster ./internal/par

# Full hygiene gate: formatting, vet, the race detector, the
# instrumentation-never-changes-outputs invariant, and the chaos suite.
check: chaos
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run 'TestInstrumentationByteIdentical|TestInstrumentationDoesNotChangeResults' \
		./cmd/repro ./internal/core

# Machine-readable benchmark snapshot: the pipeline benches (including
# the resilient-runner overhead and warm checkpoint-resume pair) plus
# the simulator, observability, and checkpoint micro-benches, as JSON.
bench-json:
	$(GO) test -bench='BenchmarkRunAll(Serial|Parallel|ParallelInstrumented|ParallelResilient|CheckpointWarm)$$' -benchmem -run=^$$ . > /tmp/bench_root.txt
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/cluster >> /tmp/bench_root.txt
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/obs >> /tmp/bench_root.txt
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/ckpt >> /tmp/bench_root.txt
	cat /tmp/bench_root.txt | $(GO) run ./cmd/benchjson > BENCH_pr3.json
	@echo wrote BENCH_pr3.json

repro-quick:
	$(GO) run ./cmd/repro -scale quick
