GO ?= go

.PHONY: build test race bench verify repro-quick check bench-json

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The concurrency gate: the parallel experiment pipeline and the
# index-sharded analysis scans must stay race-clean.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Serial-vs-parallel pipeline wall time.
bench-parallel:
	$(GO) test -bench='BenchmarkRunAll(Serial|Parallel)$$' -run=^$$ .

verify: test race

# Full hygiene gate: formatting, vet, the race detector, and the
# instrumentation-never-changes-outputs invariant.
check:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run 'TestInstrumentationByteIdentical|TestInstrumentationDoesNotChangeResults' \
		./cmd/repro ./internal/core

# Machine-readable benchmark snapshot: the pipeline benches plus the
# simulator and observability micro-benches, as JSON.
bench-json:
	$(GO) test -bench='BenchmarkRunAll(Serial|Parallel|ParallelInstrumented)$$' -benchmem -run=^$$ . > /tmp/bench_root.txt
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/cluster >> /tmp/bench_root.txt
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/obs >> /tmp/bench_root.txt
	cat /tmp/bench_root.txt | $(GO) run ./cmd/benchjson > BENCH_pr2.json
	@echo wrote BENCH_pr2.json

repro-quick:
	$(GO) run ./cmd/repro -scale quick
