GO ?= go

.PHONY: build test race bench verify repro-quick

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The concurrency gate: the parallel experiment pipeline and the
# index-sharded analysis scans must stay race-clean.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Serial-vs-parallel pipeline wall time.
bench-parallel:
	$(GO) test -bench='BenchmarkRunAll(Serial|Parallel)$$' -run=^$$ .

verify: test race

repro-quick:
	$(GO) run ./cmd/repro -scale quick
