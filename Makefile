GO ?= go
# Bench time for bench-json / bench-diff. The 100ms default keeps
# bench-diff fast enough for make check while still giving the
# nanosecond-scale micro-benches enough iterations to mean something;
# use BENCHTIME=1s for numbers worth committing.
BENCHTIME ?= 100ms
# Current benchmark snapshot file, and the newest committed one to
# diff against.
BENCH_OUT ?= BENCH_pr4.json
BENCH_BASE ?= $(lastword $(sort $(filter-out $(BENCH_OUT),$(wildcard BENCH_pr*.json))))

.PHONY: build test race bench verify repro-quick check bench-json bench-diff chaos

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The concurrency gate: the parallel experiment pipeline and the
# index-sharded analysis scans must stay race-clean.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Serial-vs-parallel pipeline wall time.
bench-parallel:
	$(GO) test -bench='BenchmarkRunAll(Serial|Parallel)$$' -run=^$$ .

verify: test race

# Chaos suite: deterministic fault injection end to end. The headline
# invariant is that a chaos run under -keep-going emits byte-identical
# artifacts for every experiment the fault did not touch, plus the
# signal-handling, retry, and checkpoint-resume contracts.
chaos:
	$(GO) test -run 'TestChaos|TestCLIChaos|TestSIG|TestBuildRetry|TestBuildFails|TestCLICheckpoint|TestCheckpointResume' \
		./cmd/repro ./internal/core
	$(GO) test ./internal/fault ./internal/ckpt
	$(GO) test -run 'TestSimulateCtx|TestSimulateFaultSite|TestPanicStops|TestForEachCtx' \
		./internal/cluster ./internal/par

# Full hygiene gate: formatting, vet, the race detector, the
# instrumentation-never-changes-outputs invariant, and the chaos suite.
check: chaos
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run 'TestInstrumentationByteIdentical|TestInstrumentationDoesNotChangeResults' \
		./cmd/repro ./internal/core
	$(GO) test -run 'TestReferencePlacementByteIdentical' ./internal/cluster
	-$(MAKE) bench-diff BENCH_OUT=/tmp/BENCH_check.json

# Machine-readable benchmark snapshot: the pipeline benches (including
# the resilient-runner overhead and warm checkpoint-resume pair) plus
# the simulator, observability, and checkpoint micro-benches, as JSON.
bench-json:
	$(GO) test -bench='BenchmarkRunAll(Serial|Parallel|ParallelInstrumented|ParallelResilient|CheckpointWarm)$$' -benchmem -benchtime=$(BENCHTIME) -run=^$$ . > /tmp/bench_root.txt
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run=^$$ ./internal/cluster >> /tmp/bench_root.txt
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run=^$$ ./internal/obs >> /tmp/bench_root.txt
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run=^$$ ./internal/ckpt >> /tmp/bench_root.txt
	cat /tmp/bench_root.txt | $(GO) run ./cmd/benchjson > $(BENCH_OUT)
	@echo wrote $(BENCH_OUT)

# Re-run the bench suite and diff it against the newest committed
# snapshot. Exits non-zero if any benchmark's ns/op or allocs/op
# regressed beyond benchjson's threshold (10% by default).
bench-diff: bench-json
	$(GO) run ./cmd/benchjson -old $(BENCH_BASE) -new $(BENCH_OUT)

repro-quick:
	$(GO) run ./cmd/repro -scale quick
