package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gtrace"
	"repro/internal/swf"
)

func TestGenerateGoogleTrace(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code := run([]string{"-system", "Google", "-machines", "5", "-days", "1", "-out", dir}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, name := range []string{"machine_events.csv", "task_events.csv", "task_usage.csv"} {
		path := filepath.Join(dir, name)
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s empty", name)
		}
	}
	// The generated trace must decode and validate.
	mf, _ := os.Open(filepath.Join(dir, "machine_events.csv"))
	ef, _ := os.Open(filepath.Join(dir, "task_events.csv"))
	uf, _ := os.Open(filepath.Join(dir, "task_usage.csv"))
	defer mf.Close()
	defer ef.Close()
	defer uf.Close()
	tr, err := gtrace.Decode(mf, ef, uf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if len(tr.Machines) != 5 {
		t.Fatalf("machines %d", len(tr.Machines))
	}
}

func TestGenerateGridTraceSWF(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code := run([]string{"-system", "AuverGrid", "-days", "1", "-out", dir}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	path := filepath.Join(dir, "AuverGrid.swf")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	jobs, err := swf.ReadJobs(f, swf.SWF, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("no jobs in SWF output")
	}
	if !strings.Contains(out.String(), "AuverGrid.swf") {
		t.Fatalf("output missing path: %s", out.String())
	}
}

func TestGenerateGridTraceGWA(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code := run([]string{"-system", "DAS-2", "-days", "1", "-format", "gwa", "-out", dir}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	f, err := os.Open(filepath.Join(dir, "DAS-2.gwa"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	jobs, err := swf.ReadJobs(f, swf.GWA, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("no jobs in GWA output")
	}
}

func TestGenerateGoogleTraceWithChurn(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code := run([]string{"-system", "Google", "-machines", "4", "-days", "2",
		"-churn-mtbf-hours", "8", "-out", dir}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "machine_events.csv"))
	if err != nil {
		t.Fatal(err)
	}
	// REMOVE rows (event type 1) must appear with churn enabled.
	hasRemove := false
	for _, line := range strings.Split(string(data), "\n") {
		parts := strings.Split(line, ",")
		if len(parts) >= 3 && parts[2] == "1" {
			hasRemove = true
		}
	}
	if !hasRemove {
		t.Fatalf("no REMOVE rows in churned trace:\n%s", string(data))
	}
	// The trace still decodes to exactly 4 machines.
	ms, err := gtrace.DecodeMachines(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("decoded %d machines", len(ms))
	}
}

func TestBadArguments(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-system", "Nope", "-out", t.TempDir()}, &out, &errOut); code == 0 {
		t.Fatal("unknown system accepted")
	}
	if code := run([]string{"-system", "AuverGrid", "-format", "xml", "-out", t.TempDir()}, &out, &errOut); code != 2 {
		t.Fatal("unknown format accepted")
	}
	if code := run([]string{"-badflag"}, &out, &errOut); code != 2 {
		t.Fatal("bad flag accepted")
	}
}
