// Command tracegen generates synthetic workload traces in the archive
// formats the paper's analyses consume.
//
// Google traces are produced by running the calibrated workload
// through the cluster simulator and are written in the clusterdata-v1
// three-table CSV layout (machine_events, task_events, task_usage).
// Grid traces are written in SWF (Parallel Workload Archive) or GWA
// (Grid Workload Archive) format.
//
// Usage:
//
//	tracegen -system Google -machines 50 -days 2 -out dir/
//	tracegen -system AuverGrid -days 30 -format swf -out dir/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/cluster"
	"repro/internal/gtrace"
	"repro/internal/rng"
	"repro/internal/swf"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		system   = fs.String("system", "Google", "Google, AuverGrid, NorduGrid, SHARCNET, ANL, RICC, MetaCentrum, LLNL-Atlas or DAS-2")
		days     = fs.Int("days", 2, "trace horizon in days")
		seed     = fs.Uint64("seed", 1, "random seed")
		machines = fs.Int("machines", 50, "Google: simulated machine count")
		format   = fs.String("format", "", "grid output format: swf (default) or gwa")
		out      = fs.String("out", ".", "output directory")
		mtbf     = fs.Int("churn-mtbf-hours", 0, "Google: machine mean time between failures (0 = no churn)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	horizon := int64(*days) * 86400
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(stderr, "tracegen: %v\n", err)
		return 1
	}

	var err error
	if *system == "Google" {
		err = genGoogle(stdout, *machines, horizon, *seed, *out, int64(*mtbf)*3600)
	} else {
		f := swf.SWF
		ext := "swf"
		switch *format {
		case "", "swf":
		case "gwa":
			f, ext = swf.GWA, "gwa"
		default:
			fmt.Fprintf(stderr, "tracegen: unknown format %q\n", *format)
			return 2
		}
		err = genGrid(stdout, *system, horizon, *seed, f,
			filepath.Join(*out, fmt.Sprintf("%s.%s", *system, ext)))
	}
	if err != nil {
		fmt.Fprintf(stderr, "tracegen: %v\n", err)
		return 1
	}
	return 0
}

func genGoogle(stdout io.Writer, machines int, horizon int64, seed uint64, out string, churnMTBF int64) error {
	s := rng.New(seed)
	park := synth.GoogleMachines(machines, s.Child("machines"))
	gcfg := synth.ScaledGoogleConfig(machines, horizon)
	tasks := synth.GenerateGoogleTasks(gcfg, s.Child("workload"))
	cfg := cluster.DefaultConfig(park, horizon)
	cfg.EmitUsage = true
	if churnMTBF > 0 {
		cfg.ChurnMTBF = churnMTBF
		cfg.ChurnDowntime = 1800
	}
	res, err := cluster.Simulate(cfg, tasks, s.Child("sim"))
	if err != nil {
		return err
	}
	tr := &trace.Trace{
		System: "Google", Horizon: horizon,
		Machines: park, Events: res.Events, Usage: res.Usage,
	}
	tr.SortEvents()

	write := func(name string, enc func(f *os.File) error) error {
		path := filepath.Join(out, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := enc(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
		return f.Close()
	}
	transitions := make([]gtrace.MachineTransition, 0, len(res.MachineEvents))
	for _, me := range res.MachineEvents {
		transitions = append(transitions, gtrace.MachineTransition{
			Time: me.Time, Machine: me.Machine, Up: me.Up,
		})
	}
	if err := write("machine_events.csv", func(f *os.File) error {
		return gtrace.EncodeMachineEvents(f, tr.Machines, transitions)
	}); err != nil {
		return err
	}
	if err := write("task_events.csv", func(f *os.File) error {
		return gtrace.EncodeEvents(f, tr.Events)
	}); err != nil {
		return err
	}
	if err := write("task_usage.csv", func(f *os.File) error {
		return gtrace.EncodeUsage(f, tr.Usage)
	}); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "google trace: %d machines, %d events, %d usage samples, abnormal %.1f%%\n",
		len(tr.Machines), len(tr.Events), len(tr.Usage), 100*res.Stats.AbnormalFraction())
	return nil
}

func genGrid(stdout io.Writer, system string, horizon int64, seed uint64, format swf.Format, path string) error {
	sys, err := synth.SystemByName(system)
	if err != nil {
		return err
	}
	jobs := sys.Generate(horizon, rng.New(seed))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := swf.NewWriter(f, format)
	if err := w.Header(
		fmt.Sprintf("Computer: %s (synthetic, CLUSTER'12 reproduction)", system),
		fmt.Sprintf("MaxJobs: %d", len(jobs)),
		"UnixStartTime: 0",
	); err != nil {
		return err
	}
	if err := w.WriteJobs(jobs); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d jobs)\n", path, len(jobs))
	return f.Close()
}
