// Command reprobench load-tests the reprod serving daemon the way the
// repo benchmarks the simulator: it drives a deterministic mix of hot
// (cache-served) and cold (build-triggering) artifact requests, measures
// client-side latency quantiles and throughput, then scrapes the
// daemon's own Prometheus /metrics and cross-checks the server-side
// sketch quantiles against what the client observed — the two views
// must agree within the sketch's documented error bound plus network
// overhead.
//
// Usage:
//
//	reprobench [-addr host:port] [-requests n] [-concurrency n]
//	           [-cold-every n] [-machines n] [-sim-days n]
//	           [-workload-days n] [-seed n] [-trace-out file] [-strict]
//
// With no -addr, reprobench self-hosts an in-process daemon on a
// loopback listener (scenario from -machines/-sim-days/-workload-days,
// default a seconds-fast tiny config), so `make bench-json` needs no
// running service. Against an external -addr the scenario flags are
// ignored and cold requests derive fresh scenarios from the daemon's
// base config via ?seed=.
//
// Output is `go test -bench` text on stdout — one line per traffic
// class with ns/op (mean client latency), req/s, p50_s/p99_s client
// quantiles and srv_p50_s/srv_p99_s server-sketch quantiles — so the
// existing cmd/benchjson pipeline ingests it unchanged:
//
//	reprobench | benchjson > BENCH_serve.json
//
// The cross-check prints to stderr and is advisory by default; -strict
// exits 1 when the server-side quantile exceeds the client-side one
// beyond the documented bound (server time is a strict subset of
// client time, so server > client means the telemetry lies).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// hotArtifact is the artifact the hot class hammers; cold requests ask
// for the same artifact under fresh ?seed= scenarios, forcing a
// context build + experiment run per distinct seed.
const hotArtifact = "fig2"

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reprobench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "", "daemon(s) to benchmark, comma-separated for a replica fleet (empty: self-host in-process)")
		requests     = fs.Int("requests", 256, "total timed requests")
		concurrency  = fs.Int("concurrency", 8, "concurrent client workers")
		coldEvery    = fs.Int("cold-every", 16, "every nth request is cold (fresh ?seed= scenario; 0 = all hot)")
		machines     = fs.Int("machines", 4, "self-host scenario: machines")
		simDays      = fs.Int("sim-days", 1, "self-host scenario: simulation horizon (days)")
		workloadDays = fs.Int("workload-days", 1, "self-host scenario: workload horizon (days)")
		seed         = fs.Uint64("seed", 7, "self-host scenario seed and cold-seed base")
		traceOut     = fs.String("trace-out", "", "write a sample Chrome trace scraped from /debug/trace here")
		strict       = fs.Bool("strict", false, "exit 1 when the server/client quantile cross-check fails")
		timeout      = fs.Duration("timeout", 120*time.Second, "per-request client timeout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *requests < 1 || *concurrency < 1 || *coldEvery < 0 {
		fmt.Fprintf(stderr, "reprobench: -requests and -concurrency must be >= 1, -cold-every >= 0\n")
		return 2
	}
	if *machines < 1 || *simDays < 1 || *workloadDays < 1 {
		fmt.Fprintf(stderr, "reprobench: scenario flags must be positive\n")
		return 2
	}

	// -addr accepts a comma-separated replica fleet; requests round-robin
	// across it and the report adds per-replica quantile lines. A single
	// address (or self-hosting) keeps the exact single-daemon output.
	var targets []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			targets = append(targets, a)
		}
	}
	var shutdown func()
	if len(targets) == 0 {
		cfg := core.QuickConfig()
		cfg.Seed = *seed
		cfg.Machines = *machines
		cfg.SimHorizon = int64(*simDays) * 86400
		cfg.WorkloadHorizon = int64(*workloadDays) * 86400
		target, sd, err := selfHost(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "reprobench: %v\n", err)
			return 1
		}
		targets, shutdown = []string{target}, sd
		defer shutdown()
		fmt.Fprintf(stderr, "reprobench: self-hosted daemon on %s\n", target)
	}
	bases := make([]string, len(targets))
	for i, t := range targets {
		bases[i] = "http://" + t
	}
	base := bases[0]
	client := &http.Client{Timeout: *timeout}

	// Warm the hot artifact on every replica so the hot class measures
	// cache service, not one giant first build amortized over the run.
	// Across a fleet sharing a checkpoint store the first warmup builds
	// and the rest fill from the store or a peer.
	for _, b := range bases {
		if code, err := get(client, b+"/v1/artifacts/"+hotArtifact); err != nil || code != http.StatusOK {
			fmt.Fprintf(stderr, "reprobench: warmup GET %s: status %d err %v\n", b, code, err)
			return 1
		}
	}

	// Timed phase: worker pool draining a deterministic request index.
	// Request i is cold when coldEvery > 0 and (i+1)%coldEvery == 0;
	// each cold request gets its own seed, so each is a genuinely cold
	// scenario (LRU-evicted seeds stay cold if revisited).
	lat := make([]time.Duration, *requests)
	cold := make([]bool, *requests)
	var failures atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	wallStart := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				url := bases[i%len(bases)] + "/v1/artifacts/" + hotArtifact
				if *coldEvery > 0 && (i+1)%*coldEvery == 0 {
					cold[i] = true
					url = fmt.Sprintf("%s?seed=%d", url, *seed+1000+uint64(i))
				}
				t0 := time.Now()
				code, err := get(client, url)
				lat[i] = time.Since(t0)
				if err != nil || code != http.StatusOK {
					failures.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(wallStart)
	if n := failures.Load(); n > 0 {
		fmt.Fprintf(stderr, "reprobench: %d/%d requests failed\n", n, *requests)
		return 1
	}

	// Client-side stats per class, quantiles by the same ⌈p·n⌉ order
	// statistic stats.Sketch uses, so the two sides are comparable.
	// byReplica buckets every request's latency by the replica that
	// served it (request i went to replica i mod len(bases)).
	var hotLat, coldLat, allLat []float64
	byReplica := make([][]float64, len(bases))
	for i, d := range lat {
		s := d.Seconds()
		allLat = append(allLat, s)
		byReplica[i%len(bases)] = append(byReplica[i%len(bases)], s)
		if cold[i] {
			coldLat = append(coldLat, s)
		} else {
			hotLat = append(hotLat, s)
		}
	}
	emit := func(name string, ls []float64, extra map[string]float64) {
		if len(ls) == 0 {
			return
		}
		sorted := append([]float64(nil), ls...)
		slices.Sort(sorted)
		mean := 0.0
		for _, v := range ls {
			mean += v
		}
		mean /= float64(len(ls))
		line := fmt.Sprintf("%s \t%8d\t%12.0f ns/op\t%10.1f req/s\t%.6f p50_s\t%.6f p99_s",
			name, len(ls), mean*1e9, float64(len(ls))/wall.Seconds(),
			quantile(sorted, 0.5), quantile(sorted, 0.99))
		for _, k := range sortedKeys(extra) {
			line += fmt.Sprintf("\t%.6f %s", extra[k], k)
		}
		fmt.Fprintln(stdout, line)
	}

	// Server-side view: scrape and validate every replica's Prometheus
	// exposition, pull the artifact endpoint's sketch quantiles.
	srvP50 := make([]float64, len(bases))
	srvP99 := make([]float64, len(bases))
	srvCount := make([]int, len(bases))
	for r, b := range bases {
		p50, p99, cnt, err := scrapeQuantiles(client, b)
		if err != nil {
			fmt.Fprintf(stderr, "reprobench: scrape %s: %v\n", b, err)
			return 1
		}
		srvP50[r], srvP99[r], srvCount[r] = p50, p99, cnt
	}
	fmt.Fprintln(stdout, "goos: "+runtime.GOOS)
	fmt.Fprintln(stdout, "goarch: "+runtime.GOARCH)
	fmt.Fprintln(stdout, "pkg: repro/cmd/reprobench")
	emit("BenchmarkServeHot", hotLat, nil)
	emit("BenchmarkServeCold", coldLat, nil)
	if len(bases) == 1 {
		// Single daemon: one aggregate line carrying its server-side
		// quantiles — byte-compatible with the pre-fleet output.
		emit("BenchmarkServeAll", allLat, map[string]float64{
			"srv_p50_s": srvP50[0], "srv_p99_s": srvP99[0],
		})
	} else {
		// Fleet: the aggregate line is pure client-side (N independent
		// server sketches have no common quantile), and each replica
		// gets its own sub-benchmark line pairing the client latencies
		// it served with its own sketch quantiles.
		emit("BenchmarkServeAll", allLat, nil)
		for r := range bases {
			emit(fmt.Sprintf("BenchmarkServeAll/replica=%d", r), byReplica[r], map[string]float64{
				"srv_p50_s": srvP50[r], "srv_p99_s": srvP99[r],
			})
		}
	}

	// Cross-check, per replica. Server-measured time nests strictly
	// inside client-measured time, so pointwise the server never exceeds
	// the client. Quantiles complicate that: the server population
	// carries one extra sample (the warmup build), so its ⌈p·n⌉ order
	// statistic can sit one rank above the client's — and when queueing
	// makes the distribution steep at the median (1-core hosts), one
	// rank is a multiplicative jump. The gate therefore compares each
	// server quantile against the client's order statistic two ranks up,
	// then applies the sketch's documented relative error plus a small
	// absolute allowance. The reverse gap (client >> server) is expected
	// HTTP/loopback overhead and is reported, not gated.
	bound := serve.LatencySketchRelError
	const absSlack = 2e-3 // scrape racing the tail + timer granularity
	allOK := true
	for r := range bases {
		clientSorted := append([]float64(nil), byReplica[r]...)
		slices.Sort(clientSorted)
		cp50, cp99 := quantile(clientSorted, 0.5), quantile(clientSorted, 0.99)
		ceil := func(p float64) float64 {
			rank := int(math.Ceil(p*float64(len(clientSorted)))) + 2
			if rank > len(clientSorted) {
				rank = len(clientSorted)
			}
			return clientSorted[rank-1]
		}
		ok50 := srvP50[r] <= ceil(0.5)*(1+bound)+absSlack
		ok99 := srvP99[r] <= ceil(0.99)*(1+bound)+absSlack
		who := "cross-check"
		if len(bases) > 1 {
			who = fmt.Sprintf("cross-check replica %d (%s)", r, targets[r])
		}
		fmt.Fprintf(stderr,
			"reprobench: %s (bound %.2f%% + %.0fms): p50 client %.6fs server %.6fs [%s], p99 client %.6fs server %.6fs [%s], server sketch count %d\n",
			who, bound*100, absSlack*1e3, cp50, srvP50[r], okStr(ok50), cp99, srvP99[r], okStr(ok99), srvCount[r])
		if *addr == "" && srvCount[r] != *requests+1 { // +1 warmup; only meaningful self-hosted
			fmt.Fprintf(stderr, "reprobench: server sketch count %d, want %d\n", srvCount[r], *requests+1)
			ok50 = false
		}
		allOK = allOK && ok50 && ok99
	}
	if *strict && !allOK {
		fmt.Fprintln(stderr, "reprobench: cross-check FAILED")
		return 1
	}

	if *traceOut != "" {
		if err := fetchTrace(client, base, *traceOut); err != nil {
			fmt.Fprintf(stderr, "reprobench: trace-out: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "reprobench: wrote sample trace to %s\n", *traceOut)
	}
	return 0
}

// selfHost boots an in-process daemon on an ephemeral loopback port.
func selfHost(cfg core.Config) (addr string, shutdown func(), err error) {
	rootCtx, cancel := context.WithCancel(context.Background())
	srv := serve.New(serve.Config{Base: cfg, BaseContext: rootCtx})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go httpSrv.Serve(ln)
	return ln.Addr().String(), func() {
		httpSrv.Close()
		cancel()
	}, nil
}

// get performs one GET, draining and closing the body (keep-alive
// reuse needs the drain).
func get(client *http.Client, url string) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// quantile returns the ⌈p·n⌉-th order statistic of a sorted sample —
// the same convention stats.Sketch documents, so client and server
// quantiles estimate the same number.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// scrapeQuantiles pulls and validates /metrics, returning the artifact
// endpoint's sketch p50/p99 and sample count.
func scrapeQuantiles(client *http.Client, base string) (p50, p99 float64, count int, err error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	dump, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("/metrics failed validation: %w", err)
	}
	ep := obs.Label{Name: "endpoint", Value: "artifacts"}
	p50, ok1 := dump.Value("serve_req_latency_quantile_seconds", ep, obs.Label{Name: "quantile", Value: "0.5"})
	p99, ok2 := dump.Value("serve_req_latency_quantile_seconds", ep, obs.Label{Name: "quantile", Value: "0.99"})
	cnt, ok3 := dump.Value("serve_req_latency_sketch_count", ep)
	if !ok1 || !ok2 || !ok3 {
		return 0, 0, 0, fmt.Errorf("artifact latency series missing from /metrics")
	}
	return p50, p99, int(cnt), nil
}

// fetchTrace writes the daemon's current span ring as a Chrome trace.
func fetchTrace(client *http.Client, base, path string) error {
	resp, err := client.Get(base + "/debug/trace?format=chrome")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/trace: status %d", resp.StatusCode)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, cErr := io.Copy(f, resp.Body)
	if err := f.Close(); cErr == nil {
		cErr = err
	}
	return cErr
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

func okStr(ok bool) string {
	if ok {
		return "ok"
	}
	return "VIOLATION"
}
