package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero requests", []string{"-requests", "0"}, "-requests"},
		{"zero concurrency", []string{"-concurrency", "0"}, "-concurrency"},
		{"negative cold", []string{"-cold-every", "-1"}, "-cold-every"},
		{"zero machines", []string{"-machines", "0"}, "positive"},
		{"unparseable", []string{"-requests", "many"}, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw strings.Builder
			if code := run(tc.args, &out, &errw); code != 2 {
				t.Fatalf("run(%v) = %d, want 2\nstderr: %s", tc.args, code, errw.String())
			}
			if !strings.Contains(errw.String(), tc.want) {
				t.Errorf("stderr %q, want it to mention %q", errw.String(), tc.want)
			}
		})
	}
}

// TestRunSelfHosted is the end-to-end benchmark test: self-host a
// daemon, drive a small strict run, and require benchjson-parseable
// output plus a passing server/client quantile cross-check.
func TestRunSelfHosted(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var out, errw strings.Builder
	code := run([]string{
		"-requests", "48", "-concurrency", "4", "-cold-every", "12",
		"-strict", "-trace-out", tracePath,
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstderr: %s", code, errw.String())
	}
	for _, want := range []string{
		"BenchmarkServeHot", "BenchmarkServeCold", "BenchmarkServeAll",
		"ns/op", "req/s", "p50_s", "p99_s", "srv_p50_s", "srv_p99_s",
		"goos: ", "pkg: repro/cmd/reprobench",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
	// Strict mode passed, so the cross-check must report both quantiles ok
	// and the expected sketch population (48 timed + 1 warmup).
	if !strings.Contains(errw.String(), "server sketch count 49") {
		t.Errorf("stderr missing sketch count 49:\n%s", errw.String())
	}
	// The sample trace must be a Chrome trace with span linkage args.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	for _, want := range []string{`"traceEvents"`, `"trace_id"`, `"span_id"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trace file missing %s", want)
		}
	}
}

// TestQuantileConvention pins the ⌈p·n⌉ order statistic so the client
// side keeps estimating the same number the server sketch documents.
func TestQuantileConvention(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	cases := []struct {
		p    float64
		want float64
	}{{0.5, 2}, {0.25, 1}, {0.75, 3}, {0.99, 4}, {0, 1}, {1, 4}}
	for _, tc := range cases {
		if got := quantile(s, tc.p); got != tc.want {
			t.Errorf("quantile(p=%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
}
