// Command analyze runs the paper's work-load characterization on a
// trace file — either a real archive trace (SWF/GWA) or a synthetic
// one produced by tracegen (including Google clusterdata-v1 CSV).
//
// Usage:
//
//	analyze -format swf -in trace.swf
//	analyze -format gwa -in trace.gwa
//	analyze -format gtrace -events task_events.csv [-usage task_usage.csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/fit"
	"repro/internal/gtrace"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/swf"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		format = fs.String("format", "swf", "swf, gwa or gtrace")
		in     = fs.String("in", "", "SWF/GWA input file")
		events = fs.String("events", "", "gtrace: task_events.csv")
		usage  = fs.String("usage", "", "gtrace: task_usage.csv (optional)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var jobs []trace.Job
	var err error
	switch *format {
	case "swf", "gwa":
		if *in == "" {
			err = fmt.Errorf("-in required for %s", *format)
			break
		}
		f := swf.SWF
		if *format == "gwa" {
			f = swf.GWA
		}
		jobs, err = readSWF(*in, f)
	case "gtrace":
		if *events == "" {
			err = fmt.Errorf("-events required for gtrace")
			break
		}
		jobs, err = readGTrace(*events, *usage)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err == nil && len(jobs) == 0 {
		err = fmt.Errorf("no jobs in trace")
	}
	if err != nil {
		fmt.Fprintf(stderr, "analyze: %v\n", err)
		return 1
	}
	if err := analyze(stdout, jobs); err != nil {
		fmt.Fprintf(stderr, "analyze: %v\n", err)
		return 1
	}
	return 0
}

func readSWF(path string, format swf.Format) ([]trace.Job, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return swf.ReadJobs(f, format, false)
}

func readGTrace(eventsPath, usagePath string) ([]trace.Job, error) {
	ef, err := os.Open(eventsPath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	events, err := gtrace.DecodeEvents(ef)
	if err != nil {
		return nil, err
	}
	var samples []trace.UsageSample
	if usagePath != "" {
		uf, err := os.Open(usagePath)
		if err != nil {
			return nil, err
		}
		defer uf.Close()
		if samples, err = gtrace.DecodeUsage(uf); err != nil {
			return nil, err
		}
	}
	return trace.JobsFromEvents(events, samples), nil
}

func analyze(w io.Writer, jobs []trace.Job) error {
	horizon := int64(0)
	for _, j := range jobs {
		if j.End > horizon {
			horizon = j.End
		}
	}
	lens := workload.JobLengths(jobs)
	intervals := workload.SubmissionIntervals(jobs)
	rates := workload.SubmissionRates(jobs, horizon)
	mc := workload.SummarizeMassCount(lens)
	cpu := workload.CPUUsage(jobs)

	tbl := &report.Table{
		ID: "analysis", Title: fmt.Sprintf("Workload characterization (%d jobs, %.1f days)", len(jobs), float64(horizon)/86400),
		Columns: []string{"metric", "value"},
	}
	q := func(xs []float64, p float64) string { return report.F(stats.Quantile(xs, p)) }
	tbl.AddRow("job length p50/p90/max (s)", fmt.Sprintf("%s / %s / %s", q(lens, 0.5), q(lens, 0.9), report.F(stats.Max(lens))))
	tbl.AddRow("P(length < 1000 s)", report.F2(stats.NewECDF(lens).Eval(1000)))
	tbl.AddRow("length mass-count joint ratio", fmt.Sprintf("%.0f/%.0f", mc.JointItems, mc.JointMass))
	tbl.AddRow("length mm-distance (h)", report.F2(mc.MMDistance/3600))
	if len(intervals) > 0 {
		tbl.AddRow("submission interval p50/p90 (s)", fmt.Sprintf("%s / %s", q(intervals, 0.5), q(intervals, 0.9)))
	}
	tbl.AddRow("jobs/hour max/avg/min", fmt.Sprintf("%s / %s / %s", report.I(rates.Max), report.F(rates.Avg), report.I(rates.Min)))
	tbl.AddRow("submission fairness (Jain)", report.F2(rates.Fairness))
	if len(cpu) > 0 {
		tbl.AddRow("CPU utilisation p50 (Formula 4)", q(cpu, 0.5))
	}
	if best, err := fit.Best(positive(lens)); err == nil {
		tbl.AddRow("best-fit length model",
			fmt.Sprintf("%s %v (KS %.3f)", best.Name, best.Params, best.KS))
	}
	return tbl.Render(w)
}

// positive filters out zero lengths, which the parametric families
// cannot carry.
func positive(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			out = append(out, x)
		}
	}
	return out
}
