package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gtrace"
	"repro/internal/rng"
	"repro/internal/swf"
	"repro/internal/synth"
	"repro/internal/trace"
)

func writeSWF(t *testing.T, dir string) string {
	t.Helper()
	jobs := synth.AuverGrid.Generate(86400, rng.New(1))
	path := filepath.Join(dir, "trace.swf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := swf.NewWriter(f, swf.SWF)
	if err := w.WriteJobs(jobs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeSWF(t *testing.T) {
	path := writeSWF(t, t.TempDir())
	var out, errOut bytes.Buffer
	code := run([]string{"-format", "swf", "-in", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"Workload characterization", "job length", "fairness", "joint ratio"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestAnalyzeGTrace(t *testing.T) {
	dir := t.TempDir()
	events := []trace.TaskEvent{
		{Time: 0, JobID: 1, TaskIndex: 0, Machine: -1, Type: trace.EventSubmit, Priority: 1},
		{Time: 5, JobID: 1, TaskIndex: 0, Machine: 0, Type: trace.EventSchedule, Priority: 1},
		{Time: 900, JobID: 1, TaskIndex: 0, Machine: 0, Type: trace.EventFinish, Priority: 1},
		{Time: 100, JobID: 2, TaskIndex: 0, Machine: -1, Type: trace.EventSubmit, Priority: 2},
		{Time: 110, JobID: 2, TaskIndex: 0, Machine: 0, Type: trace.EventSchedule, Priority: 2},
		{Time: 2000, JobID: 2, TaskIndex: 0, Machine: 0, Type: trace.EventKill, Priority: 2},
	}
	path := filepath.Join(dir, "task_events.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := gtrace.EncodeEvents(f, events); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out, errOut bytes.Buffer
	code := run([]string{"-format", "gtrace", "-events", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "2 jobs") {
		t.Fatalf("job count missing:\n%s", out.String())
	}
}

func TestAnalyzeErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-format", "swf"}, &out, &errOut); code != 1 {
		t.Error("missing -in accepted")
	}
	if code := run([]string{"-format", "gtrace"}, &out, &errOut); code != 1 {
		t.Error("missing -events accepted")
	}
	if code := run([]string{"-format", "weird", "-in", "x"}, &out, &errOut); code != 1 {
		t.Error("unknown format accepted")
	}
	if code := run([]string{"-format", "swf", "-in", "/nonexistent/file"}, &out, &errOut); code != 1 {
		t.Error("missing file accepted")
	}
}
