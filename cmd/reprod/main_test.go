package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad scale", []string{"-scale", "huge"}, "unknown scale"},
		{"negative machines", []string{"-machines", "-1"}, "must be positive"},
		{"zero sim days", []string{"-sim-days", "0"}, "must be positive"},
		{"zero workload days", []string{"-workload-days", "0"}, "must be positive"},
		{"negative queue", []string{"-max-queue", "-1"}, "-max-queue"},
		{"zero contexts", []string{"-max-contexts", "0"}, "-max-contexts"},
		{"negative build timeout", []string{"-build-timeout", "-1s"}, "non-negative"},
		{"zero access sample", []string{"-access-log-sample", "0"}, "-access-log-sample"},
		{"zero trace buffer", []string{"-trace-buffer", "0"}, "-trace-buffer"},
		{"negative runtime sample", []string{"-runtime-sample", "-1s"}, "-runtime-sample"},
		{"unparseable flag", []string{"-machines", "lots"}, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw strings.Builder
			if code := run(tc.args, &out, &errw, nil); code != 2 {
				t.Fatalf("run(%v) = %d, want 2\nstderr: %s", tc.args, code, errw.String())
			}
			if !strings.Contains(errw.String(), tc.want) {
				t.Errorf("stderr %q, want it to mention %q", errw.String(), tc.want)
			}
		})
	}
}

func TestRunListenFailure(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-addr", "256.256.256.256:1"}, &out, &errw, nil); code != 1 {
		t.Fatalf("run with unusable addr = %d, want 1\nstderr: %s", code, errw.String())
	}
}

func TestRunBadCheckpointDir(t *testing.T) {
	// A checkpoint path that collides with a regular file cannot be a
	// directory, so the store must refuse it before the listener opens.
	f := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw strings.Builder
	if code := run([]string{"-checkpoint-dir", f}, &out, &errw, nil); code != 1 {
		t.Fatalf("run with file as checkpoint dir = %d, want 1\nstderr: %s", code, errw.String())
	}
}

// TestRunServeAndDrain is the end-to-end daemon test: boot on an
// ephemeral port, hit the read-only endpoints, then send ourselves
// SIGTERM and require a clean exit-0 drain.
func TestRunServeAndDrain(t *testing.T) {
	metricsOut := filepath.Join(t.TempDir(), "metrics.jsonl")
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var out, errw strings.Builder
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-machines", "4", "-sim-days", "1", "-workload-days", "1",
			"-metrics-out", metricsOut,
		}, &out, &errw, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case code := <-done:
		t.Fatalf("daemon exited %d before becoming ready\nstderr: %s", code, errw.String())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	client := &http.Client{Timeout: 10 * time.Second}
	for _, tc := range []struct {
		path string
		code int
		want string
	}{
		{"/healthz", http.StatusOK, `"status":"ok"`},
		{"/v1/experiments", http.StatusOK, "fig2"},
		{"/metrics", http.StatusOK, "serve_req_total"},
		{"/metrics?format=jsonl", http.StatusOK, "serve.req.total"},
		{"/v1/artifacts/nonsense", http.StatusNotFound, "unknown experiment"},
		{"/v1/predict?system=AuverGrid&hosts=2&days=1", http.StatusOK, "best-fit predictor"},
		{"/v1/predict?system=Mars", http.StatusBadRequest, "system"},
	} {
		resp, err := client.Get(fmt.Sprintf("http://%s%s", addr, tc.path))
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("GET %s = %d, want %d (body: %s)", tc.path, resp.StatusCode, tc.code, body)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("GET %s body %q, want it to contain %q", tc.path, body, tc.want)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("drain exit = %d, want 0\nstderr: %s", code, errw.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never drained after SIGTERM")
	}
	if !strings.Contains(errw.String(), "drained cleanly") {
		t.Errorf("stderr %q, want a clean-drain message", errw.String())
	}
	if data, err := os.ReadFile(metricsOut); err != nil || !strings.Contains(string(data), "serve.req.total") {
		t.Errorf("metrics-out: err=%v, content missing serve.req.total:\n%s", err, data)
	}
}
