package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

// requiredSeries are the metric families any healthy reprod daemon
// must export after serving at least one artifact request. `make
// check` runs this test as its exposition gate: a rename or a format
// regression fails here before a dashboard goes dark in production.
var requiredSeries = []string{
	"serve_req_total",
	"serve_req_inflight",
	"serve_req_latency_seconds_bucket",
	"serve_req_latency_seconds_count",
	"serve_req_latency_seconds_sum",
	"serve_req_latency_quantile_seconds",
	"serve_req_latency_sketch_count",
	"serve_gate_inflight",
	"serve_ctx_live",
	"runtime_goroutines",
	"runtime_heap_alloc_bytes",
	"runtime_gc_total",
	"runtime_uptime_seconds",
}

// TestMetricsExposition boots a real daemon, drives one artifact
// request through it, and validates the /metrics scrape end to end:
// the payload must parse as Prometheus text exposition (syntax,
// TYPE declarations, cumulative buckets — obs.ParsePrometheus is
// strict) and contain every required series.
func TestMetricsExposition(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var out, errw strings.Builder
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-machines", "4", "-sim-days", "1", "-workload-days", "1",
			"-runtime-sample", "1s",
		}, &out, &errw, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-done:
		t.Fatalf("daemon exited %d before ready\nstderr: %s", code, errw.String())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	defer func() {
		syscall.Kill(os.Getpid(), syscall.SIGTERM)
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Error("daemon never drained")
		}
	}()

	client := &http.Client{Timeout: 60 * time.Second}
	// One artifact request so per-endpoint latency sketches exist.
	resp, err := client.Get(fmt.Sprintf("http://%s/v1/artifacts/fig2", addr))
	if err != nil {
		t.Fatalf("GET /v1/artifacts/fig2: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact request: status %d", resp.StatusCode)
	}

	resp, err = client.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	dump, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not validate: %v", err)
	}
	have := make(map[string]bool, len(dump.Samples))
	for _, s := range dump.Samples {
		have[s.Name] = true
	}
	for _, want := range requiredSeries {
		if !have[want] {
			t.Errorf("required series %s missing from /metrics", want)
		}
	}
	// The artifact endpoint's sketch quantiles must be present and
	// ordered (p50 <= p99): the live-latency contract reprobench
	// cross-checks against.
	ep := obs.Label{Name: "endpoint", Value: "artifacts"}
	p50, ok50 := dump.Value("serve_req_latency_quantile_seconds", ep, obs.Label{Name: "quantile", Value: "0.5"})
	p99, ok99 := dump.Value("serve_req_latency_quantile_seconds", ep, obs.Label{Name: "quantile", Value: "0.99"})
	if !ok50 || !ok99 {
		t.Fatalf("artifact latency quantiles missing (p50 %v, p99 %v)", ok50, ok99)
	}
	if p50 <= 0 || p99 < p50 {
		t.Errorf("quantiles disordered: p50=%g p99=%g", p50, p99)
	}
}

// TestAccessLogWritten boots a daemon with -access-log and asserts the
// schema: one JSONL record per request carrying the trace ID that the
// response echoed in X-Trace-Id.
func TestAccessLogWritten(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "access.jsonl")
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var out, errw strings.Builder
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-machines", "4", "-sim-days", "1", "-workload-days", "1",
			"-access-log", logPath,
		}, &out, &errw, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-done:
		t.Fatalf("daemon exited %d before ready\nstderr: %s", code, errw.String())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(fmt.Sprintf("http://%s/v1/experiments", addr))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	traceID := resp.Header.Get("X-Trace-Id")
	if len(traceID) != 32 {
		t.Fatalf("X-Trace-Id = %q, want 32 hex chars", traceID)
	}

	syscall.Kill(os.Getpid(), syscall.SIGTERM)
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("drain exit = %d\nstderr: %s", code, errw.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never drained")
	}

	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("read access log: %v", err)
	}
	for _, want := range []string{
		`"method":"GET"`, `"path":"/v1/experiments"`, `"endpoint":"experiments"`,
		`"status":200`, `"trace_id":"` + traceID + `"`, `"gate_wait_us"`,
		`"coalesced":false`, `"ckpt_hit":false`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("access log missing %s:\n%s", want, data)
		}
	}
}
