// Command reprod is the always-on serving counterpart of cmd/repro: a
// long-running HTTP daemon exposing every experiment artifact of the
// paper "Characterization and Comparison of Cloud versus Grid
// Workloads" (CLUSTER 2012) as JSON, markdown, CSV and gnuplot .dat
// endpoints.
//
// Usage:
//
//	reprod [-addr host:port] [-scale quick|full] [-seed n]
//	       [-machines n] [-sim-days n] [-workload-days n]
//	       [-checkpoint-dir dir] [-prewarm] [-max-inflight n]
//	       [-max-queue n] [-max-contexts n] [-build-timeout d]
//	       [-drain-timeout d] [-metrics-out file]
//	       [-access-log file] [-access-log-sample n]
//	       [-trace-buffer n] [-runtime-sample d]
//	       [-replica-id name] [-peers host:port,...] [-lease-ttl d]
//	       [-chaos-seed n] [-chaos-prob p]
//
// Multi-replica mode (-replica-id, plus -peers and a shared
// -checkpoint-dir) coordinates any number of daemons into one logical
// cache: the first replica to claim a cold artifact takes a lease in
// the checkpoint directory and builds it exactly once fleet-wide,
// siblings fill their caches from GET /v1/cache/{key} or from the
// shared store, and a replica that dies mid-build has its stale lease
// taken over after -lease-ttl. -chaos-prob arms deterministic
// error-kind fault injections (seeded by -chaos-seed) across the
// replica failure surface, for convergence drills. See README "Running
// N replicas".
//
// Endpoints (see README "Serving" for the full table): /healthz,
// /metrics (Prometheus text by default, ?format=jsonl for the PR5
// JSONL), /debug/trace and /debug/trace/{traceID} (span export, JSONL
// or ?format=chrome), /v1/experiments, /v1/report,
// /v1/artifacts/{id} (?format=json|md), /v1/artifacts/{id}/tables/{t}
// (CSV), /v1/artifacts/{id}/series/{s} (.dat). Artifact routes accept
// ?seed=&machines=&days=&workload_days= scenario overrides, served
// from an LRU of per-config contexts with a hard cap (-max-contexts).
// /v1/predict?system=&hosts=&days=&seed=&k=&hmm= serves live host-load
// predictions (plain text byte-identical to cmd/predict, ?format=json
// for the structured report) through the same gate, coalescer and an
// LRU of finished reports.
//
// Every request is traced: an incoming `traceparent` header joins its
// trace, the response echoes X-Trace-Id, and the request's span tree
// (gate wait, coalescing, experiment, cell builds, checkpoint I/O) is
// retrievable from /debug/trace/{traceID} while it remains in the
// bounded span ring (-trace-buffer). -access-log streams one JSONL
// record per request (-access-log-sample n keeps every nth);
// -runtime-sample publishes goroutine/heap/GC gauges at that period.
//
// Concurrent requests for the same cold artifact are coalesced into
// one build; -checkpoint-dir warm-starts from (and feeds) the same
// checkpoint files cmd/repro writes, so a restart serves from disk
// instead of re-simulating; -prewarm builds every base-scenario
// artifact in the background after the listener is up.
//
// SIGINT/SIGTERM drain gracefully: new requests get 503 immediately,
// in-flight ones finish, and the process exits 0 once idle (or 1 if
// -drain-timeout expires or a second signal forces shutdown).
// Determinism contract: for the same config, every served body is
// byte-identical to the artifact cmd/repro writes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable body of the daemon. When ready is non-nil it
// receives the bound listen address once the server is accepting —
// tests pass it to learn the ephemeral port of -addr host:0.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("reprod", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "localhost:8080", "listen address")
		scale        = fs.String("scale", "quick", "base scenario scale: quick or full")
		seed         = fs.Uint64("seed", 0, "override base scenario seed")
		machines     = fs.Int("machines", 0, "override base simulated machine count")
		simDays      = fs.Int("sim-days", 0, "override base simulation horizon (days)")
		workloadDays = fs.Int("workload-days", 0, "override base workload horizon (days)")
		ckptDir      = fs.String("checkpoint-dir", "", "warm-start artifacts from (and persist them to) this directory")
		prewarm      = fs.Bool("prewarm", false, "build every base-scenario artifact in the background at startup")
		maxInflight  = fs.Int("max-inflight", 0, "admission gate: concurrent artifact requests (0 = GOMAXPROCS)")
		maxQueue     = fs.Int("max-queue", 64, "admission gate: queued requests before 429")
		maxContexts  = fs.Int("max-contexts", 8, "hard cap on cached per-scenario contexts (LRU)")
		buildTimeout = fs.Duration("build-timeout", 0, "per-artifact build deadline (0 = none)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long a signal-triggered drain waits for in-flight requests")
		metricsOut   = fs.String("metrics-out", "", "write the metrics registry and spans as JSONL here at shutdown")
		accessLog    = fs.String("access-log", "", "append structured JSONL access records here (- for stderr)")
		accessSample = fs.Int("access-log-sample", 1, "log every nth request (head-based, deterministic; 1 = all)")
		traceBuffer  = fs.Int("trace-buffer", 4096, "span ring capacity for /debug/trace (bounded memory)")
		runtimePd    = fs.Duration("runtime-sample", 10*time.Second, "runtime gauge sampling period (0 = off)")
		replicaID    = fs.String("replica-id", "", "enable multi-replica coordination under this replica name")
		peersFlag    = fs.String("peers", "", "comma-separated sibling replica addresses for cache fills (host:port or URL)")
		leaseTTL     = fs.Duration("lease-ttl", 5*time.Second, "distributed build-lease lifetime between heartbeats")
		chaosSeed    = fs.Uint64("chaos-seed", 0, "deterministic fault-injection seed for the replica chaos sites")
		chaosProb    = fs.Float64("chaos-prob", 0, "per-site probability of arming one injected error (0 = chaos off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := core.QuickConfig()
	if *scale == "full" {
		cfg = core.DefaultConfig()
	} else if *scale != "quick" {
		fmt.Fprintf(stderr, "reprod: unknown scale %q\n", *scale)
		return 2
	}
	// Same override semantics as cmd/repro: explicit flags win, and an
	// explicit non-positive value is an error, not an ignored default.
	passed := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { passed[f.Name] = true })
	if passed["seed"] {
		cfg.Seed = *seed
	}
	for _, p := range []struct {
		name string
		val  int
		set  func(int)
	}{
		{"machines", *machines, func(n int) { cfg.Machines = n }},
		{"sim-days", *simDays, func(n int) { cfg.SimHorizon = int64(n) * 86400 }},
		{"workload-days", *workloadDays, func(n int) { cfg.WorkloadHorizon = int64(n) * 86400 }},
	} {
		if !passed[p.name] {
			continue
		}
		if p.val <= 0 {
			fmt.Fprintf(stderr, "reprod: -%s must be positive, got %d\n", p.name, p.val)
			return 2
		}
		p.set(p.val)
	}
	if *maxQueue < 0 || *maxContexts < 1 {
		fmt.Fprintf(stderr, "reprod: -max-queue must be >= 0 and -max-contexts >= 1\n")
		return 2
	}
	if *buildTimeout < 0 || *drainTimeout < 0 {
		fmt.Fprintf(stderr, "reprod: timeouts must be non-negative\n")
		return 2
	}
	if *accessSample < 1 {
		fmt.Fprintf(stderr, "reprod: -access-log-sample must be >= 1, got %d\n", *accessSample)
		return 2
	}
	if *traceBuffer < 1 {
		fmt.Fprintf(stderr, "reprod: -trace-buffer must be >= 1, got %d\n", *traceBuffer)
		return 2
	}
	if *runtimePd < 0 {
		fmt.Fprintf(stderr, "reprod: -runtime-sample must be non-negative\n")
		return 2
	}
	var peers []string
	for _, p := range strings.Split(*peersFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	if len(peers) > 0 && *replicaID == "" {
		fmt.Fprintf(stderr, "reprod: -peers requires -replica-id\n")
		return 2
	}
	if *leaseTTL <= 0 {
		fmt.Fprintf(stderr, "reprod: -lease-ttl must be positive\n")
		return 2
	}
	if *chaosProb < 0 || *chaosProb > 1 {
		fmt.Fprintf(stderr, "reprod: -chaos-prob must be in [0, 1], got %g\n", *chaosProb)
		return 2
	}

	rec := obs.NewRecorder()
	var store *ckpt.Store
	if *ckptDir != "" {
		var err error
		if store, err = ckpt.NewStore(*ckptDir, rec.Registry()); err != nil {
			fmt.Fprintf(stderr, "reprod: %v\n", err)
			return 1
		}
	}

	var accessW io.Writer
	var accessF *os.File
	if *accessLog == "-" {
		accessW = stderr
	} else if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "reprod: %v\n", err)
			return 1
		}
		accessF, accessW = f, f
		defer accessF.Close()
	}

	sampler := obs.StartRuntimeSampler(rec.Registry(), *runtimePd)
	defer sampler.Stop()

	// Multi-replica mode: every artifact build goes through the
	// fleet-wide coordinator (shared-store singleflight via leases, peer
	// cache fills). The coordinator owns checkpoint I/O on that path.
	var coord *replica.Coordinator
	if *replicaID != "" {
		coord = replica.New(replica.Config{
			ID:    *replicaID,
			Store: store,
			Peers: peers,
			TTL:   *leaseTTL,
			Rec:   rec,
		})
		fmt.Fprintf(stderr, "reprod: replica %q coordinating with %d peer(s), lease TTL %v\n",
			*replicaID, len(peers), *leaseTTL)
	}

	// Chaos mode arms deterministic error injections across the replica
	// failure surface (lease I/O, peer fetches, checkpoint writes). Only
	// Error-kind rules: the point is proving the daemon degrades and
	// converges, not crashing it — kill-style failures are exercised by
	// the test suite, which can afford to lose a process.
	if *chaosProb > 0 {
		cs := rng.New(*chaosSeed).Child("reprod.chaos")
		var rules []fault.Rule
		for _, site := range replica.ChaosSites() {
			if cs.Float64() < *chaosProb {
				rules = append(rules, fault.Rule{Site: site, Hit: 1 + cs.Int64N(20), Kind: fault.Error})
			}
		}
		if len(rules) > 0 {
			defer fault.Enable(fault.NewPlan(rules...))()
		}
		fmt.Fprintf(stderr, "reprod: chaos armed (seed %d, prob %g): %d rule(s) across %d site(s)\n",
			*chaosSeed, *chaosProb, len(rules), len(replica.ChaosSites()))
	}

	// rootCtx is the server's lifetime: artifact builds run under it, so
	// it stays alive through a graceful drain and is cancelled only when
	// the drain times out or a second signal demands a hard stop.
	rootCtx, cancelRoot := context.WithCancelCause(context.Background())
	defer cancelRoot(nil)

	srv := serve.New(serve.Config{
		Base:            cfg,
		Store:           store,
		Replica:         coord,
		Rec:             rec,
		BaseContext:     rootCtx,
		MaxInflight:     *maxInflight,
		MaxQueue:        *maxQueue,
		MaxContexts:     *maxContexts,
		BuildTimeout:    *buildTimeout,
		AccessLog:       accessW,
		AccessLogSample: *accessSample,
		TraceBuffer:     *traceBuffer,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "reprod: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(stderr, "reprod: serving on http://%s (scale: %d machines, %.0fd sim, %.0fd workload, seed %d)\n",
		ln.Addr(), cfg.Machines, float64(cfg.SimHorizon)/86400, float64(cfg.WorkloadHorizon)/86400, cfg.Seed)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	if *prewarm {
		go func() {
			n, err := srv.Prewarm(rootCtx)
			if err != nil {
				fmt.Fprintf(stderr, "reprod: prewarm stopped after %d artifacts: %v\n", n, err)
				return
			}
			fmt.Fprintf(stderr, "reprod: prewarmed %d artifacts\n", n)
		}()
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	code := 0
	select {
	case err := <-serveErr:
		// The listener died underneath us without a signal.
		fmt.Fprintf(stderr, "reprod: %v\n", err)
		code = 1
	case s := <-sigCh:
		fmt.Fprintf(stderr, "reprod: received %v, draining (in-flight requests finish, new ones get 503)\n", s)
		srv.BeginDrain()
		shCtx, shCancel := context.WithTimeout(context.Background(), *drainTimeout)
		shutdownDone := make(chan error, 1)
		go func() { shutdownDone <- httpSrv.Shutdown(shCtx) }()
		select {
		case err := <-shutdownDone:
			if err != nil {
				fmt.Fprintf(stderr, "reprod: drain timed out (%v), forcing shutdown\n", err)
				cancelRoot(fmt.Errorf("drain timed out"))
				httpSrv.Close()
				code = 1
			} else {
				fmt.Fprintf(stderr, "reprod: drained cleanly\n")
			}
		case s2 := <-sigCh:
			fmt.Fprintf(stderr, "reprod: received %v again, forcing shutdown\n", s2)
			cancelRoot(fmt.Errorf("interrupted twice by %v then %v", s, s2))
			httpSrv.Close()
			<-shutdownDone
			code = 1
		}
		shCancel()
	}
	cancelRoot(nil)

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err == nil {
			werr := rec.WriteMetricsJSONL(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			err = werr
		}
		if err != nil {
			fmt.Fprintf(stderr, "reprod: %v\n", err)
			if code == 0 {
				code = 1
			}
		} else {
			fmt.Fprintf(stderr, "wrote metrics to %s\n", *metricsOut)
		}
	}
	return code
}
