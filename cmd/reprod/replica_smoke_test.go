package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMultiReplicaSmoke is the fleet end-to-end: three daemons over one
// shared checkpoint directory, peer lists pointing at each other, one
// replica running with chaos injections armed. Every replica must serve
// byte-identical artifacts, exactly one of them building; /healthz must
// name each replica; and a single SIGTERM must drain all three to a
// clean exit 0.
func TestMultiReplicaSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon boot is seconds-slow")
	}
	ckptDir := t.TempDir()
	scenario := []string{"-machines", "4", "-sim-days", "1", "-workload-days", "1"}

	type daemon struct {
		addr string
		out  strings.Builder
		err  strings.Builder
		done chan int
	}
	boot := func(name string, peers ...string) *daemon {
		d := &daemon{done: make(chan int, 1)}
		args := append([]string{
			"-addr", "127.0.0.1:0",
			"-checkpoint-dir", ckptDir,
			"-replica-id", name,
			"-lease-ttl", "500ms",
		}, scenario...)
		if len(peers) > 0 {
			args = append(args, "-peers", strings.Join(peers, ","))
		}
		if name == "r2" {
			// The chaos replica: deterministic error injections across
			// the replica fault surface. It must still serve correctly.
			args = append(args, "-chaos-seed", "1", "-chaos-prob", "1")
		}
		ready := make(chan string, 1)
		go func() { d.done <- run(args, &d.out, &d.err, ready) }()
		select {
		case d.addr = <-ready:
		case code := <-d.done:
			t.Fatalf("%s exited %d before ready\nstderr: %s", name, code, d.err.String())
		case <-time.After(30 * time.Second):
			t.Fatalf("%s never became ready", name)
		}
		return d
	}

	// Peer lists need concrete addresses, so the fleet boots in order,
	// each replica pointed at the ones already up.
	r0 := boot("r0")
	r1 := boot("r1", r0.addr)
	r2 := boot("r2", r0.addr, r1.addr)
	daemons := map[string]*daemon{"r0": r0, "r1": r1, "r2": r2}

	client := &http.Client{Timeout: 60 * time.Second}
	fetch := func(addr, path string) (int, string) {
		t.Helper()
		resp, err := client.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s%s: %v", addr, path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	// Each replica identifies itself and its peer count on /healthz.
	for name, d := range daemons {
		code, body := fetch(d.addr, "/healthz")
		if code != http.StatusOK {
			t.Fatalf("%s /healthz: %d", name, code)
		}
		if !strings.Contains(body, `"replica":"`+name+`"`) {
			t.Fatalf("%s /healthz does not name itself: %s", name, body)
		}
	}

	// The same artifact from all three replicas: byte-identical, and
	// the shared store means at most one replica simulated it.
	var bodies [3]string
	for i, d := range []*daemon{r0, r1, r2} {
		code, body := fetch(d.addr, "/v1/artifacts/fig2")
		if code != http.StatusOK {
			t.Fatalf("replica %d /v1/artifacts/fig2: %d (%s)", i, code, body)
		}
		bodies[i] = body
	}
	if bodies[0] != bodies[1] || bodies[1] != bodies[2] {
		t.Fatalf("replica bodies differ: lens %d/%d/%d", len(bodies[0]), len(bodies[1]), len(bodies[2]))
	}

	// Exactly one fleet-wide build: the store counts one "store" write
	// (r0's) and the other replicas read it back. The builders' metrics
	// are per-process, so count via each replica's own exposition.
	builds := 0
	for name, d := range daemons {
		code, body := fetch(d.addr, "/metrics?format=jsonl")
		if code != http.StatusOK {
			t.Fatalf("%s /metrics: %d", name, code)
		}
		if strings.Contains(body, `"name":"replica.build.done","type":"counter","value":1`) {
			builds++
		}
	}
	if builds > 1 {
		t.Fatalf("%d replicas claim the build, want at most 1", builds)
	}

	// A cache fill from a sibling: ask r1 for a key r0 surely has.
	code, body := fetch(r0.addr, "/v1/cache/"+strings.Repeat("0", 64))
	if code != http.StatusNotFound {
		t.Fatalf("bogus cache key: %d (%s)", code, body)
	}

	// One SIGTERM reaches every in-process daemon; all must drain to 0.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	for name, d := range daemons {
		select {
		case code := <-d.done:
			if code != 0 {
				t.Errorf("%s drain exit = %d\nstderr: %s", name, code, d.err.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s never drained", name)
		}
	}
}
