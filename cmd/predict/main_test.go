package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/predict"
)

// TestPredictBytesMatchLibrary pins the CLI's output to the library's
// WriteText rendering: the daemon's /v1/predict serves the library
// bytes, so this equality is what makes served == CLI transitively.
func TestPredictBytesMatchLibrary(t *testing.T) {
	rep, err := predict.RunScenario(predict.Scenario{System: "AuverGrid", Hosts: 3, Days: 1, Seed: 9})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	var want bytes.Buffer
	if err := rep.WriteText(&want); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-system", "AuverGrid", "-hosts", "3", "-days", "1", "-seed", "9"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !bytes.Equal(out.Bytes(), want.Bytes()) {
		t.Errorf("CLI bytes differ from library rendering:\nCLI:\n%s\nlibrary:\n%s", out.Bytes(), want.Bytes())
	}
}

// TestPredictMultiStep checks the -k flag retitles the table and still
// selects a best fit.
func TestPredictMultiStep(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-system", "AuverGrid", "-hosts", "2", "-days", "1", "-k", "3"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "3-step-ahead prediction accuracy") {
		t.Errorf("multi-step title missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "best-fit predictor") {
		t.Errorf("best-fit line missing:\n%s", out.String())
	}
}

func TestPredictGoogle(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-system", "Google", "-hosts", "5", "-days", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"prediction accuracy", "last-value", "best-fit predictor"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestPredictGrid(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-system", "AuverGrid", "-hosts", "4", "-days", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	// Grid hosts are highly predictable: persistence should dominate
	// and its hit rate should be printed high.
	if !strings.Contains(out.String(), "best-fit predictor: last-value") {
		t.Logf("best-fit on grid was not persistence:\n%s", out.String())
	}
}

func TestPredictWithHMM(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-system", "SHARCNET", "-hosts", "2", "-days", "1", "-hmm"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "hmm(") {
		t.Fatalf("HMM row missing:\n%s", out.String())
	}
}

func TestPredictErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-system", "Nope"}, &out, &errOut); code != 1 {
		t.Error("unknown system accepted")
	}
	if code := run([]string{"-badflag"}, &out, &errOut); code != 2 {
		t.Error("bad flag accepted")
	}
}
