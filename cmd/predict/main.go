// Command predict runs the host-load prediction suite (the paper's
// stated future work) on simulated Google host load and/or on the
// synthetic Grid host models, and reports per-predictor accuracy plus
// the best-fit selection.
//
// Usage:
//
//	predict [-system Google|AuverGrid|SHARCNET] [-hosts 20] [-days 4]
//	        [-seed 1] [-k 1] [-hmm]
//
// The same scenario is served live by the reprod daemon at
// GET /v1/predict; both render the identical predict.ScenarioReport,
// so the served bytes match this command's output exactly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/predict"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		system = fs.String("system", "Google", "Google, AuverGrid or SHARCNET")
		hosts  = fs.Int("hosts", 20, "host population size")
		days   = fs.Int("days", 4, "horizon in days")
		seed   = fs.Uint64("seed", 1, "random seed")
		k      = fs.Int("k", 1, "forecast horizon in steps")
		useHMM = fs.Bool("hmm", false, "include the (slow) HMM predictor")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rep, err := predict.RunScenario(predict.Scenario{
		System: *system, Hosts: *hosts, Days: *days, Seed: *seed, K: *k, HMM: *useHMM,
	})
	if err != nil {
		fmt.Fprintf(stderr, "predict: %v\n", err)
		return 1
	}
	if err := rep.WriteText(stdout); err != nil {
		fmt.Fprintf(stderr, "predict: %v\n", err)
		return 1
	}
	return 0
}
