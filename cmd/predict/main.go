// Command predict runs the host-load prediction suite (the paper's
// stated future work) on simulated Google host load and/or on the
// synthetic Grid host models, and reports per-predictor accuracy plus
// the best-fit selection.
//
// Usage:
//
//	predict [-system Google|AuverGrid|SHARCNET] [-hosts 20] [-days 4]
//	        [-seed 1] [-hmm]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cluster"
	"repro/internal/hostload"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		system = fs.String("system", "Google", "Google, AuverGrid or SHARCNET")
		hosts  = fs.Int("hosts", 20, "host population size")
		days   = fs.Int("days", 4, "horizon in days")
		seed   = fs.Uint64("seed", 1, "random seed")
		useHMM = fs.Bool("hmm", false, "include the (slow) HMM predictor")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	horizon := int64(*days) * 86400

	series, err := hostPopulation(*system, *hosts, horizon, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "predict: %v\n", err)
		return 1
	}

	noise := hostload.SeriesNoise(series, 2)
	ac := hostload.MeanSeriesAutocorrelation(series, 1)
	fmt.Fprintf(stdout, "%s: %d hosts, %d days — noise mean %.4f, lag-1 autocorrelation %.3f\n\n",
		*system, len(series), *days, noise.Mean, ac)

	suite := predict.Standard()
	if *useHMM {
		suite = append(suite, &predict.HMMPredictor{StatesN: 3, Levels: 5, Window: 288, Retrain: 288, Seed: *seed})
	}

	tbl := &report.Table{
		ID: "predict", Title: "One-step-ahead prediction accuracy",
		Columns: []string{"predictor", "MAE", "RMSE", "level hit rate"},
	}
	const warmup = 24
	for _, p := range suite {
		e := predict.EvaluateAll(p, series, warmup)
		tbl.AddRow(p.Name(), report.F(e.MAE), report.F(e.RMSE),
			fmt.Sprintf("%.0f%%", 100*e.LevelHitRate))
	}
	if err := tbl.Render(stdout); err != nil {
		fmt.Fprintf(stderr, "predict: %v\n", err)
		return 1
	}
	best, e := predict.Best(suite, series, warmup)
	fmt.Fprintf(stdout, "\nbest-fit predictor: %s (MAE %.4f)\n", best.Name(), e.MAE)
	return 0
}

func hostPopulation(system string, hosts int, horizon int64, seed uint64) ([]*timeseries.Series, error) {
	switch system {
	case "Google":
		s := rng.New(seed)
		park := synth.GoogleMachines(hosts, s.Child("machines"))
		gcfg := synth.ScaledGoogleConfig(hosts, horizon)
		tasks := synth.GenerateGoogleTasks(gcfg, s.Child("workload"))
		res, err := cluster.Simulate(cluster.DefaultConfig(park, horizon), tasks, s.Child("sim"))
		if err != nil {
			return nil, err
		}
		var out []*timeseries.Series
		for _, m := range res.Machines {
			out = append(out, hostload.RelativeSeries(m, hostload.CPUUsage, trace.LowPriority))
		}
		return out, nil
	case "AuverGrid", "SHARCNET":
		cfg := synth.DefaultGridHost(system)
		s := rng.New(seed).Child(system)
		var out []*timeseries.Series
		for i := 0; i < hosts; i++ {
			cpu, _ := synth.GridHostSeries(cfg, horizon, s.Child(fmt.Sprintf("h%d", i)))
			out = append(out, cpu)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unknown system %q (want Google, AuverGrid or SHARCNET)", system)
}
