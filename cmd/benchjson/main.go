// Command benchjson converts `go test -bench` text output into a
// single JSON document, so benchmark results can be committed and
// diffed across PRs without parsing fragile columns.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson > BENCH.json
//
// Each benchmark line ("BenchmarkName-8  100  123 ns/op  45 B/op ...")
// becomes one entry carrying the iteration count, ns/op, B/op,
// allocs/op and any custom b.ReportMetric units; the goos/goarch/pkg/
// cpu header lines become per-entry metadata. Non-benchmark lines
// (PASS, ok, test logs) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result.
type Entry struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the whole output document.
type Doc struct {
	Goos    string  `json:"goos,omitempty"`
	Goarch  string  `json:"goarch,omitempty"`
	CPU     string  `json:"cpu,omitempty"`
	Results []Entry `json:"results"`
}

func main() {
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr))
}

func run(stdin io.Reader, stdout, stderr io.Writer) int {
	doc, err := parse(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if len(doc.Results) == 0 {
		fmt.Fprintf(stderr, "benchjson: no benchmark lines on stdin\n")
		return 1
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	return 0
}

// parse reads go-test bench output. Header lines (goos:, goarch:,
// pkg:, cpu:) apply to every benchmark line after them; pkg resets the
// package attribution as multi-package runs emit a new header block.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Results: []Entry{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		e, err := parseBenchLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		e.Pkg = pkg
		doc.Results = append(doc.Results, e)
	}
	return doc, sc.Err()
}

// parseBenchLine parses one "BenchmarkX-8 N val unit [val unit]..."
// line.
func parseBenchLine(line string) (Entry, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Entry{}, fmt.Errorf("malformed benchmark line")
	}
	e := Entry{Name: fields[0]}
	if name, procs, ok := strings.Cut(e.Name, "-"); ok {
		if p, err := strconv.Atoi(procs); err == nil {
			e.Name, e.Procs = name, p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("iterations: %w", err)
	}
	e.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = val
		case "B/op":
			v := val
			e.BytesPerOp = &v
		case "allocs/op":
			v := val
			e.AllocsOp = &v
		default:
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
			}
			e.Metrics[unit] = val
		}
	}
	return e, nil
}
