// Command benchjson converts `go test -bench` text output into a
// single JSON document, so benchmark results can be committed and
// diffed across PRs without parsing fragile columns.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson > BENCH.json
//	benchjson -old BENCH_pr3.json -new BENCH_pr4.json [-threshold 0.10]
//
// Each benchmark line ("BenchmarkName-8  100  123 ns/op  45 B/op ...")
// becomes one entry carrying the iteration count, ns/op, B/op,
// allocs/op and any custom b.ReportMetric units; the goos/goarch/pkg/
// cpu header lines become per-entry metadata. Non-benchmark lines
// (PASS, ok, test logs) are ignored.
//
// With -old and -new, benchjson instead compares two such documents:
// it prints the per-benchmark ns/op, B/op and allocs/op deltas and
// exits with status 2 if any benchmark's ns/op or allocs/op regressed
// by more than -threshold (a fraction; 0.10 = 10%). Benchmarks present
// in only one document are reported but never gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result.
type Entry struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the whole output document.
type Doc struct {
	Goos    string  `json:"goos,omitempty"`
	Goarch  string  `json:"goarch,omitempty"`
	CPU     string  `json:"cpu,omitempty"`
	Results []Entry `json:"results"`
}

func main() {
	oldPath := flag.String("old", "", "baseline BENCH json (enables compare mode with -new)")
	newPath := flag.String("new", "", "candidate BENCH json (enables compare mode with -old)")
	threshold := flag.Float64("threshold", 0.10,
		"max allowed fractional regression in ns/op or allocs/op before exiting non-zero")
	flag.Parse()
	if (*oldPath == "") != (*newPath == "") {
		fmt.Fprintln(os.Stderr, "benchjson: -old and -new must be given together")
		os.Exit(1)
	}
	if *oldPath != "" {
		os.Exit(compareFiles(*oldPath, *newPath, *threshold, os.Stdout, os.Stderr))
	}
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr))
}

func run(stdin io.Reader, stdout, stderr io.Writer) int {
	doc, err := parse(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if len(doc.Results) == 0 {
		fmt.Fprintf(stderr, "benchjson: no benchmark lines on stdin\n")
		return 1
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	return 0
}

// compareFiles loads two benchmark documents and diffs them. Exit
// codes: 0 within threshold, 1 load error, 2 regression.
func compareFiles(oldPath, newPath string, threshold float64, stdout, stderr io.Writer) int {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	regressed := compare(oldDoc, newDoc, threshold, stdout)
	if len(regressed) > 0 {
		fmt.Fprintf(stderr, "benchjson: %d benchmark(s) regressed beyond %.0f%%: %s\n",
			len(regressed), threshold*100, strings.Join(regressed, ", "))
		return 2
	}
	return 0
}

func loadDoc(path string) (*Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// benchKey identifies a benchmark across documents. Procs is left out:
// the machine, not the code, decides GOMAXPROCS.
func benchKey(e Entry) string {
	if e.Pkg == "" {
		return e.Name
	}
	return e.Pkg + "." + e.Name
}

// compare prints the delta table in the old document's order (new-only
// benchmarks follow) and returns the keys whose ns/op or allocs/op
// regressed beyond the threshold.
func compare(oldDoc, newDoc *Doc, threshold float64, w io.Writer) []string {
	newByKey := make(map[string]Entry, len(newDoc.Results))
	for _, e := range newDoc.Results {
		newByKey[e.Name] = e
		newByKey[benchKey(e)] = e
	}
	fmt.Fprintf(w, "%-52s %26s %26s %26s\n", "benchmark",
		"ns/op (old→new)", "B/op (old→new)", "allocs/op (old→new)")
	var regressed []string
	seen := make(map[string]bool)
	for _, o := range oldDoc.Results {
		key := benchKey(o)
		n, ok := newByKey[key]
		if !ok {
			n, ok = newByKey[o.Name]
		}
		if !ok {
			fmt.Fprintf(w, "%-52s %26s\n", key, "removed")
			continue
		}
		seen[benchKey(n)] = true
		bad := false
		row := fmt.Sprintf("%-52s %26s", key, deltaCol(o.NsPerOp, n.NsPerOp, threshold, &bad))
		row += fmt.Sprintf(" %26s", deltaColPtr(o.BytesPerOp, n.BytesPerOp, 0, nil))
		row += fmt.Sprintf(" %26s", deltaColPtr(o.AllocsOp, n.AllocsOp, threshold, &bad))
		fmt.Fprintln(w, row)
		if bad {
			regressed = append(regressed, key)
		}
	}
	for _, n := range newDoc.Results {
		if !seen[benchKey(n)] {
			fmt.Fprintf(w, "%-52s %26s\n", benchKey(n), "added")
			seen[benchKey(n)] = true
		}
	}
	return regressed
}

// deltaCol formats "old→new Δ%" and flags a regression when the
// increase exceeds the threshold (threshold 0 or bad nil = report
// only, never gate — used for B/op, which allocs/op already covers).
func deltaCol(oldV, newV, threshold float64, bad *bool) string {
	if oldV == 0 {
		return fmt.Sprintf("%s→%s", fmtVal(oldV), fmtVal(newV))
	}
	d := (newV - oldV) / oldV
	if bad != nil && threshold > 0 && d > threshold {
		*bad = true
	}
	return fmt.Sprintf("%s→%s %+.1f%%", fmtVal(oldV), fmtVal(newV), d*100)
}

func deltaColPtr(oldV, newV *float64, threshold float64, bad *bool) string {
	if oldV == nil || newV == nil {
		return "-"
	}
	return deltaCol(*oldV, *newV, threshold, bad)
}

// fmtVal renders a metric compactly (12345678 → 12.3M).
func fmtVal(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case v == float64(int64(v)):
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

// parse reads go-test bench output. Header lines (goos:, goarch:,
// pkg:, cpu:) apply to every benchmark line after them; pkg resets the
// package attribution as multi-package runs emit a new header block.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Results: []Entry{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		e, err := parseBenchLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		e.Pkg = pkg
		doc.Results = append(doc.Results, e)
	}
	return doc, sc.Err()
}

// parseBenchLine parses one "BenchmarkX-8 N val unit [val unit]..."
// line.
func parseBenchLine(line string) (Entry, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Entry{}, fmt.Errorf("malformed benchmark line")
	}
	e := Entry{Name: fields[0]}
	if name, procs, ok := strings.Cut(e.Name, "-"); ok {
		if p, err := strconv.Atoi(procs); err == nil {
			e.Name, e.Procs = name, p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("iterations: %w", err)
	}
	e.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = val
		case "B/op":
			v := val
			e.BytesPerOp = &v
		case "allocs/op":
			v := val
			e.AllocsOp = &v
		default:
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
			}
			e.Metrics[unit] = val
		}
	}
	return e, nil
}
