package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRunAllSerial-8     	       2	 734567890 ns/op	123456789 B/op	 1234567 allocs/op
BenchmarkRunAllParallel-8   	       3	 334567890 ns/op	123456789 B/op	 1234567 allocs/op
BenchmarkTable1SubmissionRates-8	     100	  11724908 ns/op	         0.9213 Google_fairness	 4000000 B/op	   50000 allocs/op
PASS
ok  	repro	12.345s
pkg: repro/internal/cluster
BenchmarkSimulate 	      18	  60310496 ns/op
PASS
ok  	repro/internal/cluster	2.2s
`

func TestParseSample(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Errorf("meta = %q/%q", doc.Goos, doc.Goarch)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Errorf("cpu = %q", doc.CPU)
	}
	if len(doc.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(doc.Results))
	}

	serial := doc.Results[0]
	if serial.Name != "BenchmarkRunAllSerial" || serial.Procs != 8 {
		t.Errorf("name/procs = %q/%d", serial.Name, serial.Procs)
	}
	if serial.Pkg != "repro" || serial.Iterations != 2 || serial.NsPerOp != 734567890 {
		t.Errorf("serial = %+v", serial)
	}
	if serial.BytesPerOp == nil || *serial.BytesPerOp != 123456789 {
		t.Errorf("bytes/op = %v", serial.BytesPerOp)
	}
	if serial.AllocsOp == nil || *serial.AllocsOp != 1234567 {
		t.Errorf("allocs/op = %v", serial.AllocsOp)
	}

	table1 := doc.Results[2]
	if got := table1.Metrics["Google_fairness"]; got != 0.9213 {
		t.Errorf("custom metric = %v", got)
	}

	sim := doc.Results[3]
	if sim.Pkg != "repro/internal/cluster" {
		t.Errorf("pkg attribution not reset: %q", sim.Pkg)
	}
	if sim.Procs != 0 || sim.Name != "BenchmarkSimulate" {
		t.Errorf("no-suffix name = %q/%d", sim.Name, sim.Procs)
	}
	if sim.BytesPerOp != nil {
		t.Error("bytes/op invented for a non-benchmem line")
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(strings.NewReader(sample), &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var doc Doc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.Results) != 4 {
		t.Errorf("round-trip lost results: %d", len(doc.Results))
	}
}

func TestRunNoBenchLines(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(strings.NewReader("PASS\nok \trepro\t1s\n"), &out, &errOut); code == 0 {
		t.Error("empty input accepted")
	}
}

func TestParseMalformedLine(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX-8 notanumber 5 ns/op\n")); err == nil {
		t.Error("bad iteration count accepted")
	}
	if _, err := parse(strings.NewReader("BenchmarkX-8 5\n")); err == nil {
		t.Error("truncated line accepted")
	}
}

func fp(v float64) *float64 { return &v }

func compareDocs() (*Doc, *Doc) {
	oldDoc := &Doc{Results: []Entry{
		{Name: "BenchmarkSimulate", Pkg: "repro/internal/cluster",
			NsPerOp: 100e6, BytesPerOp: fp(17e6), AllocsOp: fp(170000)},
		{Name: "BenchmarkRunAllSerial", Pkg: "repro",
			NsPerOp: 2e9, BytesPerOp: fp(150e6), AllocsOp: fp(270000)},
		{Name: "BenchmarkGone", Pkg: "repro", NsPerOp: 1},
	}}
	newDoc := &Doc{Results: []Entry{
		{Name: "BenchmarkSimulate", Pkg: "repro/internal/cluster",
			NsPerOp: 25e6, BytesPerOp: fp(5e6), AllocsOp: fp(1200)},
		{Name: "BenchmarkRunAllSerial", Pkg: "repro",
			NsPerOp: 1.9e9, BytesPerOp: fp(140e6), AllocsOp: fp(260000)},
		{Name: "BenchmarkFresh", Pkg: "repro", NsPerOp: 1},
	}}
	return oldDoc, newDoc
}

func TestCompareImprovement(t *testing.T) {
	oldDoc, newDoc := compareDocs()
	var out bytes.Buffer
	regressed := compare(oldDoc, newDoc, 0.10, &out)
	if len(regressed) != 0 {
		t.Errorf("improvements flagged as regressions: %v", regressed)
	}
	text := out.String()
	for _, want := range []string{
		"repro/internal/cluster.BenchmarkSimulate", "-75.0%",
		"removed", "added", "repro.BenchmarkFresh",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	oldDoc, newDoc := compareDocs()
	// 25e6 -> regression threshold is on the NEW side: make ns/op worse.
	newDoc.Results[0].NsPerOp = 120e6
	var out bytes.Buffer
	regressed := compare(oldDoc, newDoc, 0.10, &out)
	if len(regressed) != 1 || regressed[0] != "repro/internal/cluster.BenchmarkSimulate" {
		t.Errorf("regressed = %v", regressed)
	}
	// Just inside the threshold gates nothing.
	newDoc.Results[0].NsPerOp = 109e6
	if r := compare(oldDoc, newDoc, 0.10, &out); len(r) != 0 {
		t.Errorf("within-threshold drift flagged: %v", r)
	}
	// allocs/op regressions gate too.
	newDoc.Results[0].AllocsOp = fp(200000)
	if r := compare(oldDoc, newDoc, 0.10, &out); len(r) != 1 {
		t.Errorf("alloc regression not flagged: %v", r)
	}
	// B/op alone never gates.
	newDoc.Results[0].AllocsOp = fp(1200)
	newDoc.Results[0].BytesPerOp = fp(50e6)
	if r := compare(oldDoc, newDoc, 0.10, &out); len(r) != 0 {
		t.Errorf("B/op gated: %v", r)
	}
}

func TestCompareFiles(t *testing.T) {
	oldDoc, newDoc := compareDocs()
	dir := t.TempDir()
	writeDoc := func(name string, d *Doc) string {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		p := dir + "/" + name
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldP := writeDoc("old.json", oldDoc)
	newP := writeDoc("new.json", newDoc)
	var out, errOut bytes.Buffer
	if code := compareFiles(oldP, newP, 0.10, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	newDoc.Results[1].NsPerOp = 4e9
	newP = writeDoc("new2.json", newDoc)
	if code := compareFiles(oldP, newP, 0.10, &out, &errOut); code != 2 {
		t.Fatalf("regression exit = %d, want 2", code)
	}
	if code := compareFiles(oldP, dir+"/missing.json", 0.10, &out, &errOut); code != 1 {
		t.Fatalf("missing file exit = %d, want 1", code)
	}
}
