package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRunAllSerial-8     	       2	 734567890 ns/op	123456789 B/op	 1234567 allocs/op
BenchmarkRunAllParallel-8   	       3	 334567890 ns/op	123456789 B/op	 1234567 allocs/op
BenchmarkTable1SubmissionRates-8	     100	  11724908 ns/op	         0.9213 Google_fairness	 4000000 B/op	   50000 allocs/op
PASS
ok  	repro	12.345s
pkg: repro/internal/cluster
BenchmarkSimulate 	      18	  60310496 ns/op
PASS
ok  	repro/internal/cluster	2.2s
`

func TestParseSample(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Errorf("meta = %q/%q", doc.Goos, doc.Goarch)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Errorf("cpu = %q", doc.CPU)
	}
	if len(doc.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(doc.Results))
	}

	serial := doc.Results[0]
	if serial.Name != "BenchmarkRunAllSerial" || serial.Procs != 8 {
		t.Errorf("name/procs = %q/%d", serial.Name, serial.Procs)
	}
	if serial.Pkg != "repro" || serial.Iterations != 2 || serial.NsPerOp != 734567890 {
		t.Errorf("serial = %+v", serial)
	}
	if serial.BytesPerOp == nil || *serial.BytesPerOp != 123456789 {
		t.Errorf("bytes/op = %v", serial.BytesPerOp)
	}
	if serial.AllocsOp == nil || *serial.AllocsOp != 1234567 {
		t.Errorf("allocs/op = %v", serial.AllocsOp)
	}

	table1 := doc.Results[2]
	if got := table1.Metrics["Google_fairness"]; got != 0.9213 {
		t.Errorf("custom metric = %v", got)
	}

	sim := doc.Results[3]
	if sim.Pkg != "repro/internal/cluster" {
		t.Errorf("pkg attribution not reset: %q", sim.Pkg)
	}
	if sim.Procs != 0 || sim.Name != "BenchmarkSimulate" {
		t.Errorf("no-suffix name = %q/%d", sim.Name, sim.Procs)
	}
	if sim.BytesPerOp != nil {
		t.Error("bytes/op invented for a non-benchmem line")
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(strings.NewReader(sample), &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var doc Doc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.Results) != 4 {
		t.Errorf("round-trip lost results: %d", len(doc.Results))
	}
}

func TestRunNoBenchLines(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(strings.NewReader("PASS\nok \trepro\t1s\n"), &out, &errOut); code == 0 {
		t.Error("empty input accepted")
	}
}

func TestParseMalformedLine(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX-8 notanumber 5 ns/op\n")); err == nil {
		t.Error("bad iteration count accepted")
	}
	if _, err := parse(strings.NewReader("BenchmarkX-8 5\n")); err == nil {
		t.Error("truncated line accepted")
	}
}
