package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
)

// TestCLIChaosInvariant is the end-to-end chaos invariant: a run with
// an injected panic under -keep-going must (1) exit with the
// keep-going failure code, (2) annotate the hit experiment, and (3)
// write byte-identical .dat/.csv artifacts for every experiment the
// fault did not touch — chaos in one experiment never bleeds into its
// neighbours' outputs.
func TestCLIChaosInvariant(t *testing.T) {
	cleanDir, chaosDir := t.TempDir(), t.TempDir()

	var cleanOut bytes.Buffer
	if code := run(tiny("-out", cleanDir), &cleanOut, io.Discard); code != 0 {
		t.Fatalf("clean run exit = %d, want 0", code)
	}

	restore := fault.Enable(fault.NewPlan(fault.Rule{Site: "core.exp.fig4", Hit: 1, Kind: fault.Panic}))
	defer restore()
	var chaosOut bytes.Buffer
	code := run(tiny("-keep-going", "-out", chaosDir), &chaosOut, io.Discard)
	restore()
	if code != exitKeepGoingFailures {
		t.Fatalf("chaos run exit = %d, want %d", code, exitKeepGoingFailures)
	}
	if !strings.Contains(chaosOut.String(), "FAILED:") {
		t.Fatalf("chaos stdout lacks FAILED annotation:\n%s", chaosOut.String())
	}

	files, err := os.ReadDir(cleanDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("clean run produced no artifacts")
	}
	checked := 0
	for _, f := range files {
		if strings.HasPrefix(f.Name(), "fig4") {
			// The faulted experiment must produce nothing, not garbage.
			if _, err := os.Stat(filepath.Join(chaosDir, f.Name())); err == nil {
				t.Fatalf("faulted experiment still wrote %s", f.Name())
			}
			continue
		}
		want, err := os.ReadFile(filepath.Join(cleanDir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(chaosDir, f.Name()))
		if err != nil {
			t.Fatalf("unaffected artifact %s missing from chaos run: %v", f.Name(), err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("artifact %s differs between clean and chaos runs", f.Name())
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no unaffected artifacts compared")
	}
}

// TestCLIChaosWithoutKeepGoingAborts: the same injected fault without
// -keep-going must abort the run with a non-zero, non-keep-going exit.
func TestCLIChaosWithoutKeepGoingAborts(t *testing.T) {
	restore := fault.Enable(fault.NewPlan(fault.Rule{Site: "core.exp.fig3", Hit: 1, Kind: fault.Error}))
	defer restore()
	var out, errOut bytes.Buffer
	code := run(tiny(), &out, &errOut)
	restore()
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "core: fig3") {
		t.Fatalf("stderr lacks the failing experiment:\n%s", errOut.String())
	}
}

// readCounters parses a metrics JSONL file into counter name → value.
func readCounters(t *testing.T, path string) map[string]float64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var m struct {
			Name  string  `json:"name"`
			Type  string  `json:"type"`
			Value float64 `json:"value"`
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad metrics line %q: %v", line, err)
		}
		if m.Type == "counter" {
			out[m.Name] = m.Value
		}
	}
	return out
}

// TestCLICheckpointResume is the end-to-end resume criterion: a second
// run with the same -checkpoint-dir must serve every experiment from
// its checkpoint (ckpt.hit == first run's ckpt.store), rebuild zero
// artifact cells, and still print byte-identical results.
func TestCLICheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "ckpt")
	m1 := filepath.Join(dir, "m1.jsonl")
	m2 := filepath.Join(dir, "m2.jsonl")

	var out1 bytes.Buffer
	if code := run(tiny("-checkpoint-dir", ck, "-metrics-out", m1), &out1, io.Discard); code != 0 {
		t.Fatalf("cold run exit = %d, want 0", code)
	}
	cold := readCounters(t, m1)
	if cold["ckpt.store"] == 0 {
		t.Fatalf("cold run stored no checkpoints: %v", cold)
	}
	if cold["ckpt.hit"] != 0 {
		t.Fatalf("cold run had %v checkpoint hits, want 0", cold["ckpt.hit"])
	}

	var out2 bytes.Buffer
	if code := run(tiny("-checkpoint-dir", ck, "-metrics-out", m2), &out2, io.Discard); code != 0 {
		t.Fatalf("warm run exit = %d, want 0", code)
	}
	warm := readCounters(t, m2)
	if warm["ckpt.hit"] != cold["ckpt.store"] {
		t.Fatalf("warm ckpt.hit = %v, want %v (one per stored experiment)", warm["ckpt.hit"], cold["ckpt.store"])
	}
	for name, v := range warm {
		if strings.HasPrefix(name, "core.cell.") && strings.HasSuffix(name, ".miss") && v != 0 {
			t.Fatalf("warm run rebuilt artifact cell %s %v times, want 0", name, v)
		}
	}

	// Output identical modulo the per-experiment wall times.
	a := timingRe.ReplaceAllString(out1.String(), "(T)")
	b := timingRe.ReplaceAllString(out2.String(), "(T)")
	if a != b {
		t.Fatalf("warm run output differs from cold run:\n--- cold ---\n%s\n--- warm ---\n%s", a, b)
	}
}

// TestCLICheckpointPartialResume: checkpoints for a subset of
// experiments (-only) must be reused when the full set runs, so an
// interrupted run's survivors are never rebuilt.
func TestCLICheckpointPartialResume(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "ckpt")
	m := filepath.Join(dir, "m.jsonl")

	var out bytes.Buffer
	if code := run(tiny("-checkpoint-dir", ck, "-only", "fig2,fig5"), &out, io.Discard); code != 0 {
		t.Fatalf("partial run exit = %d, want 0", code)
	}
	out.Reset()
	if code := run(tiny("-checkpoint-dir", ck, "-metrics-out", m), &out, io.Discard); code != 0 {
		t.Fatalf("full run exit = %d, want 0", code)
	}
	c := readCounters(t, m)
	if c["ckpt.hit"] != 2 {
		t.Fatalf("full run ckpt.hit = %v, want 2 (fig2 and fig5 resumed)", c["ckpt.hit"])
	}
	if c["ckpt.store"] == 0 {
		t.Fatalf("full run stored no new checkpoints: %v", c)
	}
}
