package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tiny returns flags for a seconds-fast run.
func tiny(extra ...string) []string {
	base := []string{"-machines", "10", "-sim-days", "1", "-workload-days", "1"}
	return append(base, extra...)
}

func TestReproSingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(tiny("-only", "table1"), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "Table I") || !strings.Contains(text, "Google") {
		t.Fatalf("table missing:\n%s", text)
	}
}

func TestReproWritesOutputs(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code := run(tiny("-only", "fig3,fig4", "-out", dir), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, name := range []string{"fig3.dat", "fig4a.dat", "fig4b.dat", "fig4.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s missing: %v", name, err)
		}
	}
}

func TestReproVerboseMetrics(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(tiny("-only", "fig4", "-v"), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "metric google_joint_items") {
		t.Fatalf("metrics missing:\n%s", out.String())
	}
}

func TestReproBadArgs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scale", "massive"}, &out, &errOut); code != 2 {
		t.Error("bad scale accepted")
	}
	if code := run([]string{"-only", "fig99"}, &out, &errOut); code != 2 {
		t.Error("unknown experiment accepted")
	}
	if code := run([]string{"-nosuchflag"}, &out, &errOut); code != 2 {
		t.Error("bad flag accepted")
	}
}

func TestReproMarkdownReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.md")
	var out, errOut bytes.Buffer
	code := run(tiny("-only", "table1,fig4", "-markdown", path), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"# Reproduction report", "## table1", "| system |", "`Google_fairness`"} {
		if !strings.Contains(text, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

func TestReproCheckMode(t *testing.T) {
	// At a tiny scale some checks may fail; the command must still run
	// the machinery and render the verdict table. Accept exit 0 or 1.
	var out, errOut bytes.Buffer
	code := run(tiny("-check"), &out, &errOut)
	if code != 0 && code != 1 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "checks passed") {
		t.Fatalf("check table missing:\n%s", out.String())
	}
}
