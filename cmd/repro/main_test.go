package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// tiny returns flags for a seconds-fast run.
func tiny(extra ...string) []string {
	base := []string{"-machines", "10", "-sim-days", "1", "-workload-days", "1"}
	return append(base, extra...)
}

func TestReproSingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(tiny("-only", "table1"), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "Table I") || !strings.Contains(text, "Google") {
		t.Fatalf("table missing:\n%s", text)
	}
}

func TestReproWritesOutputs(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code := run(tiny("-only", "fig3,fig4", "-out", dir), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, name := range []string{"fig3.dat", "fig4a.dat", "fig4b.dat", "fig4.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s missing: %v", name, err)
		}
	}
}

func TestReproVerboseMetrics(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(tiny("-only", "fig4", "-v"), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "metric google_joint_items") {
		t.Fatalf("metrics missing:\n%s", out.String())
	}
}

// timingRe matches the per-experiment wall-time suffix, the only part
// of the output allowed to differ between worker counts.
var timingRe = regexp.MustCompile(`\([0-9.]+s\)`)

// TestReproParallelMatchesSerial runs the full quick registry at one
// and at eight workers and requires byte-identical stdout (timing
// normalised) and byte-identical .dat/.csv output files.
func TestReproParallelMatchesSerial(t *testing.T) {
	dirs := map[int]string{1: t.TempDir(), 8: t.TempDir()}
	outs := map[int]string{}
	for _, workers := range []int{1, 8} {
		var out, errOut bytes.Buffer
		code := run(tiny("-out", dirs[workers], "-v", "-parallel", strconv.Itoa(workers)), &out, &errOut)
		if code != 0 {
			t.Fatalf("parallel=%d: exit %d: %s", workers, code, errOut.String())
		}
		// The -out lines name the temp dir; strip it so the two runs compare.
		text := strings.ReplaceAll(out.String(), dirs[workers], "OUT")
		outs[workers] = timingRe.ReplaceAllString(text, "(T)")
	}
	if outs[1] != outs[8] {
		t.Errorf("stdout differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s", outs[1], outs[8])
	}

	serialFiles, err := os.ReadDir(dirs[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(serialFiles) == 0 {
		t.Fatal("serial run wrote no output files")
	}
	for _, f := range serialFiles {
		a, err := os.ReadFile(filepath.Join(dirs[1], f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[8], f.Name()))
		if err != nil {
			t.Fatalf("parallel run missing %s: %v", f.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between -parallel 1 and -parallel 8", f.Name())
		}
	}
}

// TestReproVerboseMetricsSorted checks that -v metric lines print in
// sorted key order (they ranged over a map before, so ordering was
// nondeterministic run-to-run).
func TestReproVerboseMetricsSorted(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(tiny("-only", "fig4", "-v"), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var keys []string
	for _, line := range strings.Split(out.String(), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "metric "); ok {
			keys = append(keys, strings.SplitN(rest, " ", 2)[0])
		}
	}
	if len(keys) < 2 {
		t.Fatalf("expected several metric lines, got %v", keys)
	}
	if !sort.StringsAreSorted(keys) {
		t.Errorf("metric keys not sorted: %v", keys)
	}
}

func TestReproBadArgs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scale", "massive"}, &out, &errOut); code != 2 {
		t.Error("bad scale accepted")
	}
	if code := run([]string{"-only", "fig99"}, &out, &errOut); code != 2 {
		t.Error("unknown experiment accepted")
	}
	if code := run([]string{"-nosuchflag"}, &out, &errOut); code != 2 {
		t.Error("bad flag accepted")
	}
}

func TestReproMarkdownReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.md")
	var out, errOut bytes.Buffer
	code := run(tiny("-only", "table1,fig4", "-markdown", path), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"# Reproduction report", "## table1", "| system |", "`Google_fairness`"} {
		if !strings.Contains(text, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

func TestReproCheckMode(t *testing.T) {
	// At a tiny scale some checks may fail; the command must still run
	// the machinery and render the verdict table. Accept exit 0 or 1.
	var out, errOut bytes.Buffer
	code := run(tiny("-check"), &out, &errOut)
	if code != 0 && code != 1 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "checks passed") {
		t.Fatalf("check table missing:\n%s", out.String())
	}
}
