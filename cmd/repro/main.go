// Command repro regenerates every table and figure of the paper
// "Characterization and Comparison of Cloud versus Grid Workloads"
// (CLUSTER 2012) from the calibrated synthetic models.
//
// Usage:
//
//	repro [-scale quick|full] [-only fig3,table1] [-out dir] [-check]
//	      [-seed n] [-machines n] [-sim-days n] [-workload-days n]
//	      [-parallel n] [-metrics-out file] [-trace-out file]
//	      [-pprof addr] [-progress] [-exp-timeout d] [-keep-going]
//	      [-checkpoint-dir dir]
//
// Tables print to stdout; with -out, every figure's data series is
// written as a gnuplot-ready .dat file and every table as .csv. With
// -check, the measured metrics are verified against the paper's
// acceptance bands and the exit status reflects the verdict.
//
// Experiments run on a bounded worker pool (-parallel, default
// GOMAXPROCS); output order, tables and data files are byte-identical
// at every worker count because each experiment is a pure function of
// (seed, label)-derived random streams. -parallel 1 runs strictly
// serially.
//
// Robustness: -exp-timeout bounds each experiment's wall time;
// -keep-going annotates failed experiments "FAILED: <cause>" (exit
// code 3) instead of aborting the run; -checkpoint-dir persists each
// finished experiment so an interrupted run resumed with the same
// directory rebuilds only the missing artifacts. SIGINT/SIGTERM cancel
// the run cooperatively, flush -metrics-out/-trace-out, and exit with
// 128+signum (130 for SIGINT).
//
// Observability (-metrics-out, -trace-out, -pprof, -progress) is
// strictly additive: .dat/.csv files, metric values and all stdout up
// to the optional trailing timing summary are byte-identical with
// instrumentation on or off (enforced by
// TestInstrumentationByteIdentical). -metrics-out writes counters,
// gauges, histograms and spans as JSONL; -trace-out writes a Chrome
// trace_event file loadable in chrome://tracing or Perfetto.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// exitKeepGoingFailures is the exit code when -keep-going finished the
// run but one or more experiments failed and were annotated.
const exitKeepGoingFailures = 3

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale        = fs.String("scale", "quick", "reproduction scale: quick or full")
		only         = fs.String("only", "", "comma-separated experiment IDs (default: all)")
		out          = fs.String("out", "", "directory for .dat/.csv outputs")
		seed         = fs.Uint64("seed", 0, "override random seed")
		machines     = fs.Int("machines", 0, "override simulated machine count")
		simDays      = fs.Int("sim-days", 0, "override simulation horizon (days)")
		workloadDays = fs.Int("workload-days", 0, "override workload horizon (days)")
		parallel     = fs.Int("parallel", 0, "experiment worker pool size (0 = GOMAXPROCS, 1 = serial)")
		verbose      = fs.Bool("v", false, "print measured metrics")
		check        = fs.Bool("check", false, "verify metrics against the paper's acceptance bands")
		extensions   = fs.Bool("extensions", false, "also run the extension analyses (periodicity, prediction, queueing, robustness)")
		markdown     = fs.String("markdown", "", "write a Markdown report of all tables to this file")
		list         = fs.Bool("list", false, "list available experiments and exit")
		metricsOut   = fs.String("metrics-out", "", "write metrics and spans as JSONL to this file")
		traceOut     = fs.String("trace-out", "", "write a Chrome trace_event file to this file")
		pprofAddr    = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		progress     = fs.Bool("progress", false, "print per-experiment completion progress to stderr")
		expTimeout   = fs.Duration("exp-timeout", 0, "per-experiment deadline (0 = none)")
		keepGoing    = fs.Bool("keep-going", false, "annotate failed experiments instead of aborting the run")
		ckptDir      = fs.String("checkpoint-dir", "", "persist finished experiments here and resume from them")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, e := range core.Experiments() {
			fmt.Fprintf(stdout, "%-16s %s\n", e.ID, e.Title)
		}
		for _, e := range core.Extensions() {
			fmt.Fprintf(stdout, "%-16s %s\n", e.ID, e.Title)
		}
		return 0
	}

	cfg := core.QuickConfig()
	if *scale == "full" {
		cfg = core.DefaultConfig()
	} else if *scale != "quick" {
		fmt.Fprintf(stderr, "repro: unknown scale %q\n", *scale)
		return 2
	}
	// Overrides apply when the flag was passed, not when it is non-zero:
	// -seed 0 is a legal explicit seed, while an explicit zero or
	// negative -machines/-sim-days/-workload-days is an error rather
	// than a silently ignored value.
	passed := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { passed[f.Name] = true })
	if passed["seed"] {
		cfg.Seed = *seed
	}
	if passed["machines"] {
		if *machines <= 0 {
			fmt.Fprintf(stderr, "repro: -machines must be positive, got %d\n", *machines)
			return 2
		}
		cfg.Machines = *machines
	}
	if passed["sim-days"] {
		if *simDays <= 0 {
			fmt.Fprintf(stderr, "repro: -sim-days must be positive, got %d\n", *simDays)
			return 2
		}
		cfg.SimHorizon = int64(*simDays) * 86400
	}
	if passed["workload-days"] {
		if *workloadDays <= 0 {
			fmt.Fprintf(stderr, "repro: -workload-days must be positive, got %d\n", *workloadDays)
			return 2
		}
		cfg.WorkloadHorizon = int64(*workloadDays) * 86400
	}
	if *expTimeout < 0 {
		fmt.Fprintf(stderr, "repro: -exp-timeout must be non-negative, got %v\n", *expTimeout)
		return 2
	}

	// Open observability outputs up front so a bad path fails before
	// the (potentially minutes-long) run, not after it.
	var rec *obs.Recorder
	var metricsFile, traceFile *os.File
	if *metricsOut != "" || *traceOut != "" {
		rec = obs.NewRecorder()
		var err error
		if *metricsOut != "" {
			if metricsFile, err = os.Create(*metricsOut); err != nil {
				fmt.Fprintf(stderr, "repro: %v\n", err)
				return 1
			}
			defer metricsFile.Close()
		}
		if *traceOut != "" {
			if traceFile, err = os.Create(*traceOut); err != nil {
				fmt.Fprintf(stderr, "repro: %v\n", err)
				return 1
			}
			defer traceFile.Close()
		}
	}
	var store *ckpt.Store
	if *ckptDir != "" {
		var err error
		if store, err = ckpt.NewStore(*ckptDir, rec.Registry()); err != nil {
			fmt.Fprintf(stderr, "repro: %v\n", err)
			return 1
		}
	}
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "repro: pprof: %v\n", err)
			return 1
		}
		defer ln.Close()
		fmt.Fprintf(stderr, "pprof: serving on http://%s/debug/pprof/\n", ln.Addr())
		go http.Serve(ln, nil) //nolint — DefaultServeMux carries the pprof handlers
	}

	// Interrupt handling: the first SIGINT/SIGTERM cancels the root
	// context so experiments (and the simulator event loop) stop at
	// their next cancellation poll; finished checkpoints are already on
	// disk, and the flush below still writes -metrics-out/-trace-out
	// before the process exits with 128+signum.
	rootCtx, cancelRoot := context.WithCancelCause(context.Background())
	defer cancelRoot(nil)
	var gotSignal atomic.Value
	sigCh := make(chan os.Signal, 2)
	sigDone := make(chan struct{})
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer func() {
		signal.Stop(sigCh)
		close(sigDone)
	}()
	go func() {
		select {
		case s := <-sigCh:
			gotSignal.Store(s)
			fmt.Fprintf(stderr, "repro: received %v, cancelling (checkpoints already on disk)\n", s)
			cancelRoot(fmt.Errorf("interrupted by %v", s))
		case <-sigDone:
		}
	}()

	code := runExperiments(rootCtx, cfg, runParams{
		stdout: stdout, stderr: stderr,
		rec: rec, store: store,
		only: *only, extensions: *extensions,
		parallel: *parallel, expTimeout: *expTimeout, keepGoing: *keepGoing,
		verbose: *verbose, check: *check, progress: *progress,
		out: *out, markdown: *markdown,
	})

	// Flush observability on every exit path — including failures and
	// interrupts — so no buffer is lost.
	if metricsFile != nil {
		if err := writeAndClose(metricsFile, rec.WriteMetricsJSONL); err != nil {
			fmt.Fprintf(stderr, "repro: %v\n", err)
			if code == 0 {
				code = 1
			}
		} else {
			fmt.Fprintf(stderr, "wrote metrics to %s\n", *metricsOut)
		}
	}
	if traceFile != nil {
		if err := writeAndClose(traceFile, rec.WriteChromeTrace); err != nil {
			fmt.Fprintf(stderr, "repro: %v\n", err)
			if code == 0 {
				code = 1
			}
		} else {
			fmt.Fprintf(stderr, "wrote trace to %s\n", *traceOut)
		}
	}
	if s, ok := gotSignal.Load().(os.Signal); ok {
		if num, ok := s.(syscall.Signal); ok {
			return 128 + int(num)
		}
		return 130
	}
	return code
}

// runParams carries the post-parse options of one invocation.
type runParams struct {
	stdout, stderr io.Writer
	rec            *obs.Recorder
	store          *ckpt.Store
	only           string
	extensions     bool
	parallel       int
	expTimeout     time.Duration
	keepGoing      bool
	verbose        bool
	check          bool
	progress       bool
	out            string
	markdown       string
}

// runExperiments is the body of a run between flag parsing and the
// final observability flush: select experiments, run them through the
// fault-tolerant runner, emit results in registry order, then the
// optional markdown/check/timing stages.
func runExperiments(rootCtx context.Context, cfg core.Config, p runParams) int {
	stdout, stderr, rec := p.stdout, p.stderr, p.rec

	experiments := core.Experiments()
	if p.extensions {
		experiments = append(experiments, core.Extensions()...)
	}
	if p.only != "" {
		var selected []core.Experiment
		for _, id := range strings.Split(p.only, ",") {
			e, err := core.FindAny(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintf(stderr, "repro: %v\n", err)
				return 2
			}
			selected = append(selected, e)
		}
		experiments = selected
	}

	ctx := core.NewContext(cfg)
	ctx.SetRecorder(rec)
	fmt.Fprintf(stdout, "reproduction scale: %d machines, %.0fd sim, %.0fd workload, seed %d\n\n",
		cfg.Machines, float64(cfg.SimHorizon)/86400, float64(cfg.WorkloadHorizon)/86400, cfg.Seed)

	// Progress lines go to stderr (stdout stays byte-identical) and are
	// serialised: completion order is nondeterministic under -parallel.
	var progressMu sync.Mutex
	var progressDone int
	reportProgress := func(id string, elapsed time.Duration) {
		if !p.progress {
			return
		}
		progressMu.Lock()
		progressDone++
		fmt.Fprintf(stderr, "progress: %s done in %.1fs [%d/%d]\n", id, elapsed.Seconds(), progressDone, len(experiments))
		progressMu.Unlock()
	}

	// Wrap each experiment to record its own wall time; results are
	// emitted in registry order after the pool drains, and the
	// per-label child streams keep the output byte-identical at every
	// worker count.
	runSpan := rec.Span("stage:experiments", obs.CatStage, obs.AutoTID)
	durs := make([]time.Duration, len(experiments))
	timed := make([]core.Experiment, len(experiments))
	for i, e := range experiments {
		timed[i] = core.Experiment{ID: e.ID, Title: e.Title, Run: func(c *core.Context) (*core.Result, error) {
			start := time.Now()
			res, err := e.Run(c)
			durs[i] = time.Since(start)
			if err == nil {
				reportProgress(e.ID, durs[i])
			}
			return res, err
		}}
	}
	results, err := core.RunExperiments(rootCtx, ctx, timed, core.RunOptions{
		Workers:    p.parallel,
		ExpTimeout: p.expTimeout,
		KeepGoing:  p.keepGoing,
		Ckpt:       p.store,
	})
	runSpan.End()
	failed := 0
	for i, res := range results {
		if res.Failed() {
			failed++
		}
		if code := emitResult(stdout, stderr, experiments[i].Title, res, durs[i], p.verbose, p.out); code != 0 {
			return code
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "repro: %v\n", err)
		return 1
	}

	if p.markdown != "" {
		sp := rec.Span("stage:markdown", obs.CatStage, obs.AutoTID)
		mdErr := writeMarkdownReport(p.markdown, cfg, results, timingRows(rec))
		sp.End()
		if mdErr != nil {
			fmt.Fprintf(stderr, "repro: %v\n", mdErr)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", p.markdown)
	}

	code := 0
	if failed > 0 {
		fmt.Fprintf(stderr, "repro: %d of %d experiments FAILED (kept going)\n", failed, len(results))
		code = exitKeepGoingFailures
	}

	if p.check {
		crs := core.Check(results)
		if err := core.RenderChecks(stdout, crs); err != nil {
			fmt.Fprintf(stderr, "repro: %v\n", err)
			return 1
		}
		if pass, total := core.Passed(crs); pass < total && code == 0 {
			code = 1
		}
	}

	// The timing summary is the single intentionally-additive stdout
	// block: everything above it is byte-identical with or without
	// instrumentation, and the marker line lets tests (and scripts)
	// strip it.
	if rec != nil && p.verbose {
		fmt.Fprintf(stdout, "=== timing summary\n")
		if err := report.TimingTable(timingRows(rec)).Render(stdout); err != nil {
			fmt.Fprintf(stderr, "repro: render timing: %v\n", err)
			return 1
		}
	}
	return code
}

// writeAndClose runs the writer and closes the file exactly once
// (the deferred Close of an already-closed *os.File is a harmless
// ErrClosed), reporting the first error.
func writeAndClose(f *os.File, write func(io.Writer) error) error {
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// timingRows converts the recorder's experiment/artifact/stage span
// summaries into the report table's rows, in first-recorded order.
func timingRows(rec *obs.Recorder) []report.TimingRow {
	var rows []report.TimingRow
	for _, s := range rec.Summarize() {
		switch s.Cat {
		case obs.CatExperiment, obs.CatArtifact, obs.CatStage:
			rows = append(rows, report.TimingRow{
				Name:       s.Name,
				Count:      s.Count,
				Wall:       s.Wall,
				AllocBytes: s.AllocBytes,
				Mallocs:    s.Mallocs,
				GCs:        int64(s.NumGC),
			})
		}
	}
	return rows
}

// emitResult prints one experiment's tables, notes and metrics and
// saves its data files. Metric keys are sorted so verbose output is
// stable run-to-run. A keep-going failure placeholder prints its cause
// and writes nothing. Returns the process exit code (0 on success).
func emitResult(stdout, stderr io.Writer, title string, res *core.Result, elapsed time.Duration, verbose bool, outDir string) int {
	fmt.Fprintf(stdout, "=== %s (%.1fs)\n", title, elapsed.Seconds())
	if res.Failed() {
		fmt.Fprintf(stdout, "  FAILED: %s\n\n", res.Err)
		return 0
	}
	for _, tbl := range res.Tables {
		if err := tbl.Render(stdout); err != nil {
			fmt.Fprintf(stderr, "repro: render: %v\n", err)
			return 1
		}
	}
	for _, note := range res.Notes {
		fmt.Fprintf(stdout, "  note: %s\n", note)
	}
	if verbose {
		for _, k := range core.SortedMetricKeys(res.Metrics) {
			fmt.Fprintf(stdout, "  metric %s = %.4g\n", k, res.Metrics[k])
		}
	}
	if outDir != "" {
		for _, tbl := range res.Tables {
			if _, err := tbl.SaveCSV(outDir); err != nil {
				fmt.Fprintf(stderr, "repro: %v\n", err)
				return 1
			}
		}
		for _, s := range res.Series {
			path, err := s.SaveDAT(outDir)
			if err != nil {
				fmt.Fprintf(stderr, "repro: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "  wrote %s\n", path)
		}
	}
	fmt.Fprintln(stdout)
	return 0
}

// writeMarkdownReport renders every result's tables, notes and metrics
// as one Markdown document via the shared core renderer (the same one
// the serving daemon uses, so -markdown files and served reports are
// byte-identical for the same config). The file is closed exactly once
// and a close (flush) error is reported unless a write error precedes
// it.
func writeMarkdownReport(path string, cfg core.Config, results []*core.Result, timing []report.TimingRow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := core.WriteMarkdownReport(f, cfg, results, timing)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
