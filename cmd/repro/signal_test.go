package main

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// helperEnv marks the re-execed test binary as the repro subprocess.
const helperEnv = "REPRO_SIGNAL_HELPER"

// TestSignalHelperProcess is not a test: when re-exec'd with helperEnv
// set, it behaves as the repro CLI (the standard helper-process
// pattern), so the signal tests can drive a real process with real
// signal delivery and observe its true exit code.
func TestSignalHelperProcess(t *testing.T) {
	args := os.Getenv(helperEnv)
	if args == "" {
		t.Skip("helper process only runs under the signal tests")
	}
	os.Exit(run(strings.Split(args, "\n"), os.Stdout, os.Stderr))
}

// slowArgs builds a run long enough that a signal sent shortly after
// startup reliably lands mid-flight: a month-long serial simulation on
// few machines, so the bulk of the wall time sits inside the
// cancellation-aware event loop and the process still exits promptly
// after the signal.
func slowArgs(extra ...string) []string {
	return append([]string{"-machines", "20", "-sim-days", "90", "-workload-days", "1", "-parallel", "1"}, extra...)
}

// startHelper launches this test binary as a repro process running the
// given CLI args and waits (up to 30s) for the scale banner on stdout —
// proof that flag parsing succeeded and the signal handler is
// installed, since the banner prints after it.
func startHelper(t *testing.T, args []string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestSignalHelperProcess")
	cmd.Env = append(os.Environ(), helperEnv+"="+strings.Join(args, "\n"))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	banner := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			banner <- sc.Text()
		}
		close(banner)
		io.Copy(io.Discard, stdout)
	}()
	select {
	case line, ok := <-banner:
		if !ok || !strings.Contains(line, "reproduction scale") {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("unexpected first output line %q", line)
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("no banner from helper within 30s")
	}
	return cmd
}

// signalAndWait sends sig to the helper and returns its exit code,
// failing the test if the process did not exit within 30s.
func signalAndWait(t *testing.T, cmd *exec.Cmd, sig os.Signal) int {
	t.Helper()
	if err := cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("helper exited cleanly (err=%v), want non-zero signal exit", err)
		}
		return ee.ExitCode()
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("helper did not exit within 30s of signal")
		return -1
	}
}

// TestSIGINTExits130AndFlushes: a SIGINT mid-run must (1) exit with
// 128+SIGINT = 130, not crash or exit 1, and (2) still produce a
// complete, well-formed -metrics-out file — the observability buffers
// are flushed on the interrupt path, not lost.
func TestSIGINTExits130AndFlushes(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.jsonl")
	cmd := startHelper(t, slowArgs("-metrics-out", metrics))
	time.Sleep(200 * time.Millisecond) // let the run get genuinely mid-experiment
	if code := signalAndWait(t, cmd, syscall.SIGINT); code != 130 {
		t.Fatalf("exit code = %d, want 130 (128+SIGINT)", code)
	}

	// The metrics file must exist and be valid JSONL to the last line:
	// a torn or unflushed buffer would fail here.
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("metrics file not flushed: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("metrics file empty after SIGINT")
	}
	for i, line := range lines {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("metrics line %d not valid JSON after SIGINT: %v", i, err)
		}
	}
}

// TestSIGTERMExits143AndFlushesTrace: the same contract for SIGTERM
// (128+15) with the Chrome trace output.
func TestSIGTERMExits143AndFlushesTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	cmd := startHelper(t, slowArgs("-trace-out", trace))
	time.Sleep(200 * time.Millisecond)
	if code := signalAndWait(t, cmd, syscall.SIGTERM); code != 143 {
		t.Fatalf("exit code = %d, want 143 (128+SIGTERM)", code)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace file not flushed: %v", err)
	}
	var v map[string]any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("trace file not valid JSON after SIGTERM: %v", err)
	}
}
