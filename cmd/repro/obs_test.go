package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stripTimingSummary removes the optional trailing timing-summary
// block, the single stdout section instrumentation is allowed to add.
func stripTimingSummary(s string) string {
	if i := strings.Index(s, "=== timing summary"); i >= 0 {
		return s[:i]
	}
	return s
}

// TestInstrumentationByteIdentical is the command-level half of the
// invariant: a run with -metrics-out and -trace-out produces the same
// stdout (timing normalised, summary stripped) and byte-identical
// .dat/.csv files as an uninstrumented run.
func TestInstrumentationByteIdentical(t *testing.T) {
	plainDir, obsDir := t.TempDir(), t.TempDir()
	scratch := t.TempDir()
	metricsPath := filepath.Join(scratch, "metrics.jsonl")
	tracePath := filepath.Join(scratch, "trace.json")

	var plainOut, plainErr bytes.Buffer
	if code := run(tiny("-out", plainDir, "-v"), &plainOut, &plainErr); code != 0 {
		t.Fatalf("plain run: exit %d: %s", code, plainErr.String())
	}
	var obsOut, obsErr bytes.Buffer
	if code := run(tiny("-out", obsDir, "-v", "-metrics-out", metricsPath, "-trace-out", tracePath),
		&obsOut, &obsErr); code != 0 {
		t.Fatalf("instrumented run: exit %d: %s", code, obsErr.String())
	}

	norm := func(s, dir string) string {
		s = stripTimingSummary(s)
		s = strings.ReplaceAll(s, dir, "OUT")
		return timingRe.ReplaceAllString(s, "(T)")
	}
	if a, b := norm(plainOut.String(), plainDir), norm(obsOut.String(), obsDir); a != b {
		t.Errorf("stdout differs with instrumentation on:\n--- plain ---\n%s\n--- instrumented ---\n%s", a, b)
	}
	if !strings.Contains(obsOut.String(), "=== timing summary") {
		t.Error("instrumented -v run missing timing summary")
	}
	if strings.Contains(plainOut.String(), "=== timing summary") {
		t.Error("uninstrumented run printed a timing summary")
	}

	files, err := os.ReadDir(plainDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("plain run wrote no output files")
	}
	for _, f := range files {
		a, err := os.ReadFile(filepath.Join(plainDir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(obsDir, f.Name()))
		if err != nil {
			t.Fatalf("instrumented run missing %s: %v", f.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs with instrumentation on", f.Name())
		}
	}
}

// TestMetricsOutWellFormed: every -metrics-out line is a JSON object,
// and the cluster event counters, cell hit/miss counters and span lines
// the tentpole promises are all present.
func TestMetricsOutWellFormed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	var out, errOut bytes.Buffer
	if code := run(tiny("-metrics-out", path, "-parallel", "4"), &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	types := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if n, ok := m["name"].(string); ok {
			names[n] = true
		}
		if ty, ok := m["type"].(string); ok {
			types[ty] = true
		}
	}
	for _, want := range []string{
		"cluster.events_dispatched",
		"cluster.machine_scans",
		"cluster.queue_depth",
		"cluster.tasks_scheduled",
		"core.cell.google_tasks.miss",
		"core.cell.sim.miss",
		"par.worker_busy_us",
	} {
		if !names[want] {
			t.Errorf("metrics output missing %s", want)
		}
	}
	for _, want := range []string{"counter", "gauge", "histogram", "span"} {
		if !types[want] {
			t.Errorf("metrics output has no %s lines", want)
		}
	}
}

// TestTraceOutLoadable: -trace-out is one JSON object in Chrome
// trace_event format with a complete span per experiment and at least
// one per-worker span.
func TestTraceOutLoadable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out, errOut bytes.Buffer
	if code := run(tiny("-trace-out", path, "-parallel", "4"), &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	expSpans := map[string]int{}
	workerSpans, metadata := 0, 0
	for _, ev := range payload.TraceEvents {
		switch {
		case ev.Ph == "M":
			metadata++
		case ev.Ph == "X" && strings.HasPrefix(ev.Name, "exp:"):
			expSpans[ev.Name]++
		case ev.Ph == "X" && ev.Cat == "worker":
			workerSpans++
		}
	}
	if metadata == 0 {
		t.Error("trace has no metadata events")
	}
	if workerSpans == 0 {
		t.Error("trace has no per-worker spans")
	}
	if len(expSpans) < 10 {
		t.Errorf("trace has %d distinct experiment spans, want the full registry", len(expSpans))
	}
	for name, n := range expSpans {
		if n != 1 {
			t.Errorf("experiment %s has %d spans, want 1", name, n)
		}
	}
}

// TestObsBadPathsFailFast: an unwritable -metrics-out or -trace-out
// path fails before any experiment runs.
func TestObsBadPathsFailFast(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "x")
	for _, flag := range []string{"-metrics-out", "-trace-out"} {
		var out, errOut bytes.Buffer
		if code := run(tiny(flag, bad), &out, &errOut); code == 0 {
			t.Errorf("%s with bad path exited 0", flag)
		}
		if strings.Contains(out.String(), "===") {
			t.Errorf("%s with bad path still ran experiments", flag)
		}
	}
}

// TestSeedZeroHonored: -seed 0 is a legal explicit override (the old
// code treated 0 as "flag unset" and silently kept the default).
func TestSeedZeroHonored(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(tiny("-only", "table1", "-seed", "0"), &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "seed 0\n") {
		t.Errorf("-seed 0 not honored: %q", strings.SplitN(out.String(), "\n", 2)[0])
	}
	out.Reset()
	if code := run(tiny("-only", "table1"), &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "seed 1\n") {
		t.Errorf("default seed changed: %q", strings.SplitN(out.String(), "\n", 2)[0])
	}
}

// TestExplicitZeroOverridesRejected: explicit non-positive scale
// overrides are an error, not silently ignored values.
func TestExplicitZeroOverridesRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-machines", "0"},
		{"-machines", "-5"},
		{"-sim-days", "0"},
		{"-workload-days", "-1"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
		if !strings.Contains(errOut.String(), "must be positive") {
			t.Errorf("%v: missing diagnostic, got %q", args, errOut.String())
		}
	}
}

// TestProgressFlag: -progress reports each experiment on stderr and
// leaves stdout untouched.
func TestProgressFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(tiny("-only", "table1,fig4", "-progress"), &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if got := strings.Count(errOut.String(), "progress:"); got != 2 {
		t.Errorf("stderr has %d progress lines, want 2:\n%s", got, errOut.String())
	}
	if !strings.Contains(errOut.String(), "[2/2]") {
		t.Errorf("progress lines missing counts:\n%s", errOut.String())
	}
	if strings.Contains(out.String(), "progress:") {
		t.Error("progress lines leaked to stdout")
	}
}

// TestMarkdownTimingSection: the markdown report gains a Timing section
// only when instrumented.
func TestMarkdownTimingSection(t *testing.T) {
	dir := t.TempDir()
	plain, instr := filepath.Join(dir, "plain.md"), filepath.Join(dir, "instr.md")
	var out, errOut bytes.Buffer
	if code := run(tiny("-only", "table1", "-markdown", plain), &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if code := run(tiny("-only", "table1", "-markdown", instr,
		"-metrics-out", filepath.Join(dir, "m.jsonl")), &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	plainText, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	instrText, err := os.ReadFile(instr)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plainText), "## Timing") {
		t.Error("uninstrumented markdown has a Timing section")
	}
	for _, want := range []string{"## Timing", "exp:table1", "| stage |"} {
		if !strings.Contains(string(instrText), want) {
			t.Errorf("instrumented markdown missing %q", want)
		}
	}
}
