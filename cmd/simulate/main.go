// Command simulate runs the Google-cluster discrete-event simulation
// and prints host-load statistics: utilisation, noise, queue states,
// event mix and placement behaviour.
//
// Usage:
//
//	simulate [-machines 100] [-days 4] [-seed 1]
//	         [-placement balanced|best-fit|random] [-no-preemption]
//	         [-churn-mtbf-hours 0] [-churn-downtime-min 30]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cluster"
	"repro/internal/hostload"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		machines  = fs.Int("machines", 100, "machine count")
		days      = fs.Int("days", 4, "horizon in days")
		seed      = fs.Uint64("seed", 1, "random seed")
		placement = fs.String("placement", "balanced", "balanced, best-fit or random")
		noPreempt = fs.Bool("no-preemption", false, "disable priority preemption")
		mtbfHours = fs.Int("churn-mtbf-hours", 0, "machine mean time between failures (0 = no churn)")
		downMin   = fs.Int("churn-downtime-min", 30, "machine mean downtime in minutes")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	horizon := int64(*days) * 86400
	s := rng.New(*seed)
	park := synth.GoogleMachines(*machines, s.Child("machines"))
	gcfg := synth.ScaledGoogleConfig(*machines, horizon)
	tasks := synth.GenerateGoogleTasks(gcfg, s.Child("workload"))

	cfg := cluster.DefaultConfig(park, horizon)
	switch *placement {
	case "balanced":
		cfg.Placement = cluster.Balanced
	case "best-fit":
		cfg.Placement = cluster.BestFit
	case "random":
		cfg.Placement = cluster.Random
	default:
		fmt.Fprintf(stderr, "simulate: unknown placement %q\n", *placement)
		return 2
	}
	cfg.Preemption = !*noPreempt
	if *mtbfHours > 0 {
		cfg.ChurnMTBF = int64(*mtbfHours) * 3600
		cfg.ChurnDowntime = int64(*downMin) * 60
	}

	res, err := cluster.Simulate(cfg, tasks, s.Child("sim"))
	if err != nil {
		fmt.Fprintf(stderr, "simulate: %v\n", err)
		return 1
	}

	fmt.Fprintf(stdout, "simulated %d machines for %d day(s): %d tasks, %d attempts, %d events\n\n",
		*machines, *days, res.Stats.TasksSubmitted, res.Stats.Attempts, len(res.Events))

	evt := &report.Table{
		ID: "events", Title: "Event mix",
		Columns: []string{"event", "count", "share of terminal"},
	}
	var terminal int
	for e, n := range res.Stats.EventCounts {
		if e.Terminal() {
			terminal += n
		}
	}
	for _, e := range []trace.EventType{
		trace.EventSubmit, trace.EventSchedule, trace.EventFinish,
		trace.EventFail, trace.EventKill, trace.EventEvict, trace.EventLost,
	} {
		share := "-"
		if e.Terminal() && terminal > 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(res.Stats.EventCounts[e])/float64(terminal))
		}
		evt.AddRow(e.String(), fmt.Sprintf("%d", res.Stats.EventCounts[e]), share)
	}
	if err := evt.Render(stdout); err != nil {
		return 1
	}
	fmt.Fprintf(stdout, "abnormal completion fraction: %.3f (paper: 0.592)\n", res.Stats.AbnormalFraction())
	fmt.Fprintf(stdout, "preemptions: %d, never scheduled: %d, machine failures: %d\n\n",
		res.Stats.Preemptions, res.Stats.NeverScheduled, res.Stats.MachineFailures)

	load := &report.Table{
		ID: "load", Title: "Host load summary",
		Columns: []string{"metric", "value"},
	}
	cpuMean := hostload.MeanRelativeUsage(res.Machines, hostload.CPUUsage, trace.LowPriority)
	memMean := hostload.MeanRelativeUsage(res.Machines, hostload.MemUsed, trace.LowPriority)
	cpuHigh := hostload.MeanRelativeUsage(res.Machines, hostload.CPUUsage, trace.HighPriority)
	noise := hostload.Noise(res.Machines, hostload.CPUUsage, 2)
	var running []float64
	for _, m := range res.Machines {
		running = append(running, stats.Mean(m.Running.Values))
	}
	load.AddRow("mean CPU usage (relative)", report.F2(cpuMean))
	load.AddRow("mean memory usage (relative)", report.F2(memMean))
	load.AddRow("mean CPU usage, high priority", report.F2(cpuHigh))
	load.AddRow("mean running tasks per host", report.F2(stats.Mean(running)))
	load.AddRow("CPU noise min/mean/max", fmt.Sprintf("%s / %s / %s",
		report.F(noise.Min), report.F(noise.Mean), report.F(noise.Max)))
	load.AddRow("CPU lag-1 autocorrelation", report.F(hostload.MeanAutocorrelation(res.Machines, hostload.CPUUsage, 1)))
	if err := load.Render(stdout); err != nil {
		return 1
	}
	return 0
}
