package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSimulateRuns(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-machines", "8", "-days", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"Event mix", "abnormal completion fraction", "Host load summary", "mean CPU usage"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSimulatePlacements(t *testing.T) {
	for _, pol := range []string{"balanced", "best-fit", "random"} {
		var out, errOut bytes.Buffer
		code := run([]string{"-machines", "4", "-days", "1", "-placement", pol}, &out, &errOut)
		if code != 0 {
			t.Fatalf("%s: exit %d: %s", pol, code, errOut.String())
		}
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-placement", "nope"}, &out, &errOut); code != 2 {
		t.Fatal("unknown placement accepted")
	}
}

func TestSimulateNoPreemption(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-machines", "4", "-days", "1", "-no-preemption"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "preemptions: 0") {
		t.Errorf("preemption not disabled:\n%s", out.String())
	}
}

func TestSimulateChurn(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-machines", "6", "-days", "2", "-churn-mtbf-hours", "6", "-churn-downtime-min", "20"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if strings.Contains(out.String(), "machine failures: 0\n") {
		t.Errorf("churn produced no failures:\n%s", out.String())
	}
}

func TestSimulateBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nosuchflag"}, &out, &errOut); code != 2 {
		t.Fatal("bad flag accepted")
	}
}
