#!/usr/bin/env bash
# Multi-replica smoke: boot a 3-replica reprod fleet over one shared
# checkpoint directory, point reprobench -strict at all three, and make
# sure a single drain signal takes every replica down cleanly.
#
# Replica r2 runs with chaos injections armed (-chaos-prob 1): the
# fleet-level contract is that error injections at the lease, peer-fetch
# and store-write sites degrade a replica, never fail its requests.
set -euo pipefail

workdir=$(mktemp -d)
ckpt="$workdir/ckpt"
mkdir -p "$ckpt"
pids=()

cleanup() {
    if [ "${#pids[@]}" -gt 0 ]; then
        kill "${pids[@]}" 2>/dev/null || true
        wait 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building =="
go build -o "$workdir/reprod" ./cmd/reprod
go build -o "$workdir/reprobench" ./cmd/reprobench

scenario=(-machines 4 -sim-days 1 -workload-days 1)

# boot NAME [extra flags...] — starts a replica on an ephemeral port in
# the background. Runs in the main shell (no command substitution) so
# the pid lands in pids[]; the bound address comes from wait_addr.
boot() {
    local name=$1
    shift
    "$workdir/reprod" -addr 127.0.0.1:0 -checkpoint-dir "$ckpt" \
        -replica-id "$name" -lease-ttl 1s "${scenario[@]}" "$@" \
        >"$workdir/$name.log" 2>&1 &
    pids+=($!)
}

# wait_addr NAME — parses the bound address out of a replica's startup
# log, retrying while the daemon boots.
wait_addr() {
    local name=$1 addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's|.*serving on http://\([0-9.:]*\).*|\1|p' "$workdir/$name.log" | head -n1)
        if [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        sleep 0.1
    done
    echo "replica $name never bound; log:" >&2
    cat "$workdir/$name.log" >&2
    return 1
}

echo "== booting 3 replicas (shared checkpoint dir, r2 chaos-armed) =="
boot r0
a0=$(wait_addr r0)
boot r1 -peers "$a0"
a1=$(wait_addr r1)
boot r2 -peers "$a0,$a1" -chaos-seed 1 -chaos-prob 1
a2=$(wait_addr r2)
echo "replicas: r0=$a0 r1=$a1 r2=$a2"

echo "== healthz names each replica =="
for pair in "r0 $a0" "r1 $a1" "r2 $a2"; do
    set -- $pair
    body=$(curl -fsS "http://$2/healthz")
    case "$body" in
    *"\"replica\":\"$1\""*) ;;
    *)
        echo "replica $1 healthz: $body" >&2
        exit 1
        ;;
    esac
done

echo "== reprobench -strict against the fleet =="
"$workdir/reprobench" -addr "$a0,$a1,$a2" -requests 96 -concurrency 8 -strict

echo "== one build fleet-wide: byte-identical artifact from every replica =="
curl -fsS "http://$a0/v1/artifacts/fig2" >"$workdir/fig2.r0"
curl -fsS "http://$a1/v1/artifacts/fig2" >"$workdir/fig2.r1"
curl -fsS "http://$a2/v1/artifacts/fig2" >"$workdir/fig2.r2"
cmp "$workdir/fig2.r0" "$workdir/fig2.r1"
cmp "$workdir/fig2.r0" "$workdir/fig2.r2"

echo "== graceful drain: SIGTERM every replica, expect exit 0 =="
kill -TERM "${pids[@]}"
code=0
for pid in "${pids[@]}"; do
    if ! wait "$pid"; then
        echo "replica pid $pid exited non-zero" >&2
        code=1
    fi
done
pids=()
if [ "$code" -ne 0 ]; then
    for log in "$workdir"/r*.log; do
        echo "--- $log ---" >&2
        cat "$log" >&2
    done
    exit "$code"
fi

echo "== multi-replica smoke OK =="
