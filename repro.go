// Package repro is a Go reproduction of "Characterization and
// Comparison of Cloud versus Grid Workloads" (Di, Kondo, Cirne —
// IEEE CLUSTER 2012).
//
// The library contains:
//
//   - calibrated synthetic workload generators for the Google cluster
//     trace and seven Grid/HPC systems (AuverGrid, NorduGrid, SHARCNET,
//     ANL, RICC, MetaCentrum, LLNL-Atlas, plus DAS-2),
//   - a discrete-event cluster simulator implementing the paper's
//     scheduling model (12 priorities, FCFS, preemption, failure and
//     resubmission, 5-minute usage sampling),
//   - the paper's statistical toolkit (CDFs, mass-count disparity,
//     Jain fairness, mean-filter noise, autocorrelation),
//   - trace-format codecs (Google clusterdata-v1 CSV, SWF/GWA), and
//   - one experiment per table and figure of the paper.
//
// This root package is the stable facade; the implementation lives in
// internal packages whose key types are re-exported as aliases below.
package repro

import (
	"repro/internal/capacity"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fit"
	"repro/internal/predict"
	"repro/internal/rng"
	"repro/internal/spectral"
	"repro/internal/synth"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// Core data-model aliases.
type (
	// Task is one schedulable unit of a job.
	Task = trace.Task
	// Job is a per-job summary used by the workload analyses.
	Job = trace.Job
	// Machine is one cluster host with normalised capacities.
	Machine = trace.Machine
	// TaskEvent is one scheduler event (submit/schedule/finish/...).
	TaskEvent = trace.TaskEvent
	// Trace bundles machines, jobs, tasks, events and usage samples.
	Trace = trace.Trace

	// ClusterConfig parameterises the simulator.
	ClusterConfig = cluster.Config
	// ClusterResult is the simulator output (events + machine series).
	ClusterResult = cluster.Result
	// MachineSeries is one machine's sampled load signals.
	MachineSeries = cluster.MachineSeries

	// GoogleConfig parameterises the Google workload model.
	GoogleConfig = synth.GoogleConfig
	// GridSystem is a parameterised Grid/HPC workload model.
	GridSystem = synth.GridSystem

	// ExperimentConfig scales the paper reproduction.
	ExperimentConfig = core.Config
	// ExperimentResult is one regenerated table/figure.
	ExperimentResult = core.Result
)

// GenerateGoogleWorkload generates the calibrated Google task stream
// at the paper's full submission rate (552 jobs/hour) over the horizon
// (seconds), along with the derived per-job summaries.
func GenerateGoogleWorkload(horizon int64, seed uint64) ([]Task, []Job) {
	cfg := synth.DefaultGoogleConfig(horizon)
	tasks := synth.GenerateGoogleTasks(cfg, rng.New(seed))
	return tasks, synth.GoogleJobsFromTasks(tasks)
}

// GenerateGridWorkload generates the job stream of the named Grid/HPC
// system ("AuverGrid", "NorduGrid", "SHARCNET", "ANL", "RICC",
// "MetaCentrum", "LLNL-Atlas" or "DAS-2") over the horizon (seconds).
func GenerateGridWorkload(system string, horizon int64, seed uint64) ([]Job, error) {
	sys, err := synth.SystemByName(system)
	if err != nil {
		return nil, err
	}
	return sys.Generate(horizon, rng.New(seed)), nil
}

// GridSystemNames lists the supported Grid/HPC systems in paper order.
func GridSystemNames() []string {
	names := make([]string, 0, len(synth.GridSystems)+1)
	for _, g := range synth.GridSystems {
		names = append(names, g.Name)
	}
	return append(names, synth.DAS2.Name)
}

// SimulateGoogleCluster builds a heterogeneous machine park of the
// given size, generates a utilisation-scaled Google workload and runs
// the full cluster simulation over the horizon (seconds).
func SimulateGoogleCluster(machines int, horizon int64, seed uint64) (*ClusterResult, error) {
	s := rng.New(seed)
	park := synth.GoogleMachines(machines, s.Child("machines"))
	gcfg := synth.ScaledGoogleConfig(machines, horizon)
	tasks := synth.GenerateGoogleTasks(gcfg, s.Child("workload"))
	cfg := cluster.DefaultConfig(park, horizon)
	return cluster.Simulate(cfg, tasks, s.Child("sim"))
}

// Experiments lists the paper's tables and figures (fig2..fig13,
// table1..table3) as runnable experiments.
func Experiments() []core.Experiment { return core.Experiments() }

// RunExperiment regenerates one paper artifact by ID (e.g. "fig3",
// "table1") at the given scale.
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentResult, error) {
	exp, err := core.Find(id)
	if err != nil {
		return nil, err
	}
	return exp.Run(core.NewContext(cfg))
}

// RunAllExperiments regenerates every table and figure, sharing one
// workload generation and one simulation across all of them.
func RunAllExperiments(cfg ExperimentConfig) ([]*ExperimentResult, error) {
	return core.RunAll(core.NewContext(cfg))
}

// RunAllExperimentsParallel is RunAllExperiments over a bounded worker
// pool (workers <= 0 means GOMAXPROCS). Results come back in registry
// order and are byte-identical to the serial run: every experiment
// draws from splittable (seed, label) random streams, so no experiment
// can observe how many neighbours run beside it.
func RunAllExperimentsParallel(cfg ExperimentConfig, workers int) ([]*ExperimentResult, error) {
	return core.RunAllParallel(core.NewContext(cfg), workers)
}

// DefaultExperimentConfig is the full reproduction scale.
func DefaultExperimentConfig() ExperimentConfig { return core.DefaultConfig() }

// QuickExperimentConfig is a fast scale for demos and tests.
func QuickExperimentConfig() ExperimentConfig { return core.QuickConfig() }

// ExtensionExperiments lists the beyond-the-paper analyses
// (periodicity, best-fit prediction, grid queueing).
func ExtensionExperiments() []core.Experiment { return core.Extensions() }

// Further capability aliases: prediction, fitting, capacity planning
// and spectral analysis.
type (
	// Series is a regularly-sampled load signal.
	Series = timeseries.Series
	// Predictor forecasts the next sample of a load series.
	Predictor = predict.Predictor
	// PredictorEvaluation summarises one-step-ahead accuracy.
	PredictorEvaluation = predict.Evaluation
	// FittedModel is a parametric distribution fitted to a sample.
	FittedModel = fit.Model
	// ConsolidationPlan is a capacity-planning result.
	ConsolidationPlan = capacity.Plan
	// SpectralPeak describes a dominant periodic component.
	SpectralPeak = spectral.Peak
)

// StandardPredictors returns the host-load prediction suite
// (persistence, moving averages, exponential smoothing, AR(1), Markov
// levels).
func StandardPredictors() []Predictor { return predict.Standard() }

// BestPredictor selects the best-fit prediction method for a host
// population — the paper's stated future work.
func BestPredictor(series []*Series, warmup int) (Predictor, PredictorEvaluation) {
	return predict.Best(predict.Standard(), series, warmup)
}

// FitDistribution fits the standard parametric families to a sample
// and returns them ranked by Kolmogorov-Smirnov distance.
func FitDistribution(sample []float64) ([]FittedModel, error) {
	return fit.Fit(sample)
}

// PlanConsolidation computes the machines needed to pack the simulated
// cluster's load under the given utilisation ceilings.
func PlanConsolidation(res *ClusterResult, cpuCeiling, memCeiling float64) (ConsolidationPlan, error) {
	demand, err := capacity.ClusterDemand(res.Machines)
	if err != nil {
		return ConsolidationPlan{}, err
	}
	return capacity.MakePlan(demand, cpuCeiling, memCeiling)
}

// DominantPeriod finds the strongest periodic component of a load or
// submission-count series.
func DominantPeriod(s *Series) (SpectralPeak, error) {
	return spectral.DominantPeriod(s)
}
