// Package spectral provides periodicity detection for load signals:
// a radix-2 FFT, the periodogram, and dominant-period extraction.
// The related work the paper builds on (H. Li, "Workload dynamics on
// clusters and grids") shows Grid load exhibits clear diurnal
// patterns; this package makes that measurable: Grid arrival series
// show a strong 24-hour peak, Google's essentially none.
package spectral

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/timeseries"
)

// FFT computes the in-place iterative radix-2 Cooley-Tukey transform.
// len(x) must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("spectral: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// Periodogram returns the power spectrum of the mean-removed signal at
// the positive frequencies k = 1 .. n/2 (in cycles per sample, k/n).
// The input is truncated to the largest power-of-two prefix.
func Periodogram(xs []float64) ([]float64, int, error) {
	n := 1
	for n*2 <= len(xs) {
		n *= 2
	}
	if n < 4 {
		return nil, 0, fmt.Errorf("spectral: need at least 4 samples, got %d", len(xs))
	}
	var mean float64
	for _, v := range xs[:n] {
		mean += v
	}
	mean /= float64(n)
	buf := make([]complex128, n)
	for i := 0; i < n; i++ {
		buf[i] = complex(xs[i]-mean, 0)
	}
	if err := FFT(buf); err != nil {
		return nil, 0, err
	}
	power := make([]float64, n/2)
	for k := 1; k <= n/2; k++ {
		power[k-1] = cmplx.Abs(buf[k]) * cmplx.Abs(buf[k]) / float64(n)
	}
	return power, n, nil
}

// Peak describes the dominant spectral component.
type Peak struct {
	PeriodSeconds float64 // period of the strongest component
	Power         float64 // its power
	// Strength is the peak power divided by the mean power over all
	// frequencies — >> 1 means a real periodicity, ~1 means noise.
	Strength float64
	// Amplitude is the reconstructed sinusoid amplitude of the peak
	// component, in the signal's units. Divide by the signal mean for
	// the relative swing (the day/night modulation depth).
	Amplitude float64
}

// DominantPeriod finds the strongest periodic component of a regular
// series. Frequencies with periods longer than half the signal are
// ignored (they are trend, not periodicity).
func DominantPeriod(s *timeseries.Series) (Peak, error) {
	power, n, err := Periodogram(s.Values)
	if err != nil {
		return Peak{}, err
	}
	total := 0.0
	count := 0
	best := -1
	duration := float64(n) * float64(s.Step)
	for k := 1; k <= len(power); k++ {
		period := duration / float64(k)
		if period > duration/2 {
			continue // trend components
		}
		p := power[k-1]
		total += p
		count++
		if best < 0 || p > power[best-1] {
			best = k
		}
	}
	if best < 0 || count == 0 || total == 0 {
		return Peak{}, fmt.Errorf("spectral: no usable frequencies")
	}
	mean := total / float64(count)
	return Peak{
		PeriodSeconds: duration / float64(best),
		Power:         power[best-1],
		Strength:      power[best-1] / mean,
		Amplitude:     2 * math.Sqrt(power[best-1]/float64(n)),
	}, nil
}

// HasPeriod reports whether the series has a strong component with a
// period within tol (fractional) of want seconds.
func HasPeriod(s *timeseries.Series, want float64, tol float64, minStrength float64) (bool, Peak, error) {
	peak, err := DominantPeriod(s)
	if err != nil {
		return false, Peak{}, err
	}
	rel := math.Abs(peak.PeriodSeconds-want) / want
	return rel <= tol && peak.Strength >= minStrength, peak, nil
}
