package spectral

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/timeseries"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestFFTValidation(t *testing.T) {
	if err := FFT(make([]complex128, 3)); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if err := FFT(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestFFTKnownTransform(t *testing.T) {
	// FFT of a constant: all energy in bin 0.
	x := []complex128{1, 1, 1, 1}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-4) > 1e-12 {
		t.Fatalf("DC bin %v, want 4", x[0])
	}
	for k := 1; k < 4; k++ {
		if cmplx.Abs(x[k]) > 1e-12 {
			t.Fatalf("bin %d = %v, want 0", k, x[k])
		}
	}
	// FFT of a single-cycle cosine over 8 samples: energy in bins 1 and 7.
	y := make([]complex128, 8)
	for i := range y {
		y[i] = complex(math.Cos(2*math.Pi*float64(i)/8), 0)
	}
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(y[1]-4) > 1e-9 || cmplx.Abs(y[7]-4) > 1e-9 {
		t.Fatalf("cosine bins %v %v, want 4", y[1], y[7])
	}
}

func TestFFTParseval(t *testing.T) {
	s := rng.New(1)
	n := 256
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		v := s.NormFloat64()
		x[i] = complex(v, 0)
		timeEnergy += v * v
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += cmplx.Abs(v) * cmplx.Abs(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Fatalf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}

func TestDominantPeriodSine(t *testing.T) {
	// 8 days of 5-minute samples with a 24h sine.
	n := 8 * 288
	vs := make([]float64, n)
	for i := range vs {
		tSec := float64(i) * 300
		vs[i] = 0.5 + 0.3*math.Sin(2*math.Pi*tSec/86400)
	}
	s := &timeseries.Series{Start: 0, Step: 300, Values: vs}
	peak, err := DominantPeriod(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(peak.PeriodSeconds-86400) > 86400*0.15 {
		t.Fatalf("period %v, want ~86400", peak.PeriodSeconds)
	}
	if peak.Strength < 20 {
		t.Fatalf("strength %v, want dominant", peak.Strength)
	}
	ok, _, err := HasPeriod(s, 86400, 0.2, 10)
	if err != nil || !ok {
		t.Fatalf("HasPeriod(24h) = %v, %v", ok, err)
	}
}

func TestWhiteNoiseHasNoPeriod(t *testing.T) {
	s := rng.New(2)
	vs := make([]float64, 2048)
	for i := range vs {
		vs[i] = s.NormFloat64()
	}
	series := &timeseries.Series{Start: 0, Step: 300, Values: vs}
	peak, err := DominantPeriod(series)
	if err != nil {
		t.Fatal(err)
	}
	if peak.Strength > 15 {
		t.Fatalf("white noise claims periodicity: strength %v", peak.Strength)
	}
}

func TestPeriodogramValidation(t *testing.T) {
	if _, _, err := Periodogram([]float64{1, 2}); err == nil {
		t.Error("tiny input accepted")
	}
}

// TestGridDiurnalVsGoogleFlat is the H. Li observation end to end:
// Grid hourly submissions carry a strong 24h component, Google's far
// weaker.
func TestGridDiurnalVsGoogleFlat(t *testing.T) {
	horizon := int64(8 * 86400)
	hourly := func(jobsTimes []int64) *timeseries.Series {
		jobs := make([]trace.Job, len(jobsTimes))
		for i, ts := range jobsTimes {
			jobs[i] = trace.Job{Submit: ts}
		}
		counts := workload.HourlyCounts(jobs, horizon)
		return &timeseries.Series{Start: 0, Step: 3600, Values: counts}
	}
	// A grid-style arrival process with its diurnal swing isolated from
	// the (dominating) burst noise, so the 24h component is detectable
	// within an 8-day window.
	gridCfg := synth.ArrivalConfig{PerHour: 100, DiurnalAmp: 0.5, LogSigma: 0.3}
	grid := hourly(synth.Arrivals(gridCfg, horizon, rng.New(3)))
	google := hourly(synth.Arrivals(synth.DefaultGoogleConfig(horizon).Arrival, horizon, rng.New(4)))

	gPeak, err := DominantPeriod(grid)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gPeak.PeriodSeconds-86400) > 86400*0.25 {
		t.Fatalf("grid dominant period %v, want ~24h", gPeak.PeriodSeconds)
	}
	ooglePeak, err := DominantPeriod(google)
	if err != nil {
		t.Fatal(err)
	}
	// Google's diurnal amplitude is mild: even if 24h wins, it must be
	// far weaker than the Grid's.
	if ooglePeak.Strength > gPeak.Strength {
		t.Fatalf("google periodicity %v should be below grid %v",
			ooglePeak.Strength, gPeak.Strength)
	}
}
