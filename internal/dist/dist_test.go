package dist

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

const sampleN = 200000

func sampleMean(t *testing.T, d Dist, n int) float64 {
	t.Helper()
	s := rng.New(12345)
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(s)
	}
	return sum / float64(n)
}

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (+-%v)", what, got, want, tol)
	}
}

func TestUniform(t *testing.T) {
	u := Uniform{Lo: 2, Hi: 6}
	approx(t, u.Mean(), 4, 1e-12, "uniform mean")
	approx(t, sampleMean(t, u, sampleN), 4, 0.02, "uniform sample mean")
	approx(t, u.Quantile(0.5), 4, 1e-12, "uniform median")
	s := rng.New(1)
	for i := 0; i < 1000; i++ {
		v := u.Sample(s)
		if v < 2 || v >= 6 {
			t.Fatalf("uniform sample out of support: %v", v)
		}
	}
}

func TestExponential(t *testing.T) {
	e := Exponential{Rate: 0.5}
	approx(t, e.Mean(), 2, 1e-12, "exp mean")
	approx(t, sampleMean(t, e, sampleN), 2, 0.05, "exp sample mean")
	approx(t, e.Quantile(1-math.Exp(-1)), 2, 1e-9, "exp quantile")
}

func TestPareto(t *testing.T) {
	p := Pareto{Xm: 1, Alpha: 2.5}
	approx(t, p.Mean(), 2.5/1.5, 1e-12, "pareto mean")
	approx(t, sampleMean(t, p, sampleN), 2.5/1.5, 0.05, "pareto sample mean")
	if !math.IsInf(Pareto{Xm: 1, Alpha: 0.9}.Mean(), 1) {
		t.Fatal("pareto with alpha<=1 should have infinite mean")
	}
	s := rng.New(2)
	for i := 0; i < 1000; i++ {
		if v := p.Sample(s); v < 1 {
			t.Fatalf("pareto sample below xm: %v", v)
		}
	}
	// Quantile should invert the CDF: F(Q(p)) = p.
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		x := p.Quantile(q)
		cdf := 1 - math.Pow(p.Xm/x, p.Alpha)
		approx(t, cdf, q, 1e-9, "pareto quantile inversion")
	}
}

func TestBoundedParetoSupport(t *testing.T) {
	b := BoundedPareto{L: 10, H: 1000, Alpha: 1.2}
	s := rng.New(3)
	for i := 0; i < 5000; i++ {
		v := b.Sample(s)
		if v < 10 || v > 1000 {
			t.Fatalf("bounded pareto sample out of [10,1000]: %v", v)
		}
	}
	approx(t, sampleMean(t, b, sampleN), b.Mean(), b.Mean()*0.03, "bounded pareto mean")
}

func TestBoundedParetoQuantileInverts(t *testing.T) {
	b := BoundedPareto{L: 1, H: 1e4, Alpha: 0.8}
	la := math.Pow(b.L, b.Alpha)
	ha := math.Pow(b.H, b.Alpha)
	cdf := func(x float64) float64 {
		return (1 - la*math.Pow(x, -b.Alpha)) / (1 - la/ha)
	}
	for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.94, 0.999} {
		x := b.Quantile(p)
		approx(t, cdf(x), p, 1e-9, "bounded pareto quantile inversion")
	}
}

func TestBoundedParetoAlphaOneMean(t *testing.T) {
	b := BoundedPareto{L: 1, H: 100, Alpha: 1}
	want := b.L * b.H / (b.H - b.L) * math.Log(b.H/b.L)
	approx(t, b.Mean(), want, 1e-12, "alpha=1 mean formula")
}

func TestLogNormal(t *testing.T) {
	l := LogNormal{Mu: 1, Sigma: 0.5}
	want := math.Exp(1 + 0.125)
	approx(t, l.Mean(), want, 1e-12, "lognormal mean")
	approx(t, sampleMean(t, l, sampleN), want, want*0.02, "lognormal sample mean")
}

func TestWeibull(t *testing.T) {
	w := Weibull{Lambda: 3, K: 1.5}
	approx(t, sampleMean(t, w, sampleN), w.Mean(), w.Mean()*0.02, "weibull sample mean")
	// k=1 reduces to exponential with mean lambda.
	approx(t, Weibull{Lambda: 2, K: 1}.Mean(), 2, 1e-9, "weibull k=1 mean")
	for _, p := range []float64{0.1, 0.5, 0.9} {
		x := w.Quantile(p)
		cdf := 1 - math.Exp(-math.Pow(x/w.Lambda, w.K))
		approx(t, cdf, p, 1e-9, "weibull quantile inversion")
	}
}

func TestHyperexponential(t *testing.T) {
	h := Hyperexponential{P: []float64{0.9, 0.1}, Rates: []float64{1, 0.01}}
	want := 0.9*1 + 0.1*100
	approx(t, h.Mean(), want, 1e-9, "hyperexp mean")
	approx(t, sampleMean(t, h, sampleN), want, want*0.05, "hyperexp sample mean")
}

func TestZipf(t *testing.T) {
	z := NewZipf(100, 1.1)
	s := rng.New(4)
	counts := make(map[int]int)
	for i := 0; i < 100000; i++ {
		v := int(z.Sample(s))
		if v < 1 || v > 100 {
			t.Fatalf("zipf rank out of range: %d", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[10] {
		t.Fatalf("zipf ranks not monotone: c1=%d c2=%d c10=%d", counts[1], counts[2], counts[10])
	}
	approx(t, sampleMean(t, z, sampleN), z.Mean(), z.Mean()*0.05, "zipf sample mean")
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	approx(t, z.Mean(), 5.5, 1e-9, "zipf s=0 mean")
}

func TestEmpirical(t *testing.T) {
	e := Empirical{Values: []float64{1, 2, 3}, Weights: []float64{1, 1, 2}}
	approx(t, e.Mean(), (1+2+6)/4.0, 1e-12, "empirical mean")
	s := rng.New(5)
	seen := map[float64]int{}
	for i := 0; i < 40000; i++ {
		seen[e.Sample(s)]++
	}
	ratio := float64(seen[3]) / float64(seen[1])
	approx(t, ratio, 2, 0.2, "empirical weight ratio")
}

func TestMixture(t *testing.T) {
	m := Mixture{Components: []Component{
		{Weight: 0.5, Dist: Constant{Value: 10}},
		{Weight: 0.5, Dist: Constant{Value: 20}},
	}}
	approx(t, m.Mean(), 15, 1e-12, "mixture mean")
	approx(t, sampleMean(t, m, 50000), 15, 0.2, "mixture sample mean")
}

func TestClamped(t *testing.T) {
	c := Clamped{Dist: Exponential{Rate: 0.001}, Lo: 0, Hi: 5}
	s := rng.New(6)
	for i := 0; i < 5000; i++ {
		v := c.Sample(s)
		if v < 0 || v > 5 {
			t.Fatalf("clamped sample out of bounds: %v", v)
		}
	}
}

func TestConstant(t *testing.T) {
	c := Constant{Value: 7}
	if c.Sample(rng.New(1)) != 7 || c.Mean() != 7 || c.Quantile(0.3) != 7 {
		t.Fatal("constant distribution misbehaves")
	}
}

func TestValidate(t *testing.T) {
	bad := []Dist{
		Uniform{Lo: 5, Hi: 1},
		Exponential{Rate: 0},
		Pareto{Xm: 0, Alpha: 1},
		BoundedPareto{L: 5, H: 2, Alpha: 1},
		LogNormal{Sigma: -1},
		Weibull{Lambda: 0, K: 1},
		Hyperexponential{P: []float64{1}, Rates: []float64{}},
		Hyperexponential{P: []float64{1}, Rates: []float64{0}},
		Empirical{Values: []float64{1}, Weights: []float64{}},
		Mixture{},
		Mixture{Components: []Component{{Weight: 1, Dist: Exponential{Rate: -1}}}},
	}
	for i, d := range bad {
		if Validate(d) == nil {
			t.Errorf("case %d: expected validation error for %#v", i, d)
		}
	}
	good := []Dist{
		Uniform{Lo: 0, Hi: 1},
		Exponential{Rate: 2},
		Pareto{Xm: 1, Alpha: 1.1},
		BoundedPareto{L: 1, H: 10, Alpha: 2},
		LogNormal{Mu: 0, Sigma: 1},
		Weibull{Lambda: 1, K: 2},
		Hyperexponential{P: []float64{0.5, 0.5}, Rates: []float64{1, 2}},
		Empirical{Values: []float64{1}, Weights: []float64{1}},
		Mixture{Components: []Component{{Weight: 1, Dist: Constant{Value: 1}}}},
		Constant{Value: 1},
	}
	for i, d := range good {
		if err := Validate(d); err != nil {
			t.Errorf("case %d: unexpected validation error: %v", i, err)
		}
	}
}

// Property: quantiles are monotone in p for every Quantiler.
func TestQuantileMonotone(t *testing.T) {
	qs := []Quantiler{
		Uniform{Lo: 0, Hi: 9},
		Exponential{Rate: 0.7},
		Pareto{Xm: 2, Alpha: 1.3},
		BoundedPareto{L: 1, H: 1e5, Alpha: 0.9},
		Weibull{Lambda: 4, K: 0.8},
	}
	for _, q := range qs {
		f := func(a, b float64) bool {
			pa := math.Abs(math.Mod(a, 1))
			pb := math.Abs(math.Mod(b, 1))
			if pa > pb {
				pa, pb = pb, pa
			}
			return q.Quantile(pa) <= q.Quantile(pb)+1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%T quantile not monotone: %v", q, err)
		}
	}
}

// Property: samples never fall below the support lower bound.
func TestSampleSupport(t *testing.T) {
	cases := []struct {
		d  Dist
		lo float64
	}{
		{Exponential{Rate: 1}, 0},
		{Pareto{Xm: 3, Alpha: 2}, 3},
		{BoundedPareto{L: 2, H: 50, Alpha: 1.5}, 2},
		{LogNormal{Mu: 0, Sigma: 1}, 0},
		{Weibull{Lambda: 1, K: 2}, 0},
	}
	s := rng.New(9)
	for _, c := range cases {
		for i := 0; i < 2000; i++ {
			if v := c.d.Sample(s); v < c.lo {
				t.Fatalf("%T sample %v below support %v", c.d, v, c.lo)
			}
		}
	}
}
