// Package dist implements the probability distributions used by the
// synthetic workload models: exponential, Pareto (plain and bounded),
// log-normal, Weibull, uniform, hyperexponential, Zipf, empirical
// (weighted) and arbitrary mixtures.
//
// Each distribution exposes Sample(*rng.Stream) plus, where a closed
// form exists, Mean and Quantile. Samplers use inverse-transform or
// standard stdlib primitives so every draw is reproducible from the
// stream seed alone.
package dist

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Dist is a one-dimensional continuous (or discretised) distribution.
type Dist interface {
	// Sample draws one value using the given stream.
	Sample(s *rng.Stream) float64
	// Mean returns the analytic mean, or NaN if it does not exist.
	Mean() float64
}

// Quantiler is implemented by distributions with an invertible CDF.
type Quantiler interface {
	// Quantile returns the value x with P(X <= x) = p, for p in [0,1].
	Quantile(p float64) float64
}

// ---------------------------------------------------------------------------
// Uniform

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample draws a uniform deviate.
func (u Uniform) Sample(s *rng.Stream) float64 { return s.Range(u.Lo, u.Hi) }

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Quantile returns Lo + p*(Hi-Lo).
func (u Uniform) Quantile(p float64) float64 { return u.Lo + p*(u.Hi-u.Lo) }

// ---------------------------------------------------------------------------
// Exponential

// Exponential is the exponential distribution with the given Rate (λ).
type Exponential struct{ Rate float64 }

// Sample draws an exponential deviate with mean 1/Rate.
func (e Exponential) Sample(s *rng.Stream) float64 { return s.ExpFloat64() / e.Rate }

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Quantile returns -ln(1-p)/Rate.
func (e Exponential) Quantile(p float64) float64 {
	return -math.Log1p(-p) / e.Rate
}

// ---------------------------------------------------------------------------
// Pareto

// Pareto is the Pareto (type I) distribution with scale Xm > 0 and
// shape Alpha > 0. Heavy-tailed; the mean is infinite for Alpha <= 1.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample draws a Pareto deviate by inverse transform.
func (p Pareto) Sample(s *rng.Stream) float64 {
	u := 1 - s.Float64() // in (0, 1]
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mean returns α·xm/(α−1) for α > 1, +Inf otherwise.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Quantile returns xm/(1−p)^{1/α}.
func (p Pareto) Quantile(q float64) float64 {
	return p.Xm / math.Pow(1-q, 1/p.Alpha)
}

// ---------------------------------------------------------------------------
// BoundedPareto

// BoundedPareto is the Pareto distribution truncated to [L, H].
// It is the standard heavy-tail model for task lengths with a finite
// maximum (the Google trace spans one month, so lengths are bounded).
type BoundedPareto struct {
	L, H  float64
	Alpha float64
}

// Sample draws by inverse transform of the truncated CDF.
func (b BoundedPareto) Sample(s *rng.Stream) float64 {
	u := s.Float64()
	la := math.Pow(b.L, b.Alpha)
	ha := math.Pow(b.H, b.Alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/b.Alpha)
	if x < b.L {
		return b.L
	}
	if x > b.H {
		return b.H
	}
	return x
}

// Mean returns the analytic mean of the truncated distribution.
func (b BoundedPareto) Mean() float64 {
	a := b.Alpha
	if a == 1 {
		return b.L * b.H / (b.H - b.L) * math.Log(b.H/b.L)
	}
	la := math.Pow(b.L, a)
	return la / (1 - math.Pow(b.L/b.H, a)) * (a / (a - 1)) *
		(1/math.Pow(b.L, a-1) - 1/math.Pow(b.H, a-1))
}

// Quantile returns the inverse CDF at p.
func (b BoundedPareto) Quantile(p float64) float64 {
	la := math.Pow(b.L, b.Alpha)
	ha := math.Pow(b.H, b.Alpha)
	x := math.Pow(-(p*ha-p*la-ha)/(ha*la), -1/b.Alpha)
	return math.Min(math.Max(x, b.L), b.H)
}

// ---------------------------------------------------------------------------
// LogNormal

// LogNormal is the log-normal distribution: ln X ~ N(Mu, Sigma²).
type LogNormal struct{ Mu, Sigma float64 }

// Sample draws exp(Mu + Sigma·Z).
func (l LogNormal) Sample(s *rng.Stream) float64 {
	return math.Exp(l.Mu + l.Sigma*s.NormFloat64())
}

// Mean returns exp(Mu + Sigma²/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// ---------------------------------------------------------------------------
// Weibull

// Weibull is the Weibull distribution with scale Lambda and shape K.
type Weibull struct{ Lambda, K float64 }

// Sample draws λ·(−ln U)^{1/k}.
func (w Weibull) Sample(s *rng.Stream) float64 {
	u := 1 - s.Float64()
	return w.Lambda * math.Pow(-math.Log(u), 1/w.K)
}

// Mean returns λ·Γ(1+1/k).
func (w Weibull) Mean() float64 { return w.Lambda * math.Gamma(1+1/w.K) }

// Quantile returns λ·(−ln(1−p))^{1/k}.
func (w Weibull) Quantile(p float64) float64 {
	return w.Lambda * math.Pow(-math.Log1p(-p), 1/w.K)
}

// ---------------------------------------------------------------------------
// Hyperexponential

// Hyperexponential mixes exponential phases: with probability P[i] the
// sample is exponential with rate Rates[i]. It models the strongly
// bimodal "mostly very short, occasionally very long" task lengths.
type Hyperexponential struct {
	P     []float64
	Rates []float64
}

// Sample picks a phase by weight and draws from it.
func (h Hyperexponential) Sample(s *rng.Stream) float64 {
	i := s.Pick(h.P)
	return s.ExpFloat64() / h.Rates[i]
}

// Mean returns Σ P[i]/Rates[i] normalised by Σ P[i].
func (h Hyperexponential) Mean() float64 {
	var m, tot float64
	for i, p := range h.P {
		m += p / h.Rates[i]
		tot += p
	}
	return m / tot
}

// ---------------------------------------------------------------------------
// Zipf

// Zipf is a discrete Zipf distribution over {1, ..., N} with exponent
// S >= 0 (S = 0 is uniform). Samples are returned as float64 ranks.
type Zipf struct {
	N int
	S float64

	cdf []float64 // lazily built cumulative weights
}

// NewZipf precomputes the rank CDF for repeated sampling.
func NewZipf(n int, s float64) *Zipf {
	z := &Zipf{N: n, S: s}
	z.cdf = make([]float64, n)
	var c float64
	for k := 1; k <= n; k++ {
		c += 1 / math.Pow(float64(k), s)
		z.cdf[k-1] = c
	}
	return z
}

// Sample draws a rank in [1, N].
func (z *Zipf) Sample(s *rng.Stream) float64 {
	if z.cdf == nil {
		*z = *NewZipf(z.N, z.S)
	}
	u := s.Float64() * z.cdf[len(z.cdf)-1]
	// Binary search for the first cumulative weight >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return float64(lo + 1)
}

// Mean returns the analytic mean of the rank distribution.
func (z *Zipf) Mean() float64 {
	var num, den float64
	for k := 1; k <= z.N; k++ {
		w := 1 / math.Pow(float64(k), z.S)
		num += float64(k) * w
		den += w
	}
	return num / den
}

// ---------------------------------------------------------------------------
// Empirical

// Empirical samples from a fixed set of values with the given weights.
// It is used for discrete calibrated quantities such as priorities and
// machine capacity classes.
type Empirical struct {
	Values  []float64
	Weights []float64
}

// Sample picks one of Values with probability proportional to Weights.
func (e Empirical) Sample(s *rng.Stream) float64 {
	return e.Values[s.Pick(e.Weights)]
}

// Mean returns the weighted mean of Values.
func (e Empirical) Mean() float64 {
	var num, den float64
	for i, v := range e.Values {
		num += v * e.Weights[i]
		den += e.Weights[i]
	}
	return num / den
}

// ---------------------------------------------------------------------------
// Mixture

// Component is one branch of a Mixture.
type Component struct {
	Weight float64
	Dist   Dist
}

// Mixture draws from one of its components, chosen by weight. This is
// the workhorse for the calibrated task-length models, which blend a
// short-task body with a heavy service tail.
type Mixture struct {
	Components []Component
}

// Sample picks a component and draws from it.
func (m Mixture) Sample(s *rng.Stream) float64 {
	weights := make([]float64, len(m.Components))
	for i, c := range m.Components {
		weights[i] = c.Weight
	}
	return m.Components[s.Pick(weights)].Dist.Sample(s)
}

// Mean returns the weight-averaged mean of the components.
func (m Mixture) Mean() float64 {
	var num, den float64
	for _, c := range m.Components {
		num += c.Weight * c.Dist.Mean()
		den += c.Weight
	}
	return num / den
}

// ---------------------------------------------------------------------------
// helpers

// Clamped wraps a distribution and clamps samples into [Lo, Hi].
type Clamped struct {
	Dist   Dist
	Lo, Hi float64
}

// Sample draws from the wrapped distribution and clamps the result.
func (c Clamped) Sample(s *rng.Stream) float64 {
	v := c.Dist.Sample(s)
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

// Mean returns the wrapped distribution's mean (unclamped; callers that
// need the clamped mean should estimate it by sampling).
func (c Clamped) Mean() float64 { return c.Dist.Mean() }

// Constant always returns Value.
type Constant struct{ Value float64 }

// Sample returns Value.
func (c Constant) Sample(*rng.Stream) float64 { return c.Value }

// Mean returns Value.
func (c Constant) Mean() float64 { return c.Value }

// Quantile returns Value for every p.
func (c Constant) Quantile(float64) float64 { return c.Value }

// Validate reports configuration errors for the common distributions.
// It is used by the generators to fail fast on bad calibration tables.
func Validate(d Dist) error {
	switch v := d.(type) {
	case Uniform:
		if v.Hi < v.Lo {
			return fmt.Errorf("dist: uniform Hi %v < Lo %v", v.Hi, v.Lo)
		}
	case Exponential:
		if v.Rate <= 0 {
			return fmt.Errorf("dist: exponential rate %v <= 0", v.Rate)
		}
	case Pareto:
		if v.Xm <= 0 || v.Alpha <= 0 {
			return fmt.Errorf("dist: pareto xm=%v alpha=%v must be positive", v.Xm, v.Alpha)
		}
	case BoundedPareto:
		if v.L <= 0 || v.H <= v.L || v.Alpha <= 0 {
			return fmt.Errorf("dist: bounded pareto L=%v H=%v alpha=%v invalid", v.L, v.H, v.Alpha)
		}
	case LogNormal:
		if v.Sigma < 0 {
			return fmt.Errorf("dist: lognormal sigma %v < 0", v.Sigma)
		}
	case Weibull:
		if v.Lambda <= 0 || v.K <= 0 {
			return fmt.Errorf("dist: weibull lambda=%v k=%v must be positive", v.Lambda, v.K)
		}
	case Hyperexponential:
		if len(v.P) == 0 || len(v.P) != len(v.Rates) {
			return fmt.Errorf("dist: hyperexponential needs matching P and Rates")
		}
		for _, r := range v.Rates {
			if r <= 0 {
				return fmt.Errorf("dist: hyperexponential rate %v <= 0", r)
			}
		}
	case Empirical:
		if len(v.Values) == 0 || len(v.Values) != len(v.Weights) {
			return fmt.Errorf("dist: empirical needs matching Values and Weights")
		}
	case Mixture:
		if len(v.Components) == 0 {
			return fmt.Errorf("dist: mixture needs at least one component")
		}
		for _, c := range v.Components {
			if err := Validate(c.Dist); err != nil {
				return err
			}
		}
	}
	return nil
}
