package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

// TestBuildRetryRecoversFromPanic: a panic injected into the first sim
// build attempt is isolated, retried with seeded backoff, and the
// retried build produces the identical simulation (fresh child streams
// per attempt make rebuilds deterministic).
func TestBuildRetryRecoversFromPanic(t *testing.T) {
	cfg := tinyConfig()
	clean := NewContext(cfg)
	want, err := clean.Sim()
	if err != nil {
		t.Fatalf("fault-free Sim: %v", err)
	}

	ctx := NewContext(cfg)
	rec := obs.NewRecorder()
	ctx.SetRecorder(rec)
	restore := fault.Enable(fault.NewPlan(fault.Rule{Site: "core.build.sim", Hit: 1, Kind: fault.Panic}))
	defer restore()
	got, err := ctx.Sim()
	if err != nil {
		t.Fatalf("Sim under injected panic: %v", err)
	}
	if len(got.Events) != len(want.Events) || got.Stats.AbnormalFraction() != want.Stats.AbnormalFraction() {
		t.Fatal("retried build differs from fault-free build")
	}
	reg := rec.Registry()
	if got := reg.Counter("core.build.sim.failure").Value(); got != 1 {
		t.Errorf("core.build.sim.failure = %d, want 1", got)
	}
	if got := reg.Counter("core.build.sim.retry_success").Value(); got != 1 {
		t.Errorf("core.build.sim.retry_success = %d, want 1", got)
	}
}

// TestBuildFailsAfterBoundedRetries: a fault armed on every call
// exhausts the retry budget and surfaces an attempt-counted error.
func TestBuildFailsAfterBoundedRetries(t *testing.T) {
	ctx := NewContext(tinyConfig())
	ctx.SetBuildRetries(1)
	restore := fault.Enable(fault.NewPlan(fault.Rule{Site: "core.build.google_tasks", Kind: fault.Error}))
	defer restore()
	_, err := ctx.GoogleTasks()
	if err == nil {
		t.Fatal("want error after exhausted retries")
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("err = %v, want attempt-counted failure", err)
	}
	var inj *fault.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("err = %v, want wrapped injected error", err)
	}
}

// TestCancelledBuildNotMemoized: a build aborted by ctx cancellation
// must not poison the cell — the next caller with a live context gets
// a real artifact.
func TestCancelledBuildNotMemoized(t *testing.T) {
	base := NewContext(tinyConfig())
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := base.WithContext(cancelled).Sim(); !isCtxErr(err) {
		t.Fatalf("Sim with cancelled ctx: err = %v, want ctx error", err)
	}
	if res, err := base.Sim(); err != nil || res == nil {
		t.Fatalf("Sim after cancelled attempt: res=%v err=%v, want rebuilt artifact", res, err)
	}
}

// TestSimErrorStillMemoizedWithRetries: a non-ctx error is memoized
// after the retry budget drains (invocations == attempts, not callers).
func TestSimErrorStillMemoizedWithRetries(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	ctx := NewContext(QuickConfig())
	ctx.SetBuildRetries(2)
	ctx.simulate = func(context.Context, cluster.Config, []trace.Task, *rng.Stream) (*cluster.Result, error) {
		calls++
		return nil, boom
	}
	for i := 0; i < 4; i++ {
		if _, err := ctx.Sim(); !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want boom", i, err)
		}
	}
	if calls != 3 {
		t.Fatalf("simulate invoked %d times, want 3 (1 + 2 retries), memoized after", calls)
	}
}

// TestPerExperimentDeadline: an experiment that honours its context is
// cut off by ExpTimeout while its neighbours complete untouched.
func TestPerExperimentDeadline(t *testing.T) {
	ok := Experiment{ID: "ok", Title: "ok", Run: func(*Context) (*Result, error) {
		return newResult("ok", "ok"), nil
	}}
	slow := Experiment{ID: "slow", Title: "slow", Run: func(c *Context) (*Result, error) {
		select {
		case <-c.Ctx().Done():
			return nil, c.Ctx().Err()
		case <-time.After(10 * time.Second):
			return newResult("slow", "slow"), nil
		}
	}}
	results, err := RunExperiments(context.Background(), NewContext(QuickConfig()),
		[]Experiment{ok, slow, ok}, RunOptions{Workers: 1, ExpTimeout: 20 * time.Millisecond, KeepGoing: true})
	if err != nil {
		t.Fatalf("err = %v, want nil under keep-going", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if results[0].Failed() || results[2].Failed() {
		t.Fatal("neighbours of the slow experiment failed")
	}
	if !results[1].Failed() || !strings.Contains(results[1].Err, "deadline") {
		t.Fatalf("slow result = %+v, want deadline failure", results[1])
	}
}

// TestKeepGoingAnnotatesFailures: errors and panics both degrade to
// placeholder results; the run completes with a nil error.
func TestKeepGoingAnnotatesFailures(t *testing.T) {
	boom := errors.New("boom")
	exps := []Experiment{
		{ID: "a", Title: "a", Run: func(*Context) (*Result, error) { return newResult("a", "a"), nil }},
		{ID: "b", Title: "b", Run: func(*Context) (*Result, error) { return nil, boom }},
		{ID: "c", Title: "c", Run: func(*Context) (*Result, error) { panic("kaboom") }},
		{ID: "d", Title: "d", Run: func(*Context) (*Result, error) { return newResult("d", "d"), nil }},
	}
	for _, workers := range []int{1, 4} {
		c := NewContext(QuickConfig())
		rec := obs.NewRecorder()
		c.SetRecorder(rec)
		results, err := RunExperiments(context.Background(), c, exps, RunOptions{Workers: workers, KeepGoing: true})
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if len(results) != 4 {
			t.Fatalf("workers=%d: got %d results", workers, len(results))
		}
		if results[0].Failed() || results[3].Failed() {
			t.Fatalf("workers=%d: healthy experiments failed", workers)
		}
		if !results[1].Failed() || !strings.Contains(results[1].Err, "boom") {
			t.Fatalf("workers=%d: b = %+v", workers, results[1])
		}
		if !results[2].Failed() || !strings.Contains(results[2].Err, "kaboom") {
			t.Fatalf("workers=%d: c = %+v", workers, results[2])
		}
		if got := rec.Registry().Counter("core.exp.failed").Value(); got != 2 {
			t.Fatalf("workers=%d: core.exp.failed = %d, want 2", workers, got)
		}
	}
}

// TestParentCancelStopsKeepGoing: keep-going degrades experiment
// failures, but the operator cancelling the run still stops it.
func TestParentCancelStopsKeepGoing(t *testing.T) {
	parent, cancel := context.WithCancelCause(context.Background())
	cause := errors.New("interrupted by SIGINT")
	cancel(cause)
	results, err := RunExperiments(parent, NewContext(QuickConfig()), Experiments()[:3],
		RunOptions{Workers: 1, KeepGoing: true})
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want cancellation cause", err)
	}
	if len(results) != 0 {
		t.Fatalf("got %d results from a pre-cancelled run", len(results))
	}
}

// TestCheckpointResumeZeroRebuilds is the acceptance criterion: a
// second run with the same checkpoint store rebuilds nothing — every
// experiment is a checkpoint hit and no artifact cell is ever built.
func TestCheckpointResumeZeroRebuilds(t *testing.T) {
	cfg := tinyConfig()
	dir := t.TempDir()
	exps := []Experiment{mustFind(t, "fig2"), mustFind(t, "fig3"), mustFind(t, "fig5")}

	run := func() ([]*Result, *obs.Registry) {
		rec := obs.NewRecorder()
		store, err := ckpt.NewStore(dir, rec.Registry())
		if err != nil {
			t.Fatal(err)
		}
		c := NewContext(cfg)
		c.SetRecorder(rec)
		results, err := RunExperiments(context.Background(), c, exps, RunOptions{Workers: 2, Ckpt: store})
		if err != nil {
			t.Fatal(err)
		}
		return results, rec.Registry()
	}

	cold, coldReg := run()
	if got := coldReg.Counter("ckpt.store").Value(); got != int64(len(exps)) {
		t.Fatalf("cold run stored %d checkpoints, want %d", got, len(exps))
	}
	warm, warmReg := run()
	if got := warmReg.Counter("ckpt.hit").Value(); got != int64(len(exps)) {
		t.Fatalf("warm run hit %d checkpoints, want %d", got, len(exps))
	}
	for _, snap := range warmReg.Snapshot() {
		if strings.HasPrefix(snap.Name, "core.cell.") && strings.HasSuffix(snap.Name, ".miss") && snap.Value != 0 {
			t.Errorf("warm run rebuilt an artifact: %s = %v", snap.Name, snap.Value)
		}
	}
	if a, b := renderAll(t, cold), renderAll(t, warm); a != b {
		t.Error("warm-run tables differ from cold-run tables")
	}
	for i := range cold {
		if cold[i].ID != warm[i].ID || len(cold[i].Series) != len(warm[i].Series) {
			t.Fatalf("result %d differs across resume", i)
		}
	}
}

// TestCheckpointKeyChangesWithConfig: a config change must miss.
func TestCheckpointKeyChangesWithConfig(t *testing.T) {
	a := QuickConfig()
	b := QuickConfig()
	b.Seed = 99
	if CheckpointKey(a, "fig2") == CheckpointKey(b, "fig2") {
		t.Fatal("checkpoint key ignores the seed")
	}
	if CheckpointKey(a, "fig2") == CheckpointKey(a, "fig3") {
		t.Fatal("checkpoint key ignores the experiment ID")
	}
}

// TestFailedResultsNotCheckpointed: keep-going placeholders must never
// be persisted, or a transient failure would become permanent.
func TestFailedResultsNotCheckpointed(t *testing.T) {
	dir := t.TempDir()
	rec := obs.NewRecorder()
	store, err := ckpt.NewStore(dir, rec.Registry())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	flaky := Experiment{ID: "flaky", Title: "flaky", Run: func(*Context) (*Result, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient")
		}
		return newResult("flaky", "flaky"), nil
	}}
	c := NewContext(QuickConfig())
	opts := RunOptions{Workers: 1, KeepGoing: true, Ckpt: store}
	results, err := RunExperiments(context.Background(), c, []Experiment{flaky}, opts)
	if err != nil || !results[0].Failed() {
		t.Fatalf("first run: results=%v err=%v", results, err)
	}
	results, err = RunExperiments(context.Background(), c, []Experiment{flaky}, opts)
	if err != nil || results[0].Failed() {
		t.Fatalf("second run: results=%v err=%v, want recovery (failure not checkpointed)", results, err)
	}
	if calls != 2 {
		t.Fatalf("flaky ran %d times, want 2", calls)
	}
}

// TestChaosInvariant is the robustness analogue of PR 2's
// "instrumentation never changes outputs": under an injected fault
// with keep-going, every experiment that did NOT have a fault injected
// renders byte-identically to a fault-free run.
func TestChaosInvariant(t *testing.T) {
	cfg := tinyConfig()
	exps := []Experiment{mustFind(t, "fig2"), mustFind(t, "fig3"), mustFind(t, "fig4"), mustFind(t, "fig5")}

	clean, err := RunExperiments(context.Background(), NewContext(cfg), exps, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	restore := fault.Enable(fault.NewPlan(fault.Rule{Site: "core.exp.fig4", Hit: 1, Kind: fault.Panic}))
	defer restore()
	chaos, err := RunExperiments(context.Background(), NewContext(cfg), exps, RunOptions{Workers: 4, KeepGoing: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range chaos {
		if r.ID == "fig4" {
			if !r.Failed() {
				t.Fatal("fig4 did not fail despite injected panic")
			}
			continue
		}
		if r.Failed() {
			t.Fatalf("%s failed without an injected fault: %s", r.ID, r.Err)
		}
		if a, b := renderAll(t, clean[i:i+1]), renderAll(t, chaos[i:i+1]); a != b {
			t.Errorf("%s: output differs under chaos", r.ID)
		}
	}
}

func mustFind(t *testing.T, id string) Experiment {
	t.Helper()
	e, err := Find(id)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
