package core

import (
	"bytes"
	"testing"
)

// sharedCtx caches one QuickConfig context across the package tests so
// the simulator runs once.
var sharedCtx = NewContext(QuickConfig())

func TestRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 15 {
		t.Fatalf("got %d experiments, want 15 (12 figures + 3 tables)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := Find("fig7"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("fig99"); err == nil {
		t.Fatal("unknown experiment found")
	}
}

func TestRunAllProducesOutput(t *testing.T) {
	results, err := RunAll(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Experiments()) {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if len(r.Tables) == 0 && len(r.Series) == 0 {
			t.Errorf("%s produced no tables or series", r.ID)
		}
		for _, tbl := range r.Tables {
			var buf bytes.Buffer
			if err := tbl.Render(&buf); err != nil {
				t.Errorf("%s: render: %v", r.ID, err)
			}
			if buf.Len() == 0 {
				t.Errorf("%s: empty table", r.ID)
			}
		}
		for _, s := range r.Series {
			if len(s.X) == 0 {
				t.Errorf("%s: series %s has no points", r.ID, s.ID)
			}
		}
	}
}

func TestFig2Shape(t *testing.T) {
	r, err := Fig2(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["low_priority_job_share"] < 0.5 {
		t.Errorf("low-priority share %v, want majority", r.Metrics["low_priority_job_share"])
	}
	if r.Metrics["high_priority_job_share"] <= 0 {
		t.Error("no high-priority jobs")
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	g := r.Metrics["google_P_len_lt_1000s"]
	if g < 0.55 {
		t.Errorf("google P(len<1000s) = %v, want majority short", g)
	}
	for _, name := range gridOrder {
		if gp := r.Metrics["gridP1000_"+name]; gp >= g {
			t.Errorf("%s P(len<1000s)=%v should be well below Google's %v", name, gp, g)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["google_joint_items"] >= r.Metrics["auvergrid_joint_items"] {
		t.Errorf("google joint items %v should be below auvergrid %v (stronger Pareto)",
			r.Metrics["google_joint_items"], r.Metrics["auvergrid_joint_items"])
	}
	// Paper: AuverGrid mean task 1.29x Google's but max 1.61x smaller.
	if r.Metrics["google_max_task_days"] <= r.Metrics["auvergrid_max_task_days"] {
		t.Errorf("google max task %v days should exceed auvergrid %v",
			r.Metrics["google_max_task_days"], r.Metrics["auvergrid_max_task_days"])
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Fig5(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["google_median_interval_s"] >= r.Metrics["auvergrid_median_interval_s"] {
		t.Errorf("google median interval %v should be below auvergrid %v",
			r.Metrics["google_median_interval_s"], r.Metrics["auvergrid_median_interval_s"])
	}
}

func TestTable1Shape(t *testing.T) {
	r, err := Table1(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	gf := r.Metrics["Google_fairness"]
	if gf < 0.8 {
		t.Errorf("google fairness %v, want ~0.94", gf)
	}
	for _, name := range gridOrder {
		if f := r.Metrics[name+"_fairness"]; f >= gf {
			t.Errorf("%s fairness %v should be below Google's %v", name, f, gf)
		}
	}
	if r.Metrics["Google_avg"] < 400 || r.Metrics["Google_avg"] > 700 {
		t.Errorf("google avg rate %v, want ~552", r.Metrics["Google_avg"])
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := Fig6(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["google_median_cpu"] >= r.Metrics["median_cpu_AuverGrid"] {
		t.Errorf("google median cpu %v should be below auvergrid %v",
			r.Metrics["google_median_cpu"], r.Metrics["median_cpu_AuverGrid"])
	}
	if r.Metrics["median_cpu_DAS-2"] <= r.Metrics["google_median_cpu"] {
		t.Error("DAS-2 should use more processors than Google")
	}
	if r.Metrics["google32_median_mem_mb"] >= r.Metrics["auvergrid_median_mem_mb"] {
		t.Errorf("google median mem %v MB should be below auvergrid %v MB",
			r.Metrics["google32_median_mem_mb"], r.Metrics["auvergrid_median_mem_mb"])
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 {
		t.Fatalf("want 4 panels, got %d", len(r.Series))
	}
	// Memory maxima sit high but below capacity (paper: ~80%).
	mm := r.Metrics["mem_mean_max_over_capacity"]
	if mm < 0.5 || mm > 1.0 {
		t.Errorf("mean max memory/capacity %v, want ~0.8", mm)
	}
	am := r.Metrics["assigned_mean_max_over_capacity"]
	if am < mm {
		t.Errorf("assigned max %v should exceed used max %v", am, mm)
	}
	// Small machines tend to saturate at least as often as big ones;
	// at quick scale the per-class samples are tiny, so allow slack.
	if r.Metrics["cpu_maxload_at_capacity_cap025"] < r.Metrics["cpu_maxload_at_capacity_cap1"]-0.4 {
		t.Errorf("low-capacity machines should hit capacity roughly as often: %v vs %v",
			r.Metrics["cpu_maxload_at_capacity_cap025"], r.Metrics["cpu_maxload_at_capacity_cap1"])
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	af := r.Metrics["abnormal_fraction"]
	if af < 0.45 || af > 0.75 {
		t.Errorf("abnormal fraction %v, want ~0.59", af)
	}
	if fs := r.Metrics["fail_share_of_abnormal"]; fs < 0.3 || fs > 0.65 {
		t.Errorf("fail share %v, want ~0.50", fs)
	}
	if ks := r.Metrics["kill_share_of_abnormal"]; ks < 0.15 || ks > 0.45 {
		t.Errorf("kill share %v, want ~0.31", ks)
	}
	if r.Metrics["mean_pending_per_host"] > 1 {
		t.Errorf("pending per host %v, want ~0", r.Metrics["mean_pending_per_host"])
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	// At least some interval rows must have data; each populated joint
	// ratio must be skewed (items well below 50).
	populated := 0
	for k, v := range r.Metrics {
		if len(k) > 11 && k[:11] == "joint_items" && v > 0 {
			populated++
			if v > 45 {
				t.Errorf("%s = %v, want skewed (<45)", k, v)
			}
		}
	}
	if populated == 0 {
		t.Error("no populated queue-state intervals")
	}
}

func TestTables23Shape(t *testing.T) {
	r2, err := Table2(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Table3(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	// CPU levels flip fast (paper ~6 min); memory levels last longer on
	// the busiest level. Compare the mid usage level where both exist.
	cpuAvg, okCPU := r2.Metrics["avg_min_level0"]
	memAvg, okMem := r3.Metrics["avg_min_level0"]
	if !okCPU || !okMem {
		t.Skip("level 0 unpopulated at quick scale")
	}
	if cpuAvg <= 0 || memAvg <= 0 {
		t.Fatal("level durations must be positive")
	}
	if cpuAvg > 240 {
		t.Errorf("CPU level-0 avg %v min, want minutes-scale volatility", cpuAvg)
	}
}

func TestFig11Fig12Shape(t *testing.T) {
	r11, err := Fig11(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	r12, err := Fig12(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	cpuAll := r11.Metrics["mean_pct_all"]
	memAll := r12.Metrics["mean_pct_all"]
	if cpuAll >= memAll {
		t.Errorf("CPU usage %v%% should be below memory %v%% (paper: 35%% vs 60%%)", cpuAll, memAll)
	}
	if hp := r11.Metrics["mean_pct_high"]; hp >= cpuAll {
		t.Errorf("high-priority CPU %v%% should be below all-priority %v%%", hp, cpuAll)
	}
}

func TestFig13Shape(t *testing.T) {
	r, err := Fig13(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.Metrics["noise_ratio_google_over_auvergrid"]
	if ratio < 5 {
		t.Errorf("noise ratio %v, want Google >> Grid (paper ~20x)", ratio)
	}
	if r.Metrics["google_autocorr"] >= r.Metrics["auvergrid_autocorr"] {
		t.Errorf("google autocorrelation %v should be below auvergrid %v",
			r.Metrics["google_autocorr"], r.Metrics["auvergrid_autocorr"])
	}
	if r.Metrics["google_mean_mem_usage"] <= r.Metrics["google_mean_cpu_usage"] {
		t.Error("google memory usage should exceed CPU usage")
	}
	// 3 systems x (full + two zoom panels).
	if len(r.Series) != 9 {
		t.Fatalf("want 9 host series, got %d", len(r.Series))
	}
	// Grid hosts' CPU and memory are driven by the same jobs and so
	// correlate more than the decoupled Google signals.
	if c := r.Metrics["google_cpu_mem_correlation"]; c > 0.9 {
		t.Errorf("google cpu-mem correlation %v suspiciously high", c)
	}
}
