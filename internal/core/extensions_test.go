package core

import (
	"testing"
)

func TestExtensionsRegistry(t *testing.T) {
	exts := Extensions()
	if len(exts) != 5 {
		t.Fatalf("got %d extensions", len(exts))
	}
	for _, e := range exts {
		if e.Run == nil || e.Title == "" {
			t.Fatalf("extension %s incomplete", e.ID)
		}
		if _, err := FindAny(e.ID); err != nil {
			t.Fatalf("FindAny(%s): %v", e.ID, err)
		}
	}
	// FindAny still resolves paper experiments and rejects unknowns.
	if _, err := FindAny("fig3"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindAny("fig99"); err == nil {
		t.Fatal("unknown id resolved")
	}
}

func TestExtPeriodicity(t *testing.T) {
	r, err := ExtPeriodicity(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 1 {
		t.Fatal("no table")
	}
	// Every system must produce a period and strength.
	for _, name := range append([]string{"Google"}, gridOrder...) {
		if _, ok := r.Metrics["period_h_"+name]; !ok {
			t.Errorf("missing period for %s", name)
		}
	}
}

func TestExtPrediction(t *testing.T) {
	r, err := ExtPrediction(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.Metrics["error_ratio"]
	if ratio < 3 {
		t.Errorf("google/grid prediction error ratio %v, want >> 1", ratio)
	}
	if r.Metrics["google_best_mae"] <= 0 || r.Metrics["auvergrid_best_mae"] <= 0 {
		t.Error("best MAEs missing")
	}
}

func TestExtRobustness(t *testing.T) {
	r, err := ExtRobustness(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["fairness_mean"] < 0.8 {
		t.Errorf("mean fairness %v across seeds, want ~0.94", r.Metrics["fairness_mean"])
	}
	if r.Metrics["fairness_std"] > 0.1 {
		t.Errorf("fairness std %v across seeds, want stable", r.Metrics["fairness_std"])
	}
	if r.Metrics["joint_items_std"] > 6 {
		t.Errorf("joint items std %v, want stable", r.Metrics["joint_items_std"])
	}
}

func TestExtQueueing(t *testing.T) {
	r, err := ExtQueueing(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	fcfs := r.Metrics["mean_wait_min_fcfs"]
	easy := r.Metrics["mean_wait_min_easy"]
	if fcfs < 0 || easy < 0 {
		t.Fatalf("negative waits: %v %v", fcfs, easy)
	}
	if easy > fcfs*1.1 {
		t.Errorf("backfill mean wait %v should not exceed FCFS %v", easy, fcfs)
	}
}

func TestExtStreamStats(t *testing.T) {
	r, err := ExtStreamStats(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 1 || len(r.Tables[0].Rows) != 4 {
		t.Fatalf("want one 4-row table, got %+v", r.Tables)
	}
	// The experiment hard-fails when a bound is exceeded, so reaching
	// here means every quantile error was inside one bin width; pin the
	// headline metric anyway.
	if r.Metrics["max_quantile_err_pct"] > 100.0/200 {
		t.Errorf("max quantile error %v exceeds the bin width", r.Metrics["max_quantile_err_pct"])
	}
}
