// Package core is the experiment layer of the reproduction: one
// constructor per table and figure of the paper, a shared context that
// memoizes the expensive artifacts (the synthetic workloads and the
// cluster simulation), and a registry that regenerates everything.
package core

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Config scales the reproduction. The paper's trace covers 12,500
// machines for a month; the defaults reproduce every statistic at a
// laptop-friendly scale (see DESIGN.md on why the shapes survive
// scaling).
type Config struct {
	Seed uint64

	// Google cluster simulation (Section IV).
	Machines   int   // park size
	SimHorizon int64 // seconds simulated

	// Work-load analyses (Section III). The Google workload is
	// generated at the full 552 jobs/hour over this horizon; Grid
	// workloads use the same horizon.
	WorkloadHorizon int64

	// WorkloadMaxTasksPerJob caps the map-reduce fan-out in the
	// workload-analysis trace to bound memory; it does not affect the
	// task-length or job-length distributions.
	WorkloadMaxTasksPerJob int

	// SampleMachines bounds how many machines the Fig 10 snapshot and
	// Fig 13 comparison export.
	SampleMachines int
}

// DefaultConfig is the full reproduction scale (about a minute of CPU
// and a few hundred MB).
func DefaultConfig() Config {
	return Config{
		Seed:                   1,
		Machines:               200,
		SimHorizon:             14 * 86400,
		WorkloadHorizon:        7 * 86400,
		WorkloadMaxTasksPerJob: 150,
		SampleMachines:         50,
	}
}

// QuickConfig is a fast scale for tests and benchmarks (seconds).
func QuickConfig() Config {
	return Config{
		Seed:                   1,
		Machines:               40,
		SimHorizon:             2 * 86400,
		WorkloadHorizon:        1 * 86400,
		WorkloadMaxTasksPerJob: 80,
		SampleMachines:         10,
	}
}

// Context memoizes the heavy artifacts shared by the experiments so
// the full reproduction generates each workload and runs the simulator
// exactly once.
type Context struct {
	Cfg Config

	mu          sync.Mutex
	googleTasks []trace.Task
	googleJobs  []trace.Job
	sim         *cluster.Result
	gridJobs    map[string][]trace.Job
}

// NewContext returns an empty context for the given configuration.
func NewContext(cfg Config) *Context {
	return &Context{Cfg: cfg, gridJobs: make(map[string][]trace.Job)}
}

// GoogleTasks returns the workload-analysis task trace (full
// submission rate, Section III).
func (c *Context) GoogleTasks() []trace.Task {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.googleTasks == nil {
		gcfg := synth.DefaultGoogleConfig(c.Cfg.WorkloadHorizon)
		gcfg.MaxTasksPerJob = c.Cfg.WorkloadMaxTasksPerJob
		c.googleTasks = synth.GenerateGoogleTasks(gcfg, rng.New(c.Cfg.Seed).Child("google-workload"))
	}
	return c.googleTasks
}

// GoogleJobs returns the per-job summaries of GoogleTasks.
func (c *Context) GoogleJobs() []trace.Job {
	tasks := c.GoogleTasks()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.googleJobs == nil {
		c.googleJobs = synth.GoogleJobsFromTasks(tasks)
	}
	return c.googleJobs
}

// Sim returns the memoized cluster simulation (scaled submission rate,
// Section IV).
func (c *Context) Sim() (*cluster.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sim == nil {
		seed := rng.New(c.Cfg.Seed)
		machines := synth.GoogleMachines(c.Cfg.Machines, seed.Child("machines"))
		gcfg := synth.ScaledGoogleConfig(c.Cfg.Machines, c.Cfg.SimHorizon)
		tasks := synth.GenerateGoogleTasks(gcfg, seed.Child("google-sim"))
		cfg := cluster.DefaultConfig(machines, c.Cfg.SimHorizon)
		res, err := cluster.Simulate(cfg, tasks, seed.Child("sim"))
		if err != nil {
			return nil, fmt.Errorf("core: simulate: %w", err)
		}
		c.sim = res
	}
	return c.sim, nil
}

// GridJobs returns the memoized job stream of the named Grid system
// over the workload horizon.
func (c *Context) GridJobs(name string) ([]trace.Job, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if jobs, ok := c.gridJobs[name]; ok {
		return jobs, nil
	}
	sys, err := synth.SystemByName(name)
	if err != nil {
		return nil, err
	}
	jobs := sys.Generate(c.Cfg.WorkloadHorizon, rng.New(c.Cfg.Seed).Child("grid-"+name))
	c.gridJobs[name] = jobs
	return jobs, nil
}

// Result is one regenerated paper artifact.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
	Series []*report.Series
	// Metrics records the measured quantities compared against the
	// paper in EXPERIMENTS.md.
	Metrics map[string]float64
	Notes   []string
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Metrics: make(map[string]float64)}
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Context) (*Result, error)
}

// Experiments lists every artifact of the paper's evaluation in paper
// order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig2", "Fig 2: jobs and tasks per priority", Fig2},
		{"fig3", "Fig 3: CDF of job length, Google vs Grid", Fig3},
		{"fig4", "Fig 4: mass-count disparity of task lengths", Fig4},
		{"fig5", "Fig 5: CDF of job submission intervals", Fig5},
		{"table1", "Table I: jobs submitted per hour", Table1},
		{"fig6", "Fig 6: per-job CPU and memory usage", Fig6},
		{"fig7", "Fig 7: distribution of maximum host load", Fig7},
		{"fig8", "Fig 8: task events and queue state on one host", Fig8},
		{"fig9", "Fig 9: mass-count of unchanged queue-state durations", Fig9},
		{"fig10", "Fig 10: snapshot of machine usage levels", Fig10},
		{"table2", "Table II: unchanged CPU usage-level durations", Table2},
		{"table3", "Table III: unchanged memory usage-level durations", Table3},
		{"fig11", "Fig 11: mass-count disparity of CPU usage", Fig11},
		{"fig12", "Fig 12: mass-count disparity of memory usage", Fig12},
		{"fig13", "Fig 13: host load comparison Google vs Grid", Fig13},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
}

// RunAll executes every experiment against one shared context.
func RunAll(ctx *Context) ([]*Result, error) {
	var out []*Result
	for _, e := range Experiments() {
		r, err := e.Run(ctx)
		if err != nil {
			return out, fmt.Errorf("core: %s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}
