// Package core is the experiment layer of the reproduction: one
// constructor per table and figure of the paper, a shared context that
// memoizes the expensive artifacts (the synthetic workloads and the
// cluster simulation), and a registry that regenerates everything.
package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Config scales the reproduction. The paper's trace covers 12,500
// machines for a month; the defaults reproduce every statistic at a
// laptop-friendly scale (see DESIGN.md on why the shapes survive
// scaling).
type Config struct {
	Seed uint64

	// Google cluster simulation (Section IV).
	Machines   int   // park size
	SimHorizon int64 // seconds simulated

	// Work-load analyses (Section III). The Google workload is
	// generated at the full 552 jobs/hour over this horizon; Grid
	// workloads use the same horizon.
	WorkloadHorizon int64

	// WorkloadMaxTasksPerJob caps the map-reduce fan-out in the
	// workload-analysis trace to bound memory; it does not affect the
	// task-length or job-length distributions.
	WorkloadMaxTasksPerJob int

	// SampleMachines bounds how many machines the Fig 10 snapshot and
	// Fig 13 comparison export.
	SampleMachines int
}

// DefaultConfig is the full reproduction scale (about a minute of CPU
// and a few hundred MB).
func DefaultConfig() Config {
	return Config{
		Seed:                   1,
		Machines:               200,
		SimHorizon:             14 * 86400,
		WorkloadHorizon:        7 * 86400,
		WorkloadMaxTasksPerJob: 150,
		SampleMachines:         50,
	}
}

// QuickConfig is a fast scale for tests and benchmarks (seconds).
func QuickConfig() Config {
	return Config{
		Seed:                   1,
		Machines:               40,
		SimHorizon:             2 * 86400,
		WorkloadHorizon:        1 * 86400,
		WorkloadMaxTasksPerJob: 80,
		SampleMachines:         10,
	}
}

// cell is a lazily-computed artifact: the computation runs exactly
// once (even under concurrent first access) and both its value and
// its error are memoized, so a failed computation fails fast forever
// instead of silently re-running for every subsequent caller.
type cell[T any] struct {
	once sync.Once
	val  T
	err  error
}

// get runs build on first call and returns the memoized outcome on
// every call. Concurrent callers of the same cell block only until
// that cell's build finishes, not on unrelated artifacts.
func (c *cell[T]) get(build func() (T, error)) (T, error) {
	c.once.Do(func() { c.val, c.err = build() })
	return c.val, c.err
}

// Context memoizes the heavy artifacts shared by the experiments so
// the full reproduction generates each workload and runs the simulator
// exactly once. Each artifact lives in its own lazy cell, so
// concurrent experiments contend only on the artifact they actually
// need: a Fig 3 worker generating Grid jobs never blocks behind the
// cluster simulation a Fig 7 worker is running.
type Context struct {
	Cfg Config

	googleTasks cell[[]trace.Task]
	googleJobs  cell[[]trace.Job]
	sim         cell[*cluster.Result]

	gridMu   sync.Mutex // guards the gridJobs map structure only
	gridJobs map[string]*cell[[]trace.Job]

	// simulate is a seam for tests that count or fail simulator
	// invocations; production contexts always use cluster.Simulate.
	simulate func(cluster.Config, []trace.Task, *rng.Stream) (*cluster.Result, error)

	// rec, when non-nil, receives cell hit/miss counters, artifact
	// build spans and per-experiment spans. Instrumentation is strictly
	// additive: no artifact or metric depends on it.
	rec *obs.Recorder
}

// SetRecorder attaches an observability recorder to the context. Call
// it before any artifact is built or experiment run; a nil recorder
// (the default) disables instrumentation at zero cost.
func (c *Context) SetRecorder(r *obs.Recorder) { c.rec = r }

// Recorder returns the attached recorder (nil when observability is
// off; a nil recorder is safe to use).
func (c *Context) Recorder() *obs.Recorder { return c.rec }

// NewContext returns an empty context for the given configuration.
func NewContext(cfg Config) *Context {
	return &Context{
		Cfg:      cfg,
		gridJobs: make(map[string]*cell[[]trace.Job]),
		simulate: cluster.Simulate,
	}
}

// observedGet wraps a cell build with hit/miss accounting, a build
// span and a build-latency gauge. The caller that runs the build
// counts the miss; every other caller — including those that blocked
// on the same once — consumed the memoized artifact and counts a hit.
func observedGet[T any](c *Context, name string, cl *cell[T], build func() (T, error)) (T, error) {
	built := false
	v, err := cl.get(func() (T, error) {
		built = true
		sp := c.rec.Span("build:"+name, obs.CatArtifact, obs.AutoTID)
		start := time.Now()
		defer func() {
			c.rec.Registry().Gauge("core.cell." + name + ".build_seconds").Set(time.Since(start).Seconds())
			sp.End()
		}()
		return build()
	})
	reg := c.rec.Registry()
	if built {
		reg.Counter("core.cell." + name + ".miss").Add(1)
	} else {
		reg.Counter("core.cell." + name + ".hit").Add(1)
	}
	return v, err
}

// GoogleTasks returns the workload-analysis task trace (full
// submission rate, Section III).
func (c *Context) GoogleTasks() []trace.Task {
	tasks, _ := observedGet(c, "google_tasks", &c.googleTasks, func() ([]trace.Task, error) {
		gcfg := synth.DefaultGoogleConfig(c.Cfg.WorkloadHorizon)
		gcfg.MaxTasksPerJob = c.Cfg.WorkloadMaxTasksPerJob
		return synth.GenerateGoogleTasks(gcfg, rng.New(c.Cfg.Seed).Child("google-workload")), nil
	})
	return tasks
}

// GoogleJobs returns the per-job summaries of GoogleTasks.
func (c *Context) GoogleJobs() []trace.Job {
	jobs, _ := observedGet(c, "google_jobs", &c.googleJobs, func() ([]trace.Job, error) {
		return synth.GoogleJobsFromTasks(c.GoogleTasks()), nil
	})
	return jobs
}

// Sim returns the memoized cluster simulation (scaled submission rate,
// Section IV). A simulation error is memoized too: a broken config
// fails every caller fast instead of re-running the whole simulation.
func (c *Context) Sim() (*cluster.Result, error) {
	return observedGet(c, "sim", &c.sim, func() (*cluster.Result, error) {
		seed := rng.New(c.Cfg.Seed)
		machines := synth.GoogleMachines(c.Cfg.Machines, seed.Child("machines"))
		gcfg := synth.ScaledGoogleConfig(c.Cfg.Machines, c.Cfg.SimHorizon)
		tasks := synth.GenerateGoogleTasks(gcfg, seed.Child("google-sim"))
		cfg := cluster.DefaultConfig(machines, c.Cfg.SimHorizon)
		cfg.Metrics = c.rec.Registry()
		simulate := c.simulate
		if simulate == nil { // zero-value Context
			simulate = cluster.Simulate
		}
		res, err := simulate(cfg, tasks, seed.Child("sim"))
		if err != nil {
			return nil, fmt.Errorf("core: simulate: %w", err)
		}
		return res, nil
	})
}

// GridJobs returns the memoized job stream of the named Grid system
// over the workload horizon. Distinct systems generate concurrently;
// only callers of the same system share a cell.
func (c *Context) GridJobs(name string) ([]trace.Job, error) {
	c.gridMu.Lock()
	if c.gridJobs == nil { // zero-value Context
		c.gridJobs = make(map[string]*cell[[]trace.Job])
	}
	cl, ok := c.gridJobs[name]
	if !ok {
		cl = &cell[[]trace.Job]{}
		c.gridJobs[name] = cl
	}
	c.gridMu.Unlock()
	return observedGet(c, "grid_"+name, cl, func() ([]trace.Job, error) {
		sys, err := synth.SystemByName(name)
		if err != nil {
			return nil, err
		}
		return sys.Generate(c.Cfg.WorkloadHorizon, rng.New(c.Cfg.Seed).Child("grid-"+name)), nil
	})
}

// Result is one regenerated paper artifact.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
	Series []*report.Series
	// Metrics records the measured quantities compared against the
	// paper in EXPERIMENTS.md.
	Metrics map[string]float64
	Notes   []string
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Metrics: make(map[string]float64)}
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Context) (*Result, error)
}

// Experiments lists every artifact of the paper's evaluation in paper
// order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig2", "Fig 2: jobs and tasks per priority", Fig2},
		{"fig3", "Fig 3: CDF of job length, Google vs Grid", Fig3},
		{"fig4", "Fig 4: mass-count disparity of task lengths", Fig4},
		{"fig5", "Fig 5: CDF of job submission intervals", Fig5},
		{"table1", "Table I: jobs submitted per hour", Table1},
		{"fig6", "Fig 6: per-job CPU and memory usage", Fig6},
		{"fig7", "Fig 7: distribution of maximum host load", Fig7},
		{"fig8", "Fig 8: task events and queue state on one host", Fig8},
		{"fig9", "Fig 9: mass-count of unchanged queue-state durations", Fig9},
		{"fig10", "Fig 10: snapshot of machine usage levels", Fig10},
		{"table2", "Table II: unchanged CPU usage-level durations", Table2},
		{"table3", "Table III: unchanged memory usage-level durations", Table3},
		{"fig11", "Fig 11: mass-count disparity of CPU usage", Fig11},
		{"fig12", "Fig 12: mass-count disparity of memory usage", Fig12},
		{"fig13", "Fig 13: host load comparison Google vs Grid", Fig13},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
}

// RunAll executes every experiment sequentially against one shared
// context. It is RunAllParallel with a single worker.
func RunAll(ctx *Context) ([]*Result, error) {
	return RunAllParallel(ctx, 1)
}
