// Package core is the experiment layer of the reproduction: one
// constructor per table and figure of the paper, a shared context that
// memoizes the expensive artifacts (the synthetic workloads and the
// cluster simulation), and a registry that regenerates everything.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Config scales the reproduction. The paper's trace covers 12,500
// machines for a month; the defaults reproduce every statistic at a
// laptop-friendly scale (see DESIGN.md on why the shapes survive
// scaling).
type Config struct {
	Seed uint64

	// Google cluster simulation (Section IV).
	Machines   int   // park size
	SimHorizon int64 // seconds simulated

	// Work-load analyses (Section III). The Google workload is
	// generated at the full 552 jobs/hour over this horizon; Grid
	// workloads use the same horizon.
	WorkloadHorizon int64

	// WorkloadMaxTasksPerJob caps the map-reduce fan-out in the
	// workload-analysis trace to bound memory; it does not affect the
	// task-length or job-length distributions.
	WorkloadMaxTasksPerJob int

	// SampleMachines bounds how many machines the Fig 10 snapshot and
	// Fig 13 comparison export.
	SampleMachines int
}

// Canonical renders the config as a stable string, used as part of the
// content address of checkpointed artifacts: any field change yields a
// different checkpoint key, so stale artifacts miss instead of lying.
func (c Config) Canonical() string {
	return fmt.Sprintf("seed=%d machines=%d sim=%d wl=%d maxtasks=%d sample=%d",
		c.Seed, c.Machines, c.SimHorizon, c.WorkloadHorizon,
		c.WorkloadMaxTasksPerJob, c.SampleMachines)
}

// DefaultConfig is the full reproduction scale (about a minute of CPU
// and a few hundred MB).
func DefaultConfig() Config {
	return Config{
		Seed:                   1,
		Machines:               200,
		SimHorizon:             14 * 86400,
		WorkloadHorizon:        7 * 86400,
		WorkloadMaxTasksPerJob: 150,
		SampleMachines:         50,
	}
}

// QuickConfig is a fast scale for tests and benchmarks (seconds).
func QuickConfig() Config {
	return Config{
		Seed:                   1,
		Machines:               40,
		SimHorizon:             2 * 86400,
		WorkloadHorizon:        1 * 86400,
		WorkloadMaxTasksPerJob: 80,
		SampleMachines:         10,
	}
}

// isCtxErr reports whether err is (or wraps) a context cancellation or
// deadline expiry — the failures that describe the caller, not the
// artifact, and therefore must never be memoized or retried.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// cell is a lazily-computed artifact: the computation runs once and
// both its value and its error are memoized, so a failed computation
// fails fast forever instead of silently re-running for every
// subsequent caller — with one exception: a build aborted by context
// cancellation is NOT memoized, because the failure belongs to the
// cancelled caller, and a later caller with a live context deserves a
// real build (this is what makes checkpoint-resume after SIGINT work).
type cell[T any] struct {
	mu   sync.Mutex
	done bool
	val  T
	err  error
}

// get runs build under the cell lock on first call and returns the
// memoized outcome on every later call. Concurrent callers of the same
// cell block only until that cell's build finishes, not on unrelated
// artifacts.
func (c *cell[T]) get(build func() (T, error)) (T, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return c.val, c.err
	}
	v, err := build()
	if err != nil && isCtxErr(err) {
		var zero T
		return zero, err
	}
	c.val, c.err = v, err
	c.done = true
	return c.val, c.err
}

// ctxShared is the state every view of a Context shares: the memoized
// artifact cells, the test seams and the recorder. Context itself is a
// cheap value (config + a context.Context + this pointer), so runners
// hand each experiment a view carrying its own deadline while all
// views populate the same cells.
type ctxShared struct {
	googleTasks cell[[]trace.Task]
	googleJobs  cell[[]trace.Job]
	sim         cell[*cluster.Result]

	gridMu   sync.Mutex // guards the gridJobs map structure only
	gridJobs map[string]*cell[[]trace.Job]

	// simulate is a seam for tests that count or fail simulator
	// invocations; production contexts always use cluster.SimulateCtx.
	simulate func(context.Context, cluster.Config, []trace.Task, *rng.Stream) (*cluster.Result, error)

	// rec, when non-nil, receives cell hit/miss counters, artifact
	// build spans and per-experiment spans. Instrumentation is strictly
	// additive: no artifact or metric depends on it.
	rec *obs.Recorder

	// retries bounds how many times a failed artifact build is retried
	// (with seeded exponential backoff) before the error is surfaced.
	retries int
}

// defaultBuildRetries is how many times a panicking or erroring
// artifact build is re-attempted before giving up. Transient faults
// (the kind internal/fault injects) recover; deterministic bugs fail
// after a bounded, seeded-backoff delay.
const defaultBuildRetries = 2

// Context memoizes the heavy artifacts shared by the experiments so
// the full reproduction generates each workload and runs the simulator
// exactly once. Each artifact lives in its own lazy cell, so
// concurrent experiments contend only on the artifact they actually
// need: a Fig 3 worker generating Grid jobs never blocks behind the
// cluster simulation a Fig 7 worker is running.
//
// A Context must be created with NewContext; views with per-experiment
// deadlines are derived with WithContext and share the same cells.
type Context struct {
	Cfg Config

	ctx context.Context
	*ctxShared
}

// NewContext returns an empty context for the given configuration.
func NewContext(cfg Config) *Context {
	return &Context{
		Cfg: cfg,
		ctx: context.Background(),
		ctxShared: &ctxShared{
			gridJobs: make(map[string]*cell[[]trace.Job]),
			simulate: cluster.SimulateCtx,
			retries:  defaultBuildRetries,
		},
	}
}

// WithContext returns a view of c that carries ctx for cancellation
// and deadlines. The view shares every memoized cell with c: an
// artifact built through any view is visible to all of them.
func (c *Context) WithContext(ctx context.Context) *Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Context{Cfg: c.Cfg, ctx: ctx, ctxShared: c.ctxShared}
}

// Ctx returns the context this view carries (never nil).
func (c *Context) Ctx() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// SetRecorder attaches an observability recorder to the context. Call
// it before any artifact is built or experiment run; a nil recorder
// (the default) disables instrumentation at zero cost.
func (c *Context) SetRecorder(r *obs.Recorder) { c.rec = r }

// Recorder returns the attached recorder (nil when observability is
// off; a nil recorder is safe to use).
func (c *Context) Recorder() *obs.Recorder { return c.rec }

// SetBuildRetries overrides how many times a failed artifact build is
// retried (0 disables retrying). Tests use it to make failures
// immediate; production keeps the default.
func (c *Context) SetBuildRetries(n int) {
	if n < 0 {
		n = 0
	}
	c.retries = n
}

// backoffFor returns the seeded, jittered exponential backoff before
// retry number attempt (0-based): base 10ms, doubled per attempt,
// scaled by a jitter in [0.5, 1.5) drawn from a child stream keyed by
// (seed, artifact name) — so backoff timing is reproducible and never
// consumes randomness from any experiment stream.
func backoffFor(s *rng.Stream, attempt int) time.Duration {
	base := 10 * time.Millisecond << uint(attempt)
	return time.Duration(float64(base) * s.Range(0.5, 1.5))
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// resilientBuild runs one artifact build with panic isolation and
// bounded seeded-backoff retries. Context cancellation is returned
// immediately (never retried, never counted as a build failure);
// panics are converted to errors so one broken artifact cannot take
// down the whole run. Failures and recoveries land in the registry as
// core.build.<name>.failure / .retry_success.
func resilientBuild[T any](c *Context, name string, build func() (T, error)) (T, error) {
	var zero T
	reg := c.rec.Registry()
	retryRng := rng.New(c.Cfg.Seed).Child("retry:" + name)
	attempts := c.retries + 1
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := c.Ctx().Err(); err != nil {
			return zero, context.Cause(c.Ctx())
		}
		v, err := func() (v T, err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("build %s: panic: %v", name, r)
				}
			}()
			if err := fault.Hit("core.build." + name); err != nil {
				return zero, err
			}
			return build()
		}()
		if err == nil {
			if attempt > 0 {
				reg.Counter("core.build." + name + ".retry_success").Add(1)
			}
			return v, nil
		}
		if isCtxErr(err) {
			return zero, err
		}
		lastErr = err
		reg.Counter("core.build." + name + ".failure").Add(1)
		if attempt < attempts-1 {
			sleepCtx(c.Ctx(), backoffFor(retryRng, attempt))
		}
	}
	return zero, fmt.Errorf("build %s failed after %d attempts: %w", name, attempts, lastErr)
}

// observedGet wraps a cell build with hit/miss accounting, a build
// span, a build-latency gauge and the resilience layer (panic
// isolation + seeded retries). The caller that runs the build counts
// the miss; every other caller — including those that blocked on the
// same cell — consumed the memoized artifact and counts a hit.
func observedGet[T any](c *Context, name string, cl *cell[T], build func() (T, error)) (T, error) {
	built := false
	v, err := cl.get(func() (T, error) {
		built = true
		// A traced caller (the serving path threads its request trace
		// through c.Ctx()) gets the build as a trace child; the batch
		// pipeline keeps its plain AutoTID span with MemStats deltas.
		sp, _ := c.rec.StartSpan(c.Ctx(), "build:"+name, obs.CatArtifact)
		start := time.Now()
		defer func() {
			c.rec.Registry().Gauge("core.cell." + name + ".build_seconds").Set(time.Since(start).Seconds())
			sp.End()
		}()
		return resilientBuild(c, name, build)
	})
	reg := c.rec.Registry()
	if built {
		reg.Counter("core.cell." + name + ".miss").Add(1)
	} else {
		reg.Counter("core.cell." + name + ".hit").Add(1)
	}
	return v, err
}

// GoogleTasks returns the workload-analysis task trace (full
// submission rate, Section III).
func (c *Context) GoogleTasks() ([]trace.Task, error) {
	return observedGet(c, "google_tasks", &c.googleTasks, func() ([]trace.Task, error) {
		gcfg := synth.DefaultGoogleConfig(c.Cfg.WorkloadHorizon)
		gcfg.MaxTasksPerJob = c.Cfg.WorkloadMaxTasksPerJob
		return synth.GenerateGoogleTasks(gcfg, rng.New(c.Cfg.Seed).Child("google-workload")), nil
	})
}

// GoogleJobs returns the per-job summaries of GoogleTasks.
func (c *Context) GoogleJobs() ([]trace.Job, error) {
	return observedGet(c, "google_jobs", &c.googleJobs, func() ([]trace.Job, error) {
		tasks, err := c.GoogleTasks()
		if err != nil {
			return nil, err
		}
		return synth.GoogleJobsFromTasks(tasks), nil
	})
}

// Sim returns the memoized cluster simulation (scaled submission rate,
// Section IV). A simulation error is memoized too: a broken config
// fails every caller fast instead of re-running the whole simulation.
// Cancellation is the exception — an aborted simulation is not
// memoized, so the next caller with a live context rebuilds it.
func (c *Context) Sim() (*cluster.Result, error) {
	return observedGet(c, "sim", &c.sim, func() (*cluster.Result, error) {
		seed := rng.New(c.Cfg.Seed)
		machines := synth.GoogleMachines(c.Cfg.Machines, seed.Child("machines"))
		gcfg := synth.ScaledGoogleConfig(c.Cfg.Machines, c.Cfg.SimHorizon)
		tasks := synth.GenerateGoogleTasks(gcfg, seed.Child("google-sim"))
		cfg := cluster.DefaultConfig(machines, c.Cfg.SimHorizon)
		cfg.Metrics = c.rec.Registry()
		res, err := c.simulate(c.Ctx(), cfg, tasks, seed.Child("sim"))
		if err != nil {
			return nil, fmt.Errorf("core: simulate: %w", err)
		}
		return res, nil
	})
}

// GridJobs returns the memoized job stream of the named Grid system
// over the workload horizon. Distinct systems generate concurrently;
// only callers of the same system share a cell.
func (c *Context) GridJobs(name string) ([]trace.Job, error) {
	c.gridMu.Lock()
	cl, ok := c.gridJobs[name]
	if !ok {
		cl = &cell[[]trace.Job]{}
		c.gridJobs[name] = cl
	}
	c.gridMu.Unlock()
	return observedGet(c, "grid_"+name, cl, func() ([]trace.Job, error) {
		sys, err := synth.SystemByName(name)
		if err != nil {
			return nil, err
		}
		return sys.Generate(c.Cfg.WorkloadHorizon, rng.New(c.Cfg.Seed).Child("grid-"+name)), nil
	})
}

// Result is one regenerated paper artifact.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
	Series []*report.Series
	// Metrics records the measured quantities compared against the
	// paper in EXPERIMENTS.md.
	Metrics map[string]float64
	Notes   []string
	// Err is the failure cause when the experiment could not be
	// regenerated and the run continued under -keep-going; a Result
	// with a non-empty Err carries no tables or series.
	Err string `json:",omitempty"`
}

// Failed reports whether this result is a keep-going failure
// placeholder rather than a regenerated artifact.
func (r *Result) Failed() bool { return r.Err != "" }

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Metrics: make(map[string]float64)}
}

// failedResult is the graceful-degradation placeholder emitted under
// keep-going: the report annotates the artifact "FAILED: <cause>"
// instead of the whole run aborting.
func failedResult(e Experiment, err error) *Result {
	return &Result{ID: e.ID, Title: e.Title, Err: err.Error()}
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Context) (*Result, error)
}

// Experiments lists every artifact of the paper's evaluation in paper
// order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig2", "Fig 2: jobs and tasks per priority", Fig2},
		{"fig3", "Fig 3: CDF of job length, Google vs Grid", Fig3},
		{"fig4", "Fig 4: mass-count disparity of task lengths", Fig4},
		{"fig5", "Fig 5: CDF of job submission intervals", Fig5},
		{"table1", "Table I: jobs submitted per hour", Table1},
		{"fig6", "Fig 6: per-job CPU and memory usage", Fig6},
		{"fig7", "Fig 7: distribution of maximum host load", Fig7},
		{"fig8", "Fig 8: task events and queue state on one host", Fig8},
		{"fig9", "Fig 9: mass-count of unchanged queue-state durations", Fig9},
		{"fig10", "Fig 10: snapshot of machine usage levels", Fig10},
		{"table2", "Table II: unchanged CPU usage-level durations", Table2},
		{"table3", "Table III: unchanged memory usage-level durations", Table3},
		{"fig11", "Fig 11: mass-count disparity of CPU usage", Fig11},
		{"fig12", "Fig 12: mass-count disparity of memory usage", Fig12},
		{"fig13", "Fig 13: host load comparison Google vs Grid", Fig13},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
}

// RunAll executes every experiment sequentially against one shared
// context. It is RunAllParallel with a single worker.
func RunAll(ctx *Context) ([]*Result, error) {
	return RunAllParallel(ctx, 1)
}
