package core

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/trace"
)

// renderAll renders every table of every result to one string so two
// runs can be compared byte-for-byte.
func renderAll(t *testing.T, results []*Result) string {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range results {
		for _, tbl := range r.Tables {
			if err := tbl.Render(&buf); err != nil {
				t.Fatalf("%s: render: %v", r.ID, err)
			}
		}
	}
	return buf.String()
}

// TestRunAllParallelDeterminism is the tentpole guarantee: a parallel
// run is deeply equal — metrics, rendered tables, and series — to a
// serial run of the same config.
func TestRunAllParallelDeterminism(t *testing.T) {
	serial, err := RunAllParallel(NewContext(QuickConfig()), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAllParallel(NewContext(QuickConfig()), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial %d results, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.ID != p.ID {
			t.Fatalf("result %d ordering differs: %s vs %s", i, s.ID, p.ID)
		}
		if !reflect.DeepEqual(s.Metrics, p.Metrics) {
			t.Errorf("%s: metrics differ\nserial:   %v\nparallel: %v", s.ID, s.Metrics, p.Metrics)
		}
		if !reflect.DeepEqual(s.Series, p.Series) {
			t.Errorf("%s: series differ", s.ID)
		}
		if !reflect.DeepEqual(s.Notes, p.Notes) {
			t.Errorf("%s: notes differ", s.ID)
		}
	}
	if st, pt := renderAll(t, serial), renderAll(t, parallel); st != pt {
		t.Errorf("rendered tables differ:\nserial:\n%s\nparallel:\n%s", st, pt)
	}
}

// TestRunExperimentsParallelErrorPrefix checks the parallel runner's
// error contract: first failure in list order, results truncated to
// the experiments before it.
func TestRunExperimentsParallelErrorPrefix(t *testing.T) {
	boom := errors.New("boom")
	ok := func(id string) Experiment {
		return Experiment{ID: id, Title: id, Run: func(*Context) (*Result, error) {
			return newResult(id, id), nil
		}}
	}
	bad := func(id string) Experiment {
		return Experiment{ID: id, Title: id, Run: func(*Context) (*Result, error) {
			return nil, boom
		}}
	}
	exps := []Experiment{ok("a"), ok("b"), bad("c"), ok("d"), bad("e")}
	for _, workers := range []int{1, 4} {
		results, err := RunExperimentsParallel(NewContext(QuickConfig()), exps, workers)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if got := err.Error(); got != "core: c: boom" {
			t.Errorf("workers=%d: err = %q, want first failure in list order", workers, got)
		}
		if len(results) != 2 || results[0].ID != "a" || results[1].ID != "b" {
			t.Errorf("workers=%d: results = %v, want prefix [a b]", workers, results)
		}
	}
}

// TestContextConcurrentAccess hammers every Context accessor from many
// goroutines: all callers must observe the identical memoized
// artifact, and (under -race) no data race may be reported.
func TestContextConcurrentAccess(t *testing.T) {
	cfg := QuickConfig()
	cfg.Machines = 10
	cfg.SimHorizon = 86400
	cfg.WorkloadHorizon = 6 * 3600
	ctx := NewContext(cfg)

	const goroutines = 32
	systems := []string{"AuverGrid", "SHARCNET", "NorduGrid", "ANL"}
	var (
		wg    sync.WaitGroup
		tasks [goroutines][]trace.Task
		jobs  [goroutines][]trace.Job
		sims  [goroutines]*cluster.Result
		grids [goroutines][]trace.Job
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var err error
			tasks[g], err = ctx.GoogleTasks()
			if err != nil {
				t.Errorf("goroutine %d: GoogleTasks: %v", g, err)
				return
			}
			jobs[g], err = ctx.GoogleJobs()
			if err != nil {
				t.Errorf("goroutine %d: GoogleJobs: %v", g, err)
				return
			}
			sim, err := ctx.Sim()
			if err != nil {
				t.Errorf("goroutine %d: Sim: %v", g, err)
				return
			}
			sims[g] = sim
			grid, err := ctx.GridJobs(systems[g%len(systems)])
			if err != nil {
				t.Errorf("goroutine %d: GridJobs: %v", g, err)
				return
			}
			grids[g] = grid
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if &tasks[g][0] != &tasks[0][0] {
			t.Fatal("GoogleTasks not memoized: distinct slices observed")
		}
		if &jobs[g][0] != &jobs[0][0] {
			t.Fatal("GoogleJobs not memoized: distinct slices observed")
		}
		if sims[g] != sims[0] {
			t.Fatal("Sim not memoized: distinct results observed")
		}
		if grids[g] == nil {
			t.Fatalf("goroutine %d observed nil grid jobs", g)
		}
	}
	if _, err := ctx.GridJobs("no-such-system"); err == nil {
		t.Fatal("unknown grid system accepted")
	}
}

// TestSimErrorMemoized is the regression test for the re-simulation
// bug: after a failure, every later Sim call must return the memoized
// error without invoking the simulator again.
func TestSimErrorMemoized(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	ctx := NewContext(QuickConfig())
	ctx.SetBuildRetries(0) // retries are off so invocations == callers
	ctx.simulate = func(context.Context, cluster.Config, []trace.Task, *rng.Stream) (*cluster.Result, error) {
		calls.Add(1)
		return nil, boom
	}
	for i := 0; i < 5; i++ {
		if _, err := ctx.Sim(); !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want boom", i, err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("simulate invoked %d times, want exactly 1", got)
	}
}

// TestSimSuccessMemoized counts simulator invocations on the happy
// path too: concurrent and repeated Sim calls share one run.
func TestSimSuccessMemoized(t *testing.T) {
	cfg := QuickConfig()
	cfg.Machines = 10
	cfg.SimHorizon = 86400
	var calls atomic.Int32
	ctx := NewContext(cfg)
	real := ctx.simulate
	ctx.simulate = func(sctx context.Context, c cluster.Config, ts []trace.Task, s *rng.Stream) (*cluster.Result, error) {
		calls.Add(1)
		return real(sctx, c, ts, s)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ctx.Sim(); err != nil {
				t.Errorf("Sim: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("simulate invoked %d times, want exactly 1", got)
	}
}
