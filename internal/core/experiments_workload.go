package core

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// gridOrder is the Table I / Fig 3 / Fig 5 system order.
var gridOrder = []string{
	"AuverGrid", "NorduGrid", "SHARCNET", "ANL", "RICC", "MetaCentrum", "LLNL-Atlas",
}

// xGrid builds n evenly spaced points over [0, hi].
func xGrid(hi float64, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = hi * float64(i) / float64(n-1)
	}
	return xs
}

// evalCDF evaluates an ECDF over the grid.
func evalCDF(values []float64, xs []float64) []float64 {
	return evalCDFSorted(stats.NewSorted(values), xs)
}

// evalCDFSorted evaluates an ECDF over the grid from a pre-sorted
// view, so figures that also need quantiles or mass-count curves of
// the same vector sort it once.
func evalCDFSorted(sv *stats.Sorted, xs []float64) []float64 {
	e := stats.NewECDFSorted(sv)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = e.Eval(x)
	}
	return out
}

// Fig2 reproduces the priority histograms: number of jobs and tasks
// per priority level, with the paper's low/middle/high clustering.
func Fig2(ctx *Context) (*Result, error) {
	res := newResult("fig2", "Number of jobs and tasks per priority")
	jobs, err := ctx.GoogleJobs()
	if err != nil {
		return nil, err
	}
	tasks, err := ctx.GoogleTasks()
	if err != nil {
		return nil, err
	}
	jc, tc := workload.PriorityHistogram(jobs, tasks)

	tbl := &report.Table{
		ID:      "fig2",
		Title:   "Fig 2: jobs and tasks by priority (synthetic Google trace)",
		Columns: []string{"priority", "group", "jobs", "tasks"},
	}
	xs := make([]float64, 0, trace.MaxPriority)
	jobsY := make([]float64, 0, trace.MaxPriority)
	tasksY := make([]float64, 0, trace.MaxPriority)
	for p := trace.MinPriority; p <= trace.MaxPriority; p++ {
		tbl.AddRow(fmt.Sprintf("%d", p), trace.GroupOf(p).String(),
			fmt.Sprintf("%d", jc[p]), fmt.Sprintf("%d", tc[p]))
		xs = append(xs, float64(p))
		jobsY = append(jobsY, float64(jc[p]))
		tasksY = append(tasksY, float64(tc[p]))
	}
	res.Tables = append(res.Tables, tbl)

	s := report.NewSeries("fig2", "Jobs and tasks per priority", "priority")
	s.X = xs
	s.Add("jobs", jobsY)
	s.Add("tasks", tasksY)
	res.Series = append(res.Series, s)

	shares := workload.GroupShares(jobs)
	res.Metrics["low_priority_job_share"] = shares[0]
	res.Metrics["middle_priority_job_share"] = shares[1]
	res.Metrics["high_priority_job_share"] = shares[2]
	res.Notes = append(res.Notes,
		"paper: three visible clusters; most jobs at priorities 1-4")
	return res, nil
}

// Fig3 reproduces the job-length CDFs of Google and the seven Grid
// systems over the paper's 0-10000 s axis.
func Fig3(ctx *Context) (*Result, error) {
	res := newResult("fig3", "CDF of job length")
	xs := xGrid(10000, 201)
	s := report.NewSeries("fig3", "CDF of job length (s)", "seconds")
	s.X = xs

	gJobs, err := ctx.GoogleJobs()
	if err != nil {
		return nil, err
	}
	gSorted := stats.NewSorted(workload.JobLengths(gJobs))
	s.Add("Google", evalCDFSorted(gSorted, xs))
	res.Metrics["google_P_len_lt_1000s"] = gSorted.CDF(1000)

	for _, name := range gridOrder {
		jobs, err := ctx.GridJobs(name)
		if err != nil {
			return nil, err
		}
		sv := stats.NewSorted(workload.JobLengths(jobs))
		s.Add(name, evalCDFSorted(sv, xs))
		res.Metrics["gridP1000_"+name] = sv.CDF(1000)
	}
	res.Series = append(res.Series, s)
	res.Notes = append(res.Notes,
		"paper: >80% of Google jobs under 1000 s; most Grid jobs above 2000 s")
	return res, nil
}

// Fig4 reproduces the mass-count disparity of task lengths for Google
// and AuverGrid (whose jobs are its tasks).
func Fig4(ctx *Context) (*Result, error) {
	res := newResult("fig4", "Mass-count disparity of task lengths")
	const day = 86400.0

	emit := func(id, name string, lens []float64) workload.MassCountSummary {
		sv := stats.NewSorted(lens)
		mc := stats.NewMassCountSorted(sv)
		sum := workload.SummarizeMassCountSorted(lens, sv)
		xsRaw, count, mass := mc.Curve(300)
		xs := make([]float64, len(xsRaw))
		for i, x := range xsRaw {
			xs[i] = x / day
		}
		s := report.NewSeries(id, name+" task-length mass-count (days)", "days")
		s.X = xs
		s.Add("count", count)
		s.Add("mass", mass)
		res.Series = append(res.Series, s)
		return sum
	}

	gTasks, err := ctx.GoogleTasks()
	if err != nil {
		return nil, err
	}
	g := emit("fig4a", "Google", workload.TaskLengths(gTasks))
	agJobs, err := ctx.GridJobs("AuverGrid")
	if err != nil {
		return nil, err
	}
	ag := emit("fig4b", "AuverGrid", workload.JobLengths(agJobs))

	tbl := &report.Table{
		ID:      "fig4",
		Title:   "Fig 4: task-length mass-count summary (paper: Google 6/94, mmdis 23.19h; AuverGrid 24/76)",
		Columns: []string{"system", "joint ratio", "mm-distance (h)", "mean (h)", "max (d)"},
	}
	for _, row := range []struct {
		name string
		s    workload.MassCountSummary
	}{{"Google", g}, {"AuverGrid", ag}} {
		tbl.AddRow(row.name,
			fmt.Sprintf("%.0f/%.0f", row.s.JointItems, row.s.JointMass),
			report.F2(row.s.MMDistance/3600),
			report.F2(row.s.Mean/3600),
			report.F2(row.s.Max/86400))
	}
	res.Tables = append(res.Tables, tbl)
	res.Metrics["google_joint_items"] = g.JointItems
	res.Metrics["google_mmdis_hours"] = g.MMDistance / 3600
	res.Metrics["google_mean_task_hours"] = g.Mean / 3600
	res.Metrics["google_max_task_days"] = g.Max / 86400
	res.Metrics["auvergrid_joint_items"] = ag.JointItems
	res.Metrics["auvergrid_mean_task_hours"] = ag.Mean / 3600
	res.Metrics["auvergrid_max_task_days"] = ag.Max / 86400
	return res, nil
}

// Fig5 reproduces the submission-interval CDFs over the paper's
// 0-2000 s axis.
func Fig5(ctx *Context) (*Result, error) {
	res := newResult("fig5", "CDF of job submission interval")
	xs := xGrid(2000, 201)
	s := report.NewSeries("fig5", "CDF of submission interval (s)", "seconds")
	s.X = xs

	gJobs, err := ctx.GoogleJobs()
	if err != nil {
		return nil, err
	}
	gInt := stats.NewSorted(workload.SubmissionIntervals(gJobs))
	s.Add("Google", evalCDFSorted(gInt, xs))
	res.Metrics["google_median_interval_s"] = gInt.Quantile(0.5)

	for _, name := range gridOrder {
		jobs, err := ctx.GridJobs(name)
		if err != nil {
			return nil, err
		}
		iv := stats.NewSorted(workload.SubmissionIntervals(jobs))
		s.Add(name, evalCDFSorted(iv, xs))
		if name == "AuverGrid" {
			res.Metrics["auvergrid_median_interval_s"] = iv.Quantile(0.5)
		}
	}
	res.Series = append(res.Series, s)
	res.Notes = append(res.Notes,
		"paper: Google intervals far shorter than all Grid systems")
	return res, nil
}

// Table1 reproduces the per-hour submission statistics and fairness.
func Table1(ctx *Context) (*Result, error) {
	res := newResult("table1", "Number of jobs submitted per hour")
	tbl := &report.Table{
		ID:      "table1",
		Title:   "Table I: jobs submitted per hour (paper: Google 1421/552/36, fairness 0.94)",
		Columns: []string{"system", "max", "avg", "min", "fairness"},
	}
	addRow := func(name string, jobs []trace.Job) {
		rs := workload.SubmissionRates(jobs, ctx.Cfg.WorkloadHorizon)
		tbl.AddRow(name, report.I(rs.Max), report.F(rs.Avg), report.I(rs.Min), report.F2(rs.Fairness))
		res.Metrics[name+"_max"] = rs.Max
		res.Metrics[name+"_avg"] = rs.Avg
		res.Metrics[name+"_min"] = rs.Min
		res.Metrics[name+"_fairness"] = rs.Fairness
	}
	gJobs, err := ctx.GoogleJobs()
	if err != nil {
		return nil, err
	}
	addRow("Google", gJobs)
	for _, name := range gridOrder {
		jobs, err := ctx.GridJobs(name)
		if err != nil {
			return nil, err
		}
		addRow(name, jobs)
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// Fig6 reproduces the per-job CPU usage (Formula 4) and memory usage
// CDFs.
func Fig6(ctx *Context) (*Result, error) {
	res := newResult("fig6", "Per-job CPU and memory usage")

	// Panel (a): CPU usage, 0-5 processors.
	xsCPU := xGrid(5, 201)
	sa := report.NewSeries("fig6a", "CDF of per-job CPU utilisation (Formula 4)", "processors")
	sa.X = xsCPU
	gJobs, err := ctx.GoogleJobs()
	if err != nil {
		return nil, err
	}
	gCPU := stats.NewSorted(workload.CPUUsage(gJobs))
	sa.Add("Google", evalCDFSorted(gCPU, xsCPU))
	res.Metrics["google_median_cpu"] = gCPU.Quantile(0.5)
	for _, name := range []string{"AuverGrid", "DAS-2"} {
		jobs, err := ctx.GridJobs(name)
		if err != nil {
			return nil, err
		}
		cpu := stats.NewSorted(workload.CPUUsage(jobs))
		sa.Add(name, evalCDFSorted(cpu, xsCPU))
		res.Metrics["median_cpu_"+name] = cpu.Quantile(0.5)
	}
	res.Series = append(res.Series, sa)

	// Panel (b): memory usage in MB, 0-1000.
	xsMem := xGrid(1000, 201)
	sb := report.NewSeries("fig6b", "CDF of per-job memory usage (MB)", "MB")
	sb.X = xsMem
	g32 := stats.NewSorted(workload.MemoryUsageMB(gJobs, 32))
	g64 := workload.MemoryUsageMB(gJobs, 64)
	sb.Add("Google (32GB)", evalCDFSorted(g32, xsMem))
	sb.Add("Google (64GB)", evalCDF(g64, xsMem))
	res.Metrics["google32_median_mem_mb"] = g32.Quantile(0.5)
	for _, name := range []string{"AuverGrid", "SHARCNET", "DAS-2"} {
		jobs, err := ctx.GridJobs(name)
		if err != nil {
			return nil, err
		}
		mem := stats.NewSorted(workload.MemoryUsageMB(jobs, 0))
		sb.Add(name, evalCDFSorted(mem, xsMem))
		if name == "AuverGrid" {
			res.Metrics["auvergrid_median_mem_mb"] = mem.Quantile(0.5)
		}
	}
	res.Series = append(res.Series, sb)
	res.Notes = append(res.Notes,
		"paper: Google jobs mostly hold one processor; Grid jobs parallel; Google memory smaller")
	return res, nil
}
