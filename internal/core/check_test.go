package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestExpectationsWellFormed(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		ids[e.ID] = true
	}
	for _, e := range Expectations() {
		if !ids[e.Experiment] {
			t.Errorf("expectation references unknown experiment %q", e.Experiment)
		}
		if e.Lo > e.Hi {
			t.Errorf("%s/%s: Lo %v > Hi %v", e.Experiment, e.Metric, e.Lo, e.Hi)
		}
		if e.Metric == "" || e.Note == "" {
			t.Errorf("%s: incomplete expectation", e.Experiment)
		}
	}
	if len(Expectations()) < 25 {
		t.Errorf("only %d expectations", len(Expectations()))
	}
}

func TestCheckVerdicts(t *testing.T) {
	results := []*Result{
		{ID: "fig4", Metrics: map[string]float64{
			"google_joint_items":    6.5, // in band
			"auvergrid_joint_items": 99,  // out of band
		}},
	}
	crs := Check(results)
	byKey := map[string]CheckResult{}
	for _, c := range crs {
		byKey[c.Experiment+"/"+c.Metric] = c
	}
	if c := byKey["fig4/google_joint_items"]; !c.Found || !c.Pass {
		t.Fatalf("in-band metric failed: %+v", c)
	}
	if c := byKey["fig4/auvergrid_joint_items"]; !c.Found || c.Pass {
		t.Fatalf("out-of-band metric passed: %+v", c)
	}
	if c := byKey["table1/Google_avg"]; c.Found || c.Pass {
		t.Fatalf("missing metric should fail: %+v", c)
	}
}

func TestRenderChecks(t *testing.T) {
	crs := Check([]*Result{
		{ID: "fig4", Metrics: map[string]float64{"google_joint_items": 6}},
	})
	var buf bytes.Buffer
	if err := RenderChecks(&buf, crs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "checks passed") || !strings.Contains(out, "missing") {
		t.Fatalf("render output incomplete:\n%s", out)
	}
}

// TestCheckOnQuickScale documents how many acceptance bands already
// hold at the fast test scale; the full-scale run is the real gate,
// but a majority must hold even here.
func TestCheckOnQuickScale(t *testing.T) {
	results, err := RunAll(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	crs := Check(results)
	pass, total := Passed(crs)
	if pass < total*6/10 {
		for _, c := range crs {
			if !c.Pass {
				t.Logf("failing: %s/%s measured %v band [%v,%v]",
					c.Experiment, c.Metric, c.Measured, c.Lo, c.Hi)
			}
		}
		t.Fatalf("only %d/%d checks pass at quick scale", pass, total)
	}
	t.Logf("quick scale: %d/%d checks pass", pass, total)
}
