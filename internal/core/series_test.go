package core

import (
	"math"
	"strings"
	"testing"
)

// TestCDFSeriesMonotone: every CDF figure's exported series must be a
// valid CDF — non-decreasing and within [0, 1].
func TestCDFSeriesMonotone(t *testing.T) {
	for _, id := range []string{"fig3", "fig5", "fig6"} {
		exp, err := Find(id)
		if err != nil {
			t.Fatal(err)
		}
		r, err := exp.Run(sharedCtx)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range r.Series {
			for _, col := range s.YOrder {
				ys := s.Y[col]
				for i, v := range ys {
					if v < -1e-9 || v > 1+1e-9 {
						t.Fatalf("%s/%s[%s][%d] = %v out of [0,1]", id, s.ID, col, i, v)
					}
					if i > 0 && v < ys[i-1]-1e-9 {
						t.Fatalf("%s/%s[%s] not monotone at %d", id, s.ID, col, i)
					}
				}
			}
		}
	}
}

// TestMassCountSeriesShape: count and mass curves are monotone and the
// mass curve never exceeds the count curve.
func TestMassCountSeriesShape(t *testing.T) {
	for _, id := range []string{"fig4", "fig11", "fig12"} {
		exp, err := Find(id)
		if err != nil {
			t.Fatal(err)
		}
		r, err := exp.Run(sharedCtx)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range r.Series {
			count, mass := s.Y["count"], s.Y["mass"]
			if len(count) == 0 || len(count) != len(mass) {
				t.Fatalf("%s/%s missing curves", id, s.ID)
			}
			for i := range count {
				if mass[i] > count[i]+1e-9 {
					t.Fatalf("%s/%s mass %v above count %v at %d", id, s.ID, mass[i], count[i], i)
				}
				if i > 0 && (count[i] < count[i-1]-1e-9 || mass[i] < mass[i-1]-1e-9) {
					t.Fatalf("%s/%s curves not monotone at %d", id, s.ID, i)
				}
			}
		}
	}
}

// TestFig7PDFSums: each capacity class's PDF sums to ~1 (every machine
// lands in exactly one bin).
func TestFig7PDFSums(t *testing.T) {
	r, err := Fig7(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Series {
		for _, col := range s.YOrder {
			var sum float64
			for _, v := range s.Y[col] {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s[%s] PDF sums to %v", s.ID, col, sum)
			}
		}
	}
}

// TestFig10LevelsInRange: exported level traces stay within the five
// usage bins.
func TestFig10LevelsInRange(t *testing.T) {
	r, err := Fig10(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Series {
		for _, col := range s.YOrder {
			if !strings.HasPrefix(col, "machine") {
				continue
			}
			for i, v := range s.Y[col] {
				if v < 0 || v > 4 || v != math.Trunc(v) {
					t.Fatalf("%s[%s][%d] = %v not a level index", s.ID, col, i, v)
				}
			}
		}
	}
}

// TestFig13ZoomWindows: the zoom panels cover the advertised fractions
// of the horizon.
func TestFig13ZoomWindows(t *testing.T) {
	r, err := Fig13(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	horizonDays := float64(sharedCtx.Cfg.SimHorizon) / 86400
	for _, s := range r.Series {
		if len(s.X) == 0 {
			t.Fatalf("%s empty", s.ID)
		}
		lo, hi := s.X[0], s.X[len(s.X)-1]
		switch {
		case strings.HasSuffix(s.ID, "-zoom5d"):
			if lo < horizonDays*0.30 || hi > horizonDays*0.55 {
				t.Fatalf("%s window [%v,%v] outside the 1/3..1/2 band", s.ID, lo, hi)
			}
		case strings.HasSuffix(s.ID, "-zoom1d"):
			if hi-lo > horizonDays*0.08 {
				t.Fatalf("%s window [%v,%v] too wide for a 1-day zoom", s.ID, lo, hi)
			}
		default:
			if lo > 0.01 || hi < horizonDays*0.9 {
				t.Fatalf("%s full window [%v,%v] does not span the horizon", s.ID, lo, hi)
			}
		}
	}
}
