package core

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/hostload"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/timeseries"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig7 reproduces the distribution of each machine's maximum load for
// the four attributes, grouped by capacity class.
func Fig7(ctx *Context) (*Result, error) {
	res := newResult("fig7", "Distribution of maximum host load")
	sim, err := ctx.Sim()
	if err != nil {
		return nil, err
	}
	panels := []struct {
		id   string
		attr hostload.Attribute
	}{
		{"fig7a", hostload.CPUUsage},
		{"fig7b", hostload.MemUsed},
		{"fig7c", hostload.MemAssigned},
		{"fig7d", hostload.PageCache},
	}
	const bins = 40
	for _, p := range panels {
		byClass := hostload.MaxLoadsByClass(sim.Machines, p.attr)
		classes := make([]float64, 0, len(byClass))
		for c := range byClass {
			classes = append(classes, c)
		}
		slices.Sort(classes)
		s := report.NewSeries(p.id,
			fmt.Sprintf("PDF of normalised maximum host load (%s)", p.attr), "max load")
		h0 := stats.NewHistogram(nil, bins, 0, 1)
		s.X = h0.BinCenters()
		for _, c := range classes {
			h := stats.NewHistogram(byClass[c], bins, 0, 1)
			s.Add(fmt.Sprintf("cap=%.2f", c), h.PDF())
		}
		res.Series = append(res.Series, s)
	}

	// Headline metrics.
	atCap := hostload.AtCapacityFraction(sim.Machines, hostload.CPUUsage, 0.97)
	res.Metrics["cpu_maxload_at_capacity_cap025"] = atCap[0.25]
	res.Metrics["cpu_maxload_at_capacity_cap05"] = atCap[0.5]
	res.Metrics["cpu_maxload_at_capacity_cap1"] = atCap[1.0]
	// Iterate capacity classes in sorted order: ranging over the map
	// directly would make the floating-point mean depend on Go's
	// randomised map order and so differ run-to-run in the last ulp.
	relMaxOverCapacity := func(byClass map[float64][]float64) float64 {
		caps := make([]float64, 0, len(byClass))
		for c := range byClass {
			caps = append(caps, c)
		}
		slices.Sort(caps)
		var relMax []float64
		for _, c := range caps {
			for _, m := range byClass[c] {
				relMax = append(relMax, m/c)
			}
		}
		return stats.Mean(relMax)
	}
	res.Metrics["mem_mean_max_over_capacity"] =
		relMaxOverCapacity(hostload.MaxLoadsByClass(sim.Machines, hostload.MemUsed))
	res.Metrics["assigned_mean_max_over_capacity"] =
		relMaxOverCapacity(hostload.MaxLoadsByClass(sim.Machines, hostload.MemAssigned))
	res.Notes = append(res.Notes,
		"paper: CPU maxima near capacity (80%/70% for low/mid classes); max memory ~80% of capacity; assigned ~90%; page cache bimodal")
	return res, nil
}

// Fig8 reproduces the task events and queue state on one typical host.
func Fig8(ctx *Context) (*Result, error) {
	res := newResult("fig8", "Task events and queue state on one host")
	sim, err := ctx.Sim()
	if err != nil {
		return nil, err
	}
	// Choose the machine with median running-task occupancy.
	type occ struct {
		idx  int
		mean float64
	}
	occs := par.Map(len(sim.Machines), 0, func(i int) occ {
		return occ{i, stats.Mean(sim.Machines[i].Running.Values)}
	})
	slices.SortFunc(occs, func(a, b occ) int {
		if a.mean != b.mean {
			return cmp.Compare(a.mean, b.mean)
		}
		return cmp.Compare(a.idx, b.idx)
	})
	pick := occs[len(occs)/2].idx
	ms := sim.Machines[pick]
	qs := hostload.MachineQueueState(ms, sim.Events)

	s := report.NewSeries("fig8", fmt.Sprintf("Queue state on machine %d", ms.Machine.ID), "day")
	n := qs.Running.Len()
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(qs.Running.TimeAt(i)) / 86400
	}
	s.X = xs
	s.Add("running", qs.Running.Values)
	pending := sim.Pending.Values
	perHost := make([]float64, n)
	for i := 0; i < n && i < len(pending); i++ {
		perHost[i] = pending[i] / float64(len(sim.Machines))
	}
	s.Add("pending(cluster/host)", perHost)
	s.Add("finished", qs.Finished.Values)
	s.Add("abnormal", qs.Abnormal.Values)
	res.Series = append(res.Series, s)

	// Event mix on this machine plus cluster-wide completion stats.
	tbl := &report.Table{
		ID:      "fig8",
		Title:   fmt.Sprintf("Fig 8: event counts (machine %d and cluster)", ms.Machine.ID),
		Columns: []string{"event", "machine count", "cluster count"},
	}
	machineEvents := hostload.MachineEvents(sim.Events, ms.Machine.ID)
	mc := map[trace.EventType]int{}
	for _, e := range machineEvents {
		mc[e.Type]++
	}
	for _, et := range []trace.EventType{
		trace.EventSubmit, trace.EventSchedule, trace.EventFinish,
		trace.EventEvict, trace.EventFail, trace.EventKill, trace.EventLost,
	} {
		tbl.AddRow(et.String(), fmt.Sprintf("%d", mc[et]),
			fmt.Sprintf("%d", sim.Stats.EventCounts[et]))
	}
	res.Tables = append(res.Tables, tbl)

	res.Metrics["abnormal_fraction"] = sim.Stats.AbnormalFraction()
	ec := sim.Stats.EventCounts
	abn := ec[trace.EventFail] + ec[trace.EventKill] + ec[trace.EventEvict] + ec[trace.EventLost]
	if abn > 0 {
		res.Metrics["fail_share_of_abnormal"] = float64(ec[trace.EventFail]) / float64(abn)
		res.Metrics["kill_share_of_abnormal"] = float64(ec[trace.EventKill]) / float64(abn)
	}
	res.Metrics["mean_running_tasks"] = stats.Mean(ms.Running.Values)
	res.Metrics["mean_pending_per_host"] = stats.Mean(perHost)
	res.Notes = append(res.Notes,
		"paper: 59.2% of completion events abnormal (50% fail, 30.7% kill); pending queue ~0")
	return res, nil
}

// Fig9 reproduces the mass-count disparity of the durations during
// which the running-queue state stays in one count interval.
func Fig9(ctx *Context) (*Result, error) {
	res := newResult("fig9", "Mass-count of unchanged queue-state durations")
	sim, err := ctx.Sim()
	if err != nil {
		return nil, err
	}
	intervals := hostload.DefaultCountIntervals()
	durs := hostload.RunningStateDurations(sim.Machines, intervals)

	tbl := &report.Table{
		ID:      "fig9",
		Title:   "Fig 9: unchanged running-queue-state durations (paper joint ratios: 11/89, 12/88, 13/87, 16/84)",
		Columns: []string{"running tasks", "segments", "joint ratio", "mm-distance (min)", "mean (min)"},
	}
	// The paper shows the four middle intervals.
	for _, iv := range intervals[1:5] {
		ds := durs[iv]
		sv := stats.NewSorted(ds)
		sum := workload.SummarizeMassCountSorted(ds, sv)
		name := fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
		tbl.AddRow(name, fmt.Sprintf("%d", sum.N),
			fmt.Sprintf("%.0f/%.0f", sum.JointItems, sum.JointMass),
			report.F2(sum.MMDistance/60), report.F2(sum.Mean/60))
		res.Metrics["joint_items_"+name] = sum.JointItems

		if sum.N > 1 {
			mc := stats.NewMassCountSorted(sv)
			xsRaw, count, mass := mc.Curve(200)
			xs := make([]float64, len(xsRaw))
			for i, x := range xsRaw {
				xs[i] = x / 60 // minutes
			}
			s := report.NewSeries(fmt.Sprintf("fig9-%d-%d", iv.Lo, iv.Hi),
				fmt.Sprintf("Unchanged queue-state durations, running in %s", name), "minutes")
			s.X = xs
			s.Add("count", count)
			s.Add("mass", mass)
			res.Series = append(res.Series, s)
		}
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"paper: skewed per the 10/90 rule; [40,49] changes fastest (smaller mm-distance)")
	return res, nil
}

// Fig10 reproduces the usage-level snapshot: quantised CPU/memory
// levels over time for a machine sample, for all tasks and for
// high-priority tasks only.
func Fig10(ctx *Context) (*Result, error) {
	res := newResult("fig10", "Snapshot of machine usage levels")
	sim, err := ctx.Sim()
	if err != nil {
		return nil, err
	}
	n := ctx.Cfg.SampleMachines
	if n > len(sim.Machines) {
		n = len(sim.Machines)
	}
	sample := sim.Machines[:n]

	panels := []struct {
		id    string
		attr  hostload.Attribute
		group trace.PriorityGroup
		title string
	}{
		{"fig10a", hostload.CPUUsage, trace.LowPriority, "CPU usage, all tasks"},
		{"fig10b", hostload.CPUUsage, trace.HighPriority, "CPU usage, high-priority tasks"},
		{"fig10c", hostload.MemUsed, trace.LowPriority, "memory usage, all tasks"},
		{"fig10d", hostload.MemUsed, trace.HighPriority, "memory usage, high-priority tasks"},
	}
	levelShares := &report.Table{
		ID:      "fig10",
		Title:   "Fig 10: share of samples per usage level (5 levels of 0.2)",
		Columns: []string{"panel", "[0,.2)", "[.2,.4)", "[.4,.6)", "[.6,.8)", "[.8,1]"},
	}
	for _, p := range panels {
		var counts [hostload.UsageLevels]int
		total := 0
		s := report.NewSeries(p.id, "Usage level trace: "+p.title, "day")
		// Quantise every machine in parallel; aggregate serially in
		// machine order so counts and exported rows are unchanged.
		traces := par.Map(len(sample), 0, func(mi int) []int {
			return hostload.LevelTrace(sample[mi], p.attr, p.group)
		})
		for mi, levels := range traces {
			ms := sample[mi]
			if mi == 0 {
				xs := make([]float64, len(levels))
				for i := range xs {
					xs[i] = float64(ms.Running.TimeAt(i)) / 86400
				}
				s.X = xs
			}
			ys := make([]float64, len(levels))
			for i, l := range levels {
				ys[i] = float64(l)
				// Level -1 marks NaN samples (zero-capacity machines);
				// they belong to no usage level and are exported as -1
				// but excluded from the level shares.
				if l < 0 {
					continue
				}
				counts[l]++
				total++
			}
			// Export a bounded number of machine rows to keep files small.
			if mi < 10 {
				s.Add(fmt.Sprintf("machine%d", ms.Machine.ID), ys)
			}
		}
		res.Series = append(res.Series, s)
		row := []string{p.title}
		for _, c := range counts {
			row = append(row, report.F2(float64(c)/float64(total)))
		}
		levelShares.AddRow(row...)
		res.Metrics["idle_share_"+p.id] = float64(counts[0]) / float64(total)
	}
	res.Tables = append(res.Tables, levelShares)
	res.Notes = append(res.Notes,
		"paper: CPU mostly idle-ish except days 21-25; memory levels high; high-priority load much lighter")
	return res, nil
}

// levelDurationTable builds the Table II/III layout for an attribute.
func levelDurationTable(ctx *Context, id, title string, attr hostload.Attribute) (*Result, error) {
	res := newResult(id, title)
	sim, err := ctx.Sim()
	if err != nil {
		return nil, err
	}
	durs := hostload.LevelDurations(sim.Machines, attr, trace.LowPriority)
	labels := []string{"[0,0.2)", "[0.2,0.4)", "[0.4,0.6)", "[0.6,0.8)", "[0.8,1]"}
	tbl := &report.Table{
		ID:      id,
		Title:   title,
		Columns: []string{"statistic", labels[0], labels[1], labels[2], labels[3], labels[4]},
	}
	avg := []string{"avg (min)"}
	max := []string{"max (min)"}
	joint := []string{"joint ratio"}
	mmd := []string{"mm-distance (min)"}
	for lvl := 0; lvl < hostload.UsageLevels; lvl++ {
		sum := workload.SummarizeMassCount(durs[lvl])
		if sum.N == 0 {
			avg = append(avg, "-")
			max = append(max, "-")
			joint = append(joint, "-")
			mmd = append(mmd, "-")
			continue
		}
		avg = append(avg, report.F2(sum.Mean/60))
		max = append(max, report.I(sum.Max/60))
		joint = append(joint, fmt.Sprintf("%.0f/%.0f", sum.JointItems, sum.JointMass))
		mmd = append(mmd, report.F2(sum.MMDistance/60))
		res.Metrics[fmt.Sprintf("avg_min_level%d", lvl)] = sum.Mean / 60
		res.Metrics[fmt.Sprintf("joint_items_level%d", lvl)] = sum.JointItems
		res.Metrics[fmt.Sprintf("mmdis_min_level%d", lvl)] = sum.MMDistance / 60
	}
	tbl.AddRow(avg...)
	tbl.AddRow(max...)
	tbl.AddRow(joint...)
	tbl.AddRow(mmd...)
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// Table2 reproduces the unchanged-CPU-usage-level duration statistics.
func Table2(ctx *Context) (*Result, error) {
	res, err := levelDurationTable(ctx, "table2",
		"Table II: continuous duration of unchanged CPU usage level (paper: avg ~6 min, joint ~26-30/74-70, mmdis 18-49 min)",
		hostload.CPUUsage)
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes, "paper: CPU level changes roughly every 6 minutes")
	return res, nil
}

// Table3 reproduces the unchanged-memory-usage-level duration
// statistics.
func Table3(ctx *Context) (*Result, error) {
	res, err := levelDurationTable(ctx, "table3",
		"Table III: continuous duration of unchanged memory usage level (paper: avg 6-10 min, joint ~18-26, mmdis 63-351 min)",
		hostload.MemUsed)
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes, "paper: memory levels last longer than CPU levels")
	return res, nil
}

// usageMassCount builds the Fig 11/12 analysis for an attribute.
func usageMassCount(ctx *Context, id, title string, attr hostload.Attribute) (*Result, error) {
	res := newResult(id, title)
	sim, err := ctx.Sim()
	if err != nil {
		return nil, err
	}
	tbl := &report.Table{
		ID:      id,
		Title:   title,
		Columns: []string{"task set", "mean usage (%)", "joint ratio", "mm-distance (%)"},
	}
	for _, g := range []struct {
		name  string
		group trace.PriorityGroup
	}{{"all priorities", trace.LowPriority}, {"high priority", trace.HighPriority}} {
		samples := hostload.UsageSamples(sim.Machines, attr, g.group)
		sv := stats.NewSorted(samples)
		sum := workload.SummarizeMassCountSorted(samples, sv)
		tbl.AddRow(g.name, report.F2(sum.Mean),
			fmt.Sprintf("%.0f/%.0f", sum.JointItems, sum.JointMass),
			report.F2(sum.MMDistance))
		key := "all"
		if g.group == trace.HighPriority {
			key = "high"
		}
		res.Metrics["mean_pct_"+key] = sum.Mean
		res.Metrics["joint_items_"+key] = sum.JointItems
		res.Metrics["mmdis_pct_"+key] = sum.MMDistance

		mc := stats.NewMassCountSorted(sv)
		if mc != nil {
			xs, count, mass := mc.Curve(200)
			s := report.NewSeries(id+"-"+key, title+" ("+g.name+")", "percent")
			s.X = xs
			s.Add("count", count)
			s.Add("mass", mass)
			res.Series = append(res.Series, s)
		}
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// Fig11 reproduces the mass-count disparity of CPU usage percentages.
func Fig11(ctx *Context) (*Result, error) {
	res, err := usageMassCount(ctx, "fig11",
		"Fig 11: mass-count of CPU usage (paper: 40/60, mmdis 13%; high-pri 38/62)",
		hostload.CPUUsage)
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes, "paper: CPU usage ~35% overall, ~20% for high-priority tasks")
	return res, nil
}

// Fig12 reproduces the mass-count disparity of memory usage
// percentages.
func Fig12(ctx *Context) (*Result, error) {
	res, err := usageMassCount(ctx, "fig12",
		"Fig 12: mass-count of memory usage (paper: 43/57, mmdis 8%; high-pri 41/59)",
		hostload.MemUsed)
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes, "paper: memory usage ~60% overall, ~50% for high-priority tasks")
	return res, nil
}

// Fig13 reproduces the host-load comparison: per-machine CPU and
// memory usage over time for Google vs AuverGrid vs SHARCNET, plus the
// noise and autocorrelation statistics.
func Fig13(ctx *Context) (*Result, error) {
	res := newResult("fig13", "Host load comparison Google vs Grid")
	sim, err := ctx.Sim()
	if err != nil {
		return nil, err
	}
	// One representative Google machine (median CPU usage).
	type mload struct {
		idx  int
		mean float64
	}
	loads := par.Map(len(sim.Machines), 0, func(i int) mload {
		rel := hostload.RelativeSeries(sim.Machines[i], hostload.CPUUsage, trace.LowPriority)
		return mload{i, stats.Mean(rel.Values)}
	})
	slices.SortFunc(loads, func(a, b mload) int {
		if a.mean != b.mean {
			return cmp.Compare(a.mean, b.mean)
		}
		return cmp.Compare(a.idx, b.idx)
	})
	gm := sim.Machines[loads[len(loads)/2].idx]
	gCPU := hostload.RelativeSeries(gm, hostload.CPUUsage, trace.LowPriority)
	gMem := hostload.RelativeSeries(gm, hostload.MemUsed, trace.LowPriority)

	seed := rng.New(ctx.Cfg.Seed).Child("fig13")
	agCPU, agMem := synth.GridHostSeries(synth.DefaultGridHost("AuverGrid"), ctx.Cfg.SimHorizon, seed.Child("ag"))
	snCPU, snMem := synth.GridHostSeries(synth.DefaultGridHost("SHARCNET"), ctx.Cfg.SimHorizon, seed.Child("sn"))

	// Full-range panels plus the paper's two zoom levels (days [10,15]
	// and [10,11] of a 30-day trace, expressed as horizon fractions so
	// any scale shows the same relative windows).
	zoomA := [2]float64{10.0 / 30, 15.0 / 30}
	zoomB := [2]float64{10.0 / 30, 11.0 / 30}
	emitPanels := func(id, name string, cpu, mem *timeseries.Series) {
		windows := []struct {
			suffix   string
			from, to int64
		}{
			{"", 0, ctx.Cfg.SimHorizon},
			{"-zoom5d", int64(zoomA[0] * float64(ctx.Cfg.SimHorizon)), int64(zoomA[1] * float64(ctx.Cfg.SimHorizon))},
			{"-zoom1d", int64(zoomB[0] * float64(ctx.Cfg.SimHorizon)), int64(zoomB[1] * float64(ctx.Cfg.SimHorizon))},
		}
		for _, w := range windows {
			c := cpu.Slice(w.from, w.to)
			m := mem.Slice(w.from, w.to)
			s := report.NewSeries(id+w.suffix, "Relative usage: "+name, "day")
			xs := make([]float64, c.Len())
			for i := range xs {
				xs[i] = float64(c.TimeAt(i)) / 86400
			}
			s.X = xs
			s.Add("cpu_usage", c.Values)
			s.Add("mem_usage", m.Values)
			res.Series = append(res.Series, s)
		}
	}
	emitPanels("fig13-google", "Google machine", gCPU, gMem)
	emitPanels("fig13-auvergrid", "AuverGrid host", agCPU, agMem)
	emitPanels("fig13-sharcnet", "SHARCNET host", snCPU, snMem)

	// Noise and autocorrelation across machine populations.
	gNoise := hostload.Noise(sim.Machines, hostload.CPUUsage, 2)
	nGrid := ctx.Cfg.SampleMachines
	if nGrid < 10 {
		nGrid = 10
	}
	agPop := gridHostPopulation("AuverGrid", nGrid, ctx.Cfg.SimHorizon, seed.Child("agpop"))
	snPop := gridHostPopulation("SHARCNET", nGrid, ctx.Cfg.SimHorizon, seed.Child("snpop"))
	agNoise := hostload.SeriesNoise(agPop, 2)
	snNoise := hostload.SeriesNoise(snPop, 2)

	tbl := &report.Table{
		ID:      "fig13",
		Title:   "Fig 13: CPU load noise and autocorrelation (paper: Google noise ~20x Grid)",
		Columns: []string{"system", "min noise", "mean noise", "max noise", "lag-1 autocorrelation"},
	}
	gAC := hostload.MeanAutocorrelation(sim.Machines, hostload.CPUUsage, 1)
	agAC := hostload.MeanSeriesAutocorrelation(agPop, 1)
	snAC := hostload.MeanSeriesAutocorrelation(snPop, 1)
	tbl.AddRow("Google", report.F(gNoise.Min), report.F(gNoise.Mean), report.F(gNoise.Max), report.F(gAC))
	tbl.AddRow("AuverGrid", report.F(agNoise.Min), report.F(agNoise.Mean), report.F(agNoise.Max), report.F(agAC))
	tbl.AddRow("SHARCNET", report.F(snNoise.Min), report.F(snNoise.Mean), report.F(snNoise.Max), report.F(snAC))
	res.Tables = append(res.Tables, tbl)

	res.Metrics["google_mean_noise"] = gNoise.Mean
	res.Metrics["auvergrid_mean_noise"] = agNoise.Mean
	res.Metrics["noise_ratio_google_over_auvergrid"] = gNoise.Mean / agNoise.Mean
	res.Metrics["google_autocorr"] = gAC
	res.Metrics["auvergrid_autocorr"] = agAC
	res.Metrics["google_mean_cpu_usage"] = hostload.MeanRelativeUsage(sim.Machines, hostload.CPUUsage, trace.LowPriority)
	res.Metrics["google_mean_mem_usage"] = hostload.MeanRelativeUsage(sim.Machines, hostload.MemUsed, trace.LowPriority)
	res.Metrics["google_mean_cpu_usage_highpri"] = hostload.MeanRelativeUsage(sim.Machines, hostload.CPUUsage, trace.HighPriority)
	res.Metrics["google_mean_mem_usage_highpri"] = hostload.MeanRelativeUsage(sim.Machines, hostload.MemUsed, trace.HighPriority)
	res.Metrics["google_cpu_mem_correlation"] = hostload.CPUMemCorrelation(sim.Machines)
	res.Notes = append(res.Notes,
		"paper: Grid CPU > memory and stable for hours; Google memory > CPU and volatile")
	return res, nil
}

// gridHostPopulation synthesises n independent Grid-host CPU series.
// Each host draws from its own (seed, label) child stream, so the
// hosts generate in parallel yet the population is identical to a
// serial loop.
func gridHostPopulation(system string, n int, horizon int64, s *rng.Stream) []*timeseries.Series {
	cfg := synth.DefaultGridHost(system)
	return par.Map(n, 0, func(i int) *timeseries.Series {
		cpu, _ := synth.GridHostSeries(cfg, horizon, s.Child(fmt.Sprintf("host%d", i)))
		return cpu
	})
}
