package core

import (
	"fmt"
	"math"

	"repro/internal/gridsim"
	"repro/internal/hostload"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/spectral"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/timeseries"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Extensions lists analyses that go beyond the paper's figures but
// follow directly from its discussion: the diurnal periodicity of
// Grid submissions (H. Li's observation, Related Work), the best-fit
// load prediction study (the conclusion's future work), and the grid
// batch-queueing comparison (the scheduling substrate behind the
// archive traces).
func Extensions() []Experiment {
	return []Experiment{
		{"ext-periodicity", "Extension: submission periodicity (spectral analysis)", ExtPeriodicity},
		{"ext-prediction", "Extension: best-fit host-load prediction", ExtPrediction},
		{"ext-queueing", "Extension: grid queueing (FCFS vs EASY backfill)", ExtQueueing},
		{"ext-robustness", "Extension: seed sensitivity of the headline metrics", ExtRobustness},
		{"ext-streamstats", "Extension: streaming sketch accuracy on the usage aggregations", ExtStreamStats},
	}
}

// ExtStreamStats reruns the Figs 11-12 usage aggregations through the
// streaming sketch path (hostload.UsageSketch) and reports, per
// attribute and priority group, how far the sketch's quantile and
// mm-distance answers sit from the exact materialized-slice kernels —
// checked against the sketch's documented worst-case bound (one bin
// width for quantiles, two for mm-distance). Mean and count must be
// exact. This is the opt-in evidence that the O(bins) path can stand
// in for the O(population) path.
func ExtStreamStats(ctx *Context) (*Result, error) {
	res := newResult("ext-streamstats", "Streaming sketch vs exact usage aggregation")
	sim, err := ctx.Sim()
	if err != nil {
		return nil, err
	}
	const nbins = 200
	tbl := &report.Table{
		ID:      "ext-streamstats",
		Title:   fmt.Sprintf("Sketch (%d bins) vs exact kernels on host usage samples", nbins),
		Columns: []string{"attribute / set", "samples", "mean err", "max quantile err", "mm-dist err", "bound"},
	}
	maxQErr := 0.0
	probes := []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
	for _, a := range []struct {
		name string
		attr hostload.Attribute
	}{{"CPU", hostload.CPUUsage}, {"memory", hostload.MemUsed}} {
		for _, g := range []struct {
			name  string
			group trace.PriorityGroup
		}{{"all priorities", trace.LowPriority}, {"high priority", trace.HighPriority}} {
			samples := hostload.UsageSamples(sim.Machines, a.attr, g.group)
			sk, err := hostload.UsageSketch(sim.Machines, a.attr, g.group, nbins)
			if err != nil {
				return nil, err
			}
			if int(sk.Count()) != len(samples) {
				return nil, fmt.Errorf("ext-streamstats: sketch count %d != exact count %d", sk.Count(), len(samples))
			}
			sv := stats.NewSorted(samples)
			meanErr := math.Abs(sk.Mean() - stats.Mean(samples))
			qErr := 0.0
			for _, p := range probes {
				// The sketch's quantile convention is the order
				// statistic x_(⌈p·n⌉); compare against the same.
				exact := orderStat(sv, p)
				if e := math.Abs(sk.Quantile(p) - exact); e > qErr {
					qErr = e
				}
			}
			if qErr > maxQErr {
				maxQErr = qErr
			}
			// Exact mm-distance in the sketch's own conventions
			// (order-statistic count median, searchGE mass median), so
			// the 2-bin-width bound applies without interpolation slack.
			mc := stats.NewMassCountSorted(sv)
			mmErr := 0.0
			if mc != nil {
				mmErr = math.Abs(sk.MMDistance() - (mc.MassMedian() - orderStat(sv, 0.5)))
			}
			tbl.AddRow(a.name+" / "+g.name, fmt.Sprintf("%d", len(samples)),
				report.F(meanErr), report.F(qErr), report.F(mmErr), report.F(sk.BinWidth()))
			key := a.name + "_" + map[trace.PriorityGroup]string{trace.LowPriority: "all", trace.HighPriority: "high"}[g.group]
			res.Metrics["q_err_"+key] = qErr
			res.Metrics["mm_err_"+key] = mmErr
			if qErr > sk.BinWidth() {
				return nil, fmt.Errorf("ext-streamstats: quantile error %g exceeds bound %g for %s", qErr, sk.BinWidth(), key)
			}
			if mc != nil && mmErr > 2*sk.BinWidth() {
				return nil, fmt.Errorf("ext-streamstats: mm-distance error %g exceeds bound %g for %s", mmErr, 2*sk.BinWidth(), key)
			}
		}
	}
	res.Tables = append(res.Tables, tbl)
	res.Metrics["max_quantile_err_pct"] = maxQErr
	res.Notes = append(res.Notes,
		"sketch answers stay inside the documented one-bin-width bound; means and counts are exact",
		"the default figures keep the exact kernels — the sketch is the streaming opt-in")
	return res, nil
}

// orderStat reads the order statistic x_(⌈p·n⌉) off a sorted view —
// the sketch's (non-interpolating) quantile convention.
func orderStat(sv *stats.Sorted, p float64) float64 {
	vs := sv.Values()
	if len(vs) == 0 {
		return 0
	}
	r := int(math.Ceil(p * float64(len(vs))))
	if r < 1 {
		r = 1
	}
	if r > len(vs) {
		r = len(vs)
	}
	return vs[r-1]
}

// ExtRobustness re-derives the fairness and mass-count headline
// numbers across several seeds, reporting mean and spread — evidence
// that the reproduction's conclusions are not artefacts of one random
// trajectory. It regenerates the (cheap) workload side only.
func ExtRobustness(ctx *Context) (*Result, error) {
	res := newResult("ext-robustness", "Seed sensitivity")
	seeds := []uint64{ctx.Cfg.Seed, ctx.Cfg.Seed + 1, ctx.Cfg.Seed + 2, ctx.Cfg.Seed + 3, ctx.Cfg.Seed + 4}

	var fairness, jointItems, p1000 []float64
	for _, seed := range seeds {
		gcfg := synth.DefaultGoogleConfig(ctx.Cfg.WorkloadHorizon)
		gcfg.MaxTasksPerJob = ctx.Cfg.WorkloadMaxTasksPerJob
		tasks := synth.GenerateGoogleTasks(gcfg, rng.New(seed).Child("robust"))
		jobs := synth.GoogleJobsFromTasks(tasks)
		fairness = append(fairness, workload.SubmissionRates(jobs, ctx.Cfg.WorkloadHorizon).Fairness)
		mc := workload.SummarizeMassCount(workload.TaskLengths(tasks))
		jointItems = append(jointItems, mc.JointItems)
		p1000 = append(p1000, float64(countBelow(workload.JobLengths(jobs), 1000))/float64(len(jobs)))
	}

	tbl := &report.Table{
		ID:      "ext-robustness",
		Title:   fmt.Sprintf("Headline Google metrics across %d seeds (mean, spread)", len(seeds)),
		Columns: []string{"metric", "paper", "mean", "std", "min", "max"},
	}
	addRow := func(name, paper string, xs []float64) {
		tbl.AddRow(name, paper, report.F(stats.Mean(xs)), report.F(stats.Std(xs)),
			report.F(stats.Min(xs)), report.F(stats.Max(xs)))
	}
	addRow("submission fairness", "0.94", fairness)
	addRow("task-length joint items", "6", jointItems)
	addRow("P(job < 1000 s)", ">0.8", p1000)
	res.Tables = append(res.Tables, tbl)
	res.Metrics["fairness_std"] = stats.Std(fairness)
	res.Metrics["joint_items_std"] = stats.Std(jointItems)
	res.Metrics["fairness_mean"] = stats.Mean(fairness)
	res.Notes = append(res.Notes,
		"small spreads across seeds: the calibrated shapes are stable, not one lucky draw")
	return res, nil
}

func countBelow(xs []float64, thr float64) int {
	n := 0
	for _, x := range xs {
		if x < thr {
			n++
		}
	}
	return n
}

// FindAny looks an experiment up across the paper registry and the
// extensions.
func FindAny(id string) (Experiment, error) {
	if e, err := Find(id); err == nil {
		return e, nil
	}
	for _, e := range Extensions() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
}

// ExtPeriodicity measures the dominant period and its strength in the
// hourly submission counts of every system.
func ExtPeriodicity(ctx *Context) (*Result, error) {
	res := newResult("ext-periodicity", "Submission periodicity")
	tbl := &report.Table{
		ID:      "ext-periodicity",
		Title:   "Dominant period of hourly submission counts (paper cites H. Li: Grid load is diurnal)",
		Columns: []string{"system", "dominant period (h)", "strength (peak/mean power)", "relative swing", "hour-of-day peak/mean"},
	}
	addRow := func(name string, jobs []trace.Job) error {
		_, hodPTM := workload.HourOfDayProfile(jobs, ctx.Cfg.WorkloadHorizon)
		counts := workload.HourlyCounts(jobs, ctx.Cfg.WorkloadHorizon)
		s := &timeseries.Series{Start: 0, Step: 3600, Values: counts}
		peak, err := spectral.DominantPeriod(s)
		if err != nil {
			return err
		}
		var mean float64
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		swing := 0.0
		if mean > 0 {
			swing = peak.Amplitude / mean
		}
		tbl.AddRow(name, report.F2(peak.PeriodSeconds/3600), report.F2(peak.Strength),
			report.F2(swing), report.F2(hodPTM))
		res.Metrics["period_h_"+name] = peak.PeriodSeconds / 3600
		res.Metrics["strength_"+name] = peak.Strength
		res.Metrics["swing_"+name] = swing
		res.Metrics["hod_peak_to_mean_"+name] = hodPTM
		return nil
	}
	gJobs, err := ctx.GoogleJobs()
	if err != nil {
		return nil, err
	}
	if err := addRow("Google", gJobs); err != nil {
		return nil, err
	}
	for _, name := range gridOrder {
		jobs, err := ctx.GridJobs(name)
		if err != nil {
			return nil, err
		}
		if err := addRow(name, jobs); err != nil {
			return nil, err
		}
	}
	res.Tables = append(res.Tables, tbl)
	if ctx.Cfg.WorkloadHorizon < 4*86400 {
		res.Notes = append(res.Notes,
			"workload horizon under 4 days: too short to resolve the 24h component; use -scale full")
	}
	res.Notes = append(res.Notes,
		"Grid systems carry visible day-scale components; Google's counts are nearly flat")
	return res, nil
}

// ExtPrediction evaluates the predictor suite on the simulated Google
// hosts and the synthetic Grid hosts and reports the best-fit method
// per platform.
func ExtPrediction(ctx *Context) (*Result, error) {
	res := newResult("ext-prediction", "Best-fit host-load prediction")
	sim, err := ctx.Sim()
	if err != nil {
		return nil, err
	}
	n := ctx.Cfg.SampleMachines
	if n > len(sim.Machines) {
		n = len(sim.Machines)
	}
	var google []*timeseries.Series
	for _, m := range sim.Machines[:n] {
		google = append(google, hostload.RelativeSeries(m, hostload.CPUUsage, trace.LowPriority))
	}
	seed := rng.New(ctx.Cfg.Seed).Child("ext-prediction")
	grid := gridHostPopulation("AuverGrid", n, ctx.Cfg.SimHorizon, seed)

	tbl := &report.Table{
		ID:      "ext-prediction",
		Title:   "Prediction MAE per platform at 1-step and 6-step (30 min) horizons",
		Columns: []string{"predictor", "Google 1-step", "Google 6-step", "AuverGrid 1-step", "AuverGrid 6-step"},
	}
	const warmup = 24
	kStep := func(p predict.Predictor, pop []*timeseries.Series, k int) float64 {
		var sum float64
		n := 0
		for _, s := range pop {
			e := predict.EvaluateK(p, s, warmup, k)
			if e.N > 0 {
				sum += e.MAE
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	for _, p := range predict.Standard() {
		tbl.AddRow(p.Name(),
			report.F(kStep(p, google, 1)), report.F(kStep(p, google, 6)),
			report.F(kStep(p, grid, 1)), report.F(kStep(p, grid, 6)))
	}
	gBest, gE := predict.Best(predict.Standard(), google, warmup)
	aBest, aE := predict.Best(predict.Standard(), grid, warmup)
	tbl.AddRow("BEST (1-step)",
		fmt.Sprintf("%s (%.4f)", gBest.Name(), gE.MAE), "",
		fmt.Sprintf("%s (%.4f)", aBest.Name(), aE.MAE), "")
	res.Tables = append(res.Tables, tbl)
	res.Metrics["google_best_mae"] = gE.MAE
	res.Metrics["auvergrid_best_mae"] = aE.MAE
	res.Metrics["error_ratio"] = gE.MAE / aE.MAE
	res.Notes = append(res.Notes,
		"Cloud host load is many times harder to predict; persistence wins on Grids, smoothing/AR on Google")
	return res, nil
}

// ExtQueueing runs a SHARCNET-style stream (mixed parallel widths,
// which is what makes backfilling matter) through the space-shared
// batch scheduler with and without EASY backfilling.
func ExtQueueing(ctx *Context) (*Result, error) {
	res := newResult("ext-queueing", "Grid queueing: FCFS vs EASY backfill")
	seed := rng.New(ctx.Cfg.Seed).Child("ext-queueing")
	sys := synth.SHARCNET
	arrivals := synth.Arrivals(sys.Arrival, ctx.Cfg.WorkloadHorizon, seed.Child("arrivals"))
	body := seed.Child("jobs")
	var work int64
	specs := make([]gridsim.JobSpec, len(arrivals))
	for i, t := range arrivals {
		length := int64(sys.Length.Sample(body))
		if length < 1 {
			length = 1
		}
		procs := int(sys.NumCPUs.Sample(body))
		if procs < 1 {
			procs = 1
		}
		specs[i] = gridsim.JobSpec{
			ID: int64(i + 1), Submit: t, Procs: procs, Runtime: length,
			Estimate: length + length/2,
		}
		work += length * int64(procs)
	}
	// Size the cluster to run hot (~90% offered load) so a queue forms.
	nodes := int(float64(work) / float64(ctx.Cfg.WorkloadHorizon) / 0.9)
	if nodes < 64 {
		nodes = 64
	}
	for i := range specs {
		if specs[i].Procs > nodes {
			specs[i].Procs = nodes
		}
	}

	tbl := &report.Table{
		ID:      "ext-queueing",
		Title:   fmt.Sprintf("SHARCNET stream on a %d-processor cluster", nodes),
		Columns: []string{"scheduler", "mean wait (min)", "max wait (h)", "max queue", "backfills"},
	}
	for _, bf := range []bool{false, true} {
		r, err := gridsim.Simulate(gridsim.Config{Nodes: nodes, Backfill: bf}, specs, 300)
		if err != nil {
			return nil, err
		}
		name := "FCFS"
		key := "fcfs"
		if bf {
			name, key = "EASY backfill", "easy"
		}
		tbl.AddRow(name, report.F2(r.MeanWait/60), report.F2(float64(r.MaxWait)/3600),
			fmt.Sprintf("%d", r.MaxQueue), fmt.Sprintf("%d", r.Backfilled))
		res.Metrics["mean_wait_min_"+key] = r.MeanWait / 60
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"backfilling reclaims the holes FCFS leaves; Grid wait times (minutes to hours) dwarf Google's empty pending queue")
	return res, nil
}
