package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// tinyConfig keeps the observability tests in the seconds range.
func tinyConfig() Config {
	cfg := QuickConfig()
	cfg.Machines = 10
	cfg.SimHorizon = 86400
	cfg.WorkloadHorizon = 6 * 3600
	return cfg
}

// TestCellHitMissCounters: the first access to an artifact is a miss
// that records a build span; every later access is a hit.
func TestCellHitMissCounters(t *testing.T) {
	ctx := NewContext(tinyConfig())
	rec := obs.NewRecorder()
	ctx.SetRecorder(rec)

	for i := 0; i < 2; i++ {
		if _, err := ctx.GoogleTasks(); err != nil {
			t.Fatalf("GoogleTasks: %v", err)
		}
	}
	if _, err := ctx.GoogleJobs(); err != nil { // misses google_jobs, hits google_tasks internally
		t.Fatalf("GoogleJobs: %v", err)
	}

	reg := rec.Registry()
	if got := reg.Counter("core.cell.google_tasks.miss").Value(); got != 1 {
		t.Errorf("google_tasks misses = %d, want 1", got)
	}
	if got := reg.Counter("core.cell.google_tasks.hit").Value(); got != 2 {
		t.Errorf("google_tasks hits = %d, want 2", got)
	}
	if got := reg.Counter("core.cell.google_jobs.miss").Value(); got != 1 {
		t.Errorf("google_jobs misses = %d, want 1", got)
	}
	if got := reg.Gauge("core.cell.google_tasks.build_seconds").Value(); got < 0 {
		t.Errorf("build_seconds gauge = %v", got)
	}

	var buildSpans []string
	for _, sp := range rec.Spans() {
		if sp.Cat == obs.CatArtifact {
			buildSpans = append(buildSpans, sp.Name)
		}
	}
	joined := strings.Join(buildSpans, ",")
	for _, want := range []string{"build:google_tasks", "build:google_jobs"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing artifact span %s in %v", want, buildSpans)
		}
	}
}

// TestExperimentSpansBothRunners: serial and parallel runners both
// record one experiment span per experiment; the parallel runner also
// records per-worker spans.
func TestExperimentSpansBothRunners(t *testing.T) {
	exps := Experiments()[:4]
	for _, workers := range []int{1, 4} {
		ctx := NewContext(tinyConfig())
		rec := obs.NewRecorder()
		ctx.SetRecorder(rec)
		if _, err := RunExperimentsParallel(ctx, exps, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		expSpans := map[string]int{}
		workerSpans := 0
		for _, sp := range rec.Spans() {
			switch sp.Cat {
			case obs.CatExperiment:
				expSpans[sp.Name]++
			case obs.CatWorker:
				workerSpans++
			}
		}
		for _, e := range exps {
			if expSpans["exp:"+e.ID] != 1 {
				t.Errorf("workers=%d: experiment %s has %d spans, want 1", workers, e.ID, expSpans["exp:"+e.ID])
			}
		}
		if workers > 1 && workerSpans == 0 {
			t.Errorf("workers=%d: no worker spans recorded", workers)
		}
	}
}

// TestInstrumentationDoesNotChangeResults is the core-level half of the
// invariant: a run with a recorder attached is deeply equal — metrics,
// series, notes and rendered tables — to a run without one.
func TestInstrumentationDoesNotChangeResults(t *testing.T) {
	plain, err := RunAllParallel(NewContext(tinyConfig()), 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(tinyConfig())
	ctx.SetRecorder(obs.NewRecorder())
	observed, err := RunAllParallel(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(observed) {
		t.Fatalf("plain %d results, observed %d", len(plain), len(observed))
	}
	for i := range plain {
		p, o := plain[i], observed[i]
		if p.ID != o.ID {
			t.Fatalf("result %d ordering differs: %s vs %s", i, p.ID, o.ID)
		}
		if !reflect.DeepEqual(p.Metrics, o.Metrics) {
			t.Errorf("%s: metrics differ with instrumentation on", p.ID)
		}
		if !reflect.DeepEqual(p.Series, o.Series) {
			t.Errorf("%s: series differ with instrumentation on", p.ID)
		}
		if !reflect.DeepEqual(p.Notes, o.Notes) {
			t.Errorf("%s: notes differ with instrumentation on", p.ID)
		}
	}
	if pt, ot := renderAll(t, plain), renderAll(t, observed); pt != ot {
		t.Error("rendered tables differ with instrumentation on")
	}
}
