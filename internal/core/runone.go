package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/obs"
)

// RunOne executes a single experiment through the same layers the
// batch runner applies — checkpoint lookup, panic isolation, an
// optional per-run deadline, checkpoint write-back — without a worker
// pool. It is the serving daemon's entry point: each HTTP request for
// a cold artifact becomes exactly one RunOne behind the request
// coalescer, and a store warmed by an earlier CLI run (the keys are
// shared via CheckpointKey) answers from disk without re-simulating.
//
// The error, like RunExperiments', is wrapped "core: <id>: ...";
// context cancellation surfaces unwrapped causes via errors.Is. A
// checkpoint hit bypasses the build entirely, so it records no
// core.cell.* activity and no experiment span.
//
// When ctx carries a request trace (the serving path), the checkpoint
// load/save and the experiment run each become child spans of it, and
// checkpoint hit/miss is noted on the request's annotation bag; the
// untraced path (prewarm, tests) behaves exactly as before.
func RunOne(ctx context.Context, c *Context, e Experiment, timeout time.Duration, store *ckpt.Store) (*Result, error) {
	rec := c.Recorder()
	ri := obs.ReqInfoFrom(ctx)
	_, traced := obs.SpanFromContext(ctx)
	if traced {
		// One Chrome lane for the whole build side of this request: the
		// context crossed the coalescer's goroutine boundary, so it has a
		// span identity but no lane yet.
		ctx = rec.PinLane(ctx)
	}
	if store.Enabled() {
		var lsp *obs.Span
		if traced {
			lsp, _ = rec.StartSpan(ctx, "ckpt:load:"+e.ID, obs.CatServe)
		}
		var cached Result
		ok, _ := store.Load(CheckpointKey(c.Cfg, e.ID), &cached)
		lsp.End()
		if ok && cached.ID == e.ID {
			ri.MarkCkptHit()
			return &cached, nil
		}
		ri.MarkCkptMiss()
	}
	sp, runCtx := rec.StartSpan(ctx, "exp:"+e.ID, obs.CatExperiment)
	r, err := runExperimentProtected(runCtx, c, e, timeout)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", e.ID, err)
	}
	if store.Enabled() && !r.Failed() {
		// Best-effort, exactly like the batch runner: an unwritable
		// artifact is simply not checkpointed (ckpt.skip counts it).
		var ssp *obs.Span
		if traced {
			ssp, _ = rec.StartSpan(ctx, "ckpt:save:"+e.ID, obs.CatServe)
		}
		_ = store.Save(CheckpointKey(c.Cfg, e.ID), r)
		ssp.End()
	}
	return r, nil
}
