package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/obs"
)

// RunOne executes a single experiment through the same layers the
// batch runner applies — checkpoint lookup, panic isolation, an
// optional per-run deadline, checkpoint write-back — without a worker
// pool. It is the serving daemon's entry point: each HTTP request for
// a cold artifact becomes exactly one RunOne behind the request
// coalescer, and a store warmed by an earlier CLI run (the keys are
// shared via CheckpointKey) answers from disk without re-simulating.
//
// The error, like RunExperiments', is wrapped "core: <id>: ...";
// context cancellation surfaces unwrapped causes via errors.Is. A
// checkpoint hit bypasses the build entirely, so it records no
// core.cell.* activity and no experiment span.
func RunOne(ctx context.Context, c *Context, e Experiment, timeout time.Duration, store *ckpt.Store) (*Result, error) {
	rec := c.Recorder()
	if store.Enabled() {
		var cached Result
		if ok, _ := store.Load(CheckpointKey(c.Cfg, e.ID), &cached); ok && cached.ID == e.ID {
			return &cached, nil
		}
	}
	sp := rec.Span("exp:"+e.ID, obs.CatExperiment, obs.AutoTID)
	r, err := runExperimentProtected(ctx, c, e, timeout)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", e.ID, err)
	}
	if store.Enabled() && !r.Failed() {
		// Best-effort, exactly like the batch runner: an unwritable
		// artifact is simply not checkpointed (ckpt.skip counts it).
		_ = store.Save(CheckpointKey(c.Cfg, e.ID), r)
	}
	return r, nil
}
