package core

import (
	"fmt"
	"io"
	"math"

	"repro/internal/report"
)

// Expectation is one machine-checkable claim from the paper: the
// metric an experiment measures, the paper's value, and the acceptance
// band within which the reproduction (at full scale) is considered to
// match the paper's shape.
type Expectation struct {
	Experiment string
	Metric     string
	Paper      float64 // the paper's reported value
	Lo, Hi     float64 // acceptance band
	Note       string
}

// Expectations lists the paper's quantitative claims with their
// acceptance bands. Bands are deliberately wide where the statistic is
// scale- or sampling-sensitive (see EXPERIMENTS.md).
func Expectations() []Expectation {
	return []Expectation{
		{"fig2", "low_priority_job_share", 0.85, 0.60, 0.95, "most jobs at priorities 1-4"},
		{"fig3", "google_P_len_lt_1000s", 0.80, 0.60, 0.92, ">80% of Google jobs under 1000s"},
		{"fig3", "gridP1000_AuverGrid", 0.05, 0, 0.30, "most Grid jobs above 2000s"},
		{"fig4", "google_joint_items", 6, 3, 15, "Google task lengths ~6/94"},
		{"fig4", "auvergrid_joint_items", 24, 15, 35, "AuverGrid ~24/76"},
		{"fig4", "google_max_task_days", 29, 20, 30, "longest Google task ~29 days"},
		{"fig4", "auvergrid_max_task_days", 18, 12, 19, "longest AuverGrid task ~18 days"},
		{"table1", "Google_avg", 552, 450, 660, "552 jobs/hour"},
		{"table1", "Google_fairness", 0.94, 0.85, 0.99, "fairness 0.94"},
		{"table1", "AuverGrid_fairness", 0.35, 0.15, 0.55, "fairness 0.35"},
		{"table1", "SHARCNET_fairness", 0.04, 0.005, 0.20, "fairness 0.04"},
		{"table1", "ANL_avg", 10, 4, 20, "10 jobs/hour"},
		{"fig6", "google_median_cpu", 0.5, 0, 1, "Google jobs at most one processor"},
		{"fig6", "median_cpu_AuverGrid", 0.9, 0.6, 1.1, "AuverGrid serial, fully busy"},
		{"fig7", "cpu_maxload_at_capacity_cap025", 0.80, 0.50, 1, ">80% of low-CPU hosts max at capacity"},
		{"fig7", "cpu_maxload_at_capacity_cap05", 0.70, 0.40, 1, ">70% of mid-CPU hosts max at capacity"},
		{"fig7", "mem_mean_max_over_capacity", 0.80, 0.60, 0.95, "max memory ~80% of capacity"},
		{"fig7", "assigned_mean_max_over_capacity", 0.90, 0.75, 1, "assigned ~90% of capacity"},
		{"fig8", "abnormal_fraction", 0.592, 0.50, 0.68, "59.2% abnormal completions"},
		{"fig8", "fail_share_of_abnormal", 0.50, 0.40, 0.60, "fail = 50% of abnormal"},
		{"fig8", "kill_share_of_abnormal", 0.307, 0.22, 0.40, "kill = 30.7% of abnormal"},
		{"fig8", "mean_pending_per_host", 0, 0, 0.5, "pending queue ~0"},
		{"fig9", "joint_items_[10,19]", 11, 5, 30, "skewed queue-state durations"},
		{"fig11", "mean_pct_all", 35, 25, 45, "CPU usage ~35%"},
		{"fig11", "mean_pct_high", 20, 10, 30, "high-priority CPU ~20%"},
		{"fig12", "mean_pct_all", 60, 45, 70, "memory usage ~60%"},
		{"fig12", "mean_pct_high", 50, 30, 60, "high-priority memory ~50%"},
		{"fig13", "noise_ratio_google_over_auvergrid", 20, 8, 45, "Google noise ~20x Grid"},
		{"fig13", "auvergrid_autocorr", 1.0, 0.90, 1.0, "Grid load stable for hours"},
		{"fig13", "google_autocorr", 0, -0.5, 0.90, "Google load far less stable"},
	}
}

// CheckResult is the verdict on one expectation.
type CheckResult struct {
	Expectation
	Measured float64
	Found    bool
	Pass     bool
}

// Check compares experiment results against the expectations. Results
// missing a metric are reported as not found (and failing).
func Check(results []*Result) []CheckResult {
	byID := make(map[string]*Result, len(results))
	for _, r := range results {
		byID[r.ID] = r
	}
	var out []CheckResult
	for _, e := range Expectations() {
		cr := CheckResult{Expectation: e, Measured: math.NaN()}
		if r, ok := byID[e.Experiment]; ok {
			if v, ok := r.Metrics[e.Metric]; ok {
				cr.Measured = v
				cr.Found = true
				cr.Pass = v >= e.Lo && v <= e.Hi
			}
		}
		out = append(out, cr)
	}
	return out
}

// Passed counts passing checks.
func Passed(crs []CheckResult) (pass, total int) {
	for _, c := range crs {
		if c.Pass {
			pass++
		}
	}
	return pass, len(crs)
}

// RenderChecks writes the verdict table.
func RenderChecks(w io.Writer, crs []CheckResult) error {
	tbl := &report.Table{
		ID:      "check",
		Title:   "Paper-vs-measured acceptance checks",
		Columns: []string{"experiment", "metric", "paper", "band", "measured", "verdict"},
	}
	for _, c := range crs {
		measured := "missing"
		if c.Found {
			measured = report.F(c.Measured)
		}
		verdict := "FAIL"
		if c.Pass {
			verdict = "ok"
		}
		tbl.AddRow(c.Experiment, c.Metric, report.F(c.Paper),
			fmt.Sprintf("[%s, %s]", report.F(c.Lo), report.F(c.Hi)),
			measured, verdict)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	pass, total := Passed(crs)
	_, err := fmt.Fprintf(w, "%d/%d checks passed\n", pass, total)
	return err
}
