package core

import (
	"fmt"
	"io"
	"slices"

	"repro/internal/report"
)

// This file is the single markdown renderer for regenerated artifacts.
// Both emitters — cmd/repro's -markdown report and the serving daemon's
// /v1/report and /v1/artifacts/{id}?format=md endpoints — go through
// these functions, which is what makes the daemon's determinism
// contract (served bytes == CLI bytes for the same config) structural
// rather than accidental.

// SortedMetricKeys returns a result's metric names in ascending order,
// the stable order every renderer (verbose CLI output, markdown,
// served JSON consumers) iterates metrics in.
func SortedMetricKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// WriteResultMarkdown renders one result as a markdown section: the
// "## <id> — <title>" heading, the tables, blockquoted notes and a
// collapsed metrics list (or the FAILED annotation for a keep-going
// placeholder).
func WriteResultMarkdown(w io.Writer, r *Result) error {
	fmt.Fprintf(w, "## %s — %s\n\n", r.ID, r.Title)
	if r.Failed() {
		fmt.Fprintf(w, "**FAILED:** %s\n\n", r.Err)
		return nil
	}
	for _, tbl := range r.Tables {
		if err := tbl.WriteMarkdown(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, note := range r.Notes {
		fmt.Fprintf(w, "> %s\n\n", note)
	}
	if len(r.Metrics) > 0 {
		fmt.Fprintf(w, "<details><summary>metrics</summary>\n\n")
		for _, k := range SortedMetricKeys(r.Metrics) {
			fmt.Fprintf(w, "- `%s` = %.4g\n", k, r.Metrics[k])
		}
		fmt.Fprintf(w, "\n</details>\n\n")
	}
	return nil
}

// WriteMarkdownReport renders a full reproduction report: the scale
// header, every result section in list order, and — when timing rows
// are supplied (instrumented CLI runs only) — the timing table. The
// daemon always passes nil timing so served reports stay
// byte-identical to uninstrumented CLI reports.
func WriteMarkdownReport(w io.Writer, cfg Config, results []*Result, timing []report.TimingRow) error {
	fmt.Fprintf(w, "# Reproduction report\n\n")
	fmt.Fprintf(w, "Scale: %d machines, %.0f-day simulation, %.0f-day workload, seed %d.\n\n",
		cfg.Machines, float64(cfg.SimHorizon)/86400, float64(cfg.WorkloadHorizon)/86400, cfg.Seed)
	for _, r := range results {
		if err := WriteResultMarkdown(w, r); err != nil {
			return err
		}
	}
	if len(timing) > 0 {
		fmt.Fprintf(w, "## Timing\n\n")
		if err := report.TimingTable(timing).WriteMarkdown(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
