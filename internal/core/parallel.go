package core

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
)

// RunAllParallel executes every paper experiment against one shared
// context over a bounded worker pool and returns the results in
// registry order regardless of completion order. workers <= 0 means
// GOMAXPROCS; workers == 1 reproduces RunAll's exact serial behavior
// (inline execution, stop at the first error).
//
// Parallel results are byte-identical to serial ones: every artifact
// an experiment consumes is either memoized once in the Context's
// lazy cells or derived from a splittable rng child stream keyed only
// by (seed, label), so no experiment can observe how many neighbours
// run beside it.
func RunAllParallel(ctx *Context, workers int) ([]*Result, error) {
	return RunExperimentsParallel(ctx, Experiments(), workers)
}

// parRecorder adapts par worker statistics into the context recorder:
// one Chrome-trace span per worker, the shard-size histogram, and
// per-worker busy-time/item counters (sharded by worker index, so the
// publish itself never contends).
type parRecorder struct{ rec *obs.Recorder }

func (p parRecorder) ObserveLoop(name string, n int, stats []par.WorkerStats) {
	reg := p.rec.Registry()
	shard := reg.Histogram("par.shard_items", []float64{0, 1, 2, 4, 8, 16, 32, 64, 128})
	busy := reg.Counter("par.worker_busy_us")
	items := reg.Counter("par.items")
	for _, st := range stats {
		if st.Items == 0 {
			continue
		}
		shard.Observe(float64(st.Items))
		busy.AddShard(st.Worker, st.Busy.Microseconds())
		items.AddShard(st.Worker, int64(st.Items))
		p.rec.AddSpan(fmt.Sprintf("%s worker-%d", name, st.Worker), obs.CatWorker,
			st.Worker, st.First, st.Last.Sub(st.First))
	}
}

// queueWaitUppers buckets how long an experiment sat enqueued before a
// worker claimed it (seconds).
var queueWaitUppers = []float64{0.001, 0.01, 0.1, 0.5, 1, 2, 5, 10, 30, 60}

// RunExperimentsParallel is RunAllParallel over an explicit experiment
// list (a -only selection, or the registry plus extensions).
//
// Error semantics mirror the serial runner's: the returned error is
// the first failure in list order, and the result slice holds every
// experiment before that failure. With more than one worker,
// experiments after the first failure may also have run; their
// results are discarded so callers see the same prefix either way.
//
// With a recorder attached to the context, both paths record one span
// per experiment (tid = the worker that ran it) and the parallel path
// additionally records per-worker spans, shard sizes and queue-wait
// samples. Instrumentation never changes scheduling or results.
func RunExperimentsParallel(ctx *Context, exps []Experiment, workers int) ([]*Result, error) {
	rec := ctx.Recorder()
	w := par.Workers(workers, len(exps))
	if w == 1 {
		out := make([]*Result, 0, len(exps))
		for _, e := range exps {
			sp := rec.Span("exp:"+e.ID, obs.CatExperiment, 0)
			r, err := e.Run(ctx)
			sp.End()
			if err != nil {
				return out, fmt.Errorf("core: %s: %w", e.ID, err)
			}
			out = append(out, r)
		}
		return out, nil
	}

	var (
		observer par.Observer
		start    time.Time
	)
	if rec != nil {
		observer = parRecorder{rec: rec}
		start = time.Now()
	}
	results := make([]*Result, len(exps))
	errs := make([]error, len(exps))
	par.ForEachObserved("experiments", len(exps), w, observer, func(i, worker int) {
		if rec != nil {
			rec.Registry().Histogram("par.queue_wait_seconds", queueWaitUppers).
				Observe(time.Since(start).Seconds())
		}
		sp := rec.Span("exp:"+exps[i].ID, obs.CatExperiment, worker)
		r, err := exps[i].Run(ctx)
		sp.End()
		if err != nil {
			errs[i] = fmt.Errorf("core: %s: %w", exps[i].ID, err)
			return
		}
		results[i] = r
	})
	for i, err := range errs {
		if err != nil {
			return results[:i], err
		}
	}
	return results, nil
}
