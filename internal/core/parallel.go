package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/par"
)

// RunAllParallel executes every paper experiment against one shared
// context over a bounded worker pool and returns the results in
// registry order regardless of completion order. workers <= 0 means
// GOMAXPROCS; workers == 1 reproduces RunAll's exact serial behavior
// (inline execution, stop at the first error).
//
// Parallel results are byte-identical to serial ones: every artifact
// an experiment consumes is either memoized once in the Context's
// lazy cells or derived from a splittable rng child stream keyed only
// by (seed, label), so no experiment can observe how many neighbours
// run beside it.
func RunAllParallel(ctx *Context, workers int) ([]*Result, error) {
	return RunExperiments(context.Background(), ctx, Experiments(), RunOptions{Workers: workers})
}

// RunExperimentsParallel is RunExperiments over an explicit experiment
// list with default fault-tolerance options (no deadline, no
// checkpointing, abort on first failure), kept for callers that
// predate RunOptions.
func RunExperimentsParallel(ctx *Context, exps []Experiment, workers int) ([]*Result, error) {
	return RunExperiments(context.Background(), ctx, exps, RunOptions{Workers: workers})
}

// RunOptions configures the fault-tolerant experiment runner.
type RunOptions struct {
	// Workers bounds the worker pool (<= 0 means GOMAXPROCS; 1 runs
	// inline on the calling goroutine).
	Workers int
	// ExpTimeout, when positive, is a per-experiment deadline: an
	// experiment that exceeds it fails with context.DeadlineExceeded
	// without affecting its neighbours' budgets.
	ExpTimeout time.Duration
	// KeepGoing turns experiment failures (errors, panics, timeouts)
	// into annotated placeholder Results instead of aborting the run.
	// Parent-context cancellation still stops the run.
	KeepGoing bool
	// Ckpt, when non-nil and enabled, is consulted before running each
	// experiment and written after each success, so an interrupted run
	// resumed with the same store rebuilds only the missing artifacts.
	Ckpt *ckpt.Store
}

// ckptSchema versions the checkpointed Result encoding. Bump it when
// Result's shape (or any experiment's semantics) changes so old
// checkpoint files miss instead of resurrecting stale artifacts.
const ckptSchema = "core.Result/v1"

// CheckpointKey is the content address of one experiment's artifact:
// schema version + experiment ID + the full canonical config.
func CheckpointKey(cfg Config, expID string) string {
	return ckpt.Key(ckptSchema, expID, cfg.Canonical())
}

// parRecorder adapts par worker statistics into the context recorder:
// one Chrome-trace span per worker, the shard-size histogram, and
// per-worker busy-time/item counters (sharded by worker index, so the
// publish itself never contends).
type parRecorder struct{ rec *obs.Recorder }

func (p parRecorder) ObserveLoop(name string, n int, stats []par.WorkerStats) {
	reg := p.rec.Registry()
	shard := reg.Histogram("par.shard_items", []float64{0, 1, 2, 4, 8, 16, 32, 64, 128})
	busy := reg.Counter("par.worker_busy_us")
	items := reg.Counter("par.items")
	for _, st := range stats {
		if st.Items == 0 {
			continue
		}
		shard.Observe(float64(st.Items))
		busy.AddShard(st.Worker, st.Busy.Microseconds())
		items.AddShard(st.Worker, int64(st.Items))
		p.rec.AddSpan(fmt.Sprintf("%s worker-%d", name, st.Worker), obs.CatWorker,
			st.Worker, st.First, st.Last.Sub(st.First))
	}
}

// queueWaitUppers buckets how long an experiment sat enqueued before a
// worker claimed it (seconds).
var queueWaitUppers = []float64{0.001, 0.01, 0.1, 0.5, 1, 2, 5, 10, 30, 60}

// runExperimentProtected executes one experiment with panic isolation,
// a named fault site and an optional per-experiment deadline. The
// returned error is never a panic in flight: a panicking experiment
// becomes an error the caller can annotate or abort on.
func runExperimentProtected(ctx context.Context, c *Context, e Experiment, timeout time.Duration) (r *Result, err error) {
	// The recovery is installed first so even a panicking fault site
	// (chaos Kind: Panic) degrades to an error, never a process crash.
	defer func() {
		if rec := recover(); rec != nil {
			r, err = nil, fmt.Errorf("panic: %v", rec)
		}
	}()
	if ctxErr := ctx.Err(); ctxErr != nil {
		return nil, context.Cause(ctx)
	}
	if err := fault.Hit("core.exp." + e.ID); err != nil {
		return nil, err
	}
	expCtx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		expCtx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return e.Run(c.WithContext(expCtx))
}

// RunExperiments is the fault-tolerant runner both the CLI paths use:
// checkpoint lookup, panic isolation, per-experiment deadlines,
// keep-going degradation and early cancellation, over 1..N workers.
// Results come back in list order regardless of completion order.
//
// Error semantics without KeepGoing mirror the original serial
// runner's: the returned error is the first failure in list order
// (preferring a real failure over a secondary cancellation), and the
// result slice holds the contiguous prefix of completed experiments
// before the first gap. With KeepGoing, failed experiments yield
// placeholder Results (Failed() == true) and the error is non-nil only
// when the parent ctx was cancelled.
func RunExperiments(ctx context.Context, c *Context, exps []Experiment, opt RunOptions) ([]*Result, error) {
	rec := c.Recorder()
	w := par.Workers(opt.Workers, len(exps))
	results := make([]*Result, len(exps))
	errs := make([]error, len(exps))

	var (
		observer par.Observer
		start    time.Time
	)
	if rec != nil && w > 1 {
		observer = parRecorder{rec: rec}
		start = time.Now()
	}

	loopErr := par.ForEachCtx(ctx, "experiments", len(exps), w, observer, func(runCtx context.Context, i, worker int) error {
		e := exps[i]
		if opt.Ckpt.Enabled() {
			var cached Result
			if ok, _ := opt.Ckpt.Load(CheckpointKey(c.Cfg, e.ID), &cached); ok && cached.ID == e.ID {
				results[i] = &cached
				return nil
			}
		}
		if rec != nil && w > 1 {
			rec.Registry().Histogram("par.queue_wait_seconds", queueWaitUppers).
				Observe(time.Since(start).Seconds())
		}
		sp := rec.Span("exp:"+e.ID, obs.CatExperiment, worker)
		r, err := runExperimentProtected(runCtx, c, e, opt.ExpTimeout)
		sp.End()
		if err == nil {
			results[i] = r
			if opt.Ckpt.Enabled() && !r.Failed() {
				// Best-effort: an unwritable or unmarshalable artifact
				// (NaN metrics, full disk) is simply not checkpointed;
				// the store's ckpt.skip counter records it.
				_ = opt.Ckpt.Save(CheckpointKey(c.Cfg, e.ID), r)
			}
			return nil
		}
		err = fmt.Errorf("core: %s: %w", e.ID, err)
		errs[i] = err
		if opt.KeepGoing {
			// The parent being cancelled means the operator wants out;
			// only per-experiment failures degrade gracefully.
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			rec.Registry().Counter("core.exp.failed").Add(1)
			results[i] = failedResult(e, err)
			return nil
		}
		return err
	})

	// Return the first real failure in list order; a secondary
	// cancellation error (an experiment that observed the loop ctx
	// dying) must not mask the root cause.
	var firstErr error
	for _, err := range errs {
		if err != nil && !isCtxErr(err) {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr == nil {
		firstErr = loopErr
	}
	if firstErr != nil && !opt.KeepGoing || loopErr != nil && opt.KeepGoing {
		if opt.KeepGoing {
			firstErr = loopErr
		}
		prefix := len(results)
		for i, r := range results {
			if r == nil {
				prefix = i
				break
			}
		}
		return results[:prefix], firstErr
	}
	return results, nil
}
