package core

import (
	"fmt"

	"repro/internal/par"
)

// RunAllParallel executes every paper experiment against one shared
// context over a bounded worker pool and returns the results in
// registry order regardless of completion order. workers <= 0 means
// GOMAXPROCS; workers == 1 reproduces RunAll's exact serial behavior
// (inline execution, stop at the first error).
//
// Parallel results are byte-identical to serial ones: every artifact
// an experiment consumes is either memoized once in the Context's
// lazy cells or derived from a splittable rng child stream keyed only
// by (seed, label), so no experiment can observe how many neighbours
// run beside it.
func RunAllParallel(ctx *Context, workers int) ([]*Result, error) {
	return RunExperimentsParallel(ctx, Experiments(), workers)
}

// RunExperimentsParallel is RunAllParallel over an explicit experiment
// list (a -only selection, or the registry plus extensions).
//
// Error semantics mirror the serial runner's: the returned error is
// the first failure in list order, and the result slice holds every
// experiment before that failure. With more than one worker,
// experiments after the first failure may also have run; their
// results are discarded so callers see the same prefix either way.
func RunExperimentsParallel(ctx *Context, exps []Experiment, workers int) ([]*Result, error) {
	w := par.Workers(workers, len(exps))
	if w == 1 {
		out := make([]*Result, 0, len(exps))
		for _, e := range exps {
			r, err := e.Run(ctx)
			if err != nil {
				return out, fmt.Errorf("core: %s: %w", e.ID, err)
			}
			out = append(out, r)
		}
		return out, nil
	}

	results := make([]*Result, len(exps))
	errs := make([]error, len(exps))
	par.ForEach(len(exps), w, func(i int) {
		r, err := exps[i].Run(ctx)
		if err != nil {
			errs[i] = fmt.Errorf("core: %s: %w", exps[i].ID, err)
			return
		}
		results[i] = r
	})
	for i, err := range errs {
		if err != nil {
			return results[:i], err
		}
	}
	return results, nil
}
