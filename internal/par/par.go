// Package par provides the small deterministic-parallelism helper the
// analyses are built on: a bounded, index-sharded parallel for-loop.
//
// Determinism is the caller's contract, not the scheduler's: every
// worker receives disjoint indices and must write only to the i-th
// slot of a pre-sized output, so the merged result is independent of
// goroutine interleaving. Combined with the splittable rng.Stream
// (each unit of work derives its own child stream from a label), a
// parallel run is byte-identical to a serial one.
//
// Failure semantics: the first panic or error at any index stops the
// loop early — no worker claims another index once a failure is
// recorded, and in-flight cancellation-aware fns observe a cancelled
// context — instead of letting every shard run to completion before
// re-raising.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// Workers normalises a requested worker count: values <= 0 mean
// GOMAXPROCS, and the count is capped at n since extra workers would
// only idle.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// WorkerStats summarises one worker's share of an observed loop:
// how many indices it claimed (its shard size), how long it spent
// inside fn (busy time), and the absolute interval it was active over
// (First..Last), from which queue wait and imbalance fall out.
type WorkerStats struct {
	Worker int
	Items  int
	Busy   time.Duration
	First  time.Time // when the worker started its first item
	Last   time.Time // when the worker finished its last item
}

// Observer receives one callback per observed loop after every worker
// drains. Implementations must not retain the stats slice. Observing
// is strictly additive: it never changes which worker runs which index.
type Observer interface {
	ObserveLoop(name string, n int, stats []WorkerStats)
}

// panicValue wraps a recovered panic so the engine can tell "fn
// panicked" apart from "fn returned an error" when re-raising.
type panicValue struct{ v any }

// ForEach runs fn(i) for every i in [0, n) using up to workers
// goroutines (workers <= 0 means GOMAXPROCS). Each index is executed
// exactly once unless a panic occurs: the first panic stops all
// workers from claiming further indices and is re-raised on the
// calling goroutine as soon as in-flight work drains.
func ForEach(n, workers int, fn func(i int)) {
	ForEachObserved("", n, workers, nil, func(i, _ int) { fn(i) })
}

// ForEachObserved is ForEach with two observability extras: fn also
// receives the claiming worker's index in [0, Workers(workers, n)),
// and a non-nil Observer is handed per-worker busy/shard statistics
// when the loop completes. With a nil Observer no clocks are read, so
// ForEach pays nothing for the seam.
func ForEachObserved(name string, n, workers int, obs Observer, fn func(i, worker int)) {
	err := ForEachCtx(context.Background(), name, n, workers, obs, func(_ context.Context, i, worker int) error {
		fn(i, worker)
		return nil
	})
	if err != nil {
		// fn never returns an error here, so any failure is a wrapped
		// panic (or an injected fault, which we surface the same way).
		if pv, ok := err.(*panicError); ok {
			panic(pv.value)
		}
		panic(err)
	}
}

// panicError carries a recovered panic value through the error return
// of ForEachCtx so non-ctx callers (ForEach) can re-raise it verbatim.
type panicError struct{ value any }

func (p *panicError) Error() string { return "par: worker panicked" }

// PanicValue returns the recovered value carried by an error produced
// when a worker panicked, and whether err is such an error.
func PanicValue(err error) (any, bool) {
	if pv, ok := err.(*panicError); ok {
		return pv.value, true
	}
	return nil, false
}

// ForEachCtx is the cancellation-aware engine underneath ForEach: it
// runs fn(ctx, i, worker) for i in [0, n) and stops early on the first
// failure. A failure is: fn returns a non-nil error, fn panics
// (recovered, wrapped, re-raisable via PanicValue), or ctx is
// cancelled. After a failure no new index is claimed; the ctx passed
// to in-flight fns is cancelled so long-running work can bail out.
// The returned error is the first failure in claim order, or
// ctx's cause when the parent context was cancelled.
func ForEachCtx(ctx context.Context, name string, n, workers int, obs Observer, fn func(ctx context.Context, i, worker int) error) error {
	if err := ctx.Err(); err != nil {
		return context.Cause(ctx)
	}
	if n <= 0 {
		return nil
	}
	w := Workers(workers, n)
	if w == 1 {
		return forEachSerial(ctx, name, n, obs, fn)
	}

	loopCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	var (
		next    atomic.Int64
		failed  atomic.Bool
		wg      sync.WaitGroup
		errMu   sync.Mutex
		firstAt = int64(n) // claim index of the earliest failure
		first   error
		stats   []WorkerStats
	)
	record := func(at int64, err error) {
		errMu.Lock()
		if first == nil || at < firstAt {
			first, firstAt = err, at
		}
		errMu.Unlock()
		failed.Store(true)
		cancel(err)
	}
	if obs != nil {
		stats = make([]WorkerStats, w)
	}
	for k := range w {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || loopCtx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fault.Hit("par.claim"); err != nil {
					record(int64(i), err)
					return
				}
				var (
					itemErr error
					start   time.Time
					st      *WorkerStats
				)
				if obs != nil {
					st = &stats[k]
					start = time.Now()
					if st.Items == 0 {
						st.Worker = k
						st.First = start
					}
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							itemErr = &panicError{value: r}
						}
					}()
					itemErr = fn(loopCtx, i, k)
				}()
				if st != nil {
					st.Last = time.Now()
					st.Busy += st.Last.Sub(start)
					st.Items++
				}
				if itemErr != nil {
					record(int64(i), itemErr)
					return
				}
			}
		}()
	}
	wg.Wait()
	errMu.Lock()
	err := first
	errMu.Unlock()
	if err == nil {
		// The parent may have been cancelled without any fn failing.
		if ctxErr := context.Cause(ctx); ctxErr != nil && ctx.Err() != nil {
			return ctxErr
		}
		if obs != nil {
			obs.ObserveLoop(name, n, stats)
		}
		return nil
	}
	return err
}

// forEachSerial is the inline single-worker path: no goroutines, so
// serial callers keep exact serial panic semantics and pay no
// scheduling cost. Cancellation is still honoured between indices.
func forEachSerial(ctx context.Context, name string, n int, obs Observer, fn func(ctx context.Context, i, worker int) error) error {
	var st WorkerStats
	if obs != nil {
		st = WorkerStats{Worker: 0, Items: n, First: time.Now()}
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return context.Cause(ctx)
		}
		if err := fault.Hit("par.claim"); err != nil {
			return err
		}
		if err := fn(ctx, i, 0); err != nil {
			return err
		}
	}
	if obs != nil {
		st.Last = time.Now()
		st.Busy = st.Last.Sub(st.First)
		obs.ObserveLoop(name, n, []WorkerStats{st})
	}
	return nil
}

// Map runs fn over [0, n) with the given worker bound and collects the
// results in index order. It is the pre-sized-slice idiom of ForEach
// packaged for the common "one output per input" case.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}
