// Package par provides the small deterministic-parallelism helper the
// analyses are built on: a bounded, index-sharded parallel for-loop.
//
// Determinism is the caller's contract, not the scheduler's: every
// worker receives disjoint indices and must write only to the i-th
// slot of a pre-sized output, so the merged result is independent of
// goroutine interleaving. Combined with the splittable rng.Stream
// (each unit of work derives its own child stream from a label), a
// parallel run is byte-identical to a serial one.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Workers normalises a requested worker count: values <= 0 mean
// GOMAXPROCS, and the count is capped at n since extra workers would
// only idle.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// WorkerStats summarises one worker's share of an observed loop:
// how many indices it claimed (its shard size), how long it spent
// inside fn (busy time), and the absolute interval it was active over
// (First..Last), from which queue wait and imbalance fall out.
type WorkerStats struct {
	Worker int
	Items  int
	Busy   time.Duration
	First  time.Time // when the worker started its first item
	Last   time.Time // when the worker finished its last item
}

// Observer receives one callback per observed loop after every worker
// drains. Implementations must not retain the stats slice. Observing
// is strictly additive: it never changes which worker runs which index.
type Observer interface {
	ObserveLoop(name string, n int, stats []WorkerStats)
}

// ForEach runs fn(i) for every i in [0, n) using up to workers
// goroutines (workers <= 0 means GOMAXPROCS). Each index is executed
// exactly once. With one worker (or n <= 1) the loop runs inline on
// the calling goroutine, so serial callers pay no scheduling cost.
// A panic in any fn is re-raised on the calling goroutine after the
// remaining workers drain, matching serial panic semantics.
func ForEach(n, workers int, fn func(i int)) {
	ForEachObserved("", n, workers, nil, func(i, _ int) { fn(i) })
}

// ForEachObserved is ForEach with two observability extras: fn also
// receives the claiming worker's index in [0, Workers(workers, n)),
// and a non-nil Observer is handed per-worker busy/shard statistics
// when the loop completes. With a nil Observer no clocks are read, so
// ForEach pays nothing for the seam.
func ForEachObserved(name string, n, workers int, obs Observer, fn func(i, worker int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 {
		if obs == nil {
			for i := 0; i < n; i++ {
				fn(i, 0)
			}
			return
		}
		st := WorkerStats{Worker: 0, Items: n, First: time.Now()}
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		st.Last = time.Now()
		st.Busy = st.Last.Sub(st.First)
		obs.ObserveLoop(name, n, []WorkerStats{st})
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
		stats    []WorkerStats
	)
	if obs != nil {
		stats = make([]WorkerStats, w)
	}
	for k := range w {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if obs == nil {
					fn(i, k)
					continue
				}
				st := &stats[k]
				start := time.Now()
				if st.Items == 0 {
					st.Worker = k
					st.First = start
				}
				fn(i, k)
				st.Last = time.Now()
				st.Busy += st.Last.Sub(start)
				st.Items++
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	if obs != nil {
		obs.ObserveLoop(name, n, stats)
	}
}

// Map runs fn over [0, n) with the given worker bound and collects the
// results in index order. It is the pre-sized-slice idiom of ForEach
// packaged for the common "one output per input" case.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}
