package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		const n = 257
		counts := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	ForEach(0, 4, func(int) { t.Fatal("fn called for n=0") })
	ForEach(-3, 4, func(int) { t.Fatal("fn called for n<0") })
	ran := false
	ForEach(1, 8, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("single index not run")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEach(64, 4, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
}

func TestMapOrdersResults(t *testing.T) {
	out := Map(100, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestWorkersBounds(t *testing.T) {
	if got := Workers(0, 1000); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8, 3) = %d, want capped at 3", got)
	}
	if got := Workers(-1, 0); got != 1 {
		t.Errorf("Workers(-1, 0) = %d, want at least 1", got)
	}
}
