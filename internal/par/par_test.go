package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		const n = 257
		counts := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	ForEach(0, 4, func(int) { t.Fatal("fn called for n=0") })
	ForEach(-3, 4, func(int) { t.Fatal("fn called for n<0") })
	ran := false
	ForEach(1, 8, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("single index not run")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEach(64, 4, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
}

func TestMapOrdersResults(t *testing.T) {
	out := Map(100, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// loopObserver captures the single ObserveLoop callback of one loop.
type loopObserver struct {
	name  string
	n     int
	stats []WorkerStats
	calls int
}

func (o *loopObserver) ObserveLoop(name string, n int, stats []WorkerStats) {
	o.name, o.n, o.calls = name, n, o.calls+1
	o.stats = append([]WorkerStats(nil), stats...)
}

func TestForEachObservedStats(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 64
		obs := &loopObserver{}
		var seen [n]atomic.Int32
		maxWorker := Workers(workers, n)
		ForEachObserved("scan", n, workers, obs, func(i, worker int) {
			if worker < 0 || worker >= maxWorker {
				t.Errorf("worker index %d outside [0, %d)", worker, maxWorker)
			}
			seen[i].Add(1)
		})
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
		if obs.calls != 1 {
			t.Fatalf("workers=%d: ObserveLoop called %d times, want 1", workers, obs.calls)
		}
		if obs.name != "scan" || obs.n != n {
			t.Fatalf("workers=%d: observed (%q, %d), want (scan, %d)", workers, obs.name, obs.n, n)
		}
		var items int
		for _, st := range obs.stats {
			items += st.Items
			if st.Items > 0 && (st.Busy < 0 || st.Last.Before(st.First)) {
				t.Fatalf("workers=%d: implausible stats %+v", workers, st)
			}
		}
		if items != n {
			t.Fatalf("workers=%d: shard sizes sum to %d, want %d", workers, items, n)
		}
	}
}

// TestForEachObservedNilObserver: the nil-observer path must behave
// exactly like ForEach (it IS ForEach).
func TestForEachObservedNilObserver(t *testing.T) {
	var count atomic.Int32
	ForEachObserved("", 50, 4, nil, func(i, worker int) { count.Add(1) })
	if got := count.Load(); got != 50 {
		t.Fatalf("ran %d times, want 50", got)
	}
}

func TestWorkersBounds(t *testing.T) {
	if got := Workers(0, 1000); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8, 3) = %d, want capped at 3", got)
	}
	if got := Workers(-1, 0); got != 1 {
		t.Errorf("Workers(-1, 0) = %d, want at least 1", got)
	}
}
