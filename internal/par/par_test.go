package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		const n = 257
		counts := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	ForEach(0, 4, func(int) { t.Fatal("fn called for n=0") })
	ForEach(-3, 4, func(int) { t.Fatal("fn called for n<0") })
	ran := false
	ForEach(1, 8, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("single index not run")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEach(64, 4, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
}

func TestMapOrdersResults(t *testing.T) {
	out := Map(100, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// loopObserver captures the single ObserveLoop callback of one loop.
type loopObserver struct {
	name  string
	n     int
	stats []WorkerStats
	calls int
}

func (o *loopObserver) ObserveLoop(name string, n int, stats []WorkerStats) {
	o.name, o.n, o.calls = name, n, o.calls+1
	o.stats = append([]WorkerStats(nil), stats...)
}

func TestForEachObservedStats(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 64
		obs := &loopObserver{}
		var seen [n]atomic.Int32
		maxWorker := Workers(workers, n)
		ForEachObserved("scan", n, workers, obs, func(i, worker int) {
			if worker < 0 || worker >= maxWorker {
				t.Errorf("worker index %d outside [0, %d)", worker, maxWorker)
			}
			seen[i].Add(1)
		})
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
		if obs.calls != 1 {
			t.Fatalf("workers=%d: ObserveLoop called %d times, want 1", workers, obs.calls)
		}
		if obs.name != "scan" || obs.n != n {
			t.Fatalf("workers=%d: observed (%q, %d), want (scan, %d)", workers, obs.name, obs.n, n)
		}
		var items int
		for _, st := range obs.stats {
			items += st.Items
			if st.Items > 0 && (st.Busy < 0 || st.Last.Before(st.First)) {
				t.Fatalf("workers=%d: implausible stats %+v", workers, st)
			}
		}
		if items != n {
			t.Fatalf("workers=%d: shard sizes sum to %d, want %d", workers, items, n)
		}
	}
}

// TestForEachObservedNilObserver: the nil-observer path must behave
// exactly like ForEach (it IS ForEach).
func TestForEachObservedNilObserver(t *testing.T) {
	var count atomic.Int32
	ForEachObserved("", 50, 4, nil, func(i, worker int) { count.Add(1) })
	if got := count.Load(); got != 50 {
		t.Fatalf("ran %d times, want 50", got)
	}
}

// TestPanicStopsOtherWorkersPromptly is the regression test for the
// old drain-then-re-panic behaviour: a panic on the worker that claims
// index 0 must stop the other workers from marching through the whole
// index space.
func TestPanicStopsOtherWorkersPromptly(t *testing.T) {
	const n = 100000
	var executed atomic.Int64
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want boom", r)
			}
		}()
		ForEach(n, 8, func(i int) {
			if i == 0 {
				panic("boom")
			}
			executed.Add(1)
			time.Sleep(100 * time.Microsecond)
		})
	}()
	if got := executed.Load(); got > n/10 {
		t.Fatalf("executed %d of %d indices after early panic, want prompt stop", got, n)
	}
}

// TestForEachCtxPanicCancelsInFlight: worker 0 panics while workers
// 1..7 are blocked mid-item; the loop ctx must wake them, and the
// panic must surface via PanicValue.
func TestForEachCtxPanicCancelsInFlight(t *testing.T) {
	const n = 10000
	var executed atomic.Int64
	err := ForEachCtx(context.Background(), "chaos", n, 8, nil, func(ctx context.Context, i, worker int) error {
		executed.Add(1)
		if i == 0 {
			time.Sleep(10 * time.Millisecond) // let the others get in flight
			panic("boom")
		}
		select {
		case <-ctx.Done():
			return context.Cause(ctx)
		case <-time.After(10 * time.Second):
			return nil
		}
	})
	if v, ok := PanicValue(err); !ok || v != "boom" {
		t.Fatalf("err = %v (PanicValue ok=%v), want wrapped boom panic", err, ok)
	}
	if got := executed.Load(); got > 64 {
		t.Fatalf("executed %d items, want only the in-flight handful", got)
	}
}

func TestForEachCtxFirstErrorInClaimOrder(t *testing.T) {
	errA := errors.New("err at 5")
	errB := errors.New("err at 20")
	for _, workers := range []int{1, 4} {
		err := ForEachCtx(context.Background(), "", 64, workers, nil, func(_ context.Context, i, _ int) error {
			switch i {
			case 5:
				return errA
			case 20:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, errA)
		}
	}
}

func TestForEachCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := ForEachCtx(ctx, "", 10, 4, nil, func(context.Context, int, int) error {
		called = true
		return nil
	})
	if err == nil {
		t.Fatal("want error from pre-cancelled ctx")
	}
	if called {
		t.Fatal("fn ran despite pre-cancelled ctx")
	}
}

func TestForEachCtxSerialStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	err := ForEachCtx(ctx, "", 100, 1, nil, func(_ context.Context, i, _ int) error {
		ran++
		if i == 3 {
			cancel()
		}
		return nil
	})
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if ran != 4 {
		t.Fatalf("ran %d indices, want 4 (stop right after cancel)", ran)
	}
}

func TestForEachCtxSuccess(t *testing.T) {
	var count atomic.Int32
	obs := &loopObserver{}
	err := ForEachCtx(context.Background(), "ok", 64, 4, obs, func(context.Context, int, int) error {
		count.Add(1)
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if count.Load() != 64 {
		t.Fatalf("ran %d, want 64", count.Load())
	}
	if obs.calls != 1 {
		t.Fatalf("ObserveLoop called %d times, want 1", obs.calls)
	}
}

func TestWorkersBounds(t *testing.T) {
	if got := Workers(0, 1000); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8, 3) = %d, want capped at 3", got)
	}
	if got := Workers(-1, 0); got != 1 {
		t.Errorf("Workers(-1, 0) = %d, want at least 1", got)
	}
}
