package synth

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestGenerateQueuedProducesScheduledJobs(t *testing.T) {
	horizon := int64(2 * 86400)
	jobs, util, err := AuverGrid.GenerateQueued(horizon, 256, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("no jobs")
	}
	for i, j := range jobs {
		if j.End <= j.Submit {
			t.Fatalf("job %d not scheduled: %+v", j.ID, j)
		}
		if j.NumCPUs < 1 || j.NumCPUs > 256 {
			t.Fatalf("job %d width %v", j.ID, j.NumCPUs)
		}
		if i > 0 && j.Submit < jobs[i-1].Submit {
			t.Fatal("jobs not sorted")
		}
	}
	if util == nil || util.Len() == 0 {
		t.Fatal("no utilisation series")
	}
	for _, v := range util.Values {
		if v < -1e-9 || v > 1+1e-9 {
			t.Fatalf("utilisation %v out of range", v)
		}
	}
}

func TestGenerateQueuedWaitsUnderContention(t *testing.T) {
	horizon := int64(2 * 86400)
	// A tiny cluster forces queueing: job length (End-Submit) must
	// exceed the pure runtime for a nontrivial share of jobs, and the
	// smaller cluster must produce longer waits than a big one.
	small, _, err := AuverGrid.GenerateQueued(horizon, 32, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := AuverGrid.GenerateQueued(horizon, 4096, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	meanLen := func(jobsLens []float64) float64 { return stats.Mean(jobsLens) }
	var smallLens, bigLens []float64
	for _, j := range small {
		smallLens = append(smallLens, float64(j.Length()))
	}
	for _, j := range big {
		bigLens = append(bigLens, float64(j.Length()))
	}
	if meanLen(smallLens) <= meanLen(bigLens) {
		t.Fatalf("contended cluster mean length %v should exceed uncontended %v",
			meanLen(smallLens), meanLen(bigLens))
	}
}

func TestGenerateQueuedClipsWideJobs(t *testing.T) {
	// ANL jobs request up to 2048 processors; a 128-node cluster must
	// clip them rather than fail.
	jobs, _, err := ANL.GenerateQueued(86400, 128, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.NumCPUs > 128 {
			t.Fatalf("job width %v exceeds cluster", j.NumCPUs)
		}
	}
}

func TestGenerateQueuedDeterministic(t *testing.T) {
	a, _, err := SHARCNET.GenerateQueued(86400, 128, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SHARCNET.GenerateQueued(86400, 128, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}
