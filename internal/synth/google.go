package synth

import (
	"cmp"
	"slices"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/trace"
)

// GoogleConfig parameterises the Google data-center workload model.
// The defaults are calibrated to the numbers the paper reports:
//
//   - ~552 jobs/hour with fairness 0.94 (Table I), min 36 / max 1421,
//   - the Fig 2 priority histogram over 12 levels,
//   - ~80 % of jobs shorter than 1000 s (Fig 3),
//   - ~55 % of tasks under 10 min, ~90 % under 1 h, ~94 % under 3 h,
//     a mean task length of several hours and a maximum of 29 days
//     (Fig 4: joint ratio ≈ 6/94),
//   - jobs that mostly hold one processor with small CPU/memory
//     footprints (Fig 6).
type GoogleConfig struct {
	Horizon     int64   // trace length in seconds
	JobsPerHour float64 // mean submission rate
	// MaxTasksPerJob caps map-reduce style jobs so scaled-down runs
	// stay tractable. 0 means the calibrated default (2000).
	MaxTasksPerJob int
	Arrival        ArrivalConfig

	// Busy window: the paper observes an organically busier period
	// (days 21-25 of the month, Fig 10) where demand rises without the
	// submission rate changing. Tasks submitted inside the window
	// [BusyFracStart, BusyFracEnd) of the horizon run hotter and batch
	// jobs fan out wider by BusyDemandFactor.
	BusyFracStart, BusyFracEnd float64
	BusyDemandFactor           float64

	// WarmStart seeds the trace with the long-running service tasks
	// that would already be resident at time 0 (M/G/infinity warm
	// start): service arrivals are drawn over the 29 days before the
	// trace and survivors enter at t=0 with their residual duration.
	// Without it a short simulation under-reports memory usage, because
	// the resident service population ramps for days.
	WarmStart bool
}

// DefaultGoogleConfig returns the calibration used for the paper
// reproduction at the given horizon (seconds).
func DefaultGoogleConfig(horizon int64) GoogleConfig {
	return GoogleConfig{
		Horizon:        horizon,
		JobsPerHour:    552,
		MaxTasksPerJob: 2000,
		// Days 21-25 of a 30-day trace.
		BusyFracStart:    0.70,
		BusyFracEnd:      0.83,
		BusyDemandFactor: 1.9,
		Arrival: ArrivalConfig{
			PerHour:     552,
			DiurnalAmp:  0.18,
			LogSigma:    0.17,
			SpikeProb:   0.01,
			SpikeFactor: 2.3,
			RampHours:   3,
		},
	}
}

// Job type mixture. Interactive jobs are the web-service requests the
// paper's introduction motivates; batch jobs are map-reduce style with
// many short tasks; service jobs are the long-running tail that gives
// the task-length distribution its 6/94 mass-count disparity.
const (
	pInteractive = 0.71
	pBatch       = 0.25
	pService     = 0.04
)

// Priority weights for jobs, from the Fig 2(a) histogram (units of
// 10^4 jobs; levels 8-12 are below the labelled resolution).
var googleJobPriorityWeights = []float64{
	16.0, 11.3, 17.0, 13.0, // low (1-4)
	0.9, 4.0, 4.7, 0.5, // middle (5-8)
	0.35, 0.25, 0.15, 0.1, // high (9-12)
}

// servicePriorityWeights skews long-running service jobs toward the
// middle/high levels ("production" priorities in the real trace).
var servicePriorityWeights = []float64{
	0.3, 0.3, 0.3, 0.3,
	0.8, 1, 1, 0.8,
	6, 5, 4, 3,
}

// Task-length distributions per job type (seconds).
var (
	interactiveLen = dist.Clamped{
		Dist: dist.Exponential{Rate: 1.0 / 280}, Lo: 5, Hi: 3600,
	}
	batchLen = dist.Clamped{
		Dist: dist.LogNormal{Mu: 6.2, Sigma: 1.0}, // median ~490 s
		Lo:   20, Hi: 6 * 3600,
	}
	// Long-running services: three bands spanning 3 h .. 29 d.
	serviceLen = dist.Mixture{Components: []dist.Component{
		{Weight: 0.45, Dist: dist.BoundedPareto{L: 3 * 3600, H: 86400, Alpha: 1.1}},
		{Weight: 0.33, Dist: dist.BoundedPareto{L: 86400, H: 7 * 86400, Alpha: 1.0}},
		{Weight: 0.22, Dist: dist.BoundedPareto{L: 7 * 86400, H: 29 * 86400, Alpha: 1.2}},
	}}
)

// Resource requests (normalised to the largest machine, as in the
// released trace).
var (
	googleCPUReq = dist.Clamped{
		Dist: dist.LogNormal{Mu: -4.4, Sigma: 0.6}, Lo: 0.002, Hi: 0.1,
	}
	googleMemReq = dist.Clamped{
		Dist: dist.LogNormal{Mu: -6.5, Sigma: 0.7}, Lo: 0.0005, Hi: 0.1,
	}
	// Services hold noticeably more memory.
	serviceMemReq = dist.Clamped{
		Dist: dist.LogNormal{Mu: -4.25, Sigma: 0.6}, Lo: 0.002, Hi: 0.15,
	}
)

// userPopulation is the Zipf user model: "each job corresponds to one
// user", with a few heavy users dominating submissions.
var userPopulation = dist.NewZipf(400, 1.3)

// Placement-constraint probabilities per job type (Section II: tasks
// carry customised constraints; Sharma et al. study their impact).
// Constrained tasks demand at least a mid-class (0.5) or top-class
// (1.0) CPU machine.
func sampleConstraint(s *rng.Stream, service bool) float64 {
	if service {
		switch {
		case s.Bool(0.10):
			return 1.0
		case s.Bool(0.30):
			return 0.5
		}
		return 0
	}
	if s.Bool(0.10) {
		return 0.5
	}
	return 0
}

// serviceTaskCount draws the replica count of a service job.
func serviceTaskCount(s *rng.Stream, cap int) int {
	n := 1 + s.IntN(12)
	if cap > 0 && n > cap {
		n = cap
	}
	return n
}

// CPU-busy fractions per job type: batch tasks run hot, interactive
// requests are moderate, long-running services idle on their CPU
// reservation while pinning memory — this asymmetry is what makes the
// simulated cluster's memory usage exceed its CPU usage (Fig 11 vs 12).
var (
	interactiveBusy = dist.Uniform{Lo: 0.40, Hi: 0.90}
	batchBusy       = dist.Uniform{Lo: 0.55, Hi: 1.00}
	serviceBusy     = dist.Uniform{Lo: 0.15, Hi: 0.50}
)

// batchTaskCount draws the number of tasks in a batch job: median
// around 8, heavy tail into the thousands so the task/job ratio
// reaches the trace's ~38.
func batchTaskCount(s *rng.Stream, cap int) int {
	var n int
	switch {
	case s.Bool(0.55):
		n = 2 + s.IntN(14) // small fan-out
	case s.Bool(0.75):
		n = 16 + s.IntN(112) // medium map-reduce
	default:
		// Heavy tail: hundreds to thousands of mappers.
		n = int(dist.BoundedPareto{L: 128, H: 8000, Alpha: 0.9}.Sample(s))
	}
	if cap > 0 && n > cap {
		n = cap
	}
	if n < 2 {
		n = 2
	}
	return n
}

// GenerateGoogleTasks generates the full task workload: every task
// carries its job, submission time, priority, resource request and
// intrinsic duration. Tasks are sorted by submission time.
func GenerateGoogleTasks(cfg GoogleConfig, s *rng.Stream) []trace.Task {
	if cfg.Arrival.PerHour == 0 {
		cfg.Arrival = DefaultGoogleConfig(cfg.Horizon).Arrival
		cfg.Arrival.PerHour = cfg.JobsPerHour
	}
	arrivals := Arrivals(cfg.Arrival, cfg.Horizon, s.Child("arrivals"))
	body := s.Child("tasks")
	busyStart := int64(cfg.BusyFracStart * float64(cfg.Horizon))
	busyEnd := int64(cfg.BusyFracEnd * float64(cfg.Horizon))
	var tasks []trace.Task
	for jobIdx, submit := range arrivals {
		jobID := int64(jobIdx + 1)
		demand := 1.0
		if cfg.BusyDemandFactor > 1 && submit >= busyStart && submit < busyEnd {
			demand = cfg.BusyDemandFactor
		}
		u := body.Float64()
		switch {
		case u < pInteractive:
			tasks = append(tasks, makeGoogleTasks(body, jobID, submit, 1,
				googleJobPriorityWeights, interactiveLen, googleMemReq, interactiveBusy, demand, false)...)
		case u < pInteractive+pBatch:
			n := batchTaskCount(body, cfg.MaxTasksPerJob)
			if demand > 1 {
				n = int(float64(n) * demand)
				if cfg.MaxTasksPerJob > 0 && n > cfg.MaxTasksPerJob {
					n = cfg.MaxTasksPerJob
				}
			}
			tasks = append(tasks, makeGoogleTasks(body, jobID, submit, n,
				googleJobPriorityWeights, batchLen, googleMemReq, batchBusy, demand, false)...)
		default:
			n := serviceTaskCount(body, cfg.MaxTasksPerJob)
			tasks = append(tasks, makeGoogleTasks(body, jobID, submit, n,
				servicePriorityWeights, serviceLen, serviceMemReq, serviceBusy, demand, true)...)
		}
	}
	if cfg.WarmStart {
		tasks = append(tasks, warmServiceTasks(cfg, s.Child("warm"))...)
	}
	slices.SortFunc(tasks, func(a, b trace.Task) int {
		if a.Submit != b.Submit {
			return cmp.Compare(a.Submit, b.Submit)
		}
		if a.JobID != b.JobID {
			return cmp.Compare(a.JobID, b.JobID)
		}
		return cmp.Compare(a.Index, b.Index)
	})
	return tasks
}

// warmJobBase offsets the synthetic job IDs of warm-start service jobs
// so they never collide with regular arrivals.
const warmJobBase = int64(1) << 40

// warmServiceTasks draws the service jobs that arrived during the 29
// days before the trace and are still running at t=0, entering with
// their residual durations.
func warmServiceTasks(cfg GoogleConfig, s *rng.Stream) []trace.Task {
	const lookback = 29 * 86400
	serviceRate := cfg.Arrival.PerHour * pService // service jobs per hour
	arrivals := Arrivals(ArrivalConfig{PerHour: serviceRate}, lookback, s.Child("arrivals"))
	body := s.Child("tasks")
	var out []trace.Task
	for k, a := range arrivals {
		submit := a - lookback // negative: before the trace epoch
		n := serviceTaskCount(body, cfg.MaxTasksPerJob)
		ts := makeGoogleTasks(body, warmJobBase+int64(k), submit, n,
			servicePriorityWeights, serviceLen, serviceMemReq, serviceBusy, 1, true)
		for _, t := range ts {
			residual := t.Submit + t.Duration // time remaining past t=0
			if residual <= 0 {
				continue // finished before the trace began
			}
			t.Submit = 0
			t.Duration = residual
			out = append(out, t)
		}
	}
	return out
}

func makeGoogleTasks(s *rng.Stream, jobID int64, submit int64, n int,
	prioWeights []float64, length dist.Dist, memReq dist.Dist,
	busy dist.Dist, demand float64, service bool) []trace.Task {
	priority := s.Pick(prioWeights) + 1
	user := int(userPopulation.Sample(s))
	constraint := sampleConstraint(s, service)
	out := make([]trace.Task, n)
	for i := range out {
		d := int64(length.Sample(s))
		if d < 1 {
			d = 1
		}
		b := busy.Sample(s) * demand
		if b > 1 {
			b = 1
		}
		// Tasks within a job are submitted in a sequential order with
		// small staggers (Section III: "multiple tasks submitted in a
		// sequential order").
		stagger := int64(0)
		if i > 0 {
			stagger = int64(i) * int64(1+s.IntN(3))
		}
		out[i] = trace.Task{
			JobID:       jobID,
			Index:       i,
			Submit:      submit + stagger,
			Priority:    priority,
			User:        user,
			MinCPUClass: constraint,
			CPUReq:      googleCPUReq.Sample(s),
			MemReq:      memReq.Sample(s),
			Busy:        b,
			Duration:    d,
		}
	}
	return out
}

// GoogleJobsFromTasks summarises tasks into jobs assuming immediate
// scheduling (the paper observes the pending queue is essentially
// always empty, so submission-to-completion equals the span of the
// tasks). CPUTime integrates each task's CPU request over its
// duration; memory is the mean task request.
func GoogleJobsFromTasks(tasks []trace.Task) []trace.Job {
	type agg struct {
		submit, end int64
		priority    int
		user        int
		count       int
		cpuTime     float64
		memSum      float64
		maxWidth    float64
	}
	jobs := make(map[int64]*agg)
	for _, t := range tasks {
		a := jobs[t.JobID]
		if a == nil {
			a = &agg{submit: t.Submit, end: t.Submit}
			jobs[t.JobID] = a
		}
		if t.Submit < a.submit {
			a.submit = t.Submit
		}
		if end := t.Submit + t.Duration; end > a.end {
			a.end = end
		}
		a.priority = t.Priority
		a.user = t.User
		a.count++
		a.cpuTime += t.CPUReq * t.Busy * float64(t.Duration)
		a.memSum += t.MemReq
	}
	// Parallel width: tasks of a job overlap almost entirely, so the
	// width is the task count capped by observing overlap at the job
	// midpoint. For the workload-level analyses a simple count is the
	// right notion of "processors used simultaneously" scaled by the
	// per-task CPU share.
	out := make([]trace.Job, 0, len(jobs))
	for id, a := range jobs {
		j := trace.Job{
			ID:        id,
			Submit:    a.submit,
			End:       a.end,
			Priority:  a.priority,
			User:      a.user,
			TaskCount: a.count,
			NumCPUs:   1, // a Google task takes (a fraction of) one core
			CPUTime:   a.cpuTime,
			MemAvg:    a.memSum / float64(a.count),
		}
		if a.maxWidth > 1 {
			j.NumCPUs = a.maxWidth
		}
		out = append(out, j)
	}
	slices.SortFunc(out, func(a, b trace.Job) int {
		if a.Submit != b.Submit {
			return cmp.Compare(a.Submit, b.Submit)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return out
}

// FullScaleMachines is the machine count of the real trace.
const FullScaleMachines = 12500

// utilizationPark is the park size at which 552 jobs/hour of our
// calibrated workload reproduces the trace's utilisation levels
// (~35 % CPU, ~60 % memory). It differs from FullScaleMachines because
// our synthetic per-task demands are calibrated to the paper's job
// statistics, not to Google's undisclosed absolute demand volume.
const utilizationPark = 525

// ScaledJobsPerHour returns the submission rate that keeps the
// simulated cluster at the trace's utilisation level for a park of the
// given size.
func ScaledJobsPerHour(machines int) float64 {
	return 552 * float64(machines) / utilizationPark
}

// ScaledGoogleConfig returns the default calibration with the
// submission rate scaled to the park size. The widest map-reduce jobs
// are capped proportionally: at full scale a 2000-task job is a tiny
// fraction of the cluster, and keeping that ratio preserves the
// paper's empty-pending-queue property on small parks.
func ScaledGoogleConfig(machines int, horizon int64) GoogleConfig {
	cfg := DefaultGoogleConfig(horizon)
	cfg.JobsPerHour = ScaledJobsPerHour(machines)
	cfg.Arrival.PerHour = cfg.JobsPerHour
	maxTasks := 2000 * machines / utilizationPark
	if maxTasks < 40 {
		maxTasks = 40
	}
	if maxTasks > 2000 {
		maxTasks = 2000
	}
	cfg.MaxTasksPerJob = maxTasks
	cfg.WarmStart = true
	return cfg
}

// GoogleMachines builds a heterogeneous machine park with the
// normalised capacity classes visible in Fig 7: CPU in {0.25, 0.5, 1}
// and memory in {0.25, 0.5, 0.75, 1}; page-cache capacity is 1 for all
// hosts.
func GoogleMachines(n int, s *rng.Stream) []trace.Machine {
	cpuClasses := dist.Empirical{
		Values:  []float64{0.25, 0.5, 1.0},
		Weights: []float64{0.31, 0.54, 0.15},
	}
	memClasses := dist.Empirical{
		Values:  []float64{0.25, 0.5, 0.75, 1.0},
		Weights: []float64{0.30, 0.49, 0.12, 0.09},
	}
	out := make([]trace.Machine, n)
	for i := range out {
		out[i] = trace.Machine{
			ID:        i,
			CPU:       cpuClasses.Sample(s),
			Memory:    memClasses.Sample(s),
			PageCache: 1,
		}
	}
	return out
}
