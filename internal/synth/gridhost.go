package synth

import (
	"math"

	"repro/internal/rng"
	"repro/internal/timeseries"
)

// GridHostConfig parameterises the per-machine host-load model used
// for the Fig 13 Google-vs-Grid comparison. Grid worker nodes run one
// long computation-bound job at a time, so their CPU usage sits high
// and flat for hours, with minuscule measurement noise; memory sits
// lower than CPU (the inverse of the Google cluster, Section IV.B.2).
type GridHostConfig struct {
	Step int64 // sampling period, seconds (the analyses use 300)

	// Segment lengths: how long the host stays on one job/load level.
	SegmentMeanSec float64

	// CPU level range while busy, and probability of an idle gap
	// between jobs.
	CPULo, CPUHi float64
	IdleProb     float64

	// Memory level range (grids: below CPU).
	MemLo, MemHi float64

	// Measurement noise amplitude (std of additive jitter). The paper
	// measures AuverGrid CPU noise around 0.001 vs Google's 0.028.
	Noise float64

	// Diurnal modulation of the busy level.
	DiurnalAmp float64
}

// DefaultGridHost returns the host-load calibration for the named grid
// system ("AuverGrid" or "SHARCNET"; anything else gets the AuverGrid
// profile).
func DefaultGridHost(system string) GridHostConfig {
	cfg := GridHostConfig{
		Step:           300,
		SegmentMeanSec: 9 * 3600, // jobs run for hours
		CPULo:          0.75, CPUHi: 1.0,
		IdleProb: 0.08,
		MemLo:    0.2, MemHi: 0.55,
		Noise:      0.0005,
		DiurnalAmp: 0.05,
	}
	if system == "SHARCNET" {
		cfg.SegmentMeanSec = 5 * 3600
		cfg.CPULo, cfg.CPUHi = 0.7, 1.0
		cfg.IdleProb = 0.12
		cfg.Noise = 0.0008
	}
	return cfg
}

// GridHostSeries synthesises one machine's CPU and memory usage series
// over [0, horizon).
func GridHostSeries(cfg GridHostConfig, horizon int64, s *rng.Stream) (cpu, mem *timeseries.Series) {
	if cfg.Step <= 0 {
		cfg.Step = 300
	}
	n := int(horizon / cfg.Step)
	cpuVals := make([]float64, n)
	memVals := make([]float64, n)

	cpuLevel := s.Range(cfg.CPULo, cfg.CPUHi)
	memLevel := s.Range(cfg.MemLo, cfg.MemHi)
	idle := false
	remaining := cfg.segmentSamples(s)

	for i := 0; i < n; i++ {
		if remaining <= 0 {
			// Next job (or idle gap) starts.
			idle = s.Bool(cfg.IdleProb)
			cpuLevel = s.Range(cfg.CPULo, cfg.CPUHi)
			memLevel = s.Range(cfg.MemLo, cfg.MemHi)
			remaining = cfg.segmentSamples(s)
		}
		remaining--

		t := float64(i) * float64(cfg.Step)
		day := 1 + cfg.DiurnalAmp*math.Sin(2*math.Pi*(t/86400-0.3))
		c, m := cpuLevel*day, memLevel
		if idle {
			c, m = 0.02, cfg.MemLo*0.5
		}
		c += cfg.Noise * s.NormFloat64()
		m += cfg.Noise * 0.5 * s.NormFloat64()
		cpuVals[i] = clamp01(c)
		memVals[i] = clamp01(m)
	}
	cpu = &timeseries.Series{Start: 0, Step: cfg.Step, Values: cpuVals}
	mem = &timeseries.Series{Start: 0, Step: cfg.Step, Values: memVals}
	return cpu, mem
}

func (cfg GridHostConfig) segmentSamples(s *rng.Stream) int {
	d := s.ExpFloat64() * cfg.SegmentMeanSec
	k := int(d / float64(cfg.Step))
	if k < 1 {
		k = 1
	}
	return k
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
