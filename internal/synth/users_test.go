package synth

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/workload"
)

func TestGoogleUsersAssigned(t *testing.T) {
	cfg := DefaultGoogleConfig(6 * 3600)
	cfg.MaxTasksPerJob = 100
	tasks := GenerateGoogleTasks(cfg, rng.New(31))
	jobs := GoogleJobsFromTasks(tasks)

	// Every task carries a user, constant within a job.
	jobUser := map[int64]int{}
	for _, task := range tasks {
		if task.User < 1 || task.User > 400 {
			t.Fatalf("task user %d out of range", task.User)
		}
		if u, ok := jobUser[task.JobID]; ok && u != task.User {
			t.Fatalf("job %d has multiple users", task.JobID)
		}
		jobUser[task.JobID] = task.User
	}

	// Zipf skew: the 10 heaviest users dominate far beyond 10/400.
	users, topShare := workload.UserShares(jobs, 10)
	if users < 50 {
		t.Fatalf("only %d distinct users", users)
	}
	if topShare < 0.30 {
		t.Fatalf("top-10 user share %v, want Zipf-heavy (>0.30)", topShare)
	}
}

func TestGoogleConstraintsAssigned(t *testing.T) {
	cfg := DefaultGoogleConfig(6 * 3600)
	cfg.MaxTasksPerJob = 100
	tasks := GenerateGoogleTasks(cfg, rng.New(32))
	var constrained, serviceConstrained, total, serviceTotal int
	for _, task := range tasks {
		total++
		isService := task.Duration > 3*3600 // heuristic: long tasks are services
		if isService {
			serviceTotal++
		}
		switch task.MinCPUClass {
		case 0:
		case 0.5, 1.0:
			constrained++
			if isService {
				serviceConstrained++
			}
		default:
			t.Fatalf("unexpected constraint class %v", task.MinCPUClass)
		}
	}
	frac := float64(constrained) / float64(total)
	if frac < 0.03 || frac > 0.35 {
		t.Fatalf("constrained fraction %v, want a minority but nonzero", frac)
	}
	if serviceTotal > 0 && serviceConstrained == 0 {
		t.Fatal("no constrained service tasks")
	}
}

func TestUserSharesEdgeCases(t *testing.T) {
	if users, share := workload.UserShares(nil, 5); users != 0 || share != 0 {
		t.Fatal("empty input should give zeros")
	}
}
