package synth

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/dist"
	"repro/internal/gridsim"
	"repro/internal/rng"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// GridSystem is a parameterised Grid/HPC workload model. One instance
// exists per system the paper compares against; the calibration
// constants come from Table I (submission rates and fairness), Fig 3
// (job-length CDFs), Fig 5 (submission intervals) and Fig 6 (CPU and
// memory utilisation).
type GridSystem struct {
	Name string

	// Arrival process (drives Table I and Fig 5). Grid submissions are
	// strongly diurnal and bursty, which is what drags Jain's fairness
	// index down to 0.04-0.51.
	Arrival ArrivalConfig

	// Job length in seconds (submission to completion, Fig 3).
	Length dist.Dist
	// Queueing delay before the job starts (folded into the length).
	Wait dist.Dist

	// Parallel width: processors allocated to the job (Fig 6a).
	NumCPUs dist.Dist
	// Fraction of each processor's time the job keeps busy; CPU
	// utilisation per Formula (4) is NumCPUs · busy.
	Busy dist.Dist

	// Mean memory used per job, MB (Fig 6b).
	MemMB dist.Dist
}

// Generate produces the job stream for a trace of the given horizon.
func (g GridSystem) Generate(horizon int64, s *rng.Stream) []trace.Job {
	arrivals := Arrivals(g.Arrival, horizon, s.Child("arrivals"))
	body := s.Child("jobs")
	jobs := make([]trace.Job, 0, len(arrivals))
	for i, submit := range arrivals {
		length := int64(g.Length.Sample(body))
		if length < 1 {
			length = 1
		}
		wait := int64(0)
		if g.Wait != nil {
			wait = int64(g.Wait.Sample(body))
			if wait < 0 {
				wait = 0
			}
		}
		procs := g.NumCPUs.Sample(body)
		if procs < 1 {
			procs = 1
		}
		busy := g.Busy.Sample(body)
		if busy < 0 {
			busy = 0
		}
		if busy > 1 {
			busy = 1
		}
		jobs = append(jobs, trace.Job{
			ID:        int64(i + 1),
			Submit:    submit,
			End:       submit + wait + length,
			TaskCount: 1,
			NumCPUs:   procs,
			CPUTime:   float64(length) * procs * busy,
			MemAvg:    g.MemMB.Sample(body),
		})
	}
	slices.SortFunc(jobs, func(a, b trace.Job) int {
		if a.Submit != b.Submit {
			return cmp.Compare(a.Submit, b.Submit)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return jobs
}

// GenerateQueued generates the system's arrival/runtime stream and
// schedules it on a simulated space-shared cluster (FCFS with EASY
// backfilling, internal/gridsim), so wait times come from actual
// queueing instead of a sampled distribution. It returns the jobs with
// their scheduled completion times plus the cluster's processor
// utilisation series. nodes is the cluster's processor count; jobs
// wider than the cluster are clipped to it.
func (g GridSystem) GenerateQueued(horizon int64, nodes int, s *rng.Stream) ([]trace.Job, *timeseries.Series, error) {
	arrivals := Arrivals(g.Arrival, horizon, s.Child("arrivals"))
	body := s.Child("jobs")
	specs := make([]gridsim.JobSpec, 0, len(arrivals))
	type extra struct {
		busy float64
		mem  float64
	}
	extras := make(map[int64]extra, len(arrivals))
	for i, submit := range arrivals {
		length := int64(g.Length.Sample(body))
		if length < 1 {
			length = 1
		}
		p := int(g.NumCPUs.Sample(body))
		if p < 1 {
			p = 1
		}
		if p > nodes {
			p = nodes
		}
		busy := g.Busy.Sample(body)
		if busy < 0 {
			busy = 0
		}
		if busy > 1 {
			busy = 1
		}
		id := int64(i + 1)
		specs = append(specs, gridsim.JobSpec{
			ID: id, Submit: submit, Procs: p, Runtime: length,
			// Users over-estimate runtimes; a 1.5x pad is typical.
			Estimate: length + length/2,
		})
		extras[id] = extra{busy: busy, mem: g.MemMB.Sample(body)}
	}
	res, err := gridsim.Simulate(gridsim.Config{Nodes: nodes, Backfill: true}, specs, 300)
	if err != nil {
		return nil, nil, err
	}
	specByID := make(map[int64]gridsim.JobSpec, len(specs))
	for _, sp := range specs {
		specByID[sp.ID] = sp
	}
	jobs := make([]trace.Job, 0, len(res.Placements))
	for _, pl := range res.Placements {
		sp := specByID[pl.ID]
		ex := extras[pl.ID]
		jobs = append(jobs, trace.Job{
			ID:        pl.ID,
			Submit:    sp.Submit,
			End:       pl.End,
			TaskCount: 1,
			NumCPUs:   float64(sp.Procs),
			CPUTime:   float64(sp.Runtime) * float64(sp.Procs) * ex.busy,
			MemAvg:    ex.mem,
		})
	}
	slices.SortFunc(jobs, func(a, b trace.Job) int {
		if a.Submit != b.Submit {
			return cmp.Compare(a.Submit, b.Submit)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return jobs, res.Utilization, nil
}

// procs is a shorthand for an empirical processor-count distribution.
func procs(values []float64, weights []float64) dist.Dist {
	return dist.Empirical{Values: values, Weights: weights}
}

// The per-system calibrations. Arrival σ values are derived from the
// Table I fairness indices via fairness ≈ 1/(1+CV²), CV² ≈ exp(σ²)−1;
// the diurnal amplitudes add the day/night periodicity the paper
// blames for the low Grid fairness.
var (
	// AuverGrid: biology/physics batch grid; almost entirely serial
	// jobs, mean task length 7.2 h, max 18 d (Section III.2).
	AuverGrid = GridSystem{
		Name: "AuverGrid",
		Arrival: ArrivalConfig{
			PerHour: 45, DiurnalAmp: 0.45, LogSigma: 0.95,
			SpikeProb: 0.01, SpikeFactor: 6,
		},
		Length: dist.Clamped{
			Dist: dist.LogNormal{Mu: 9.0, Sigma: 1.35}, // median ~8100 s
			Lo:   120, Hi: 18 * 86400,
		},
		Wait:    dist.Clamped{Dist: dist.Exponential{Rate: 1.0 / 900}, Lo: 0, Hi: 6 * 3600},
		NumCPUs: procs([]float64{1, 2}, []float64{0.97, 0.03}),
		Busy:    dist.Uniform{Lo: 0.82, Hi: 1.0},
		MemMB:   dist.Clamped{Dist: dist.LogNormal{Mu: 5.9, Sigma: 0.8}, Lo: 16, Hi: 4096},
	}

	// NorduGrid: volunteer-flavoured grid, very bursty submissions
	// (fairness 0.11) and long scientific jobs.
	NorduGrid = GridSystem{
		Name: "NorduGrid",
		Arrival: ArrivalConfig{
			PerHour: 27, DiurnalAmp: 0.5, LogSigma: 1.45,
			SpikeProb: 0.012, SpikeFactor: 25,
		},
		Length: dist.Clamped{
			Dist: dist.LogNormal{Mu: 9.4, Sigma: 1.5}, // median ~12100 s
			Lo:   300, Hi: 21 * 86400,
		},
		Wait:    dist.Clamped{Dist: dist.Exponential{Rate: 1.0 / 1800}, Lo: 0, Hi: 12 * 3600},
		NumCPUs: procs([]float64{1, 2}, []float64{0.95, 0.05}),
		Busy:    dist.Uniform{Lo: 0.8, Hi: 1.0},
		MemMB:   dist.Clamped{Dist: dist.LogNormal{Mu: 6.1, Sigma: 0.8}, Lo: 32, Hi: 8192},
	}

	// SHARCNET: Canadian HPC consortium; huge burst submissions
	// (22334 jobs in the peak hour vs a mean of 126; fairness 0.04).
	SHARCNET = GridSystem{
		Name: "SHARCNET",
		Arrival: ArrivalConfig{
			PerHour: 126, DiurnalAmp: 0.5, LogSigma: 1.7,
			SpikeProb: 0.006, SpikeFactor: 40,
		},
		Length: dist.Clamped{
			Dist: dist.LogNormal{Mu: 8.4, Sigma: 1.8}, // median ~4450 s
			Lo:   60, Hi: 28 * 86400,
		},
		Wait: dist.Clamped{Dist: dist.Exponential{Rate: 1.0 / 2400}, Lo: 0, Hi: 24 * 3600},
		NumCPUs: procs(
			[]float64{1, 2, 4, 8, 16, 32},
			[]float64{0.58, 0.12, 0.12, 0.1, 0.06, 0.02}),
		Busy:  dist.Uniform{Lo: 0.7, Hi: 1.0},
		MemMB: dist.Clamped{Dist: dist.LogNormal{Mu: 6.2, Sigma: 0.9}, Lo: 32, Hi: 16384},
	}

	// ANL Intrepid: capability HPC machine, large parallel jobs,
	// low submission rate with the steadiest Grid fairness (0.51).
	ANL = GridSystem{
		Name: "ANL",
		Arrival: ArrivalConfig{
			PerHour: 10, DiurnalAmp: 0.4, LogSigma: 0.75,
			SpikeProb: 0.005, SpikeFactor: 8,
		},
		Length: dist.Clamped{
			Dist: dist.LogNormal{Mu: 8.7, Sigma: 1.0}, // median ~6000 s
			Lo:   300, Hi: 7 * 86400,
		},
		Wait: dist.Clamped{Dist: dist.Exponential{Rate: 1.0 / 3600}, Lo: 0, Hi: 24 * 3600},
		NumCPUs: procs(
			[]float64{64, 128, 256, 512, 1024, 2048},
			[]float64{0.25, 0.27, 0.22, 0.14, 0.08, 0.04}),
		Busy:  dist.Uniform{Lo: 0.75, Hi: 0.98},
		MemMB: dist.Clamped{Dist: dist.LogNormal{Mu: 6.6, Sigma: 0.7}, Lo: 128, Hi: 32768},
	}

	// RICC: RIKEN Integrated Cluster of Clusters; high throughput with
	// violent bursts (max 4919/h vs mean 121; fairness 0.14).
	RICC = GridSystem{
		Name: "RICC",
		Arrival: ArrivalConfig{
			PerHour: 121, DiurnalAmp: 0.45, LogSigma: 1.55,
			SpikeProb: 0.008, SpikeFactor: 35,
		},
		Length: dist.Clamped{
			Dist: dist.LogNormal{Mu: 8.2, Sigma: 1.6}, // median ~3640 s
			Lo:   60, Hi: 14 * 86400,
		},
		Wait: dist.Clamped{Dist: dist.Exponential{Rate: 1.0 / 1800}, Lo: 0, Hi: 12 * 3600},
		NumCPUs: procs(
			[]float64{1, 2, 4, 8, 16, 32},
			[]float64{0.3, 0.12, 0.16, 0.22, 0.14, 0.06}),
		Busy:  dist.Uniform{Lo: 0.75, Hi: 1.0},
		MemMB: dist.Clamped{Dist: dist.LogNormal{Mu: 6.3, Sigma: 0.8}, Lo: 64, Hi: 8192},
	}

	// MetaCentrum: Czech national grid; low rate, extreme burstiness
	// (fairness 0.04).
	MetaCentrum = GridSystem{
		Name: "MetaCentrum",
		Arrival: ArrivalConfig{
			PerHour: 24, DiurnalAmp: 0.5, LogSigma: 1.75,
			SpikeProb: 0.006, SpikeFactor: 80,
		},
		Length: dist.Clamped{
			Dist: dist.LogNormal{Mu: 8.5, Sigma: 1.7}, // median ~4900 s
			Lo:   60, Hi: 28 * 86400,
		},
		Wait: dist.Clamped{Dist: dist.Exponential{Rate: 1.0 / 2700}, Lo: 0, Hi: 24 * 3600},
		NumCPUs: procs(
			[]float64{1, 2, 4, 8, 16},
			[]float64{0.52, 0.2, 0.14, 0.1, 0.04}),
		Busy:  dist.Uniform{Lo: 0.72, Hi: 1.0},
		MemMB: dist.Clamped{Dist: dist.LogNormal{Mu: 6.0, Sigma: 0.9}, Lo: 32, Hi: 8192},
	}

	// LLNL Atlas: capability cluster, moderate parallel widths,
	// lowest submission rate of the set (8.4/h).
	LLNLAtlas = GridSystem{
		Name: "LLNL-Atlas",
		Arrival: ArrivalConfig{
			PerHour: 8.4, DiurnalAmp: 0.45, LogSigma: 1.1,
			SpikeProb: 0.006, SpikeFactor: 12,
		},
		Length: dist.Clamped{
			Dist: dist.LogNormal{Mu: 8.8, Sigma: 1.3}, // median ~6630 s
			Lo:   300, Hi: 10 * 86400,
		},
		Wait: dist.Clamped{Dist: dist.Exponential{Rate: 1.0 / 3600}, Lo: 0, Hi: 24 * 3600},
		NumCPUs: procs(
			[]float64{8, 16, 32, 64, 128},
			[]float64{0.22, 0.26, 0.26, 0.18, 0.08}),
		Busy:  dist.Uniform{Lo: 0.75, Hi: 0.98},
		MemMB: dist.Clamped{Dist: dist.LogNormal{Mu: 6.5, Sigma: 0.7}, Lo: 128, Hi: 16384},
	}

	// DAS-2: Dutch research grid; only used for the Fig 6 resource
	// comparison. Communication-heavy co-allocated parallel jobs keep
	// each processor far from fully busy, which is why its Formula (4)
	// utilisation spreads over 1-5.
	DAS2 = GridSystem{
		Name: "DAS-2",
		Arrival: ArrivalConfig{
			PerHour: 40, DiurnalAmp: 0.5, LogSigma: 1.2,
			SpikeProb: 0.01, SpikeFactor: 10,
		},
		Length: dist.Clamped{
			Dist: dist.LogNormal{Mu: 6.8, Sigma: 1.5}, // median ~900 s
			Lo:   10, Hi: 3 * 86400,
		},
		Wait: dist.Clamped{Dist: dist.Exponential{Rate: 1.0 / 300}, Lo: 0, Hi: 2 * 3600},
		NumCPUs: procs(
			[]float64{1, 2, 4, 8, 16, 32},
			[]float64{0.12, 0.26, 0.28, 0.2, 0.1, 0.04}),
		Busy:  dist.Uniform{Lo: 0.1, Hi: 0.45},
		MemMB: dist.Clamped{Dist: dist.LogNormal{Mu: 5.5, Sigma: 0.8}, Lo: 16, Hi: 2048},
	}
)

// GridSystems lists the seven systems of Table I in paper order.
var GridSystems = []GridSystem{
	AuverGrid, NorduGrid, SHARCNET, ANL, RICC, MetaCentrum, LLNLAtlas,
}

// SystemByName looks a system up by its paper name (case-sensitive),
// including DAS-2.
func SystemByName(name string) (GridSystem, error) {
	for _, g := range append(append([]GridSystem{}, GridSystems...), DAS2) {
		if g.Name == name {
			return g, nil
		}
	}
	return GridSystem{}, fmt.Errorf("synth: unknown grid system %q", name)
}
