package synth

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

func hourlyCounts(times []int64, horizon int64) []float64 {
	n := int(horizon / 3600)
	if n == 0 {
		n = 1
	}
	counts := make([]float64, n)
	for _, t := range times {
		h := int(t / 3600)
		if h >= 0 && h < n {
			counts[h]++
		}
	}
	return counts
}

func TestPoissonMean(t *testing.T) {
	s := rng.New(1)
	for _, mean := range []float64{0.5, 5, 20, 100, 600} {
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			sum += float64(Poisson(mean, s))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > mean*0.05+0.1 {
			t.Errorf("Poisson(%v) mean %v", mean, got)
		}
	}
	if Poisson(0, s) != 0 || Poisson(-1, s) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

func TestArrivalsSortedAndBounded(t *testing.T) {
	cfg := ArrivalConfig{PerHour: 100, DiurnalAmp: 0.3, LogSigma: 0.5}
	horizon := int64(48 * 3600)
	ts := Arrivals(cfg, horizon, rng.New(2))
	if len(ts) == 0 {
		t.Fatal("no arrivals")
	}
	for i, v := range ts {
		if v < 0 || v >= horizon {
			t.Fatalf("arrival %d out of range: %d", i, v)
		}
		if i > 0 && v < ts[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
	// Rate should be in the right ballpark.
	rate := float64(len(ts)) / 48
	if rate < 60 || rate > 160 {
		t.Fatalf("mean rate %v, want ~100", rate)
	}
}

func TestArrivalsEmptyCases(t *testing.T) {
	if Arrivals(ArrivalConfig{PerHour: 10}, 0, rng.New(1)) != nil {
		t.Error("zero horizon should give nil")
	}
	if Arrivals(ArrivalConfig{}, 3600, rng.New(1)) != nil {
		t.Error("zero rate should give nil")
	}
}

func TestArrivalFairnessContrast(t *testing.T) {
	// The core Table I property: Google's submission process is far
	// fairer than any Grid's.
	horizon := int64(14 * 86400)
	gCfg := DefaultGoogleConfig(horizon).Arrival
	g := hourlyCounts(Arrivals(gCfg, horizon, rng.New(3)), horizon)
	gf := stats.JainFairness(g)
	if gf < 0.85 || gf > 0.99 {
		t.Errorf("Google fairness %v, want ~0.94", gf)
	}
	for _, sys := range []GridSystem{AuverGrid, NorduGrid, SHARCNET, MetaCentrum} {
		cnt := hourlyCounts(Arrivals(sys.Arrival, horizon, rng.New(4)), horizon)
		f := stats.JainFairness(cnt)
		if f >= gf-0.2 {
			t.Errorf("%s fairness %v should be far below Google's %v", sys.Name, f, gf)
		}
	}
	// ANL has the steadiest Grid submissions but still well below Google.
	anl := stats.JainFairness(hourlyCounts(Arrivals(ANL.Arrival, horizon, rng.New(5)), horizon))
	if anl >= gf {
		t.Errorf("ANL fairness %v should be below Google's %v", anl, gf)
	}
}

func TestArrivalRampReducesFirstHours(t *testing.T) {
	cfg := ArrivalConfig{PerHour: 500, RampHours: 3}
	ts := Arrivals(cfg, 24*3600, rng.New(6))
	counts := hourlyCounts(ts, 24*3600)
	if counts[0] >= counts[6]/2 {
		t.Errorf("ramp-up hour 0 count %v vs steady %v", counts[0], counts[6])
	}
}

const testHorizon = int64(6 * 3600)

func googleTasks(t *testing.T) []trace.Task {
	t.Helper()
	cfg := DefaultGoogleConfig(testHorizon)
	cfg.MaxTasksPerJob = 500
	tasks := GenerateGoogleTasks(cfg, rng.New(7))
	if len(tasks) == 0 {
		t.Fatal("no tasks generated")
	}
	return tasks
}

func TestGoogleTasksWellFormed(t *testing.T) {
	tasks := googleTasks(t)
	jobs := map[int64]bool{}
	for i, task := range tasks {
		if task.Duration < 1 {
			t.Fatalf("task %d has duration %d", i, task.Duration)
		}
		if task.Priority < trace.MinPriority || task.Priority > trace.MaxPriority {
			t.Fatalf("task %d priority %d", i, task.Priority)
		}
		if task.CPUReq <= 0 || task.CPUReq > 1 || task.MemReq <= 0 || task.MemReq > 1 {
			t.Fatalf("task %d resources cpu=%v mem=%v", i, task.CPUReq, task.MemReq)
		}
		if i > 0 && task.Submit < tasks[i-1].Submit {
			t.Fatal("tasks not sorted by submission")
		}
		jobs[task.JobID] = true
	}
	ratio := float64(len(tasks)) / float64(len(jobs))
	if ratio < 5 || ratio > 120 {
		t.Errorf("tasks per job %v, want heavy-tailed mean in [5,120]", ratio)
	}
}

func TestGooglePriorityClusters(t *testing.T) {
	tasks := googleTasks(t)
	jobs := map[int64]int{}
	for _, task := range tasks {
		jobs[task.JobID] = task.Priority
	}
	var groups [3]int
	for _, p := range jobs {
		groups[trace.GroupOf(p)]++
	}
	total := len(jobs)
	lowFrac := float64(groups[0]) / float64(total)
	if lowFrac < 0.6 {
		t.Errorf("low-priority job fraction %v, want most jobs low (Fig 2)", lowFrac)
	}
	if groups[1] == 0 || groups[2] == 0 {
		t.Error("middle/high priority groups empty")
	}
}

func TestGoogleTaskLengthCalibration(t *testing.T) {
	tasks := googleTasks(t)
	lengths := make([]float64, len(tasks))
	for i, task := range tasks {
		lengths[i] = float64(task.Duration)
	}
	ecdf := stats.NewECDF(lengths)
	// Paper: ~55% of tasks < 10 min, ~90% < 1 h, ~94% < 3 h.
	if got := ecdf.Eval(600); got < 0.35 || got > 0.8 {
		t.Errorf("P(task<10min) = %v, want roughly 0.55", got)
	}
	if got := ecdf.Eval(3600); got < 0.75 || got > 0.98 {
		t.Errorf("P(task<1h) = %v, want roughly 0.90", got)
	}
	if got := ecdf.Eval(3 * 3600); got < 0.88 {
		t.Errorf("P(task<3h) = %v, want >= 0.88", got)
	}
	// Mean task length is pulled to hours by the service tail.
	mean := stats.Mean(lengths)
	if mean < 1800 || mean > 12*3600 {
		t.Errorf("mean task length %v s, want hours-scale", mean)
	}
	// Mass-count disparity: strongly Pareto (paper: 6/94).
	mc := stats.NewMassCount(lengths)
	items, mass := mc.JointRatio()
	if items > 18 {
		t.Errorf("joint ratio %v/%v, want strongly disparate (items <= 18)", items, mass)
	}
}

func TestGoogleJobsFromTasks(t *testing.T) {
	tasks := googleTasks(t)
	jobs := GoogleJobsFromTasks(tasks)
	if len(jobs) == 0 {
		t.Fatal("no jobs")
	}
	seen := map[int64]bool{}
	var totalTasks int
	for i, j := range jobs {
		if seen[j.ID] {
			t.Fatalf("duplicate job %d", j.ID)
		}
		seen[j.ID] = true
		if j.End < j.Submit {
			t.Fatalf("job %d negative length", j.ID)
		}
		if i > 0 && j.Submit < jobs[i-1].Submit {
			t.Fatal("jobs not sorted")
		}
		totalTasks += j.TaskCount
	}
	if totalTasks != len(tasks) {
		t.Fatalf("task count mismatch: %d vs %d", totalTasks, len(tasks))
	}

	// Paper Fig 3: most Google jobs are short; service tail exists.
	lengths := make([]float64, len(jobs))
	for i, j := range jobs {
		lengths[i] = float64(j.Length())
	}
	ecdf := stats.NewECDF(lengths)
	if got := ecdf.Eval(1000); got < 0.55 {
		t.Errorf("P(job<1000s) = %v, want majority short", got)
	}
	if stats.Max(lengths) < 86400 {
		t.Error("no long-running service jobs in the tail")
	}
}

func TestGoogleMachines(t *testing.T) {
	ms := GoogleMachines(2000, rng.New(8))
	if len(ms) != 2000 {
		t.Fatalf("got %d machines", len(ms))
	}
	cpuClasses := map[float64]int{}
	memClasses := map[float64]int{}
	for i, m := range ms {
		if m.ID != i {
			t.Fatalf("machine %d has ID %d", i, m.ID)
		}
		if m.PageCache != 1 {
			t.Fatal("page cache capacity must be 1")
		}
		cpuClasses[m.CPU]++
		memClasses[m.Memory]++
	}
	if len(cpuClasses) != 3 {
		t.Fatalf("CPU classes %v, want {0.25, 0.5, 1}", cpuClasses)
	}
	if len(memClasses) != 4 {
		t.Fatalf("memory classes %v, want 4 groups", memClasses)
	}
	if cpuClasses[0.5] < cpuClasses[1.0] {
		t.Error("0.5-CPU machines should dominate the park")
	}
}

func TestGridGenerate(t *testing.T) {
	horizon := int64(3 * 86400)
	for _, sys := range append(append([]GridSystem{}, GridSystems...), DAS2) {
		jobs := sys.Generate(horizon, rng.New(9))
		if len(jobs) == 0 {
			t.Fatalf("%s: no jobs", sys.Name)
		}
		for i, j := range jobs {
			if j.Length() < 1 {
				t.Fatalf("%s job %d has length %d", sys.Name, j.ID, j.Length())
			}
			if j.NumCPUs < 1 {
				t.Fatalf("%s job %d procs %v", sys.Name, j.ID, j.NumCPUs)
			}
			if j.MemAvg <= 0 {
				t.Fatalf("%s job %d memory %v", sys.Name, j.ID, j.MemAvg)
			}
			if i > 0 && j.Submit < jobs[i-1].Submit {
				t.Fatalf("%s jobs not sorted", sys.Name)
			}
		}
	}
}

func TestGridVsGoogleJobLengths(t *testing.T) {
	// Fig 3's headline: Google jobs are much shorter than Grid jobs.
	gTasks := googleTasks(t)
	gJobs := GoogleJobsFromTasks(gTasks)
	gLens := make([]float64, len(gJobs))
	for i, j := range gJobs {
		gLens[i] = float64(j.Length())
	}
	gMedian := stats.Quantile(gLens, 0.5)

	for _, sys := range GridSystems {
		jobs := sys.Generate(3*86400, rng.New(10))
		lens := make([]float64, len(jobs))
		for i, j := range jobs {
			lens[i] = float64(j.Length())
		}
		median := stats.Quantile(lens, 0.5)
		if median < 4*gMedian {
			t.Errorf("%s median %v not much longer than Google's %v", sys.Name, median, gMedian)
		}
		if frac := stats.NewECDF(lens).Eval(1000); frac > 0.4 {
			t.Errorf("%s has %v of jobs under 1000s; grids should be long", sys.Name, frac)
		}
	}
}

func TestGridCPUUtilisationContrast(t *testing.T) {
	// Fig 6a: AuverGrid utilisation ~1 (serial, busy); DAS-2 spreads
	// over 1-5 (parallel, partially busy); Google below 1.
	horizon := int64(2 * 86400)
	util := func(jobs []trace.Job) []float64 {
		out := make([]float64, 0, len(jobs))
		for _, j := range jobs {
			if j.Length() > 0 {
				out = append(out, j.CPUTime/float64(j.Length()))
			}
		}
		return out
	}
	ag := util(AuverGrid.Generate(horizon, rng.New(11)))
	das := util(DAS2.Generate(horizon, rng.New(12)))
	agMed := stats.Quantile(ag, 0.5)
	dasMed := stats.Quantile(das, 0.5)
	if agMed < 0.7 || agMed > 1.1 {
		t.Errorf("AuverGrid median utilisation %v, want ~0.9", agMed)
	}
	if dasMed < 0.5 {
		t.Errorf("DAS-2 median utilisation %v, want > 0.5 (parallel jobs)", dasMed)
	}
	if stats.Quantile(das, 0.9) < 2 {
		t.Errorf("DAS-2 90th pct utilisation %v, want multi-processor (>2)", stats.Quantile(das, 0.9))
	}
}

func TestSystemByName(t *testing.T) {
	for _, name := range []string{"AuverGrid", "NorduGrid", "SHARCNET", "ANL", "RICC", "MetaCentrum", "LLNL-Atlas", "DAS-2"} {
		g, err := SystemByName(name)
		if err != nil || g.Name != name {
			t.Errorf("SystemByName(%q) = %v, %v", name, g.Name, err)
		}
	}
	if _, err := SystemByName("Nope"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestGridHostSeries(t *testing.T) {
	cfg := DefaultGridHost("AuverGrid")
	horizon := int64(5 * 86400)
	cpu, mem := GridHostSeries(cfg, horizon, rng.New(13))
	if cpu.Len() != int(horizon/300) || mem.Len() != cpu.Len() {
		t.Fatalf("series lengths %d/%d", cpu.Len(), mem.Len())
	}
	for i, v := range cpu.Values {
		if v < 0 || v > 1 || mem.Values[i] < 0 || mem.Values[i] > 1 {
			t.Fatal("host series out of [0,1]")
		}
	}
	// Grid hosts: CPU above memory (Section IV.B.2 observation).
	if stats.Mean(cpu.Values) <= stats.Mean(mem.Values) {
		t.Errorf("grid CPU mean %v should exceed memory mean %v",
			stats.Mean(cpu.Values), stats.Mean(mem.Values))
	}
	// Tiny measurement noise, long stable segments.
	if n := cpu.Noise(2); n > 0.01 {
		t.Errorf("grid CPU noise %v, want ~0.001", n)
	}
	if ac := cpu.Autocorrelation(1); ac < 0.8 {
		t.Errorf("grid CPU autocorrelation %v, want high stability", ac)
	}
}

func TestGridHostSharcnetProfile(t *testing.T) {
	cfg := DefaultGridHost("SHARCNET")
	if cfg.SegmentMeanSec >= DefaultGridHost("AuverGrid").SegmentMeanSec {
		t.Error("SHARCNET should switch jobs faster than AuverGrid")
	}
	cpu, _ := GridHostSeries(cfg, 86400, rng.New(14))
	if cpu.Len() == 0 {
		t.Fatal("empty series")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	cfg := DefaultGoogleConfig(3600)
	a := GenerateGoogleTasks(cfg, rng.New(42))
	b := GenerateGoogleTasks(cfg, rng.New(42))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("task %d differs between identical seeds", i)
		}
	}
}
