// Package synth generates synthetic workloads calibrated to the
// systems the paper studies: the Google cluster (Section II) and the
// seven Grid/HPC systems from the Grid Workload Archive and Parallel
// Workload Archive (AuverGrid, NorduGrid, SHARCNET, ANL, RICC,
// MetaCentrum, LLNL-Atlas), plus DAS-2 for the resource-usage figures.
//
// Every generator is a deterministic function of an rng.Stream, and
// every calibration constant traces back to a number reported in the
// paper (see DESIGN.md for the mapping).
package synth

import (
	"math"
	"slices"

	"repro/internal/rng"
)

// ArrivalConfig parameterises the job arrival process. Arrivals are a
// Poisson process whose hourly rate is modulated by a diurnal cycle,
// multiplicative log-normal jitter, rare spikes, and a ramp-up at the
// start of the trace:
//
//	rate(h) = PerHour · diurnal(h) · lognormal(h) · spike(h) · ramp(h)
//
// The log-normal jitter controls Jain's fairness index of the hourly
// submission counts (Table I): fairness ≈ 1/(1+CV²) where
// CV² ≈ exp(σ²)−1 (+ the diurnal contribution). Google's 0.94 needs a
// gentle σ; NorduGrid's 0.11 needs a violent one.
type ArrivalConfig struct {
	PerHour     float64 // mean submissions per hour
	DiurnalAmp  float64 // 0 = flat, 0.5 = strong day/night swing
	LogSigma    float64 // σ of the hourly log-normal rate jitter
	SpikeProb   float64 // per-hour probability of a burst hour
	SpikeFactor float64 // rate multiplier during a burst hour
	RampHours   int     // hours of linear warm-up at trace start
}

const secondsPerHour = 3600

// Arrivals draws submission timestamps in [0, horizon) seconds.
// The result is sorted ascending.
func Arrivals(cfg ArrivalConfig, horizon int64, s *rng.Stream) []int64 {
	if horizon <= 0 || cfg.PerHour <= 0 {
		return nil
	}
	hours := int((horizon + secondsPerHour - 1) / secondsPerHour)
	var out []int64
	for h := 0; h < hours; h++ {
		rate := cfg.PerHour * diurnal(h, cfg.DiurnalAmp)
		if cfg.LogSigma > 0 {
			// Mean-one log-normal multiplier.
			rate *= math.Exp(cfg.LogSigma*s.NormFloat64() - cfg.LogSigma*cfg.LogSigma/2)
		}
		if cfg.SpikeProb > 0 && s.Bool(cfg.SpikeProb) {
			rate *= cfg.SpikeFactor
		}
		if cfg.RampHours > 0 && h < cfg.RampHours {
			rate *= (float64(h) + 0.5) / float64(cfg.RampHours)
		}
		n := Poisson(rate, s)
		hourStart := int64(h) * secondsPerHour
		for i := 0; i < n; i++ {
			t := hourStart + s.Int64N(secondsPerHour)
			if t < horizon {
				out = append(out, t)
			}
		}
	}
	slices.Sort(out)
	return out
}

// diurnal returns the day/night modulation factor for hour h, with the
// minimum around 4am and the peak around 4pm.
func diurnal(h int, amp float64) float64 {
	if amp == 0 {
		return 1
	}
	phase := 2 * math.Pi * (float64(h%24) - 10) / 24
	f := 1 + amp*math.Sin(phase)
	if f < 0.01 {
		f = 0.01
	}
	return f
}

// Poisson draws a Poisson deviate with the given mean. Small means use
// Knuth's method; large means use a clamped normal approximation,
// which is indistinguishable for the hourly counts we generate.
func Poisson(mean float64, s *rng.Stream) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k, p := 0, 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
			if k > 10000 { // numeric safety net
				return k
			}
		}
	}
	v := mean + math.Sqrt(mean)*s.NormFloat64()
	if v < 0 {
		return 0
	}
	return int(v + 0.5)
}
