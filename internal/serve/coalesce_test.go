package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGroupCoalescesConcurrentCallers(t *testing.T) {
	var g group
	var runs atomic.Int64
	release := make(chan struct{})
	fn := func() (any, error) {
		runs.Add(1)
		<-release
		return "built", nil
	}

	const waiters = 49
	results := make(chan string, waiters+1)
	var wg sync.WaitGroup
	for i := 0; i < waiters+1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := g.Do(context.Background(), "k", fn)
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			results <- v.(string)
		}()
	}
	waitFor(t, "every duplicate parked on the flight", func() bool { return g.waiting("k") == waiters })
	close(release)
	wg.Wait()
	close(results)
	n := 0
	for v := range results {
		n++
		if v != "built" {
			t.Errorf("result %q, want built", v)
		}
	}
	if n != waiters+1 || runs.Load() != 1 {
		t.Errorf("got %d results from %d runs, want %d from 1", n, runs.Load(), waiters+1)
	}
}

func TestGroupKeysAreIndependent(t *testing.T) {
	var g group
	for _, key := range []string{"a", "b"} {
		v, shared, err := g.Do(context.Background(), key, func() (any, error) { return key, nil })
		if err != nil || shared || v.(string) != key {
			t.Errorf("Do(%s) = %v shared=%v err=%v", key, v, shared, err)
		}
	}
}

func TestGroupWaiterAbandonsOnContextCancel(t *testing.T) {
	var g group
	release := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), "k", func() (any, error) { <-release; return 1, nil })
		leaderDone <- err
	}()
	waitFor(t, "the flight to register", func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		_, ok := g.calls["k"]
		return ok
	})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, shared, err := g.Do(ctx, "k", nil); !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: shared=%v err=%v, want shared cancellation", shared, err)
	}
	// The abandoned waiter must not have taken the build down with it.
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
}

func TestGroupPanicBecomesError(t *testing.T) {
	var g group
	_, _, err := g.Do(context.Background(), "k", func() (any, error) { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want a panic-wrapping error", err)
	}
	// The key must be released for the next caller.
	v, _, err := g.Do(context.Background(), "k", func() (any, error) { return "ok", nil })
	if err != nil || v.(string) != "ok" {
		t.Fatalf("after panic: %v, %v", v, err)
	}
}
