package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// group is a minimal singleflight: concurrent Do calls with the same
// key share one execution of fn. The execution runs on its own
// goroutine under the server's lifetime context, never a request's, so
// a waiter (or even the request that triggered the build) abandoning
// early leaves the build running to completion — the next request gets
// the finished artifact instead of a torn one. This is what turns N
// concurrent cold requests into exactly one core.cell.*.miss.
type group struct {
	mu    sync.Mutex
	calls map[string]*call
}

// call is one in-flight execution; done closes after val/err are set.
// waiters counts the duplicate callers currently parked on done — the
// coalescing tests poll it to know every concurrent request has truly
// joined the flight before letting the build finish.
type call struct {
	done    chan struct{}
	waiters atomic.Int32
	val     any
	err     error
	// sc identifies the leader's span, so a joiner can link its own
	// trace to the one that is actually doing the work.
	sc obs.SpanContext
}

// waiting reports how many duplicate callers are parked on key's
// in-flight call (0 when no call is in flight).
func (g *group) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return int(c.waiters.Load())
	}
	return 0
}

// Do returns fn's result for key, running it at most once across all
// concurrent callers. shared reports whether this caller piggybacked
// on an execution another caller started. ctx bounds only this
// caller's wait: its cancellation abandons the wait with the context's
// cause, the execution itself is unaffected.
func (g *group) Do(ctx context.Context, key string, fn func() (any, error)) (v any, shared bool, err error) {
	v, shared, _, err = g.DoLinked(ctx, key, obs.SpanContext{}, fn)
	return v, shared, err
}

// DoLinked is Do for traced callers: sc is this caller's own span
// identity, and the returned leader is the span identity of whichever
// caller's fn actually ran — the caller's own sc when it led, another
// request's when it joined an in-flight execution. A joiner records
// leader as a span link, cross-referencing the trace doing the work.
func (g *group) DoLinked(ctx context.Context, key string, sc obs.SpanContext, fn func() (any, error)) (v any, shared bool, leader obs.SpanContext, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.waiters.Add(1)
		defer c.waiters.Add(-1)
		select {
		case <-c.done:
			return c.val, true, c.sc, c.err
		case <-ctx.Done():
			return nil, true, c.sc, context.Cause(ctx)
		}
	}
	c := &call{done: make(chan struct{}), sc: sc}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		defer func() {
			// Belt and braces: fn (core.RunOne) already isolates
			// experiment panics, but a panic escaping the coalescer
			// would strand every waiter on a never-closed channel.
			if r := recover(); r != nil {
				c.err = fmt.Errorf("serve: coalesced build %q panicked: %v", key, r)
			}
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
		c.val, c.err = fn()
	}()

	select {
	case <-c.done:
		return c.val, false, sc, c.err
	case <-ctx.Done():
		return nil, false, sc, context.Cause(ctx)
	}
}
