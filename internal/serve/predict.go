package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/predict"
)

// Prediction-parameter guard rails. A prediction scenario simulates a
// whole host population per request, so the bounds are much tighter
// than the artifact routes': 200 hosts × 60 days is already a
// several-second build.
const (
	maxPredictHosts = 200
	maxPredictDays  = 60
	maxPredictK     = 288 // one day of 5-minute steps
)

// predictScenarioFor parses ?system=&hosts=&days=&seed=&k=&hmm= into a
// predict.Scenario, defaulting to cmd/predict's defaults (Google, 20
// hosts, 4 days, seed 1, k 1) so a bare GET /v1/predict serves exactly
// what a bare `predict` invocation prints.
func predictScenarioFor(q url.Values) (predict.Scenario, error) {
	sc := predict.Scenario{System: "Google", Hosts: 20, Days: 4, Seed: 1, K: 1}
	if v := q.Get("system"); v != "" {
		switch v {
		case "Google", "AuverGrid", "SHARCNET":
			sc.System = v
		default:
			return sc, fmt.Errorf("system: want Google, AuverGrid or SHARCNET, got %q", v)
		}
	}
	intParam := func(name string, max int, dst *int) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > max {
			return fmt.Errorf("%s: want an integer in [1, %d], got %q", name, max, v)
		}
		*dst = n
		return nil
	}
	if err := intParam("hosts", maxPredictHosts, &sc.Hosts); err != nil {
		return sc, err
	}
	if err := intParam("days", maxPredictDays, &sc.Days); err != nil {
		return sc, err
	}
	if err := intParam("k", maxPredictK, &sc.K); err != nil {
		return sc, err
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return sc, fmt.Errorf("seed: %q is not a uint64", v)
		}
		sc.Seed = n
	}
	if v := q.Get("hmm"); v != "" {
		switch v {
		case "1", "true":
			sc.HMM = true
		case "0", "false":
			sc.HMM = false
		default:
			return sc, fmt.Errorf("hmm: want 0, 1, true or false, got %q", v)
		}
	}
	return sc, nil
}

// predictFor returns the scenario's report, serving the LRU-cached
// copy when warm and otherwise coalescing all concurrent cold requests
// for the same canonical scenario into one RunScenario under the
// server's lifetime context. ctx is the requester's wait budget only.
func (s *Server) predictFor(ctx context.Context, sc predict.Scenario) (*predict.ScenarioReport, error) {
	key := sc.Canonical()
	if rep, ok := s.predictCache.get(key); ok {
		s.predictHit.Add(1)
		return rep, nil
	}
	v, shared, err := s.predictSF.Do(ctx, key, func() (any, error) {
		// Like artifact builds, the computation itself runs to
		// completion under the server's lifetime context even if every
		// waiting requester disconnects: the next request for this
		// scenario then hits the cache. RunScenario is CPU-bound and
		// uncancellable, so only the wait is governed by ctx.
		rep, err := predict.RunScenario(sc)
		if err != nil {
			return nil, err
		}
		s.predictCache.put(key, rep)
		return rep, nil
	})
	if shared {
		s.coShared.Add(1)
	}
	if err != nil {
		return nil, err
	}
	return v.(*predict.ScenarioReport), nil
}

// handlePredict serves GET /v1/predict: the host-load prediction
// scenario report, as plain text byte-identical to cmd/predict
// (default) or as JSON with ?format=json.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	format := q.Get("format")
	if format != "" && format != "json" && format != "text" {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("format: want text or json, got %q", format))
		return
	}
	sc, err := predictScenarioFor(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	variant := "text"
	if format == "json" {
		variant = "json"
	}
	if s.revalidate(w, r, predictETag(sc.Canonical(), variant)) {
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.gate.Release()
	rep, err := s.predictFor(r.Context(), sc)
	if err != nil {
		s.writeBuildError(w, err)
		return
	}
	if format == "json" {
		writeJSON(w, http.StatusOK, rep)
		return
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeBytes(w, "text/plain; charset=utf-8", buf.Bytes())
}
