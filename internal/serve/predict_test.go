package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/predict"
)

// cheapScenario is a sub-second prediction scenario: synthetic Grid
// hosts skip the cluster simulation entirely.
const cheapScenarioQuery = "system=AuverGrid&hosts=2&days=1&seed=3"

func cheapScenario() predict.Scenario {
	return predict.Scenario{System: "AuverGrid", Hosts: 2, Days: 1, Seed: 3, K: 1}
}

// TestPredictServedBytesIdentical is the /v1/predict determinism
// contract: the plain-text body equals predict.RunScenario +
// WriteText (and hence cmd/predict's stdout, which renders through the
// same path), and the JSON body equals the marshalled report.
func TestPredictServedBytesIdentical(t *testing.T) {
	want, err := predict.RunScenario(cheapScenario())
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	var wantText bytes.Buffer
	if err := want.WriteText(&wantText); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}

	s := New(Config{Base: tinyConfig()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, body := get(t, ts.Client(), ts.URL+"/v1/predict?"+cheapScenarioQuery)
	if status != 200 {
		t.Fatalf("text status = %d, body %s", status, body)
	}
	if !bytes.Equal(body, wantText.Bytes()) {
		t.Errorf("served text differs from RunScenario+WriteText:\nserved:\n%s\nwant:\n%s", body, wantText.Bytes())
	}

	status, body = get(t, ts.Client(), ts.URL+"/v1/predict?"+cheapScenarioQuery+"&format=json")
	if status != 200 {
		t.Fatalf("json status = %d, body %s", status, body)
	}
	if !bytes.Equal(body, wantJSON) {
		t.Errorf("served JSON differs from marshalled report:\nserved: %s\nwant:   %s", body, wantJSON)
	}
}

// TestPredictParamValidation covers the 400 paths: every rejected
// parameter must name itself in the error body.
func TestPredictParamValidation(t *testing.T) {
	s := New(Config{Base: tinyConfig()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct{ query, wantSub string }{
		{"system=Amazon", "system"},
		{"hosts=0", "hosts"},
		{fmt.Sprintf("hosts=%d", maxPredictHosts+1), "hosts"},
		{"days=nope", "days"},
		{fmt.Sprintf("days=%d", maxPredictDays+1), "days"},
		{"k=0", "k"},
		{fmt.Sprintf("k=%d", maxPredictK+1), "k"},
		{"seed=-1", "seed"},
		{"hmm=maybe", "hmm"},
		{"format=csv", "format"},
	}
	for _, tc := range cases {
		status, body := get(t, ts.Client(), ts.URL+"/v1/predict?"+tc.query)
		if status != 400 {
			t.Errorf("GET ?%s: status = %d, want 400 (body %s)", tc.query, status, body)
			continue
		}
		if !strings.Contains(string(body), tc.wantSub) {
			t.Errorf("GET ?%s: error %s does not mention %q", tc.query, body, tc.wantSub)
		}
	}
}

// TestPredictCanonicalDefaults checks that explicit defaults and a bare
// request share one canonical key (one cache slot, one computation).
func TestPredictCanonicalDefaults(t *testing.T) {
	bare, err := predictScenarioFor(url.Values{})
	if err != nil {
		t.Fatalf("bare scenario: %v", err)
	}
	explicit, err := predictScenarioFor(url.Values{
		"system": {"Google"}, "hosts": {"20"}, "days": {"4"}, "seed": {"1"}, "k": {"1"}, "hmm": {"0"},
	})
	if err != nil {
		t.Fatalf("explicit scenario: %v", err)
	}
	if bare.Canonical() != explicit.Canonical() {
		t.Errorf("canonical keys differ: %q vs %q", bare.Canonical(), explicit.Canonical())
	}
}

// TestPredictCachingAndCoalescing checks the request path reuses work:
// a repeated scenario hits the report LRU instead of recomputing, and
// concurrent cold requests coalesce into one flight.
func TestPredictCachingAndCoalescing(t *testing.T) {
	rec := obs.NewRecorder()
	s := New(Config{Base: tinyConfig(), Rec: rec})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body := get(t, ts.Client(), ts.URL+"/v1/predict?"+cheapScenarioQuery)
			if status != 200 {
				t.Errorf("concurrent GET: status = %d, body %s", status, body)
			}
		}()
	}
	wg.Wait()

	reg := rec.Registry()
	hitsBefore := reg.Counter("serve.predict.hit").Value()
	status, _ := get(t, ts.Client(), ts.URL+"/v1/predict?"+cheapScenarioQuery)
	if status != 200 {
		t.Fatalf("warm GET: status = %d", status)
	}
	if got := reg.Counter("serve.predict.hit").Value(); got != hitsBefore+1 {
		t.Errorf("warm GET did not hit the report cache: hit counter %d -> %d", hitsBefore, got)
	}
	if reg.Gauge("serve.predict.ctx.live").Value() != 1 {
		t.Errorf("predict cache live = %v, want 1", reg.Gauge("serve.predict.ctx.live").Value())
	}
}
