package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/obs"
)

// fetchTraceSpans pulls /debug/trace/{id} and decodes the JSONL body.
func fetchTraceSpans(t *testing.T, client *http.Client, base, traceID string) []obs.SpanRecord {
	t.Helper()
	resp, err := client.Get(base + "/debug/trace/" + traceID)
	if err != nil {
		t.Fatalf("GET /debug/trace/%s: %v", traceID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace/%s: status %d", traceID, resp.StatusCode)
	}
	var out []obs.SpanRecord
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec obs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		out = append(out, rec)
	}
	return out
}

// TestColdRequestTraceChain is the tracing acceptance test: one cold
// artifact request must produce one trace whose spans cover the
// handler, the gate wait, the coalescer, the checkpoint probe, the
// experiment run and the artifact cell builds — all sharing the trace
// ID the response echoed, with the parent chain intact, retrievable
// live from /debug/trace/{traceID}.
func TestColdRequestTraceChain(t *testing.T) {
	rec := obs.NewRecorder()
	rec.SeedIDs(42) // deterministic IDs so reruns see identical traces
	store, err := ckpt.NewStore(t.TempDir(), rec.Registry())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Base: tinyConfig(), Rec: rec, Store: store})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	resp, err := client.Get(ts.URL + "/v1/artifacts/fig2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact request: status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if len(traceID) != 32 {
		t.Fatalf("X-Trace-Id = %q, want 32 hex chars", traceID)
	}
	if tp := resp.Header.Get("Traceparent"); !strings.Contains(tp, traceID) {
		t.Errorf("Traceparent %q does not carry trace ID %s", tp, traceID)
	}

	spans := fetchTraceSpans(t, client, ts.URL, traceID)
	byName := make(map[string]obs.SpanRecord, len(spans))
	builds := 0
	for _, sp := range spans {
		if sp.TraceID != traceID {
			t.Fatalf("span %s has trace %s, want %s", sp.Name, sp.TraceID, traceID)
		}
		byName[sp.Name] = sp
		if strings.HasPrefix(sp.Name, "build:") {
			builds++
		}
	}
	root, ok := byName["GET artifacts"]
	if !ok {
		t.Fatalf("no root handler span; got %v", names(spans))
	}
	if root.ParentID != "" || root.Cat != obs.CatRequest {
		t.Errorf("root span: parent %q cat %q, want root request span", root.ParentID, root.Cat)
	}
	for _, want := range []struct{ name, parent string }{
		{"gate:wait", root.SpanID},
		{"coalesce:fig2", root.SpanID},
		{"ckpt:load:fig2", byName["coalesce:fig2"].SpanID},
		{"exp:fig2", byName["coalesce:fig2"].SpanID},
		{"ckpt:save:fig2", byName["coalesce:fig2"].SpanID},
	} {
		sp, ok := byName[want.name]
		if !ok {
			t.Errorf("span %s missing from trace; got %v", want.name, names(spans))
			continue
		}
		if sp.ParentID != want.parent {
			t.Errorf("span %s parent = %q, want %q", want.name, sp.ParentID, want.parent)
		}
	}
	if builds == 0 {
		t.Errorf("no build:* cell spans in trace; got %v", names(spans))
	}
	for _, sp := range spans {
		if strings.HasPrefix(sp.Name, "build:") && sp.ParentID != byName["exp:fig2"].SpanID {
			t.Errorf("build span %s parent = %q, want the exp span %q", sp.Name, sp.ParentID, byName["exp:fig2"].SpanID)
		}
	}

	// Lane discipline: handler-side spans share the request's lane; the
	// build side (which runs on the coalescer's goroutine and may
	// outlive the request) shares one pinned lane of its own.
	buildLane := byName["exp:fig2"].TID
	for _, sp := range spans {
		switch {
		case sp.Name == "gate:wait" || strings.HasPrefix(sp.Name, "coalesce:"):
			if sp.TID != root.TID {
				t.Errorf("span %s on lane %d, want the request lane %d", sp.Name, sp.TID, root.TID)
			}
		case strings.HasPrefix(sp.Name, "build:") || strings.HasPrefix(sp.Name, "ckpt:") || strings.HasPrefix(sp.Name, "exp:"):
			if sp.TID != buildLane {
				t.Errorf("span %s on lane %d, want the build lane %d", sp.Name, sp.TID, buildLane)
			}
		}
	}

	// A warm repeat is a new, smaller trace: no exp/build spans.
	resp2, err := client.Get(ts.URL + "/v1/artifacts/fig2")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	warmID := resp2.Header.Get("X-Trace-Id")
	if warmID == traceID {
		t.Fatal("warm request reused the cold request's trace ID")
	}
	for _, sp := range fetchTraceSpans(t, client, ts.URL, warmID) {
		if strings.HasPrefix(sp.Name, "exp:") || strings.HasPrefix(sp.Name, "build:") {
			t.Errorf("warm trace contains build-side span %s", sp.Name)
		}
	}
}

func names(spans []obs.SpanRecord) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// TestIncomingTraceparentJoined: a request with a valid traceparent
// header must join that trace rather than rooting a new one, and the
// malformed variants must not.
func TestIncomingTraceparentJoined(t *testing.T) {
	rec := obs.NewRecorder()
	rec.SeedIDs(7)
	s := New(Config{Base: tinyConfig(), Rec: rec})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const upstream = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest("GET", ts.URL+"/v1/experiments", nil)
	req.Header.Set("Traceparent", "00-"+upstream+"-00f067aa0ba902b7-01")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != upstream {
		t.Fatalf("X-Trace-Id = %q, want the upstream trace %q", got, upstream)
	}
	spans := rec.TraceSpans(upstream)
	if len(spans) == 0 {
		t.Fatal("no spans recorded under the upstream trace ID")
	}
	if root := spans[len(spans)-1]; root.ParentID != "00f067aa0ba902b7" {
		t.Errorf("handler span parent = %q, want the upstream span ID", root.ParentID)
	}

	for _, bad := range []string{
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero trace
		"ff-" + upstream + "-00f067aa0ba902b7-01",                 // version ff
		"00-" + upstream + "-00f067aa0ba902b7",                    // missing flags
		"garbage",
	} {
		req, _ := http.NewRequest("GET", ts.URL+"/v1/experiments", nil)
		req.Header.Set("Traceparent", bad)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Trace-Id"); got == upstream || len(got) != 32 {
			t.Errorf("traceparent %q: X-Trace-Id = %q, want a fresh 32-char trace", bad, got)
		}
	}
}

// TestCoalescedTraceLinksLeader: when a request joins another request's
// in-flight build, its own trace must record a link to the leader's
// span — two distinct traces, cross-referenced.
func TestCoalescedTraceLinksLeader(t *testing.T) {
	st := &stubState{entered: make(chan struct{}, 1), release: make(chan struct{})}
	rec := obs.NewRecorder()
	rec.SeedIDs(11)
	s := New(Config{
		Base:        tinyConfig(),
		Experiments: []core.Experiment{stubExperiment("stub", st)},
		Rec:         rec,
		MaxInflight: 8,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	headers := make([]http.Header, 2)
	var wg sync.WaitGroup
	launch := func(i int) {
		defer wg.Done()
		resp, err := client.Get(ts.URL + "/v1/artifacts/stub")
		if err != nil {
			t.Errorf("request %d: %v", i, err)
			return
		}
		resp.Body.Close()
		headers[i] = resp.Header
	}
	wg.Add(1)
	go launch(0)
	<-st.entered // leader is inside the build
	wg.Add(1)
	go launch(1)
	e := s.entryFor(context.Background(), tinyConfig())
	waitFor(t, "one coalesced waiter", func() bool { return e.sf.waiting("stub") == 1 })
	close(st.release)
	wg.Wait()

	t0, t1 := headers[0].Get("X-Trace-Id"), headers[1].Get("X-Trace-Id")
	if t0 == "" || t1 == "" || t0 == t1 {
		t.Fatalf("trace IDs %q vs %q: want two distinct traces", t0, t1)
	}
	// Exactly one of the two traces carries a link, and it points into
	// the other trace (the leader's). Which request led is scheduling-
	// dependent only in ID order, not in structure.
	var links []obs.SpanRecord
	leaderTrace := ""
	for _, id := range []string{t0, t1} {
		for _, sp := range rec.TraceSpans(id) {
			if sp.LinkSpanID != "" {
				links = append(links, sp)
			}
			if strings.HasPrefix(sp.Name, "exp:") {
				leaderTrace = id
			}
		}
	}
	if len(links) != 1 {
		t.Fatalf("found %d linked spans, want exactly 1", len(links))
	}
	link := links[0]
	if link.LinkTraceID != leaderTrace {
		t.Errorf("link points at trace %s, want the leader's %s", link.LinkTraceID, leaderTrace)
	}
	if link.TraceID == leaderTrace {
		t.Errorf("the linking span is in the leader's own trace %s", leaderTrace)
	}
	// And the link target is the leader's coalesce span specifically.
	found := false
	for _, sp := range rec.TraceSpans(leaderTrace) {
		if sp.SpanID == link.LinkSpanID && strings.HasPrefix(sp.Name, "coalesce:") {
			found = true
		}
	}
	if !found {
		t.Errorf("link target %s is not the leader's coalesce span", link.LinkSpanID)
	}
	if got := st.runs.Load(); got != 1 {
		t.Fatalf("stub ran %d times, want 1", got)
	}
}

// TestServedBytesIdenticalTraced extends the determinism contract to
// instrumented requests: a traced cold build (external traceparent,
// full span chain, access log, latency sketches) must serve bytes
// identical to an untraced server's.
func TestServedBytesIdenticalTraced(t *testing.T) {
	cfg := tinyConfig()

	plain := New(Config{Base: cfg})
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	_, want := get(t, tsPlain.Client(), tsPlain.URL+"/v1/artifacts/fig2")

	var accessBuf syncBuffer
	rec := obs.NewRecorder()
	rec.SeedIDs(3)
	traced := New(Config{Base: cfg, Rec: rec, AccessLog: &accessBuf})
	tsTraced := httptest.NewServer(traced.Handler())
	defer tsTraced.Close()
	req, _ := http.NewRequest("GET", tsTraced.URL+"/v1/artifacts/fig2", nil)
	req.Header.Set("Traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	resp, err := tsTraced.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, resp)
	if !bytes.Equal(got, want) {
		t.Error("traced cold build served different bytes than an untraced server")
	}
	if accessBuf.Len() == 0 {
		t.Error("traced server wrote no access log record")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the access logger writes
// from request goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAccessLogSampling pins the head-based rule: with -access-log-
// sample n, exactly the 1st, n+1st, 2n+1st... requests are logged,
// deterministically.
func TestAccessLogSampling(t *testing.T) {
	var buf syncBuffer
	s := New(Config{Base: tinyConfig(), AccessLog: &buf, AccessLogSample: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 9; i++ {
		code, _ := get(t, ts.Client(), ts.URL+"/healthz")
		if code != http.StatusOK {
			t.Fatalf("healthz %d: status %d", i, code)
		}
	}
	var seqs []uint64
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var rec struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("access line %q: %v", sc.Text(), err)
		}
		seqs = append(seqs, rec.Seq)
	}
	if len(seqs) != 3 || seqs[0] != 1 || seqs[1] != 4 || seqs[2] != 7 {
		t.Errorf("sampled seqs = %v, want [1 4 7]", seqs)
	}
}

// TestDebugTraceDuringDrain: the observability endpoints must keep
// answering while a drain is in progress — that is exactly when an
// operator needs them — while regular traffic 503s.
func TestDebugTraceDuringDrain(t *testing.T) {
	rec := obs.NewRecorder()
	s := New(Config{Base: tinyConfig(), Rec: rec})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	if code, _ := get(t, client, ts.URL+"/v1/experiments"); code != http.StatusOK {
		t.Fatalf("pre-drain request failed: %d", code)
	}
	s.BeginDrain()
	for path, want := range map[string]int{
		"/metrics":              http.StatusOK,
		"/metrics?format=jsonl": http.StatusOK,
		"/debug/trace":          http.StatusOK,
		"/healthz":              http.StatusServiceUnavailable,
		"/v1/experiments":       http.StatusServiceUnavailable,
		"/v1/artifacts/fig2":    http.StatusServiceUnavailable,
	} {
		if code, body := get(t, client, ts.URL+path); code != want {
			t.Errorf("during drain GET %s = %d, want %d (%s)", path, code, want, body)
		}
	}
}

// TestTraceEndpointErrors covers the /debug/trace contract edges.
func TestTraceEndpointErrors(t *testing.T) {
	rec := obs.NewRecorder()
	s := New(Config{Base: tinyConfig(), Rec: rec})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	for path, want := range map[string]int{
		"/debug/trace/deadbeefdeadbeefdeadbeefdeadbeef": http.StatusNotFound,
		"/debug/trace?since=notanumber":                 http.StatusBadRequest,
		"/debug/trace?format=yaml":                      http.StatusBadRequest,
		"/debug/trace?format=chrome":                    http.StatusOK,
	} {
		if code, body := get(t, client, ts.URL+path); code != want {
			t.Errorf("GET %s = %d, want %d (%s)", path, code, want, body)
		}
	}

	// Incremental export: ?since=Seq returns only newer spans.
	if code, _ := get(t, client, ts.URL+"/v1/experiments"); code != http.StatusOK {
		t.Fatal("experiments request failed")
	}
	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	last := spans[len(spans)-1].Seq
	code, body := get(t, client, ts.URL+"/debug/trace?since="+utoa(last))
	if code != http.StatusOK {
		t.Fatalf("since scrape: %d", code)
	}
	// Everything up to `last` is filtered; only spans recorded after it
	// (by the /debug/trace requests themselves) may appear.
	if strings.Contains(string(body), `"seq":`+utoa(last)+",") {
		t.Errorf("since=%d export still contains seq %d", last, last)
	}
}

func utoa(v uint64) string {
	var b [20]byte
	i := len(b)
	for {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			return string(b[i:])
		}
	}
}
