package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestGateAdmitsUpToInflight(t *testing.T) {
	g := NewGate(2, 0, nil)
	for i := 0; i < 2; i++ {
		if err := g.Acquire(context.Background()); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	// No queue: the third caller is rejected, not parked.
	if err := g.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("acquire beyond capacity: %v, want ErrSaturated", err)
	}
	g.Release()
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestGateQueuesThenRejects(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGate(1, 1, reg)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	queued := make(chan error, 1)
	go func() { queued <- g.Acquire(context.Background()) }()
	waitFor(t, "one queued waiter", func() bool { return reg.Gauge("serve.gate.queued").Value() == 1 })

	if err := g.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("full queue: %v, want ErrSaturated", err)
	}
	if got := reg.Counter("serve.gate.rejected").Value(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	g.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter: %v, want admission", err)
	}
	if got := reg.Gauge("serve.gate.inflight").Value(); got != 1 {
		t.Errorf("inflight gauge = %v, want 1", got)
	}
}

func TestGateQueuedCallerHonorsContext(t *testing.T) {
	g := NewGate(1, 4, nil)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- g.Acquire(ctx) }()
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter: %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	// The abandoned wait must not leak queue accounting: the slot can
	// still be released and re-acquired.
	g.Release()
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire after cancelled wait: %v", err)
	}
}
