// Package serve is the artifact-serving layer of the reproduction: a
// long-running HTTP daemon that exposes every experiment artifact —
// figures, tables, metric summaries, full markdown reports — on top of
// the existing core.Context lazy-cell cache.
//
// The request path is: drain check → admission gate (bounded
// concurrency + bounded queue, 429 beyond) → per-scenario context
// lookup (LRU with a hard cap, keyed by the canonical config) →
// singleflight coalescer (N concurrent requests for a cold artifact
// run core.RunOne exactly once, observable as a single
// core.cell.*.miss) → deterministic render. Builds run under the
// server's lifetime context, so a disconnecting client never aborts a
// build other requests are waiting on; checkpoint stores created by
// cmd/repro -checkpoint-dir warm-start the daemon, because RunOne
// shares core.CheckpointKey with the batch runner.
//
// Determinism contract: for the same config, the bytes served here are
// byte-identical to the artifacts cmd/repro writes — CSV via the same
// report.Table encoder, .dat via the same report.Series encoder,
// markdown via the same core.WriteMarkdownReport — enforced by
// TestServedBytesIdentical.
//
// The daemon also serves live host-load predictions at GET /v1/predict
// (see predict.go), reusing the same gate, singleflight coalescing and
// LRU machinery; the plain-text body is byte-identical to cmd/predict's
// output for the same scenario, enforced by
// TestPredictServedBytesIdentical.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/replica"
)

// Scenario-parameter guard rails: the query route lets anyone ask for
// an arbitrary config, so bound it to something a single daemon can
// actually simulate rather than letting one URL OOM the process.
const (
	maxMachinesParam = 50000
	maxDaysParam     = 366
)

// Defaults for the operational knobs (0 in Config selects them).
const (
	defaultMaxQueue    = 64
	defaultMaxContexts = 8
)

// Config assembles a Server.
type Config struct {
	// Base is the scenario served when a request carries no overrides;
	// query parameters derive variants from it.
	Base core.Config

	// Experiments overrides the artifact registry (tests inject stubs
	// here). nil serves the paper set plus the extensions, with the
	// default report covering the paper set only — exactly what an
	// uninstrumented `repro -markdown` emits.
	Experiments []core.Experiment

	// Store, when enabled, warm-starts artifacts from checkpoints and
	// writes new builds back, so a restart serves from disk instead of
	// re-simulating. Keys are shared with cmd/repro -checkpoint-dir.
	Store *ckpt.Store

	// Replica, when set, routes every artifact build through the
	// cross-replica coordinator: two-tier cache lookup, lease-based
	// distributed singleflight, peer cache fill. The coordinator owns
	// all checkpoint I/O on this path (builds run with a nil store), so
	// Store should be the same store the coordinator wraps. nil keeps
	// the single-replica behavior exactly.
	Replica *replica.Coordinator

	// Rec receives cell/build/experiment instrumentation from every
	// context the daemon creates. nil allocates a fresh recorder.
	Rec *obs.Recorder

	// BaseContext is the server's lifetime context: artifact builds run
	// under it (never under a single request), so cancelling it is the
	// hard stop that aborts in-flight builds. nil means Background.
	BaseContext context.Context

	// MaxInflight bounds concurrently admitted artifact requests
	// (<= 0: GOMAXPROCS); MaxQueue bounds how many more may wait
	// (0: default 64; negative: no queue).
	MaxInflight int
	MaxQueue    int

	// MaxContexts caps the scenario LRU (0: default 8).
	MaxContexts int

	// BuildTimeout, when positive, is the per-artifact build deadline.
	BuildTimeout time.Duration

	// AccessLog, when set, receives one JSONL record per served request
	// (schema: accessRecord). AccessLogSample keeps every Nth request
	// (head-based by arrival index; 0 or 1 logs everything).
	AccessLog       io.Writer
	AccessLogSample int

	// TraceBuffer caps the recorder's span ring so a long-serving
	// daemon holds bounded trace history (0: default 4096; negative:
	// leave the recorder's existing policy untouched — batch tests that
	// share a recorder with a CLI run use this).
	TraceBuffer int
}

// defaultTraceBuffer is the span-ring capacity when Config.TraceBuffer
// is zero. At ~200 bytes per SpanRecord this holds the latest few
// thousand request trees in ~1 MB.
const defaultTraceBuffer = 4096

// Server is the daemon. Create it with New; it is safe for concurrent
// use by any number of HTTP requests.
type Server struct {
	base         core.Config
	baseCtx      context.Context
	rec          *obs.Recorder
	reg          *obs.Registry
	store        *ckpt.Store
	replica      *replica.Coordinator
	gate         *Gate
	lru          *lru[*entry]
	buildTimeout time.Duration

	predictSF    group
	predictCache *lru[*predict.ScenarioReport]

	exps       map[string]core.Experiment
	allList    []core.Experiment // every servable artifact, registry order
	reportList []core.Experiment // default /v1/report set
	extList    []core.Experiment // appended with ?extensions=1

	mux      *http.ServeMux
	draining atomic.Bool
	start    time.Time

	latSketch *latencySketches
	accessLog *accessLogger
	accessSeq atomic.Uint64

	reqTotal    *obs.Counter
	reqInflight *obs.Gauge
	reqLatency  *obs.Histogram
	coShared    *obs.Counter
	artifactHit *obs.Counter
	predictHit  *obs.Counter
}

// entry is one cached scenario: the shared core.Context whose lazy
// cells memoize the heavy artifacts, a singleflight group coalescing
// concurrent builds per experiment, and the finished results.
type entry struct {
	cfg  core.Config
	cctx *core.Context
	sf   group

	mu      sync.RWMutex
	results map[string]*core.Result
}

// reqLatencyUppers buckets whole-request wall time (seconds).
var reqLatencyUppers = []float64{0.001, 0.01, 0.1, 0.5, 1, 5, 15, 60, 300}

// New assembles a server from cfg.
func New(cfg Config) *Server {
	rec := cfg.Rec
	if rec == nil {
		rec = obs.NewRecorder()
	}
	reg := rec.Registry()
	baseCtx := cfg.BaseContext
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	maxQueue := cfg.MaxQueue
	if maxQueue == 0 {
		maxQueue = defaultMaxQueue
	}
	maxContexts := cfg.MaxContexts
	if maxContexts <= 0 {
		maxContexts = defaultMaxContexts
	}
	s := &Server{
		base:         cfg.Base,
		baseCtx:      baseCtx,
		rec:          rec,
		reg:          reg,
		store:        cfg.Store,
		replica:      cfg.Replica,
		gate:         NewGate(cfg.MaxInflight, maxQueue, reg),
		lru:          newLRU[*entry](maxContexts, reg, "serve.ctx"),
		predictCache: newLRU[*predict.ScenarioReport](maxContexts, reg, "serve.predict.ctx"),
		buildTimeout: cfg.BuildTimeout,
		exps:         make(map[string]core.Experiment),
		start:        time.Now(),
		latSketch:    newLatencySketches(),
		accessLog:    newAccessLogger(cfg.AccessLog, cfg.AccessLogSample),
		reqTotal:     reg.Counter("serve.req.total"),
		reqInflight:  reg.Gauge("serve.req.inflight"),
		reqLatency:   reg.Histogram("serve.req.latency_seconds", reqLatencyUppers),
		coShared:     reg.Counter("serve.coalesce.shared"),
		artifactHit:  reg.Counter("serve.artifact.hit"),
		predictHit:   reg.Counter("serve.predict.hit"),
	}
	if cfg.Experiments != nil {
		s.allList = cfg.Experiments
		s.reportList = cfg.Experiments
	} else {
		s.reportList = core.Experiments()
		s.extList = core.Extensions()
		s.allList = append(append([]core.Experiment(nil), s.reportList...), s.extList...)
	}
	for _, e := range s.allList {
		s.exps[e.ID] = e
	}

	// Per-endpoint latency quantiles are computed at scrape time from
	// the live sketches; the registry pulls them via this hook.
	reg.AddSnapshotFunc(s.latSketch.snapshots)

	// Bound the span ring so trace history cannot grow with uptime.
	switch {
	case cfg.TraceBuffer > 0:
		rec.SetSpanCap(cfg.TraceBuffer)
	case cfg.TraceBuffer == 0:
		rec.SetSpanCap(defaultTraceBuffer)
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/trace", s.handleTraceDump)
	s.mux.HandleFunc("GET /debug/trace/{traceID}", s.handleTraceByID)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/artifacts/{id}", s.handleArtifact)
	s.mux.HandleFunc("GET /v1/artifacts/{id}/tables/{table}", s.handleTable)
	s.mux.HandleFunc("GET /v1/artifacts/{id}/series/{series}", s.handleSeries)
	s.mux.HandleFunc("GET /v1/predict", s.handlePredict)
	s.mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheFill)
	return s
}

// Handler returns the daemon's root handler: per-request tracing,
// accounting, access logging and the drain check in front of the route
// mux.
//
// Trace contract: an incoming `traceparent` header (W3C trace-context)
// makes the request span a child of the remote trace; otherwise the
// request roots a fresh trace. Either way the response carries
// `X-Trace-Id` (and a `Traceparent` continuation), and every span the
// request produces — gate wait, coalescing, experiment run, cell
// builds, checkpoint I/O — shares that trace ID, retrievable from
// GET /debug/trace/{traceID}.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.reqTotal.Add(1)
		seq := s.accessSeq.Add(1)
		endpoint := endpointOf(r.URL.Path)

		ctx := r.Context()
		if tp := r.Header.Get("Traceparent"); tp != "" {
			if sc, ok := obs.ParseTraceparent(tp); ok {
				ctx = obs.ContextWithSpan(ctx, sc)
			}
		}
		ri := &obs.ReqInfo{}
		ctx = obs.ContextWithReqInfo(ctx, ri)
		sp, ctx := s.rec.StartRequestSpan(ctx, r.Method+" "+endpoint, obs.CatRequest)
		if sc := sp.Context(); sc.Valid() {
			w.Header().Set("X-Trace-Id", sc.TraceID)
			w.Header().Set("Traceparent", sc.Traceparent())
		}
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w}
		s.reqInflight.Add(1)
		start := time.Now()
		defer func() {
			dur := time.Since(start)
			s.reqInflight.Add(-1)
			s.reqLatency.Observe(dur.Seconds())
			s.latSketch.observe(endpoint, dur)
			sp.End()
			if sw.status == 0 {
				sw.status = http.StatusOK // implicit 200: body-less handler
			}
			co, leader, ctxCached, ckptHit, ckptMiss := ri.Flags()
			s.accessLog.log(accessRecord{
				TS:        start.UTC().Format(time.RFC3339Nano),
				Method:    r.Method,
				Path:      r.URL.Path,
				Query:     r.URL.RawQuery,
				Endpoint:  endpoint,
				Status:    sw.status,
				Bytes:     sw.bytes,
				LatencyUS: dur.Microseconds(),
				TraceID:   sp.Context().TraceID,
				GateUS:    ri.GateWaitUS(),
				Coalesced: co,
				Leader:    leader,
				CtxCached: ctxCached,
				CkptHit:   ckptHit,
				CkptMiss:  ckptMiss,
				Seq:       seq,
			})
		}()

		if s.draining.Load() && !drainExempt(endpoint) {
			writeError(sw, http.StatusServiceUnavailable, "draining: not accepting new requests")
			return
		}
		s.mux.ServeHTTP(sw, r)
	})
}

// BeginDrain flips the server into drain mode: subsequent
// build-triggering requests — and /healthz, so load balancers stop
// routing here — get 503 while requests already past the check run to
// completion. /metrics and /debug/trace/* stay up (see drainExempt):
// the terminating replica's final scrape is the one that matters.
// The caller follows up with http.Server.Shutdown to wait for the
// stragglers.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Prewarm builds (or loads from the checkpoint store) every registered
// artifact for the base scenario, in registry order, and returns how
// many are warm. It is meant to run in the background after the
// listener is up: requests arriving mid-warm simply coalesce with it.
func (s *Server) Prewarm(ctx context.Context) (int, error) {
	e := s.entryFor(ctx, s.base)
	for i, exp := range s.allList {
		if _, err := s.result(ctx, e, exp); err != nil {
			return i, err
		}
	}
	return len(s.allList), nil
}

// entryFor returns the scenario entry for cfg, creating (and LRU-ing)
// it as needed. A cache hit is noted on the request's annotation bag
// for the access log.
func (s *Server) entryFor(ctx context.Context, cfg core.Config) *entry {
	e, hit := s.lru.getOrCreate(cfg.Canonical(), func() *entry {
		c := core.NewContext(cfg)
		c.SetRecorder(s.rec)
		return &entry{cfg: cfg, cctx: c, results: make(map[string]*core.Result)}
	})
	if hit {
		obs.ReqInfoFrom(ctx).MarkCtxCached()
	}
	return e
}

// result returns exp's artifact for the entry's scenario, serving the
// memoized result when warm and otherwise coalescing all concurrent
// cold requests into one core.RunOne under the server's lifetime
// context. ctx is the requester's wait budget only.
//
// Tracing: a traced request wraps the whole thing in a
// coalesce:<expID> span. If this caller becomes the build leader, the
// build context — the server's lifetime context, never the request's —
// adopts that span, so the exp:/build:/ckpt: spans below RunOne join
// this request's trace. If it joins another request's in-flight build
// instead, its span records a link to the leader's span.
func (s *Server) result(ctx context.Context, e *entry, exp core.Experiment) (*core.Result, error) {
	e.mu.RLock()
	r, ok := e.results[exp.ID]
	e.mu.RUnlock()
	if ok {
		s.artifactHit.Add(1)
		return r, nil
	}
	ri := obs.ReqInfoFrom(ctx)
	var csp *obs.Span
	if _, traced := obs.SpanFromContext(ctx); traced {
		csp, ctx = s.rec.StartSpan(ctx, "coalesce:"+exp.ID, obs.CatServe)
		defer csp.End()
	}
	mySC := csp.Context()
	v, shared, leaderSC, err := e.sf.DoLinked(ctx, exp.ID, mySC, func() (any, error) {
		ri.MarkLeader()
		buildCtx := s.baseCtx
		if mySC.Valid() {
			buildCtx = obs.ContextWithSpan(buildCtx, mySC)
		}
		if ri != nil {
			buildCtx = obs.ContextWithReqInfo(buildCtx, ri)
		}
		res, err := s.runArtifact(buildCtx, e, exp)
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.results[exp.ID] = res
		e.mu.Unlock()
		return res, nil
	})
	if shared {
		s.coShared.Add(1)
		ri.MarkCoalesced()
		if leaderSC.Valid() && leaderSC != mySC {
			csp.Link(leaderSC)
		}
	}
	if err != nil {
		return nil, err
	}
	return v.(*core.Result), nil
}

// runArtifact produces one artifact under the in-process singleflight
// leader. Single-replica mode is core.RunOne against the local store.
// With a coordinator, the build instead goes through the fleet-wide
// path — local tier, shared store, peer cache fill, lease-guarded build
// — and the coordinator owns all store I/O, so RunOne gets a nil store:
// exactly one layer writes checkpoints.
func (s *Server) runArtifact(ctx context.Context, e *entry, exp core.Experiment) (*core.Result, error) {
	if s.replica == nil {
		return core.RunOne(ctx, e.cctx, exp, s.buildTimeout, s.store)
	}
	key := core.CheckpointKey(e.cfg, exp.ID)
	v, src, err := s.replica.Do(ctx, key,
		func() any { return new(core.Result) },
		func(bctx context.Context) (any, error) {
			return core.RunOne(bctx, e.cctx, exp, s.buildTimeout, nil)
		})
	if err != nil {
		return nil, err
	}
	ri := obs.ReqInfoFrom(ctx)
	switch src {
	case replica.SourceBuild, replica.SourceBuildUnleased:
		ri.MarkCkptMiss()
	default:
		ri.MarkCkptHit()
	}
	return v.(*core.Result), nil
}

// configFor derives the request's scenario from the base config and
// the query overrides ?seed=&machines=&days=&workload_days=, bounded
// by the parameter guard rails.
func (s *Server) configFor(q url.Values) (core.Config, error) {
	cfg := s.base
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return cfg, fmt.Errorf("seed: %q is not a uint64", v)
		}
		cfg.Seed = n
	}
	intParam := func(name string, max int) (int, bool, error) {
		v := q.Get(name)
		if v == "" {
			return 0, false, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > max {
			return 0, false, fmt.Errorf("%s: want an integer in [1, %d], got %q", name, max, v)
		}
		return n, true, nil
	}
	if n, ok, err := intParam("machines", maxMachinesParam); err != nil {
		return cfg, err
	} else if ok {
		cfg.Machines = n
	}
	if n, ok, err := intParam("days", maxDaysParam); err != nil {
		return cfg, err
	} else if ok {
		cfg.SimHorizon = int64(n) * 86400
	}
	if n, ok, err := intParam("workload_days", maxDaysParam); err != nil {
		return cfg, err
	} else if ok {
		cfg.WorkloadHorizon = int64(n) * 86400
	}
	return cfg, nil
}

// admit passes the request through the gate, writing the rejection
// (429 on saturation, the context cause otherwise) itself. On true the
// caller holds a slot and must gate.Release. Traced requests record
// the wait as a gate:wait child span; every request records it on its
// annotation bag for the access log.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	ctx := r.Context()
	var gsp *obs.Span
	if _, traced := obs.SpanFromContext(ctx); traced {
		// The returned context is discarded on purpose: the wait is a
		// leaf, not an ancestor of the build spans.
		gsp, _ = s.rec.StartSpan(ctx, "gate:wait", obs.CatServe)
	}
	start := time.Now()
	err := s.gate.Acquire(ctx)
	gsp.End()
	obs.ReqInfoFrom(ctx).SetGateWait(time.Since(start))
	if err == nil {
		return true
	}
	if errors.Is(err, ErrSaturated) {
		writeError(w, http.StatusTooManyRequests, err.Error())
	} else {
		writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("admission wait aborted: %v", err))
	}
	return false
}

// healthStatus is the /healthz payload.
type healthStatus struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Experiments   int     `json:"experiments"`
	Contexts      int     `json:"contexts"`
	Checkpoints   int     `json:"checkpoints"`

	// Multi-replica fields, present only when a coordinator is wired.
	Replica  string   `json:"replica,omitempty"`
	Peers    int      `json:"peers,omitempty"`
	Degraded []string `json:"degraded,omitempty"`
}

// handleHealthz reports liveness. A degraded replica — shared store
// unwritable, lease directory unreachable — still answers 200 with
// status "degraded" and the reasons: it is serving correctly from its
// local tier, and flipping the health check would tell the load
// balancer to remove the one replica that still has the bytes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	keys, _ := s.store.Keys() // best-effort: an unreadable dir reads as 0 warm
	hs := healthStatus{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Experiments:   len(s.allList),
		Contexts:      s.lru.len(),
		Checkpoints:   len(keys),
	}
	if s.replica != nil {
		hs.Replica = s.replica.ID()
		hs.Peers = len(s.replica.Peers())
		hs.Degraded = s.replica.Degraded()
		if len(hs.Degraded) > 0 {
			hs.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, hs)
}

// handleCacheFill serves GET /v1/cache/{key}: the raw checkpoint
// payload for a content-addressed key, for sibling replicas filling
// their caches. It answers only from this replica's own tiers — never
// by building, never by asking peers — so fills cannot cascade. The
// endpoint is drain-exempt: a terminating replica's warm cache is
// exactly what its siblings want to copy out before it goes.
func (s *Server) handleCacheFill(w http.ResponseWriter, r *http.Request) {
	if s.replica == nil {
		writeError(w, http.StatusNotFound, "not running in multi-replica mode")
		return
	}
	key := r.PathValue("key")
	if !validCacheKey(key) {
		writeError(w, http.StatusBadRequest, "key: want a 64-char lowercase hex content address")
		return
	}
	payload, ok := s.replica.ServeLocal(key)
	if !ok {
		writeError(w, http.StatusNotFound, "key not cached on this replica")
		return
	}
	writeBytes(w, "application/json", payload)
}

// validCacheKey guards the cache-fill path parameter: checkpoint keys
// are exactly 64 lowercase hex digits (SHA-256), and the key reaches
// filepath.Join inside the store, so anything else is rejected before
// it can traverse.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleMetrics serves the registry snapshot. Prometheus text
// exposition is the default; the PR5 JSONL format stays available via
// ?format=jsonl or `Accept: application/x-ndjson` for existing
// scrapers. Write errors mean the client went away mid-snapshot; there
// is nobody left to report them to.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "application/x-ndjson") {
		format = "jsonl"
	}
	switch format {
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = s.reg.WriteJSONL(w)
	case "", "prom", "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, s.reg.Snapshot())
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("format: want prom or jsonl, got %q", format))
	}
}

// experimentInfo is one /v1/experiments row.
type experimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	infos := make([]experimentInfo, len(s.allList))
	for i, e := range s.allList {
		infos[i] = experimentInfo{ID: e.ID, Title: e.Title}
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	exp, ok := s.exps[r.PathValue("id")]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown experiment %q", r.PathValue("id")))
		return
	}
	format := r.URL.Query().Get("format")
	if format != "" && format != "json" && format != "md" {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("format: want json or md, got %q", format))
		return
	}
	cfg, err := s.configFor(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	variant := "json"
	if format == "md" {
		variant = "md"
	}
	if s.revalidate(w, r, artifactETag(cfg, exp.ID, variant)) {
		return
	}
	res, ok := s.buildFor(w, r, cfg, exp)
	if !ok {
		return
	}
	if format == "md" {
		var buf bytes.Buffer
		if err := core.WriteResultMarkdown(&buf, res); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeBytes(w, "text/markdown; charset=utf-8", buf.Bytes())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	exp, ok := s.exps[r.PathValue("id")]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown experiment %q", r.PathValue("id")))
		return
	}
	cfg, err := s.configFor(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	want := r.PathValue("table")
	if s.revalidate(w, r, artifactETag(cfg, exp.ID, "csv:"+want)) {
		return
	}
	res, ok := s.buildFor(w, r, cfg, exp)
	if !ok {
		return
	}
	for _, tbl := range res.Tables {
		if tbl.ID != want {
			continue
		}
		var buf bytes.Buffer
		if err := tbl.WriteCSV(&buf); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeBytes(w, "text/csv; charset=utf-8", buf.Bytes())
		return
	}
	writeError(w, http.StatusNotFound, fmt.Sprintf("experiment %s has no table %q", exp.ID, want))
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	exp, ok := s.exps[r.PathValue("id")]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown experiment %q", r.PathValue("id")))
		return
	}
	cfg, err := s.configFor(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	want := r.PathValue("series")
	if s.revalidate(w, r, artifactETag(cfg, exp.ID, "dat:"+want)) {
		return
	}
	res, ok := s.buildFor(w, r, cfg, exp)
	if !ok {
		return
	}
	for _, ser := range res.Series {
		if ser.ID != want {
			continue
		}
		var buf bytes.Buffer
		if err := ser.WriteDAT(&buf); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeBytes(w, "text/plain; charset=utf-8", buf.Bytes())
		return
	}
	writeError(w, http.StatusNotFound, fmt.Sprintf("experiment %s has no series %q", exp.ID, want))
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	format := q.Get("format")
	if format != "" && format != "json" && format != "md" {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("format: want json or md, got %q", format))
		return
	}
	exps := s.reportList
	if v := q.Get("extensions"); v == "1" || v == "true" {
		exps = append(append([]core.Experiment(nil), exps...), s.extList...)
	}
	cfg, err := s.configFor(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	variant := "md"
	if format == "json" {
		variant = "json"
	}
	if s.revalidate(w, r, reportETag(cfg, exps, variant)) {
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.gate.Release()
	e := s.entryFor(r.Context(), cfg)
	results := make([]*core.Result, len(exps))
	for i, exp := range exps {
		res, err := s.result(r.Context(), e, exp)
		if err != nil {
			s.writeBuildError(w, err)
			return
		}
		results[i] = res
	}
	if format == "json" {
		writeJSON(w, http.StatusOK, results)
		return
	}
	var buf bytes.Buffer
	// nil timing on purpose: served reports match uninstrumented CLI
	// reports byte for byte.
	if err := core.WriteMarkdownReport(&buf, cfg, results, nil); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeBytes(w, "text/markdown; charset=utf-8", buf.Bytes())
}

// buildFor is the shared admission → coalesced-build prefix of every
// artifact handler (the handler has already parsed cfg, which the ETag
// derivation needed first). ok=false means the response has already
// been written.
func (s *Server) buildFor(w http.ResponseWriter, r *http.Request, cfg core.Config, exp core.Experiment) (*core.Result, bool) {
	if !s.admit(w, r) {
		return nil, false
	}
	defer s.gate.Release()
	res, err := s.result(r.Context(), s.entryFor(r.Context(), cfg), exp)
	if err != nil {
		s.writeBuildError(w, err)
		return nil, false
	}
	return res, true
}

// writeBuildError maps a build failure onto a status: deadline → 504,
// cancellation (requester gone or server stopping) → 503, anything
// else → 500.
func (s *Server) writeBuildError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// writeJSON marshals v and writes it with status. Marshal failures
// (impossible for the fixed payload types short of NaN metrics) become
// a 500 before any body byte is written.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("encode response: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
}

// writeBytes writes a fully rendered body with its content type.
func writeBytes(w http.ResponseWriter, contentType string, b []byte) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.Write(b)
}

// writeError writes a JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: msg})
}
