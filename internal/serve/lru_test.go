package serve

import (
	"fmt"
	"testing"

	"repro/internal/obs"
)

func TestContextLRUCapsAndRecency(t *testing.T) {
	reg := obs.NewRegistry()
	l := newLRU[*entry](2, reg, "serve.ctx")
	made := 0
	mk := func() *entry { made++; return &entry{} }

	a, hit := l.getOrCreate("a", mk)
	if hit {
		t.Fatal("first lookup of a reported a cache hit")
	}
	b, _ := l.getOrCreate("b", mk)
	if got, hit := l.getOrCreate("a", mk); got != a || !hit {
		t.Fatal("second lookup of a minted a new entry or missed")
	}
	// a was just refreshed, so adding c must evict b, not a.
	l.getOrCreate("c", mk)
	if got, _ := l.getOrCreate("a", mk); got != a {
		t.Error("a evicted despite being most recently used")
	}
	if nb, hit := l.getOrCreate("b", mk); nb == b || hit {
		t.Error("b survived past the cap")
	}
	if made != 4 { // a, b, c, then b again
		t.Errorf("mk ran %d times, want 4", made)
	}
	if got := reg.Counter("serve.ctx.evicted").Value(); got < 2 {
		t.Errorf("evicted counter = %d, want >= 2", got)
	}
	if l.len() != 2 {
		t.Errorf("len = %d, want 2", l.len())
	}
}

func TestContextLRUMinimumCapacity(t *testing.T) {
	l := newLRU[*entry](0, nil, "serve.ctx")
	for i := 0; i < 3; i++ {
		l.getOrCreate(fmt.Sprintf("k%d", i), func() *entry { return &entry{} })
	}
	if l.len() != 1 {
		t.Errorf("len = %d, want 1 (cap clamps to 1)", l.len())
	}
}

func TestLRUGetPut(t *testing.T) {
	reg := obs.NewRegistry()
	l := newLRU[int](2, reg, "serve.predict.ctx")
	if _, ok := l.get("a"); ok {
		t.Fatal("get on empty LRU reported a hit")
	}
	l.put("a", 1)
	l.put("b", 2)
	if v, ok := l.get("a"); !ok || v != 1 {
		t.Fatalf("get(a) = %d,%t, want 1,true", v, ok)
	}
	l.put("a", 10) // overwrite refreshes, not duplicates
	if v, _ := l.get("a"); v != 10 {
		t.Fatalf("get(a) after overwrite = %d, want 10", v)
	}
	// a is most recently used; c must evict b.
	l.put("c", 3)
	if _, ok := l.get("b"); ok {
		t.Error("b survived past the cap")
	}
	if _, ok := l.get("a"); !ok {
		t.Error("a evicted despite being most recently used")
	}
	if got := reg.Counter("serve.predict.ctx.evicted").Value(); got != 1 {
		t.Errorf("evicted counter = %d, want 1", got)
	}
	if l.len() != 2 {
		t.Errorf("len = %d, want 2", l.len())
	}
}
