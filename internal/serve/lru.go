package serve

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// lru is a hard-capped, mutex-guarded LRU keyed by canonical strings.
// It backs both daemon caches: the per-scenario context cache (each
// entry owning a core.Context whose cells hold the heavyweight
// memoized artifacts) and the /v1/predict report cache. The query
// routes let any request mint a new key, so without a hard cap a scan
// of ?seed=1..N would pin N simulations in memory; with it, the
// least-recently-used value is dropped and rebuilds (or reloads from
// checkpoint) on its next use.
//
// Each instance exports its occupancy and eviction count under the
// metric names it was built with:
//
//	<name>.live    gauge, values currently cached
//	<name>.evicted counter, values dropped over the cap
type lru[V any] struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element

	live    *obs.Gauge
	evicted *obs.Counter
}

// lruItem is one cached value keyed by its canonical string.
type lruItem[V any] struct {
	key string
	v   V
}

// newLRU builds an LRU holding at most cap values (minimum 1),
// exporting <metricBase>.live and <metricBase>.evicted.
func newLRU[V any](cap int, reg *obs.Registry, metricBase string) *lru[V] {
	if cap < 1 {
		cap = 1
	}
	return &lru[V]{
		cap:     cap,
		ll:      list.New(),
		m:       make(map[string]*list.Element),
		live:    reg.Gauge(metricBase + ".live"),
		evicted: reg.Counter(metricBase + ".evicted"),
	}
}

// getOrCreate returns the value cached under key, making it the most
// recently used, or installs mk()'s value and evicts past the cap. hit
// reports whether the value was already cached (the access log's
// ctx_cached flag). An evicted value is simply unlinked: builds
// already running against it finish against its (now unreachable)
// state and are garbage collected together with it.
func (l *lru[V]) getOrCreate(key string, mk func() V) (v V, hit bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.m[key]; ok {
		l.ll.MoveToFront(el)
		return el.Value.(*lruItem[V]).v, true
	}
	v = mk()
	l.m[key] = l.ll.PushFront(&lruItem[V]{key: key, v: v})
	for l.ll.Len() > l.cap {
		back := l.ll.Back()
		l.ll.Remove(back)
		delete(l.m, back.Value.(*lruItem[V]).key)
		l.evicted.Add(1)
	}
	l.live.Set(float64(l.ll.Len()))
	return v, false
}

// get returns the value cached under key, making it the most recently
// used.
func (l *lru[V]) get(key string) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.m[key]; ok {
		l.ll.MoveToFront(el)
		return el.Value.(*lruItem[V]).v, true
	}
	var zero V
	return zero, false
}

// put installs (or overwrites) key's value as the most recently used,
// evicting past the cap.
func (l *lru[V]) put(key string, v V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.m[key]; ok {
		el.Value.(*lruItem[V]).v = v
		l.ll.MoveToFront(el)
		return
	}
	l.m[key] = l.ll.PushFront(&lruItem[V]{key: key, v: v})
	for l.ll.Len() > l.cap {
		back := l.ll.Back()
		l.ll.Remove(back)
		delete(l.m, back.Value.(*lruItem[V]).key)
		l.evicted.Add(1)
	}
	l.live.Set(float64(l.ll.Len()))
}

// len reports how many values are cached.
func (l *lru[V]) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}
