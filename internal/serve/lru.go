package serve

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// contextLRU caps how many per-scenario entries (each owning a
// core.Context whose cells hold the heavyweight memoized artifacts)
// the daemon keeps alive. The scenario route lets any request mint a
// new config, so without a hard cap a scan of ?seed=1..N would pin N
// simulations in memory; with it, the least-recently-used scenario is
// dropped and rebuilds (or reloads from checkpoint) on its next use.
//
//	serve.ctx.live    gauge, entries currently cached
//	serve.ctx.evicted counter, entries dropped over the cap
type contextLRU struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element

	live    *obs.Gauge
	evicted *obs.Counter
}

// lruItem is one cached scenario keyed by its canonical config string.
type lruItem struct {
	key string
	e   *entry
}

// newContextLRU builds an LRU holding at most cap entries (minimum 1).
func newContextLRU(cap int, reg *obs.Registry) *contextLRU {
	if cap < 1 {
		cap = 1
	}
	return &contextLRU{
		cap:     cap,
		ll:      list.New(),
		m:       make(map[string]*list.Element),
		live:    reg.Gauge("serve.ctx.live"),
		evicted: reg.Counter("serve.ctx.evicted"),
	}
}

// getOrCreate returns the entry cached under key, making it the most
// recently used, or installs mk()'s entry and evicts past the cap. An
// evicted entry is simply unlinked: builds already running against it
// finish against its (now unreachable) cells and are garbage collected
// together with it.
func (l *contextLRU) getOrCreate(key string, mk func() *entry) *entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.m[key]; ok {
		l.ll.MoveToFront(el)
		return el.Value.(*lruItem).e
	}
	e := mk()
	l.m[key] = l.ll.PushFront(&lruItem{key: key, e: e})
	for l.ll.Len() > l.cap {
		back := l.ll.Back()
		l.ll.Remove(back)
		delete(l.m, back.Value.(*lruItem).key)
		l.evicted.Add(1)
	}
	l.live.Set(float64(l.ll.Len()))
	return e
}

// len reports how many entries are cached.
func (l *contextLRU) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}
