package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
)

// etagServer boots a single-replica daemon with one stub experiment.
func etagServer(t *testing.T) (*httptest.Server, *stubState) {
	t.Helper()
	st := &stubState{}
	srv := New(Config{Base: tinyConfig(), Experiments: []core.Experiment{stubExperiment("stub1", st)}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, st
}

// condGet performs a GET with an optional If-None-Match validator.
func condGet(t *testing.T, url, inm string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	resp.Body.Close()
	return resp
}

func TestETagRoundTrip304(t *testing.T) {
	ts, st := etagServer(t)
	for _, path := range []string{
		"/v1/artifacts/stub1",
		"/v1/artifacts/stub1?format=md",
		"/v1/report",
		"/v1/predict?hosts=2&days=1",
	} {
		url := ts.URL + path
		first := condGet(t, url, "")
		if first.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, first.StatusCode)
		}
		etag := first.Header.Get("ETag")
		if len(etag) != 66 || etag[0] != '"' { // quoted 64-hex content address
			t.Fatalf("%s: ETag %q", path, etag)
		}
		if cc := first.Header.Get("Cache-Control"); cc != cacheControl {
			t.Fatalf("%s: Cache-Control %q, want %q", path, cc, cacheControl)
		}
		second := condGet(t, url, etag)
		if second.StatusCode != http.StatusNotModified {
			t.Fatalf("%s revalidation: status %d, want 304", path, second.StatusCode)
		}
		if got := second.Header.Get("ETag"); got != etag {
			t.Fatalf("%s 304 ETag %q != %q", path, got, etag)
		}
		if second.ContentLength > 0 {
			t.Fatalf("%s: 304 carried a body", path)
		}
	}
	// The artifact built exactly once: both 304s and the md variant's
	// cache hit reuse it, and revalidations never re-run the experiment.
	if n := st.runs.Load(); n != 1 {
		t.Fatalf("experiment ran %d times, want 1", n)
	}
}

// TestETag304SkipsBuild: a conditional GET for a scenario this daemon
// has never built must still 304 — the validator is derived from the
// content address, which is computable without building. This is the
// whole point: revalidation costs no admission slot and no simulation.
func TestETag304SkipsBuild(t *testing.T) {
	ts, st := etagServer(t)
	etag := artifactETag(tinyConfig(), "stub1", "json")
	resp := condGet(t, ts.URL+"/v1/artifacts/stub1", etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("status %d, want 304", resp.StatusCode)
	}
	if n := st.runs.Load(); n != 0 {
		t.Fatalf("experiment ran %d times for a 304, want 0", n)
	}
}

func TestETagVariesByRepresentationAndScenario(t *testing.T) {
	cfg := tinyConfig()
	etags := map[string]bool{}
	for _, v := range []string{"json", "md", "csv:t1", "dat:s1"} {
		etags[artifactETag(cfg, "stub1", v)] = true
	}
	other := cfg
	other.Seed++
	etags[artifactETag(other, "stub1", "json")] = true
	etags[artifactETag(cfg, "stub2", "json")] = true
	if len(etags) != 6 {
		t.Fatalf("expected 6 distinct ETags, got %d", len(etags))
	}
}

func TestETagMismatchServesFullBody(t *testing.T) {
	ts, _ := etagServer(t)
	resp := condGet(t, ts.URL+"/v1/artifacts/stub1", `"deadbeef"`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 for a stale validator", resp.StatusCode)
	}
}

func TestETagMatchHeaderForms(t *testing.T) {
	etag := `"abc123"`
	for header, want := range map[string]bool{
		`"abc123"`:           true,
		`W/"abc123"`:         true, // weak comparison is fine for GET 304s
		`*`:                  true,
		`"zzz", "abc123"`:    true,
		`"zzz" , W/"abc123"`: true,
		`"zzz"`:              false,
		``:                   false,
	} {
		if got := etagMatch(header, etag); got != want {
			t.Errorf("etagMatch(%q) = %v, want %v", header, got, want)
		}
	}
}
