package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/obs"
)

// tinyConfig is a seconds-fast scenario: the byte-identity tests only
// use workload-side experiments, so the simulation fields are minimal.
// The workload horizon stays at the quick scale's full day — shorter
// horizons starve some distributions into NaN metrics, which neither
// JSON nor the checkpoint store accepts.
func tinyConfig() core.Config {
	return core.Config{
		Seed:                   7,
		Machines:               8,
		SimHorizon:             86400,
		WorkloadHorizon:        86400,
		WorkloadMaxTasksPerJob: 40,
		SampleMachines:         4,
	}
}

// stubState wires a controllable experiment into a server: runs counts
// Run invocations, entered signals each Run entry, release (when
// non-nil) blocks Run until closed.
type stubState struct {
	runs    atomic.Int64
	entered chan struct{}
	release chan struct{}
}

// stubExperiment touches the google_tasks cell (so coalescing is
// observable via core.cell.google_tasks.miss) and then defers to the
// stub's synchronization knobs.
func stubExperiment(id string, st *stubState) core.Experiment {
	return core.Experiment{ID: id, Title: "stub " + id, Run: func(c *core.Context) (*core.Result, error) {
		st.runs.Add(1)
		if _, err := c.GoogleTasks(); err != nil {
			return nil, err
		}
		if st.entered != nil {
			st.entered <- struct{}{}
		}
		if st.release != nil {
			<-st.release
		}
		return &core.Result{ID: id, Title: "stub " + id, Metrics: map[string]float64{"n": 1}}, nil
	}}
}

func get(t *testing.T, client *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, body
}

// waitFor polls cond for up to 10s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestServedBytesIdentical is the daemon's determinism contract: for
// the same config, every body served over HTTP is byte-identical to
// the artifact cmd/repro emits — JSON to the marshalled in-memory
// result, markdown to the shared core renderer, CSV/.dat to the very
// files report.SaveCSV/SaveDAT write.
func TestServedBytesIdentical(t *testing.T) {
	cfg := tinyConfig()
	var exps []core.Experiment
	for _, id := range []string{"fig2", "fig3", "table1"} {
		e, err := core.Find(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}

	// The CLI side: the same runner cmd/repro invokes, serially.
	cliCtx := core.NewContext(cfg)
	results, err := core.RunExperiments(context.Background(), cliCtx, exps, core.RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{Base: cfg, Experiments: exps})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	outDir := t.TempDir()
	for i, e := range exps {
		want, err := json.Marshal(results[i])
		if err != nil {
			t.Fatal(err)
		}
		code, body := get(t, client, ts.URL+"/v1/artifacts/"+e.ID)
		if code != http.StatusOK {
			t.Fatalf("artifact %s: status %d: %s", e.ID, code, body)
		}
		if string(body) != string(want) {
			t.Errorf("artifact %s: served JSON differs from CLI result marshal", e.ID)
		}

		var md strings.Builder
		if err := core.WriteResultMarkdown(&md, results[i]); err != nil {
			t.Fatal(err)
		}
		code, body = get(t, client, ts.URL+"/v1/artifacts/"+e.ID+"?format=md")
		if code != http.StatusOK || string(body) != md.String() {
			t.Errorf("artifact %s: served markdown differs from CLI renderer (status %d)", e.ID, code)
		}

		for _, tbl := range results[i].Tables {
			path, err := tbl.SaveCSV(outDir)
			if err != nil {
				t.Fatal(err)
			}
			fileBytes, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			code, body := get(t, client, fmt.Sprintf("%s/v1/artifacts/%s/tables/%s", ts.URL, e.ID, tbl.ID))
			if code != http.StatusOK || string(body) != string(fileBytes) {
				t.Errorf("table %s/%s: served CSV differs from %s (status %d)", e.ID, tbl.ID, filepath.Base(path), code)
			}
		}
		for _, ser := range results[i].Series {
			path, err := ser.SaveDAT(outDir)
			if err != nil {
				t.Fatal(err)
			}
			fileBytes, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			code, body := get(t, client, fmt.Sprintf("%s/v1/artifacts/%s/series/%s", ts.URL, e.ID, ser.ID))
			if code != http.StatusOK || string(body) != string(fileBytes) {
				t.Errorf("series %s/%s: served .dat differs from %s (status %d)", e.ID, ser.ID, filepath.Base(path), code)
			}
		}
	}

	var want strings.Builder
	if err := core.WriteMarkdownReport(&want, cfg, results, nil); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, client, ts.URL+"/v1/report")
	if code != http.StatusOK || string(body) != want.String() {
		t.Errorf("report: served markdown differs from CLI -markdown renderer (status %d)", code)
	}
}

// TestCoalescingOneBuild fires 100 concurrent requests at one cold
// artifact and requires exactly one build: one Run invocation, one
// core.cell.google_tasks.miss, and 99 coalesced waiters.
func TestCoalescingOneBuild(t *testing.T) {
	st := &stubState{release: make(chan struct{})}
	rec := obs.NewRecorder()
	cfg := tinyConfig()
	s := New(Config{
		Base:        cfg,
		Experiments: []core.Experiment{stubExperiment("stub", st)},
		Rec:         rec,
		MaxInflight: 128,
		MaxQueue:    256,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	const n = 100
	codes := make([]int, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], bodies[i] = get(t, client, ts.URL+"/v1/artifacts/stub")
		}(i)
	}

	// Every request must be in the flight before the build may finish:
	// one leader inside Run, 99 parked on the coalescer.
	e := s.entryFor(context.Background(), cfg)
	waitFor(t, "99 coalesced waiters", func() bool { return e.sf.waiting("stub") == n-1 })
	close(st.release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("request %d: body differs from request 0", i)
		}
	}
	if got := st.runs.Load(); got != 1 {
		t.Errorf("stub ran %d times, want exactly 1", got)
	}
	reg := rec.Registry()
	if got := reg.Counter("core.cell.google_tasks.miss").Value(); got != 1 {
		t.Errorf("core.cell.google_tasks.miss = %d, want exactly 1", got)
	}
	if got := reg.Counter("serve.coalesce.shared").Value(); got != n-1 {
		t.Errorf("serve.coalesce.shared = %d, want %d", got, n-1)
	}
}

// TestAdmissionGateRejects fills the single slot and the 2-deep queue,
// then requires the next request to bounce with 429 while everyone
// admitted still completes.
func TestAdmissionGateRejects(t *testing.T) {
	st := &stubState{entered: make(chan struct{}, 8), release: make(chan struct{})}
	rec := obs.NewRecorder()
	s := New(Config{
		Base:        tinyConfig(),
		Experiments: []core.Experiment{stubExperiment("stub", st)},
		Rec:         rec,
		MaxInflight: 1,
		MaxQueue:    2,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	url := ts.URL + "/v1/artifacts/stub"

	codes := make([]int, 3)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); codes[0], _ = get(t, client, url) }()
	<-st.entered // the slot-holder is now inside Run

	reg := rec.Registry()
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); codes[i], _ = get(t, client, url) }(i)
	}
	waitFor(t, "2 queued requests", func() bool { return reg.Gauge("serve.gate.queued").Value() == 2 })

	code, body := get(t, client, url)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated gate: status %d (%s), want 429", code, body)
	}
	if got := reg.Counter("serve.gate.rejected").Value(); got != 1 {
		t.Errorf("serve.gate.rejected = %d, want 1", got)
	}

	close(st.release)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("admitted request %d: status %d, want 200", i, c)
		}
	}
}

// TestDrainLetsInflightFinish begins a drain with one request mid-build
// and checks the drain contract: new requests (healthz included) get
// 503 immediately, the in-flight one still completes.
func TestDrainLetsInflightFinish(t *testing.T) {
	st := &stubState{entered: make(chan struct{}, 8), release: make(chan struct{})}
	s := New(Config{
		Base:        tinyConfig(),
		Experiments: []core.Experiment{stubExperiment("stub", st)},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	inflightCode := make(chan int, 1)
	go func() {
		code, _ := get(t, client, ts.URL+"/v1/artifacts/stub")
		inflightCode <- code
	}()
	<-st.entered

	s.BeginDrain()
	if code, body := get(t, client, ts.URL+"/v1/artifacts/stub"); code != http.StatusServiceUnavailable {
		t.Fatalf("new request during drain: status %d (%s), want 503", code, body)
	} else if !strings.Contains(string(body), "draining") {
		t.Fatalf("new request during drain: body %s, want a draining notice", body)
	}
	if code, _ := get(t, client, ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", code)
	}

	close(st.release)
	if code := <-inflightCode; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
}

// TestContextLRUEviction bounds the per-scenario cache at 2 and walks
// three seeds: the oldest is evicted and rebuilds on return, the
// surviving one is served from memory.
func TestContextLRUEviction(t *testing.T) {
	st := &stubState{}
	rec := obs.NewRecorder()
	s := New(Config{
		Base:        tinyConfig(),
		Experiments: []core.Experiment{stubExperiment("stub", st)},
		Rec:         rec,
		MaxContexts: 2,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	for seed := 1; seed <= 3; seed++ {
		if code, body := get(t, client, fmt.Sprintf("%s/v1/artifacts/stub?seed=%d", ts.URL, seed)); code != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, code, body)
		}
	}
	reg := rec.Registry()
	if got := reg.Counter("serve.ctx.evicted").Value(); got != 1 {
		t.Errorf("serve.ctx.evicted = %d, want 1", got)
	}
	if got := s.lru.len(); got != 2 {
		t.Errorf("live contexts = %d, want 2", got)
	}
	if got := st.runs.Load(); got != 3 {
		t.Fatalf("stub ran %d times over 3 scenarios, want 3", got)
	}

	// seed=3 survived: memoized, no rebuild. seed=1 was evicted: rebuilds.
	get(t, client, ts.URL+"/v1/artifacts/stub?seed=3")
	if got := st.runs.Load(); got != 3 {
		t.Errorf("cached scenario rebuilt: runs = %d, want 3", got)
	}
	get(t, client, ts.URL+"/v1/artifacts/stub?seed=1")
	if got := st.runs.Load(); got != 4 {
		t.Errorf("evicted scenario: runs = %d, want 4", got)
	}
}

// TestWarmStartFromCheckpoints serves an artifact once with a
// checkpoint store attached, then boots a second daemon on the same
// directory: it must answer byte-identically from disk with zero cell
// builds and zero experiment runs.
func TestWarmStartFromCheckpoints(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig()
	table1, err := core.Find("table1")
	if err != nil {
		t.Fatal(err)
	}

	store1, err := ckpt.NewStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Base: cfg, Experiments: []core.Experiment{table1}, Store: store1})
	ts1 := httptest.NewServer(s1.Handler())
	code, body1 := get(t, ts1.Client(), ts1.URL+"/v1/artifacts/table1")
	ts1.Close()
	if code != http.StatusOK {
		t.Fatalf("cold serve: status %d: %s", code, body1)
	}

	rec2 := obs.NewRecorder()
	store2, err := ckpt.NewStore(dir, rec2.Registry())
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Base: cfg, Experiments: []core.Experiment{table1}, Store: store2, Rec: rec2})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	code, body2 := get(t, ts2.Client(), ts2.URL+"/v1/artifacts/table1")
	if code != http.StatusOK {
		t.Fatalf("warm serve: status %d: %s", code, body2)
	}
	if string(body1) != string(body2) {
		t.Error("warm-started bytes differ from cold-built bytes")
	}
	reg2 := rec2.Registry()
	if got := reg2.Counter("ckpt.hit").Value(); got != 1 {
		t.Errorf("ckpt.hit = %d, want 1", got)
	}
	for _, cell := range []string{"google_tasks", "google_jobs"} {
		if got := reg2.Counter("core.cell." + cell + ".miss").Value(); got != 0 {
			t.Errorf("warm start rebuilt cell %s (%d misses), want 0", cell, got)
		}
	}
}

// TestScenarioParamsAndErrors covers the request-validation surface:
// bad scenario parameters, unknown artifacts/tables/formats, plus the
// healthz/metrics/experiments happy paths.
func TestScenarioParamsAndErrors(t *testing.T) {
	st := &stubState{}
	s := New(Config{Base: tinyConfig(), Experiments: []core.Experiment{stubExperiment("stub", st)}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/artifacts/stub?machines=0", http.StatusBadRequest},
		{"/v1/artifacts/stub?machines=notanumber", http.StatusBadRequest},
		{"/v1/artifacts/stub?days=9999", http.StatusBadRequest},
		{"/v1/artifacts/stub?workload_days=-3", http.StatusBadRequest},
		{"/v1/artifacts/stub?seed=abc", http.StatusBadRequest},
		{"/v1/artifacts/stub?format=xml", http.StatusBadRequest},
		{"/v1/artifacts/nope", http.StatusNotFound},
		{"/v1/artifacts/stub/tables/nope", http.StatusNotFound},
		{"/v1/artifacts/stub/series/nope", http.StatusNotFound},
		{"/v1/report?format=csv", http.StatusBadRequest},
		{"/v1/artifacts/stub?seed=11&machines=12&days=2&workload_days=1", http.StatusOK},
	} {
		if code, body := get(t, client, ts.URL+tc.path); code != tc.want {
			t.Errorf("GET %s: status %d (%s), want %d", tc.path, code, body, tc.want)
		}
	}

	code, body := get(t, client, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	var hs healthStatus
	if err := json.Unmarshal(body, &hs); err != nil || hs.Status != "ok" || hs.Experiments != 1 {
		t.Errorf("healthz payload %s (err %v), want status ok with 1 experiment", body, err)
	}

	code, body = get(t, client, ts.URL+"/v1/experiments")
	var infos []experimentInfo
	if code != http.StatusOK || json.Unmarshal(body, &infos) != nil || len(infos) != 1 || infos[0].ID != "stub" {
		t.Errorf("experiments: status %d payload %s, want the stub listing", code, body)
	}

	// Default /metrics is Prometheus text; JSONL stays available by
	// query param and by Accept header.
	code, body = get(t, client, ts.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(body), "serve_req_total") {
		t.Errorf("metrics: status %d, body missing serve_req_total", code)
	}
	if _, err := obs.ParsePrometheus(bytes.NewReader(body)); err != nil {
		t.Errorf("metrics: default exposition does not parse: %v", err)
	}
	code, body = get(t, client, ts.URL+"/metrics?format=jsonl")
	if code != http.StatusOK || !strings.Contains(string(body), `"serve.req.total"`) {
		t.Errorf("metrics?format=jsonl: status %d, body missing serve.req.total", code)
	}
	if code, _ := get(t, client, ts.URL+"/metrics?format=xml"); code != http.StatusBadRequest {
		t.Errorf("metrics?format=xml: status %d, want 400", code)
	}
}
