// Request-scoped observability for the serving daemon: endpoint
// classification, the traced request wrapper's helpers (status capture,
// access logging), per-endpoint latency sketches, and the /debug/trace
// export endpoints.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// endpointOf maps a request path onto its route family — the bounded
// label set for per-endpoint metrics (an unbounded label like the raw
// path would let a URL scan mint unbounded series).
func endpointOf(path string) string {
	switch {
	case path == "/healthz":
		return "healthz"
	case path == "/metrics":
		return "metrics"
	case path == "/debug/trace" || strings.HasPrefix(path, "/debug/trace/"):
		return "debug_trace"
	case path == "/v1/experiments":
		return "experiments"
	case path == "/v1/report":
		return "report"
	case strings.HasPrefix(path, "/v1/artifacts/"):
		rest := path[len("/v1/artifacts/"):]
		switch {
		case strings.Contains(rest, "/tables/"):
			return "tables"
		case strings.Contains(rest, "/series/"):
			return "series"
		default:
			return "artifacts"
		}
	case path == "/v1/predict":
		return "predict"
	case strings.HasPrefix(path, "/v1/cache/"):
		return "cache"
	default:
		return "other"
	}
}

// drainExempt reports whether an endpoint keeps serving during a
// graceful drain. Telemetry must outlive admission: the final scrape
// and trace pull of a terminating replica are exactly the ones that
// explain why it terminated. Peer cache fills stay up too — a draining
// replica's warm cache is what its siblings copy out before it goes,
// and fills never trigger builds. /healthz is deliberately NOT exempt —
// it reports draining so load balancers stop routing here.
func drainExempt(endpoint string) bool {
	return endpoint == "metrics" || endpoint == "debug_trace" || endpoint == "cache"
}

// statusWriter captures the status code and body size flowing through
// an http.ResponseWriter, for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	// The caching validators are stamped optimistically before admission
	// (the 304 path must run in front of the gate). An error outcome —
	// 429, 503, a failed build — must not go out with a public max-age,
	// or a shared cache would pin the failure for a minute.
	if code >= 400 {
		w.Header().Del("ETag")
		w.Header().Del("Cache-Control")
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Latency-sketch parameters. Request latency is recorded as
// log10(seconds) in a stats.Sketch spanning [1µs, 1000s] with
// latSketchBins equal-width bins: bin width 9/1800 = 0.005 decades, so
// once a sketch spills past its exact buffer a reported quantile is at
// most one bin off — a relative error of 10^0.005−1 ≈ 1.16% (below
// stats.DefaultSketchExactCap samples it is exact). Documented in
// DESIGN.md §12; reprobench uses the same bound for its cross-check.
const (
	latSketchBins = 1800
	latSketchLo   = -6.0 // log10(1µs)
	latSketchHi   = 3.0  // log10(1000s)
)

// LatencySketchRelError is the documented worst-case relative error of
// a sketch-exported latency quantile (one bin width in log10 space).
var LatencySketchRelError = math.Pow(10, (latSketchHi-latSketchLo)/latSketchBins) - 1

// latQuantiles are the quantiles exported per endpoint.
var latQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// latencySketches holds one mergeable latency sketch per endpoint plus
// the raw sum of seconds (the sketch itself sums log-space values,
// which is useless for throughput math).
type latencySketches struct {
	mu sync.Mutex
	m  map[string]*endpointLatency
}

type endpointLatency struct {
	sketch *stats.Sketch
	sumSec float64
}

func newLatencySketches() *latencySketches {
	return &latencySketches{m: make(map[string]*endpointLatency)}
}

// observe records one request's wall time for an endpoint.
func (ls *latencySketches) observe(endpoint string, d time.Duration) {
	sec := d.Seconds()
	if sec <= 0 {
		sec = 1e-9 // clock granularity floor; log10 needs a positive value
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	el, ok := ls.m[endpoint]
	if !ok {
		sk, err := stats.NewSketch(latSketchBins, latSketchLo, latSketchHi)
		if err != nil {
			return // impossible with the fixed constants
		}
		el = &endpointLatency{sketch: sk}
		ls.m[endpoint] = el
	}
	el.sketch.Add(math.Log10(sec))
	el.sumSec += sec
}

// snapshots renders every endpoint's live quantiles, count and sum as
// labeled metric snapshots — the registry snapshot-func payload behind
// /metrics. Endpoints are visited in sorted order so the export is
// deterministic even before SortSnapshots runs.
func (ls *latencySketches) snapshots() []obs.MetricSnapshot {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	endpoints := make([]string, 0, len(ls.m))
	for ep := range ls.m {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	var out []obs.MetricSnapshot
	for _, ep := range endpoints {
		el := ls.m[ep]
		n := el.sketch.Count()
		if n == 0 {
			continue
		}
		epLabel := obs.Label{Name: "endpoint", Value: ep}
		for _, q := range latQuantiles {
			lg := el.sketch.Quantile(q)
			if math.IsNaN(lg) {
				continue
			}
			out = append(out, obs.MetricSnapshot{
				Name: "serve.req.latency.quantile_seconds", Type: "gauge",
				Labels: []obs.Label{
					epLabel,
					{Name: "quantile", Value: strconv.FormatFloat(q, 'g', -1, 64)},
				},
				Value: math.Pow(10, lg),
			})
		}
		out = append(out,
			obs.MetricSnapshot{
				Name: "serve.req.latency.sketch_count", Type: "counter",
				Labels: []obs.Label{epLabel}, Value: float64(n),
			},
			obs.MetricSnapshot{
				Name: "serve.req.latency.sketch_sum_seconds", Type: "counter",
				Labels: []obs.Label{epLabel}, Value: el.sumSec,
			},
		)
	}
	return out
}

// accessRecord is one access-log line. Fields are flat and stable:
// downstream log pipelines key on them (schema documented in README
// "Observability").
type accessRecord struct {
	TS     string `json:"ts"` // RFC3339Nano, UTC
	Method string `json:"method"`
	Path   string `json:"path"`
	Query  string `json:"query,omitempty"` // raw query: it names the scenario

	Endpoint  string `json:"endpoint"`
	Status    int    `json:"status"`
	Bytes     int64  `json:"bytes"`
	LatencyUS int64  `json:"latency_us"`
	TraceID   string `json:"trace_id,omitempty"`
	GateUS    int64  `json:"gate_wait_us"`
	Coalesced bool   `json:"coalesced"`
	Leader    bool   `json:"leader"`
	CtxCached bool   `json:"ctx_cached"`
	CkptHit   bool   `json:"ckpt_hit"`
	CkptMiss  bool   `json:"ckpt_miss"`
	Seq       uint64 `json:"seq"` // 1-based request index (pre-sampling)
}

// accessLogger serializes access records to one writer, sampling
// deterministically by request index: with sample N, requests
// 1, N+1, 2N+1, ... are logged (head-based: the decision depends only
// on arrival order, so a replayed request stream logs the same lines).
type accessLogger struct {
	mu     sync.Mutex
	enc    *json.Encoder
	sample uint64
}

func newAccessLogger(w io.Writer, sample int) *accessLogger {
	if w == nil {
		return nil
	}
	if sample < 1 {
		sample = 1
	}
	return &accessLogger{enc: json.NewEncoder(w), sample: uint64(sample)}
}

// log writes the record if its Seq falls on the sampling lattice.
// Nil-safe: a daemon without -access-log carries a nil logger.
func (al *accessLogger) log(rec accessRecord) {
	if al == nil {
		return
	}
	if (rec.Seq-1)%al.sample != 0 {
		return
	}
	al.mu.Lock()
	defer al.mu.Unlock()
	_ = al.enc.Encode(rec) // a full disk must not fail requests
}

// handleTraceByID serves GET /debug/trace/{traceID}: every retained
// span of one trace, as JSONL (default) or a loadable Chrome trace
// (?format=chrome). 404 means the trace is unknown or fully evicted
// from the span ring.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("traceID")
	spans := s.rec.TraceSpans(id)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no retained spans for trace %q", id))
		return
	}
	s.writeSpans(w, r, spans)
}

// handleTraceDump serves GET /debug/trace: the retained span buffer,
// incrementally. ?since=SEQ returns only spans with seq > SEQ — each
// exported span carries its seq, so a poller resumes from the last one
// it saw and pays only for what is new (eviction shows up as a seq
// gap, not silent loss).
func (s *Server) handleTraceDump(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("since: %q is not a uint64", v))
			return
		}
		since = n
	}
	s.writeSpans(w, r, s.rec.SpansSince(since))
}

// writeSpans renders spans in the negotiated trace format.
func (s *Server) writeSpans(w http.ResponseWriter, r *http.Request, spans []obs.SpanRecord) {
	switch format := r.URL.Query().Get("format"); format {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteSpansChromeTrace(w, spans)
	case "", "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = obs.WriteSpansJSONL(w, spans)
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("format: want jsonl or chrome, got %q", format))
	}
}
