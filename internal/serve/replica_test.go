package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/replica"
)

// replicaServer boots one multi-replica daemon over the shared dir,
// returning the test server and the coordinator behind it.
func replicaServer(t *testing.T, dir, id string, exps []core.Experiment, peers ...string) (*httptest.Server, *Server, *replica.Coordinator) {
	t.Helper()
	rec := obs.NewRecorder()
	var store *ckpt.Store
	if dir != "" {
		s, err := ckpt.NewStore(dir, rec.Registry())
		if err != nil {
			t.Fatalf("NewStore: %v", err)
		}
		store = s
	}
	coord := replica.New(replica.Config{
		ID:           id,
		Store:        store,
		Peers:        peers,
		TTL:          200 * time.Millisecond,
		Poll:         10 * time.Millisecond,
		FetchTimeout: time.Second,
		BackoffBase:  5 * time.Millisecond,
		Rec:          rec,
	})
	srv := New(Config{Base: tinyConfig(), Experiments: exps, Store: store, Replica: coord, Rec: rec})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, coord
}

// TestTwoReplicasServeIdenticalBytes: one replica builds, the sibling
// over the same checkpoint dir serves from the store — same bytes, one
// build between them.
func TestTwoReplicasServeIdenticalBytes(t *testing.T) {
	dir := t.TempDir()
	st := &stubState{}
	exps := []core.Experiment{stubExperiment("stub1", st)}
	tsA, _, _ := replicaServer(t, dir, "r0", exps)
	tsB, _, _ := replicaServer(t, dir, "r1", exps)
	client := &http.Client{}

	codeA, bodyA := get(t, client, tsA.URL+"/v1/artifacts/stub1")
	codeB, bodyB := get(t, client, tsB.URL+"/v1/artifacts/stub1")
	if codeA != 200 || codeB != 200 {
		t.Fatalf("status A=%d B=%d", codeA, codeB)
	}
	if string(bodyA) != string(bodyB) {
		t.Fatalf("replica bodies differ:\nA: %s\nB: %s", bodyA, bodyB)
	}
	if n := st.runs.Load(); n != 1 {
		t.Fatalf("experiment ran %d times across 2 replicas, want 1", n)
	}
}

// TestCacheFillEndpoint: a warm replica streams the exact checkpoint
// payload from /v1/cache/{key}; invalid keys are rejected before they
// can touch the filesystem, cold keys 404.
func TestCacheFillEndpoint(t *testing.T) {
	dir := t.TempDir()
	st := &stubState{}
	exps := []core.Experiment{stubExperiment("stub1", st)}
	ts, _, _ := replicaServer(t, dir, "r0", exps)
	client := &http.Client{}

	if code, _ := get(t, client, ts.URL+"/v1/artifacts/stub1"); code != 200 {
		t.Fatalf("warm GET: %d", code)
	}
	key := core.CheckpointKey(tinyConfig(), "stub1")
	code, payload := get(t, client, ts.URL+"/v1/cache/"+key)
	if code != 200 {
		t.Fatalf("cache fill: status %d body %s", code, payload)
	}
	var res core.Result
	if err := json.Unmarshal(payload, &res); err != nil || res.ID != "stub1" {
		t.Fatalf("cache-fill payload: %v (id %q)", err, res.ID)
	}
	if code, _ := get(t, client, ts.URL+"/v1/cache/"+strings.Repeat("0", 64)); code != 404 {
		t.Fatalf("cold key: status %d, want 404", code)
	}
	for _, bad := range []string{"short", strings.Repeat("Z", 64), strings.Repeat("a", 63) + "/"} {
		if code, _ := get(t, client, ts.URL+"/v1/cache/"+bad); code != 400 && code != 404 {
			t.Fatalf("key %q: status %d, want 400/404", bad, code)
		}
	}
}

// TestCacheFillWithoutReplicaMode: a single-replica daemon has no
// coordinator; the endpoint must answer 404, not panic.
func TestCacheFillWithoutReplicaMode(t *testing.T) {
	st := &stubState{}
	srv := New(Config{Base: tinyConfig(), Experiments: []core.Experiment{stubExperiment("stub1", st)}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, _ := get(t, &http.Client{}, ts.URL+"/v1/cache/"+strings.Repeat("a", 64))
	if code != 404 {
		t.Fatalf("status %d, want 404", code)
	}
}

// TestPeerFillAcrossDaemons: replica B has no shared store, only a
// peer pointing at warm replica A — its first request must be served
// via HTTP cache fill, with zero experiment runs of its own.
func TestPeerFillAcrossDaemons(t *testing.T) {
	dir := t.TempDir()
	stA := &stubState{}
	tsA, _, _ := replicaServer(t, dir, "r0", []core.Experiment{stubExperiment("stub1", stA)})
	client := &http.Client{}
	if code, _ := get(t, client, tsA.URL+"/v1/artifacts/stub1"); code != 200 {
		t.Fatalf("warm A: %d", code)
	}

	stB := &stubState{}
	tsB, _, _ := replicaServer(t, "", "r1", []core.Experiment{stubExperiment("stub1", stB)},
		strings.TrimPrefix(tsA.URL, "http://"))
	_, bodyA := get(t, client, tsA.URL+"/v1/artifacts/stub1")
	codeB, bodyB := get(t, client, tsB.URL+"/v1/artifacts/stub1")
	if codeB != 200 {
		t.Fatalf("B: status %d", codeB)
	}
	if string(bodyA) != string(bodyB) {
		t.Fatalf("peer-filled body differs:\nA: %s\nB: %s", bodyA, bodyB)
	}
	if n := stB.runs.Load(); n != 0 {
		t.Fatalf("B ran the experiment %d times, want 0 (peer fill)", n)
	}
}

// TestHealthzDegradedStillOK: with the checkpoint store unwritable the
// daemon keeps serving and /healthz stays 200 but reports the
// degradation — flipping to non-200 would tell the load balancer to
// drop the one replica that still has the bytes.
func TestHealthzDegradedStillOK(t *testing.T) {
	dir := t.TempDir()
	st := &stubState{}
	ts, _, coord := replicaServer(t, dir, "r0", []core.Experiment{stubExperiment("stub1", st)})
	client := &http.Client{}

	code, body := get(t, client, ts.URL+"/healthz")
	if code != 200 || !strings.Contains(string(body), `"status":"ok"`) {
		t.Fatalf("healthy: code %d body %s", code, body)
	}
	if !strings.Contains(string(body), `"replica":"r0"`) {
		t.Fatalf("healthz does not name the replica: %s", body)
	}

	// Force the degradation the way the coordinator records it.
	if len(coord.Degraded()) != 0 {
		t.Fatalf("pre-degraded: %v", coord.Degraded())
	}
	defer fault.Enable(fault.NewPlan(fault.Rule{Site: replica.SiteCkptWrite, Kind: fault.Error}))()
	if code, _ := get(t, client, ts.URL+"/v1/artifacts/stub1"); code != 200 {
		t.Fatalf("degraded build: status %d", code)
	}
	code, body = get(t, client, ts.URL+"/healthz")
	if code != 200 {
		t.Fatalf("degraded /healthz: status %d, want 200", code)
	}
	if !strings.Contains(string(body), `"status":"degraded"`) || !strings.Contains(string(body), "store:") {
		t.Fatalf("degraded /healthz body: %s", body)
	}
}

// TestCacheFillDrainExempt: a draining replica keeps answering cache
// fills (its warm cache is what the siblings want on the way out) while
// artifact routes 503.
func TestCacheFillDrainExempt(t *testing.T) {
	dir := t.TempDir()
	st := &stubState{}
	ts, srv, _ := replicaServer(t, dir, "r0", []core.Experiment{stubExperiment("stub1", st)})
	client := &http.Client{}
	if code, _ := get(t, client, ts.URL+"/v1/artifacts/stub1"); code != 200 {
		t.Fatal("warm failed")
	}
	srv.BeginDrain()
	if code, _ := get(t, client, ts.URL+"/v1/artifacts/stub1"); code != http.StatusServiceUnavailable {
		t.Fatalf("artifact during drain: %d, want 503", code)
	}
	key := core.CheckpointKey(tinyConfig(), "stub1")
	if code, _ := get(t, client, ts.URL+"/v1/cache/"+key); code != 200 {
		t.Fatalf("cache fill during drain: %d, want 200", code)
	}
}
