package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrSaturated is returned by Gate.Acquire when both the concurrency
// slots and the wait queue are full; the HTTP layer maps it to 429 so
// overload sheds load at admission instead of queueing unboundedly.
var ErrSaturated = errors.New("serve: admission queue full")

// gateDepthUppers buckets the queue depth observed at enqueue time.
var gateDepthUppers = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}

// gateWaitUppers buckets how long an admitted request waited for a
// slot (seconds).
var gateWaitUppers = []float64{0.001, 0.01, 0.05, 0.1, 0.5, 1, 2, 5, 10, 30}

// Gate is the daemon's bounded-concurrency admission controller: at
// most maxInflight requests hold a slot at once, at most maxQueue more
// wait for one, and everything beyond that is rejected immediately
// with ErrSaturated. Queue depth, wait latency, rejections and
// occupancy are wired into the metrics registry:
//
//	serve.gate.queue_depth   histogram, depth seen at enqueue
//	serve.gate.wait_seconds  histogram, time queued before admission
//	serve.gate.rejected      counter
//	serve.gate.inflight      gauge, slots currently held
//	serve.gate.queued        gauge, requests currently waiting
type Gate struct {
	slots    chan struct{}
	maxQueue int

	mu      sync.Mutex
	waiting int

	rejected *obs.Counter
	depth    *obs.Histogram
	wait     *obs.Histogram
	inflight *obs.Gauge
	queued   *obs.Gauge
}

// NewGate builds a gate admitting maxInflight concurrent holders (<= 0
// means GOMAXPROCS) with a wait queue of maxQueue (< 0 means 0: no
// queue, reject as soon as the slots fill). reg may be nil.
func NewGate(maxInflight, maxQueue int, reg *obs.Registry) *Gate {
	if maxInflight <= 0 {
		maxInflight = runtime.GOMAXPROCS(0)
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Gate{
		slots:    make(chan struct{}, maxInflight),
		maxQueue: maxQueue,
		rejected: reg.Counter("serve.gate.rejected"),
		depth:    reg.Histogram("serve.gate.queue_depth", gateDepthUppers),
		wait:     reg.Histogram("serve.gate.wait_seconds", gateWaitUppers),
		inflight: reg.Gauge("serve.gate.inflight"),
		queued:   reg.Gauge("serve.gate.queued"),
	}
}

// Acquire claims a slot, waiting in the bounded queue if none is free.
// It returns nil once admitted (the caller must Release exactly once),
// ErrSaturated when the queue is full, or the context's cause when the
// caller gave up while queued.
func (g *Gate) Acquire(ctx context.Context) error {
	// Fast path: a free slot admits without touching the queue lock.
	select {
	case g.slots <- struct{}{}:
		g.inflight.Add(1)
		g.depth.Observe(0)
		return nil
	default:
	}

	g.mu.Lock()
	if g.waiting >= g.maxQueue {
		g.mu.Unlock()
		g.rejected.Add(1)
		return ErrSaturated
	}
	g.waiting++
	depth := g.waiting
	g.mu.Unlock()
	g.queued.Add(1)
	g.depth.Observe(float64(depth))

	start := time.Now()
	defer func() {
		g.mu.Lock()
		g.waiting--
		g.mu.Unlock()
		g.queued.Add(-1)
		g.wait.Observe(time.Since(start).Seconds())
	}()
	select {
	case g.slots <- struct{}{}:
		g.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// Release frees a slot claimed by a successful Acquire.
func (g *Gate) Release() {
	<-g.slots
	g.inflight.Add(-1)
}
