// HTTP revalidation for the artifact routes. Every servable body is a
// deterministic function of the scenario config and the artifact
// identity — the same property behind checkpoint keys — so its ETag is
// computable before the artifact is built. A conditional GET whose
// If-None-Match still matches therefore costs no admission slot and no
// build: the 304 short-circuits in front of the gate.
package serve

import (
	"net/http"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/core"
)

// etagSchema versions the ETag derivation. Bump it when a renderer
// changes what bytes a given (config, artifact, variant) produces, so
// stale client caches revalidate instead of 304-ing forever (the
// max-age below bounds the damage of a missed bump to one minute).
const etagSchema = "serve.etag/v1"

// cacheControl is the policy stamped on every cacheable artifact
// response: shared caches may hold it, and must revalidate (cheap: the
// 304 path above) after a minute.
const cacheControl = "public, max-age=60"

// artifactETag is the validator for one experiment artifact variant
// (variant distinguishes representations: "json", "md", "csv:<table>",
// "dat:<series>"). It extends the artifact's checkpoint key, so two
// configs share an ETag exactly when they share a checkpoint.
func artifactETag(cfg core.Config, expID, variant string) string {
	return `"` + ckpt.Key(etagSchema, core.CheckpointKey(cfg, expID), variant) + `"`
}

// reportETag covers the composite report: the experiment set is part of
// the identity, so ?extensions=1 and the paper set revalidate
// independently.
func reportETag(cfg core.Config, exps []core.Experiment, variant string) string {
	parts := make([]string, 0, len(exps)+3)
	parts = append(parts, etagSchema, "report:"+variant, cfg.Canonical())
	for _, e := range exps {
		parts = append(parts, core.CheckpointKey(cfg, e.ID))
	}
	return `"` + ckpt.Key(parts...) + `"`
}

// predictETag covers a prediction scenario (canonical is
// predict.Scenario.Canonical, which encodes every parameter).
func predictETag(canonical, variant string) string {
	return `"` + ckpt.Key(etagSchema, "predict:"+variant, canonical) + `"`
}

// revalidate stamps the caching headers for a response known to carry
// etag and answers a matching conditional GET with 304 Not Modified.
// true means the response is complete and the handler must return.
func (s *Server) revalidate(w http.ResponseWriter, r *http.Request, etag string) bool {
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", cacheControl)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// etagMatch implements the If-None-Match comparison: a comma-separated
// validator list, `*` matching anything, weak validators compared by
// their opaque tag (RFC 9110's weak comparison — right for 304s).
func etagMatch(headerVal, etag string) bool {
	for _, c := range strings.Split(headerVal, ",") {
		c = strings.TrimSpace(c)
		if c == "*" || strings.TrimPrefix(c, "W/") == etag {
			return true
		}
	}
	return false
}
