package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) || (!math.IsNaN(want) && math.Abs(got-want) > tol) {
		t.Fatalf("%s: got %v, want %v (+-%v)", what, got, want, tol)
	}
}

func TestMoments(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	approx(t, Sum(xs), 10, 0, "sum")
	approx(t, Mean(xs), 2.5, 0, "mean")
	approx(t, Variance(xs), 1.25, 1e-12, "variance")
	approx(t, Std(xs), math.Sqrt(1.25), 1e-12, "std")
	approx(t, Min(xs), 1, 0, "min")
	approx(t, Max(xs), 4, 0, "max")
}

func TestEmptyMoments(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) ||
		!math.IsNaN(Variance(nil)) || !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty-input statistics should be NaN")
	}
	if Sum(nil) != 0 {
		t.Fatal("empty sum should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	approx(t, Quantile(xs, 0), 1, 0, "q0")
	approx(t, Quantile(xs, 0.5), 3, 0, "median")
	approx(t, Quantile(xs, 1), 5, 0, "q1")
	approx(t, Quantile(xs, 0.25), 2, 1e-12, "q25")
	approx(t, Quantile([]float64{10}, 0.7), 10, 0, "single")
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	approx(t, e.Eval(0), 0, 0, "below range")
	approx(t, e.Eval(1), 0.25, 1e-12, "at min")
	approx(t, e.Eval(2), 0.75, 1e-12, "at mode")
	approx(t, e.Eval(2.5), 0.75, 1e-12, "between")
	approx(t, e.Eval(10), 1, 0, "above range")
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{0, 10})
	xs, ys := e.Points(11)
	if len(xs) != 11 || len(ys) != 11 {
		t.Fatalf("points length %d/%d", len(xs), len(ys))
	}
	if ys[0] != 0.5 || ys[10] != 1 {
		t.Fatalf("endpoint CDF values %v %v", ys[0], ys[10])
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Fatal("ECDF points not monotone")
		}
	}
}

func TestECDFQuantileInverse(t *testing.T) {
	s := rng.New(99)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = s.Float64() * 100
	}
	e := NewECDF(xs)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		x := e.Quantile(p)
		approx(t, e.Eval(x), p, 0.01, "ECDF quantile inversion")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.2, 0.6, 0.9, 1.5, -2}, 4, 0, 1)
	// -2 clamps to bin 0; 1.5 clamps to bin 3.
	want := []int{3, 0, 1, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("bin %d count %d, want %d (all %v)", i, c, want[i], h.Counts)
		}
	}
	pdf := h.PDF()
	var s float64
	for _, p := range pdf {
		s += p
	}
	approx(t, s, 1, 1e-12, "pdf sums to 1")
	cs := h.BinCenters()
	approx(t, cs[0], 0.125, 1e-12, "first bin center")
	approx(t, cs[3], 0.875, 1e-12, "last bin center")
	if h.Total() != 6 {
		t.Fatalf("total %d", h.Total())
	}
}

func TestMassCountBasics(t *testing.T) {
	// 9 items of size 1, one item of size 91: the big item is 10% of
	// items and 91% of the mass.
	xs := make([]float64, 10)
	for i := 0; i < 9; i++ {
		xs[i] = 1
	}
	xs[9] = 91
	mc := NewMassCount(xs)
	if mc == nil {
		t.Fatal("nil mass-count")
	}
	approx(t, mc.CountCDF(1), 0.9, 1e-12, "count CDF at 1")
	approx(t, mc.MassCDF(1), 0.09, 1e-12, "mass CDF at 1")
	approx(t, mc.CountCDF(91), 1, 0, "count CDF at max")
	approx(t, mc.MassCDF(91), 1, 0, "mass CDF at max")
	items, mass := mc.JointRatio()
	// Crossing occurs at the big item: 10% of items hold 91% of mass.
	approx(t, items, 10, 0.2, "joint ratio items")
	approx(t, mass, 90, 0.2, "joint ratio mass")
	if mc.MMDistance() <= 0 {
		t.Fatalf("mm-distance should be positive for a heavy tail, got %v", mc.MMDistance())
	}
}

func TestMassCountUniformSample(t *testing.T) {
	// Equal sizes: no disparity. Joint ratio ~50/50, mm-distance 0.
	xs := []float64{5, 5, 5, 5, 5, 5}
	mc := NewMassCount(xs)
	items, mass := mc.JointRatio()
	if items < 40 || items > 60 || mass < 40 || mass > 60 {
		t.Fatalf("uniform joint ratio %v/%v, want ~50/50", items, mass)
	}
	approx(t, mc.MMDistance(), 0, 1e-12, "uniform mm-distance")
}

func TestMassCountInvalid(t *testing.T) {
	if NewMassCount(nil) != nil {
		t.Fatal("empty input should give nil")
	}
	if NewMassCount([]float64{-1, 2}) != nil {
		t.Fatal("negative input should give nil")
	}
	if NewMassCount([]float64{0, 0}) != nil {
		t.Fatal("zero-mass input should give nil")
	}
}

func TestMassCountParetoVsExponential(t *testing.T) {
	// A Pareto sample must show a much stronger disparity than an
	// exponential one: smaller items share, larger mm-distance.
	s := rng.New(7)
	pareto := make([]float64, 20000)
	exp := make([]float64, 20000)
	for i := range pareto {
		u := 1 - s.Float64()
		pareto[i] = 1 / math.Pow(u, 1/0.9) // alpha = 0.9, very heavy
		exp[i] = s.ExpFloat64()
	}
	mcP := NewMassCount(pareto)
	mcE := NewMassCount(exp)
	itemsP, _ := mcP.JointRatio()
	itemsE, _ := mcE.JointRatio()
	if itemsP >= itemsE {
		t.Fatalf("pareto joint items %v should be < exponential %v", itemsP, itemsE)
	}
	if itemsP > 15 {
		t.Fatalf("pareto(0.9) joint items %v, want heavy (<15)", itemsP)
	}
}

func TestMassCountJointRatioSumsTo100(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 100 + s.IntN(400)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = s.ExpFloat64() + 0.001
		}
		mc := NewMassCount(xs)
		items, mass := mc.JointRatio()
		return math.Abs(items+mass-100) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMassCountCDFMonotone(t *testing.T) {
	s := rng.New(11)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = s.Float64() * 50
	}
	mc := NewMassCount(xs)
	grid, count, mass := mc.Curve(100)
	for i := 1; i < len(grid); i++ {
		if count[i] < count[i-1] || mass[i] < mass[i-1] {
			t.Fatal("mass-count curves not monotone")
		}
		// Mass CDF must lag the count CDF for non-negative sizes.
		if mass[i] > count[i]+1e-9 {
			t.Fatalf("mass CDF %v exceeds count CDF %v at x=%v", mass[i], count[i], grid[i])
		}
	}
}

func TestJainFairness(t *testing.T) {
	approx(t, JainFairness([]float64{5, 5, 5, 5}), 1, 1e-12, "equal values")
	// One dominant value among n pushes the index toward 1/n.
	approx(t, JainFairness([]float64{100, 0, 0, 0}), 0.25, 1e-12, "one dominant")
	approx(t, JainFairness([]float64{0, 0}), 1, 0, "all zeros")
	if !math.IsNaN(JainFairness(nil)) {
		t.Fatal("empty fairness should be NaN")
	}
	// Fairness is scale-invariant.
	a := JainFairness([]float64{1, 2, 3})
	b := JainFairness([]float64{10, 20, 30})
	approx(t, a, b, 1e-12, "scale invariance")
}

func TestJainFairnessBounds(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 2 + s.IntN(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = s.Float64() * 100
		}
		v := JainFairness(xs)
		return v >= 1/float64(n)-1e-9 && v <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A constant-increment series is perfectly correlated at small lags.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = math.Sin(float64(i) / 10)
	}
	if ac := Autocorrelation(xs, 1); ac < 0.9 {
		t.Fatalf("smooth series lag-1 autocorrelation %v, want > 0.9", ac)
	}
	// White noise has near-zero autocorrelation.
	s := rng.New(3)
	noise := make([]float64, 5000)
	for i := range noise {
		noise[i] = s.NormFloat64()
	}
	if ac := Autocorrelation(noise, 1); math.Abs(ac) > 0.05 {
		t.Fatalf("white noise lag-1 autocorrelation %v, want ~0", ac)
	}
	if !math.IsNaN(Autocorrelation([]float64{1, 2}, 5)) {
		t.Fatal("short series should give NaN")
	}
	if !math.IsNaN(Autocorrelation([]float64{3, 3, 3, 3}, 1)) {
		t.Fatal("zero-variance series should give NaN")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	approx(t, Correlation(xs, ys), 1, 1e-12, "perfect positive")
	neg := []float64{10, 8, 6, 4, 2}
	approx(t, Correlation(xs, neg), -1, 1e-12, "perfect negative")
	if !math.IsNaN(Correlation(xs, xs[:3])) {
		t.Fatal("length mismatch should give NaN")
	}
	if !math.IsNaN(Correlation(xs, []float64{1, 1, 1, 1, 1})) {
		t.Fatal("zero variance should give NaN")
	}
}

func TestGini(t *testing.T) {
	approx(t, Gini([]float64{1, 1, 1, 1}), 0, 1e-12, "equal")
	// One person owns everything among n: Gini = (n-1)/n.
	approx(t, Gini([]float64{0, 0, 0, 100}), 0.75, 1e-12, "dominant")
	approx(t, Gini([]float64{0, 0}), 0, 0, "all zero")
	if !math.IsNaN(Gini(nil)) {
		t.Fatal("empty Gini should be NaN")
	}
}

func TestGiniOrderInvariant(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	g1 := Gini(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	approx(t, Gini(sorted), g1, 1e-12, "order invariance")
}

func TestKolmogorovSmirnov(t *testing.T) {
	// Identical samples: D = 0.
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, KolmogorovSmirnov(xs, xs), 0, 1e-12, "identical samples")
	// Disjoint samples: D = 1.
	approx(t, KolmogorovSmirnov([]float64{1, 2}, []float64{10, 20}), 1, 1e-12, "disjoint samples")
	// Known half-overlap: {1,2,3,4} vs {3,4,5,6} -> D = 0.5.
	approx(t, KolmogorovSmirnov([]float64{1, 2, 3, 4}, []float64{3, 4, 5, 6}), 0.5, 1e-12, "half overlap")
	if !math.IsNaN(KolmogorovSmirnov(nil, xs)) {
		t.Fatal("empty sample should give NaN")
	}
}

func TestKolmogorovSmirnovSymmetricBounded(t *testing.T) {
	s := rng.New(41)
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 5 + src.IntN(100)
		m := 5 + src.IntN(100)
		xs := make([]float64, n)
		ys := make([]float64, m)
		for i := range xs {
			xs[i] = src.NormFloat64()
		}
		for i := range ys {
			ys[i] = src.NormFloat64() + s.Float64()
		}
		d1 := KolmogorovSmirnov(xs, ys)
		d2 := KolmogorovSmirnov(ys, xs)
		return d1 >= 0 && d1 <= 1 && math.Abs(d1-d2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKolmogorovSmirnovDiscriminates(t *testing.T) {
	// Same-distribution samples have small D; shifted ones large.
	src := rng.New(43)
	a := make([]float64, 5000)
	b := make([]float64, 5000)
	c := make([]float64, 5000)
	for i := range a {
		a[i] = src.NormFloat64()
		b[i] = src.NormFloat64()
		c[i] = src.NormFloat64() + 2
	}
	same := KolmogorovSmirnov(a, b)
	diff := KolmogorovSmirnov(a, c)
	if same > 0.05 {
		t.Fatalf("same-distribution D %v too large", same)
	}
	if diff < 0.5 {
		t.Fatalf("shifted-distribution D %v too small", diff)
	}
}

func TestMassCountMediansBracketDistribution(t *testing.T) {
	// For heavy-tailed data, the mass median is far to the right of
	// the count median. Both must lie within the sample range.
	s := rng.New(21)
	xs := make([]float64, 10000)
	for i := range xs {
		u := 1 - s.Float64()
		xs[i] = math.Pow(u, -1/1.1)
	}
	mc := NewMassCount(xs)
	cm, mm := mc.CountMedian(), mc.MassMedian()
	lo, hi := Min(xs), Max(xs)
	if cm < lo || cm > hi || mm < lo || mm > hi {
		t.Fatalf("medians out of range: count=%v mass=%v range=[%v,%v]", cm, mm, lo, hi)
	}
	if mm <= cm {
		t.Fatalf("heavy tail should have mass median %v > count median %v", mm, cm)
	}
}

// TestHistogramRejectsNaN is the regression for the silent NaN
// binning: int(NaN * anything) is unspecified in Go, and before the
// guard NaN observations quietly landed in bin 0. They must be counted
// apart instead.
func TestHistogramRejectsNaN(t *testing.T) {
	h := NewHistogram([]float64{0.1, math.NaN(), 0.9, math.NaN()}, 10, 0, 1)
	if h.Total() != 2 {
		t.Errorf("Total = %d, want 2 (NaN excluded)", h.Total())
	}
	if h.NaN() != 2 {
		t.Errorf("NaN = %d, want 2", h.NaN())
	}
	if h.Counts[0] != 0 {
		t.Errorf("bin 0 count = %d, want 0 — NaN leaked into the first bin", h.Counts[0])
	}
	var total int
	for _, c := range h.Counts {
		total += c
	}
	if total != 2 {
		t.Errorf("binned %d, want 2", total)
	}
	// ±Inf clamp into the edge bins via the scaled-float comparison.
	h2 := NewHistogram([]float64{math.Inf(-1), math.Inf(1)}, 4, 0, 1)
	if h2.Counts[0] != 1 || h2.Counts[3] != 1 {
		t.Errorf("±Inf bins = %v, want edge bins", h2.Counts)
	}
}

// TestECDFPointsSingleValue pins the degenerate lo == hi grid: a
// constant sample yields n duplicate, finite points at (v, 1) rather
// than NaN xs from a 0/0 interpolation.
func TestECDFPointsSingleValue(t *testing.T) {
	e := NewECDF([]float64{7, 7, 7})
	xs, ys := e.Points(5)
	if len(xs) != 5 || len(ys) != 5 {
		t.Fatalf("got %d/%d points, want 5/5", len(xs), len(ys))
	}
	for i := range xs {
		if xs[i] != 7 || ys[i] != 1 {
			t.Errorf("point %d = (%v, %v), want (7, 1)", i, xs[i], ys[i])
		}
	}
}

// TestMassCountCurveSingleValue pins the same degenerate grid for the
// mass-count curve: n duplicate points, both CDFs at 1, nothing NaN.
func TestMassCountCurveSingleValue(t *testing.T) {
	mc := NewMassCount([]float64{3, 3})
	if mc == nil {
		t.Fatal("constant positive sample rejected")
	}
	xs, count, mass := mc.Curve(4)
	if len(xs) != 4 {
		t.Fatalf("got %d points, want 4", len(xs))
	}
	for i := range xs {
		if xs[i] != 3 || count[i] != 1 || mass[i] != 1 {
			t.Errorf("point %d = (%v, %v, %v), want (3, 1, 1)", i, xs[i], count[i], mass[i])
		}
	}
}
