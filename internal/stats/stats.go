// Package stats implements the statistical machinery of the paper:
// empirical CDFs, histograms/PDFs, mass-count disparity (count CDF,
// mass CDF, joint ratio and mm-distance), Jain's fairness index,
// moments, quantiles, the Gini coefficient, autocorrelation and
// correlation.
package stats

import (
	"math"
	"slices"
)

// ---------------------------------------------------------------------------
// moments and simple summaries

// Sum returns the sum of xs (0 for an empty slice).
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN for an empty
// slice.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (R type-7). It returns NaN
// for an empty slice. xs need not be sorted.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	slices.Sort(sorted)
	return quantileSorted(sorted, p)
}

func quantileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	h := p * float64(len(sorted)-1)
	i := int(math.Floor(h))
	frac := h - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// ---------------------------------------------------------------------------
// ECDF

// ECDF is an empirical cumulative distribution function over a fixed
// sample. Construct with NewECDF, or NewECDFSorted to reuse an
// existing sorted view.
type ECDF struct {
	s *Sorted
}

// NewECDF copies and sorts the sample.
func NewECDF(xs []float64) *ECDF { return &ECDF{s: NewSorted(xs)} }

// NewECDFSorted wraps an existing sorted view without copying or
// re-sorting.
func NewECDFSorted(s *Sorted) *ECDF { return &ECDF{s: s} }

// Len returns the sample size.
func (e *ECDF) Len() int { return e.s.Len() }

// Eval returns P(X <= x).
func (e *ECDF) Eval(x float64) float64 { return e.s.CDF(x) }

// Quantile returns the p-quantile of the sample.
func (e *ECDF) Quantile(p float64) float64 { return e.s.Quantile(p) }

// Points returns up to n (x, F(x)) pairs spanning the sample range,
// suitable for plotting the CDF curve.
func (e *ECDF) Points(n int) (xs, ys []float64) {
	sorted := e.s.Values()
	if len(sorted) == 0 || n <= 0 {
		return nil, nil
	}
	if n == 1 {
		x := sorted[len(sorted)-1]
		return []float64{x}, []float64{1}
	}
	lo, hi := sorted[0], sorted[len(sorted)-1]
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs[i] = x
		ys[i] = e.Eval(x)
	}
	return xs, ys
}

// ---------------------------------------------------------------------------
// Histogram / PDF

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
	nan    int
}

// NewHistogram bins xs into nbins equal-width bins over [lo, hi].
// Values outside the range are clamped into the first/last bin.
func NewHistogram(xs []float64, nbins int, lo, hi float64) *Histogram {
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add records one observation. NaN observations are never binned —
// Go's float-to-int conversion of NaN is unspecified, and before this
// guard they silently landed in bin 0, skewing the distribution — but
// counted separately in NaN.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		h.nan++
		return
	}
	i := h.binIndex(x)
	h.Counts[i]++
	h.total++
}

// binIndex clamps on the scaled float before the int conversion so
// that ±Inf (whose direct conversion is likewise unspecified) lands in
// the edge bin its sign points at. x must not be NaN.
func (h *Histogram) binIndex(x float64) int {
	n := len(h.Counts)
	if h.Hi <= h.Lo {
		return 0
	}
	scaled := float64(n) * (x - h.Lo) / (h.Hi - h.Lo)
	if scaled < 0 {
		return 0
	}
	if scaled >= float64(n) {
		return n - 1
	}
	return int(scaled)
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// NaN returns the number of NaN observations Add rejected.
func (h *Histogram) NaN() int { return h.nan }

// PDF returns the probability mass per bin (sums to 1 for non-empty
// histograms).
func (h *Histogram) PDF() []float64 {
	pdf := make([]float64, len(h.Counts))
	if h.total == 0 {
		return pdf
	}
	for i, c := range h.Counts {
		pdf[i] = float64(c) / float64(h.total)
	}
	return pdf
}

// BinCenters returns the midpoint of each bin.
func (h *Histogram) BinCenters() []float64 {
	n := len(h.Counts)
	cs := make([]float64, n)
	w := (h.Hi - h.Lo) / float64(n)
	for i := range cs {
		cs[i] = h.Lo + w*(float64(i)+0.5)
	}
	return cs
}

// ---------------------------------------------------------------------------
// Mass-count disparity

// MassCount captures the mass-count disparity of a sample of
// non-negative sizes (Feitelson). The count CDF Fc(x) is the fraction
// of items of size <= x; the mass CDF Fm(x) is the fraction of the
// total mass contributed by items of size <= x.
type MassCount struct {
	sorted  []float64 // ascending item sizes
	cumMass []float64 // cumulative mass, cumMass[i] = sum(sorted[:i+1])
	total   float64
}

// NewMassCount builds the disparity structure. Negative values are
// rejected by returning nil; callers should validate inputs.
func NewMassCount(xs []float64) *MassCount {
	if len(xs) == 0 {
		return nil
	}
	return NewMassCountSorted(NewSorted(xs))
}

// NewMassCountSorted builds the disparity structure on an existing
// sorted view, sharing its backing slice (no copy, no re-sort).
func NewMassCountSorted(s *Sorted) *MassCount {
	sorted := s.Values()
	if len(sorted) == 0 || sorted[0] < 0 {
		return nil
	}
	cum := make([]float64, len(sorted))
	var tot float64
	for i, v := range sorted {
		tot += v
		cum[i] = tot
	}
	if tot == 0 {
		return nil
	}
	return &MassCount{sorted: sorted, cumMass: cum, total: tot}
}

// Len returns the number of items.
func (mc *MassCount) Len() int { return len(mc.sorted) }

// CountCDF returns Fc(x), the fraction of items with size <= x.
func (mc *MassCount) CountCDF(x float64) float64 {
	return float64(searchGT(mc.sorted, x)) / float64(len(mc.sorted))
}

// MassCDF returns Fm(x), the fraction of total mass in items <= x.
func (mc *MassCount) MassCDF(x float64) float64 {
	n := searchGT(mc.sorted, x)
	if n == 0 {
		return 0
	}
	return mc.cumMass[n-1] / mc.total
}

// CountMedian returns the median item size (Fc^-1(0.5)).
func (mc *MassCount) CountMedian() float64 {
	return quantileSorted(mc.sorted, 0.5)
}

// MassMedian returns the size x where half of the total mass lies in
// items <= x (Fm^-1(0.5)).
func (mc *MassCount) MassMedian() float64 {
	half := mc.total / 2
	i := searchGE(mc.cumMass, half)
	if i >= len(mc.sorted) {
		i = len(mc.sorted) - 1
	}
	return mc.sorted[i]
}

// MMDistance returns the horizontal distance between the medians of
// the count and mass CDFs, in the units of the item sizes. A large
// value indicates a strong disparity (heavy tail).
func (mc *MassCount) MMDistance() float64 {
	return mc.MassMedian() - mc.CountMedian()
}

// JointRatio returns (itemsPct, massPct) at the crossing point where
// Fc(x) + Fm(x) = 1: itemsPct% of the (largest) items account for
// massPct% of the mass, and vice versa. itemsPct + massPct = 100.
// For the Google task lengths the paper reports 6/94; for AuverGrid
// 24/76.
func (mc *MassCount) JointRatio() (itemsPct, massPct float64) {
	// Walk the sorted items; at each item the pair (Fc, Fm) increases
	// monotonically. Find the first index where Fc + Fm >= 1 and
	// linearly interpolate between the previous and current point so
	// the crossing is exact.
	n := len(mc.sorted)
	prevFc, prevFm := 0.0, 0.0
	for i := 0; i < n; i++ {
		fc := float64(i+1) / float64(n)
		fm := mc.cumMass[i] / mc.total
		if fc+fm >= 1 {
			dfc, dfm := fc-prevFc, fm-prevFm
			t := 1.0
			if dfc+dfm > 0 {
				t = (1 - prevFc - prevFm) / (dfc + dfm)
			}
			cross := prevFc + t*dfc
			// itemsPct is the share of items above the crossing point,
			// which equals the mass share below it.
			return round1(100 * (1 - cross)), round1(100 * cross)
		}
		prevFc, prevFm = fc, fm
	}
	return 0, 100
}

func round1(x float64) float64 { return math.Round(x*10) / 10 }

// Curve returns n points of both CDFs for plotting: xs, count CDF and
// mass CDF values.
func (mc *MassCount) Curve(n int) (xs, count, mass []float64) {
	if n <= 0 || len(mc.sorted) == 0 {
		return nil, nil, nil
	}
	lo, hi := mc.sorted[0], mc.sorted[len(mc.sorted)-1]
	xs = make([]float64, n)
	count = make([]float64, n)
	mass = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo
		if n > 1 {
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		xs[i] = x
		count[i] = mc.CountCDF(x)
		mass[i] = mc.MassCDF(x)
	}
	return xs, count, mass
}

// ---------------------------------------------------------------------------
// fairness, autocorrelation, correlation, Gini

// JainFairness returns Jain's fairness index of xs:
// (Σx)² / (n·Σx²). The index is 1 when all values are equal and
// approaches 1/n as one value dominates. Returns NaN for empty input
// and 1 for an all-zero sample (perfectly equal).
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s, s2 float64
	for _, x := range xs {
		s += x
		s2 += x * x
	}
	if s2 == 0 {
		return 1
	}
	return s * s / (float64(len(xs)) * s2)
}

// Autocorrelation returns the lag-k sample autocorrelation of xs.
// Returns NaN if the series is shorter than k+2 or has zero variance.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || n < lag+2 {
		return math.NaN()
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return math.NaN()
	}
	for i := 0; i < n-lag; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}

// Correlation returns the Pearson correlation of xs and ys.
// Returns NaN if the lengths differ or either side has zero variance.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// KolmogorovSmirnov returns the two-sample KS statistic: the maximum
// vertical distance between the empirical CDFs of xs and ys. It is the
// distance measure used to compare a synthetic distribution against a
// calibration target. Returns NaN if either sample is empty.
func KolmogorovSmirnov(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return math.NaN()
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	slices.Sort(a)
	slices.Sort(b)
	var d float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Evaluate both CDFs just after the next distinct merged value,
		// consuming ties on both sides together.
		v := a[i]
		if b[j] < v {
			v = b[j]
		}
		for i < len(a) && a[i] <= v {
			i++
		}
		for j < len(b) && b[j] <= v {
			j++
		}
		fa := float64(i) / float64(len(a))
		fb := float64(j) / float64(len(b))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// Gini returns the Gini coefficient of the non-negative sample xs:
// 0 for perfect equality, approaching 1 as one item dominates.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	slices.Sort(sorted)
	var cum, weighted float64
	for i, x := range sorted {
		cum += x
		weighted += float64(i+1) * x
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted)/(float64(n)*cum) - float64(n+1)/float64(n)
}
