package stats

import (
	"math"
	"slices"
)

// Sorted is a memoized ascending view of a sample. The experiment
// layers evaluate several kernels — CDF grids, quantiles, mass-count
// disparity, mm-distance — over the same sample vector; each kernel
// used to copy and sort the sample for itself, so one vector could be
// sorted five times per figure. Building a Sorted once and handing it
// to NewECDFSorted / NewMassCountSorted / Quantile sorts exactly once.
//
// The zero value is an empty sample. The view is immutable by
// convention: nothing in this package writes to the backing slice
// after construction, and callers of Values must not either.
type Sorted struct {
	xs []float64
}

// NewSorted copies and sorts the sample. The input is not modified.
func NewSorted(xs []float64) *Sorted {
	s := append([]float64(nil), xs...)
	slices.Sort(s)
	return &Sorted{xs: s}
}

// Len returns the sample size.
func (s *Sorted) Len() int { return len(s.xs) }

// Values returns the ascending sample. Callers must not modify it.
func (s *Sorted) Values() []float64 { return s.xs }

// Min returns the smallest value, or NaN for an empty sample.
func (s *Sorted) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return s.xs[0]
}

// Max returns the largest value, or NaN for an empty sample.
func (s *Sorted) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return s.xs[len(s.xs)-1]
}

// Quantile returns the p-quantile (R type-7, matching Quantile), or
// NaN for an empty sample.
func (s *Sorted) Quantile(p float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return quantileSorted(s.xs, p)
}

// CDF returns the empirical P(X <= x), or NaN for an empty sample.
func (s *Sorted) CDF(x float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return float64(searchGT(s.xs, x)) / float64(len(s.xs))
}

// searchGT returns the number of values <= x: the index of the first
// element strictly greater than x, len(xs) if none. Equivalent to
// sort.SearchFloat64s(xs, math.Nextafter(x, +Inf)) — including for
// NaN x, where the predicate is never true — but monomorphic and
// closure-free, which matters on the 200-point CDF grids.
func searchGT(xs []float64, x float64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// searchGE returns the index of the first element >= x, len(xs) if
// none (sort.SearchFloat64s semantics).
func searchGE(xs []float64, x float64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] >= x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
