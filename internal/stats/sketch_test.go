package stats

import (
	"math"
	"slices"
	"strings"
	"testing"

	"repro/internal/rng"
)

// sketchWorkloads are the seeded sample shapes the randomized
// equivalence tests sweep: smooth, bimodal (the adversary for
// interpolating quantiles) and heavily skewed with range clamping.
func sketchWorkloads(n int) map[string][]float64 {
	mk := func(label string, gen func(s *rng.Stream) float64) []float64 {
		s := rng.New(42).Child(label)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = gen(s)
		}
		return xs
	}
	return map[string][]float64{
		"uniform": mk("uniform", func(s *rng.Stream) float64 { return 100 * s.Float64() }),
		"bimodal": mk("bimodal", func(s *rng.Stream) float64 {
			if s.Bool(0.5) {
				return 5 + 3*s.Float64()
			}
			return 88 + 7*s.Float64()
		}),
		"skewed": mk("skewed", func(s *rng.Stream) float64 {
			return 100 * math.Min(1, s.ExpFloat64()/6)
		}),
		"clamped": mk("clamped", func(s *rng.Stream) float64 {
			return -20 + 140*s.Float64() // out-of-range tails clamp into edge bins
		}),
	}
}

// orderStat is the x_(⌈p·n⌉) convention Sketch.Quantile documents.
func orderStat(sorted []float64, p float64) float64 {
	r := int(math.Ceil(p * float64(len(sorted))))
	if r < 1 {
		r = 1
	}
	if r > len(sorted) {
		r = len(sorted)
	}
	return sorted[r-1]
}

// TestSketchMatchesExactQuantiles is the oracle test for the error
// bound: a spilled sketch's quantiles stay within one bin width of the
// exact order statistic for in-range samples, over several seeded
// workloads and bin resolutions.
func TestSketchMatchesExactQuantiles(t *testing.T) {
	probes := []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}
	for name, xs := range sketchWorkloads(3 * DefaultSketchExactCap) {
		for _, nbins := range []int{10, 100, 1000} {
			sk, err := NewSketch(nbins, 0, 100)
			if err != nil {
				t.Fatal(err)
			}
			sk.AddAll(xs)
			if sk.Exact() {
				t.Fatalf("%s: sketch still exact after %d > cap samples", name, len(xs))
			}
			// Clamp like the sketch does, then sort: the bound is stated
			// over the binned (clamped) sample.
			clamped := make([]float64, len(xs))
			for i, x := range xs {
				clamped[i] = math.Min(100, math.Max(0, x))
			}
			slices.Sort(clamped)
			w := sk.BinWidth()
			for _, p := range probes {
				got, want := sk.Quantile(p), orderStat(clamped, p)
				if math.Abs(got-want) > w {
					t.Errorf("%s bins=%d: Quantile(%g) = %g, exact %g, |err| > bin width %g",
						name, nbins, p, got, want, w)
				}
			}
			if cm := sk.CountMedian(); math.Abs(cm-orderStat(clamped, 0.5)) > w {
				t.Errorf("%s bins=%d: CountMedian err > %g", name, nbins, w)
			}
		}
	}
}

// TestSketchMomentsExact checks the always-exact summaries: count,
// sum, mean, min, max match the flat sample regardless of spilling.
func TestSketchMomentsExact(t *testing.T) {
	for name, xs := range sketchWorkloads(2*DefaultSketchExactCap + 17) {
		sk, err := NewSketch(64, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		sk.AddAll(xs)
		var sum float64
		for _, x := range xs {
			sum += x
		}
		if sk.Count() != len(xs) {
			t.Errorf("%s: Count = %d, want %d", name, sk.Count(), len(xs))
		}
		if sk.Sum() != sum {
			t.Errorf("%s: Sum = %g, want %g", name, sk.Sum(), sum)
		}
		if sk.Mean() != sum/float64(len(xs)) {
			t.Errorf("%s: Mean = %g, want %g", name, sk.Mean(), sum/float64(len(xs)))
		}
		if sk.Min() != Min(xs) || sk.Max() != Max(xs) {
			t.Errorf("%s: Min/Max = %g/%g, want %g/%g", name, sk.Min(), sk.Max(), Min(xs), Max(xs))
		}
	}
}

// TestSketchBinCountsMatchHistogram pins the shared bin convention:
// over any finite sample the sketch's per-bin counts equal
// Histogram.Counts exactly, clamping included.
func TestSketchBinCountsMatchHistogram(t *testing.T) {
	for name, xs := range sketchWorkloads(5000) {
		for _, nbins := range []int{7, 50} {
			sk, err := NewSketch(nbins, 0, 100)
			if err != nil {
				t.Fatal(err)
			}
			sk.AddAll(xs)
			h := NewHistogram(xs, nbins, 0, 100)
			for i, c := range sk.BinCounts() {
				if int(c) != h.Counts[i] {
					t.Fatalf("%s bins=%d: bin %d sketch=%d histogram=%d", name, nbins, i, c, h.Counts[i])
				}
			}
		}
	}
}

// TestSketchExactModeMatchesSample: below the cap, quantiles are the
// order statistics themselves and the CDF is the ECDF.
func TestSketchExactModeMatchesSample(t *testing.T) {
	xs := sketchWorkloads(1000)["bimodal"]
	sk, err := NewSketch(10, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	sk.AddAll(xs)
	if !sk.Exact() {
		t.Fatal("sketch spilled below the cap")
	}
	sorted := append([]float64(nil), xs...)
	slices.Sort(sorted)
	for _, p := range []float64{0, 0.01, 0.3, 0.5, 0.77, 1} {
		if got, want := sk.Quantile(p), orderStat(sorted, p); got != want {
			t.Errorf("exact Quantile(%g) = %g, want order statistic %g", p, got, want)
		}
	}
	e := NewECDF(xs)
	for _, x := range []float64{0, 5.5, 50, 89.2, 100} {
		if got, want := sk.CDF(x), e.Eval(x); got != want {
			t.Errorf("exact CDF(%g) = %g, want ECDF %g", x, got, want)
		}
	}
}

// TestSketchMergeMatchesSequential: partial sketches merged in a fixed
// order reproduce the sequentially-built sketch bit for bit, and the
// merged answers obey the same error bound.
func TestSketchMergeMatchesSequential(t *testing.T) {
	xs := sketchWorkloads(3 * DefaultSketchExactCap)["skewed"]
	whole, _ := NewSketch(200, 0, 100)
	whole.Spill()
	whole.AddAll(xs)

	merged, _ := NewSketch(200, 0, 100)
	merged.Spill()
	const chunks = 7
	for c := 0; c < chunks; c++ {
		part, _ := NewSketch(200, 0, 100)
		part.Spill()
		for i := c; i < len(xs); i += chunks {
			part.Add(xs[i])
		}
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != whole.Count() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatal("merged count/min/max differ from sequential")
	}
	for i, c := range merged.BinCounts() {
		if c != whole.BinCounts()[i] {
			t.Fatalf("bin %d: merged %d, sequential %d", i, c, whole.BinCounts()[i])
		}
	}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if merged.Quantile(p) != whole.Quantile(p) {
			t.Errorf("Quantile(%g): merged %g != sequential %g", p, merged.Quantile(p), whole.Quantile(p))
		}
	}
}

// TestSketchMergeExactness: merging exact sketches stays exact while
// the combined sample fits the cap, and spills beyond it.
func TestSketchMergeExactness(t *testing.T) {
	small := func(n int, base float64) *Sketch {
		sk, _ := NewSketch(10, 0, 100)
		for i := 0; i < n; i++ {
			sk.Add(base + float64(i%10))
		}
		return sk
	}
	a := small(100, 10)
	if err := a.Merge(small(200, 50)); err != nil {
		t.Fatal(err)
	}
	if !a.Exact() {
		t.Error("merge of 300 raw samples spilled below the cap")
	}
	if err := a.Merge(small(DefaultSketchExactCap, 30)); err != nil {
		t.Fatal(err)
	}
	if a.Exact() {
		t.Error("merge past the cap stayed exact")
	}
}

// TestSketchMergeGeometryMismatch: incompatible bin layouts must be
// refused, not silently mangled.
func TestSketchMergeGeometryMismatch(t *testing.T) {
	a, _ := NewSketch(10, 0, 100)
	for _, bad := range []*Sketch{
		func() *Sketch { s, _ := NewSketch(20, 0, 100); return s }(),
		func() *Sketch { s, _ := NewSketch(10, 0, 50); return s }(),
		func() *Sketch { s, _ := NewSketch(10, 1, 100); return s }(),
	} {
		err := a.Merge(bad)
		if err == nil || !strings.Contains(err.Error(), "geometry mismatch") {
			t.Errorf("Merge(%d bins [%v,%v]) err = %v, want geometry mismatch", bad.Bins(), bad.lo, bad.hi, err)
		}
	}
}

// TestSketchRejectsNonFinite: NaN and ±Inf never reach the bins or the
// moments; they only tick Rejected.
func TestSketchRejectsNonFinite(t *testing.T) {
	sk, _ := NewSketch(10, 0, 100)
	sk.AddAll([]float64{10, math.NaN(), 20, math.Inf(1), math.Inf(-1), 30})
	if sk.Count() != 3 || sk.Rejected() != 3 {
		t.Fatalf("Count/Rejected = %d/%d, want 3/3", sk.Count(), sk.Rejected())
	}
	if sk.Sum() != 60 || sk.Min() != 10 || sk.Max() != 30 {
		t.Errorf("moments polluted: sum=%g min=%g max=%g", sk.Sum(), sk.Min(), sk.Max())
	}
	var binned uint64
	for _, c := range sk.BinCounts() {
		binned += c
	}
	if binned != 3 {
		t.Errorf("binned %d observations, want 3", binned)
	}
	// Rejections survive merges.
	other, _ := NewSketch(10, 0, 100)
	other.Add(math.NaN())
	if err := sk.Merge(other); err != nil {
		t.Fatal(err)
	}
	if sk.Rejected() != 4 {
		t.Errorf("merged Rejected = %d, want 4", sk.Rejected())
	}
}

// TestSketchMassCountBounds: mass-median and mm-distance stay within
// their documented one- and two-bin-width bounds of the exact
// MassCount kernel (in the sketch's order-statistic convention).
func TestSketchMassCountBounds(t *testing.T) {
	for name, xs := range sketchWorkloads(3 * DefaultSketchExactCap) {
		clamped := make([]float64, len(xs))
		for i, x := range xs {
			clamped[i] = math.Min(100, math.Max(0, x))
		}
		sk, _ := NewSketch(200, 0, 100)
		sk.Spill()
		sk.AddAll(clamped)
		mc := NewMassCount(clamped)
		if mc == nil {
			t.Fatalf("%s: exact mass-count unavailable", name)
		}
		w := sk.BinWidth()
		if err := math.Abs(sk.MassMedian() - mc.MassMedian()); err > w {
			t.Errorf("%s: MassMedian err %g > bin width %g", name, err, w)
		}
		sorted := append([]float64(nil), clamped...)
		slices.Sort(sorted)
		exactMM := mc.MassMedian() - orderStat(sorted, 0.5)
		if err := math.Abs(sk.MMDistance() - exactMM); err > 2*w {
			t.Errorf("%s: MMDistance err %g > 2 bin widths %g", name, err, 2*w)
		}
	}
}

// TestSketchEmptyAndDegenerate pins the edge behaviours: empty
// sketches answer NaN, NaN probes answer NaN, and constructor
// validation rejects bad geometry.
func TestSketchEmptyAndDegenerate(t *testing.T) {
	if _, err := NewSketch(0, 0, 1); err == nil {
		t.Error("0 bins accepted")
	}
	if _, err := NewSketch(10, 1, 1); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewSketch(10, 0, math.NaN()); err == nil {
		t.Error("NaN range accepted")
	}
	sk, _ := NewSketch(10, 0, 1)
	if !math.IsNaN(sk.Quantile(0.5)) || !math.IsNaN(sk.CDF(0.5)) || !math.IsNaN(sk.Mean()) {
		t.Error("empty sketch answered a number")
	}
	sk.Add(0.5)
	if !math.IsNaN(sk.Quantile(math.NaN())) {
		t.Error("Quantile(NaN) answered a number")
	}
	if !math.IsNaN(sk.CDF(math.NaN())) {
		t.Error("CDF(NaN) answered a number")
	}
	// Single-value sample: every quantile is that value, spilled or not.
	one, _ := NewSketch(10, 0, 1)
	one.Spill()
	one.Add(0.25)
	for _, p := range []float64{0, 0.5, 1} {
		if got := one.Quantile(p); got != 0.25 {
			t.Errorf("single-sample Quantile(%g) = %g, want 0.25", p, got)
		}
	}
}
