package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

func randomSample(n int, seed uint64) []float64 {
	s := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.ExpFloat64() * 100
	}
	return xs
}

func TestNewSortedDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	orig := append([]float64(nil), xs...)
	sv := NewSorted(xs)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("input mutated at %d: %v", i, xs)
		}
	}
	if got := sv.Values(); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("not sorted: %v", got)
	}
	if sv.Min() != 1 || sv.Max() != 3 || sv.Len() != 3 {
		t.Fatalf("min/max/len = %v/%v/%d", sv.Min(), sv.Max(), sv.Len())
	}
}

func TestSortedEmpty(t *testing.T) {
	sv := NewSorted(nil)
	if !math.IsNaN(sv.Min()) || !math.IsNaN(sv.Max()) ||
		!math.IsNaN(sv.Quantile(0.5)) || !math.IsNaN(sv.CDF(1)) {
		t.Error("empty sample should yield NaN everywhere")
	}
}

// TestSortedMatchesUnsortedKernels pins the refactor invariant: every
// kernel reachable through a shared Sorted view returns bit-identical
// results to the standalone entry point it replaced.
func TestSortedMatchesUnsortedKernels(t *testing.T) {
	xs := randomSample(5000, 7)
	sv := NewSorted(xs)

	for _, p := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := sv.Quantile(p), Quantile(xs, p); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", p, got, want)
		}
	}

	plain := NewECDF(xs)
	shared := NewECDFSorted(sv)
	for x := -10.0; x < 500; x += 7.3 {
		if got, want := shared.Eval(x), plain.Eval(x); got != want {
			t.Errorf("ECDF(%v) = %v, want %v", x, got, want)
		}
		if got, want := sv.CDF(x), plain.Eval(x); got != want {
			t.Errorf("Sorted.CDF(%v) = %v, want %v", x, got, want)
		}
	}

	mcPlain := NewMassCount(xs)
	mcShared := NewMassCountSorted(sv)
	i1, m1 := mcPlain.JointRatio()
	i2, m2 := mcShared.JointRatio()
	if i1 != i2 || m1 != m2 {
		t.Errorf("JointRatio: plain %v/%v vs shared %v/%v", i1, m1, i2, m2)
	}
	if d1, d2 := mcPlain.MMDistance(), mcShared.MMDistance(); d1 != d2 {
		t.Errorf("MMDistance: %v vs %v", d1, d2)
	}
}

// TestSearchSemantics checks the monomorphic binary searches against
// the sort-package formulations they replaced, NaN queries included.
func TestSearchSemantics(t *testing.T) {
	xs := []float64{1, 2, 2, 2, 5, 9}
	queries := []float64{0, 1, 1.5, 2, 3, 5, 9, 10, math.Inf(1), math.Inf(-1), math.NaN()}
	for _, q := range queries {
		if got, want := searchGT(xs, q), sort.SearchFloat64s(xs, math.Nextafter(q, math.Inf(1))); got != want {
			t.Errorf("searchGT(%v) = %d, want %d", q, got, want)
		}
		if got, want := searchGE(xs, q), sort.SearchFloat64s(xs, q); got != want {
			t.Errorf("searchGE(%v) = %d, want %d", q, got, want)
		}
	}
}
