package stats

import (
	"fmt"
	"math"
	"slices"
)

// DefaultSketchExactCap is how many raw samples a Sketch retains
// before it spills to bin-only resolution. Below the cap every query
// answers from the exact sample; above it memory stays O(bins).
const DefaultSketchExactCap = 4096

// Sketch is a one-pass, mergeable, deterministic summary of a sample
// over a fixed range [Lo, Hi]: equal-width bins holding per-bin counts
// and per-bin mass, plus exactly tracked count, sum, min and max. It
// is the streaming replacement for the fully-materialized sorted
// vectors the Section IV kernels (ECDF, quantiles, mass-count
// disparity) otherwise require: per-machine scans feed per-machine
// sketches in O(bins) memory each, and Merge folds them into a
// population sketch in any caller-chosen (fixed) order.
//
// Exactness fallback: a sketch additionally buffers raw samples until
// DefaultSketchExactCap is exceeded (or Spill is called). While the
// buffer is live, Quantile/CDF/mass-count queries answer from the
// exact sample; afterwards they answer from the bins.
//
// Error bound (spilled): for samples inside [Lo, Hi], Quantile(p)
// approximates the empirical order statistic x_(⌈p·n⌉) within one bin
// width w = (Hi-Lo)/bins, because that order statistic provably lies
// in the bin the rank walk selects and the interpolated answer never
// leaves that bin. CountMedian and MassMedian carry the same ≤ w
// bound, so MMDistance is within 2w. CDF is exact at bin boundaries
// and interpolates inside a bin (error ≤ that bin's count fraction).
// Samples outside [Lo, Hi] are clamped into the edge bins, exactly
// like Histogram, and are excluded from the bound.
//
// Binning uses the same index convention as Histogram.Add, so a
// sketch's BinCounts over in-range data equal Histogram.Counts
// exactly. Non-finite observations (NaN, ±Inf) are never binned —
// they would poison the mass sums and Go leaves the int conversion of
// such values unspecified — but counted in Rejected.
//
// Determinism: Add and Merge are plain float accumulations with no
// randomization, so a fixed insertion/merge order reproduces the same
// sketch bit for bit.
type Sketch struct {
	lo, hi   float64
	counts   []uint64
	mass     []float64 // per-bin sum of sample values
	n        uint64
	rejected uint64
	sum      float64
	min, max float64
	raw      []float64 // exact buffer; nil once spilled
	spilled  bool
}

// NewSketch builds an empty sketch with nbins equal-width bins over
// [lo, hi]. nbins must be positive and the range finite and non-empty.
func NewSketch(nbins int, lo, hi float64) (*Sketch, error) {
	if nbins < 1 {
		return nil, fmt.Errorf("stats: sketch needs at least 1 bin, got %d", nbins)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) || hi <= lo {
		return nil, fmt.Errorf("stats: sketch range [%v, %v] must be finite with hi > lo", lo, hi)
	}
	return &Sketch{
		lo:     lo,
		hi:     hi,
		counts: make([]uint64, nbins),
		mass:   make([]float64, nbins),
	}, nil
}

// Bins returns the number of bins.
func (sk *Sketch) Bins() int { return len(sk.counts) }

// BinWidth returns the width of one bin, the documented worst-case
// absolute error of a spilled Quantile over in-range samples.
func (sk *Sketch) BinWidth() float64 { return (sk.hi - sk.lo) / float64(len(sk.counts)) }

// Count returns how many observations were accepted.
func (sk *Sketch) Count() int { return int(sk.n) }

// Rejected returns how many non-finite observations Add refused.
func (sk *Sketch) Rejected() int { return int(sk.rejected) }

// Sum returns the exact sum of accepted observations.
func (sk *Sketch) Sum() float64 { return sk.sum }

// Mean returns the exact mean of accepted observations, or NaN when
// empty.
func (sk *Sketch) Mean() float64 {
	if sk.n == 0 {
		return math.NaN()
	}
	return sk.sum / float64(sk.n)
}

// Min returns the smallest accepted observation, or NaN when empty.
func (sk *Sketch) Min() float64 {
	if sk.n == 0 {
		return math.NaN()
	}
	return sk.min
}

// Max returns the largest accepted observation, or NaN when empty.
func (sk *Sketch) Max() float64 {
	if sk.n == 0 {
		return math.NaN()
	}
	return sk.max
}

// Exact reports whether queries still answer from the raw sample.
func (sk *Sketch) Exact() bool { return !sk.spilled }

// BinCounts returns the per-bin observation counts. Callers must not
// modify the returned slice.
func (sk *Sketch) BinCounts() []uint64 { return sk.counts }

// Spill drops the raw exactness buffer, capping memory at O(bins).
// Streaming callers (one sketch per machine, merged across thousands)
// call it up front so no partial ever holds raw samples.
func (sk *Sketch) Spill() {
	sk.raw = nil
	sk.spilled = true
}

// binIndex mirrors Histogram's convention: scale into [0, bins) and
// clamp. The comparisons run on the scaled float before the int
// conversion, so ±Inf clamp into the edge bins instead of hitting
// Go's unspecified float-to-int conversion. x must not be NaN.
func (sk *Sketch) binIndex(x float64) int {
	scaled := float64(len(sk.counts)) * (x - sk.lo) / (sk.hi - sk.lo)
	if scaled < 0 {
		return 0
	}
	if scaled >= float64(len(sk.counts)) {
		return len(sk.counts) - 1
	}
	return int(scaled)
}

// Add records one observation. Non-finite values are counted in
// Rejected and otherwise ignored.
func (sk *Sketch) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		sk.rejected++
		return
	}
	i := sk.binIndex(x)
	sk.counts[i]++
	sk.mass[i] += x
	sk.sum += x
	if sk.n == 0 {
		sk.min, sk.max = x, x
	} else {
		if x < sk.min {
			sk.min = x
		}
		if x > sk.max {
			sk.max = x
		}
	}
	sk.n++
	if !sk.spilled {
		if len(sk.raw) >= DefaultSketchExactCap {
			sk.Spill()
		} else {
			sk.raw = append(sk.raw, x)
		}
	}
}

// AddAll records every observation in xs.
func (sk *Sketch) AddAll(xs []float64) {
	for _, x := range xs {
		sk.Add(x)
	}
}

// Merge folds other into sk. Both sketches must share the same bin
// geometry. The result is exact iff both inputs were exact and the
// combined raw sample still fits the exactness cap; otherwise it
// spills. Merging in a fixed order is deterministic.
func (sk *Sketch) Merge(other *Sketch) error {
	if len(sk.counts) != len(other.counts) || sk.lo != other.lo || sk.hi != other.hi {
		return fmt.Errorf("stats: sketch merge geometry mismatch: %d bins [%v,%v] vs %d bins [%v,%v]",
			len(sk.counts), sk.lo, sk.hi, len(other.counts), other.lo, other.hi)
	}
	if sk.spilled || other.spilled || len(sk.raw)+len(other.raw) > DefaultSketchExactCap {
		sk.Spill()
	} else {
		sk.raw = append(sk.raw, other.raw...)
	}
	for i, c := range other.counts {
		sk.counts[i] += c
		sk.mass[i] += other.mass[i]
	}
	sk.sum += other.sum
	sk.rejected += other.rejected
	if other.n > 0 {
		if sk.n == 0 {
			sk.min, sk.max = other.min, other.max
		} else {
			if other.min < sk.min {
				sk.min = other.min
			}
			if other.max > sk.max {
				sk.max = other.max
			}
		}
	}
	sk.n += other.n
	return nil
}

// sortedRaw returns the ascending raw sample (only valid while exact).
func (sk *Sketch) sortedRaw() []float64 {
	s := append([]float64(nil), sk.raw...)
	slices.Sort(s)
	return s
}

// rank returns the 1-based target rank for the p-quantile: ⌈p·n⌉
// clamped to [1, n].
func (sk *Sketch) rank(p float64) uint64 {
	r := uint64(math.Ceil(p * float64(sk.n)))
	if r < 1 {
		r = 1
	}
	if r > sk.n {
		r = sk.n
	}
	return r
}

// Quantile returns the p-quantile: the empirical order statistic
// x_(⌈p·n⌉), exactly while the raw buffer is live and within one bin
// width afterwards (see the type comment for the bound). Unlike
// Quantile/quantileSorted it does not interpolate between order
// statistics, so compare it against the same order-statistic
// convention. Returns NaN when empty.
func (sk *Sketch) Quantile(p float64) float64 {
	if sk.n == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return sk.min
	}
	if p >= 1 {
		return sk.max
	}
	r := sk.rank(p)
	if !sk.spilled {
		return sk.sortedRaw()[r-1]
	}
	var cum uint64
	for b, c := range sk.counts {
		if cum+c >= r {
			// The rank-r sample lies in bin b; place the answer at the
			// matching within-bin count fraction and clamp to the
			// observed range so p near 0/1 stays exact at the edges.
			x := sk.lo + sk.BinWidth()*(float64(b)+float64(r-cum)/float64(c))
			if x < sk.min {
				x = sk.min
			}
			if x > sk.max {
				x = sk.max
			}
			return x
		}
		cum += c
	}
	return sk.max
}

// CDF returns P(X <= x): exact while the raw buffer is live, and
// afterwards exact at bin boundaries with linear interpolation inside
// a bin. Returns NaN when empty.
func (sk *Sketch) CDF(x float64) float64 {
	if sk.n == 0 || math.IsNaN(x) {
		return math.NaN()
	}
	if !sk.spilled {
		return float64(searchGT(sk.sortedRaw(), x)) / float64(sk.n)
	}
	if x < sk.lo {
		return 0
	}
	if x >= sk.hi {
		return 1
	}
	w := sk.BinWidth()
	b := sk.binIndex(x)
	var cum uint64
	for i := 0; i < b; i++ {
		cum += sk.counts[i]
	}
	frac := (x - (sk.lo + float64(b)*w)) / w
	return (float64(cum) + frac*float64(sk.counts[b])) / float64(sk.n)
}

// CountMedian returns the median observation (Quantile(0.5)).
func (sk *Sketch) CountMedian() float64 { return sk.Quantile(0.5) }

// MassMedian returns the value x where half of the total mass lies in
// observations <= x — the streaming analogue of MassCount.MassMedian.
// Within one bin width of the exact answer once spilled. Returns NaN
// for empty or non-positive-mass sketches.
func (sk *Sketch) MassMedian() float64 {
	if sk.n == 0 || sk.sum <= 0 {
		return math.NaN()
	}
	if !sk.spilled {
		if mc := NewMassCount(sk.raw); mc != nil {
			return mc.MassMedian()
		}
		return math.NaN()
	}
	half := sk.sum / 2
	var cum float64
	for b, m := range sk.mass {
		if cum+m >= half {
			frac := 0.0
			if m > 0 {
				frac = (half - cum) / m
			}
			x := sk.lo + sk.BinWidth()*(float64(b)+frac)
			if x < sk.min {
				x = sk.min
			}
			if x > sk.max {
				x = sk.max
			}
			return x
		}
		cum += m
	}
	return sk.max
}

// MMDistance returns MassMedian - CountMedian, the paper's mm-distance
// in value units; within two bin widths of the exact kernel once
// spilled.
func (sk *Sketch) MMDistance() float64 { return sk.MassMedian() - sk.CountMedian() }

// JointRatio returns the mass-count crossing point (itemsPct, massPct)
// where count CDF + mass CDF = 1, mirroring MassCount.JointRatio at
// bin resolution: itemsPct% of the largest items carry massPct% of
// the mass. Returns (NaN, NaN) for empty or non-positive-mass
// sketches.
func (sk *Sketch) JointRatio() (itemsPct, massPct float64) {
	if sk.n == 0 || sk.sum <= 0 {
		return math.NaN(), math.NaN()
	}
	if !sk.spilled {
		if mc := NewMassCount(sk.raw); mc != nil {
			return mc.JointRatio()
		}
		return math.NaN(), math.NaN()
	}
	prevFc, prevFm := 0.0, 0.0
	var cumN uint64
	var cumM float64
	for b := range sk.counts {
		cumN += sk.counts[b]
		cumM += sk.mass[b]
		fc := float64(cumN) / float64(sk.n)
		fm := cumM / sk.sum
		if fc+fm >= 1 {
			dfc, dfm := fc-prevFc, fm-prevFm
			t := 1.0
			if dfc+dfm > 0 {
				t = (1 - prevFc - prevFm) / (dfc + dfm)
			}
			cross := prevFc + t*dfc
			return round1(100 * (1 - cross)), round1(100 * cross)
		}
		prevFc, prevFm = fc, fm
	}
	return 0, 100
}
