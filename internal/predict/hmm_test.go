package predict

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewHMMValidation(t *testing.T) {
	if _, err := NewHMM(0, 5, rng.New(1)); err == nil {
		t.Error("zero states accepted")
	}
	if _, err := NewHMM(2, 1, rng.New(1)); err == nil {
		t.Error("single-level alphabet accepted")
	}
	h, err := NewHMM(3, 5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// All parameter rows are distributions.
	checkDist := func(name string, d []float64) {
		var sum float64
		for _, v := range d {
			if v < 0 {
				t.Fatalf("%s has negative entry", name)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s sums to %v", name, sum)
		}
	}
	checkDist("pi", h.Pi)
	for i := range h.A {
		checkDist("A", h.A[i])
		checkDist("B", h.B[i])
	}
}

// twoRegimeObs builds a sequence that alternates between a low regime
// (levels 0/1) and a high regime (levels 3/4) with long dwell times.
func twoRegimeObs(n int, seed uint64) []int {
	s := rng.New(seed)
	obs := make([]int, n)
	high := false
	for i := range obs {
		if s.Bool(0.02) {
			high = !high
		}
		if high {
			obs[i] = 3 + s.IntN(2)
		} else {
			obs[i] = s.IntN(2)
		}
	}
	return obs
}

func TestTrainIncreasesLikelihood(t *testing.T) {
	obs := twoRegimeObs(800, 2)
	h, err := NewHMM(2, 5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	before, err := h.LogLikelihood(obs)
	if err != nil {
		t.Fatal(err)
	}
	after, err := h.Train(obs, 25, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatalf("training did not improve likelihood: %v -> %v", before, after)
	}
	// Parameters stay proper distributions.
	for i := range h.A {
		var sa, sb float64
		for _, v := range h.A[i] {
			sa += v
		}
		for _, v := range h.B[i] {
			sb += v
		}
		if math.Abs(sa-1) > 1e-6 || math.Abs(sb-1) > 1e-6 {
			t.Fatalf("rows not normalised: A %v B %v", sa, sb)
		}
	}
}

func TestTrainedHMMSeparatesRegimes(t *testing.T) {
	obs := twoRegimeObs(1500, 4)
	h, err := NewHMM(2, 5, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Train(obs, 40, 1e-6); err != nil {
		t.Fatal(err)
	}
	// One state should emit mostly low levels, the other mostly high.
	lowMass := func(b []float64) float64 { return b[0] + b[1] }
	m0, m1 := lowMass(h.B[0]), lowMass(h.B[1])
	if !(m0 > 0.8 && m1 < 0.2) && !(m1 > 0.8 && m0 < 0.2) {
		t.Fatalf("states did not separate regimes: lowMass = %v, %v", m0, m1)
	}
	// Dwell times are long: self-transitions dominate.
	if h.A[0][0] < 0.8 || h.A[1][1] < 0.8 {
		t.Fatalf("self-transitions too weak: %v %v", h.A[0][0], h.A[1][1])
	}
}

func TestPredictNextLevelPersistence(t *testing.T) {
	obs := twoRegimeObs(1500, 6)
	h, err := NewHMM(2, 5, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Train(obs, 40, 1e-6); err != nil {
		t.Fatal(err)
	}
	// After a long run of high observations the next level should be
	// high too.
	highTail := append(append([]int{}, obs...), 4, 3, 4, 4, 3, 4, 4, 4)
	next, err := h.PredictNextLevel(highTail)
	if err != nil {
		t.Fatal(err)
	}
	if next < 3 {
		t.Fatalf("predicted level %d after a high run, want >= 3", next)
	}
}

func TestForwardErrors(t *testing.T) {
	h, _ := NewHMM(2, 3, rng.New(8))
	if _, err := h.LogLikelihood(nil); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := h.LogLikelihood([]int{0, 7}); err == nil {
		t.Error("out-of-alphabet observation accepted")
	}
	if _, err := h.Train([]int{1, 2}, 5, 1e-6); err == nil {
		t.Error("too-short training sequence accepted")
	}
}

func TestHMMPredictorInterface(t *testing.T) {
	var p Predictor = &HMMPredictor{StatesN: 2, Levels: 5, Window: 200, Retrain: 50, Seed: 9}
	if p.Name() == "" {
		t.Fatal("no name")
	}
	// Square-wave load: the predictor should stay near the current
	// plateau most of the time.
	var h []float64
	for i := 0; i < 600; i++ {
		if (i/100)%2 == 0 {
			h = append(h, 0.1)
		} else {
			h = append(h, 0.9)
		}
	}
	pred := p.Predict(h) // history ends mid-plateau at 0.9
	if math.Abs(pred-0.9) > 0.25 {
		t.Fatalf("plateau prediction %v, want near 0.9", pred)
	}
	// Tiny histories fall back to persistence.
	if got := p.Predict([]float64{0.3, 0.4}); got != 0.4 {
		t.Fatalf("short-history fallback %v", got)
	}
}

func TestHMMPredictorInSuiteEvaluation(t *testing.T) {
	// The HMM predictor must run through the evaluation harness and
	// produce a sane error on a stable signal.
	vs := make([]float64, 400)
	for i := range vs {
		vs[i] = 0.5
	}
	s := series(vs)
	e := Evaluate(&HMMPredictor{StatesN: 2, Levels: 5, Window: 100, Retrain: 100, Seed: 1}, s, 50)
	if e.N == 0 {
		t.Fatal("no evaluations")
	}
	if e.MAE > 0.15 {
		t.Fatalf("MAE %v on constant signal", e.MAE)
	}
}
