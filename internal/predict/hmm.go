package predict

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// HMM is a discrete hidden Markov model over quantised usage levels,
// trained with the Baum-Welch algorithm (with per-step scaling). It is
// the modelling approach of Khan et al. ("Workload characterization
// and prediction in the cloud: a multiple time series approach"),
// which the paper discusses as the natural next step after its
// characterization: latent regimes (idle, busy, bursty) drive the
// observable load levels.
type HMM struct {
	States int // hidden states
	Levels int // observation alphabet size (usage levels)

	Pi []float64   // initial state distribution
	A  [][]float64 // transition probabilities [from][to]
	B  [][]float64 // emission probabilities [state][level]
}

// NewHMM initialises a model with slightly perturbed uniform
// parameters (exact uniformity is a saddle point for Baum-Welch).
func NewHMM(states, levels int, s *rng.Stream) (*HMM, error) {
	if states < 1 || levels < 2 {
		return nil, fmt.Errorf("predict: hmm needs states >= 1 and levels >= 2")
	}
	h := &HMM{States: states, Levels: levels}
	h.Pi = randomDist(states, s)
	h.A = make([][]float64, states)
	h.B = make([][]float64, states)
	for i := 0; i < states; i++ {
		h.A[i] = randomDist(states, s)
		h.B[i] = randomDist(levels, s)
	}
	return h, nil
}

func randomDist(n int, s *rng.Stream) []float64 {
	out := make([]float64, n)
	var sum float64
	for i := range out {
		out[i] = 0.2 + s.Float64()
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// forward computes scaled forward variables. alpha[t][i] is
// P(state=i | obs[0..t]) under the scaling; the log-likelihood is the
// negated sum of log scales.
func (h *HMM) forward(obs []int) (alpha [][]float64, logLik float64, err error) {
	T := len(obs)
	if T == 0 {
		return nil, 0, fmt.Errorf("predict: empty observation sequence")
	}
	for _, o := range obs {
		if o < 0 || o >= h.Levels {
			return nil, 0, fmt.Errorf("predict: observation %d outside alphabet [0,%d)", o, h.Levels)
		}
	}
	alpha = make([][]float64, T)
	alpha[0] = make([]float64, h.States)
	var c float64
	for i := 0; i < h.States; i++ {
		alpha[0][i] = h.Pi[i] * h.B[i][obs[0]]
		c += alpha[0][i]
	}
	if c == 0 {
		return nil, 0, fmt.Errorf("predict: impossible first observation")
	}
	logLik = math.Log(c)
	for i := range alpha[0] {
		alpha[0][i] /= c
	}
	for t := 1; t < T; t++ {
		alpha[t] = make([]float64, h.States)
		c = 0
		for j := 0; j < h.States; j++ {
			var s float64
			for i := 0; i < h.States; i++ {
				s += alpha[t-1][i] * h.A[i][j]
			}
			alpha[t][j] = s * h.B[j][obs[t]]
			c += alpha[t][j]
		}
		if c == 0 {
			return nil, 0, fmt.Errorf("predict: impossible observation at %d", t)
		}
		logLik += math.Log(c)
		for j := range alpha[t] {
			alpha[t][j] /= c
		}
	}
	return alpha, logLik, nil
}

// backward computes the scaled backward variables matching forward's
// scaling (each step renormalised to sum 1).
func (h *HMM) backward(obs []int) [][]float64 {
	T := len(obs)
	beta := make([][]float64, T)
	beta[T-1] = make([]float64, h.States)
	for i := range beta[T-1] {
		beta[T-1][i] = 1
	}
	for t := T - 2; t >= 0; t-- {
		beta[t] = make([]float64, h.States)
		var c float64
		for i := 0; i < h.States; i++ {
			var s float64
			for j := 0; j < h.States; j++ {
				s += h.A[i][j] * h.B[j][obs[t+1]] * beta[t+1][j]
			}
			beta[t][i] = s
			c += s
		}
		if c > 0 {
			for i := range beta[t] {
				beta[t][i] /= c
			}
		}
	}
	return beta
}

// LogLikelihood returns log P(obs | model).
func (h *HMM) LogLikelihood(obs []int) (float64, error) {
	_, ll, err := h.forward(obs)
	return ll, err
}

// Train runs Baum-Welch for at most iters iterations, stopping early
// when the log-likelihood improves by less than tol. It returns the
// final log-likelihood.
func (h *HMM) Train(obs []int, iters int, tol float64) (float64, error) {
	if len(obs) < 3 {
		return 0, fmt.Errorf("predict: need at least 3 observations")
	}
	prev := math.Inf(-1)
	var ll float64
	for it := 0; it < iters; it++ {
		alpha, l, err := h.forward(obs)
		if err != nil {
			return 0, err
		}
		ll = l
		beta := h.backward(obs)
		T := len(obs)

		// gamma[t][i] ∝ alpha[t][i] * beta[t][i]
		gamma := make([][]float64, T)
		for t := 0; t < T; t++ {
			gamma[t] = make([]float64, h.States)
			var c float64
			for i := 0; i < h.States; i++ {
				gamma[t][i] = alpha[t][i] * beta[t][i]
				c += gamma[t][i]
			}
			if c > 0 {
				for i := range gamma[t] {
					gamma[t][i] /= c
				}
			}
		}

		// Re-estimate transitions.
		newA := make([][]float64, h.States)
		for i := 0; i < h.States; i++ {
			newA[i] = make([]float64, h.States)
			var den float64
			for t := 0; t < T-1; t++ {
				// xi[t][i][j] ∝ alpha[t][i] A[i][j] B[j][o+1] beta[t+1][j]
				var rowSum float64
				row := make([]float64, h.States)
				for j := 0; j < h.States; j++ {
					row[j] = alpha[t][i] * h.A[i][j] * h.B[j][obs[t+1]] * beta[t+1][j]
					rowSum += row[j]
				}
				// Normalise xi by the total over all i,j at time t; using
				// gamma keeps the scaling consistent:
				var tot float64
				for ii := 0; ii < h.States; ii++ {
					for j := 0; j < h.States; j++ {
						tot += alpha[t][ii] * h.A[ii][j] * h.B[j][obs[t+1]] * beta[t+1][j]
					}
				}
				if tot > 0 {
					for j := 0; j < h.States; j++ {
						newA[i][j] += row[j] / tot
					}
					den += rowSum / tot
				}
			}
			if den > 0 {
				for j := range newA[i] {
					newA[i][j] /= den
				}
			} else {
				copy(newA[i], h.A[i])
			}
		}

		// Re-estimate emissions and initials.
		newB := make([][]float64, h.States)
		for i := 0; i < h.States; i++ {
			newB[i] = make([]float64, h.Levels)
			var den float64
			for t := 0; t < T; t++ {
				newB[i][obs[t]] += gamma[t][i]
				den += gamma[t][i]
			}
			if den > 0 {
				for k := range newB[i] {
					newB[i][k] /= den
				}
			} else {
				copy(newB[i], h.B[i])
			}
			// Floor to keep the model able to explain unseen levels.
			const floor = 1e-6
			var c float64
			for k := range newB[i] {
				if newB[i][k] < floor {
					newB[i][k] = floor
				}
				c += newB[i][k]
			}
			for k := range newB[i] {
				newB[i][k] /= c
			}
		}
		copy(h.Pi, gamma[0])
		h.A, h.B = newA, newB

		if ll-prev < tol && it > 0 {
			break
		}
		prev = ll
	}
	return ll, nil
}

// PredictNextLevel returns the most probable next observation level
// given the history: argmax_k sum_i P(state_i | obs) sum_j A[i][j] B[j][k].
func (h *HMM) PredictNextLevel(obs []int) (int, error) {
	alpha, _, err := h.forward(obs)
	if err != nil {
		return 0, err
	}
	cur := alpha[len(obs)-1]
	best, bestP := 0, -1.0
	for k := 0; k < h.Levels; k++ {
		var p float64
		for i := 0; i < h.States; i++ {
			for j := 0; j < h.States; j++ {
				p += cur[i] * h.A[i][j] * h.B[j][k]
			}
		}
		if p > bestP {
			best, bestP = k, p
		}
	}
	return best, nil
}

// HMMPredictor adapts the HMM to the Predictor interface: it quantises
// the history into Levels bins, trains on the trailing Window samples
// (retraining every Retrain steps to amortise Baum-Welch), and
// predicts the midpoint of the most probable next level.
// Not safe for concurrent use.
type HMMPredictor struct {
	StatesN int
	Levels  int
	Window  int
	Retrain int
	Seed    uint64

	model     *HMM
	trainedAt int
}

// Name implements Predictor.
func (p *HMMPredictor) Name() string {
	return fmt.Sprintf("hmm(%d states,%d levels)", p.StatesN, p.Levels)
}

// Predict implements Predictor.
func (p *HMMPredictor) Predict(h []float64) float64 {
	levels := p.Levels
	if levels < 2 {
		levels = 5
	}
	states := p.StatesN
	if states < 1 {
		states = 3
	}
	w := p.Window
	if w < 12 {
		w = 288
	}
	retrain := p.Retrain
	if retrain < 1 {
		retrain = 144
	}
	lo := len(h) - w
	if lo < 0 {
		lo = 0
	}
	win := h[lo:]
	obs := make([]int, len(win))
	for i, v := range win {
		l := int(v * float64(levels))
		if l < 0 {
			l = 0
		}
		if l >= levels {
			l = levels - 1
		}
		obs[i] = l
	}
	if len(obs) < 6 {
		return h[len(h)-1]
	}
	if p.model == nil || len(h)-p.trainedAt >= retrain {
		m, err := NewHMM(states, levels, rng.New(p.Seed+1))
		if err != nil {
			return h[len(h)-1]
		}
		if _, err := m.Train(obs, 15, 1e-3); err != nil {
			return h[len(h)-1]
		}
		p.model = m
		p.trainedAt = len(h)
	}
	next, err := p.model.PredictNextLevel(obs)
	if err != nil {
		return h[len(h)-1]
	}
	return (float64(next) + 0.5) / float64(levels)
}
