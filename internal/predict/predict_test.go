package predict

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/timeseries"
)

func series(vs []float64) *timeseries.Series {
	return &timeseries.Series{Start: 0, Step: 300, Values: vs}
}

func TestLastValue(t *testing.T) {
	p := LastValue{}
	if p.Predict([]float64{1, 2, 3}) != 3 {
		t.Fatal("last-value wrong")
	}
	if p.Name() != "last-value" {
		t.Fatal("name wrong")
	}
}

func TestMovingAverage(t *testing.T) {
	p := MovingAverage{Window: 2}
	if got := p.Predict([]float64{1, 2, 4}); got != 3 {
		t.Fatalf("moving average %v, want 3", got)
	}
	// Window larger than history: use everything.
	if got := p.Predict([]float64{6}); got != 6 {
		t.Fatalf("short history %v", got)
	}
	// Zero window coerces to 1.
	if got := (MovingAverage{}).Predict([]float64{1, 9}); got != 9 {
		t.Fatalf("zero window %v", got)
	}
}

func TestExpSmoothing(t *testing.T) {
	p := ExpSmoothing{Alpha: 0.5}
	// s = 0.5*4 + 0.5*(0.5*2 + 0.5*0) = 2.5
	if got := p.Predict([]float64{0, 2, 4}); got != 2.5 {
		t.Fatalf("exp smoothing %v, want 2.5", got)
	}
	// Alpha 1 reduces to last value.
	if got := (ExpSmoothing{Alpha: 1}).Predict([]float64{1, 7}); got != 7 {
		t.Fatalf("alpha 1 %v", got)
	}
}

func TestAR1PerfectLinear(t *testing.T) {
	// x_{t+1} = 0.5*x_t + 1: fixed point at 2.
	vs := []float64{0}
	for i := 0; i < 30; i++ {
		vs = append(vs, 0.5*vs[len(vs)-1]+1)
	}
	p := AR1{Window: 30}
	pred := p.Predict(vs)
	want := 0.5*vs[len(vs)-1] + 1
	if math.Abs(pred-want) > 1e-6 {
		t.Fatalf("AR1 %v, want %v", pred, want)
	}
}

func TestAR1DegenerateFallsBack(t *testing.T) {
	p := AR1{Window: 10}
	vs := []float64{3, 3, 3, 3, 3, 3}
	if got := p.Predict(vs); got != 3 {
		t.Fatalf("degenerate AR1 %v, want 3", got)
	}
	if got := p.Predict([]float64{1, 2}); got != 2 {
		t.Fatalf("short AR1 %v, want last value", got)
	}
}

func TestMarkovLevelPersistence(t *testing.T) {
	// A series that flips 0.1 -> 0.9 -> 0.1 ... : from level 0 the most
	// likely next level is 4.
	var vs []float64
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			vs = append(vs, 0.1)
		} else {
			vs = append(vs, 0.9)
		}
	}
	p := MarkovLevel{Levels: 5, Window: 40}
	pred := p.Predict(vs) // last value 0.9 (level 4) -> next level 0
	if usageLevel(pred) != 0 {
		t.Fatalf("markov predicted level %d, want 0 (pred %v)", usageLevel(pred), pred)
	}
	// Constant series stays put.
	flat := make([]float64, 20)
	for i := range flat {
		flat[i] = 0.5
	}
	if got := p.Predict(flat); usageLevel(got) != 2 {
		t.Fatalf("flat markov %v", got)
	}
}

func TestMarkovLevelUnseenState(t *testing.T) {
	// Last value jumps to a level never seen before: fall back to it.
	vs := []float64{0.1, 0.1, 0.1, 0.1, 0.95}
	p := MarkovLevel{Levels: 5, Window: 10}
	if got := p.Predict(vs); got != 0.95 {
		t.Fatalf("unseen state %v, want persistence", got)
	}
}

func TestEvaluatePerfectPredictor(t *testing.T) {
	s := series([]float64{0.5, 0.5, 0.5, 0.5, 0.5})
	e := Evaluate(LastValue{}, s, 1)
	if e.MAE != 0 || e.RMSE != 0 || e.LevelHitRate != 1 || e.N != 4 {
		t.Fatalf("perfect evaluation %+v", e)
	}
}

func TestEvaluateKnownError(t *testing.T) {
	s := series([]float64{0, 1, 0, 1, 0})
	e := Evaluate(LastValue{}, s, 1)
	if e.MAE != 1 || e.RMSE != 1 {
		t.Fatalf("alternating evaluation %+v", e)
	}
	if e.LevelHitRate != 0 {
		t.Fatalf("hit rate %v, want 0", e.LevelHitRate)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	s := series([]float64{1})
	if e := Evaluate(LastValue{}, s, 5); e.N != 0 {
		t.Fatalf("empty evaluation %+v", e)
	}
}

func TestEvaluateAllAverages(t *testing.T) {
	a := series([]float64{0.5, 0.5, 0.5})
	b := series([]float64{0, 1, 0})
	e := EvaluateAll(LastValue{}, []*timeseries.Series{a, b}, 1)
	if e.N != 4 {
		t.Fatalf("N %d, want 4", e.N)
	}
	if math.Abs(e.MAE-0.5) > 1e-12 { // (0 + 1)/2 per-population mean
		t.Fatalf("MAE %v, want 0.5", e.MAE)
	}
}

func TestBestPicksLowestMAE(t *testing.T) {
	// Slow drift: moving average beats an anti-persistent predictor.
	vs := make([]float64, 200)
	for i := range vs {
		vs[i] = 0.5 + 0.2*math.Sin(float64(i)/30)
	}
	s := []*timeseries.Series{series(vs)}
	p, e := Best(Standard(), s, 20)
	if p == nil || e.N == 0 {
		t.Fatal("no best predictor")
	}
	if e.MAE > 0.05 {
		t.Fatalf("best MAE %v too large for smooth signal", e.MAE)
	}
}

func TestBestOnGridVsGoogleLikeSignals(t *testing.T) {
	// Grid-like signal (stable segments, tiny noise): persistence-style
	// predictors should achieve very low error; Google-like (noisy)
	// signals should favour smoothing and incur larger error.
	src := rng.New(5)
	cfg := synth.DefaultGridHost("AuverGrid")
	gridCPU, _ := synth.GridHostSeries(cfg, 2*86400, src)

	noisy := make([]float64, gridCPU.Len())
	for i := range noisy {
		noisy[i] = 0.3 + 0.25*src.Float64()
	}
	google := series(noisy)

	_, gridE := Best(Standard(), []*timeseries.Series{gridCPU}, 12)
	_, googE := Best(Standard(), []*timeseries.Series{google}, 12)
	if gridE.MAE >= googE.MAE {
		t.Fatalf("grid MAE %v should be far below noisy MAE %v", gridE.MAE, googE.MAE)
	}
	if gridE.LevelHitRate < 0.8 {
		t.Fatalf("grid level hit rate %v, want high", gridE.LevelHitRate)
	}
}

func TestEvaluateKMatchesEvaluateAtOne(t *testing.T) {
	vs := make([]float64, 150)
	for i := range vs {
		vs[i] = 0.5 + 0.2*math.Sin(float64(i)/15)
	}
	s := series(vs)
	p := ExpSmoothing{Alpha: 0.4}
	e1 := Evaluate(p, s, 10)
	ek := EvaluateK(p, s, 10, 1)
	if math.Abs(e1.MAE-ek.MAE) > 1e-12 || e1.N != ek.N {
		t.Fatalf("EvaluateK(1) %v != Evaluate %v", ek, e1)
	}
}

func TestEvaluateKErrorGrowsWithHorizon(t *testing.T) {
	// On a drifting signal, forecasting further ahead is harder.
	src := rng.New(33)
	vs := make([]float64, 400)
	level := 0.5
	for i := range vs {
		level += 0.02 * (src.Float64() - 0.5)
		if level < 0 {
			level = 0
		}
		if level > 1 {
			level = 1
		}
		vs[i] = level
	}
	s := series(vs)
	p := LastValue{}
	e1 := EvaluateK(p, s, 20, 1)
	e6 := EvaluateK(p, s, 20, 6)
	if e6.MAE <= e1.MAE {
		t.Fatalf("6-step MAE %v should exceed 1-step %v on a random walk", e6.MAE, e1.MAE)
	}
}

func TestStandardSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Standard() {
		if seen[p.Name()] {
			t.Fatalf("duplicate predictor name %s", p.Name())
		}
		seen[p.Name()] = true
	}
	if len(seen) < 8 {
		t.Fatalf("suite too small: %d", len(seen))
	}
}

// TestEvaluateAllWeighting is the regression for the pooling bug:
// EvaluateAll used to average per-host summaries unweighted while
// reporting the total step count as N, so a 1-step host pulled as hard
// as a 5-step host and the summary did not describe its own N. The
// pooled semantics weight every step equally.
func TestEvaluateAllWeighting(t *testing.T) {
	long := series([]float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}) // 5 scored steps, error 0
	short := series([]float64{0, 1})                        // 1 scored step, error 1
	e := EvaluateAll(LastValue{}, []*timeseries.Series{long, short}, 1)
	if e.N != 6 {
		t.Fatalf("N = %d, want 6", e.N)
	}
	if want := 1.0 / 6; math.Abs(e.MAE-want) > 1e-12 {
		t.Errorf("MAE = %v, want pooled %v (unweighted average would give 0.5)", e.MAE, want)
	}
	if want := math.Sqrt(1.0 / 6); math.Abs(e.RMSE-want) > 1e-12 {
		t.Errorf("RMSE = %v, want pooled %v", e.RMSE, want)
	}
	if want := 5.0 / 6; math.Abs(e.LevelHitRate-want) > 1e-12 {
		t.Errorf("LevelHitRate = %v, want pooled %v", e.LevelHitRate, want)
	}
}

// TestEvaluateAllMatchesPooledSingles: pooling by raw sums must equal
// evaluating the concatenation of per-series error streams — checked
// against per-series Evaluate results recombined by their own N.
func TestEvaluateAllMatchesPooledSingles(t *testing.T) {
	s := rng.New(3).Child("pool")
	var pop []*timeseries.Series
	for i := 0; i < 4; i++ {
		vs := make([]float64, 10+10*i)
		for j := range vs {
			vs[j] = s.Float64()
		}
		pop = append(pop, series(vs))
	}
	p := MovingAverage{Window: 3}
	got := EvaluateAll(p, pop, 2)
	var sumAbs, sumSq float64
	var hits, n int
	for _, sr := range pop {
		e := Evaluate(p, sr, 2)
		sumAbs += e.MAE * float64(e.N)
		sumSq += e.RMSE * e.RMSE * float64(e.N)
		hits += int(math.Round(e.LevelHitRate * float64(e.N)))
		n += e.N
	}
	if got.N != n {
		t.Fatalf("N = %d, want %d", got.N, n)
	}
	if math.Abs(got.MAE-sumAbs/float64(n)) > 1e-9 {
		t.Errorf("MAE = %v, want %v", got.MAE, sumAbs/float64(n))
	}
	if math.Abs(got.RMSE-math.Sqrt(sumSq/float64(n))) > 1e-9 {
		t.Errorf("RMSE = %v, want %v", got.RMSE, math.Sqrt(sumSq/float64(n)))
	}
	if math.Abs(got.LevelHitRate-float64(hits)/float64(n)) > 1e-9 {
		t.Errorf("LevelHitRate = %v, want %v", got.LevelHitRate, float64(hits)/float64(n))
	}
}

// TestEvaluateAllKPooled: the k-step population evaluation shares the
// pooled weighting, and k=1 matches EvaluateAll exactly.
func TestEvaluateAllKPooled(t *testing.T) {
	long := series([]float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5})
	short := series([]float64{0, 1})
	pop := []*timeseries.Series{long, short}
	if e1, ek := EvaluateAll(LastValue{}, pop, 1), EvaluateAllK(LastValue{}, pop, 1, 1); e1 != ek {
		t.Errorf("EvaluateAllK(k=1) = %+v, want EvaluateAll %+v", ek, e1)
	}
	ek := EvaluateAllK(LastValue{}, pop, 1, 2)
	// long: 4 scored steps (i=1..4), error 0; short: too short for k=2.
	if ek.N != 4 || ek.MAE != 0 {
		t.Errorf("k=2 pooled = %+v, want N=4 MAE=0", ek)
	}
}

// TestUsageLevelNonFinite: a NaN or ±Inf prediction must land in a
// defined level instead of Go's unspecified conversion.
func TestUsageLevelNonFinite(t *testing.T) {
	if usageLevel(math.NaN()) != 0 {
		t.Error("usageLevel(NaN) != 0")
	}
	if usageLevel(math.Inf(-1)) != 0 {
		t.Error("usageLevel(-Inf) != 0")
	}
	if usageLevel(math.Inf(1)) != 4 {
		t.Error("usageLevel(+Inf) != 4")
	}
	for v, want := range map[float64]int{0: 0, 0.19: 0, 0.2: 1, 0.99: 4, 1: 4, -0.5: 0, 1.5: 4} {
		if got := usageLevel(v); got != want {
			t.Errorf("usageLevel(%v) = %d, want %d", v, got, want)
		}
	}
}
