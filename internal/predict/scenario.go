package predict

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/hostload"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// ScenarioWarmup is the number of leading samples every scenario
// evaluation skips before scoring forecasts (2 hours of 5-minute
// samples).
const ScenarioWarmup = 24

// Scenario describes one host-load prediction run: which system's
// host population to synthesize, its size and horizon, the RNG seed,
// the forecast horizon in steps and whether to include the (slow) HMM
// predictor. It is the shared contract between cmd/predict and the
// daemon's /v1/predict endpoint: the same Scenario always produces the
// same ScenarioReport, byte for byte.
type Scenario struct {
	System string // Google, AuverGrid or SHARCNET
	Hosts  int    // host population size
	Days   int    // horizon in days
	Seed   uint64 // random seed
	K      int    // forecast horizon in steps (<= 1 means one-step-ahead)
	HMM    bool   // include the HMM predictor
}

// normalized returns the scenario with defaulted fields pinned, so
// equivalent requests share one canonical form.
func (sc Scenario) normalized() Scenario {
	if sc.K < 1 {
		sc.K = 1
	}
	return sc
}

// Canonical returns a deterministic cache/coalescing key covering
// every field that affects the report.
func (sc Scenario) Canonical() string {
	sc = sc.normalized()
	return fmt.Sprintf("predict|system=%s|hosts=%d|days=%d|seed=%d|k=%d|hmm=%t",
		sc.System, sc.Hosts, sc.Days, sc.Seed, sc.K, sc.HMM)
}

// PredictorEval is one predictor's accuracy over the scenario's host
// population (step-weighted pooling, see EvaluateAll).
type PredictorEval struct {
	Predictor    string  `json:"predictor"`
	MAE          float64 `json:"mae"`
	RMSE         float64 `json:"rmse"`
	LevelHitRate float64 `json:"level_hit_rate"`
	N            int     `json:"n"`
}

// ScenarioReport is the full result of a prediction scenario: the
// population's characterization headline (noise, autocorrelation),
// every predictor's pooled accuracy and the best-fit selection.
type ScenarioReport struct {
	System    string          `json:"system"`
	Hosts     int             `json:"hosts"`
	Days      int             `json:"days"`
	Seed      uint64          `json:"seed"`
	K         int             `json:"k"`
	NoiseMean float64         `json:"noise_mean"`
	Autocorr1 float64         `json:"lag1_autocorrelation"`
	Evals     []PredictorEval `json:"evals"`
	Best      PredictorEval   `json:"best"`
}

// RunScenario synthesizes the scenario's host population, evaluates
// the standard predictor suite (plus the HMM when requested) at the
// scenario's forecast horizon and selects the best-fit method by
// lowest MAE, mirroring Best's tie-breaking (first of equals wins).
func RunScenario(sc Scenario) (*ScenarioReport, error) {
	sc = sc.normalized()
	series, err := hostPopulation(sc.System, sc.Hosts, int64(sc.Days)*86400, sc.Seed)
	if err != nil {
		return nil, err
	}
	noise := hostload.SeriesNoise(series, 2)
	ac := hostload.MeanSeriesAutocorrelation(series, 1)

	suite := Standard()
	if sc.HMM {
		suite = append(suite, &HMMPredictor{StatesN: 3, Levels: 5, Window: 288, Retrain: 288, Seed: sc.Seed})
	}
	rep := &ScenarioReport{
		System:    sc.System,
		Hosts:     len(series),
		Days:      sc.Days,
		Seed:      sc.Seed,
		K:         sc.K,
		NoiseMean: noise.Mean,
		Autocorr1: ac,
	}
	best := -1
	for _, p := range suite {
		e := EvaluateAllK(p, series, ScenarioWarmup, sc.K)
		rep.Evals = append(rep.Evals, PredictorEval{
			Predictor:    p.Name(),
			MAE:          e.MAE,
			RMSE:         e.RMSE,
			LevelHitRate: e.LevelHitRate,
			N:            e.N,
		})
		if e.N == 0 {
			continue
		}
		if best < 0 || e.MAE < rep.Evals[best].MAE {
			best = len(rep.Evals) - 1
		}
	}
	if best >= 0 {
		rep.Best = rep.Evals[best]
	}
	return rep, nil
}

// WriteText renders the report in cmd/predict's plain-text format.
// This is the byte-level determinism contract with the daemon: for the
// same Scenario, the bytes /v1/predict serves are the bytes the CLI
// prints.
func (r *ScenarioReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: %d hosts, %d days — noise mean %.4f, lag-1 autocorrelation %.3f\n\n",
		r.System, r.Hosts, r.Days, r.NoiseMean, r.Autocorr1); err != nil {
		return err
	}
	title := "One-step-ahead prediction accuracy"
	if r.K > 1 {
		title = fmt.Sprintf("%d-step-ahead prediction accuracy", r.K)
	}
	tbl := &report.Table{
		ID: "predict", Title: title,
		Columns: []string{"predictor", "MAE", "RMSE", "level hit rate"},
	}
	for _, e := range r.Evals {
		tbl.AddRow(e.Predictor, report.F(e.MAE), report.F(e.RMSE),
			fmt.Sprintf("%.0f%%", 100*e.LevelHitRate))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nbest-fit predictor: %s (MAE %.4f)\n", r.Best.Predictor, r.Best.MAE)
	return err
}

// hostPopulation synthesizes the scenario's relative-usage series: a
// simulated Google cluster's per-machine relative CPU usage, or
// independent synthetic Grid hosts.
func hostPopulation(system string, hosts int, horizon int64, seed uint64) ([]*timeseries.Series, error) {
	switch system {
	case "Google":
		s := rng.New(seed)
		park := synth.GoogleMachines(hosts, s.Child("machines"))
		gcfg := synth.ScaledGoogleConfig(hosts, horizon)
		tasks := synth.GenerateGoogleTasks(gcfg, s.Child("workload"))
		res, err := cluster.Simulate(cluster.DefaultConfig(park, horizon), tasks, s.Child("sim"))
		if err != nil {
			return nil, err
		}
		var out []*timeseries.Series
		for _, m := range res.Machines {
			out = append(out, hostload.RelativeSeries(m, hostload.CPUUsage, trace.LowPriority))
		}
		return out, nil
	case "AuverGrid", "SHARCNET":
		cfg := synth.DefaultGridHost(system)
		s := rng.New(seed).Child(system)
		var out []*timeseries.Series
		for i := 0; i < hosts; i++ {
			cpu, _ := synth.GridHostSeries(cfg, horizon, s.Child(fmt.Sprintf("h%d", i)))
			out = append(out, cpu)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unknown system %q (want Google, AuverGrid or SHARCNET)", system)
}
