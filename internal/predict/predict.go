// Package predict implements the host-load prediction methods the
// paper motivates in its conclusion ("we will try to exploit the
// best-fit load prediction method based on our characterization
// work"), plus the evaluation harness to select the best-fit method
// per host population.
//
// Predictors forecast the next 5-minute sample of a relative-usage
// series. The characterization explains what to expect: Grid host load
// (autocorrelation ≈ 0.98, noise ≈ 0.001) rewards persistence-style
// predictors, while Google host load (noise ~20x higher) punishes them
// and favours smoothing.
package predict

import (
	"fmt"
	"math"

	"repro/internal/timeseries"
)

// Predictor forecasts the next sample from the history so far.
// History always contains at least one sample.
type Predictor interface {
	Name() string
	Predict(history []float64) float64
}

// ---------------------------------------------------------------------------
// predictors

// LastValue predicts the most recent observation (persistence).
type LastValue struct{}

// Name implements Predictor.
func (LastValue) Name() string { return "last-value" }

// Predict implements Predictor.
func (LastValue) Predict(h []float64) float64 { return h[len(h)-1] }

// MovingAverage predicts the mean of the last Window samples.
type MovingAverage struct{ Window int }

// Name implements Predictor.
func (m MovingAverage) Name() string { return fmt.Sprintf("moving-average(%d)", m.Window) }

// Predict implements Predictor.
func (m MovingAverage) Predict(h []float64) float64 {
	w := m.Window
	if w < 1 {
		w = 1
	}
	lo := len(h) - w
	if lo < 0 {
		lo = 0
	}
	var s float64
	for _, v := range h[lo:] {
		s += v
	}
	return s / float64(len(h)-lo)
}

// ExpSmoothing predicts with simple exponential smoothing
// s_t = alpha*x_t + (1-alpha)*s_{t-1}.
type ExpSmoothing struct{ Alpha float64 }

// Name implements Predictor.
func (e ExpSmoothing) Name() string { return fmt.Sprintf("exp-smoothing(%.2f)", e.Alpha) }

// Predict implements Predictor.
func (e ExpSmoothing) Predict(h []float64) float64 {
	s := h[0]
	for _, v := range h[1:] {
		s = e.Alpha*v + (1-e.Alpha)*s
	}
	return s
}

// AR1 fits x_{t+1} = a + b*x_t by least squares over the trailing
// Window samples and extrapolates one step. Degenerate fits (zero
// variance) fall back to persistence.
type AR1 struct{ Window int }

// Name implements Predictor.
func (a AR1) Name() string { return fmt.Sprintf("ar1(%d)", a.Window) }

// Predict implements Predictor.
func (a AR1) Predict(h []float64) float64 {
	w := a.Window
	if w < 3 {
		w = 3
	}
	lo := len(h) - w
	if lo < 0 {
		lo = 0
	}
	win := h[lo:]
	if len(win) < 3 {
		return h[len(h)-1]
	}
	// Pairs (win[i], win[i+1]).
	n := float64(len(win) - 1)
	var sx, sy, sxx, sxy float64
	for i := 0; i+1 < len(win); i++ {
		x, y := win[i], win[i+1]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return h[len(h)-1]
	}
	b := (n*sxy - sx*sy) / den
	// Stationarity clamp: |b| > 1 makes iterated (multi-step)
	// forecasts diverge on near-random-walk samples.
	if b > 1 {
		b = 1
	}
	if b < -1 {
		b = -1
	}
	aa := (sy - b*sx) / n
	return aa + b*h[len(h)-1]
}

// MarkovLevel quantises the history into Levels usage levels, builds a
// first-order transition matrix over the trailing Window samples and
// predicts the midpoint of the most likely next level. This is the
// level-state prediction the paper's Section IV analysis suggests
// (load levels persist; transitions are what matter).
type MarkovLevel struct {
	Levels int
	Window int
}

// Name implements Predictor.
func (m MarkovLevel) Name() string { return fmt.Sprintf("markov-level(%d,%d)", m.Levels, m.Window) }

// Predict implements Predictor.
func (m MarkovLevel) Predict(h []float64) float64 {
	levels := m.Levels
	if levels < 2 {
		levels = 2
	}
	w := m.Window
	if w < 4 {
		w = 4
	}
	lo := len(h) - w
	if lo < 0 {
		lo = 0
	}
	win := h[lo:]
	quant := func(v float64) int {
		l := int(v * float64(levels))
		if l < 0 {
			l = 0
		}
		if l >= levels {
			l = levels - 1
		}
		return l
	}
	cur := quant(win[len(win)-1])
	counts := make([]int, levels)
	seen := false
	for i := 0; i+1 < len(win); i++ {
		if quant(win[i]) == cur {
			counts[quant(win[i+1])]++
			seen = true
		}
	}
	if !seen {
		return win[len(win)-1]
	}
	best := 0
	for l, c := range counts {
		if c > counts[best] {
			best = l
		}
	}
	return (float64(best) + 0.5) / float64(levels)
}

// Standard returns the predictor suite the evaluation harness
// considers when selecting a best-fit method.
func Standard() []Predictor {
	return []Predictor{
		LastValue{},
		MovingAverage{Window: 3},
		MovingAverage{Window: 6},
		MovingAverage{Window: 12},
		ExpSmoothing{Alpha: 0.1},
		ExpSmoothing{Alpha: 0.3},
		ExpSmoothing{Alpha: 0.6},
		AR1{Window: 48},
		MarkovLevel{Levels: 5, Window: 288},
	}
}

// ---------------------------------------------------------------------------
// evaluation

// Evaluation summarises one predictor's one-step-ahead accuracy.
type Evaluation struct {
	MAE  float64 // mean absolute error
	RMSE float64 // root mean squared error
	// LevelHitRate is the fraction of steps where the predicted value
	// falls in the same 5-level usage bin as the actual value — the
	// accuracy notion matching the paper's level-based analysis.
	LevelHitRate float64
	N            int
}

// evalSums is the raw error accumulator behind every evaluation: the
// per-step sums that per-series and pooled population summaries both
// reduce from.
type evalSums struct {
	sumAbs, sumSq float64
	hits, n       int
}

func (e evalSums) evaluation() Evaluation {
	if e.n == 0 {
		return Evaluation{}
	}
	return Evaluation{
		MAE:          e.sumAbs / float64(e.n),
		RMSE:         math.Sqrt(e.sumSq / float64(e.n)),
		LevelHitRate: float64(e.hits) / float64(e.n),
		N:            e.n,
	}
}

// evalSeries accumulates one-step-ahead errors over one series.
func evalSeries(p Predictor, s *timeseries.Series, warmup int) evalSums {
	if warmup < 1 {
		warmup = 1
	}
	var e evalSums
	for i := warmup; i < s.Len(); i++ {
		pred := p.Predict(s.Values[:i])
		actual := s.Values[i]
		d := pred - actual
		e.sumAbs += math.Abs(d)
		e.sumSq += d * d
		if usageLevel(pred) == usageLevel(actual) {
			e.hits++
		}
		e.n++
	}
	return e
}

// Evaluate runs a predictor over the series, forecasting each sample
// from the prefix before it, skipping the first warmup samples.
func Evaluate(p Predictor, s *timeseries.Series, warmup int) Evaluation {
	return evalSeries(p, s, warmup).evaluation()
}

// usageLevel clamps on the scaled float before the int conversion so
// a NaN or ±Inf prediction maps to a defined level (0 for NaN/-Inf,
// 4 for +Inf) instead of Go's unspecified conversion.
func usageLevel(v float64) int {
	scaled := v * 5
	if math.IsNaN(v) || scaled < 0 {
		return 0
	}
	if scaled > 4 {
		return 4
	}
	return int(scaled)
}

// evalSeriesK accumulates k-step-ahead errors over one series.
func evalSeriesK(p Predictor, s *timeseries.Series, warmup, k int) evalSums {
	if warmup < 1 {
		warmup = 1
	}
	if k < 1 {
		k = 1
	}
	var e evalSums
	buf := make([]float64, 0, s.Len()+k)
	for i := warmup; i+k-1 < s.Len(); i++ {
		buf = append(buf[:0], s.Values[:i]...)
		var pred float64
		for step := 0; step < k; step++ {
			pred = p.Predict(buf)
			buf = append(buf, pred)
		}
		actual := s.Values[i+k-1]
		d := pred - actual
		e.sumAbs += math.Abs(d)
		e.sumSq += d * d
		if usageLevel(pred) == usageLevel(actual) {
			e.hits++
		}
		e.n++
	}
	return e
}

// EvaluateK measures k-step-ahead accuracy: the predictor forecasts
// iteratively, feeding its own outputs back as pseudo-history, and the
// k-th forecast is scored against the actual sample. k = 1 matches
// Evaluate.
func EvaluateK(p Predictor, s *timeseries.Series, warmup, k int) Evaluation {
	return evalSeriesK(p, s, warmup, k).evaluation()
}

// EvaluateAll pools a predictor's evaluation over a host population,
// weighting every host by its evaluated step count: MAE and the level
// hit rate are means over all steps, RMSE is the root of the pooled
// mean squared error, and N is the total step count those summaries
// describe. (A previous version averaged the per-host summaries
// unweighted while still reporting the total N, so Best selected on a
// metric that did not match its reported sample size and a short
// series counted as much as a long one.)
func EvaluateAll(p Predictor, series []*timeseries.Series, warmup int) Evaluation {
	return EvaluateAllK(p, series, warmup, 1)
}

// EvaluateAllK is EvaluateAll at a k-step-ahead horizon, with the same
// step-weighted pooling.
func EvaluateAllK(p Predictor, series []*timeseries.Series, warmup, k int) Evaluation {
	var agg evalSums
	for _, s := range series {
		var e evalSums
		if k <= 1 {
			e = evalSeries(p, s, warmup)
		} else {
			e = evalSeriesK(p, s, warmup, k)
		}
		agg.sumAbs += e.sumAbs
		agg.sumSq += e.sumSq
		agg.hits += e.hits
		agg.n += e.n
	}
	return agg.evaluation()
}

// Best evaluates every candidate over the population and returns the
// one with the lowest MAE — the paper's "best-fit load prediction
// method" selection.
func Best(candidates []Predictor, series []*timeseries.Series, warmup int) (Predictor, Evaluation) {
	var bestP Predictor
	var bestE Evaluation
	for _, p := range candidates {
		e := EvaluateAll(p, series, warmup)
		if e.N == 0 {
			continue
		}
		if bestP == nil || e.MAE < bestE.MAE {
			bestP, bestE = p, e
		}
	}
	return bestP, bestE
}
