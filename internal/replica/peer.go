package replica

import (
	"context"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/rng"
)

// maxCacheFill bounds one peer cache-fill body. The largest artifact
// payloads are a few MB; anything near this limit is a misbehaving
// peer, not an artifact.
const maxCacheFill = 256 << 20

// peerSet drives HTTP cache-fill requests against sibling replicas:
// GET {peer}/v1/cache/{key}, every attempt under its own deadline,
// rounds separated by jittered exponential backoff, total attempts
// bounded. All scheduling randomness comes from a seeded stream so a
// replayed failure sequence backs off identically.
type peerSet struct {
	peers        []string // base URLs, e.g. "http://host:9001"
	client       *http.Client
	fetchTimeout time.Duration
	retries      int // backoff rounds per fill attempt
	backoffBase  time.Duration
	backoffMax   time.Duration

	rr atomic.Uint64 // round-robin start index, spreads fill load

	jmu    sync.Mutex
	jitter *rng.Stream
}

// roundResult classifies one sweep over all peers.
type roundResult struct {
	payload []byte
	ok      bool
	// transient reports whether any peer failed in a retryable way
	// (transport error, 5xx). All-definitive-miss rounds (every peer
	// answered 404) are final: nobody has the key, retrying is wasted
	// lease time.
	transient bool
}

// round asks each peer once, starting at a rotating offset, and returns
// the first valid payload. met collects the attempt/hit/miss/error
// counters (owned by the Coordinator).
func (p *peerSet) round(ctx context.Context, key string, met *peerMetrics) roundResult {
	res := roundResult{}
	if len(p.peers) == 0 {
		return res
	}
	start := int(p.rr.Add(1))
	for i := range p.peers {
		peer := p.peers[(start+i)%len(p.peers)]
		payload, outcome := p.fetchOne(ctx, peer, key, met)
		switch outcome {
		case fetchHit:
			res.payload, res.ok = payload, true
			return res
		case fetchErr:
			res.transient = true
		}
		if ctx.Err() != nil {
			return res
		}
	}
	return res
}

type fetchOutcome int

const (
	fetchHit fetchOutcome = iota
	fetchMiss
	fetchErr
)

// fetchOne performs a single deadline-bounded GET against one peer.
func (p *peerSet) fetchOne(ctx context.Context, peer, key string, met *peerMetrics) ([]byte, fetchOutcome) {
	if err := fault.Hit(SitePeerFetch); err != nil {
		met.errs.Add(1)
		return nil, fetchErr
	}
	met.attempts.Add(1)
	fctx, cancel := context.WithTimeout(ctx, p.fetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, peer+"/v1/cache/"+key, nil)
	if err != nil {
		met.errs.Add(1)
		return nil, fetchErr
	}
	resp, err := p.client.Do(req)
	if err != nil {
		met.errs.Add(1)
		return nil, fetchErr
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		payload, err := io.ReadAll(io.LimitReader(resp.Body, maxCacheFill))
		if err != nil || !ckpt.ValidPayload(payload) {
			met.errs.Add(1)
			return nil, fetchErr
		}
		met.hits.Add(1)
		return payload, fetchHit
	case resp.StatusCode == http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		met.misses.Add(1)
		return nil, fetchMiss
	default:
		io.Copy(io.Discard, resp.Body)
		met.errs.Add(1)
		return nil, fetchErr
	}
}

// backoff returns the jittered delay before retry round n (1-based):
// base·2^(n-1), capped, then scaled by a factor in [0.5, 1.5) so a
// fleet of replicas spreads its retries instead of stampeding.
func (p *peerSet) backoff(n int) time.Duration {
	d := p.backoffBase << uint(n-1)
	if d > p.backoffMax || d <= 0 {
		d = p.backoffMax
	}
	p.jmu.Lock()
	f := 0.5 + p.jitter.Float64()
	p.jmu.Unlock()
	return time.Duration(float64(d) * f)
}

// sleep waits d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
