package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/obs"
)

// artifact stands in for a core.Result: any JSON-round-trippable value.
type artifact struct {
	Name string    `json:"name"`
	Vals []float64 `json:"vals"`
}

func newArtifact() any { return &artifact{} }

func buildArtifact(name string, calls *atomic.Int64) func(context.Context) (any, error) {
	return func(context.Context) (any, error) {
		if calls != nil {
			calls.Add(1)
		}
		return &artifact{Name: name, Vals: []float64{1, 2.5, 3}}, nil
	}
}

// testCoordinator opens a coordinator over dir with fast test timings.
func testCoordinator(t *testing.T, dir, id string, peers ...string) *Coordinator {
	t.Helper()
	var store *ckpt.Store
	if dir != "" {
		s, err := ckpt.NewStore(dir, obs.NewRegistry())
		if err != nil {
			t.Fatalf("NewStore: %v", err)
		}
		store = s
	}
	return New(Config{
		ID:           id,
		Store:        store,
		Peers:        peers,
		TTL:          150 * time.Millisecond,
		Heartbeat:    40 * time.Millisecond,
		Poll:         10 * time.Millisecond,
		FetchTimeout: time.Second,
		Retries:      2,
		BackoffBase:  5 * time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
	})
}

func counter(c *Coordinator, name string) int64 {
	for _, m := range c.rec.Registry().Snapshot() {
		if m.Name == name && m.Type == "counter" {
			return int64(m.Value)
		}
	}
	return 0
}

func TestDoBuildsOnceThenServesFromTiers(t *testing.T) {
	dir := t.TempDir()
	a := testCoordinator(t, dir, "r0")
	var calls atomic.Int64
	key := ckpt.Key("replica", "tiers")

	v, src, err := a.Do(context.Background(), key, newArtifact, buildArtifact("tiers", &calls))
	if err != nil || src != SourceBuild {
		t.Fatalf("first Do: src=%v err=%v", src, err)
	}
	if got := v.(*artifact).Name; got != "tiers" {
		t.Fatalf("value = %q", got)
	}
	_, src, err = a.Do(context.Background(), key, newArtifact, buildArtifact("tiers", &calls))
	if err != nil || src != SourceLocal {
		t.Fatalf("second Do: src=%v err=%v", src, err)
	}
	// A fresh replica over the same directory hits tier 2.
	b := testCoordinator(t, dir, "r1")
	_, src, err = b.Do(context.Background(), key, newArtifact, buildArtifact("tiers", &calls))
	if err != nil || src != SourceStore {
		t.Fatalf("sibling Do: src=%v err=%v", src, err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("build ran %d times, want 1", n)
	}
	if _, ok, _ := a.leases.read(key); ok {
		t.Fatal("lease file left behind after a completed build")
	}
}

func TestConcurrentReplicasBuildOnce(t *testing.T) {
	dir := t.TempDir()
	reps := []*Coordinator{
		testCoordinator(t, dir, "r0"),
		testCoordinator(t, dir, "r1"),
		testCoordinator(t, dir, "r2"),
	}
	var calls atomic.Int64
	key := ckpt.Key("replica", "stampede")
	var wg sync.WaitGroup
	payloads := make([]string, len(reps)*4)
	errs := make([]error, len(reps)*4)
	for i := range payloads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := reps[i%len(reps)].Do(context.Background(), key, newArtifact, buildArtifact("stampede", &calls))
			errs[i] = err
			if err == nil {
				b, _ := json.Marshal(v)
				payloads[i] = string(b)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Do[%d]: %v", i, err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("build ran %d times across 3 replicas, want exactly 1", n)
	}
	for i := 1; i < len(payloads); i++ {
		if payloads[i] != payloads[0] {
			t.Fatalf("payload[%d] = %q differs from payload[0] = %q", i, payloads[i], payloads[0])
		}
	}
}

// TestLeaseTakeoverRebuildsByteIdentical is the killed-leader scenario:
// replica A claims the key and starts building, then "dies" — a chaos
// rule on replica.lease.renew severs its first heartbeat, and its build
// hangs until the test cancels it. Replica B waits out the TTL, deletes
// the stale lease, takes the key over and rebuilds; the bytes it serves
// must equal what a clean serial build produces.
func TestLeaseTakeoverRebuildsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	a := testCoordinator(t, dir, "r0")
	b := testCoordinator(t, dir, "r1")
	key := ckpt.Key("replica", "takeover")

	defer fault.Enable(fault.NewPlan(fault.Rule{Site: SiteLeaseRenew, Hit: 1, Kind: fault.Error}))()

	building := make(chan struct{})
	actx, kill := context.WithCancel(context.Background())
	defer kill()
	var aErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, aErr = a.Do(actx, key, newArtifact, func(ctx context.Context) (any, error) {
			close(building)
			<-ctx.Done() // hangs forever: the leader is dead
			return nil, ctx.Err()
		})
	}()
	<-building

	var calls atomic.Int64
	v, src, err := b.Do(context.Background(), key, newArtifact, buildArtifact("takeover", &calls))
	if err != nil {
		t.Fatalf("b.Do: %v", err)
	}
	if src != SourceBuild {
		t.Fatalf("b.Do src = %v, want build (after takeover)", src)
	}
	if calls.Load() != 1 {
		t.Fatalf("b built %d times, want 1", calls.Load())
	}
	if got := counter(b, "replica.lease.takeover"); got < 1 {
		t.Fatalf("replica.lease.takeover = %d, want >= 1", got)
	}
	kill()
	<-done
	if aErr == nil {
		t.Fatal("the killed leader's Do returned nil error")
	}

	// Byte identity: b's served payload must equal a clean serial build.
	want, _ := json.Marshal(&artifact{Name: "takeover", Vals: []float64{1, 2.5, 3}})
	gotB, _ := json.Marshal(v)
	if string(gotB) != string(want) {
		t.Fatalf("taken-over build = %q, want %q", gotB, want)
	}
	served, ok := b.ServeLocal(key)
	if !ok || string(served) != string(want) {
		t.Fatalf("ServeLocal = %q ok=%v, want %q", served, ok, want)
	}
	// The dead leader never published, so no duplicate build landed.
	if got := counter(a, "replica.build.duplicate") + counter(b, "replica.build.duplicate"); got != 0 {
		t.Fatalf("duplicate builds = %d, want 0", got)
	}
}

func TestPeerFillStorelessReplica(t *testing.T) {
	dir := t.TempDir()
	a := testCoordinator(t, dir, "r0")
	key := ckpt.Key("replica", "fill")
	if _, _, err := a.Do(context.Background(), key, newArtifact, buildArtifact("fill", nil)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		payload, ok := a.ServeLocal(r.URL.Path[len("/v1/cache/"):])
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(payload)
	}))
	defer srv.Close()

	b := testCoordinator(t, "", "r1", srv.URL)
	var calls atomic.Int64
	v, src, err := b.Do(context.Background(), key, newArtifact, buildArtifact("fill", &calls))
	if err != nil || src != SourcePeer {
		t.Fatalf("b.Do: src=%v err=%v", src, err)
	}
	if calls.Load() != 0 {
		t.Fatal("peer fill still ran the build")
	}
	want, _ := a.ServeLocal(key)
	got, ok := b.ServeLocal(key)
	if !ok || string(got) != string(want) {
		t.Fatalf("peer-filled payload %q != origin payload %q", got, want)
	}
	if v.(*artifact).Name != "fill" {
		t.Fatalf("value = %+v", v)
	}
}

func TestPeerDefinitiveMissBuildsImmediately(t *testing.T) {
	var reqs atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		http.NotFound(w, r)
	}))
	defer srv.Close()
	b := testCoordinator(t, "", "r1", srv.URL)
	var calls atomic.Int64
	_, src, err := b.Do(context.Background(), ckpt.Key("replica", "miss"), newArtifact, buildArtifact("miss", &calls))
	if err != nil || src != SourceBuildUnleased {
		t.Fatalf("Do: src=%v err=%v", src, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("build calls = %d, want 1", calls.Load())
	}
	// An all-404 round is final: exactly one request, no backoff rounds.
	if reqs.Load() != 1 {
		t.Fatalf("peer requests = %d, want 1 (404 is definitive)", reqs.Load())
	}
}

func TestPeerTransientErrorsRetryThenBuild(t *testing.T) {
	var reqs atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	b := testCoordinator(t, "", "r1", srv.URL)
	var calls atomic.Int64
	_, src, err := b.Do(context.Background(), ckpt.Key("replica", "flaky"), newArtifact, buildArtifact("flaky", &calls))
	if err != nil || src != SourceBuildUnleased {
		t.Fatalf("Do: src=%v err=%v", src, err)
	}
	if reqs.Load() != 2 { // Retries=2 rounds x 1 peer
		t.Fatalf("peer requests = %d, want 2 (bounded retries)", reqs.Load())
	}
	if counter(b, "replica.peer.err") != 2 {
		t.Fatalf("replica.peer.err = %d, want 2", counter(b, "replica.peer.err"))
	}
}

func TestUnreachablePeerDegradesToLocalBuild(t *testing.T) {
	// A peer address nobody listens on: connection refused, retried,
	// then built locally. The request must still succeed.
	b := testCoordinator(t, "", "r1", "127.0.0.1:1")
	var calls atomic.Int64
	v, src, err := b.Do(context.Background(), ckpt.Key("replica", "refused"), newArtifact, buildArtifact("refused", &calls))
	if err != nil || src != SourceBuildUnleased {
		t.Fatalf("Do: src=%v err=%v", src, err)
	}
	if v.(*artifact).Name != "refused" || calls.Load() != 1 {
		t.Fatalf("v=%+v calls=%d", v, calls.Load())
	}
}

func TestUnwritableStoreDegradesButServes(t *testing.T) {
	dir := t.TempDir()
	a := testCoordinator(t, dir, "r0")
	defer fault.Enable(fault.NewPlan(fault.Rule{Site: SiteCkptWrite, Kind: fault.Error}))()

	key := ckpt.Key("replica", "readonly")
	v, src, err := a.Do(context.Background(), key, newArtifact, buildArtifact("readonly", nil))
	if err != nil || src != SourceBuild {
		t.Fatalf("Do under ckpt.write fault: src=%v err=%v", src, err)
	}
	if v.(*artifact).Name != "readonly" {
		t.Fatalf("v = %+v", v)
	}
	deg := a.Degraded()
	if len(deg) != 1 || deg[0][:6] != "store:" {
		t.Fatalf("Degraded() = %v, want one store reason", deg)
	}
	// The local tier still serves the artifact.
	if _, src, err := a.Do(context.Background(), key, newArtifact, buildArtifact("readonly", nil)); err != nil || src != SourceLocal {
		t.Fatalf("second Do: src=%v err=%v", src, err)
	}
}

func TestLeaseInfraDownDegradesToUncoordinatedBuild(t *testing.T) {
	dir := t.TempDir()
	a := testCoordinator(t, dir, "r0")
	defer fault.Enable(fault.NewPlan(fault.Rule{Site: SiteLeaseAcquire, Kind: fault.Error}))()

	var calls atomic.Int64
	_, src, err := a.Do(context.Background(), ckpt.Key("replica", "noleases"), newArtifact, buildArtifact("noleases", &calls))
	if err != nil || src != SourceBuildUnleased {
		t.Fatalf("Do: src=%v err=%v", src, err)
	}
	deg := a.Degraded()
	if len(deg) != 1 || deg[0][:6] != "lease:" {
		t.Fatalf("Degraded() = %v, want one lease reason", deg)
	}
}

func TestDegradationClearsOnRecovery(t *testing.T) {
	dir := t.TempDir()
	a := testCoordinator(t, dir, "r0")
	off := fault.Enable(fault.NewPlan(fault.Rule{Site: SiteLeaseAcquire, Hit: 1, Kind: fault.Error}))
	if _, src, _ := a.Do(context.Background(), ckpt.Key("replica", "dip1"), newArtifact, buildArtifact("dip1", nil)); src != SourceBuildUnleased {
		t.Fatalf("faulted Do src = %v", src)
	}
	off()
	if len(a.Degraded()) != 1 {
		t.Fatalf("Degraded() = %v, want the lease dip recorded", a.Degraded())
	}
	if _, src, _ := a.Do(context.Background(), ckpt.Key("replica", "dip2"), newArtifact, buildArtifact("dip2", nil)); src != SourceBuild {
		t.Fatalf("recovered Do src = %v", src)
	}
	if deg := a.Degraded(); len(deg) != 0 {
		t.Fatalf("Degraded() after recovery = %v, want empty", deg)
	}
}

// TestChaosKilledLeaderConverges is the acceptance chaos run: three
// replicas, several keys in flight, the leader of one key killed
// mid-build by a chaos rule. The fleet must converge to exactly one
// effective build per key, at least one lease takeover, zero duplicate
// store writes, and byte-identical artifacts everywhere.
func TestChaosKilledLeaderConverges(t *testing.T) {
	dir := t.TempDir()
	reps := []*Coordinator{
		testCoordinator(t, dir, "r0"),
		testCoordinator(t, dir, "r1"),
		testCoordinator(t, dir, "r2"),
	}
	// The chaos rule: the first heartbeat renewal in the run fails,
	// killing that builder's lease while its build hangs.
	defer fault.Enable(fault.NewPlan(fault.Rule{Site: SiteLeaseRenew, Hit: 1, Kind: fault.Error}))()

	keys := make([]string, 4)
	for i := range keys {
		keys[i] = ckpt.Key("chaos", fmt.Sprintf("k%d", i))
	}
	victim := keys[0]

	// The victim key's first builder hangs until killed; every other
	// build (and the victim's rebuild) completes normally.
	var firstVictimBuild atomic.Bool
	building := make(chan struct{})
	actx, kill := context.WithCancel(context.Background())
	defer kill()
	buildFor := func(key string, calls *atomic.Int64) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			if key == victim && firstVictimBuild.CompareAndSwap(false, true) {
				close(building)
				<-actx.Done()
				return nil, actx.Err()
			}
			calls.Add(1)
			return &artifact{Name: key[:8], Vals: []float64{float64(len(key))}}, nil
		}
	}

	var effective atomic.Int64
	var wg sync.WaitGroup
	var killOnce sync.Once
	results := make(map[string][]string) // key -> payloads observed
	var rmu sync.Mutex
	for _, key := range keys {
		for r := range reps {
			wg.Add(1)
			go func(key string, r int) {
				defer wg.Done()
				ctx := context.Background()
				if key == victim && r == 0 {
					ctx = actx // the doomed leader's request dies with it
				}
				v, _, err := reps[r].Do(ctx, key, newArtifact, buildFor(key, &effective))
				if err != nil {
					if key == victim {
						return // the killed leader's own request may fail
					}
					t.Errorf("Do(%s) on r%d: %v", key[:8], r, err)
					return
				}
				b, _ := json.Marshal(v)
				rmu.Lock()
				results[key] = append(results[key], string(b))
				rmu.Unlock()
			}(key, r)
		}
		if key == victim {
			// Wait for the doomed leader to claim the key, then reap it
			// only after its stale lease has been taken over — a killed
			// process never runs its release path, so cancelling earlier
			// would let the deferred release fire while the lease is
			// still owned, which is a graceful shutdown, not a kill.
			<-building
			killOnce.Do(func() {
				go func() {
					deadline := time.Now().Add(5 * time.Second)
					for time.Now().Before(deadline) {
						var n int64
						for _, r := range reps {
							n += counter(r, "replica.lease.takeover")
						}
						if n >= 1 {
							break
						}
						time.Sleep(5 * time.Millisecond)
					}
					kill()
				}()
			})
		}
	}
	wg.Wait()

	if n := effective.Load(); n != int64(len(keys)) {
		t.Fatalf("effective builds = %d, want exactly %d (one per key)", n, len(keys))
	}
	var takeovers, dups int64
	for _, r := range reps {
		takeovers += counter(r, "replica.lease.takeover")
		dups += counter(r, "replica.build.duplicate")
	}
	if takeovers < 1 {
		t.Fatalf("replica.lease.takeover = %d, want >= 1", takeovers)
	}
	if dups != 0 {
		t.Fatalf("replica.build.duplicate = %d, want 0", dups)
	}
	for _, key := range keys {
		rmu.Lock()
		got := results[key]
		rmu.Unlock()
		wantN := len(reps)
		if key == victim {
			wantN = len(reps) - 1 // the killed leader returned an error
		}
		if len(got) < wantN {
			t.Fatalf("key %s: %d results, want >= %d", key[:8], len(got), wantN)
		}
		// Byte identity with a clean serial build of the same value.
		want, _ := json.Marshal(&artifact{Name: key[:8], Vals: []float64{float64(len(key))}})
		for i, p := range got {
			if p != string(want) {
				t.Fatalf("key %s result[%d] = %q, want %q", key[:8], i, p, want)
			}
		}
	}
	// Every replica can now serve every key's identical bytes locally.
	for _, key := range keys {
		want, _ := json.Marshal(&artifact{Name: key[:8], Vals: []float64{float64(len(key))}})
		for i, r := range reps {
			got, ok := r.ServeLocal(key)
			if !ok || string(got) != string(want) {
				t.Fatalf("r%d.ServeLocal(%s): ok=%v got=%q want=%q", i, key[:8], ok, got, want)
			}
		}
	}
}

func TestByteLRUEvictsOldest(t *testing.T) {
	l := newByteLRU(2)
	l.put("a", []byte("1"))
	l.put("b", []byte("2"))
	l.get("a") // refresh a; b is now the eviction candidate
	l.put("c", []byte("3"))
	if _, ok := l.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := l.get("a"); !ok {
		t.Fatal("a was evicted despite being fresh")
	}
	if l.len() != 2 {
		t.Fatalf("len = %d, want 2", l.len())
	}
}
