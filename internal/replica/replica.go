// Package replica makes N serving daemons behave like one: a two-tier
// content-addressed artifact cache (in-process payload LRU, then the
// shared ckpt.Store) with lease-based distributed singleflight on top,
// so a key is built once across the whole fleet no matter which replica
// the requests land on — and keeps being served when the replica that
// was building it dies mid-build.
//
// Protocol: the first replica to claim a key atomically creates
// `<key>.lease` in the shared checkpoint directory (O_CREATE|O_EXCL,
// owner ID, TTL deadline) and builds; its heartbeat renews the deadline
// while the build runs. Every other replica waits: polling the shared
// store for the finished artifact, asking sibling replicas over HTTP
// (GET /v1/cache/{key}, each attempt deadline-bounded, rounds spaced by
// jittered exponential backoff, attempts bounded). A waiter that finds
// the lease expired — the builder crashed, or its heartbeat was severed
// — deletes it and takes the key over, so no key can be orphaned.
//
// Every failure path degrades instead of failing the request: lease
// directory unreachable → build locally without coordination; peers
// unreachable → build locally; shared store unwritable → serve from the
// local tier and report "degraded" through Degraded() (the daemon's
// /healthz stays 200). Chaos sites (replica.lease.acquire/renew/
// release, replica.peer.fetch, plus ckpt.write in the store) let the
// fault-injection suite prove each of those degradations, and the lease
// takeover, deterministically.
package replica

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Chaos sites injected by the fault plan. SiteCkptWrite lives in
// internal/ckpt but is listed here so chaos drivers arm the whole
// replica failure surface from one list.
const (
	SiteLeaseAcquire = "replica.lease.acquire"
	SiteLeaseRenew   = "replica.lease.renew"
	SiteLeaseRelease = "replica.lease.release"
	SitePeerFetch    = "replica.peer.fetch"
	SiteCkptWrite    = "ckpt.write"
)

// ChaosSites returns every fault site in the replica failure surface,
// in a stable order — the site list chaos-enabled daemons arm.
func ChaosSites() []string {
	return []string{SiteLeaseAcquire, SiteLeaseRenew, SiteLeaseRelease, SitePeerFetch, SiteCkptWrite}
}

// Source reports which tier satisfied a Do call.
type Source int

const (
	SourceNone          Source = iota
	SourceLocal                // tier 1: this replica's in-process payload LRU
	SourceStore                // tier 2: the shared checkpoint store
	SourcePeer                 // HTTP cache fill from a sibling replica
	SourceBuild                // built here under a held lease
	SourceBuildUnleased        // built here without coordination (degraded)
)

func (s Source) String() string {
	switch s {
	case SourceLocal:
		return "local"
	case SourceStore:
		return "store"
	case SourcePeer:
		return "peer"
	case SourceBuild:
		return "build"
	case SourceBuildUnleased:
		return "build-unleased"
	default:
		return "none"
	}
}

// Config assembles a Coordinator.
type Config struct {
	// ID names this replica in lease files, temp-file suffixes and
	// /healthz. Required.
	ID string

	// Store is the shared tier-2 cache; leases live in its directory.
	// A disabled store leaves only tier 1 + peer fill + local builds
	// (no cross-replica singleflight: there is nowhere to put a lease).
	Store *ckpt.Store

	// Peers are sibling base addresses ("host:port" or full URLs) asked
	// for cache fills. The replica's own address must not be listed.
	Peers []string

	// TTL is the lease lifetime between heartbeats (default 5s). A
	// builder that misses renewals for a full TTL is presumed dead.
	TTL time.Duration

	// Heartbeat is the renewal period (default TTL/3).
	Heartbeat time.Duration

	// Poll is how often a waiter re-checks the store and lease state
	// (default TTL/10, clamped to [10ms, 500ms]).
	Poll time.Duration

	// FetchTimeout bounds one peer cache-fill attempt (default 2s).
	FetchTimeout time.Duration

	// Retries bounds peer-fill backoff rounds (default 3).
	Retries int

	// BackoffBase/BackoffMax shape the jittered exponential backoff
	// between peer rounds (defaults 25ms / 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// LocalCap bounds the tier-1 payload LRU (default 64 entries).
	LocalCap int

	// Rec receives replica.* metrics and, for traced requests, the
	// lease-wait and peer-fill spans. nil allocates a fresh recorder.
	Rec *obs.Recorder

	// Client overrides the peer HTTP client (tests inject transports).
	Client *http.Client
}

// Coordinator is one replica's view of the fleet-wide cache. Safe for
// concurrent use by any number of requests.
type Coordinator struct {
	id     string
	store  *ckpt.Store
	leases *leaseDir // nil when the store is disabled
	peerc  *peerSet
	rec    *obs.Recorder

	heartbeatEvery time.Duration
	poll           time.Duration
	retries        int

	local *byteLRU

	dmu      sync.Mutex
	degraded map[string]string
	degGauge *obs.Gauge

	peerMet peerMetrics

	localHit      *obs.Counter
	storeHit      *obs.Counter
	peerHit       *obs.Counter
	buildDone     *obs.Counter
	buildUnleased *obs.Counter
	buildDup      *obs.Counter
	served        *obs.Counter
	leaseAcquired *obs.Counter
	leaseTakeover *obs.Counter
	leaseRenewed  *obs.Counter
	leaseLost     *obs.Counter
	leaseErr      *obs.Counter
	leaseWaits    *obs.Counter
}

// peerMetrics groups the counters the peerSet reports into.
type peerMetrics struct {
	attempts *obs.Counter
	hits     *obs.Counter
	misses   *obs.Counter
	errs     *obs.Counter
}

// New assembles a Coordinator from cfg, applying defaults.
func New(cfg Config) *Coordinator {
	rec := cfg.Rec
	if rec == nil {
		rec = obs.NewRecorder()
	}
	reg := rec.Registry()
	ttl := cfg.TTL
	if ttl <= 0 {
		ttl = 5 * time.Second
	}
	hb := cfg.Heartbeat
	if hb <= 0 {
		hb = ttl / 3
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = ttl / 10
		if poll < 10*time.Millisecond {
			poll = 10 * time.Millisecond
		}
		if poll > 500*time.Millisecond {
			poll = 500 * time.Millisecond
		}
	}
	fetchTimeout := cfg.FetchTimeout
	if fetchTimeout <= 0 {
		fetchTimeout = 2 * time.Second
	}
	retries := cfg.Retries
	if retries <= 0 {
		retries = 3
	}
	base := cfg.BackoffBase
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	max := cfg.BackoffMax
	if max <= 0 {
		max = time.Second
	}
	localCap := cfg.LocalCap
	if localCap <= 0 {
		localCap = 64
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	peers := make([]string, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if p == "" {
			continue
		}
		if len(p) < 7 || (p[:7] != "http://" && (len(p) < 8 || p[:8] != "https://")) {
			p = "http://" + p
		}
		peers = append(peers, p)
	}
	c := &Coordinator{
		id:    cfg.ID,
		store: cfg.Store,
		rec:   rec,
		peerc: &peerSet{
			peers:        peers,
			client:       client,
			fetchTimeout: fetchTimeout,
			retries:      retries,
			backoffBase:  base,
			backoffMax:   max,
			jitter:       rng.New(ckptSeed(cfg.ID)).Child("replica.backoff"),
		},
		heartbeatEvery: hb,
		poll:           poll,
		retries:        retries,
		local:          newByteLRU(localCap),
		degraded:       make(map[string]string),
		degGauge:       reg.Gauge("replica.degraded"),
		peerMet: peerMetrics{
			attempts: reg.Counter("replica.peer.attempt"),
			hits:     reg.Counter("replica.peer.hit"),
			misses:   reg.Counter("replica.peer.miss"),
			errs:     reg.Counter("replica.peer.err"),
		},
		localHit:      reg.Counter("replica.local.hit"),
		storeHit:      reg.Counter("replica.store.hit"),
		peerHit:       reg.Counter("replica.peer.fill"),
		buildDone:     reg.Counter("replica.build.done"),
		buildUnleased: reg.Counter("replica.build.unleased"),
		buildDup:      reg.Counter("replica.build.duplicate"),
		served:        reg.Counter("replica.cache.served"),
		leaseAcquired: reg.Counter("replica.lease.acquired"),
		leaseTakeover: reg.Counter("replica.lease.takeover"),
		leaseRenewed:  reg.Counter("replica.lease.renewed"),
		leaseLost:     reg.Counter("replica.lease.lost"),
		leaseErr:      reg.Counter("replica.lease.err"),
		leaseWaits:    reg.Counter("replica.lease.wait"),
	}
	if cfg.Store.Enabled() {
		c.leases = &leaseDir{dir: cfg.Store.Dir(), owner: cfg.ID, ttl: ttl, now: time.Now}
		cfg.Store.SetWriter(cfg.ID)
	}
	return c
}

// ckptSeed derives a stable jitter seed from the replica ID, so two
// replicas never share a backoff schedule but each replays its own.
func ckptSeed(id string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// ID returns the replica's name.
func (c *Coordinator) ID() string { return c.id }

// Peers returns the configured sibling base URLs.
func (c *Coordinator) Peers() []string { return c.peerc.peers }

// Degraded returns the active degradation reasons, sorted; empty means
// every subsystem the coordinator depends on is answering.
func (c *Coordinator) Degraded() []string {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	out := make([]string, 0, len(c.degraded))
	for k, msg := range c.degraded {
		out = append(out, k+": "+msg)
	}
	sort.Strings(out)
	return out
}

func (c *Coordinator) setDegraded(subsystem string, err error) {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	c.degraded[subsystem] = err.Error()
	c.degGauge.Set(1)
}

func (c *Coordinator) clearDegraded(subsystem string) {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	if _, ok := c.degraded[subsystem]; !ok {
		return
	}
	delete(c.degraded, subsystem)
	if len(c.degraded) == 0 {
		c.degGauge.Set(0)
	}
}

// ServeLocal answers a sibling's cache-fill request from this replica's
// own tiers — never by building and never by asking peers, so fills
// cannot recurse across the fleet. The returned payload is the exact
// checkpoint encoding.
func (c *Coordinator) ServeLocal(key string) ([]byte, bool) {
	if payload, ok := c.local.get(key); ok {
		c.served.Add(1)
		return payload, true
	}
	if payload, ok, _ := c.store.LoadRaw(key); ok {
		c.local.put(key, payload)
		c.served.Add(1)
		return payload, true
	}
	return nil, false
}

// Do returns the value for the content-addressed key, trying tier 1,
// tier 2, peer fill and finally building via build under a distributed
// lease. newV allocates the value that store/peer payloads unmarshal
// into; the build path returns build's value directly. ctx bounds the
// whole call (waiting included) and is handed to build.
func (c *Coordinator) Do(ctx context.Context, key string, newV func() any, build func(context.Context) (any, error)) (any, Source, error) {
	if payload, ok := c.local.get(key); ok {
		c.localHit.Add(1)
		if v, err := unmarshalInto(newV, payload); err == nil {
			return v, SourceLocal, nil
		}
		// A corrupt tier-1 entry (impossible short of memory damage)
		// falls through to the authoritative tiers.
	}
	if v, ok := c.loadStore(key, newV); ok {
		return v, SourceStore, nil
	}
	if c.leases == nil {
		// No shared directory, no distributed singleflight: probe the
		// peers once (with retries for transient failures), then build.
		if v, ok := c.peerFill(ctx, key, newV); ok {
			return v, SourcePeer, nil
		}
		return c.buildLocal(ctx, key, newV, build, SourceBuildUnleased)
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, SourceNone, context.Cause(ctx)
		}
		held, cur, takeover, err := c.leases.tryAcquire(key)
		if err != nil {
			// Lease infrastructure down (unwritable dir, injected
			// fault): correctness over coordination — build here,
			// accept the duplicate work, flag the degradation.
			c.leaseErr.Add(1)
			c.setDegraded("lease", err)
			return c.buildLocal(ctx, key, newV, build, SourceBuildUnleased)
		}
		c.clearDegraded("lease")
		if takeover {
			c.leaseTakeover.Add(1)
		}
		if held {
			c.leaseAcquired.Add(1)
			return c.buildLeased(ctx, key, newV, build)
		}
		v, src, done, err := c.waitForHolder(ctx, key, cur, newV)
		if done {
			return v, src, err
		}
		// The holder released without publishing a result, or its lease
		// expired: loop and race for the claim.
	}
}

// loadStore is the tier-2 read: validated payload from the shared
// store, promoted into tier 1.
func (c *Coordinator) loadStore(key string, newV func() any) (any, bool) {
	payload, ok, _ := c.store.LoadRaw(key)
	if !ok {
		return nil, false
	}
	v, err := unmarshalInto(newV, payload)
	if err != nil {
		return nil, false
	}
	c.local.put(key, payload)
	c.storeHit.Add(1)
	return v, true
}

// buildLeased runs build while heartbeating the held lease, publishes
// the result to both tiers, and releases.
func (c *Coordinator) buildLeased(ctx context.Context, key string, newV func() any, build func(context.Context) (any, error)) (any, Source, error) {
	stop := c.startHeartbeat(ctx, key)
	v, err := build(ctx)
	stop()
	if err != nil {
		// Give the next claimant a clean shot instead of making it
		// wait out the TTL.
		c.leases.release(key)
		return nil, SourceNone, err
	}
	c.buildDone.Add(1)
	c.publish(key, v)
	c.leases.release(key)
	return v, SourceBuild, nil
}

// buildLocal is the uncoordinated fallback: build, publish, count the
// degraded source.
func (c *Coordinator) buildLocal(ctx context.Context, key string, newV func() any, build func(context.Context) (any, error), src Source) (any, Source, error) {
	v, err := build(ctx)
	if err != nil {
		return nil, SourceNone, err
	}
	c.buildDone.Add(1)
	if src == SourceBuildUnleased {
		c.buildUnleased.Add(1)
	}
	c.publish(key, v)
	return v, src, nil
}

// publish installs a finished value in tier 1 and, best-effort, tier 2.
// A store write failure marks the coordinator degraded — the artifact
// still serves from the local tier; a duplicate store file (another
// replica finished first) counts the redundant work.
func (c *Coordinator) publish(key string, v any) {
	payload, err := json.Marshal(v)
	if err != nil {
		return // unmarshalable values are served but not cacheable
	}
	c.local.put(key, payload)
	dup, err := c.store.SaveRaw(key, payload)
	switch {
	case err != nil:
		c.setDegraded("store", err)
	case dup:
		c.buildDup.Add(1)
		c.clearDegraded("store")
	default:
		c.clearDegraded("store")
	}
}

// startHeartbeat renews key's lease every heartbeat period until
// stopped. A failed renewal ends the heartbeat: if the lease was lost
// the build has already been taken over (finishing it stays harmless —
// identical bytes); if the directory failed the lease will expire and
// some replica, possibly this one, will reclaim the key.
func (c *Coordinator) startHeartbeat(ctx context.Context, key string) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := int64(1)
		t := time.NewTicker(c.heartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				var err error
				seq, err = c.leases.renew(key, seq)
				if err != nil {
					if errors.Is(err, ErrLeaseLost) {
						c.leaseLost.Add(1)
					} else {
						c.leaseErr.Add(1)
					}
					return
				}
				c.leaseRenewed.Add(1)
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// waitForHolder parks this replica while another builds key: polling
// the shared store for the published result, running bounded peer-fill
// rounds with jittered backoff in between, and watching the lease.
// done=false means the lease vanished or expired and the caller should
// race to claim the key.
func (c *Coordinator) waitForHolder(ctx context.Context, key string, cur leaseRecord, newV func() any) (v any, src Source, done bool, err error) {
	c.leaseWaits.Add(1)
	var sp *obs.Span
	if _, traced := obs.SpanFromContext(ctx); traced {
		sp, ctx = c.rec.StartSpan(ctx, "replica:wait:"+shortKey(key), obs.CatReplica)
		defer sp.End()
	}
	round := 0
	nextPeer := time.Now() // first peer round runs immediately
	ticker := time.NewTicker(c.poll)
	defer ticker.Stop()
	for {
		if v, ok := c.loadStore(key, newV); ok {
			return v, SourceStore, true, nil
		}
		rec, ok, rerr := c.leases.read(key)
		now := time.Now()
		switch {
		case rerr != nil:
			// Unreadable lease directory: let the outer loop hit the
			// acquire path, which degrades to a local build.
			return nil, SourceNone, false, nil
		case !ok, rec.expired(now):
			return nil, SourceNone, false, nil
		case rec.Owner != cur.Owner:
			// A takeover happened under us; keep waiting on the new
			// holder with a fresh peer budget.
			cur, round = rec, 0
		}
		if round < c.retries && !now.Before(nextPeer) {
			res := c.peerc.round(ctx, key, &c.peerMet)
			if res.ok {
				c.local.put(key, res.payload)
				if v, uerr := unmarshalInto(newV, res.payload); uerr == nil {
					c.peerHit.Add(1)
					return v, SourcePeer, true, nil
				}
			}
			round++
			nextPeer = time.Now().Add(c.peerc.backoff(round))
		}
		select {
		case <-ctx.Done():
			return nil, SourceNone, true, context.Cause(ctx)
		case <-ticker.C:
		}
	}
}

// peerFill is the storeless cache-fill: bounded rounds over all peers
// with jittered backoff, stopping early when every peer definitively
// misses (no shared store means a miss everywhere is final — build).
func (c *Coordinator) peerFill(ctx context.Context, key string, newV func() any) (any, bool) {
	var sp *obs.Span
	if _, traced := obs.SpanFromContext(ctx); traced {
		sp, ctx = c.rec.StartSpan(ctx, "replica:peer:"+shortKey(key), obs.CatReplica)
		defer sp.End()
	}
	for round := 1; round <= c.retries; round++ {
		res := c.peerc.round(ctx, key, &c.peerMet)
		if res.ok {
			c.local.put(key, res.payload)
			if v, err := unmarshalInto(newV, res.payload); err == nil {
				c.peerHit.Add(1)
				return v, true
			}
		}
		if !res.transient || ctx.Err() != nil {
			return nil, false
		}
		if round < c.retries {
			sleep(ctx, c.peerc.backoff(round))
		}
	}
	return nil, false
}

func unmarshalInto(newV func() any, payload []byte) (any, error) {
	v := newV()
	if err := json.Unmarshal(payload, v); err != nil {
		return nil, err
	}
	return v, nil
}

// shortKey abbreviates a 64-hex content address for span names.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// byteLRU is the tier-1 cache: a hard-capped, mutex-guarded LRU of
// checkpoint payloads keyed by content address.
type byteLRU struct {
	mu  sync.Mutex
	cap int
	ll  *list.List
	m   map[string]*list.Element
}

type byteItem struct {
	key     string
	payload []byte
}

func newByteLRU(cap int) *byteLRU {
	if cap < 1 {
		cap = 1
	}
	return &byteLRU{cap: cap, ll: list.New(), m: make(map[string]*list.Element)}
}

func (l *byteLRU) get(key string) ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.m[key]; ok {
		l.ll.MoveToFront(el)
		return el.Value.(*byteItem).payload, true
	}
	return nil, false
}

func (l *byteLRU) put(key string, payload []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.m[key]; ok {
		el.Value.(*byteItem).payload = payload
		l.ll.MoveToFront(el)
		return
	}
	l.m[key] = l.ll.PushFront(&byteItem{key: key, payload: payload})
	for l.ll.Len() > l.cap {
		back := l.ll.Back()
		l.ll.Remove(back)
		delete(l.m, back.Value.(*byteItem).key)
	}
}

func (l *byteLRU) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}
