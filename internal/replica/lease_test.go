package replica

import (
	"errors"
	"os"
	"testing"
	"time"
)

// fakeClock is a settable time source for lease tests, so expiry is
// driven by the test instead of real sleeps.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func testLeases(t *testing.T, owners ...string) (*fakeClock, []*leaseDir) {
	t.Helper()
	dir := t.TempDir()
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	out := make([]*leaseDir, len(owners))
	for i, o := range owners {
		out[i] = &leaseDir{dir: dir, owner: o, ttl: 100 * time.Millisecond, now: clk.now}
	}
	return clk, out
}

func TestLeaseAcquireReleaseCycle(t *testing.T) {
	_, ld := testLeases(t, "a", "b")
	a, b := ld[0], ld[1]

	held, _, takeover, err := a.tryAcquire("k1")
	if err != nil || !held || takeover {
		t.Fatalf("a.tryAcquire: held=%v takeover=%v err=%v", held, takeover, err)
	}
	held, cur, _, err := b.tryAcquire("k1")
	if err != nil || held {
		t.Fatalf("b.tryAcquire while a holds: held=%v err=%v", held, err)
	}
	if cur.Owner != "a" {
		t.Fatalf("cur.Owner = %q, want a", cur.Owner)
	}
	if err := a.release("k1"); err != nil {
		t.Fatalf("a.release: %v", err)
	}
	held, _, _, err = b.tryAcquire("k1")
	if err != nil || !held {
		t.Fatalf("b.tryAcquire after release: held=%v err=%v", held, err)
	}
}

func TestLeaseExpiryTakeover(t *testing.T) {
	clk, ld := testLeases(t, "a", "b")
	a, b := ld[0], ld[1]

	if held, _, _, _ := a.tryAcquire("k"); !held {
		t.Fatal("a could not acquire a fresh key")
	}
	clk.advance(150 * time.Millisecond) // past the 100ms TTL
	held, _, takeover, err := b.tryAcquire("k")
	if err != nil || !held || !takeover {
		t.Fatalf("b after expiry: held=%v takeover=%v err=%v", held, takeover, err)
	}
	// a's renewal must now fail: the key belongs to b.
	if _, err := a.renew("k", 1); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("a.renew after takeover: err=%v, want ErrLeaseLost", err)
	}
}

func TestLeaseRenewExtendsDeadline(t *testing.T) {
	clk, ld := testLeases(t, "a", "b")
	a, b := ld[0], ld[1]

	if held, _, _, _ := a.tryAcquire("k"); !held {
		t.Fatal("acquire failed")
	}
	clk.advance(80 * time.Millisecond)
	seq, err := a.renew("k", 1)
	if err != nil || seq != 2 {
		t.Fatalf("renew: seq=%d err=%v", seq, err)
	}
	// Past the original deadline but inside the renewed one: b must
	// still see a live holder.
	clk.advance(80 * time.Millisecond)
	held, cur, takeover, err := b.tryAcquire("k")
	if err != nil || held || takeover {
		t.Fatalf("b inside renewed lease: held=%v takeover=%v err=%v", held, takeover, err)
	}
	if cur.Owner != "a" || cur.Seq != 2 {
		t.Fatalf("cur = %+v, want owner a seq 2", cur)
	}
}

func TestLeaseUnparseableFileReadsAsExpired(t *testing.T) {
	_, ld := testLeases(t, "a")
	a := ld[0]
	if err := os.WriteFile(a.path("k"), []byte("torn writ"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, ok, err := a.read("k")
	if err != nil || !ok {
		t.Fatalf("read: ok=%v err=%v", ok, err)
	}
	if !rec.expired(a.now()) {
		t.Fatal("unparseable lease did not read as expired")
	}
	held, _, takeover, err := a.tryAcquire("k")
	if err != nil || !held || !takeover {
		t.Fatalf("tryAcquire over garbage: held=%v takeover=%v err=%v", held, takeover, err)
	}
}

func TestLeaseReleaseIgnoresForeignLease(t *testing.T) {
	_, ld := testLeases(t, "a", "b")
	a, b := ld[0], ld[1]
	if held, _, _, _ := a.tryAcquire("k"); !held {
		t.Fatal("acquire failed")
	}
	if err := b.release("k"); err != nil {
		t.Fatalf("b.release: %v", err)
	}
	if _, ok, _ := a.read("k"); !ok {
		t.Fatal("b.release deleted a's lease")
	}
}
