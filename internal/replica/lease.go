package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fault"
)

// ErrLeaseLost is returned by renew when the lease file no longer names
// this replica as owner — another replica presumed us dead (an expired
// TTL) and took the key over. The build keeps running: its result is
// content-addressed, so finishing it is harmless, merely redundant.
var ErrLeaseLost = errors.New("replica: lease lost to another owner")

// leaseRecord is the JSON body of a lease file. Expires is an absolute
// wall-clock deadline: replicas share a filesystem, so they share a
// clock to within NTP skew, which the TTL must dominate.
type leaseRecord struct {
	Owner   string `json:"owner"`
	Seq     int64  `json:"seq"`             // renewal count, for debugging
	Expires int64  `json:"expires_unix_ns"` // absolute deadline
}

// expired reports whether the record's deadline has passed at now.
// An unparseable lease file decodes to the zero record, whose Expires
// of 0 is always in the past — torn writes read as stale, so a crash
// mid-heartbeat cannot wedge a key forever.
func (r leaseRecord) expired(now time.Time) bool {
	return r.Expires <= now.UnixNano()
}

// leaseDir implements the on-disk lease protocol over the shared
// checkpoint directory: one `<key>.lease` file per in-flight build,
// created atomically (O_CREATE|O_EXCL), renewed by the builder's
// heartbeat via temp-file + rename, deleted on release — or by any
// replica that finds it expired (takeover).
type leaseDir struct {
	dir   string
	owner string
	ttl   time.Duration
	now   func() time.Time // test seam; time.Now in production
}

func (l *leaseDir) path(key string) string {
	return filepath.Join(l.dir, key+".lease")
}

// tryAcquire attempts to claim key. held=true means this replica now
// owns the lease and must build; held=false with err=nil means a live
// holder exists and cur describes it. takeover reports that an expired
// lease was deleted along the way (counted by the caller only when the
// claim then succeeded). A non-nil err means the lease infrastructure
// itself failed — unwritable directory, injected fault — and the caller
// degrades to an uncoordinated local build.
func (l *leaseDir) tryAcquire(key string) (held bool, cur leaseRecord, takeover bool, err error) {
	if err := fault.Hit(SiteLeaseAcquire); err != nil {
		return false, leaseRecord{}, false, err
	}
	// Two rounds: a first create attempt, and — after deleting an
	// expired lease — exactly one more. Losing the second race means
	// another replica took the key over first; it is the live holder.
	for attempt := 0; attempt < 2; attempt++ {
		mine, created, err := l.create(key)
		if err != nil {
			return false, leaseRecord{}, takeover, err
		}
		if created {
			return true, mine, takeover, nil
		}
		rec, ok, err := l.read(key)
		if err != nil {
			return false, leaseRecord{}, takeover, err
		}
		if ok && !rec.expired(l.now()) {
			return false, rec, false, nil
		}
		if ok {
			// Crashed builder: the lease outlived its heartbeat. Delete
			// it and race for the claim.
			os.Remove(l.path(key))
			takeover = true
		}
		// !ok: the file vanished between create and read (released or
		// taken over); loop and try the create again.
	}
	rec, _, err := l.read(key)
	if err != nil {
		return false, leaseRecord{}, takeover, err
	}
	return false, rec, false, nil
}

// create makes the O_EXCL claim attempt. created=false with err=nil
// means the file already exists (someone holds, or held, the lease).
func (l *leaseDir) create(key string) (rec leaseRecord, created bool, err error) {
	f, err := os.OpenFile(l.path(key), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return leaseRecord{}, false, nil
		}
		return leaseRecord{}, false, fmt.Errorf("replica: lease create %s: %w", key, err)
	}
	rec = leaseRecord{Owner: l.owner, Seq: 1, Expires: l.now().Add(l.ttl).UnixNano()}
	b, _ := json.Marshal(rec)
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(l.path(key))
		return leaseRecord{}, false, fmt.Errorf("replica: lease write %s: %w", key, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(l.path(key))
		return leaseRecord{}, false, fmt.Errorf("replica: lease close %s: %w", key, err)
	}
	return rec, true, nil
}

// read returns the current lease record. ok=false means no lease file
// exists. An unreadable or unparseable file reads as the zero record
// (ok=true, already expired), so corruption resolves to takeover.
func (l *leaseDir) read(key string) (rec leaseRecord, ok bool, err error) {
	b, err := os.ReadFile(l.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return leaseRecord{}, false, nil
		}
		return leaseRecord{}, false, fmt.Errorf("replica: lease read %s: %w", key, err)
	}
	_ = json.Unmarshal(b, &rec) // zero record on failure: expired
	return rec, true, nil
}

// renew extends the lease deadline by one TTL, atomically replacing the
// file so a concurrent read never sees a torn record. seq is the
// renewal counter from the previous renew (1 after acquire); the new
// value is returned. ErrLeaseLost means another replica owns the key
// now; other errors mean the heartbeat could not reach the directory.
func (l *leaseDir) renew(key string, seq int64) (int64, error) {
	if err := fault.Hit(SiteLeaseRenew); err != nil {
		return seq, err
	}
	cur, ok, err := l.read(key)
	if err != nil {
		return seq, err
	}
	if !ok || cur.Owner != l.owner {
		return seq, ErrLeaseLost
	}
	rec := leaseRecord{Owner: l.owner, Seq: seq + 1, Expires: l.now().Add(l.ttl).UnixNano()}
	b, _ := json.Marshal(rec)
	tmp, err := os.CreateTemp(l.dir, "lease-tmp-*")
	if err != nil {
		return seq, fmt.Errorf("replica: lease renew %s: %w", key, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return seq, fmt.Errorf("replica: lease renew %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return seq, fmt.Errorf("replica: lease renew %s: %w", key, err)
	}
	if err := os.Rename(tmpName, l.path(key)); err != nil {
		os.Remove(tmpName)
		return seq, fmt.Errorf("replica: lease renew %s: %w", key, err)
	}
	return rec.Seq, nil
}

// release deletes the lease if this replica still owns it. A release
// that fails (or is suppressed by the replica.lease.release fault site)
// leaves a stale lease behind; the next claimant waits out the TTL and
// takes over, so a lost release costs latency, never correctness.
func (l *leaseDir) release(key string) error {
	if err := fault.Hit(SiteLeaseRelease); err != nil {
		return err
	}
	cur, ok, err := l.read(key)
	if err != nil || !ok {
		return err
	}
	if cur.Owner == l.owner {
		os.Remove(l.path(key))
	}
	return nil
}
