package capacity

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

func fakeMachine(id int, cpuCap, memCap float64, cpu, mem []float64) *cluster.MachineSeries {
	mk := func(vs []float64) *timeseries.Series {
		return &timeseries.Series{Start: 0, Step: 300, Values: append([]float64(nil), vs...)}
	}
	zeros := make([]float64, len(cpu))
	ms := &cluster.MachineSeries{Machine: trace.Machine{ID: id, CPU: cpuCap, Memory: memCap, PageCache: 1}}
	ms.CPUByGroup[0] = mk(cpu)
	ms.CPUByGroup[1] = mk(zeros)
	ms.CPUByGroup[2] = mk(zeros)
	ms.MemByGroup[0] = mk(mem)
	ms.MemByGroup[1] = mk(zeros)
	ms.MemByGroup[2] = mk(zeros)
	ms.MemAssigned = mk(zeros)
	ms.PageCache = mk(zeros)
	ms.Running = mk(zeros)
	return ms
}

func TestClusterDemandAggregates(t *testing.T) {
	a := fakeMachine(0, 1, 1, []float64{0.2, 0.4}, []float64{0.1, 0.1})
	b := fakeMachine(1, 0.5, 0.5, []float64{0.1, 0.1}, []float64{0.2, 0.3})
	d, err := ClusterDemand([]*cluster.MachineSeries{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 2 || d.CPUCap != 1.5 || d.MemCap != 1.5 {
		t.Fatalf("demand caps %+v", d)
	}
	if math.Abs(d.CPU[0]-0.3) > 1e-12 || math.Abs(d.CPU[1]-0.5) > 1e-12 {
		t.Fatalf("cpu demand %v", d.CPU)
	}
	if math.Abs(d.Mem[1]-0.4) > 1e-12 {
		t.Fatalf("mem demand %v", d.Mem)
	}
}

func TestClusterDemandErrors(t *testing.T) {
	if _, err := ClusterDemand(nil); err == nil {
		t.Error("empty park accepted")
	}
	a := fakeMachine(0, 1, 1, []float64{0.2, 0.4}, []float64{0.1, 0.1})
	b := fakeMachine(1, 1, 1, []float64{0.2}, []float64{0.1})
	if _, err := ClusterDemand([]*cluster.MachineSeries{a, b}); err == nil {
		t.Error("mismatched series lengths accepted")
	}
}

func TestMakePlanKnownNumbers(t *testing.T) {
	// 4 machines of capacity 1 each; demand 1.4 CPU at peak with a 0.7
	// ceiling needs ceil(1.4/0.7) = 2 machines.
	machines := []*cluster.MachineSeries{
		fakeMachine(0, 1, 1, []float64{0.5, 0.2}, []float64{0.1, 0.1}),
		fakeMachine(1, 1, 1, []float64{0.5, 0.1}, []float64{0.1, 0.1}),
		fakeMachine(2, 1, 1, []float64{0.4, 0.1}, []float64{0.1, 0.1}),
		fakeMachine(3, 1, 1, []float64{0.0, 0.0}, []float64{0.0, 0.0}),
	}
	d, err := ClusterDemand(machines)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := MakePlan(d, 0.7, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Needed[0] != 2 || plan.Needed[1] != 1 {
		t.Fatalf("needed %v, want [2 1]", plan.Needed)
	}
	if plan.Peak != 2 {
		t.Fatalf("peak %v", plan.Peak)
	}
	if plan.FreeableAtP99 <= 0 {
		t.Fatalf("freeable %v, want positive", plan.FreeableAtP99)
	}
	if plan.MeanCPUUtil <= 0 || plan.MeanMemUtil <= 0 {
		t.Fatal("utilisation not computed")
	}
}

func TestMakePlanValidation(t *testing.T) {
	d := Demand{N: 1, CPU: []float64{0.1}, Mem: []float64{0.1}, CPUCap: 1, MemCap: 1}
	if _, err := MakePlan(d, 0, 0.8); err == nil {
		t.Error("zero ceiling accepted")
	}
	if _, err := MakePlan(d, 0.7, 1.5); err == nil {
		t.Error("ceiling > 1 accepted")
	}
	if _, err := MakePlan(Demand{}, 0.7, 0.8); err == nil {
		t.Error("empty demand accepted")
	}
}

func TestMemoryBoundPlan(t *testing.T) {
	// Memory-heavy demand: the memory ceiling binds, not CPU.
	machines := []*cluster.MachineSeries{
		fakeMachine(0, 1, 1, []float64{0.1}, []float64{0.9}),
		fakeMachine(1, 1, 1, []float64{0.1}, []float64{0.8}),
	}
	d, _ := ClusterDemand(machines)
	plan, err := MakePlan(d, 0.7, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	// mem demand 1.7, ceiling 0.85 -> 2 machines; cpu would need 1.
	if plan.Needed[0] != 2 {
		t.Fatalf("memory-bound plan needed %v, want 2", plan.Needed[0])
	}
}

func TestEndToEndConsolidation(t *testing.T) {
	machines := synth.GoogleMachines(20, rng.New(1))
	horizon := int64(86400)
	cfg := cluster.DefaultConfig(machines, horizon)
	gcfg := synth.ScaledGoogleConfig(20, horizon)
	tasks := synth.GenerateGoogleTasks(gcfg, rng.New(2))
	res, err := cluster.Simulate(cfg, tasks, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	d, err := ClusterDemand(res.Machines)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := MakePlan(d, 0.7, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if plan.P99 > float64(d.N) {
		t.Fatalf("needed %v exceeds park %d", plan.P99, d.N)
	}
	if plan.P50 > plan.P99 || plan.P99 > plan.Peak {
		t.Fatalf("percentiles not monotone: %v %v %v", plan.P50, plan.P99, plan.Peak)
	}
	if h := NoiseHeadroom(res.Machines, 2, 3); h <= 0 || h > 1.5 {
		t.Fatalf("noise headroom %v", h)
	}
	sp := Spread(res.Machines, 0.02)
	if sp.MeanLoad <= 0 || sp.StdLoad < 0 {
		t.Fatalf("spread %+v", sp)
	}
}
