// Package capacity implements the capacity-planning and consolidation
// calculations the paper's introduction motivates: "the resource
// management system can proactively shift and consolidate load via
// (VM) migration to improve host utilization, using fewer machines and
// shutting off unneeded hosts."
//
// The inputs are the per-machine load series the simulator (or a real
// trace) produces; the outputs are fluid-packing lower bounds on the
// machines needed per window, peak percentiles, and the noise headroom
// consolidation must reserve.
package capacity

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/hostload"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Demand is the cluster-wide resource demand per sampling window.
type Demand struct {
	Step   int64
	CPU    []float64 // total CPU usage per window (normalised units)
	Mem    []float64
	CPUCap float64 // total park capacity
	MemCap float64
	N      int // machines
}

// ClusterDemand aggregates the simulator's per-machine series.
func ClusterDemand(machines []*cluster.MachineSeries) (Demand, error) {
	if len(machines) == 0 {
		return Demand{}, fmt.Errorf("capacity: no machines")
	}
	n := machines[0].Running.Len()
	d := Demand{
		Step: machines[0].Running.Step,
		CPU:  make([]float64, n),
		Mem:  make([]float64, n),
		N:    len(machines),
	}
	for _, m := range machines {
		cpu := m.CPU()
		mem := m.Mem()
		if cpu.Len() != n {
			return Demand{}, fmt.Errorf("capacity: machine %d has %d samples, want %d",
				m.Machine.ID, cpu.Len(), n)
		}
		for i := 0; i < n; i++ {
			d.CPU[i] += cpu.Values[i]
			d.Mem[i] += mem.Values[i]
		}
		d.CPUCap += m.Machine.CPU
		d.MemCap += m.Machine.Memory
	}
	return d, nil
}

// Plan is a consolidation study result.
type Plan struct {
	CPUCeiling, MemCeiling float64

	// Needed is the fluid-packing lower bound on machines (of average
	// size) required per window.
	Needed []float64

	P50, P90, P99, Peak float64
	// FreeableAtP99 is how many machines could be off outside the p99
	// peak.
	FreeableAtP99 float64
	// MeanCPUUtil / MeanMemUtil of the unconsolidated park.
	MeanCPUUtil, MeanMemUtil float64
}

// MakePlan computes the consolidation plan for the given utilisation
// ceilings (e.g. 0.7 CPU, 0.85 memory, leaving the headroom the paper
// says Google reserves for load spikes).
func MakePlan(d Demand, cpuCeil, memCeil float64) (Plan, error) {
	if cpuCeil <= 0 || cpuCeil > 1 || memCeil <= 0 || memCeil > 1 {
		return Plan{}, fmt.Errorf("capacity: ceilings must be in (0,1]")
	}
	if d.N == 0 || len(d.CPU) == 0 {
		return Plan{}, fmt.Errorf("capacity: empty demand")
	}
	avgCPU := d.CPUCap / float64(d.N)
	avgMem := d.MemCap / float64(d.N)
	needed := make([]float64, len(d.CPU))
	for i := range d.CPU {
		byCPU := d.CPU[i] / (cpuCeil * avgCPU)
		byMem := d.Mem[i] / (memCeil * avgMem)
		// The 1e-9 guard keeps float round-off (e.g. 1.7/0.85 being one
		// ULP above 2) from demanding a phantom machine.
		needed[i] = math.Ceil(math.Max(byCPU, byMem) - 1e-9)
		if needed[i] < 1 {
			needed[i] = 1
		}
	}
	p := Plan{
		CPUCeiling:  cpuCeil,
		MemCeiling:  memCeil,
		Needed:      needed,
		P50:         stats.Quantile(needed, 0.5),
		P90:         stats.Quantile(needed, 0.9),
		P99:         stats.Quantile(needed, 0.99),
		Peak:        stats.Max(needed),
		MeanCPUUtil: stats.Mean(d.CPU) / d.CPUCap,
		MeanMemUtil: stats.Mean(d.Mem) / d.MemCap,
	}
	p.FreeableAtP99 = float64(d.N) - p.P99
	if p.FreeableAtP99 < 0 {
		p.FreeableAtP99 = 0
	}
	return p, nil
}

// NoiseHeadroom returns the per-host relative-CPU headroom a
// consolidation plan must reserve to absorb k-sigma load noise, using
// the paper's mean-filter noise measurement (the residual is roughly
// the noise scale; multiply by k for the burst allowance).
func NoiseHeadroom(machines []*cluster.MachineSeries, half int, k float64) float64 {
	n := hostload.Noise(machines, hostload.CPUUsage, half)
	return k * n.Max
}

// PolicySpread summarises how evenly a placement policy loads a park:
// the standard deviation of mean relative CPU per machine and the
// count of near-idle machines (shutdown candidates).
type PolicySpread struct {
	MeanLoad  float64
	StdLoad   float64
	NearIdle  int
	Threshold float64
}

// Spread measures the per-machine load distribution.
func Spread(machines []*cluster.MachineSeries, idleThreshold float64) PolicySpread {
	var means []float64
	idle := 0
	for _, m := range machines {
		mean := stats.Mean(hostload.RelativeSeries(m, hostload.CPUUsage, trace.LowPriority).Values)
		means = append(means, mean)
		if mean < idleThreshold {
			idle++
		}
	}
	return PolicySpread{
		MeanLoad:  stats.Mean(means),
		StdLoad:   stats.Std(means),
		NearIdle:  idle,
		Threshold: idleThreshold,
	}
}
