package swf

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// randomRecord builds an arbitrary-but-representable record: the text
// formats carry fixed-point fields, so floats are quantised to two
// decimals, matching what the writer emits.
func randomRecord(s *rng.Stream) Record {
	q2 := func(v float64) float64 { return float64(int64(v*100)) / 100 }
	return Record{
		JobID:          s.Int64N(1 << 40),
		SubmitTime:     s.Int64N(1 << 30),
		WaitTime:       s.Int64N(100000),
		RunTime:        1 + s.Int64N(1<<20),
		NProcs:         1 + s.IntN(4096),
		AvgCPUTime:     q2(s.Float64() * 1e5),
		UsedMemory:     q2(s.Float64() * 1e7),
		ReqNProcs:      1 + s.IntN(4096),
		ReqTime:        s.Int64N(1 << 20),
		ReqMemory:      q2(s.Float64() * 1e7),
		Status:         s.IntN(6),
		UserID:         s.IntN(1000),
		GroupID:        s.IntN(100),
		ExecutableID:   s.IntN(5000),
		QueueID:        s.IntN(10),
		PartitionID:    s.IntN(10),
		PrecedingJobID: -1,
		ThinkTime:      -1,
	}
}

// TestRandomRecordRoundTrip: any representable record survives a
// write/read cycle in both formats.
func TestRandomRecordRoundTrip(t *testing.T) {
	for _, format := range []Format{SWF, GWA} {
		f := func(seed uint64) bool {
			s := rng.New(seed)
			recs := make([]Record, 1+s.IntN(20))
			for i := range recs {
				recs[i] = randomRecord(s)
			}
			var buf bytes.Buffer
			w := NewWriter(&buf, format)
			for _, r := range recs {
				if err := w.Write(r); err != nil {
					return false
				}
			}
			if err := w.Flush(); err != nil {
				return false
			}
			back, err := Read(&buf, format)
			if err != nil || len(back) != len(recs) {
				return false
			}
			for i := range recs {
				if back[i] != recs[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("format %v: %v", format, err)
		}
	}
}

// TestJobConversionPreservesLength: converting to a record and back
// never changes the job's length or width.
func TestJobConversionPreservesLength(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		r := randomRecord(s)
		j := r.ToJob()
		back := FromJob(j).ToJob()
		return back.Length() == j.Length() && back.NumCPUs == j.NumCPUs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
