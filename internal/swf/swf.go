// Package swf reads and writes the Parallel Workload Archive's
// Standard Workload Format (SWF) and the Grid Workload Archive's
// GWA-T text format. These are the formats of the Grid/HPC traces the
// paper compares against (AuverGrid, NorduGrid, SHARCNET, ANL, RICC,
// MetaCentrum, LLNL-Atlas, DAS-2).
//
// SWF records have 18 whitespace-separated fields; GWA-T records share
// the first 11 fields and extend to 29. Lines starting with ';'
// (SWF header comments) or '#' (GWA comments) are skipped. Unknown or
// unavailable values are written as -1, as both archives do.
package swf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// Format selects the record layout.
type Format int

// Supported formats.
const (
	SWF Format = iota // 18 fields, ';' comments
	GWA               // 29 fields, '#' comments
)

// fieldCount returns the number of fields per record.
func (f Format) fieldCount() int {
	if f == GWA {
		return 29
	}
	return 18
}

func (f Format) comment() byte {
	if f == GWA {
		return '#'
	}
	return ';'
}

// Record is one SWF/GWA job record. Times are in seconds; -1 marks an
// unknown value, following the archive conventions.
type Record struct {
	JobID          int64
	SubmitTime     int64
	WaitTime       int64
	RunTime        int64
	NProcs         int     // allocated processors
	AvgCPUTime     float64 // average CPU time per processor, seconds
	UsedMemory     float64 // KB per processor
	ReqNProcs      int
	ReqTime        int64
	ReqMemory      float64
	Status         int // 1 = completed, 0 = failed, 5 = cancelled
	UserID         int
	GroupID        int
	ExecutableID   int
	QueueID        int
	PartitionID    int
	PrecedingJobID int64
	ThinkTime      int64
}

// ToJob converts the record to the analysis-level Job model.
// The job length is wait + run (submission to completion), matching
// the paper's definition. CPUTime is avg-CPU-per-proc times procs.
func (r Record) ToJob() trace.Job {
	procs := r.NProcs
	if procs <= 0 {
		procs = 1
	}
	cpuTime := r.AvgCPUTime * float64(procs)
	if r.AvgCPUTime < 0 {
		// Archives often omit CPU time; assume fully busy processors.
		cpuTime = float64(r.RunTime) * float64(procs)
	}
	wait := r.WaitTime
	if wait < 0 {
		wait = 0
	}
	run := r.RunTime
	if run < 0 {
		run = 0
	}
	mem := r.UsedMemory
	if mem < 0 {
		mem = 0
	}
	return trace.Job{
		ID:        r.JobID,
		Submit:    r.SubmitTime,
		End:       r.SubmitTime + wait + run,
		TaskCount: 1,
		NumCPUs:   float64(procs),
		CPUTime:   cpuTime,
		MemAvg:    mem,
	}
}

// FromJob converts an analysis-level Job to a record. Wait time is
// folded into run time because Job does not track queueing separately.
func FromJob(j trace.Job) Record {
	procs := int(j.NumCPUs)
	if procs <= 0 {
		procs = 1
	}
	avgCPU := -1.0
	if j.CPUTime > 0 {
		avgCPU = j.CPUTime / float64(procs)
	}
	return Record{
		JobID:          j.ID,
		SubmitTime:     j.Submit,
		WaitTime:       0,
		RunTime:        j.Length(),
		NProcs:         procs,
		AvgCPUTime:     avgCPU,
		UsedMemory:     j.MemAvg,
		ReqNProcs:      procs,
		ReqTime:        -1,
		ReqMemory:      -1,
		Status:         1,
		UserID:         -1,
		GroupID:        -1,
		ExecutableID:   -1,
		QueueID:        -1,
		PartitionID:    -1,
		PrecedingJobID: -1,
		ThinkTime:      -1,
	}
}

func (r Record) fields(f Format) []string {
	base := []string{
		strconv.FormatInt(r.JobID, 10),
		strconv.FormatInt(r.SubmitTime, 10),
		strconv.FormatInt(r.WaitTime, 10),
		strconv.FormatInt(r.RunTime, 10),
		strconv.Itoa(r.NProcs),
		strconv.FormatFloat(r.AvgCPUTime, 'f', 2, 64),
		strconv.FormatFloat(r.UsedMemory, 'f', 2, 64),
		strconv.Itoa(r.ReqNProcs),
		strconv.FormatInt(r.ReqTime, 10),
		strconv.FormatFloat(r.ReqMemory, 'f', 2, 64),
		strconv.Itoa(r.Status),
		strconv.Itoa(r.UserID),
		strconv.Itoa(r.GroupID),
		strconv.Itoa(r.ExecutableID),
		strconv.Itoa(r.QueueID),
		strconv.Itoa(r.PartitionID),
		strconv.FormatInt(r.PrecedingJobID, 10),
		strconv.FormatInt(r.ThinkTime, 10),
	}
	if f == GWA {
		for len(base) < f.fieldCount() {
			base = append(base, "-1")
		}
	}
	return base
}

// Writer emits SWF/GWA records.
type Writer struct {
	w      *bufio.Writer
	format Format
}

// NewWriter wraps w. Call Flush when done.
func NewWriter(w io.Writer, format Format) *Writer {
	return &Writer{w: bufio.NewWriter(w), format: format}
}

// Header writes archive-style header comments (key: value lines).
func (w *Writer) Header(lines ...string) error {
	for _, l := range lines {
		if _, err := fmt.Fprintf(w.w, "%c %s\n", w.format.comment(), l); err != nil {
			return fmt.Errorf("swf: write header: %w", err)
		}
	}
	return nil
}

// Write emits one record.
func (w *Writer) Write(r Record) error {
	if _, err := fmt.Fprintln(w.w, strings.Join(r.fields(w.format), " ")); err != nil {
		return fmt.Errorf("swf: write record: %w", err)
	}
	return nil
}

// WriteJobs converts and writes all jobs.
func (w *Writer) WriteJobs(jobs []trace.Job) error {
	for _, j := range jobs {
		if err := w.Write(FromJob(j)); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// Read parses all records from r in the given format. Comment and
// blank lines are skipped. Records with too few fields are an error;
// extra fields beyond the format's count are ignored (some archive
// files carry trailing annotations).
func Read(r io.Reader, format Format) ([]Record, error) {
	recs, _, err := ReadWithHeader(r, format)
	return recs, err
}

// ReadWithHeader parses records plus the archive's header metadata:
// comment lines of the form "; Key: value" (or "# Key: value"), as the
// PWA and GWA headers use ("; Computer: ...", "; MaxNodes: ...").
// Comment lines without a colon are ignored.
func ReadWithHeader(r io.Reader, format Format) ([]Record, map[string]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var out []Record
	header := make(map[string]string)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == ';' || line[0] == '#' {
			if key, value, ok := parseHeaderLine(line); ok {
				header[key] = value
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 11 {
			return nil, nil, fmt.Errorf("swf: line %d: %d fields, want at least 11", lineNo, len(fields))
		}
		rec, err := parseRecord(fields)
		if err != nil {
			return nil, nil, fmt.Errorf("swf: line %d: %w", lineNo, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("swf: scan: %w", err)
	}
	return out, header, nil
}

func parseHeaderLine(line string) (key, value string, ok bool) {
	body := strings.TrimSpace(strings.TrimLeft(line, ";# "))
	i := strings.Index(body, ":")
	if i <= 0 {
		return "", "", false
	}
	key = strings.TrimSpace(body[:i])
	value = strings.TrimSpace(body[i+1:])
	if key == "" {
		return "", "", false
	}
	return key, value, true
}

func parseRecord(f []string) (Record, error) {
	var r Record
	var err error
	geti64 := func(i int, what string) int64 {
		if err != nil {
			return -1
		}
		var v int64
		if v, err = strconv.ParseInt(f[i], 10, 64); err != nil {
			err = fmt.Errorf("%s %q: %w", what, f[i], err)
		}
		return v
	}
	getint := func(i int, what string) int {
		return int(geti64(i, what))
	}
	getf := func(i int, what string) float64 {
		if err != nil {
			return -1
		}
		var v float64
		if v, err = strconv.ParseFloat(f[i], 64); err != nil {
			err = fmt.Errorf("%s %q: %w", what, f[i], err)
		}
		return v
	}
	r.JobID = geti64(0, "job id")
	r.SubmitTime = geti64(1, "submit time")
	r.WaitTime = geti64(2, "wait time")
	r.RunTime = geti64(3, "run time")
	r.NProcs = getint(4, "nprocs")
	r.AvgCPUTime = getf(5, "avg cpu time")
	r.UsedMemory = getf(6, "used memory")
	r.ReqNProcs = getint(7, "req nprocs")
	r.ReqTime = geti64(8, "req time")
	r.ReqMemory = getf(9, "req memory")
	r.Status = getint(10, "status")
	if len(f) >= 18 {
		r.UserID = getint(11, "user id")
		r.GroupID = getint(12, "group id")
		r.ExecutableID = getint(13, "executable id")
		r.QueueID = getint(14, "queue id")
		r.PartitionID = getint(15, "partition id")
		r.PrecedingJobID = geti64(16, "preceding job")
		r.ThinkTime = geti64(17, "think time")
	}
	return r, err
}

// ReadJobs parses records and converts them to Jobs, dropping records
// with non-positive run time (the archives mark cancelled jobs that
// never ran this way) unless keepAll is set.
func ReadJobs(r io.Reader, format Format, keepAll bool) ([]trace.Job, error) {
	recs, err := Read(r, format)
	if err != nil {
		return nil, err
	}
	jobs := make([]trace.Job, 0, len(recs))
	for _, rec := range recs {
		if !keepAll && rec.RunTime <= 0 {
			continue
		}
		jobs = append(jobs, rec.ToJob())
	}
	return jobs, nil
}
