package swf

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

func sampleRecord() Record {
	return Record{
		JobID: 1, SubmitTime: 100, WaitTime: 20, RunTime: 3600,
		NProcs: 8, AvgCPUTime: 3400.5, UsedMemory: 2048,
		ReqNProcs: 8, ReqTime: 7200, ReqMemory: 4096, Status: 1,
		UserID: 3, GroupID: 1, ExecutableID: 7, QueueID: 0,
		PartitionID: -1, PrecedingJobID: -1, ThinkTime: -1,
	}
}

func TestSWFRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, SWF)
	if err := w.Header("Computer: TestCluster", "MaxJobs: 2"); err != nil {
		t.Fatal(err)
	}
	r1 := sampleRecord()
	r2 := sampleRecord()
	r2.JobID = 2
	r2.SubmitTime = 500
	if err := w.Write(r1); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(r2); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, SWF)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	if got[0] != r1 || got[1] != r2 {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got[0], r1)
	}
}

func TestGWARoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, GWA)
	if err := w.Header("gwa-format: GWA-T"); err != nil {
		t.Fatal(err)
	}
	r := sampleRecord()
	if err := w.Write(r); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// GWA rows must carry 29 fields.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	data := lines[len(lines)-1]
	if n := len(strings.Fields(data)); n != 29 {
		t.Fatalf("GWA row has %d fields, want 29", n)
	}
	got, err := Read(strings.NewReader(buf.String()), GWA)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != r {
		t.Fatalf("GWA round trip mismatch: %+v", got)
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	in := `; SWF header
; another comment

# hash comment too
1 0 0 60 1 -1.00 -1.00 1 -1 -1.00 1 -1 -1 -1 -1 -1 -1 -1
`
	recs, err := Read(strings.NewReader(in), SWF)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("1 2 3\n"), SWF); err == nil {
		t.Error("short record accepted")
	}
	if _, err := Read(strings.NewReader("x 0 0 60 1 -1 -1 1 -1 -1 1\n"), SWF); err == nil {
		t.Error("bad job id accepted")
	}
	if _, err := Read(strings.NewReader("1 0 0 60 1 bad -1 1 -1 -1 1\n"), SWF); err == nil {
		t.Error("bad float accepted")
	}
}

func TestReadTolerates11FieldRecords(t *testing.T) {
	// Minimal GWA-ish record with only the first 11 fields.
	recs, err := Read(strings.NewReader("5 10 1 30 4 25.0 512 4 60 1024 1\n"), SWF)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].JobID != 5 || recs[0].NProcs != 4 {
		t.Fatalf("recs %+v", recs)
	}
}

func TestToJob(t *testing.T) {
	r := sampleRecord()
	j := r.ToJob()
	if j.ID != 1 || j.Submit != 100 {
		t.Fatalf("job %+v", j)
	}
	// Length = wait + run.
	if j.Length() != 3620 {
		t.Fatalf("length %d", j.Length())
	}
	if j.NumCPUs != 8 {
		t.Fatalf("procs %v", j.NumCPUs)
	}
	if j.CPUTime != 3400.5*8 {
		t.Fatalf("cpu time %v", j.CPUTime)
	}
	if j.MemAvg != 2048 {
		t.Fatalf("mem %v", j.MemAvg)
	}
}

func TestToJobMissingValues(t *testing.T) {
	r := Record{JobID: 9, SubmitTime: 50, WaitTime: -1, RunTime: 100, NProcs: -1, AvgCPUTime: -1, UsedMemory: -1}
	j := r.ToJob()
	if j.NumCPUs != 1 {
		t.Fatalf("default procs %v", j.NumCPUs)
	}
	if j.CPUTime != 100 { // full-busy assumption: runtime * 1 proc
		t.Fatalf("assumed cpu time %v", j.CPUTime)
	}
	if j.Length() != 100 || j.MemAvg != 0 {
		t.Fatalf("job %+v", j)
	}
}

func TestFromJobRoundTrip(t *testing.T) {
	j := trace.Job{ID: 42, Submit: 10, End: 250, NumCPUs: 4, CPUTime: 800, MemAvg: 100}
	r := FromJob(j)
	back := r.ToJob()
	if back.ID != j.ID || back.Submit != j.Submit || back.Length() != j.Length() {
		t.Fatalf("job round trip %+v vs %+v", back, j)
	}
	if back.NumCPUs != 4 || back.CPUTime != 800 || back.MemAvg != 100 {
		t.Fatalf("resources lost: %+v", back)
	}
}

func TestFromJobZeroProcs(t *testing.T) {
	r := FromJob(trace.Job{ID: 1, Submit: 0, End: 10})
	if r.NProcs != 1 {
		t.Fatalf("nprocs %d, want 1", r.NProcs)
	}
	if r.AvgCPUTime != -1 {
		t.Fatalf("avg cpu %v, want -1 for unknown", r.AvgCPUTime)
	}
}

func TestReadWithHeader(t *testing.T) {
	in := `; Computer: AuverGrid
; MaxNodes: 475
; Note without colon separator is skipped... wait, it has one
; JustWords
# UnixStartTime: 1143068401
1 0 0 60 1 -1.00 -1.00 1 -1 -1.00 1 -1 -1 -1 -1 -1 -1 -1
`
	recs, hdr, err := ReadWithHeader(strings.NewReader(in), SWF)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records %d", len(recs))
	}
	if hdr["Computer"] != "AuverGrid" || hdr["MaxNodes"] != "475" {
		t.Fatalf("header %v", hdr)
	}
	if hdr["UnixStartTime"] != "1143068401" {
		t.Fatalf("hash-style header missing: %v", hdr)
	}
	if _, ok := hdr["JustWords"]; ok {
		t.Fatal("colon-free comment parsed as header")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, SWF)
	if err := w.Header("Computer: TestRig", "MaxJobs: 1"); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	_, hdr, err := ReadWithHeader(&buf, SWF)
	if err != nil {
		t.Fatal(err)
	}
	if hdr["Computer"] != "TestRig" || hdr["MaxJobs"] != "1" {
		t.Fatalf("header %v", hdr)
	}
}

func TestWriteJobsReadJobs(t *testing.T) {
	jobs := []trace.Job{
		{ID: 1, Submit: 0, End: 100, NumCPUs: 1, CPUTime: 90},
		{ID: 2, Submit: 50, End: 50, NumCPUs: 2}, // zero-length: dropped by default
		{ID: 3, Submit: 60, End: 400, NumCPUs: 16, CPUTime: 5000},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, SWF)
	if err := w.WriteJobs(jobs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	got, err := ReadJobs(strings.NewReader(text), SWF, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d jobs, want 2 (zero-length dropped)", len(got))
	}
	all, err := ReadJobs(strings.NewReader(text), SWF, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("keepAll got %d jobs, want 3", len(all))
	}
}
