package trace

import (
	"strings"
	"testing"
)

func TestEventTypeStrings(t *testing.T) {
	cases := map[EventType]string{
		EventSubmit:   "SUBMIT",
		EventSchedule: "SCHEDULE",
		EventEvict:    "EVICT",
		EventFail:     "FAIL",
		EventFinish:   "FINISH",
		EventKill:     "KILL",
		EventLost:     "LOST",
		EventUpdate:   "UPDATE",
	}
	for e, want := range cases {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(e), e.String(), want)
		}
		back, err := ParseEventType(want)
		if err != nil || back != e {
			t.Errorf("ParseEventType(%q) = %v, %v", want, back, err)
		}
	}
	if _, err := ParseEventType("NOPE"); err == nil {
		t.Error("unknown event type parsed")
	}
	if !strings.Contains(EventType(99).String(), "99") {
		t.Error("out-of-range event String should embed the value")
	}
}

func TestTerminalAndAbnormal(t *testing.T) {
	if EventSubmit.Terminal() || EventSchedule.Terminal() || EventUpdate.Terminal() {
		t.Error("non-terminal events flagged terminal")
	}
	for _, e := range []EventType{EventEvict, EventFail, EventFinish, EventKill, EventLost} {
		if !e.Terminal() {
			t.Errorf("%s should be terminal", e)
		}
	}
	if EventFinish.Abnormal() {
		t.Error("FINISH is not abnormal")
	}
	for _, e := range []EventType{EventEvict, EventFail, EventKill, EventLost} {
		if !e.Abnormal() {
			t.Errorf("%s should be abnormal", e)
		}
	}
}

func TestStateMachineHappyPath(t *testing.T) {
	var sm StateMachine
	seq := []EventType{EventSubmit, EventSchedule, EventFinish}
	for _, e := range seq {
		if err := sm.Apply(e); err != nil {
			t.Fatalf("apply %s: %v", e, err)
		}
	}
	if sm.State() != StateDead {
		t.Fatalf("final state %s, want dead", sm.State())
	}
}

func TestStateMachineResubmission(t *testing.T) {
	var sm StateMachine
	seq := []EventType{EventSubmit, EventSchedule, EventEvict, EventSubmit, EventSchedule, EventFinish}
	for _, e := range seq {
		if err := sm.Apply(e); err != nil {
			t.Fatalf("apply %s: %v", e, err)
		}
	}
}

func TestStateMachineKillWhilePending(t *testing.T) {
	var sm StateMachine
	for _, e := range []EventType{EventSubmit, EventKill} {
		if err := sm.Apply(e); err != nil {
			t.Fatalf("apply %s: %v", e, err)
		}
	}
	if sm.State() != StateDead {
		t.Fatal("killed pending task should be dead")
	}
}

func TestStateMachineUpdates(t *testing.T) {
	var sm StateMachine
	for _, e := range []EventType{EventSubmit, EventUpdate, EventSchedule, EventUpdate, EventFinish} {
		if err := sm.Apply(e); err != nil {
			t.Fatalf("apply %s: %v", e, err)
		}
	}
}

func TestStateMachineRejectsIllegal(t *testing.T) {
	cases := [][]EventType{
		{EventSchedule},                             // schedule before submit
		{EventFinish},                               // finish before submit
		{EventSubmit, EventFinish},                  // finish while pending
		{EventSubmit, EventSubmit},                  // double submit
		{EventSubmit, EventSchedule, EventSchedule}, // double schedule
		{EventUpdate},                               // update unsubmitted
		{EventSubmit, EventSchedule, EventFinish, EventSchedule}, // schedule dead
		{EventSubmit, EventFail},                                 // fail while pending (only kill/lost allowed)
	}
	for i, seq := range cases {
		var sm StateMachine
		var err error
		for _, e := range seq {
			if err = sm.Apply(e); err != nil {
				break
			}
		}
		if err == nil {
			t.Errorf("case %d: illegal sequence %v accepted", i, seq)
		}
	}
}

func TestGroupOf(t *testing.T) {
	for p := 1; p <= 4; p++ {
		if GroupOf(p) != LowPriority {
			t.Errorf("priority %d should be low", p)
		}
	}
	for p := 5; p <= 8; p++ {
		if GroupOf(p) != MiddlePriority {
			t.Errorf("priority %d should be middle", p)
		}
	}
	for p := 9; p <= 12; p++ {
		if GroupOf(p) != HighPriority {
			t.Errorf("priority %d should be high", p)
		}
	}
	if LowPriority.String() != "low" || MiddlePriority.String() != "middle" || HighPriority.String() != "high" {
		t.Error("priority group names wrong")
	}
}

func TestJobLength(t *testing.T) {
	j := Job{Submit: 100, End: 350}
	if j.Length() != 250 {
		t.Fatalf("length %d", j.Length())
	}
}

func TestSortEventsDeterministic(t *testing.T) {
	tr := &Trace{Events: []TaskEvent{
		{Time: 10, JobID: 2, Type: EventSubmit},
		{Time: 5, JobID: 1, Type: EventSubmit},
		{Time: 10, JobID: 1, TaskIndex: 1, Type: EventSubmit},
		{Time: 10, JobID: 1, TaskIndex: 0, Type: EventSubmit},
	}}
	tr.SortEvents()
	if tr.Events[0].Time != 5 {
		t.Fatal("events not sorted by time")
	}
	if tr.Events[1].JobID != 1 || tr.Events[1].TaskIndex != 0 {
		t.Fatal("ties not broken by job and task")
	}
}

func TestSortJobs(t *testing.T) {
	tr := &Trace{Jobs: []Job{{ID: 2, Submit: 50}, {ID: 1, Submit: 10}, {ID: 0, Submit: 50}}}
	tr.SortJobs()
	if tr.Jobs[0].ID != 1 || tr.Jobs[1].ID != 0 || tr.Jobs[2].ID != 2 {
		t.Fatalf("jobs order %v", tr.Jobs)
	}
}

func validTrace() *Trace {
	return &Trace{
		System:   "test",
		Horizon:  1000,
		Machines: []Machine{{ID: 0, CPU: 1, Memory: 1, PageCache: 1}},
		Jobs:     []Job{{ID: 1, Submit: 0, End: 100, Priority: 3, TaskCount: 1}},
		Events: []TaskEvent{
			{Time: 0, JobID: 1, TaskIndex: 0, Machine: -1, Type: EventSubmit, Priority: 3},
			{Time: 10, JobID: 1, TaskIndex: 0, Machine: 0, Type: EventSchedule, Priority: 3},
			{Time: 100, JobID: 1, TaskIndex: 0, Machine: 0, Type: EventFinish, Priority: 3},
		},
		Usage: []UsageSample{
			{Start: 10, End: 100, JobID: 1, TaskIndex: 0, Machine: 0, CPU: 0.5, MemUsed: 0.1},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"duplicate machine", func(tr *Trace) {
			tr.Machines = append(tr.Machines, Machine{ID: 0, CPU: 1, Memory: 1})
		}},
		{"zero capacity", func(tr *Trace) { tr.Machines[0].CPU = 0 }},
		{"job ends before submit", func(tr *Trace) { tr.Jobs[0].End = -1 }},
		{"priority out of range", func(tr *Trace) { tr.Jobs[0].Priority = 13 }},
		{"unknown machine in event", func(tr *Trace) { tr.Events[1].Machine = 42 }},
		{"illegal event order", func(tr *Trace) {
			tr.Events = append(tr.Events, TaskEvent{Time: 200, JobID: 1, TaskIndex: 0, Machine: 0, Type: EventSchedule})
		}},
		{"bad usage duration", func(tr *Trace) { tr.Usage[0].End = tr.Usage[0].Start }},
		{"unknown machine in usage", func(tr *Trace) { tr.Usage[0].Machine = 42 }},
	}
	for _, c := range cases {
		tr := validTrace()
		c.mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: invalid trace accepted", c.name)
		}
	}
}

func TestJobsFromEvents(t *testing.T) {
	events := []TaskEvent{
		// Job 1: two tasks.
		{Time: 0, JobID: 1, TaskIndex: 0, Type: EventSubmit, Priority: 2},
		{Time: 1, JobID: 1, TaskIndex: 1, Type: EventSubmit, Priority: 2},
		{Time: 5, JobID: 1, TaskIndex: 0, Machine: 0, Type: EventSchedule, Priority: 2},
		{Time: 5, JobID: 1, TaskIndex: 1, Machine: 1, Type: EventSchedule, Priority: 2},
		{Time: 50, JobID: 1, TaskIndex: 0, Machine: 0, Type: EventFinish, Priority: 2},
		{Time: 70, JobID: 1, TaskIndex: 1, Machine: 1, Type: EventFinish, Priority: 2},
		// Job 2: single task, killed.
		{Time: 10, JobID: 2, TaskIndex: 0, Type: EventSubmit, Priority: 9},
		{Time: 12, JobID: 2, TaskIndex: 0, Machine: 0, Type: EventSchedule, Priority: 9},
		{Time: 30, JobID: 2, TaskIndex: 0, Machine: 0, Type: EventKill, Priority: 9},
	}
	usage := []UsageSample{
		{Start: 0, End: 300, JobID: 1, TaskIndex: 0, Machine: 0, CPU: 0.5, MemUsed: 0.2},
		{Start: 0, End: 300, JobID: 1, TaskIndex: 1, Machine: 1, CPU: 0.5, MemUsed: 0.4},
	}
	jobs := JobsFromEvents(events, usage)
	if len(jobs) != 2 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	j1 := jobs[0]
	if j1.ID != 1 || j1.Submit != 0 || j1.End != 70 || j1.TaskCount != 2 {
		t.Fatalf("job1 %+v", j1)
	}
	if j1.Length() != 70 {
		t.Fatalf("job1 length %d", j1.Length())
	}
	if j1.CPUTime != 300 { // 0.5 * 300 * 2
		t.Fatalf("job1 cpu time %v", j1.CPUTime)
	}
	if j1.MemAvg < 0.299 || j1.MemAvg > 0.301 {
		t.Fatalf("job1 mem avg %v", j1.MemAvg)
	}
	if j1.NumCPUs != 2 { // both tasks overlap in the same window
		t.Fatalf("job1 parallel width %v", j1.NumCPUs)
	}
	j2 := jobs[1]
	if j2.ID != 2 || j2.Priority != 9 || j2.End != 30 || j2.NumCPUs != 1 {
		t.Fatalf("job2 %+v", j2)
	}
}

func TestJobsFromEventsNoTerminal(t *testing.T) {
	// A job whose tasks never terminate (still running at trace end)
	// must not produce a negative length.
	events := []TaskEvent{
		{Time: 100, JobID: 5, TaskIndex: 0, Type: EventSubmit, Priority: 1},
	}
	jobs := JobsFromEvents(events, nil)
	if len(jobs) != 1 || jobs[0].Length() != 0 {
		t.Fatalf("jobs %+v", jobs)
	}
}
