// Package trace defines the canonical in-memory representation of a
// cluster workload trace: machines, jobs, tasks, task events and
// 5-minute usage samples, mirroring the Google clusterdata-v1 model
// described in Section II of the paper, plus the simplified job records
// used for Grid/HPC traces (GWA/PWA).
//
// The task life cycle follows Figure 1 of the paper:
//
//	unsubmitted --submit--> pending --schedule--> running --finish/evict/fail/kill/lost--> dead
//	dead --resubmit--> pending
//
// The StateMachine type enforces exactly those transitions.
package trace

import (
	"cmp"
	"fmt"
	"slices"
)

// EventType enumerates the task events of the Google trace.
type EventType int

// Task event types, in trace order.
const (
	EventSubmit EventType = iota
	EventSchedule
	EventEvict
	EventFail
	EventFinish
	EventKill
	EventLost
	EventUpdate // runtime constraint change (step 3 in Fig 1)
)

var eventNames = [...]string{
	"SUBMIT", "SCHEDULE", "EVICT", "FAIL", "FINISH", "KILL", "LOST", "UPDATE",
}

// String returns the trace spelling of the event type.
func (e EventType) String() string {
	if e < 0 || int(e) >= len(eventNames) {
		return fmt.Sprintf("EVENT(%d)", int(e))
	}
	return eventNames[e]
}

// ParseEventType converts a trace spelling back to an EventType.
func ParseEventType(s string) (EventType, error) {
	for i, n := range eventNames {
		if n == s {
			return EventType(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event type %q", s)
}

// Terminal reports whether the event ends an execution attempt.
func (e EventType) Terminal() bool {
	switch e {
	case EventEvict, EventFail, EventFinish, EventKill, EventLost:
		return true
	}
	return false
}

// Abnormal reports whether the event is an abnormal completion
// (the paper's evict/fail/kill/lost classes).
func (e EventType) Abnormal() bool {
	return e.Terminal() && e != EventFinish
}

// State enumerates the four task states of Figure 1.
type State int

// Task states.
const (
	StateUnsubmitted State = iota
	StatePending
	StateRunning
	StateDead
)

var stateNames = [...]string{"unsubmitted", "pending", "running", "dead"}

// String returns the lowercase state name used in the paper.
func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("state(%d)", int(s))
	}
	return stateNames[s]
}

// StateMachine tracks one task's state and validates transitions.
type StateMachine struct{ state State }

// State returns the current state.
func (m *StateMachine) State() State { return m.state }

// Apply transitions on the given event, returning an error for any
// transition Figure 1 does not allow.
func (m *StateMachine) Apply(e EventType) error {
	switch e {
	case EventSubmit:
		// Submission from unsubmitted, or resubmission from dead (step 6).
		if m.state != StateUnsubmitted && m.state != StateDead {
			return fmt.Errorf("trace: SUBMIT in state %s", m.state)
		}
		m.state = StatePending
	case EventSchedule:
		if m.state != StatePending {
			return fmt.Errorf("trace: SCHEDULE in state %s", m.state)
		}
		m.state = StateRunning
	case EventUpdate:
		// Constraint updates are legal while pending or running.
		if m.state != StatePending && m.state != StateRunning {
			return fmt.Errorf("trace: UPDATE in state %s", m.state)
		}
	case EventEvict, EventFail, EventFinish, EventKill, EventLost:
		// Terminal events from running; KILL and LOST may also strike a
		// pending task (user kills queued work, input data disappears).
		if m.state != StateRunning && !((e == EventKill || e == EventLost) && m.state == StatePending) {
			return fmt.Errorf("trace: %s in state %s", e, m.state)
		}
		m.state = StateDead
	default:
		return fmt.Errorf("trace: unknown event %d", int(e))
	}
	return nil
}

// Priority bounds of the Google trace; the paper groups 12 levels into
// low (1-4), middle (5-8) and high (9-12).
const (
	MinPriority = 1
	MaxPriority = 12
)

// PriorityGroup is the paper's three-way priority clustering.
type PriorityGroup int

// Priority groups.
const (
	LowPriority PriorityGroup = iota
	MiddlePriority
	HighPriority
)

// String names the group.
func (g PriorityGroup) String() string {
	switch g {
	case LowPriority:
		return "low"
	case MiddlePriority:
		return "middle"
	case HighPriority:
		return "high"
	}
	return fmt.Sprintf("group(%d)", int(g))
}

// GroupOf maps a priority level (1-12) to its group.
func GroupOf(priority int) PriorityGroup {
	switch {
	case priority <= 4:
		return LowPriority
	case priority <= 8:
		return MiddlePriority
	default:
		return HighPriority
	}
}

// Machine is one host with normalised capacities. The Google trace
// normalises each attribute by the largest machine, so capacities fall
// in a small set of classes (CPU: 0.25/0.5/1; memory: 0.25/0.5/0.75/1).
type Machine struct {
	ID        int
	CPU       float64 // normalised CPU capacity (core-seconds per second)
	Memory    float64 // normalised memory capacity
	PageCache float64 // normalised page-cache capacity (1 for all hosts)
}

// Task is one schedulable unit with its user-customised requirements.
type Task struct {
	JobID    int64
	Index    int   // position within the job
	Submit   int64 // submission time, seconds since trace epoch
	Priority int   // 1..12
	User     int   // submitting user (0 = unknown); one user per job

	// MinCPUClass is a placement constraint: the task may only run on
	// machines whose CPU capacity is at least this value (0 = no
	// constraint). Section II: "all the tasks are submitted with a set
	// of customized constraints".
	MinCPUClass float64

	// Requested resources (normalised).
	CPUReq float64
	MemReq float64

	// Busy is the mean fraction of the CPU request the task actually
	// consumes while running (web services hold memory but leave their
	// CPU reservation mostly idle; batch tasks run hot).
	Busy float64

	// Intrinsic service demand in seconds (how long the task runs once
	// scheduled, absent eviction).
	Duration int64
}

// TaskEvent is one scheduler event in the trace.
type TaskEvent struct {
	Time      int64
	JobID     int64
	TaskIndex int
	Machine   int // machine ID, or -1 when not placed
	Type      EventType
	Priority  int
}

// UsageSample is one 5-minute measurement of a task on a machine.
type UsageSample struct {
	Start, End  int64
	JobID       int64
	TaskIndex   int
	Machine     int
	CPU         float64 // CPU-core-seconds per second used
	MemUsed     float64 // consumed memory (normalised)
	MemAssigned float64 // allocated memory (normalised)
	PageCache   float64 // file-backed memory (normalised)
	Priority    int
}

// Job is the per-job summary used by the workload analyses (Section
// III). For Grid/HPC traces these fields come straight from the
// GWA/SWF records; for Google traces they are derived by grouping task
// events.
type Job struct {
	ID        int64
	Submit    int64 // submission time (s)
	End       int64 // completion of the last task (s)
	Priority  int
	User      int // submitting user (0 = unknown)
	TaskCount int

	NumCPUs float64 // processors allocated (parallel width)
	CPUTime float64 // cumulative CPU-seconds over all processors
	MemAvg  float64 // mean memory used by the job (system-relative units)
}

// Length returns the paper's job length: completion minus submission.
func (j Job) Length() int64 { return j.End - j.Submit }

// Trace is a complete workload/host trace.
type Trace struct {
	System   string // e.g. "Google", "AuverGrid"
	Horizon  int64  // trace duration in seconds
	Machines []Machine
	Jobs     []Job
	Tasks    []Task
	Events   []TaskEvent
	Usage    []UsageSample
}

// SortEvents orders events by time, breaking ties by job, task and
// event type so traces serialise deterministically.
func (t *Trace) SortEvents() {
	slices.SortFunc(t.Events, func(a, b TaskEvent) int {
		if a.Time != b.Time {
			return cmp.Compare(a.Time, b.Time)
		}
		if a.JobID != b.JobID {
			return cmp.Compare(a.JobID, b.JobID)
		}
		if a.TaskIndex != b.TaskIndex {
			return cmp.Compare(a.TaskIndex, b.TaskIndex)
		}
		return cmp.Compare(a.Type, b.Type)
	})
}

// SortJobs orders jobs by submission time then ID.
func (t *Trace) SortJobs() {
	slices.SortFunc(t.Jobs, func(a, b Job) int {
		if a.Submit != b.Submit {
			return cmp.Compare(a.Submit, b.Submit)
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

// Validate checks internal consistency: event ordering per task obeys
// the state machine, machine references exist, and job summaries have
// sane time ranges. It returns the first problem found.
func (t *Trace) Validate() error {
	machines := make(map[int]bool, len(t.Machines))
	for _, m := range t.Machines {
		if machines[m.ID] {
			return fmt.Errorf("trace: duplicate machine id %d", m.ID)
		}
		if m.CPU <= 0 || m.Memory <= 0 {
			return fmt.Errorf("trace: machine %d has non-positive capacity", m.ID)
		}
		machines[m.ID] = true
	}
	for _, j := range t.Jobs {
		if j.End < j.Submit {
			return fmt.Errorf("trace: job %d ends before submission", j.ID)
		}
		if j.Priority != 0 && (j.Priority < MinPriority || j.Priority > MaxPriority) {
			return fmt.Errorf("trace: job %d priority %d out of range", j.ID, j.Priority)
		}
	}
	// Replay each task's events through the state machine.
	type key struct {
		job  int64
		task int
	}
	events := make(map[key][]TaskEvent)
	for _, e := range t.Events {
		if e.Machine >= 0 && len(machines) > 0 && !machines[e.Machine] {
			return fmt.Errorf("trace: event references unknown machine %d", e.Machine)
		}
		k := key{e.JobID, e.TaskIndex}
		events[k] = append(events[k], e)
	}
	for k, evs := range events {
		slices.SortFunc(evs, func(a, b TaskEvent) int {
			if a.Time != b.Time {
				return cmp.Compare(a.Time, b.Time)
			}
			return cmp.Compare(a.Type, b.Type)
		})
		var sm StateMachine
		for _, e := range evs {
			if err := sm.Apply(e.Type); err != nil {
				return fmt.Errorf("trace: job %d task %d at t=%d: %w", k.job, k.task, e.Time, err)
			}
		}
	}
	for _, u := range t.Usage {
		if u.End <= u.Start {
			return fmt.Errorf("trace: usage sample with non-positive duration for job %d", u.JobID)
		}
		if len(machines) > 0 && !machines[u.Machine] {
			return fmt.Errorf("trace: usage sample references unknown machine %d", u.Machine)
		}
	}
	return nil
}

// JobsFromEvents derives per-job summaries by grouping task events, as
// the paper does for the 25M Google tasks ("we first group the all 25
// million tasks in terms of their job IDs"). A job's submission is the
// earliest SUBMIT among its tasks and its end is the latest terminal
// event. CPU time and memory are folded in from usage samples.
func JobsFromEvents(events []TaskEvent, usage []UsageSample) []Job {
	type agg struct {
		submit, end int64
		priority    int
		tasks       map[int]bool
		cpuTime     float64
		memSum      float64
		memN        int
		maxPar      float64
	}
	jobs := make(map[int64]*agg)
	get := func(id int64) *agg {
		a := jobs[id]
		if a == nil {
			a = &agg{submit: -1, end: -1, tasks: make(map[int]bool)}
			jobs[id] = a
		}
		return a
	}
	for _, e := range events {
		a := get(e.JobID)
		a.tasks[e.TaskIndex] = true
		if e.Priority != 0 {
			a.priority = e.Priority
		}
		if e.Type == EventSubmit && (a.submit < 0 || e.Time < a.submit) {
			a.submit = e.Time
		}
		if e.Type.Terminal() && e.Time > a.end {
			a.end = e.Time
		}
	}
	// Fold usage: CPU-seconds and memory, plus a crude parallel width
	// (max concurrent tasks seen in one sampling window).
	parallel := make(map[int64]map[int64]float64) // job -> window start -> cpu width
	for _, u := range usage {
		a := get(u.JobID)
		dur := float64(u.End - u.Start)
		a.cpuTime += u.CPU * dur
		a.memSum += u.MemUsed
		a.memN++
		w := parallel[u.JobID]
		if w == nil {
			w = make(map[int64]float64)
			parallel[u.JobID] = w
		}
		w[u.Start]++
	}
	out := make([]Job, 0, len(jobs))
	for id, a := range jobs {
		j := Job{
			ID:        id,
			Submit:    a.submit,
			End:       a.end,
			Priority:  a.priority,
			TaskCount: len(a.tasks),
			CPUTime:   a.cpuTime,
		}
		if j.End < j.Submit {
			j.End = j.Submit
		}
		if a.memN > 0 {
			j.MemAvg = a.memSum / float64(a.memN)
		}
		for _, width := range parallel[id] {
			if width > j.NumCPUs {
				j.NumCPUs = width
			}
		}
		if j.NumCPUs == 0 {
			j.NumCPUs = 1
		}
		out = append(out, j)
	}
	slices.SortFunc(out, func(a, b Job) int {
		if a.Submit != b.Submit {
			return cmp.Compare(a.Submit, b.Submit)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return out
}
