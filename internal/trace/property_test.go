package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestStateMachineNeverPanics drives random event sequences through
// the state machine: it must accept or reject but never misbehave, and
// an accepted prefix replayed again must be accepted identically.
func TestStateMachineNeverPanics(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		s := rng.New(seed)
		var sm StateMachine
		var accepted []EventType
		for i := 0; i < int(n); i++ {
			e := EventType(s.IntN(8))
			if sm.Apply(e) == nil {
				accepted = append(accepted, e)
			}
		}
		// Replay the accepted sequence on a fresh machine: every event
		// must be accepted again (determinism of the transition rules).
		var replay StateMachine
		for _, e := range accepted {
			if replay.Apply(e) != nil {
				return false
			}
		}
		return replay.State() == sm.State()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestValidateAcceptsGeneratedLifecycles builds random legal task
// lifecycles and checks Validate accepts the combined trace.
func TestValidateAcceptsGeneratedLifecycles(t *testing.T) {
	s := rng.New(77)
	tr := &Trace{
		Machines: []Machine{{ID: 0, CPU: 1, Memory: 1, PageCache: 1}},
	}
	now := int64(0)
	for job := int64(1); job <= 200; job++ {
		attempts := 1 + s.IntN(3)
		for a := 0; a < attempts; a++ {
			now += int64(1 + s.IntN(50))
			tr.Events = append(tr.Events, TaskEvent{
				Time: now, JobID: job, Type: EventSubmit, Priority: 1 + s.IntN(12),
			})
			if s.Bool(0.1) {
				// Killed while pending.
				now += int64(1 + s.IntN(10))
				tr.Events = append(tr.Events, TaskEvent{
					Time: now, JobID: job, Machine: -1, Type: EventKill,
				})
				continue
			}
			now += int64(1 + s.IntN(10))
			tr.Events = append(tr.Events, TaskEvent{
				Time: now, JobID: job, Machine: 0, Type: EventSchedule,
			})
			now += int64(1 + s.IntN(1000))
			terminal := []EventType{EventFinish, EventFail, EventEvict, EventKill, EventLost}
			et := terminal[s.IntN(len(terminal))]
			tr.Events = append(tr.Events, TaskEvent{
				Time: now, JobID: job, Machine: 0, Type: et,
			})
			if et == EventFinish || et == EventKill || et == EventLost {
				break // no resubmission after these
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated lifecycles rejected: %v", err)
	}
	// Job summaries derive cleanly.
	jobs := JobsFromEvents(tr.Events, nil)
	if len(jobs) != 200 {
		t.Fatalf("jobs %d, want 200", len(jobs))
	}
	for _, j := range jobs {
		if j.Length() < 0 {
			t.Fatalf("negative job length %+v", j)
		}
	}
}
