package gridsim

import (
	"testing"

	"repro/internal/rng"
)

func TestRejectsBadInput(t *testing.T) {
	if _, err := Simulate(Config{Nodes: 0}, nil, 300); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := Simulate(Config{Nodes: 4}, []JobSpec{{ID: 1, Procs: 8, Runtime: 10}}, 300); err == nil {
		t.Error("oversized job accepted")
	}
	if _, err := Simulate(Config{Nodes: 4}, []JobSpec{{ID: 1, Procs: 0, Runtime: 10}}, 300); err == nil {
		t.Error("zero-proc job accepted")
	}
	if _, err := Simulate(Config{Nodes: 4}, []JobSpec{{ID: 1, Procs: 1, Runtime: 0}}, 300); err == nil {
		t.Error("zero-runtime job accepted")
	}
}

func TestSingleJobRunsImmediately(t *testing.T) {
	res, err := Simulate(Config{Nodes: 4},
		[]JobSpec{{ID: 1, Submit: 100, Procs: 2, Runtime: 600}}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placements) != 1 {
		t.Fatalf("placements %v", res.Placements)
	}
	p := res.Placements[0]
	if p.Start != 100 || p.End != 700 || p.Wait != 0 {
		t.Fatalf("placement %+v", p)
	}
	if res.MeanWait != 0 {
		t.Fatalf("mean wait %v", res.MeanWait)
	}
}

func TestFCFSQueueing(t *testing.T) {
	// Two 4-proc jobs on a 4-node cluster: second waits for the first.
	jobs := []JobSpec{
		{ID: 1, Submit: 0, Procs: 4, Runtime: 1000},
		{ID: 2, Submit: 10, Procs: 4, Runtime: 500},
	}
	res, err := Simulate(Config{Nodes: 4}, jobs, 300)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int64]Placement{}
	for _, p := range res.Placements {
		byID[p.ID] = p
	}
	if byID[2].Start != 1000 || byID[2].Wait != 990 {
		t.Fatalf("second job %+v", byID[2])
	}
	if res.MaxWait != 990 {
		t.Fatalf("max wait %v", res.MaxWait)
	}
}

func TestFCFSHeadBlocks(t *testing.T) {
	// Without backfill, a small job behind a blocked big job waits even
	// though it would fit.
	jobs := []JobSpec{
		{ID: 1, Submit: 0, Procs: 3, Runtime: 1000}, // running, leaves 1 free
		{ID: 2, Submit: 10, Procs: 4, Runtime: 500}, // head: needs all 4
		{ID: 3, Submit: 20, Procs: 1, Runtime: 100}, // would fit now
	}
	res, err := Simulate(Config{Nodes: 4, Backfill: false}, jobs, 300)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int64]Placement{}
	for _, p := range res.Placements {
		byID[p.ID] = p
	}
	if byID[3].Start < byID[2].Start {
		t.Fatalf("FCFS violated: job 3 at %d before head at %d", byID[3].Start, byID[2].Start)
	}
	if res.Backfilled != 0 {
		t.Fatalf("backfills without backfill enabled: %d", res.Backfilled)
	}
}

func TestEASYBackfillFillsHole(t *testing.T) {
	// Same scenario with backfill: job 3 (100 s on the spare node)
	// finishes before the head could start (t=1000), so it backfills.
	jobs := []JobSpec{
		{ID: 1, Submit: 0, Procs: 3, Runtime: 1000},
		{ID: 2, Submit: 10, Procs: 4, Runtime: 500},
		{ID: 3, Submit: 20, Procs: 1, Runtime: 100},
	}
	res, err := Simulate(Config{Nodes: 4, Backfill: true}, jobs, 300)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int64]Placement{}
	for _, p := range res.Placements {
		byID[p.ID] = p
	}
	if byID[3].Start != 20 {
		t.Fatalf("job 3 should backfill at t=20, got %+v", byID[3])
	}
	// The head must not be delayed by the backfill.
	if byID[2].Start != 1000 {
		t.Fatalf("head delayed by backfill: %+v", byID[2])
	}
	if res.Backfilled != 1 {
		t.Fatalf("backfill count %d", res.Backfilled)
	}
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	// A long backfill candidate that would overlap the shadow time and
	// uses processors the head needs must NOT start.
	jobs := []JobSpec{
		{ID: 1, Submit: 0, Procs: 3, Runtime: 1000},
		{ID: 2, Submit: 10, Procs: 4, Runtime: 500},  // head
		{ID: 3, Submit: 20, Procs: 1, Runtime: 5000}, // too long, would delay head
	}
	res, err := Simulate(Config{Nodes: 4, Backfill: true}, jobs, 300)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int64]Placement{}
	for _, p := range res.Placements {
		byID[p.ID] = p
	}
	if byID[2].Start != 1000 {
		t.Fatalf("head delayed: %+v", byID[2])
	}
	if byID[3].Start < byID[2].Start {
		t.Fatalf("unsafe backfill: %+v", byID[3])
	}
}

func TestBackfillSpareProcessors(t *testing.T) {
	// 8 nodes. Running job holds 4 until t=1000. Head needs 6 (shadow
	// t=1000, at which point 8 free, extra = 2). A long 2-proc job can
	// backfill on the spare processors without delaying the head.
	jobs := []JobSpec{
		{ID: 1, Submit: 0, Procs: 4, Runtime: 1000},
		{ID: 2, Submit: 10, Procs: 6, Runtime: 500},  // head
		{ID: 3, Submit: 20, Procs: 2, Runtime: 9000}, // long but fits in spare
	}
	res, err := Simulate(Config{Nodes: 8, Backfill: true}, jobs, 300)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int64]Placement{}
	for _, p := range res.Placements {
		byID[p.ID] = p
	}
	if byID[3].Start != 20 {
		t.Fatalf("spare-processor backfill failed: %+v", byID[3])
	}
	if byID[2].Start != 1000 {
		t.Fatalf("head delayed: %+v", byID[2])
	}
}

func TestUtilizationBounded(t *testing.T) {
	s := rng.New(1)
	var jobs []JobSpec
	for i := 0; i < 300; i++ {
		jobs = append(jobs, JobSpec{
			ID: int64(i + 1), Submit: s.Int64N(50000),
			Procs: 1 + s.IntN(8), Runtime: 300 + s.Int64N(5000),
		})
	}
	res, err := Simulate(Config{Nodes: 16, Backfill: true}, jobs, 300)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Utilization.Values {
		if v < -1e-9 || v > 1+1e-9 {
			t.Fatalf("utilisation out of [0,1] at %d: %v", i, v)
		}
	}
	if len(res.Placements) != 300 {
		t.Fatalf("placed %d jobs", len(res.Placements))
	}
}

func TestWorkConservation(t *testing.T) {
	// Total processor-seconds in the utilisation series equals the sum
	// of job work.
	jobs := []JobSpec{
		{ID: 1, Submit: 0, Procs: 2, Runtime: 600},
		{ID: 2, Submit: 100, Procs: 3, Runtime: 900},
		{ID: 3, Submit: 5000, Procs: 1, Runtime: 300},
	}
	res, err := Simulate(Config{Nodes: 4, Backfill: true}, jobs, 100)
	if err != nil {
		t.Fatal(err)
	}
	var series float64
	for _, v := range res.Utilization.Values {
		series += v * 100 * 4 // fraction * step * nodes
	}
	want := float64(2*600 + 3*900 + 1*300)
	if diff := series - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("work %v, want %v", series, want)
	}
}

func TestBackfillImprovesWaitAndUtilization(t *testing.T) {
	// A realistic random mix: EASY must not worsen mean wait, and
	// usually improves it.
	s := rng.New(9)
	var jobs []JobSpec
	for i := 0; i < 500; i++ {
		procs := 1 << s.IntN(5) // 1..16
		jobs = append(jobs, JobSpec{
			ID: int64(i + 1), Submit: s.Int64N(2 * 86400),
			Procs: procs, Runtime: 600 + s.Int64N(4*3600),
		})
	}
	fcfs, err := Simulate(Config{Nodes: 32, Backfill: false}, jobs, 300)
	if err != nil {
		t.Fatal(err)
	}
	easy, err := Simulate(Config{Nodes: 32, Backfill: true}, jobs, 300)
	if err != nil {
		t.Fatal(err)
	}
	if easy.Backfilled == 0 {
		t.Fatal("no backfills in a congested mix")
	}
	if easy.MeanWait > fcfs.MeanWait*1.05 {
		t.Fatalf("EASY mean wait %v worse than FCFS %v", easy.MeanWait, fcfs.MeanWait)
	}
}

func TestEstimatesUsedForShadow(t *testing.T) {
	// Pessimistic estimate on the running job widens the backfill
	// window: a job that fits under the estimated shadow backfills.
	jobs := []JobSpec{
		{ID: 1, Submit: 0, Procs: 3, Runtime: 300, Estimate: 2000},
		{ID: 2, Submit: 10, Procs: 4, Runtime: 500}, // head
		{ID: 3, Submit: 20, Procs: 1, Runtime: 1500, Estimate: 1500},
	}
	res, err := Simulate(Config{Nodes: 4, Backfill: true}, jobs, 300)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int64]Placement{}
	for _, p := range res.Placements {
		byID[p.ID] = p
	}
	// Shadow computed from estimates is t=2000; job 3 ends 20+1500 < 2000.
	if byID[3].Start != 20 {
		t.Fatalf("estimate-based backfill failed: %+v", byID[3])
	}
}

func TestDeterminism(t *testing.T) {
	s := rng.New(4)
	var jobs []JobSpec
	for i := 0; i < 200; i++ {
		jobs = append(jobs, JobSpec{
			ID: int64(i + 1), Submit: s.Int64N(10000),
			Procs: 1 + s.IntN(4), Runtime: 100 + s.Int64N(1000),
		})
	}
	a, err := Simulate(Config{Nodes: 8, Backfill: true}, jobs, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(Config{Nodes: 8, Backfill: true}, jobs, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Placements) != len(b.Placements) {
		t.Fatal("placement counts differ")
	}
	for i := range a.Placements {
		if a.Placements[i] != b.Placements[i] {
			t.Fatalf("placement %d differs", i)
		}
	}
}
