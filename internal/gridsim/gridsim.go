// Package gridsim implements the space-shared batch scheduling that
// Grid/HPC clusters in the paper's comparison set run: jobs request a
// number of processors for a runtime; a FCFS queue (optionally with
// EASY backfilling) decides when each job starts.
//
// The simulator turns a synthetic arrival/runtime stream into the wait
// times and node-utilisation series a real archive trace embodies, so
// the Grid side of the comparison can be produced by actual scheduling
// rather than by sampled wait-time distributions.
package gridsim

import (
	"cmp"
	"container/heap"
	"fmt"
	"slices"

	"repro/internal/timeseries"
)

// Config parameterises a grid cluster.
type Config struct {
	Nodes    int  // total processors
	Backfill bool // EASY backfilling (false = plain FCFS)
}

// JobSpec is one submitted batch job.
type JobSpec struct {
	ID      int64
	Submit  int64 // seconds
	Procs   int   // processors requested
	Runtime int64 // actual runtime, seconds
	// Estimate is the user's runtime estimate used for backfill
	// decisions; 0 means use Runtime (perfect estimates).
	Estimate int64
}

// Placement is the scheduling outcome of one job.
type Placement struct {
	ID    int64
	Start int64
	End   int64
	Wait  int64
}

// Result is the simulation output.
type Result struct {
	Placements  []Placement
	Utilization *timeseries.Series // fraction of processors busy
	MeanWait    float64            // seconds
	MaxWait     int64
	MaxQueue    int
	Backfilled  int // jobs started out of FCFS order
}

type runningJob struct {
	end   int64 // actual completion
	est   int64 // estimated completion (for shadow-time computation)
	procs int
}

type endHeap []runningJob

func (h endHeap) Len() int           { return len(h) }
func (h endHeap) Less(i, j int) bool { return h[i].end < h[j].end }
func (h endHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *endHeap) Push(x any)        { *h = append(*h, x.(runningJob)) }
func (h *endHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Simulate schedules jobs on the cluster and samples utilisation with
// the given step. Jobs needing more processors than the cluster owns
// are rejected with an error.
func Simulate(cfg Config, jobs []JobSpec, step int64) (*Result, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("gridsim: nodes %d must be positive", cfg.Nodes)
	}
	if step <= 0 {
		step = 300
	}
	for _, j := range jobs {
		if j.Procs <= 0 {
			return nil, fmt.Errorf("gridsim: job %d requests %d procs", j.ID, j.Procs)
		}
		if j.Procs > cfg.Nodes {
			return nil, fmt.Errorf("gridsim: job %d needs %d procs, cluster has %d", j.ID, j.Procs, cfg.Nodes)
		}
		if j.Runtime <= 0 {
			return nil, fmt.Errorf("gridsim: job %d has runtime %d", j.ID, j.Runtime)
		}
	}
	ordered := append([]JobSpec(nil), jobs...)
	slices.SortFunc(ordered, func(a, b JobSpec) int {
		if a.Submit != b.Submit {
			return cmp.Compare(a.Submit, b.Submit)
		}
		return cmp.Compare(a.ID, b.ID)
	})

	var (
		free    = cfg.Nodes
		running endHeap
		queue   []JobSpec // FCFS order
		out     []Placement
		bf      int
		maxQ    int
	)
	var horizon int64
	for _, j := range ordered {
		if end := j.Submit + j.Runtime; end > horizon {
			horizon = end
		}
	}
	// Generous bound: total work serialised.
	var totalWork int64
	for _, j := range ordered {
		totalWork += j.Runtime * int64(j.Procs)
	}
	horizon += totalWork/int64(cfg.Nodes) + step

	acc, err := timeseries.NewAccumulator(0, horizon, step)
	if err != nil {
		return nil, err
	}

	est := func(j JobSpec) int64 {
		if j.Estimate > 0 {
			return j.Estimate
		}
		return j.Runtime
	}

	start := func(now int64, j JobSpec) {
		free -= j.Procs
		end := now + j.Runtime
		heap.Push(&running, runningJob{end: end, est: now + est(j), procs: j.Procs})
		out = append(out, Placement{ID: j.ID, Start: now, End: end, Wait: now - j.Submit})
		acc.AddRange(now, end, float64(j.Procs)/float64(cfg.Nodes))
	}

	// trySchedule drains the queue at time now: FCFS head first; with
	// backfill, later jobs may jump ahead if they cannot delay the head.
	trySchedule := func(now int64) {
		for len(queue) > 0 && queue[0].Procs <= free {
			start(now, queue[0])
			queue = queue[1:]
		}
		if !cfg.Backfill || len(queue) == 0 {
			return
		}
		head := queue[0]
		// Shadow time: when will the head be able to start? Walk the
		// running jobs by estimated completion until enough processors
		// accumulate. Extra processors free at that moment may be used
		// by backfilled jobs that outlast the shadow time.
		byEst := append([]runningJob(nil), running...)
		slices.SortFunc(byEst, func(a, b runningJob) int { return cmp.Compare(a.est, b.est) })
		avail := free
		shadow := now
		for _, r := range byEst {
			if avail >= head.Procs {
				break
			}
			avail += r.procs
			shadow = r.est
		}
		extra := avail - head.Procs // processors spare even at the shadow time

		for i := 1; i < len(queue); {
			j := queue[i]
			fitsNow := j.Procs <= free
			// Safe to backfill if it finishes before the shadow time,
			// or if it only uses processors the head will not need.
			finishesInTime := now+est(j) <= shadow
			usesSpare := j.Procs <= extra
			if fitsNow && (finishesInTime || usesSpare) {
				if usesSpare && !finishesInTime {
					extra -= j.Procs
				}
				start(now, j)
				bf++
				queue = append(queue[:i], queue[i+1:]...)
				continue
			}
			i++
		}
	}

	ji := 0
	for ji < len(ordered) || running.Len() > 0 {
		// Next event: arrival or completion.
		var now int64
		arrival := ji < len(ordered)
		completion := running.Len() > 0
		switch {
		case arrival && completion:
			if ordered[ji].Submit <= running[0].end {
				now = ordered[ji].Submit
			} else {
				now = running[0].end
			}
		case arrival:
			now = ordered[ji].Submit
		default:
			now = running[0].end
		}
		// Process all completions at or before now.
		for running.Len() > 0 && running[0].end <= now {
			r := heap.Pop(&running).(runningJob)
			free += r.procs
		}
		// Process all arrivals at now.
		for ji < len(ordered) && ordered[ji].Submit == now {
			queue = append(queue, ordered[ji])
			ji++
		}
		trySchedule(now)
		if len(queue) > maxQ {
			maxQ = len(queue)
		}
	}

	res := &Result{
		Placements:  out,
		Utilization: acc.Series(),
		MaxQueue:    maxQ,
		Backfilled:  bf,
	}
	var waitSum int64
	for _, p := range out {
		waitSum += p.Wait
		if p.Wait > res.MaxWait {
			res.MaxWait = p.Wait
		}
	}
	if len(out) > 0 {
		res.MeanWait = float64(waitSum) / float64(len(out))
	}
	return res, nil
}
