// Package ckpt provides content-addressed on-disk checkpointing of
// experiment artifacts so an interrupted run can resume rebuilding
// only what is missing.
//
// Keys are SHA-256 digests of everything that determines an artifact's
// bytes (schema version, experiment ID, full config), so a config or
// code-schema change silently misses instead of serving stale results.
// Files carry a versioned header plus a CRC32 of the payload and are
// written via temp-file + atomic rename, so a crash mid-write leaves
// either the old file or no file — never a torn one. Corrupt, truncated
// or version-mismatched files are treated as cache misses and deleted,
// then rebuilt by the caller.
package ckpt

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Version is the checkpoint file-format version. Bumping it
// invalidates every existing checkpoint file.
const Version = 1

// header is the first line of every checkpoint file:
//
//	ckptv<version> <crc32-hex> <payload-len>\n
//
// followed by exactly payload-len bytes of JSON.
func header(crc uint32, n int) string {
	return fmt.Sprintf("ckptv%d %08x %d\n", Version, crc, n)
}

// Key derives a content address from the parts that determine an
// artifact. Any change to any part yields a different key.
func Key(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		// Length-prefix each part so ("ab","c") != ("a","bc").
		fmt.Fprintf(h, "%d:", len(p))
		io.WriteString(h, p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Store is a directory of checkpoint files, one per key. The zero
// Store (or a nil *Store) is disabled: Load always misses and Save is
// a no-op, so callers don't need to branch on "checkpointing off".
//
// A directory may be shared by any number of stores across processes
// (the multi-replica serving deployment does exactly that): temp files
// carry a per-writer suffix and are created O_EXCL so two writers never
// collide, and a writer that finds the final file already present —
// another replica finished the same content-addressed build first —
// treats losing the rename as a hit, not an error.
type Store struct {
	dir    string
	writer string        // per-writer temp-file suffix, never empty
	reg    *obs.Registry // nil-safe, may be nil
}

// tmpSeq distinguishes concurrent temp files from the same writer.
var tmpSeq atomic.Uint64

// NewStore opens (creating if needed) a checkpoint directory. reg may
// be nil; when set, the store maintains ckpt.hit / ckpt.miss /
// ckpt.corrupt / ckpt.store / ckpt.skip counters.
func NewStore(dir string, reg *obs.Registry) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("ckpt: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: create dir: %w", err)
	}
	return &Store{dir: dir, writer: fmt.Sprintf("p%d", os.Getpid()), reg: reg}, nil
}

// SetWriter overrides the per-writer temp-file suffix (default: the
// process ID). Multi-replica deployments set it to the replica ID so a
// leaked temp file names its owner. Characters that cannot appear in a
// file name are replaced.
func (s *Store) SetWriter(id string) {
	if s == nil || id == "" {
		return
	}
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, id)
	s.writer = clean
}

// Enabled reports whether the store actually persists anything.
func (s *Store) Enabled() bool { return s != nil && s.dir != "" }

// Dir returns the backing directory ("" when disabled).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

func (s *Store) count(name string) {
	if s != nil && s.reg != nil {
		s.reg.Counter("ckpt." + name).Add(1)
	}
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".ckpt")
}

// Keys lists the content-address keys currently on disk, sorted. The
// serving daemon's /healthz reports the count as its warm-start
// inventory. In-flight temp files and foreign names are skipped; a
// disabled store has no keys.
func (s *Store) Keys() ([]string, error) {
	if !s.Enabled() {
		return nil, nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: read dir: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".ckpt") || strings.HasPrefix(name, "tmp-") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ".ckpt"))
	}
	slices.Sort(keys)
	return keys, nil
}

// Save marshals v as JSON and atomically writes it under key.
// Values that cannot be marshalled (NaN/Inf metrics, say) are skipped
// with an error rather than producing a torn file; the caller treats
// that as "not checkpointed", never as fatal.
func (s *Store) Save(key string, v any) error {
	if !s.Enabled() {
		return nil
	}
	payload, err := json.Marshal(v)
	if err != nil {
		s.count("skip")
		return fmt.Errorf("ckpt: marshal %s: %w", key, err)
	}
	_, err = s.SaveRaw(key, payload)
	return err
}

// SaveRaw atomically writes an already-marshalled payload under key.
// Keys are content addresses, so two writers racing on the same key are
// by construction writing the same bytes: a writer that finds the final
// file already present simply discards its copy and reports dup=true —
// losing the rename is a hit, never a conflict. The "ckpt.write" fault
// site lets the chaos suite turn the shared store read-only.
func (s *Store) SaveRaw(key string, payload []byte) (dup bool, err error) {
	if !s.Enabled() {
		return false, nil
	}
	if err := fault.Hit("ckpt.write"); err != nil {
		s.count("skip")
		return false, fmt.Errorf("ckpt: write %s: %w", key, err)
	}
	if _, err := os.Stat(s.path(key)); err == nil {
		// Another writer already landed this key; content addressing
		// makes its bytes ours.
		s.count("dup")
		return true, nil
	}
	crc := crc32.ChecksumIEEE(payload)
	tmp, tmpName, err := s.createTemp()
	if err != nil {
		s.count("skip")
		return false, fmt.Errorf("ckpt: temp file: %w", err)
	}
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := io.WriteString(tmp, header(crc, len(payload))); err != nil {
		cleanup()
		s.count("skip")
		return false, fmt.Errorf("ckpt: write header: %w", err)
	}
	if _, err := tmp.Write(payload); err != nil {
		cleanup()
		s.count("skip")
		return false, fmt.Errorf("ckpt: write payload: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		s.count("skip")
		return false, fmt.Errorf("ckpt: close: %w", err)
	}
	// Re-check before the rename: the final file appearing between the
	// first stat and here means another writer won the race while we
	// were writing. (A write interleaving between this check and the
	// rename is harmless — both files hold identical bytes.)
	if _, err := os.Stat(s.path(key)); err == nil {
		os.Remove(tmpName)
		s.count("dup")
		return true, nil
	}
	if err := os.Rename(tmpName, s.path(key)); err != nil {
		os.Remove(tmpName)
		s.count("skip")
		return false, fmt.Errorf("ckpt: rename: %w", err)
	}
	s.count("store")
	return false, nil
}

// createTemp opens a fresh O_EXCL temp file suffixed with this writer's
// ID, so writers sharing the directory can never open each other's
// in-flight files and a leaked temp names its owner. The "tmp-" prefix
// keeps Keys from listing it.
func (s *Store) createTemp() (*os.File, string, error) {
	for range 10 {
		name := filepath.Join(s.dir, fmt.Sprintf("tmp-%s-%d.ckpt", s.writer, tmpSeq.Add(1)))
		f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			return f, name, nil
		}
		if !os.IsExist(err) {
			return nil, "", err
		}
	}
	return nil, "", fmt.Errorf("temp name space exhausted for writer %s", s.writer)
}

// Load looks up key and, on a hit, unmarshals the payload into v.
// ok=false with err=nil is a plain miss; ok=false with non-nil err
// means a file existed but was rejected (wrong version, truncated,
// CRC mismatch, bad JSON) and has been removed so the caller rebuilds.
func (s *Store) Load(key string, v any) (ok bool, err error) {
	payload, ok, err := s.loadPayload(key)
	if !ok {
		return false, err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		s.count("corrupt")
		os.Remove(s.path(key))
		return false, fmt.Errorf("ckpt: %s: payload not valid JSON (rebuilding)", key)
	}
	s.count("hit")
	return true, nil
}

// LoadRaw looks up key and, on a hit, returns the validated payload
// bytes without unmarshalling — the peer cache-fill endpoint streams
// these verbatim, so every replica serves the identical encoding. The
// miss/error contract matches Load.
func (s *Store) LoadRaw(key string) (payload []byte, ok bool, err error) {
	payload, ok, err = s.loadPayload(key)
	if !ok {
		return nil, false, err
	}
	// The payload must at least be well-formed JSON before another
	// replica trusts it as a cache fill.
	if !json.Valid(payload) {
		s.count("corrupt")
		os.Remove(s.path(key))
		return nil, false, fmt.Errorf("ckpt: %s: payload not valid JSON (rebuilding)", key)
	}
	s.count("hit")
	return payload, true, nil
}

// loadPayload reads and validates key's file down to the CRC, without
// the JSON check or hit accounting (the exported wrappers own those).
func (s *Store) loadPayload(key string) (payload []byte, ok bool, err error) {
	if !s.Enabled() {
		return nil, false, nil
	}
	f, err := os.Open(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			s.count("miss")
			return nil, false, nil
		}
		s.count("corrupt")
		return nil, false, fmt.Errorf("ckpt: open %s: %w", key, err)
	}
	defer f.Close()

	reject := func(cause string) ([]byte, bool, error) {
		s.count("corrupt")
		os.Remove(s.path(key))
		return nil, false, fmt.Errorf("ckpt: %s: %s (rebuilding)", key, cause)
	}

	br := bufio.NewReader(f)
	line, err := br.ReadString('\n')
	if err != nil {
		return reject("unreadable header")
	}
	var ver int
	var crc uint32
	var n int
	if _, err := fmt.Sscanf(strings.TrimSuffix(line, "\n"), "ckptv%d %x %d", &ver, &crc, &n); err != nil {
		return reject("malformed header")
	}
	if ver != Version {
		return reject(fmt.Sprintf("version %d, want %d", ver, Version))
	}
	if n < 0 {
		return reject("negative payload length")
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return reject("truncated payload")
	}
	// Any trailing garbage also means the file is not what we wrote.
	if _, err := br.ReadByte(); err != io.EOF {
		return reject("trailing bytes")
	}
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return reject(fmt.Sprintf("crc %08x, want %08x", got, crc))
	}
	return payload, true, nil
}

// ValidPayload reports whether raw is a payload another replica may
// trust as a cache fill for a content-addressed key: non-empty,
// well-formed JSON. (The CRC protects the disk path; HTTP transport has
// its own integrity, so structural validity is the peer check.)
func ValidPayload(raw []byte) bool {
	return len(bytes.TrimSpace(raw)) > 0 && json.Valid(raw)
}
