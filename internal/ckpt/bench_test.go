package ckpt

import (
	"testing"
)

// benchResult approximates one checkpointed experiment result: a few
// metric scalars plus a table-sized block of strings.
type benchResult struct {
	ID      string
	Metrics map[string]float64
	Rows    [][]string
}

func benchPayload() *benchResult {
	p := &benchResult{ID: "fig9", Metrics: map[string]float64{}}
	for i := 0; i < 16; i++ {
		p.Metrics[Key("metric", string(rune('a'+i)))[:12]] = float64(i) * 1.5
	}
	for i := 0; i < 64; i++ {
		p.Rows = append(p.Rows, []string{"segment", "0.125", "17", "3600"})
	}
	return p
}

func BenchmarkSave(b *testing.B) {
	b.ReportAllocs()
	s, err := NewStore(b.TempDir(), nil)
	if err != nil {
		b.Fatal(err)
	}
	p := benchPayload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Save(Key("bench", "save"), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadHit(b *testing.B) {
	b.ReportAllocs()
	s, err := NewStore(b.TempDir(), nil)
	if err != nil {
		b.Fatal(err)
	}
	key := Key("bench", "load")
	if err := s.Save(key, benchPayload()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var p benchResult
		ok, err := s.Load(key, &p)
		if err != nil || !ok {
			b.Fatalf("load: ok=%v err=%v", ok, err)
		}
	}
}

func BenchmarkKey(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Key("core.Result/v1", "fig9", "seed=42 machines=100 sim=604800 wl=604800 maxtasks=0 sample=300")
	}
}
