package ckpt

import (
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"repro/internal/obs"
)

type payload struct {
	Name    string
	Values  []float64
	Metrics map[string]float64
}

func testStore(t *testing.T) (*Store, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s, err := NewStore(t.TempDir(), reg)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s, reg
}

func counter(reg *obs.Registry, name string) int64 {
	return reg.Counter(name).Value()
}

func TestKeyDistinguishesPartBoundaries(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal(`Key("ab","c") == Key("a","bc")`)
	}
	if Key("a") != Key("a") {
		t.Fatal("Key not deterministic")
	}
}

func TestRoundTrip(t *testing.T) {
	s, reg := testStore(t)
	in := payload{
		Name:    "fig7",
		Values:  []float64{1.5, 2.25, -0.125},
		Metrics: map[string]float64{"mean": 3.5},
	}
	key := Key("v1", "fig7", "cfg")
	if err := s.Save(key, in); err != nil {
		t.Fatalf("Save: %v", err)
	}
	var out payload
	ok, err := s.Load(key, &out)
	if err != nil || !ok {
		t.Fatalf("Load: ok=%v err=%v", ok, err)
	}
	if out.Name != in.Name || len(out.Values) != len(in.Values) ||
		out.Values[2] != in.Values[2] || out.Metrics["mean"] != in.Metrics["mean"] {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if got := counter(reg, "ckpt.store"); got != 1 {
		t.Fatalf("ckpt.store = %d, want 1", got)
	}
	if got := counter(reg, "ckpt.hit"); got != 1 {
		t.Fatalf("ckpt.hit = %d, want 1", got)
	}
}

func TestMissOnAbsentKey(t *testing.T) {
	s, reg := testStore(t)
	var out payload
	ok, err := s.Load(Key("nope"), &out)
	if ok || err != nil {
		t.Fatalf("Load absent: ok=%v err=%v", ok, err)
	}
	if got := counter(reg, "ckpt.miss"); got != 1 {
		t.Fatalf("ckpt.miss = %d, want 1", got)
	}
}

func ckptFile(t *testing.T, s *Store) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(s.Dir(), "*.ckpt"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("glob: %v (%d matches)", err, len(matches))
	}
	return matches[0]
}

func TestTruncatedFileRejected(t *testing.T) {
	s, reg := testStore(t)
	key := Key("trunc")
	if err := s.Save(key, payload{Name: "x", Values: []float64{1, 2, 3}}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := ckptFile(t, s)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.Load(key, &out)
	if ok {
		t.Fatal("truncated file loaded as ok")
	}
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("err = %v, want truncation rejection", err)
	}
	if got := counter(reg, "ckpt.corrupt"); got != 1 {
		t.Fatalf("ckpt.corrupt = %d, want 1", got)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatal("corrupt file not removed")
	}
}

func TestBitFlipRejected(t *testing.T) {
	s, reg := testStore(t)
	key := Key("flip")
	if err := s.Save(key, payload{Name: "y", Values: []float64{9, 8, 7}}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := ckptFile(t, s)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x40 // flip a bit inside the JSON payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.Load(key, &out)
	if ok {
		t.Fatal("bit-flipped file loaded as ok")
	}
	if err == nil || !strings.Contains(err.Error(), "crc") {
		t.Fatalf("err = %v, want crc rejection", err)
	}
	if got := counter(reg, "ckpt.corrupt"); got != 1 {
		t.Fatalf("ckpt.corrupt = %d, want 1", got)
	}
}

func TestVersionBumpInvalidates(t *testing.T) {
	s, _ := testStore(t)
	key := Key("ver")
	if err := s.Save(key, payload{Name: "z"}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := ckptFile(t, s)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the header as if written by a future format version.
	text := strings.Replace(string(data), "ckptv1 ", "ckptv2 ", 1)
	if text == string(data) {
		t.Fatal("header did not contain ckptv1")
	}
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.Load(key, &out)
	if ok {
		t.Fatal("version-bumped file loaded as ok")
	}
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want version rejection", err)
	}
	// The bad file was removed, so the next Load is a clean miss.
	ok, err = s.Load(key, &out)
	if ok || err != nil {
		t.Fatalf("second Load: ok=%v err=%v, want clean miss", ok, err)
	}
}

func TestNonMarshalableSkipped(t *testing.T) {
	s, reg := testStore(t)
	bad := map[string]float64{"nan": nan()}
	err := s.Save(Key("bad"), bad)
	if err == nil {
		t.Fatal("Save of NaN payload succeeded, want marshal error")
	}
	if got := counter(reg, "ckpt.skip"); got != 1 {
		t.Fatalf("ckpt.skip = %d, want 1", got)
	}
	var out map[string]float64
	ok, loadErr := s.Load(Key("bad"), &out)
	if ok || loadErr != nil {
		t.Fatalf("Load after skipped save: ok=%v err=%v", ok, loadErr)
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestDisabledStoreIsNoop(t *testing.T) {
	var s *Store
	if s.Enabled() {
		t.Fatal("nil store Enabled() = true")
	}
	if err := s.Save("k", 1); err != nil {
		t.Fatalf("nil store Save: %v", err)
	}
	var v int
	ok, err := s.Load("k", &v)
	if ok || err != nil {
		t.Fatalf("nil store Load: ok=%v err=%v", ok, err)
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	s, _ := testStore(t)
	key := Key("tail")
	if err := s.Save(key, payload{Name: "t"}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := ckptFile(t, s)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out payload
	ok, err := s.Load(key, &out)
	if ok {
		t.Fatal("file with trailing bytes loaded as ok")
	}
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("err = %v, want trailing-bytes rejection", err)
	}
}

func TestKeysListsOnlyCheckpoints(t *testing.T) {
	s, _ := testStore(t)
	for _, k := range []string{Key("b"), Key("a")} {
		if err := s.Save(k, payload{Name: k}); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	// Noise the listing must skip: an in-flight temp file, a foreign
	// file, and a subdirectory.
	for _, name := range []string{"tmp-123.ckpt", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(s.Dir(), name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(s.Dir(), "sub.ckpt"), 0o755); err != nil {
		t.Fatal(err)
	}

	keys, err := s.Keys()
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	want := []string{Key("a"), Key("b")}
	slices.Sort(want)
	if !slices.Equal(keys, want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}

	var nilStore *Store
	if keys, err := nilStore.Keys(); keys != nil || err != nil {
		t.Fatalf("nil store Keys = %v, %v; want nil, nil", keys, err)
	}
}
