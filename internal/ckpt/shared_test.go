package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
)

// sharedDirStores opens n stores over one directory, as n replica
// processes sharing a checkpoint volume would.
func sharedDirStores(t *testing.T, n int) ([]*Store, []*obs.Registry) {
	t.Helper()
	dir := t.TempDir()
	stores := make([]*Store, n)
	regs := make([]*obs.Registry, n)
	for i := range stores {
		regs[i] = obs.NewRegistry()
		s, err := NewStore(dir, regs[i])
		if err != nil {
			t.Fatalf("NewStore[%d]: %v", i, err)
		}
		s.SetWriter(fmt.Sprintf("r%d", i))
		stores[i] = s
	}
	return stores, regs
}

// TestSharedDirSecondWriterLosesRenameAsHit: with the key already on
// disk, a second replica's Save must discard its copy silently (dup
// counted, no error, file intact).
func TestSharedDirSecondWriterLosesRenameAsHit(t *testing.T) {
	stores, regs := sharedDirStores(t, 2)
	key := Key("shared", "fig2")
	in := payload{Name: "fig2", Values: []float64{1, 2, 3}}
	if err := stores[0].Save(key, in); err != nil {
		t.Fatalf("first Save: %v", err)
	}
	if err := stores[1].Save(key, in); err != nil {
		t.Fatalf("second Save: %v", err)
	}
	if got := counter(regs[1], "ckpt.dup"); got != 1 {
		t.Fatalf("writer 1 ckpt.dup = %d, want 1", got)
	}
	if got := counter(regs[1], "ckpt.store"); got != 0 {
		t.Fatalf("writer 1 ckpt.store = %d, want 0 (it lost the race)", got)
	}
	var out payload
	if ok, err := stores[1].Load(key, &out); !ok || err != nil {
		t.Fatalf("Load after dup: ok=%v err=%v", ok, err)
	}
	if out.Name != in.Name {
		t.Fatalf("payload clobbered: %+v", out)
	}
}

// TestSharedDirConcurrentSaves: many goroutines across two stores
// hammer the same key; nothing errors, the file stays loadable, and no
// temp files leak.
func TestSharedDirConcurrentSaves(t *testing.T) {
	stores, _ := sharedDirStores(t, 2)
	key := Key("shared", "race")
	in := payload{Name: "race", Values: []float64{4, 5}}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := stores[i%2].Save(key, in); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent Save: %v", err)
	}
	var out payload
	if ok, err := stores[0].Load(key, &out); !ok || err != nil {
		t.Fatalf("Load: ok=%v err=%v", ok, err)
	}
	if out.Name != "race" {
		t.Fatalf("payload = %+v", out)
	}
	entries, err := os.ReadDir(stores[0].Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "tmp-") {
			t.Errorf("leaked temp file %s", e.Name())
		}
	}
}

// TestWriterSuffixInTempNames: concurrent in-flight temp files must be
// attributable to their writer.
func TestWriterSuffixInTempNames(t *testing.T) {
	stores, _ := sharedDirStores(t, 1)
	f, name, err := stores[0].createTemp()
	if err != nil {
		t.Fatalf("createTemp: %v", err)
	}
	f.Close()
	defer os.Remove(name)
	if !strings.Contains(name, "tmp-r0-") {
		t.Fatalf("temp name %q does not carry writer suffix r0", name)
	}
}

// TestSaveRawLoadRawRoundTrip: the raw-payload path must serve the
// exact bytes Save would have produced, so peer cache fills are
// byte-identical to local store hits.
func TestSaveRawLoadRawRoundTrip(t *testing.T) {
	s, reg := testStore(t)
	in := payload{Name: "raw", Metrics: map[string]float64{"x": 1.25}}
	want, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("raw")
	if dup, err := s.SaveRaw(key, want); dup || err != nil {
		t.Fatalf("SaveRaw: dup=%v err=%v", dup, err)
	}
	got, ok, err := s.LoadRaw(key)
	if !ok || err != nil {
		t.Fatalf("LoadRaw: ok=%v err=%v", ok, err)
	}
	if string(got) != string(want) {
		t.Fatalf("LoadRaw payload = %q, want %q", got, want)
	}
	if counter(reg, "ckpt.hit") != 1 || counter(reg, "ckpt.store") != 1 {
		t.Fatalf("hit/store = %d/%d, want 1/1",
			counter(reg, "ckpt.hit"), counter(reg, "ckpt.store"))
	}
}

// TestCkptWriteFaultSite: an armed ckpt.write rule turns the store
// read-only — Save fails cleanly, nothing lands on disk, and the
// failure counts as a skip (the degraded-mode signal replicas act on).
func TestCkptWriteFaultSite(t *testing.T) {
	s, reg := testStore(t)
	defer fault.Enable(fault.NewPlan(fault.Rule{Site: "ckpt.write", Kind: fault.Error}))()
	key := Key("blocked")
	err := s.Save(key, payload{Name: "blocked"})
	if err == nil {
		t.Fatal("Save under ckpt.write fault succeeded")
	}
	var inj *fault.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("err = %v, want *fault.InjectedError", err)
	}
	if got := counter(reg, "ckpt.skip"); got != 1 {
		t.Fatalf("ckpt.skip = %d, want 1", got)
	}
	if ok, _ := s.Load(key, &payload{}); ok {
		t.Fatal("blocked write still produced a file")
	}
}
