package report

import (
	"fmt"
	"time"
)

// TimingRow is one pipeline stage's (or experiment's) timing and
// allocation summary, as measured by internal/obs.
type TimingRow struct {
	Name       string
	Count      int
	Wall       time.Duration
	AllocBytes int64
	Mallocs    int64
	GCs        int64
}

// TimingTable renders timing rows as the CLI/markdown summary table.
// The allocation columns are process-wide MemStats deltas over each
// stage — a cost profile, not an exact attribution.
func TimingTable(rows []TimingRow) *Table {
	t := &Table{
		ID:      "timing",
		Title:   "Per-stage wall time and allocations",
		Columns: []string{"stage", "n", "wall", "alloc", "mallocs", "gc"},
	}
	for _, r := range rows {
		t.AddRow(
			r.Name,
			fmt.Sprintf("%d", r.Count),
			Dur(r.Wall),
			Bytes(r.AllocBytes),
			fmt.Sprintf("%d", r.Mallocs),
			fmt.Sprintf("%d", r.GCs),
		)
	}
	return t
}

// Dur formats a duration for table cells at millisecond resolution.
func Dur(d time.Duration) string {
	if d < time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(time.Millisecond).String()
}

// Bytes formats a byte count with a binary-prefix unit.
func Bytes(n int64) string {
	abs := n
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case abs >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case abs >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
