// Package report renders the reproduction's tables and figure data:
// ASCII tables for the terminal, gnuplot-style .dat series files and
// CSV exports. Every table and figure of the paper is regenerated
// through these types.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	ID      string // e.g. "table1"
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned ASCII art.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	sep := func() {
		for i := range t.Columns {
			b.WriteString("+")
			b.WriteString(strings.Repeat("-", widths[i]+2))
		}
		b.WriteString("+\n")
	}
	writeRow := func(cells []string) {
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "| %-*s ", widths[i], cell)
		}
		b.WriteString("|\n")
	}
	sep()
	writeRow(t.Columns)
	sep()
	for _, row := range t.Rows {
		writeRow(row)
	}
	sep()
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMarkdown writes the table as a GitHub-flavoured Markdown table,
// with pipes in cells escaped.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	b.WriteString("|")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %s |", esc(c))
	}
	b.WriteString("\n|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString("|")
		for i := range t.Columns {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(&b, " %s |", esc(cell))
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table as CSV (header + rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("report: write csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Series is one plottable data set: a shared X column and one or more
// named Y columns (a figure panel).
type Series struct {
	ID     string // e.g. "fig3"
	Title  string
	XLabel string
	X      []float64
	Y      map[string][]float64
	// YOrder fixes the column order; unlisted keys follow sorted.
	YOrder []string
}

// NewSeries allocates a series.
func NewSeries(id, title, xlabel string) *Series {
	return &Series{ID: id, Title: title, XLabel: xlabel, Y: make(map[string][]float64)}
}

// Add registers a Y column, keeping declaration order.
func (s *Series) Add(name string, ys []float64) {
	if _, ok := s.Y[name]; !ok {
		s.YOrder = append(s.YOrder, name)
	}
	s.Y[name] = ys
}

// columns returns the Y column names in declaration order.
func (s *Series) columns() []string {
	return s.YOrder
}

// WriteDAT writes the series in gnuplot-friendly format: a comment
// header followed by whitespace-separated columns. Missing values
// (shorter Y columns) render as "nan".
func (s *Series) WriteDAT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Title)
	fmt.Fprintf(&b, "# %s", s.XLabel)
	cols := s.columns()
	for _, c := range cols {
		fmt.Fprintf(&b, "\t%s", c)
	}
	b.WriteString("\n")
	for i, x := range s.X {
		fmt.Fprintf(&b, "%g", x)
		for _, c := range cols {
			ys := s.Y[c]
			if i < len(ys) {
				fmt.Fprintf(&b, "\t%g", ys[i])
			} else {
				b.WriteString("\tnan")
			}
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SaveDAT writes the series to dir/<ID>.dat, creating dir if needed.
func (s *Series) SaveDAT(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("report: mkdir %s: %w", dir, err)
	}
	path := filepath.Join(dir, s.ID+".dat")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("report: create %s: %w", path, err)
	}
	defer f.Close()
	if err := s.WriteDAT(f); err != nil {
		return "", err
	}
	return path, f.Close()
}

// SaveCSV writes the table to dir/<ID>.csv, creating dir if needed.
func (t *Table) SaveCSV(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("report: mkdir %s: %w", dir, err)
	}
	path := filepath.Join(dir, t.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("report: create %s: %w", path, err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return "", err
	}
	return path, f.Close()
}

// F formats a float compactly for table cells.
func F(v float64) string { return fmt.Sprintf("%.4g", v) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// I formats an integer-valued float.
func I(v float64) string { return fmt.Sprintf("%.0f", v) }
