package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		ID:      "t1",
		Title:   "Jobs per hour",
		Columns: []string{"system", "max", "avg"},
	}
	t.AddRow("Google", "1421", "552")
	t.AddRow("AuverGrid", "818", "45")
	return t
}

func TestTableRender(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Jobs per hour") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "| Google") || !strings.Contains(out, "| 1421") {
		t.Errorf("cells missing:\n%s", out)
	}
	// All data lines share the same width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var width int
	for _, l := range lines[1:] { // skip title
		if width == 0 {
			width = len(l)
		} else if len(l) != width {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}

func TestTableRenderShortRow(t *testing.T) {
	tb := sampleTable()
	tb.AddRow("OnlyOneCell")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "OnlyOneCell") {
		t.Error("short row dropped")
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := sampleTable()
	tb.AddRow("a|b", "1")
	var buf bytes.Buffer
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| system | max | avg |") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "|---|---|---|") {
		t.Fatalf("separator missing:\n%s", out)
	}
	if !strings.Contains(out, `a\|b`) {
		t.Fatalf("pipe not escaped:\n%s", out)
	}
	if !strings.Contains(out, "**Jobs per hour**") {
		t.Fatalf("title missing:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "system,max,avg\nGoogle,1421,552\nAuverGrid,818,45\n"
	if buf.String() != want {
		t.Fatalf("csv:\n%q\nwant\n%q", buf.String(), want)
	}
}

func TestSeriesDAT(t *testing.T) {
	s := NewSeries("fig3", "Job length CDF", "seconds")
	s.X = []float64{0, 1000, 2000}
	s.Add("Google", []float64{0, 0.8, 0.9})
	s.Add("AuverGrid", []float64{0, 0.1}) // short on purpose
	var buf bytes.Buffer
	if err := s.WriteDAT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# Job length CDF\n# seconds\tGoogle\tAuverGrid\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "1000\t0.8\t0.1") {
		t.Fatalf("row missing:\n%s", out)
	}
	if !strings.Contains(out, "2000\t0.9\tnan") {
		t.Fatalf("nan padding missing:\n%s", out)
	}
}

func TestSeriesColumnOrderStable(t *testing.T) {
	s := NewSeries("x", "t", "x")
	s.Add("b", nil)
	s.Add("a", nil)
	s.Add("b", []float64{1}) // re-add must not duplicate
	cols := s.columns()
	if len(cols) != 2 || cols[0] != "b" || cols[1] != "a" {
		t.Fatalf("column order %v", cols)
	}
}

func TestSaveFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	s := NewSeries("fig9", "t", "x")
	s.X = []float64{1}
	s.Add("y", []float64{2})
	p, err := s.SaveDAT(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatal(err)
	}
	tb := sampleTable()
	p2, err := tb.SaveCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "system,max,avg") {
		t.Fatal("csv content wrong")
	}
}

func TestFormatters(t *testing.T) {
	if F(0.123456) != "0.1235" {
		t.Errorf("F: %s", F(0.123456))
	}
	if F2(1.005) == "" || I(42.4) != "42" {
		t.Error("formatters broken")
	}
}
