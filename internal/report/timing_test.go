package report

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleTimingRows() []TimingRow {
	return []TimingRow{
		{Name: "exp:fig3", Count: 1, Wall: 1234 * time.Millisecond,
			AllocBytes: 3 << 20, Mallocs: 4200, GCs: 2},
		{Name: "build:sim", Count: 1, Wall: 250 * time.Microsecond,
			AllocBytes: 512, Mallocs: 7, GCs: 0},
	}
}

func TestTimingTableRender(t *testing.T) {
	var buf bytes.Buffer
	if err := TimingTable(sampleTimingRows()).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Per-stage wall time and allocations",
		"stage", "wall", "alloc", "mallocs",
		"exp:fig3", "1.234s", "3.00 MiB", "4200",
		"build:sim", "250µs", "512 B",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTimingTableMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := TimingTable(sampleTimingRows()).WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"| stage |", "| exp:fig3 |", "|---|"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTimingTableEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := TimingTable(nil).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stage") {
		t.Error("empty timing table missing header")
	}
}

func TestDur(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want string
	}{
		{1234 * time.Millisecond, "1.234s"},
		{90 * time.Millisecond, "90ms"},
		{250 * time.Microsecond, "250µs"},
		{1500 * time.Microsecond, "2ms"}, // rounds at ms resolution
	}
	for _, c := range cases {
		if got := Dur(c.in); got != c.want {
			t.Errorf("Dur(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{1 << 10, "1.00 KiB"},
		{3 << 20, "3.00 MiB"},
		{5 << 30, "5.00 GiB"},
		{-2 << 20, "-2.00 MiB"},
	}
	for _, c := range cases {
		if got := Bytes(c.in); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
