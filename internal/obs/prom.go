package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the registry
// snapshot, plus a strict parser for it. Both live here so the daemon's
// /metrics writer, the cmd/reprobench cross-check, and the CI
// exposition gate share one definition of "valid".
//
// Name mapping: registry metric names are dotted ("serve.req.total");
// Prometheus names must match [a-zA-Z_:][a-zA-Z0-9_:]*, so every
// invalid rune becomes '_' ("serve_req_total"). The mapping is not
// injective in general, but the registry's dotted names only ever
// differ by dots-vs-underscores from their mangled forms, so in
// practice collisions would require two registry names differing only
// in separator — which SortSnapshots would surface as adjacent
// duplicate families in the dump.

// PromName mangles a registry metric name into a legal Prometheus
// metric name.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format
// (backslash, double-quote, newline).
func promEscape(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects (+Inf/-Inf/NaN
// spellings; shortest round-trippable decimal otherwise).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders a label set (plus an optional extra pair, used for
// histogram le labels) as {a="b",...}, or "" when empty.
func promLabels(ls []Label, extraName, extraVal string) string {
	if len(ls) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, l := range ls {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(PromName(l.Name))
		b.WriteString(`="`)
		b.WriteString(promEscape(l.Value))
		b.WriteByte('"')
	}
	if extraName != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(promEscape(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders snapshots (already in SortSnapshots order —
// Registry.Snapshot guarantees it) as Prometheus text exposition.
// Counters become counter families; gauges gauge families; histograms
// cumulative _bucket/_sum/_count families. A histogram's rejected
// count, when nonzero, is exported as a separate
// <name>_rejected_total counter family.
func WritePrometheus(w io.Writer, snaps []MetricSnapshot) error {
	bw := bufio.NewWriter(w)
	seenType := make(map[string]string, len(snaps))
	emitType := func(name, typ string) {
		if seenType[name] == "" {
			fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
			seenType[name] = typ
		}
	}
	for _, m := range snaps {
		name := PromName(m.Name)
		switch m.Type {
		case "counter":
			emitType(name, "counter")
			fmt.Fprintf(bw, "%s%s %s\n", name, promLabels(m.Labels, "", ""), promFloat(m.Value))
		case "gauge":
			emitType(name, "gauge")
			fmt.Fprintf(bw, "%s%s %s\n", name, promLabels(m.Labels, "", ""), promFloat(m.Value))
		case "histogram":
			emitType(name, "histogram")
			// Prometheus buckets are cumulative; the registry's are not.
			var cum int64
			for i, upper := range m.Le {
				if i < len(m.Counts) {
					cum += m.Counts[i]
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n",
					name, promLabels(m.Labels, "le", promFloat(upper)), cum)
			}
			if n := len(m.Le); n < len(m.Counts) {
				cum += m.Counts[n]
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", name, promLabels(m.Labels, "le", "+Inf"), cum)
			fmt.Fprintf(bw, "%s_sum%s %s\n", name, promLabels(m.Labels, "", ""), promFloat(m.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", name, promLabels(m.Labels, "", ""), m.Count)
			if m.Rejected > 0 {
				rname := name + "_rejected_total"
				emitType(rname, "counter")
				fmt.Fprintf(bw, "%s%s %d\n", rname, promLabels(m.Labels, "", ""), m.Rejected)
			}
		default:
			return fmt.Errorf("obs: unknown metric type %q for %s", m.Type, m.Name)
		}
	}
	return bw.Flush()
}

// PromSample is one parsed exposition sample: a metric name, its label
// set (sorted by label name), and the value.
type PromSample struct {
	Name   string
	Labels []Label
	Value  float64
}

// PromDump is a parsed /metrics payload.
type PromDump struct {
	// Types maps family name -> declared type ("counter", ...).
	Types map[string]string
	// Samples holds every sample line in input order.
	Samples []PromSample
}

// Value returns the sample value for name with exactly the given
// labels (order-insensitive), and whether it was present.
func (d *PromDump) Value(name string, labels ...Label) (float64, bool) {
	want := append([]Label(nil), labels...)
	sort.Slice(want, func(i, j int) bool { return want[i].Name < want[j].Name })
	for _, s := range d.Samples {
		if s.Name != name || len(s.Labels) != len(want) {
			continue
		}
		match := true
		for i := range want {
			if s.Labels[i] != want[i] {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// ParsePrometheus parses (and thereby validates) text exposition
// produced by WritePrometheus — or any conforming exporter. It is
// strict about everything this repo's own telemetry depends on:
// metric-name and label syntax, float parsing, # TYPE declarations
// preceding their family's first sample, and histogram bucket
// monotonicity. It returns the first violation as an error with a line
// number, making it usable as a CI gate.
func ParsePrometheus(r io.Reader) (*PromDump, error) {
	dump := &PromDump{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	// For bucket monotonicity: family+labels(minus le) -> last cumulative count.
	lastBucket := make(map[string]float64)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !validPromName(name) {
					return nil, fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if prev, dup := dump.Types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s (was %s)", lineNo, name, prev)
				}
				dump.Types[name] = typ
			}
			continue // other comments (# HELP, plain #) are legal and skipped
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if fam, isBucket := strings.CutSuffix(s.Name, "_bucket"); isBucket && dump.Types[fam] == "histogram" {
			key := fam + "{"
			hasLe := false
			for _, l := range s.Labels {
				if l.Name == "le" {
					hasLe = true
					continue
				}
				key += l.Name + "=" + l.Value + ","
			}
			if !hasLe {
				return nil, fmt.Errorf("line %d: histogram bucket %s without le label", lineNo, s.Name)
			}
			if prev, ok := lastBucket[key]; ok && s.Value < prev {
				return nil, fmt.Errorf("line %d: histogram %s buckets not cumulative (%g < %g)",
					lineNo, fam, s.Value, prev)
			}
			lastBucket[key] = s.Value
		}
		dump.Samples = append(dump.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: scan exposition: %w", err)
	}
	return dump, nil
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parsePromSample parses `name{l="v",...} value [timestamp]`.
func parsePromSample(line string) (PromSample, error) {
	var s PromSample
	rest := line
	// Metric name runs to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = rest[:end]
	if !validPromName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := -1
		inQuote := false
		for i := 1; i < len(rest); i++ {
			switch {
			case inQuote && rest[i] == '\\':
				i++ // skip escaped char
			case rest[i] == '"':
				inQuote = !inQuote
			case !inQuote && rest[i] == '}':
				close = i
			}
			if close >= 0 {
				break
			}
		}
		if close < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		s.Labels, err = parsePromLabels(rest[1:close])
		if err != nil {
			return s, err
		}
		rest = rest[close+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %q: want value [timestamp] after name", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value: %v", line, err)
	}
	s.Value = v
	sort.Slice(s.Labels, func(i, j int) bool { return s.Labels[i].Name < s.Labels[j].Name })
	return s, nil
}

func parsePromLabels(body string) ([]Label, error) {
	var out []Label
	i := 0
	for i < len(body) {
		// label name
		j := i
		for j < len(body) && body[j] != '=' {
			j++
		}
		if j == len(body) {
			return nil, fmt.Errorf("label set %q: missing '='", body)
		}
		name := strings.TrimSpace(body[i:j])
		if !validLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		i = j + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("label %s: value not quoted", name)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(body) {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				switch body[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %s: bad escape \\%c", name, body[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("label %s: unterminated value", name)
		}
		out = append(out, Label{Name: name, Value: val.String()})
		if i < len(body) {
			if body[i] != ',' {
				return nil, fmt.Errorf("label set %q: want ',' at %d", body, i)
			}
			i++
		}
	}
	return out, nil
}
