package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hits")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					c.Add(1)
				} else {
					c.AddShard(g, 1)
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if again := reg.Counter("hits"); again != c {
		t.Fatal("Counter not idempotent: second lookup returned a new metric")
	}
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("depth")
	g.Set(2.5)
	g.Add(1.5)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	h.ObserveN(2, 4)
	le, counts, count, sum := h.Snapshot()
	if len(le) != 3 || len(counts) != 4 {
		t.Fatalf("snapshot shape: le=%v counts=%v", le, counts)
	}
	// <=1: {0.5, 1}; <=10: {5, 10, 2 x4}; <=100: {50}; +Inf: {1000}.
	want := []int64{2, 6, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if wantSum := 0.5 + 1 + 5 + 10 + 50 + 1000 + 8; sum != wantSum {
		t.Fatalf("sum = %v, want %v", sum, wantSum)
	}
}

// TestNilSafety: the "observability off" path is a nil recorder; every
// operation the instrumented code performs must no-op without panicking.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	reg := r.Registry()
	reg.Counter("x").Add(1)
	reg.Counter("x").AddShard(3, 1)
	reg.Gauge("y").Set(1)
	reg.Histogram("z", []float64{1}).Observe(2)
	sp := r.Span("a", CatStage, AutoTID)
	sp.End()
	r.AddSpan("b", CatWorker, 0, time.Now(), time.Second)
	if got := r.Spans(); got != nil {
		t.Fatalf("nil recorder has spans: %v", got)
	}
	if got := r.Summarize(); got != nil {
		t.Fatalf("nil recorder has summaries: %v", got)
	}
	if got := reg.Snapshot(); got != nil {
		t.Fatalf("nil registry has snapshot: %v", got)
	}
	var buf bytes.Buffer
	if err := r.WriteMetricsJSONL(&buf); err != nil {
		t.Fatalf("nil WriteMetricsJSONL: %v", err)
	}
}

func TestSpanRecording(t *testing.T) {
	r := NewRecorder()
	sp := r.Span("exp:fig3", CatExperiment, 2)
	_ = make([]byte, 1<<16) // allocate something attributable
	sp.End()
	r.Span("build:sim", CatArtifact, AutoTID).End()

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "exp:fig3" || spans[0].TID != 2 || spans[0].Cat != CatExperiment {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[1].TID < autoTIDBase {
		t.Fatalf("AutoTID lane %d not above base %d", spans[1].TID, autoTIDBase)
	}
	if spans[0].DurUS < 0 || spans[0].StartUS < 0 {
		t.Fatalf("negative timing: %+v", spans[0])
	}
}

func TestSummarizeAggregates(t *testing.T) {
	r := NewRecorder()
	r.AddSpan("w", CatWorker, 0, time.Now(), 2*time.Millisecond)
	r.AddSpan("w", CatWorker, 1, time.Now(), 3*time.Millisecond)
	r.AddSpan("x", CatStage, 0, time.Now(), time.Millisecond)
	sums := r.Summarize()
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	if sums[0].Name != "w" || sums[0].Count != 2 || sums[0].Wall != 5*time.Millisecond {
		t.Fatalf("summary[0] = %+v", sums[0])
	}
}

// TestWriteMetricsJSONL checks every line parses as JSON and that the
// snapshot is complete and deterministically ordered.
func TestWriteMetricsJSONL(t *testing.T) {
	r := NewRecorder()
	r.Registry().Counter("cluster.events_dispatched").Add(42)
	r.Registry().Counter("core.cell.sim.miss").Add(1)
	r.Registry().Histogram("cluster.queue_depth", []float64{1, 10}).Observe(3)
	r.Span("exp:fig2", CatExperiment, 0).End()

	var buf bytes.Buffer
	if err := r.WriteMetricsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var names []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if typ, _ := line["type"].(string); typ == "" {
			t.Fatalf("line missing type: %q", sc.Text())
		}
		names = append(names, line["name"].(string))
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"cluster.events_dispatched", "core.cell.sim.miss", "cluster.queue_depth", "exp:fig2"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("JSONL missing %s: %v", want, names)
		}
	}
}

// TestWriteChromeTrace checks the trace is one JSON object with a
// traceEvents array containing metadata plus one X event per span.
func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder()
	r.Span("exp:fig2", CatExperiment, 0).End()
	r.AddSpan("worker-1", CatWorker, 1, time.Now(), time.Millisecond)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var xEvents, metaEvents int
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "X":
			xEvents++
		case "M":
			metaEvents++
		}
	}
	if xEvents != 2 {
		t.Fatalf("got %d X events, want 2", xEvents)
	}
	if metaEvents < 3 { // process_name + two thread lanes
		t.Fatalf("got %d metadata events, want >= 3", metaEvents)
	}
}

func TestRegistryWriteJSONL(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.req.total").Add(3)
	reg.Gauge("serve.ctx.live").Set(2)
	reg.Histogram("serve.gate.wait_seconds", []float64{0.1, 1}).Observe(0.5)

	var buf bytes.Buffer
	if err := reg.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var m MetricSnapshot
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q is not a metric snapshot: %v", line, err)
		}
	}
	// Snapshot order is metric name, so the export is stable and
	// families stay adjacent: ctx.live < gate.wait_seconds < req.total.
	for i, want := range []string{"serve.ctx.live", "serve.gate.wait_seconds", "serve.req.total"} {
		if !strings.Contains(lines[i], want) {
			t.Errorf("line %d = %q, want %q", i, lines[i], want)
		}
	}

	var nilReg *Registry
	buf.Reset()
	if err := nilReg.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry WriteJSONL: err=%v wrote %d bytes, want silent no-op", err, buf.Len())
	}
}
