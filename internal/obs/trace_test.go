package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	const sid = "00f067aa0ba902b7"
	cases := []struct {
		in string
		ok bool
	}{
		{"00-" + tid + "-" + sid + "-01", true},
		{"  00-" + tid + "-" + sid + "-00  ", true},                   // whitespace + unsampled
		{"cc-" + tid + "-" + sid + "-01", true},                       // unknown future version
		{"ff-" + tid + "-" + sid + "-01", false},                      // forbidden version
		{"00-00000000000000000000000000000000-" + sid + "-01", false}, // zero trace
		{"00-" + tid + "-0000000000000000-01", false},                 // zero span
		{"00-" + strings.ToUpper(tid) + "-" + sid + "-01", false},     // uppercase
		{"00-" + tid + "-" + sid, false},                              // missing flags
		{"00-" + tid[:31] + "-" + sid + "-01", false},                 // short trace
		{"", false},
		{"garbage", false},
	}
	for _, tc := range cases {
		sc, ok := ParseTraceparent(tc.in)
		if ok != tc.ok {
			t.Errorf("ParseTraceparent(%q) ok = %v, want %v", tc.in, ok, tc.ok)
		}
		if ok && (sc.TraceID != tid || sc.SpanID != sid) {
			t.Errorf("ParseTraceparent(%q) = %+v, want ids %s/%s", tc.in, sc, tid, sid)
		}
	}
	if got := (SpanContext{TraceID: tid, SpanID: sid}).Traceparent(); got != "00-"+tid+"-"+sid+"-01" {
		t.Errorf("Traceparent() = %q", got)
	}
	if got := (SpanContext{}).Traceparent(); got != "" {
		t.Errorf("zero SpanContext Traceparent() = %q, want empty", got)
	}
}

func TestSeededIDsDeterministic(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	a.SeedIDs(99)
	b.SeedIDs(99)
	for i := 0; i < 8; i++ {
		if ta, tb := a.NewTraceID(), b.NewTraceID(); ta != tb {
			t.Fatalf("draw %d: %s != %s", i, ta, tb)
		}
	}
	if sc := (SpanContext{TraceID: a.NewTraceID(), SpanID: a.NewSpanID()}); !sc.Valid() {
		t.Errorf("generated ids invalid: %+v", sc)
	}
}

// TestSpanTreeNesting walks a three-deep chain and checks identity
// propagation: shared trace ID, parent links, one lane.
func TestSpanTreeNesting(t *testing.T) {
	rec := NewRecorder()
	rec.SeedIDs(1)
	root, ctx := rec.StartRequestSpan(context.Background(), "root", CatRequest)
	mid, ctx := rec.StartSpan(ctx, "mid", CatServe)
	leaf, _ := rec.StartSpan(ctx, "leaf", CatArtifact)
	leaf.End()
	mid.End()
	root.End()

	spans := rec.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	r, m, l := byName["root"], byName["mid"], byName["leaf"]
	if r.TraceID == "" || m.TraceID != r.TraceID || l.TraceID != r.TraceID {
		t.Fatalf("trace IDs diverge: %s / %s / %s", r.TraceID, m.TraceID, l.TraceID)
	}
	if r.ParentID != "" || m.ParentID != r.SpanID || l.ParentID != m.SpanID {
		t.Errorf("parent chain broken: root<-%q mid<-%q leaf<-%q", r.ParentID, m.ParentID, l.ParentID)
	}
	if m.TID != r.TID || l.TID != r.TID {
		t.Errorf("lanes diverge: %d / %d / %d", r.TID, m.TID, l.TID)
	}
	// Traced spans record wall time only — no MemStats attribution.
	if r.AllocBytes != 0 || r.Mallocs != 0 {
		t.Errorf("request span carries MemStats deltas (%d bytes, %d mallocs)", r.AllocBytes, r.Mallocs)
	}
	// Untraced StartSpan (no span in ctx) degrades to a plain batch span.
	sp, sameCtx := rec.StartSpan(context.Background(), "batch", CatStage)
	if sameCtx != context.Background() {
		t.Error("untraced StartSpan modified the context")
	}
	sp.End()
	got := rec.Spans()
	if last := got[len(got)-1]; last.TraceID != "" || last.Name != "batch" {
		t.Errorf("untraced span has trace identity: %+v", last)
	}
}

// TestChromeExportNestedSpans: a traced tree exports with identity in
// args, and the span link surfaces both link fields.
func TestChromeExportNestedSpans(t *testing.T) {
	rec := NewRecorder()
	rec.SeedIDs(5)
	root, ctx := rec.StartRequestSpan(context.Background(), "GET artifacts", CatRequest)
	child, _ := rec.StartSpan(ctx, "coalesce:fig2", CatServe)
	child.Link(SpanContext{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", SpanID: "00f067aa0ba902b7"})
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteSpansChromeTrace(&buf, rec.Spans()); err != nil {
		t.Fatal(err)
	}
	var payload struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &payload); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var rootEv, childEv map[string]any
	for _, ev := range payload.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch ev.Name {
		case "GET artifacts":
			rootEv = ev.Args
		case "coalesce:fig2":
			childEv = ev.Args
		}
	}
	if rootEv == nil || childEv == nil {
		t.Fatal("exported trace missing the span events")
	}
	if rootEv["trace_id"] != childEv["trace_id"] {
		t.Errorf("trace_id differs across events: %v vs %v", rootEv["trace_id"], childEv["trace_id"])
	}
	if childEv["parent_id"] != rootEv["span_id"] {
		t.Errorf("child parent_id %v, want root span_id %v", childEv["parent_id"], rootEv["span_id"])
	}
	if childEv["link_trace_id"] != "4bf92f3577b34da6a3ce929d0e0e4736" || childEv["link_span_id"] != "00f067aa0ba902b7" {
		t.Errorf("link args missing or wrong: %v", childEv)
	}
}

// TestSpanRingEviction: a capped recorder keeps exactly the newest cap
// spans, oldest-first, with Seq surviving eviction — including under
// concurrent writers (run with -race).
func TestSpanRingEviction(t *testing.T) {
	rec := NewRecorder()
	rec.SetSpanCap(8)
	if got := rec.SpanCap(); got != 8 {
		t.Fatalf("SpanCap = %d", got)
	}

	const writers, perWriter = 4, 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sp, _ := rec.StartRequestSpan(context.Background(), "req", CatRequest)
				sp.End()
			}
		}()
	}
	wg.Wait()

	spans := rec.Spans()
	if len(spans) != 8 {
		t.Fatalf("retained %d spans, want cap 8", len(spans))
	}
	const total = writers * perWriter
	for i, sp := range spans {
		// Oldest-first: the retained window is exactly the last 8 of the
		// all-time sequence, in order.
		if want := uint64(total - 8 + i + 1); sp.Seq != want {
			t.Errorf("slot %d: Seq %d, want %d", i, sp.Seq, want)
		}
	}

	// SpansSince resumes from a watermark inside the window...
	since := rec.SpansSince(spans[5].Seq)
	if len(since) != 2 || since[0].Seq != spans[6].Seq {
		t.Errorf("SpansSince(mid) = %d spans starting %d", len(since), since[0].Seq)
	}
	// ...returns everything for an evicted watermark (the gap is visible
	// as the Seq jump), and nothing past the newest.
	if got := rec.SpansSince(0); len(got) != 8 {
		t.Errorf("SpansSince(0) = %d, want all 8", len(got))
	}
	if got := rec.SpansSince(spans[7].Seq); len(got) != 0 {
		t.Errorf("SpansSince(newest) = %d, want 0", len(got))
	}

	// Re-capping trims oldest-first; uncapping resumes unbounded growth.
	rec.SetSpanCap(3)
	spans = rec.Spans()
	if len(spans) != 3 || spans[0].Seq != total-2 {
		t.Errorf("after recap: %d spans, first Seq %d", len(spans), spans[0].Seq)
	}
	rec.SetSpanCap(0)
	for i := 0; i < 5; i++ {
		sp, _ := rec.StartRequestSpan(context.Background(), "more", CatRequest)
		sp.End()
	}
	if got := len(rec.Spans()); got != 8 {
		t.Errorf("uncapped recorder has %d spans, want 3+5", got)
	}
}

// TestHistogramRejectsNonFinite: NaN and ±Inf observations must not
// reach buckets or sums (a single NaN would poison the running sum and
// park in the +Inf bucket); they are counted in Rejected instead.
func TestHistogramRejectsNonFinite(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t.h", []float64{1, 2})
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(1.5)
	_, counts, count, sum := h.Snapshot()
	if count != 1 || sum != 1.5 {
		t.Errorf("count %d sum %g, want the single finite observation", count, sum)
	}
	var totalBuckets int64
	for _, c := range counts {
		totalBuckets += c
	}
	if totalBuckets != 1 {
		t.Errorf("bucket total %d, want 1", totalBuckets)
	}
	if got := h.Rejected(); got != 3 {
		t.Errorf("Rejected = %d, want 3", got)
	}
	// The rejection is visible in the exposition as a companion counter.
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "t_h_rejected_total 3") {
		t.Errorf("exposition missing rejected counter:\n%s", buf.String())
	}
}

// TestHistogramUpperBoundDeterminism pins the boundary rule: an
// observation exactly on a bucket upper bound lands in that bucket
// (le is inclusive, Prometheus semantics), every time.
func TestHistogramUpperBoundDeterminism(t *testing.T) {
	h := NewRegistry().Histogram("t.b", []float64{1, 2, 5})
	for i := 0; i < 100; i++ {
		h.Observe(2.0)
	}
	uppers, counts, _, _ := h.Snapshot()
	for i, u := range uppers {
		want := int64(0)
		if u == 2.0 {
			want = 100
		}
		if counts[i] != want {
			t.Errorf("bucket le=%g: count %d, want %d", u, counts[i], want)
		}
	}
	// Above every bound → the +Inf overflow bucket (last slot).
	h2 := NewRegistry().Histogram("t.o", []float64{1, 2, 5})
	h2.Observe(99)
	_, counts2, _, _ := h2.Snapshot()
	if counts2[len(counts2)-1] != 1 {
		t.Errorf("overflow bucket count %d, want 1", counts2[len(counts2)-1])
	}
}
