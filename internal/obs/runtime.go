package obs

import (
	"runtime"
	"time"
)

// RuntimeSampler periodically publishes Go runtime health gauges into a
// registry — the process-level half of the serving telemetry (the
// request-level half lives in per-endpoint counters and sketches).
// Exported gauges:
//
//	runtime.goroutines        current goroutine count
//	runtime.heap_alloc_bytes  live heap bytes (MemStats.HeapAlloc)
//	runtime.heap_sys_bytes    heap address space from the OS
//	runtime.gc_pause_ns       most recent GC stop-the-world pause
//	runtime.gc_total          completed GC cycles
//	runtime.uptime_seconds    seconds since the sampler started
//
// Each tick performs one runtime.ReadMemStats (a stop-the-world read,
// microseconds): at the default 10s period that is harmless; don't run
// a sampler at sub-100ms periods on a latency-sensitive process.
type RuntimeSampler struct {
	reg    *Registry
	period time.Duration
	stop   chan struct{}
	done   chan struct{}
	start  time.Time
}

// StartRuntimeSampler samples immediately, then every period, until
// Stop. A nil registry or non-positive period returns a nil sampler
// (Stop on nil is a no-op), so callers can wire "-runtime-sample 0"
// straight through to disable sampling.
func StartRuntimeSampler(reg *Registry, period time.Duration) *RuntimeSampler {
	if reg == nil || period <= 0 {
		return nil
	}
	s := &RuntimeSampler{
		reg:    reg,
		period: period,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		start:  time.Now(),
	}
	s.sample() // first sample before returning: /metrics is never empty
	go s.loop()
	return s
}

func (s *RuntimeSampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.period)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.sample()
		}
	}
}

func (s *RuntimeSampler) sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.reg.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge("runtime.heap_alloc_bytes").Set(float64(m.HeapAlloc))
	s.reg.Gauge("runtime.heap_sys_bytes").Set(float64(m.HeapSys))
	s.reg.Gauge("runtime.gc_pause_ns").Set(float64(m.PauseNs[(m.NumGC+255)%256]))
	s.reg.Gauge("runtime.gc_total").Set(float64(m.NumGC))
	s.reg.Gauge("runtime.uptime_seconds").Set(time.Since(s.start).Seconds())
}

// Stop halts the sampler and waits for its goroutine to exit, so a
// draining daemon shuts down with zero stray goroutines. Safe on nil
// and idempotent-unsafe only in the trivial sense (call it once).
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}
