package obs

import (
	"context"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync/atomic"
	"time"
)

// Request-scoped tracing. A trace is the tree of spans one request
// produces as it crosses the serving layers: the HTTP handler span is
// the root, and every layer below it (admission gate wait, coalescer,
// experiment run, artifact cell builds, checkpoint load/save) records a
// child by deriving its span from the parent carried in the request's
// context.Context. The identifiers follow the W3C Trace Context wire
// shapes — a 128-bit trace ID and 64-bit span IDs, both lowercase hex —
// so an incoming `traceparent` header joins an external trace and the
// echoed trace ID is greppable across systems.
//
// ID generation never touches any experiment random stream: each
// Recorder owns its own source (see SeedIDs), preserving the PR2
// invariant that instrumentation cannot change outputs.

// SpanContext is the identity of one span within one trace: the shared
// 32-hex-char trace ID and the span's own 16-hex-char span ID. The
// zero value is "not traced" (Valid reports false).
type SpanContext struct {
	TraceID string // 32 lowercase hex chars, not all zero
	SpanID  string // 16 lowercase hex chars, not all zero
}

// isLowerHex reports whether s is exactly n lowercase-hex characters
// with at least one non-zero digit (all-zero IDs are invalid per the
// W3C trace-context spec).
func isLowerHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	nonzero := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			nonzero = true
		}
	}
	return nonzero
}

// Valid reports whether both IDs have the right shape.
func (sc SpanContext) Valid() bool {
	return isLowerHex(sc.TraceID, 32) && isLowerHex(sc.SpanID, 16)
}

// Traceparent renders the W3C header value for this span context
// ("00-<trace-id>-<span-id>-01"), or "" for an invalid context.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent parses a W3C traceparent header value
// (version-traceid-spanid-flags). Unknown future versions are accepted
// as long as the first four fields parse; version "ff" and malformed
// IDs are rejected.
func ParseTraceparent(h string) (SpanContext, bool) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return SpanContext{}, false
	}
	ver := parts[0]
	if len(ver) != 2 || ver == "ff" || !isHexByte(ver) {
		return SpanContext{}, false
	}
	if len(parts[3]) != 2 || !isHexByte(parts[3]) {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: parts[1], SpanID: parts[2]}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// isHexByte reports whether s is two lowercase-hex characters.
func isHexByte(s string) bool {
	if len(s) != 2 {
		return false
	}
	for i := 0; i < 2; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// traceCtxKey keys the current span in a context.Context.
type traceCtxKey struct{}

// traceCtxVal is what a context carries for the current span: its
// identity plus the Chrome-trace lane (TID) children inherit so one
// request's spans render on one lane. tid < 0 means "no lane yet"
// (a context seeded from an external traceparent): the first child
// allocates a fresh auto lane.
type traceCtxVal struct {
	sc  SpanContext
	tid int
}

// ContextWithSpan returns ctx carrying sc as the current span — the
// entry point for continuing an external trace (an incoming
// traceparent header, or a coalesced build adopting its leader's
// trace). An invalid sc returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, traceCtxVal{sc: sc, tid: -1})
}

// PinLane allocates a concrete Chrome-trace lane for ctx's span
// context if it has none yet (a context seeded via ContextWithSpan
// across a goroutine boundary carries tid < 0). Spans started below
// the returned context then share one lane instead of each allocating
// their own — one coalesced build renders as one lane. Untraced
// contexts and contexts already on a lane return unchanged.
func (r *Recorder) PinLane(ctx context.Context) context.Context {
	if r == nil {
		return ctx
	}
	v, ok := spanValFromContext(ctx)
	if !ok || v.tid >= 0 {
		return ctx
	}
	v.tid = int(r.nextAuto.Add(1))
	return context.WithValue(ctx, traceCtxKey{}, v)
}

// SpanFromContext returns the current span context carried by ctx.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	v, ok := ctx.Value(traceCtxKey{}).(traceCtxVal)
	return v.sc, ok
}

func spanValFromContext(ctx context.Context) (traceCtxVal, bool) {
	v, ok := ctx.Value(traceCtxKey{}).(traceCtxVal)
	return v, ok
}

// SeedIDs makes this recorder's trace/span ID generation deterministic
// by replacing its entropy with a seeded PCG stream. Tests use it so
// trace assertions are reproducible; production recorders keep the
// default process-random source. Never call it concurrently with spans
// being started.
func (r *Recorder) SeedIDs(seed uint64) {
	if r == nil {
		return
	}
	r.idMu.Lock()
	r.idSrc = rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	r.idMu.Unlock()
}

// randU64 draws one word from the recorder's ID source.
func (r *Recorder) randU64() uint64 {
	r.idMu.Lock()
	defer r.idMu.Unlock()
	if r.idSrc == nil {
		return rand.Uint64()
	}
	return r.idSrc.Uint64()
}

// hex64 renders v as 16 lowercase hex chars.
func hex64(v uint64) string {
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return hex.EncodeToString(b[:])
}

// NewTraceID returns a fresh 32-hex-char trace ID.
func (r *Recorder) NewTraceID() string {
	for {
		hi, lo := r.randU64(), r.randU64()
		if hi|lo != 0 {
			return hex64(hi) + hex64(lo)
		}
	}
}

// NewSpanID returns a fresh 16-hex-char span ID.
func (r *Recorder) NewSpanID() string {
	for {
		if v := r.randU64(); v != 0 {
			return hex64(v)
		}
	}
}

// StartRequestSpan starts the root span of a request trace. When ctx
// already carries a span context (an incoming traceparent seeded via
// ContextWithSpan), the new span continues that trace as a child;
// otherwise it roots a brand-new trace. The returned context carries
// the new span, so every StartSpan below it becomes a descendant.
//
// Traced spans measure wall time only — no runtime.MemStats snapshot,
// whose stop-the-world read is too expensive per request.
func (r *Recorder) StartRequestSpan(ctx context.Context, name, cat string) (*Span, context.Context) {
	if r == nil {
		return nil, ctx
	}
	if parent, ok := spanValFromContext(ctx); ok {
		return r.startChild(ctx, name, cat, parent)
	}
	sc := SpanContext{TraceID: r.NewTraceID(), SpanID: r.NewSpanID()}
	tid := int(r.nextAuto.Add(1))
	s := &Span{rec: r, name: name, cat: cat, tid: tid, sc: sc, noMem: true, start: time.Now()}
	return s, context.WithValue(ctx, traceCtxKey{}, traceCtxVal{sc: sc, tid: tid})
}

// StartSpan starts a span below whatever span ctx carries. With a
// parent present the child shares its trace ID and Chrome-trace lane
// and records the parent's span ID; without one it degrades to exactly
// Recorder.Span(name, cat, AutoTID) — the untraced batch-pipeline
// behavior — and returns ctx unchanged. Nil recorders return a nil
// (no-op) span.
func (r *Recorder) StartSpan(ctx context.Context, name, cat string) (*Span, context.Context) {
	if r == nil {
		return nil, ctx
	}
	parent, ok := spanValFromContext(ctx)
	if !ok {
		return r.Span(name, cat, AutoTID), ctx
	}
	return r.startChild(ctx, name, cat, parent)
}

func (r *Recorder) startChild(ctx context.Context, name, cat string, parent traceCtxVal) (*Span, context.Context) {
	tid := parent.tid
	if tid < 0 {
		tid = int(r.nextAuto.Add(1))
	}
	sc := SpanContext{TraceID: parent.sc.TraceID, SpanID: r.NewSpanID()}
	s := &Span{
		rec: r, name: name, cat: cat, tid: tid,
		sc: sc, parent: parent.sc.SpanID, noMem: true,
		start: time.Now(),
	}
	return s, context.WithValue(ctx, traceCtxKey{}, traceCtxVal{sc: sc, tid: tid})
}

// Context returns the span's identity (the zero SpanContext for
// untraced or nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Link attaches the identity of a causally-related span in another
// trace: a request that joined an in-flight coalesced build links its
// span to the leader's, so the two traces cross-reference each other.
func (s *Span) Link(sc SpanContext) {
	if s == nil || !sc.Valid() {
		return
	}
	s.linkTrace, s.linkSpan = sc.TraceID, sc.SpanID
}

// ReqInfo is the per-request annotation bag the serving layer threads
// through context: layers that learn something the access log wants —
// the admission gate (wait time), the coalescer (role), the scenario
// LRU (hit), the checkpoint store (hit/miss) — set fields as the
// request descends, and the access logger reads them once the response
// is written. All fields are atomics because a coalesced build runs on
// its own goroutine. Every method is safe on a nil receiver.
type ReqInfo struct {
	gateWaitUS atomic.Int64
	coalesced  atomic.Bool
	leader     atomic.Bool
	ctxCached  atomic.Bool
	ckptHit    atomic.Bool
	ckptMiss   atomic.Bool
}

type reqInfoKey struct{}

// ContextWithReqInfo returns ctx carrying ri.
func ContextWithReqInfo(ctx context.Context, ri *ReqInfo) context.Context {
	if ri == nil {
		return ctx
	}
	return context.WithValue(ctx, reqInfoKey{}, ri)
}

// ReqInfoFrom returns the request annotations carried by ctx, or nil.
func ReqInfoFrom(ctx context.Context) *ReqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*ReqInfo)
	return ri
}

// SetGateWait records how long the request waited for an admission
// slot.
func (ri *ReqInfo) SetGateWait(d time.Duration) {
	if ri != nil {
		ri.gateWaitUS.Store(d.Microseconds())
	}
}

// GateWaitUS returns the recorded admission wait in microseconds.
func (ri *ReqInfo) GateWaitUS() int64 {
	if ri == nil {
		return 0
	}
	return ri.gateWaitUS.Load()
}

// MarkCoalesced flags that the request joined a build another request
// started.
func (ri *ReqInfo) MarkCoalesced() {
	if ri != nil {
		ri.coalesced.Store(true)
	}
}

// MarkLeader flags that the request's build closure actually ran (it
// was the coalesce leader).
func (ri *ReqInfo) MarkLeader() {
	if ri != nil {
		ri.leader.Store(true)
	}
}

// MarkCtxCached flags that the scenario context was already in the LRU.
func (ri *ReqInfo) MarkCtxCached() {
	if ri != nil {
		ri.ctxCached.Store(true)
	}
}

// MarkCkptHit flags that the artifact was answered from the checkpoint
// store without a build.
func (ri *ReqInfo) MarkCkptHit() {
	if ri != nil {
		ri.ckptHit.Store(true)
	}
}

// MarkCkptMiss flags that the checkpoint store was consulted and had
// no artifact.
func (ri *ReqInfo) MarkCkptMiss() {
	if ri != nil {
		ri.ckptMiss.Store(true)
	}
}

// Flags returns the boolean annotations (coalesced, leader, ctxCached,
// ckptHit, ckptMiss) for the access-log record.
func (ri *ReqInfo) Flags() (coalesced, leader, ctxCached, ckptHit, ckptMiss bool) {
	if ri == nil {
		return
	}
	return ri.coalesced.Load(), ri.leader.Load(), ri.ctxCached.Load(),
		ri.ckptHit.Load(), ri.ckptMiss.Load()
}

// String renders the span context compactly for error messages.
func (sc SpanContext) String() string {
	if !sc.Valid() {
		return "untraced"
	}
	return fmt.Sprintf("%s/%s", sc.TraceID, sc.SpanID)
}
