package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Span categories used by the pipeline. Exported so consumers filter
// span records without string literals scattering.
const (
	CatExperiment = "experiment" // one paper artifact regenerated
	CatArtifact   = "artifact"   // one memoized Context cell built
	CatWorker     = "worker"     // one par worker's busy interval
	CatStage      = "stage"      // a coarse pipeline stage (emit, report, ...)
)

// AutoTID asks the recorder to assign the span its own fresh trace
// lane, for work not pinned to a worker (artifact builds).
const AutoTID = -1

// SpanRecord is one finished span: what ran, where (trace lane), when
// (relative to the recorder's epoch), and what it cost. The MemStats
// deltas are process-wide (runtime.ReadMemStats), so concurrent spans
// each see the whole process's allocation traffic; they are intended as
// a per-stage cost profile, not an exact attribution.
type SpanRecord struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	TID  int    `json:"tid"`

	StartUS int64 `json:"start_us"` // µs since the recorder's epoch
	DurUS   int64 `json:"dur_us"`

	AllocBytes int64  `json:"alloc_bytes"` // MemStats.TotalAlloc delta
	Mallocs    int64  `json:"mallocs"`     // MemStats.Mallocs delta
	NumGC      uint32 `json:"num_gc"`      // MemStats.NumGC delta
}

// Recorder collects spans and owns the run's metrics registry. The
// zero of *Recorder (nil) is a valid "observability off" recorder:
// every method no-ops and Span returns a nil (no-op) span.
type Recorder struct {
	epoch    time.Time
	registry *Registry

	mu    sync.Mutex
	spans []SpanRecord

	nextAuto atomic.Int64 // next AutoTID lane
}

// NewRecorder returns a recorder whose epoch is now, with a fresh
// registry attached.
func NewRecorder() *Recorder {
	r := &Recorder{epoch: time.Now(), registry: NewRegistry()}
	r.nextAuto.Store(autoTIDBase)
	return r
}

// autoTIDBase keeps auto-assigned lanes clear of worker indices.
const autoTIDBase = 100

// Registry returns the recorder's metrics registry (nil for a nil
// recorder, which is itself a valid no-op registry receiver).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.registry
}

// Span is an in-flight measurement started by Recorder.Span. End it
// exactly once; a nil span ends as a no-op.
type Span struct {
	rec   *Recorder
	name  string
	cat   string
	tid   int
	start time.Time
	m0    runtime.MemStats
}

// Span starts a span. tid selects the Chrome-trace lane: par workers
// pass their worker index, AutoTID allocates a dedicated lane.
func (r *Recorder) Span(name, cat string, tid int) *Span {
	if r == nil {
		return nil
	}
	if tid == AutoTID {
		tid = int(r.nextAuto.Add(1))
	}
	s := &Span{rec: r, name: name, cat: cat, tid: tid, start: time.Now()}
	runtime.ReadMemStats(&s.m0)
	return s
}

// End finishes the span and records it.
func (s *Span) End() {
	if s == nil {
		return
	}
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	end := time.Now()
	s.rec.addRecord(SpanRecord{
		Name:       s.name,
		Cat:        s.cat,
		TID:        s.tid,
		StartUS:    s.start.Sub(s.rec.epoch).Microseconds(),
		DurUS:      end.Sub(s.start).Microseconds(),
		AllocBytes: int64(m1.TotalAlloc - s.m0.TotalAlloc),
		Mallocs:    int64(m1.Mallocs - s.m0.Mallocs),
		NumGC:      m1.NumGC - s.m0.NumGC,
	})
}

// AddSpan records an already-measured interval (used by the par
// observer, whose worker intervals are timed inside the loop itself).
// No MemStats are attributed to such spans.
func (r *Recorder) AddSpan(name, cat string, tid int, start time.Time, dur time.Duration) {
	if r == nil {
		return
	}
	r.addRecord(SpanRecord{
		Name:    name,
		Cat:     cat,
		TID:     tid,
		StartUS: start.Sub(r.epoch).Microseconds(),
		DurUS:   dur.Microseconds(),
	})
}

func (r *Recorder) addRecord(rec SpanRecord) {
	r.mu.Lock()
	r.spans = append(r.spans, rec)
	r.mu.Unlock()
}

// Spans returns a copy of every finished span in recording order.
func (r *Recorder) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanRecord(nil), r.spans...)
}

// SpanSummary aggregates the spans sharing one name.
type SpanSummary struct {
	Name       string
	Cat        string
	Count      int
	Wall       time.Duration
	AllocBytes int64
	Mallocs    int64
	NumGC      uint32
}

// Summarize groups spans by name (first-seen order preserved) and sums
// wall time and allocation deltas — the rows of the CLI timing table.
func (r *Recorder) Summarize() []SpanSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	index := make(map[string]int)
	var out []SpanSummary
	for _, sp := range r.spans {
		i, ok := index[sp.Name]
		if !ok {
			i = len(out)
			index[sp.Name] = i
			out = append(out, SpanSummary{Name: sp.Name, Cat: sp.Cat})
		}
		out[i].Count++
		out[i].Wall += time.Duration(sp.DurUS) * time.Microsecond
		out[i].AllocBytes += sp.AllocBytes
		out[i].Mallocs += sp.Mallocs
		out[i].NumGC += sp.NumGC
	}
	return out
}
