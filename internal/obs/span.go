package obs

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Span categories used by the pipeline. Exported so consumers filter
// span records without string literals scattering.
const (
	CatExperiment = "experiment" // one paper artifact regenerated
	CatArtifact   = "artifact"   // one memoized Context cell built
	CatWorker     = "worker"     // one par worker's busy interval
	CatStage      = "stage"      // a coarse pipeline stage (emit, report, ...)
	CatRequest    = "request"    // one served HTTP request (root span)
	CatServe      = "serve"      // serving internals: gate wait, coalesce, ckpt
	CatReplica    = "replica"    // cross-replica coordination: lease wait, peer fill
)

// AutoTID asks the recorder to assign the span its own fresh trace
// lane, for work not pinned to a worker (artifact builds).
const AutoTID = -1

// SpanRecord is one finished span: what ran, where (trace lane), when
// (relative to the recorder's epoch), and what it cost. The MemStats
// deltas are process-wide (runtime.ReadMemStats), so concurrent spans
// each see the whole process's allocation traffic; they are intended as
// a per-stage cost profile, not an exact attribution.
type SpanRecord struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	TID  int    `json:"tid"`

	StartUS int64 `json:"start_us"` // µs since the recorder's epoch
	DurUS   int64 `json:"dur_us"`

	AllocBytes int64  `json:"alloc_bytes"` // MemStats.TotalAlloc delta
	Mallocs    int64  `json:"mallocs"`     // MemStats.Mallocs delta
	NumGC      uint32 `json:"num_gc"`      // MemStats.NumGC delta

	// Trace identity, set only for request-scoped spans (empty for the
	// batch pipeline's untraced spans; omitted from JSON when empty so
	// batch exports are unchanged).
	TraceID  string `json:"trace_id,omitempty"`
	SpanID   string `json:"span_id,omitempty"`
	ParentID string `json:"parent_id,omitempty"` // parent span within the same trace
	// Cross-trace link: a coalesced request's span points at the
	// in-flight build leader's span in the leader's own trace.
	LinkTraceID string `json:"link_trace_id,omitempty"`
	LinkSpanID  string `json:"link_span_id,omitempty"`

	// Seq is the record's position in the recorder's all-time span
	// sequence (1-based, monotonically increasing, never reused). It
	// survives ring-buffer eviction, so incremental exporters can poll
	// SpansSince(lastSeq) without re-reading history.
	Seq uint64 `json:"seq,omitempty"`
}

// Recorder collects spans and owns the run's metrics registry. The
// zero of *Recorder (nil) is a valid "observability off" recorder:
// every method no-ops and Span returns a nil (no-op) span.
type Recorder struct {
	epoch    time.Time
	registry *Registry

	// Span storage. With cap == 0 spans grows without bound (the batch
	// pipeline's mode: every span is exported at exit). SetSpanCap turns
	// it into a fixed-size ring: spans holds at most cap records and
	// ringStart indexes the oldest, so a long-lived daemon keeps the
	// freshest cap spans in bounded memory.
	mu        sync.Mutex
	spans     []SpanRecord
	cap       int
	ringStart int
	nextSeq   uint64 // all-time span count; next record gets nextSeq+1

	nextAuto atomic.Int64 // next AutoTID lane

	// Trace/span ID entropy. nil idSrc means the shared process source
	// (rand/v2 global); SeedIDs installs a deterministic PCG for tests.
	idMu  sync.Mutex
	idSrc *rand.Rand
}

// NewRecorder returns a recorder whose epoch is now, with a fresh
// registry attached.
func NewRecorder() *Recorder {
	r := &Recorder{epoch: time.Now(), registry: NewRegistry()}
	r.nextAuto.Store(autoTIDBase)
	return r
}

// autoTIDBase keeps auto-assigned lanes clear of worker indices.
const autoTIDBase = 100

// Registry returns the recorder's metrics registry (nil for a nil
// recorder, which is itself a valid no-op registry receiver).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.registry
}

// Span is an in-flight measurement started by Recorder.Span. End it
// exactly once; a nil span ends as a no-op.
type Span struct {
	rec   *Recorder
	name  string
	cat   string
	tid   int
	start time.Time
	m0    runtime.MemStats

	// Trace fields (zero for untraced batch spans).
	sc                  SpanContext
	parent              string
	linkTrace, linkSpan string
	noMem               bool // traced spans skip the STW MemStats reads
}

// Span starts a span. tid selects the Chrome-trace lane: par workers
// pass their worker index, AutoTID allocates a dedicated lane.
func (r *Recorder) Span(name, cat string, tid int) *Span {
	if r == nil {
		return nil
	}
	if tid == AutoTID {
		tid = int(r.nextAuto.Add(1))
	}
	s := &Span{rec: r, name: name, cat: cat, tid: tid, start: time.Now()}
	runtime.ReadMemStats(&s.m0)
	return s
}

// End finishes the span and records it.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	rec := SpanRecord{
		Name:        s.name,
		Cat:         s.cat,
		TID:         s.tid,
		StartUS:     s.start.Sub(s.rec.epoch).Microseconds(),
		DurUS:       end.Sub(s.start).Microseconds(),
		TraceID:     s.sc.TraceID,
		SpanID:      s.sc.SpanID,
		ParentID:    s.parent,
		LinkTraceID: s.linkTrace,
		LinkSpanID:  s.linkSpan,
	}
	if !s.noMem {
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		rec.AllocBytes = int64(m1.TotalAlloc - s.m0.TotalAlloc)
		rec.Mallocs = int64(m1.Mallocs - s.m0.Mallocs)
		rec.NumGC = m1.NumGC - s.m0.NumGC
	}
	s.rec.addRecord(rec)
}

// AddSpan records an already-measured interval (used by the par
// observer, whose worker intervals are timed inside the loop itself).
// No MemStats are attributed to such spans.
func (r *Recorder) AddSpan(name, cat string, tid int, start time.Time, dur time.Duration) {
	if r == nil {
		return
	}
	r.addRecord(SpanRecord{
		Name:    name,
		Cat:     cat,
		TID:     tid,
		StartUS: start.Sub(r.epoch).Microseconds(),
		DurUS:   dur.Microseconds(),
	})
}

func (r *Recorder) addRecord(rec SpanRecord) {
	r.mu.Lock()
	r.nextSeq++
	rec.Seq = r.nextSeq
	switch {
	case r.cap <= 0:
		r.spans = append(r.spans, rec)
	case len(r.spans) < r.cap:
		r.spans = append(r.spans, rec)
	default:
		// Ring is full: overwrite the oldest slot and advance the start.
		r.spans[r.ringStart] = rec
		r.ringStart = (r.ringStart + 1) % r.cap
	}
	r.mu.Unlock()
}

// SetSpanCap bounds the recorder's span storage to the newest n records
// (a ring buffer evicting oldest-first). n <= 0 restores unbounded
// growth. Existing spans beyond the new cap are dropped oldest-first.
// Long-lived daemons call this once at startup so trace history holds
// bounded memory no matter how long the process serves.
func (r *Recorder) SetSpanCap(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	linear := r.linearizeLocked()
	if n > 0 && len(linear) > n {
		linear = append([]SpanRecord(nil), linear[len(linear)-n:]...)
	}
	r.spans = linear
	r.cap = n
	r.ringStart = 0
}

// SpanCap returns the configured ring capacity (0 = unbounded).
func (r *Recorder) SpanCap() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cap
}

// linearizeLocked returns the spans oldest-first regardless of ring
// wrap. Caller holds r.mu. The returned slice aliases r.spans only in
// the non-wrapped case; callers that retain it must copy.
func (r *Recorder) linearizeLocked() []SpanRecord {
	if r.cap <= 0 || r.ringStart == 0 {
		return r.spans
	}
	out := make([]SpanRecord, 0, len(r.spans))
	out = append(out, r.spans[r.ringStart:]...)
	out = append(out, r.spans[:r.ringStart]...)
	return out
}

// Spans returns a copy of every retained span in recording order
// (oldest-first; under a span cap, the newest cap records).
func (r *Recorder) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanRecord(nil), r.linearizeLocked()...)
}

// TraceSpans returns the retained spans belonging to one trace, in
// recording order. An empty result means the trace is unknown — or has
// been fully evicted from the ring.
func (r *Recorder) TraceSpans(traceID string) []SpanRecord {
	if r == nil || traceID == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SpanRecord
	for _, sp := range r.linearizeLocked() {
		if sp.TraceID == traceID {
			out = append(out, sp)
		}
	}
	return out
}

// SpansSince returns retained spans with Seq > after, in recording
// order — the incremental-export primitive: a poller keeps the last Seq
// it saw and asks only for what is new. If eviction outran the poller,
// the gap is visible as a jump in Seq.
func (r *Recorder) SpansSince(after uint64) []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	linear := r.linearizeLocked()
	// Seq is strictly increasing in recording order, so binary-search
	// for the first record past the watermark.
	lo, hi := 0, len(linear)
	for lo < hi {
		mid := (lo + hi) / 2
		if linear[mid].Seq <= after {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return append([]SpanRecord(nil), linear[lo:]...)
}

// SpanSummary aggregates the spans sharing one name.
type SpanSummary struct {
	Name       string
	Cat        string
	Count      int
	Wall       time.Duration
	AllocBytes int64
	Mallocs    int64
	NumGC      uint32
}

// Summarize groups spans by name (first-seen order preserved) and sums
// wall time and allocation deltas — the rows of the CLI timing table.
func (r *Recorder) Summarize() []SpanSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	index := make(map[string]int)
	var out []SpanSummary
	for _, sp := range r.linearizeLocked() {
		i, ok := index[sp.Name]
		if !ok {
			i = len(out)
			index[sp.Name] = i
			out = append(out, SpanSummary{Name: sp.Name, Cat: sp.Cat})
		}
		out[i].Count++
		out[i].Wall += time.Duration(sp.DurUS) * time.Microsecond
		out[i].AllocBytes += sp.AllocBytes
		out[i].Mallocs += sp.Mallocs
		out[i].NumGC += sp.NumGC
	}
	return out
}
