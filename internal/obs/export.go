package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"slices"
)

// encodeSnapshot streams every metric in the registry's stable
// snapshot order through enc, one object per call.
func (r *Registry) encodeSnapshot(enc *json.Encoder) error {
	for _, m := range r.Snapshot() {
		if err := enc.Encode(m); err != nil {
			return fmt.Errorf("obs: encode metric %s: %w", m.Name, err)
		}
	}
	return nil
}

// WriteJSONL writes the registry's current metric snapshot as JSONL
// (one counter/gauge/histogram object per line) — the wire format of
// the serving daemon's /metrics endpoint, which exports metrics only:
// a long-running process snapshots its registry on demand without
// dragging the span buffer along. A nil registry writes nothing.
func (r *Registry) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	if err := r.encodeSnapshot(json.NewEncoder(bw)); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteMetricsJSONL writes the registry snapshot followed by every
// span, one JSON object per line. Metric lines carry "type"
// counter/gauge/histogram; span lines carry "type":"span".
func (r *Recorder) WriteMetricsJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline JSONL needs
	if err := r.Registry().encodeSnapshot(enc); err != nil {
		return err
	}
	for _, sp := range r.Spans() {
		line := struct {
			Type string `json:"type"`
			SpanRecord
		}{Type: "span", SpanRecord: sp}
		if err := enc.Encode(line); err != nil {
			return fmt.Errorf("obs: encode span %s: %w", sp.Name, err)
		}
	}
	return bw.Flush()
}

// chromeEvent is one trace_event entry. Only the fields Perfetto and
// chrome://tracing read are emitted.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"` // µs
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes every span as a complete ("ph":"X")
// trace_event, preceded by metadata events naming the process and each
// trace lane, in the JSON object format Perfetto and chrome://tracing
// load directly.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return WriteSpansChromeTrace(w, r.Spans())
}

// WriteSpansJSONL writes a span slice as JSONL, one "type":"span"
// object per line — the incremental wire format of the daemon's
// /debug/trace endpoints (a poller resumes from the last Seq it saw).
func WriteSpansJSONL(w io.Writer, spans []SpanRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range spans {
		line := struct {
			Type string `json:"type"`
			SpanRecord
		}{Type: "span", SpanRecord: sp}
		if err := enc.Encode(line); err != nil {
			return fmt.Errorf("obs: encode span %s: %w", sp.Name, err)
		}
	}
	return bw.Flush()
}

// WriteSpansChromeTrace writes an arbitrary span slice (a whole
// recorder dump, or one trace's spans) in Chrome trace_event format.
// Trace identity travels in each event's args, so a loaded trace shows
// span/parent IDs in the Perfetto details pane.
func WriteSpansChromeTrace(w io.Writer, spans []SpanRecord) error {
	events := make([]chromeEvent, 0, len(spans)+8)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "repro"},
	})

	// Name each lane after the dominant category running on it.
	laneCat := make(map[int]string)
	for _, sp := range spans {
		if _, ok := laneCat[sp.TID]; !ok {
			laneCat[sp.TID] = sp.Cat
		}
	}
	lanes := make([]int, 0, len(laneCat))
	for tid := range laneCat {
		lanes = append(lanes, tid)
	}
	slices.Sort(lanes)
	for _, tid := range lanes {
		label := laneCat[tid]
		if tid < autoTIDBase {
			label = fmt.Sprintf("worker-%d", tid)
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": label},
		})
	}

	for _, sp := range spans {
		ev := chromeEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X",
			TS: sp.StartUS, Dur: sp.DurUS, PID: 1, TID: sp.TID,
		}
		if sp.AllocBytes != 0 || sp.Mallocs != 0 || sp.NumGC != 0 {
			ev.Args = map[string]any{
				"alloc_bytes": sp.AllocBytes,
				"mallocs":     sp.Mallocs,
				"num_gc":      sp.NumGC,
			}
		}
		if sp.TraceID != "" {
			if ev.Args == nil {
				ev.Args = make(map[string]any, 4)
			}
			ev.Args["trace_id"] = sp.TraceID
			ev.Args["span_id"] = sp.SpanID
			if sp.ParentID != "" {
				ev.Args["parent_id"] = sp.ParentID
			}
			if sp.LinkSpanID != "" {
				ev.Args["link_trace_id"] = sp.LinkTraceID
				ev.Args["link_span_id"] = sp.LinkSpanID
			}
		}
		events = append(events, ev)
	}

	bw := bufio.NewWriter(w)
	payload := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(payload); err != nil {
		return fmt.Errorf("obs: encode chrome trace: %w", err)
	}
	return bw.Flush()
}
