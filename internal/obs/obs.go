// Package obs is the reproduction's observability substrate: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms), span-based stage tracing with runtime.MemStats deltas,
// and exporters for JSONL and the Chrome trace_event format (openable
// in chrome://tracing and Perfetto).
//
// Instrumentation is strictly additive: nothing in this package draws
// from the experiment random streams or feeds back into analysis
// results, so a run with instrumentation enabled produces byte-identical
// .dat/.csv/metric outputs to an uninstrumented run (enforced by
// TestInstrumentationByteIdentical in cmd/repro).
//
// Every type is safe for concurrent use, and every method is safe on a
// nil receiver: a nil *Registry hands out nil metrics whose operations
// are no-ops, so instrumented code paths need no "is observability on?"
// branches.
package obs

import (
	"math"
	"math/rand/v2"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// counterShards is the number of cache-line-padded cells a Counter
// stripes its adds over. Power of two so the shard pick is a mask.
const counterShards = 8

// padCell is one counter shard, padded to its own cache line so
// concurrent workers hammering different shards do not false-share.
type padCell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing (or at least add-only) named
// value, striped over padded atomic shards for concurrent writers.
type Counter struct {
	name   string
	shards [counterShards]padCell
}

// Add increments the counter. The shard is picked with the runtime's
// per-P cheap random source, spreading concurrent writers across cache
// lines without any coordination.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.shards[rand.Uint64()&(counterShards-1)].v.Add(delta)
}

// AddShard increments the counter on an explicit shard — the
// contention-free fast path for callers that own a stable worker index
// (internal/par workers pass their worker id).
func (c *Counter) AddShard(shard int, delta int64) {
	if c == nil {
		return
	}
	c.shards[shard&(counterShards-1)].v.Add(delta)
}

// Value sums the shards.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a named last-write-wins value.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge (CAS loop; gauges are not write-hot).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v <= Upper[i]; an implicit +Inf bucket catches the rest.
type Histogram struct {
	name    string
	uppers  []float64
	buckets []atomic.Int64 // len(uppers)+1, last = +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n identical observations (bulk publish from
// single-threaded local tallies, e.g. the cluster simulator).
func (h *Histogram) ObserveN(v float64, n int64) {
	if h == nil || n == 0 {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v)
	h.buckets[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot returns the bucket upper bounds, per-bucket counts (the
// final entry is the +Inf bucket), total count and sum.
func (h *Histogram) Snapshot() (uppers []float64, counts []int64, count int64, sum float64) {
	if h == nil {
		return nil, nil, 0, 0
	}
	uppers = append([]float64(nil), h.uppers...)
	counts = make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return uppers, counts, h.count.Load(), math.Float64frombits(h.sumBits.Load())
}

// Registry names and owns a process's metrics. Metric constructors are
// idempotent: the first call creates, later calls return the same
// metric, so hot paths should cache the returned pointer.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the given ascending bucket
// upper bounds, creating it on first use. Later calls ignore uppers and
// return the existing histogram.
func (r *Registry) Histogram(name string, uppers []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{
			name:    name,
			uppers:  append([]float64(nil), uppers...),
			buckets: make([]atomic.Int64, len(uppers)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// MetricSnapshot is one metric's frozen state, as exported to JSONL.
type MetricSnapshot struct {
	Name string `json:"name"`
	Type string `json:"type"` // "counter" | "gauge" | "histogram"

	// Counter / gauge.
	Value float64 `json:"value,omitempty"`

	// Histogram: Le[i] pairs with Counts[i]; the final Counts entry is
	// the +Inf bucket.
	Le     []float64 `json:"le,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	Count  int64     `json:"count,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
}

// Snapshot freezes every metric, sorted by (type, name) so exports are
// stable run-to-run.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricSnapshot, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out = append(out, MetricSnapshot{Name: name, Type: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, MetricSnapshot{Name: name, Type: "gauge", Value: g.Value()})
	}
	for name, h := range r.histograms {
		le, counts, count, sum := h.Snapshot()
		out = append(out, MetricSnapshot{
			Name: name, Type: "histogram",
			Le: le, Counts: counts, Count: count, Sum: sum,
		})
	}
	slices.SortFunc(out, func(a, b MetricSnapshot) int {
		if a.Type != b.Type {
			return strings.Compare(a.Type, b.Type)
		}
		return strings.Compare(a.Name, b.Name)
	})
	return out
}
