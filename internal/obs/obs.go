// Package obs is the reproduction's observability substrate: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms), span-based stage tracing with runtime.MemStats deltas,
// and exporters for JSONL and the Chrome trace_event format (openable
// in chrome://tracing and Perfetto).
//
// Instrumentation is strictly additive: nothing in this package draws
// from the experiment random streams or feeds back into analysis
// results, so a run with instrumentation enabled produces byte-identical
// .dat/.csv/metric outputs to an uninstrumented run (enforced by
// TestInstrumentationByteIdentical in cmd/repro).
//
// Every type is safe for concurrent use, and every method is safe on a
// nil receiver: a nil *Registry hands out nil metrics whose operations
// are no-ops, so instrumented code paths need no "is observability on?"
// branches.
package obs

import (
	"math"
	"math/rand/v2"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// counterShards is the number of cache-line-padded cells a Counter
// stripes its adds over. Power of two so the shard pick is a mask.
const counterShards = 8

// padCell is one counter shard, padded to its own cache line so
// concurrent workers hammering different shards do not false-share.
type padCell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing (or at least add-only) named
// value, striped over padded atomic shards for concurrent writers.
type Counter struct {
	name   string
	shards [counterShards]padCell
}

// Add increments the counter. The shard is picked with the runtime's
// per-P cheap random source, spreading concurrent writers across cache
// lines without any coordination.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.shards[rand.Uint64()&(counterShards-1)].v.Add(delta)
}

// AddShard increments the counter on an explicit shard — the
// contention-free fast path for callers that own a stable worker index
// (internal/par workers pass their worker id).
func (c *Counter) AddShard(shard int, delta int64) {
	if c == nil {
		return
	}
	c.shards[shard&(counterShards-1)].v.Add(delta)
}

// Value sums the shards.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a named last-write-wins value.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge (CAS loop; gauges are not write-hot).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v <= Upper[i]; an implicit +Inf bucket catches the rest.
type Histogram struct {
	name     string
	uppers   []float64
	buckets  []atomic.Int64 // len(uppers)+1, last = +Inf
	count    atomic.Int64
	sumBits  atomic.Uint64 // float64 bits, CAS-accumulated
	rejected atomic.Int64  // non-finite observations dropped
}

// Observe records one value.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n identical observations (bulk publish from
// single-threaded local tallies, e.g. the cluster simulator).
//
// Non-finite values are rejected and tallied separately (mirroring
// stats.Histogram): a NaN would otherwise land in the +Inf bucket —
// sort.SearchFloat64s sends every comparison-false value to the end —
// and permanently poison the running sum. A sample exactly equal to a
// bucket's upper bound lands in that bucket (le semantics: bucket i
// counts v <= uppers[i]), deterministically, because SearchFloat64s
// returns the first index with uppers[i] >= v.
func (h *Histogram) ObserveN(v float64, n int64) {
	if h == nil || n == 0 {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.rejected.Add(n)
		return
	}
	i := sort.SearchFloat64s(h.uppers, v)
	h.buckets[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Rejected returns how many non-finite observations were dropped.
func (h *Histogram) Rejected() int64 {
	if h == nil {
		return 0
	}
	return h.rejected.Load()
}

// Snapshot returns the bucket upper bounds, per-bucket counts (the
// final entry is the +Inf bucket), total count and sum.
func (h *Histogram) Snapshot() (uppers []float64, counts []int64, count int64, sum float64) {
	if h == nil {
		return nil, nil, 0, 0
	}
	uppers = append([]float64(nil), h.uppers...)
	counts = make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return uppers, counts, h.count.Load(), math.Float64frombits(h.sumBits.Load())
}

// Registry names and owns a process's metrics. Metric constructors are
// idempotent: the first call creates, later calls return the same
// metric, so hot paths should cache the returned pointer.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	snapFuncs  []func() []MetricSnapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the given ascending bucket
// upper bounds, creating it on first use. Later calls ignore uppers and
// return the existing histogram.
func (r *Registry) Histogram(name string, uppers []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{
			name:    name,
			uppers:  append([]float64(nil), uppers...),
			buckets: make([]atomic.Int64, len(uppers)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// Label is one name="value" pair attached to a metric snapshot
// (Prometheus label semantics). The base registry metrics are
// unlabeled; labeled series come from snapshot funcs (per-endpoint
// latency quantiles, for example).
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// MetricSnapshot is one metric's frozen state, as exported to JSONL
// and Prometheus text.
type MetricSnapshot struct {
	Name   string  `json:"name"`
	Type   string  `json:"type"` // "counter" | "gauge" | "histogram"
	Labels []Label `json:"labels,omitempty"`

	// Counter / gauge.
	Value float64 `json:"value,omitempty"`

	// Histogram: Le[i] pairs with Counts[i]; the final Counts entry is
	// the +Inf bucket.
	Le       []float64 `json:"le,omitempty"`
	Counts   []int64   `json:"counts,omitempty"`
	Count    int64     `json:"count,omitempty"`
	Sum      float64   `json:"sum,omitempty"`
	Rejected int64     `json:"rejected,omitempty"` // non-finite samples dropped
}

// AddSnapshotFunc registers a callback whose snapshots are appended on
// every Snapshot call — the hook by which owners of richer state (the
// serving layer's per-endpoint latency sketches) export computed,
// possibly labeled series at scrape time. The callback must be safe
// for concurrent use and must not call back into this registry.
func (r *Registry) AddSnapshotFunc(fn func() []MetricSnapshot) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.snapFuncs = append(r.snapFuncs, fn)
	r.mu.Unlock()
}

// labelsKey renders labels for sort comparison.
func labelsKey(ls []Label) string {
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// SortSnapshots orders snapshots by name, then labels, then type — the
// canonical export order. Sorting by name first keeps every series of
// one metric family adjacent, which the Prometheus text format
// requires and which makes JSONL dumps diff cleanly across runs.
func SortSnapshots(snaps []MetricSnapshot) {
	slices.SortFunc(snaps, func(a, b MetricSnapshot) int {
		if c := strings.Compare(a.Name, b.Name); c != 0 {
			return c
		}
		if c := strings.Compare(labelsKey(a.Labels), labelsKey(b.Labels)); c != 0 {
			return c
		}
		return strings.Compare(a.Type, b.Type)
	})
}

// Snapshot freezes every metric (registry-owned plus snapshot-func
// series), deterministically ordered by metric name so exports diff
// cleanly run-to-run.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]MetricSnapshot, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out = append(out, MetricSnapshot{Name: name, Type: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, MetricSnapshot{Name: name, Type: "gauge", Value: g.Value()})
	}
	for name, h := range r.histograms {
		le, counts, count, sum := h.Snapshot()
		out = append(out, MetricSnapshot{
			Name: name, Type: "histogram",
			Le: le, Counts: counts, Count: count, Sum: sum,
			Rejected: h.Rejected(),
		})
	}
	funcs := append([]func() []MetricSnapshot(nil), r.snapFuncs...)
	r.mu.Unlock()
	// Snapshot funcs run outside the registry lock so they may take
	// their own locks freely.
	for _, fn := range funcs {
		out = append(out, fn()...)
	}
	SortSnapshots(out)
	return out
}
