package obs

import (
	"sync/atomic"
	"testing"
)

// The registry's contract is "cheap enough to leave on": these benches
// are the evidence BENCH_pr2.json records for future perf PRs.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkCounterAddShardParallel(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	var worker atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		w := int(worker.Add(1))
		for pb.Next() {
			c.AddShard(w, 1)
		}
	})
}

func BenchmarkCounterAddNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench", []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1024))
	}
}

func BenchmarkSpan(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span("bench", CatStage, 0).End()
	}
}

func BenchmarkSpanNil(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span("bench", CatStage, 0).End()
	}
}
