// Package fit estimates the parametric distributions the workload-
// modelling literature uses (exponential, log-normal, Pareto, Weibull)
// from trace samples via maximum likelihood, and ranks them by the
// one-sample Kolmogorov-Smirnov distance. It is the tool for turning a
// real archive trace into the calibration constants that drive
// internal/synth.
package fit

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"repro/internal/dist"
)

// Model is a fitted distribution with its goodness of fit.
type Model struct {
	Name   string
	Dist   dist.Dist
	Params map[string]float64
	// KS is the one-sample Kolmogorov-Smirnov distance between the
	// sample ECDF and the fitted CDF (smaller is better).
	KS float64
}

// Exponential fits rate = 1/mean.
func Exponential(xs []float64) (dist.Exponential, error) {
	if err := validate(xs, false); err != nil {
		return dist.Exponential{}, err
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean <= 0 {
		return dist.Exponential{}, fmt.Errorf("fit: exponential needs positive mean")
	}
	return dist.Exponential{Rate: 1 / mean}, nil
}

// LogNormal fits mu and sigma as the mean and standard deviation of
// the log sample. All values must be positive.
func LogNormal(xs []float64) (dist.LogNormal, error) {
	if err := validate(xs, true); err != nil {
		return dist.LogNormal{}, err
	}
	var sum float64
	for _, x := range xs {
		sum += math.Log(x)
	}
	mu := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := math.Log(x) - mu
		ss += d * d
	}
	sigma := math.Sqrt(ss / float64(len(xs)))
	return dist.LogNormal{Mu: mu, Sigma: sigma}, nil
}

// Pareto fits xm = min(sample) and alpha by MLE. All values must be
// positive.
func Pareto(xs []float64) (dist.Pareto, error) {
	if err := validate(xs, true); err != nil {
		return dist.Pareto{}, err
	}
	xm := xs[0]
	for _, x := range xs {
		if x < xm {
			xm = x
		}
	}
	var sum float64
	for _, x := range xs {
		sum += math.Log(x / xm)
	}
	if sum <= 0 {
		return dist.Pareto{}, fmt.Errorf("fit: pareto needs spread above the minimum")
	}
	alpha := float64(len(xs)) / sum
	return dist.Pareto{Xm: xm, Alpha: alpha}, nil
}

// Weibull fits shape k and scale lambda by MLE, solving the profile
// likelihood equation for k by bisection. All values must be positive.
func Weibull(xs []float64) (dist.Weibull, error) {
	if err := validate(xs, true); err != nil {
		return dist.Weibull{}, err
	}
	n := float64(len(xs))
	var meanLog float64
	for _, x := range xs {
		meanLog += math.Log(x)
	}
	meanLog /= n

	// g(k) = sum(x^k ln x)/sum(x^k) - 1/k - meanLog is increasing in k.
	g := func(k float64) float64 {
		var num, den float64
		for _, x := range xs {
			xk := math.Pow(x, k)
			num += xk * math.Log(x)
			den += xk
		}
		return num/den - 1/k - meanLog
	}
	lo, hi := 1e-3, 100.0
	if g(lo) > 0 || g(hi) < 0 {
		return dist.Weibull{}, fmt.Errorf("fit: weibull shape outside [%g, %g]", lo, hi)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	k := (lo + hi) / 2
	var sumK float64
	for _, x := range xs {
		sumK += math.Pow(x, k)
	}
	lambda := math.Pow(sumK/n, 1/k)
	return dist.Weibull{Lambda: lambda, K: k}, nil
}

func validate(xs []float64, positive bool) error {
	if len(xs) < 3 {
		return fmt.Errorf("fit: need at least 3 samples, got %d", len(xs))
	}
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("fit: non-finite sample")
		}
		if positive && x <= 0 {
			return fmt.Errorf("fit: sample %v must be positive", x)
		}
		if !positive && x < 0 {
			return fmt.Errorf("fit: sample %v must be non-negative", x)
		}
	}
	return nil
}

// CDF evaluates the analytic CDF of the supported families.
func CDF(d dist.Dist, x float64) (float64, error) {
	switch v := d.(type) {
	case dist.Exponential:
		if x < 0 {
			return 0, nil
		}
		return 1 - math.Exp(-v.Rate*x), nil
	case dist.LogNormal:
		if x <= 0 {
			return 0, nil
		}
		return 0.5 * math.Erfc(-(math.Log(x)-v.Mu)/(v.Sigma*math.Sqrt2)), nil
	case dist.Pareto:
		if x < v.Xm {
			return 0, nil
		}
		return 1 - math.Pow(v.Xm/x, v.Alpha), nil
	case dist.Weibull:
		if x < 0 {
			return 0, nil
		}
		return 1 - math.Exp(-math.Pow(x/v.Lambda, v.K)), nil
	}
	return 0, fmt.Errorf("fit: no analytic CDF for %T", d)
}

// KSOneSample returns the one-sample KS distance between the sample
// ECDF and the model CDF.
func KSOneSample(xs []float64, d dist.Dist) (float64, error) {
	sorted := append([]float64(nil), xs...)
	slices.Sort(sorted)
	return ksSorted(sorted, d)
}

// ksSorted is KSOneSample on an already-sorted sample; Fit uses it to
// sort once for all candidate families instead of once per family.
func ksSorted(sorted []float64, d dist.Dist) (float64, error) {
	n := float64(len(sorted))
	var dMax float64
	for i, x := range sorted {
		f, err := CDF(d, x)
		if err != nil {
			return 0, err
		}
		lo := math.Abs(float64(i)/n - f)
		hi := math.Abs(float64(i+1)/n - f)
		if lo > dMax {
			dMax = lo
		}
		if hi > dMax {
			dMax = hi
		}
	}
	return dMax, nil
}

// Fit fits every supported family to the sample and returns the models
// ranked by KS distance (best first). Families that cannot be fitted
// (e.g. non-positive samples for log-normal) are skipped.
func Fit(xs []float64) ([]Model, error) {
	if len(xs) < 3 {
		return nil, fmt.Errorf("fit: need at least 3 samples, got %d", len(xs))
	}
	var models []Model
	if e, err := Exponential(xs); err == nil {
		models = append(models, Model{
			Name: "exponential", Dist: e,
			Params: map[string]float64{"rate": e.Rate},
		})
	}
	if l, err := LogNormal(xs); err == nil {
		models = append(models, Model{
			Name: "lognormal", Dist: l,
			Params: map[string]float64{"mu": l.Mu, "sigma": l.Sigma},
		})
	}
	if p, err := Pareto(xs); err == nil {
		models = append(models, Model{
			Name: "pareto", Dist: p,
			Params: map[string]float64{"xm": p.Xm, "alpha": p.Alpha},
		})
	}
	if w, err := Weibull(xs); err == nil {
		models = append(models, Model{
			Name: "weibull", Dist: w,
			Params: map[string]float64{"lambda": w.Lambda, "k": w.K},
		})
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("fit: no family could be fitted")
	}
	sorted := append([]float64(nil), xs...)
	slices.Sort(sorted)
	for i := range models {
		ks, err := ksSorted(sorted, models[i].Dist)
		if err != nil {
			return nil, err
		}
		models[i].KS = ks
	}
	// Stable: families with equal KS keep their declaration order.
	slices.SortStableFunc(models, func(a, b Model) int { return cmp.Compare(a.KS, b.KS) })
	return models, nil
}

// Best returns the family with the smallest KS distance.
func Best(xs []float64) (Model, error) {
	models, err := Fit(xs)
	if err != nil {
		return Model{}, err
	}
	return models[0], nil
}
