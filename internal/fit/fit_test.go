package fit

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/rng"
)

func sample(d dist.Dist, n int, seed uint64) []float64 {
	s := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(s)
	}
	return xs
}

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (+-%v)", what, got, want, tol)
	}
}

func TestExponentialRecovery(t *testing.T) {
	xs := sample(dist.Exponential{Rate: 0.25}, 20000, 1)
	e, err := Exponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, e.Rate, 0.25, 0.01, "rate")
}

func TestLogNormalRecovery(t *testing.T) {
	xs := sample(dist.LogNormal{Mu: 2, Sigma: 0.7}, 20000, 2)
	l, err := LogNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, l.Mu, 2, 0.03, "mu")
	approx(t, l.Sigma, 0.7, 0.03, "sigma")
}

func TestParetoRecovery(t *testing.T) {
	xs := sample(dist.Pareto{Xm: 3, Alpha: 1.8}, 20000, 3)
	p, err := Pareto(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, p.Xm, 3, 0.01, "xm")
	approx(t, p.Alpha, 1.8, 0.06, "alpha")
}

func TestWeibullRecovery(t *testing.T) {
	xs := sample(dist.Weibull{Lambda: 5, K: 1.4}, 20000, 4)
	w, err := Weibull(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, w.Lambda, 5, 0.15, "lambda")
	approx(t, w.K, 1.4, 0.05, "k")
}

func TestValidation(t *testing.T) {
	if _, err := Exponential([]float64{1, 2}); err == nil {
		t.Error("short sample accepted")
	}
	if _, err := LogNormal([]float64{1, 2, 0}); err == nil {
		t.Error("non-positive accepted for lognormal")
	}
	if _, err := Pareto([]float64{1, 1, 1}); err == nil {
		t.Error("degenerate pareto accepted")
	}
	if _, err := Exponential([]float64{1, 2, math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := Weibull([]float64{-1, 2, 3}); err == nil {
		t.Error("negative accepted for weibull")
	}
}

func TestCDFKnownValues(t *testing.T) {
	f, err := CDF(dist.Exponential{Rate: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, f, 1-math.Exp(-1), 1e-12, "exp CDF")

	f, _ = CDF(dist.LogNormal{Mu: 0, Sigma: 1}, 1)
	approx(t, f, 0.5, 1e-9, "lognormal median")

	f, _ = CDF(dist.Pareto{Xm: 2, Alpha: 1}, 4)
	approx(t, f, 0.5, 1e-12, "pareto CDF")

	f, _ = CDF(dist.Weibull{Lambda: 1, K: 1}, 1)
	approx(t, f, 1-math.Exp(-1), 1e-12, "weibull k=1 CDF")

	if _, err := CDF(dist.Uniform{Lo: 0, Hi: 1}, 0.5); err == nil {
		t.Error("unsupported family should error")
	}
	// Below-support values give 0.
	for _, d := range []dist.Dist{
		dist.Exponential{Rate: 1}, dist.LogNormal{Mu: 0, Sigma: 1},
		dist.Pareto{Xm: 1, Alpha: 1}, dist.Weibull{Lambda: 1, K: 1},
	} {
		if f, _ := CDF(d, -5); f != 0 {
			t.Errorf("%T CDF(-5) = %v", d, f)
		}
	}
}

func TestKSOneSample(t *testing.T) {
	// Sample drawn from the model itself: small distance.
	model := dist.Exponential{Rate: 0.5}
	xs := sample(model, 5000, 5)
	d, err := KSOneSample(xs, model)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.03 {
		t.Fatalf("self-KS %v too large", d)
	}
	// Against a very different model: large distance.
	d2, _ := KSOneSample(xs, dist.Exponential{Rate: 50})
	if d2 < 0.5 {
		t.Fatalf("wrong-model KS %v too small", d2)
	}
}

func TestFitRanksCorrectFamilyFirst(t *testing.T) {
	cases := []struct {
		name string
		d    dist.Dist
	}{
		{"exponential", dist.Exponential{Rate: 0.1}},
		{"lognormal", dist.LogNormal{Mu: 1, Sigma: 1.2}},
		{"pareto", dist.Pareto{Xm: 1, Alpha: 1.1}},
		{"weibull", dist.Weibull{Lambda: 2, K: 0.6}},
	}
	for i, c := range cases {
		xs := sample(c.d, 8000, uint64(10+i))
		best, err := Best(xs)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if best.Name != c.name {
			// The true family must at least be near-indistinguishable.
			models, _ := Fit(xs)
			var trueKS float64
			for _, m := range models {
				if m.Name == c.name {
					trueKS = m.KS
				}
			}
			if trueKS > best.KS*1.5 {
				t.Errorf("%s sample best-fitted by %s (KS %v vs true %v)",
					c.name, best.Name, best.KS, trueKS)
			}
		}
	}
}

func TestFitReportsParams(t *testing.T) {
	xs := sample(dist.LogNormal{Mu: 3, Sigma: 0.5}, 5000, 42)
	models, err := Fit(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) < 3 {
		t.Fatalf("only %d families fitted", len(models))
	}
	for i := 1; i < len(models); i++ {
		if models[i].KS < models[i-1].KS {
			t.Fatal("models not sorted by KS")
		}
	}
	for _, m := range models {
		if len(m.Params) == 0 {
			t.Errorf("%s has no params", m.Name)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1}); err == nil {
		t.Error("tiny sample accepted")
	}
	if _, err := Best([]float64{-1, -2, -3}); err == nil {
		t.Error("all-negative sample accepted")
	}
}
