package fault

import (
	"errors"
	"testing"
	"time"
)

func TestHitNoPlanIsNil(t *testing.T) {
	Disable()
	if err := Hit("anything"); err != nil {
		t.Fatalf("Hit with no plan = %v, want nil", err)
	}
	if Enabled() {
		t.Fatal("Enabled() = true with no plan")
	}
}

func TestErrorRuleFiresOnExactHit(t *testing.T) {
	restore := Enable(NewPlan(Rule{Site: "s", Hit: 3, Kind: Error}))
	defer restore()
	for i := 1; i <= 5; i++ {
		err := Hit("s")
		if i == 3 {
			var inj *InjectedError
			if !errors.As(err, &inj) {
				t.Fatalf("hit %d: err = %v, want *InjectedError", i, err)
			}
			if inj.Site != "s" || inj.Hit != 3 {
				t.Fatalf("hit %d: injected = %+v", i, inj)
			}
		} else if err != nil {
			t.Fatalf("hit %d: err = %v, want nil", i, err)
		}
	}
}

func TestHitZeroFiresEveryCall(t *testing.T) {
	restore := Enable(NewPlan(Rule{Site: "s", Kind: Error}))
	defer restore()
	for i := 0; i < 3; i++ {
		if err := Hit("s"); err == nil {
			t.Fatalf("call %d: want injected error", i)
		}
	}
}

func TestPanicRule(t *testing.T) {
	restore := Enable(NewPlan(Rule{Site: "p", Hit: 1, Kind: Panic}))
	defer restore()
	defer func() {
		r := recover()
		ip, ok := r.(*InjectedPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want *InjectedPanic", r, r)
		}
		if ip.Site != "p" || ip.Hit != 1 {
			t.Fatalf("injected panic = %+v", ip)
		}
	}()
	Hit("p")
	t.Fatal("Hit did not panic")
}

func TestDelayRule(t *testing.T) {
	restore := Enable(NewPlan(Rule{Site: "d", Hit: 1, Kind: Delay, Delay: 10 * time.Millisecond}))
	defer restore()
	start := time.Now()
	if err := Hit("d"); err != nil {
		t.Fatalf("delay rule returned error: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("delay rule slept %v, want >= 10ms", elapsed)
	}
}

func TestUnarmedSiteUnaffected(t *testing.T) {
	restore := Enable(NewPlan(Rule{Site: "s", Hit: 1, Kind: Error}))
	defer restore()
	if err := Hit("other"); err != nil {
		t.Fatalf("unarmed site returned %v", err)
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	sites := []string{"a", "b", "c", "d", "e", "f"}
	p1 := RandomPlan(42, sites, 0.5, 10).Rules()
	p2 := RandomPlan(42, sites, 0.5, 10).Rules()
	if len(p1) != len(p2) {
		t.Fatalf("rule counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("rule %d differs: %+v vs %+v", i, p1[i], p2[i])
		}
	}
	// A different seed should (for this site set) give a different plan.
	p3 := RandomPlan(43, sites, 0.5, 10).Rules()
	same := len(p1) == len(p3)
	if same {
		for i := range p1 {
			if p1[i] != p3[i] {
				same = false
				break
			}
		}
	}
	if same && len(p1) > 0 {
		t.Fatal("seeds 42 and 43 produced identical non-empty plans")
	}
}

func TestEnableRestores(t *testing.T) {
	Disable()
	restore := Enable(NewPlan(Rule{Site: "s", Hit: 1, Kind: Error}))
	if !Enabled() {
		t.Fatal("Enabled() = false after Enable")
	}
	restore()
	if Enabled() {
		t.Fatal("Enabled() = true after restore")
	}
}
