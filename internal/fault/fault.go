// Package fault is a deterministic chaos-injection seam for the
// experiment pipeline. Production code declares named fault sites
// (fault.Hit("core.build.sim")); tests install a Plan that injects an
// error, a panic, or a delay at a chosen hit of a chosen site. With no
// plan installed the seam costs one atomic pointer load, so the sites
// can stay in shipping code.
//
// Determinism: a Plan triggers on exact (site, hit-count) pairs, and
// RandomPlan derives those pairs from an rng seed, so a chaos run is
// exactly reproducible from its seed — the same property the rest of
// the pipeline guarantees for its outputs.
package fault

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// Kind selects what an injected fault does at its site.
type Kind int

const (
	// Error makes Hit return an *InjectedError.
	Error Kind = iota
	// Panic makes Hit panic with an *InjectedPanic value.
	Panic
	// Delay makes Hit sleep for Rule.Delay, then return nil.
	Delay
)

func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("fault.Kind(%d)", int(k))
	}
}

// Rule arms one injection: the Hit'th call (1-based) to fault.Hit(Site)
// triggers Kind. Hit <= 0 means "every call".
type Rule struct {
	Site  string
	Hit   int64
	Kind  Kind
	Delay time.Duration
}

// InjectedError is the error returned by Hit when an Error rule fires.
// Callers can errors.As on it to distinguish injected faults from real
// ones in test assertions.
type InjectedError struct {
	Site string
	Hit  int64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected error at %s (hit %d)", e.Site, e.Hit)
}

// InjectedPanic is the value passed to panic when a Panic rule fires.
type InjectedPanic struct {
	Site string
	Hit  int64
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("fault: injected panic at %s (hit %d)", p.Site, p.Hit)
}

// Plan holds armed rules plus per-site hit counters. A Plan is safe for
// concurrent use; counters advance atomically per Hit call.
type Plan struct {
	mu    sync.Mutex
	rules map[string][]Rule // site -> rules, sorted by Hit
	hits  map[string]*atomic.Int64
}

// NewPlan builds a Plan from rules. Rules for the same site are all
// armed; each fires at most once (except Hit<=0 rules, which fire on
// every call).
func NewPlan(rules ...Rule) *Plan {
	p := &Plan{
		rules: make(map[string][]Rule),
		hits:  make(map[string]*atomic.Int64),
	}
	for _, r := range rules {
		p.rules[r.Site] = append(p.rules[r.Site], r)
		if _, ok := p.hits[r.Site]; !ok {
			p.hits[r.Site] = new(atomic.Int64)
		}
	}
	for site := range p.rules {
		rs := p.rules[site]
		slices.SortStableFunc(rs, func(a, b Rule) int { return cmp.Compare(a.Hit, b.Hit) })
	}
	return p
}

// RandomPlan derives a deterministic plan from a seed: for each site it
// picks, with probability prob, one fault of a random kind (Error or
// Panic) at a random hit in [1, maxHit]. Identical (seed, sites, prob,
// maxHit) always produce the identical plan.
func RandomPlan(seed uint64, sites []string, prob float64, maxHit int64) *Plan {
	s := rng.New(seed).Child("fault.plan")
	var rules []Rule
	for _, site := range sites {
		if s.Float64() >= prob {
			continue
		}
		kind := Error
		if s.Bool(0.5) {
			kind = Panic
		}
		rules = append(rules, Rule{
			Site: site,
			Hit:  1 + s.Int64N(maxHit),
			Kind: kind,
		})
	}
	return NewPlan(rules...)
}

// Rules returns a copy of the plan's armed rules, for logging.
func (p *Plan) Rules() []Rule {
	var out []Rule
	p.mu.Lock()
	defer p.mu.Unlock()
	var sites []string
	for site := range p.rules {
		sites = append(sites, site)
	}
	slices.Sort(sites)
	for _, site := range sites {
		out = append(out, p.rules[site]...)
	}
	return out
}

// hit advances the site counter and fires the matching rule, if any.
func (p *Plan) hit(site string) error {
	c, ok := p.hits[site]
	if !ok {
		return nil
	}
	n := c.Add(1)
	var fire *Rule
	p.mu.Lock()
	for i := range p.rules[site] {
		r := &p.rules[site][i]
		if r.Hit == n || r.Hit <= 0 {
			fire = r
			break
		}
	}
	p.mu.Unlock()
	if fire == nil {
		return nil
	}
	switch fire.Kind {
	case Panic:
		panic(&InjectedPanic{Site: site, Hit: n})
	case Delay:
		time.Sleep(fire.Delay)
		return nil
	default:
		return &InjectedError{Site: site, Hit: n}
	}
}

// active is the installed global plan; nil means chaos is off and Hit
// is a single atomic load.
var active atomic.Pointer[Plan]

// Enable installs p as the process-wide plan and returns a function
// restoring the previous plan (use in tests: defer fault.Enable(p)()).
func Enable(p *Plan) (restore func()) {
	prev := active.Swap(p)
	return func() { active.Store(prev) }
}

// Disable removes any installed plan.
func Disable() { active.Store(nil) }

// Enabled reports whether a plan is currently installed.
func Enabled() bool { return active.Load() != nil }

// Hit marks a named fault site. It returns a non-nil error when an
// Error rule fires, panics when a Panic rule fires, sleeps when a
// Delay rule fires, and is a near-free no-op otherwise.
func Hit(site string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.hit(site)
}
