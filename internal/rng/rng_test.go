package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical draws", same)
	}
}

func TestChildStability(t *testing.T) {
	parent := New(7)
	// Consuming the parent must not change what a child produces.
	c1 := parent.Child("arrivals")
	first := c1.Uint64()
	parent2 := New(7)
	for i := 0; i < 50; i++ {
		parent2.Uint64()
	}
	c2 := parent2.Child("arrivals")
	if got := c2.Uint64(); got != first {
		t.Fatalf("child stream depends on parent consumption: %d != %d", got, first)
	}
}

func TestChildIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Child("a")
	b := parent.Child("b")
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("children with different labels look identical")
	}
}

func TestChildOfDifferentParentsDiffer(t *testing.T) {
	a := New(1).Child("x")
	b := New(2).Child("x")
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("same-label children of different parents look identical")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRange(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		v := s.Range(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v, want ~0.3", p)
	}
}

func TestPickWeights(t *testing.T) {
	s := New(13)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[s.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio %v, want ~3", ratio)
	}
}

func TestPickNegativeTreatedAsZero(t *testing.T) {
	s := New(17)
	weights := []float64{-5, 2}
	for i := 0; i < 100; i++ {
		if got := s.Pick(weights); got != 1 {
			t.Fatalf("negative weight index picked: %d", got)
		}
	}
}

func TestPickPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero total weight did not panic")
		}
	}()
	New(19).Pick([]float64{0, 0})
}

func TestIntNBounds(t *testing.T) {
	s := New(23)
	if err := quick.Check(func(raw uint8) bool {
		n := int(raw%100) + 1
		v := s.IntN(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(29)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation at value %d", v)
		}
		seen[v] = true
	}
}

func TestUniformMean(t *testing.T) {
	s := New(31)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(37)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v, want ~1", mean)
	}
}
