// Package rng provides deterministic, splittable pseudo-random number
// streams for the workload generators and the cluster simulator.
//
// Every experiment in this repository is a pure function of a single
// 64-bit seed. Independent subsystems (arrival process, task lengths,
// machine failures, ...) each derive their own child stream from a
// parent stream and a label, so adding a new consumer never perturbs
// the draws seen by existing consumers.
package rng

import (
	"hash/fnv"
	"math/rand/v2"
)

// Stream is a deterministic random-number stream. The zero value is not
// usable; construct streams with New or Stream.Child.
type Stream struct {
	rand *rand.Rand
	seed uint64
}

// New returns a stream seeded from a single 64-bit seed.
func New(seed uint64) *Stream {
	return &Stream{
		rand: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		seed: seed,
	}
}

// Child derives an independent stream from this stream's seed and a
// label. Child streams are stable: they depend only on (seed, label),
// not on how much of the parent stream has been consumed.
func (s *Stream) Child(label string) *Stream {
	h := fnv.New64a()
	// The hash input mixes the parent seed so distinct parents with the
	// same label produce unrelated children.
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(s.seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	return New(h.Sum64())
}

// Seed reports the seed this stream was created with.
func (s *Stream) Seed() uint64 { return s.seed }

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 { return s.rand.Float64() }

// Uint64 returns a uniform 64-bit value.
func (s *Stream) Uint64() uint64 { return s.rand.Uint64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) IntN(n int) int { return s.rand.IntN(n) }

// Int64N returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) Int64N(n int64) int64 { return s.rand.Int64N(n) }

// NormFloat64 returns a standard normal deviate.
func (s *Stream) NormFloat64() float64 { return s.rand.NormFloat64() }

// ExpFloat64 returns an exponential deviate with rate 1.
func (s *Stream) ExpFloat64() float64 { return s.rand.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.rand.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.rand.Shuffle(n, swap) }

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.rand.Float64() < p }

// Range returns a uniform value in [lo, hi).
func (s *Stream) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rand.Float64()
}

// Pick returns an index in [0, len(weights)) chosen with probability
// proportional to weights[i]. Negative weights are treated as zero.
// It panics if the total weight is not positive.
func (s *Stream) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Pick requires a positive total weight")
	}
	u := s.rand.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		u -= w
		if u < 0 {
			return i
		}
	}
	// Floating-point round-off: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return 0
}
