package workload

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/trace"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (+-%v)", what, got, want, tol)
	}
}

func TestPriorityHistogram(t *testing.T) {
	jobs := []trace.Job{
		{ID: 1, Priority: 1}, {ID: 2, Priority: 1}, {ID: 3, Priority: 12},
		{ID: 4, Priority: 0},  // untracked priority: ignored
		{ID: 5, Priority: 13}, // out of range: ignored
	}
	tasks := []trace.Task{
		{JobID: 1, Priority: 1}, {JobID: 1, Priority: 1}, {JobID: 3, Priority: 12},
	}
	jc, tc := PriorityHistogram(jobs, tasks)
	if jc[1] != 2 || jc[12] != 1 {
		t.Fatalf("job counts %v", jc)
	}
	if tc[1] != 2 || tc[12] != 1 {
		t.Fatalf("task counts %v", tc)
	}
	var total int
	for _, c := range jc {
		total += c
	}
	if total != 3 {
		t.Fatalf("out-of-range priorities counted: %d", total)
	}
}

func TestGroupShares(t *testing.T) {
	jobs := []trace.Job{
		{Priority: 1}, {Priority: 2}, {Priority: 3}, // low
		{Priority: 6},  // middle
		{Priority: 10}, // high
	}
	shares := GroupShares(jobs)
	approx(t, shares[0], 0.6, 1e-12, "low share")
	approx(t, shares[1], 0.2, 1e-12, "middle share")
	approx(t, shares[2], 0.2, 1e-12, "high share")
	empty := GroupShares(nil)
	if empty[0] != 0 || empty[1] != 0 || empty[2] != 0 {
		t.Fatal("empty input should give zero shares")
	}
}

func TestJobLengthsAndCDF(t *testing.T) {
	jobs := []trace.Job{
		{Submit: 0, End: 100},
		{Submit: 50, End: 250},
		{Submit: 100, End: 1100},
	}
	lens := JobLengths(jobs)
	if len(lens) != 3 || lens[0] != 100 || lens[1] != 200 || lens[2] != 1000 {
		t.Fatalf("lengths %v", lens)
	}
	cdf := JobLengthCDF(jobs)
	approx(t, cdf.Eval(200), 2.0/3, 1e-12, "CDF at 200")
}

func TestTaskLengths(t *testing.T) {
	tasks := []trace.Task{{Duration: 10}, {Duration: 20}}
	lens := TaskLengths(tasks)
	if len(lens) != 2 || lens[0] != 10 || lens[1] != 20 {
		t.Fatalf("task lengths %v", lens)
	}
}

func TestSummarizeMassCount(t *testing.T) {
	// Nine 1s and one 91: 10% of items hold ~90% of mass.
	values := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 91}
	s := SummarizeMassCount(values)
	approx(t, s.JointItems, 10, 0.5, "joint items")
	approx(t, s.JointMass, 90, 0.5, "joint mass")
	if s.MMDistance <= 0 {
		t.Fatal("mm-distance should be positive")
	}
	approx(t, s.Mean, 10, 1e-9, "mean")
	approx(t, s.Max, 91, 0, "max")
	if s.N != 10 {
		t.Fatalf("N = %d", s.N)
	}
	zero := SummarizeMassCount(nil)
	if zero.N != 0 {
		t.Fatal("empty input should give zero summary")
	}
}

func TestSubmissionIntervals(t *testing.T) {
	jobs := []trace.Job{
		{Submit: 100}, {Submit: 0}, {Submit: 40}, // unsorted on purpose
	}
	got := SubmissionIntervals(jobs)
	if len(got) != 2 || got[0] != 40 || got[1] != 60 {
		t.Fatalf("intervals %v", got)
	}
	if SubmissionIntervals(jobs[:1]) != nil {
		t.Fatal("single job should give nil intervals")
	}
}

func TestHourlyCountsAndRates(t *testing.T) {
	jobs := []trace.Job{
		{Submit: 0}, {Submit: 10}, {Submit: 3599}, // hour 0: 3
		{Submit: 3600},                   // hour 1: 1
		{Submit: 2 * 3600},               // hour 2: 1
		{Submit: 4 * 3600}, {Submit: -5}, // out of horizon: ignored
	}
	counts := HourlyCounts(jobs, 3*3600)
	if len(counts) != 3 || counts[0] != 3 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("hourly counts %v", counts)
	}
	rs := SubmissionRates(jobs, 3*3600)
	approx(t, rs.Max, 3, 0, "max rate")
	approx(t, rs.Min, 1, 0, "min rate")
	approx(t, rs.Avg, 5.0/3, 1e-12, "avg rate")
	if rs.Fairness <= 0 || rs.Fairness > 1 {
		t.Fatalf("fairness %v", rs.Fairness)
	}
}

func TestCPUUsageFormula4(t *testing.T) {
	jobs := []trace.Job{
		{Submit: 0, End: 100, CPUTime: 50},       // usage 0.5
		{Submit: 0, End: 100, CPUTime: 400},      // usage 4 (parallel)
		{Submit: 10, End: 10, CPUTime: 99999999}, // zero length: skipped
	}
	got := CPUUsage(jobs)
	if len(got) != 2 || got[0] != 0.5 || got[1] != 4 {
		t.Fatalf("cpu usage %v", got)
	}
}

func TestMemoryUsageMB(t *testing.T) {
	jobs := []trace.Job{{MemAvg: 0.01}, {MemAvg: 0.05}}
	got32 := MemoryUsageMB(jobs, 32)
	approx(t, got32[0], 0.01*32*1024, 1e-9, "32GB scaling")
	got64 := MemoryUsageMB(jobs, 64)
	approx(t, got64[1], 0.05*64*1024, 1e-9, "64GB scaling")
	grid := []trace.Job{{MemAvg: 512}}
	raw := MemoryUsageMB(grid, 0)
	approx(t, raw[0], 512, 0, "grid passthrough")
}

func TestProcessorCounts(t *testing.T) {
	jobs := []trace.Job{{NumCPUs: 1}, {NumCPUs: 64}}
	got := ProcessorCounts(jobs)
	if len(got) != 2 || got[0] != 1 || got[1] != 64 {
		t.Fatalf("procs %v", got)
	}
}

func TestHourOfDayProfile(t *testing.T) {
	// Two days; hour 9 busy on both days, everything else quiet.
	var jobs []trace.Job
	for day := int64(0); day < 2; day++ {
		base := day * 86400
		for i := 0; i < 10; i++ {
			jobs = append(jobs, trace.Job{Submit: base + 9*3600 + int64(i)})
		}
		jobs = append(jobs, trace.Job{Submit: base + 3*3600})
	}
	profile, ptm := HourOfDayProfile(jobs, 2*86400)
	if profile[9] != 10 {
		t.Fatalf("hour 9 mean %v, want 10", profile[9])
	}
	if profile[3] != 1 {
		t.Fatalf("hour 3 mean %v, want 1", profile[3])
	}
	if ptm < 10 {
		t.Fatalf("peak-to-mean %v, want strongly peaked", ptm)
	}
	// Flat stream: peak-to-mean near 1.
	var flat []trace.Job
	for h := int64(0); h < 48; h++ {
		for i := 0; i < 5; i++ {
			flat = append(flat, trace.Job{Submit: h*3600 + int64(i*100)})
		}
	}
	_, flatPTM := HourOfDayProfile(flat, 2*86400)
	if flatPTM > 1.05 {
		t.Fatalf("flat peak-to-mean %v", flatPTM)
	}
	if _, z := HourOfDayProfile(nil, 86400); z != 0 {
		t.Fatalf("empty profile peak-to-mean %v", z)
	}
}

// Integration: the paper's headline Section III comparisons hold on
// synthetic data end to end.
func TestGoogleVsGridHeadlines(t *testing.T) {
	horizon := int64(4 * 86400)
	gcfg := synth.DefaultGoogleConfig(horizon)
	gcfg.JobsPerHour = 80
	gcfg.Arrival.PerHour = 80
	gcfg.MaxTasksPerJob = 300
	gTasks := synth.GenerateGoogleTasks(gcfg, rng.New(1))
	gJobs := synth.GoogleJobsFromTasks(gTasks)
	agJobs := synth.AuverGrid.Generate(horizon, rng.New(2))

	// Fig 3: Google jobs shorter.
	gCDF := JobLengthCDF(gJobs)
	agCDF := JobLengthCDF(agJobs)
	if gCDF.Eval(1000) <= agCDF.Eval(1000) {
		t.Errorf("Google P(len<1000)=%v should exceed AuverGrid's %v",
			gCDF.Eval(1000), agCDF.Eval(1000))
	}

	// Fig 4: Google task lengths more Pareto than AuverGrid's.
	gMC := SummarizeMassCount(TaskLengths(gTasks))
	agMC := SummarizeMassCount(JobLengths(agJobs))
	if gMC.JointItems >= agMC.JointItems {
		t.Errorf("Google joint items %v should be below AuverGrid's %v",
			gMC.JointItems, agMC.JointItems)
	}

	// Fig 5 / Table I: Google submits more often and more steadily.
	gRates := SubmissionRates(gJobs, horizon)
	agRates := SubmissionRates(agJobs, horizon)
	if gRates.Avg <= agRates.Avg {
		t.Errorf("Google rate %v should exceed AuverGrid %v", gRates.Avg, agRates.Avg)
	}
	if gRates.Fairness <= agRates.Fairness {
		t.Errorf("Google fairness %v should exceed AuverGrid %v",
			gRates.Fairness, agRates.Fairness)
	}
	gInt := SubmissionIntervals(gJobs)
	agInt := SubmissionIntervals(agJobs)
	if len(gInt) == 0 || len(agInt) == 0 {
		t.Fatal("no intervals")
	}

	// Fig 6: Google per-job CPU below Grid's (single processor).
	gCPU := CPUUsage(gJobs)
	agCPU := CPUUsage(agJobs)
	gMed := quantile(gCPU, 0.5)
	agMed := quantile(agCPU, 0.5)
	if gMed >= agMed {
		t.Errorf("Google median CPU %v should be below AuverGrid %v", gMed, agMed)
	}
}

func quantile(xs []float64, p float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[int(p*float64(len(cp)-1))]
}
