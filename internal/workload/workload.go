// Package workload implements the Section III work-load analyses of
// the paper: priority histograms (Fig 2), job-length CDFs (Fig 3),
// task-length mass-count disparity (Fig 4), submission-interval CDFs
// (Fig 5), per-hour submission statistics with Jain's fairness index
// (Table I) and per-job CPU/memory utilisation (Fig 6).
package workload

import (
	"cmp"
	"math"
	"slices"

	"repro/internal/stats"
	"repro/internal/trace"
)

// PriorityHistogram counts jobs and tasks per priority level 1-12
// (Fig 2). Tasks may be nil when only job counts are needed.
func PriorityHistogram(jobs []trace.Job, tasks []trace.Task) (jobCounts, taskCounts [trace.MaxPriority + 1]int) {
	for _, j := range jobs {
		if j.Priority >= trace.MinPriority && j.Priority <= trace.MaxPriority {
			jobCounts[j.Priority]++
		}
	}
	for _, t := range tasks {
		if t.Priority >= trace.MinPriority && t.Priority <= trace.MaxPriority {
			taskCounts[t.Priority]++
		}
	}
	return jobCounts, taskCounts
}

// GroupShares returns the fraction of jobs in each of the paper's
// three priority groups.
func GroupShares(jobs []trace.Job) [3]float64 {
	var counts [3]int
	total := 0
	for _, j := range jobs {
		if j.Priority >= trace.MinPriority && j.Priority <= trace.MaxPriority {
			counts[trace.GroupOf(j.Priority)]++
			total++
		}
	}
	var out [3]float64
	if total == 0 {
		return out
	}
	for g, c := range counts {
		out[g] = float64(c) / float64(total)
	}
	return out
}

// JobLengths extracts the job lengths in seconds (completion minus
// submission, the paper's definition).
func JobLengths(jobs []trace.Job) []float64 {
	out := make([]float64, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, float64(j.Length()))
	}
	return out
}

// JobLengthCDF returns the ECDF of job lengths (Fig 3).
func JobLengthCDF(jobs []trace.Job) *stats.ECDF {
	return stats.NewECDF(JobLengths(jobs))
}

// TaskLengths extracts task durations in seconds. For Grid traces,
// where the job is the unit of execution, pass jobs to JobLengths
// instead.
func TaskLengths(tasks []trace.Task) []float64 {
	out := make([]float64, 0, len(tasks))
	for _, t := range tasks {
		out = append(out, float64(t.Duration))
	}
	return out
}

// MassCountSummary condenses a mass-count analysis into the numbers
// the paper prints on its figures.
type MassCountSummary struct {
	JointItems float64 // X of the X/Y joint ratio (small side)
	JointMass  float64 // Y of the X/Y joint ratio
	MMDistance float64 // in the units of the input values
	Mean, Max  float64
	N          int
}

// SummarizeMassCount computes the joint ratio and mm-distance of the
// given sizes (Fig 4, Fig 9, Fig 11, Fig 12, Tables II-III). Returns
// a zero summary for empty or degenerate input.
func SummarizeMassCount(values []float64) MassCountSummary {
	return SummarizeMassCountSorted(values, stats.NewSorted(values))
}

// SummarizeMassCountSorted is SummarizeMassCount for callers that
// already hold a sorted view of values, avoiding a re-sort. The raw
// slice is still consulted for the mean, whose floating-point sum is
// order-sensitive, so the result is bit-identical to the unsorted
// entry point.
func SummarizeMassCountSorted(values []float64, sv *stats.Sorted) MassCountSummary {
	mc := stats.NewMassCountSorted(sv)
	if mc == nil {
		return MassCountSummary{}
	}
	items, mass := mc.JointRatio()
	return MassCountSummary{
		JointItems: items,
		JointMass:  mass,
		MMDistance: mc.MMDistance(),
		Mean:       stats.Mean(values),
		Max:        sv.Max(),
		N:          len(values),
	}
}

// SubmissionIntervals returns the gaps in seconds between consecutive
// job submissions (Fig 5). Jobs must be sorted by submission time;
// unsorted input is handled by sorting a copy of the submit times.
func SubmissionIntervals(jobs []trace.Job) []float64 {
	if len(jobs) < 2 {
		return nil
	}
	times := make([]int64, len(jobs))
	for i, j := range jobs {
		times[i] = j.Submit
	}
	slices.Sort(times)
	out := make([]float64, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		out = append(out, float64(times[i]-times[i-1]))
	}
	return out
}

// HourlyCounts buckets submissions into hours over [0, horizon).
func HourlyCounts(jobs []trace.Job, horizon int64) []float64 {
	n := int(horizon / 3600)
	if n <= 0 {
		n = 1
	}
	counts := make([]float64, n)
	for _, j := range jobs {
		if j.Submit < 0 {
			continue // Go integer division truncates toward zero
		}
		if h := int(j.Submit / 3600); h < n {
			counts[h]++
		}
	}
	return counts
}

// RateStats is one row of Table I.
type RateStats struct {
	Max, Avg, Min float64
	Fairness      float64 // Jain's index of the hourly counts
}

// SubmissionRates computes the Table I statistics of a job stream.
func SubmissionRates(jobs []trace.Job, horizon int64) RateStats {
	counts := HourlyCounts(jobs, horizon)
	return RateStats{
		Max:      stats.Max(counts),
		Avg:      stats.Mean(counts),
		Min:      stats.Min(counts),
		Fairness: stats.JainFairness(counts),
	}
}

// CPUUsage computes Formula (4) for each job: cumulative execution
// time over all processors divided by wall-clock time. Jobs with zero
// length are skipped.
func CPUUsage(jobs []trace.Job) []float64 {
	out := make([]float64, 0, len(jobs))
	for _, j := range jobs {
		if l := j.Length(); l > 0 {
			out = append(out, j.CPUTime/float64(l))
		}
	}
	return out
}

// MemoryUsageMB returns per-job memory in megabytes. Google traces
// store normalised values; maxCapGB rescales them against an assumed
// largest-machine capacity (the paper tries 32 GB and 64 GB). Grid
// traces already carry megabyte-scale values, so maxCapGB <= 0 leaves
// them untouched.
func MemoryUsageMB(jobs []trace.Job, maxCapGB float64) []float64 {
	scale := 1.0
	if maxCapGB > 0 {
		scale = maxCapGB * 1024
	}
	out := make([]float64, 0, len(jobs))
	for _, j := range jobs {
		if !math.IsNaN(j.MemAvg) {
			out = append(out, j.MemAvg*scale)
		}
	}
	return out
}

// HourOfDayProfile returns the mean submissions for each hour of the
// day (0-23) plus the peak-to-mean ratio — the direct view of the
// diurnal pattern the paper blames for low Grid fairness.
func HourOfDayProfile(jobs []trace.Job, horizon int64) (profile [24]float64, peakToMean float64) {
	counts := HourlyCounts(jobs, horizon)
	var sums [24]float64
	var days [24]int
	for h, c := range counts {
		sums[h%24] += c
		days[h%24]++
	}
	var total float64
	for h := 0; h < 24; h++ {
		if days[h] > 0 {
			profile[h] = sums[h] / float64(days[h])
		}
		total += profile[h]
	}
	if total == 0 {
		return profile, 0
	}
	mean := total / 24
	peak := profile[0]
	for _, v := range profile[1:] {
		if v > peak {
			peak = v
		}
	}
	return profile, peak / mean
}

// UserShares summarises the user population behind a job stream:
// the number of distinct users and the fraction of jobs submitted by
// the k heaviest users. The Google trace attributes each job to one
// user, with a few heavy (programmatic) submitters dominating.
func UserShares(jobs []trace.Job, k int) (users int, topShare float64) {
	counts := make(map[int]int)
	total := 0
	for _, j := range jobs {
		if j.User == 0 {
			continue
		}
		counts[j.User]++
		total++
	}
	if total == 0 {
		return 0, 0
	}
	perUser := make([]int, 0, len(counts))
	for _, c := range counts {
		perUser = append(perUser, c)
	}
	slices.SortFunc(perUser, func(a, b int) int { return cmp.Compare(b, a) })
	if k > len(perUser) {
		k = len(perUser)
	}
	top := 0
	for _, c := range perUser[:k] {
		top += c
	}
	return len(counts), float64(top) / float64(total)
}

// ProcessorCounts returns the parallel width of each job (Fig 6
// discussion: Google jobs mostly hold one processor, Grid jobs many).
func ProcessorCounts(jobs []trace.Job) []float64 {
	out := make([]float64, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.NumCPUs)
	}
	return out
}
