package hostload

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// fakeMachine builds a MachineSeries with prescribed group signals.
func fakeMachine(id int, cpuCap, memCap float64, step int64, cpuLow, cpuMid, cpuHigh []float64) *cluster.MachineSeries {
	mk := func(vs []float64) *timeseries.Series {
		return &timeseries.Series{Start: 0, Step: step, Values: append([]float64(nil), vs...)}
	}
	zeros := make([]float64, len(cpuLow))
	ms := &cluster.MachineSeries{
		Machine: trace.Machine{ID: id, CPU: cpuCap, Memory: memCap, PageCache: 1},
	}
	ms.CPUByGroup[0] = mk(cpuLow)
	ms.CPUByGroup[1] = mk(cpuMid)
	ms.CPUByGroup[2] = mk(cpuHigh)
	for g := 0; g < 3; g++ {
		ms.MemByGroup[g] = mk(zeros)
	}
	ms.MemAssigned = mk(zeros)
	ms.PageCache = mk(zeros)
	ms.Running = mk(zeros)
	return ms
}

func TestSeriesOfGroups(t *testing.T) {
	ms := fakeMachine(0, 1, 1, 300,
		[]float64{0.1, 0.1}, []float64{0.2, 0.2}, []float64{0.3, 0.3})
	all := SeriesOf(ms, CPUUsage, trace.LowPriority)
	if math.Abs(all.Values[0]-0.6) > 1e-12 {
		t.Fatalf("all-groups CPU %v", all.Values[0])
	}
	midHigh := SeriesOf(ms, CPUUsage, trace.MiddlePriority)
	if math.Abs(midHigh.Values[0]-0.5) > 1e-12 {
		t.Fatalf("mid+high CPU %v", midHigh.Values[0])
	}
	high := SeriesOf(ms, CPUUsage, trace.HighPriority)
	if math.Abs(high.Values[0]-0.3) > 1e-12 {
		t.Fatalf("high CPU %v", high.Values[0])
	}
}

func TestCapacityAndRelative(t *testing.T) {
	ms := fakeMachine(0, 0.5, 0.25, 300,
		[]float64{0.25, 0.5}, []float64{0, 0}, []float64{0, 0})
	if Capacity(ms.Machine, CPUUsage) != 0.5 || Capacity(ms.Machine, MemUsed) != 0.25 ||
		Capacity(ms.Machine, MemAssigned) != 0.25 || Capacity(ms.Machine, PageCache) != 1 {
		t.Fatal("capacity lookup wrong")
	}
	rel := RelativeSeries(ms, CPUUsage, trace.LowPriority)
	if rel.Values[0] != 0.5 || rel.Values[1] != 1 {
		t.Fatalf("relative series %v", rel.Values)
	}
}

func TestAttributeNames(t *testing.T) {
	if CPUUsage.String() != "cpu" || MemUsed.String() != "memory-used" ||
		MemAssigned.String() != "memory-assigned" || PageCache.String() != "page-cache" {
		t.Fatal("attribute names wrong")
	}
}

func TestMaxLoadsByClass(t *testing.T) {
	a := fakeMachine(0, 0.5, 1, 300, []float64{0.1, 0.45}, []float64{0, 0}, []float64{0, 0})
	b := fakeMachine(1, 0.5, 1, 300, []float64{0.2, 0.3}, []float64{0, 0}, []float64{0, 0})
	c := fakeMachine(2, 1.0, 1, 300, []float64{0.9, 0.2}, []float64{0, 0}, []float64{0, 0})
	byClass := MaxLoadsByClass([]*cluster.MachineSeries{a, b, c}, CPUUsage)
	if len(byClass[0.5]) != 2 || len(byClass[1.0]) != 1 {
		t.Fatalf("class grouping %v", byClass)
	}
	if byClass[0.5][0] != 0.45 || byClass[1.0][0] != 0.9 {
		t.Fatalf("maxima %v", byClass)
	}
}

func TestAtCapacityFraction(t *testing.T) {
	a := fakeMachine(0, 0.5, 1, 300, []float64{0.5}, []float64{0}, []float64{0})
	b := fakeMachine(1, 0.5, 1, 300, []float64{0.2}, []float64{0}, []float64{0})
	frac := AtCapacityFraction([]*cluster.MachineSeries{a, b}, CPUUsage, 0.99)
	if frac[0.5] != 0.5 {
		t.Fatalf("at-capacity fraction %v", frac)
	}
}

func TestMachineEventsAndQueueState(t *testing.T) {
	ms := fakeMachine(3, 1, 1, 300, make([]float64, 10), make([]float64, 10), make([]float64, 10))
	events := []trace.TaskEvent{
		{Time: 100, JobID: 1, Machine: 3, Type: trace.EventSchedule},
		{Time: 700, JobID: 1, Machine: 3, Type: trace.EventFinish},
		{Time: 900, JobID: 2, Machine: 3, Type: trace.EventFail},
		{Time: 500, JobID: 9, Machine: 8, Type: trace.EventFinish}, // other machine
	}
	me := MachineEvents(events, 3)
	if len(me) != 3 {
		t.Fatalf("machine events %v", me)
	}
	if me[0].Time != 100 {
		t.Fatal("events not sorted")
	}
	qs := MachineQueueState(ms, events)
	// Finished becomes 1 from window 2 (t=700) onward.
	if qs.Finished.Values[1] != 0 || qs.Finished.Values[2] != 1 || qs.Finished.Values[9] != 1 {
		t.Fatalf("finished cumulative %v", qs.Finished.Values)
	}
	if qs.Abnormal.Values[9] != 1 {
		t.Fatalf("abnormal cumulative %v", qs.Abnormal.Values)
	}
}

func TestRunningStateDurations(t *testing.T) {
	run := []float64{5, 5, 15, 15, 15, 25, 45, 45, 60}
	ms := fakeMachine(0, 1, 1, 300, make([]float64, 9), make([]float64, 9), make([]float64, 9))
	ms.Running = &timeseries.Series{Start: 0, Step: 300, Values: run}
	durs := RunningStateDurations([]*cluster.MachineSeries{ms}, DefaultCountIntervals())
	iv := DefaultCountIntervals()
	if d := durs[iv[0]]; len(d) != 1 || d[0] != 600 {
		t.Fatalf("[0,9] durations %v", d)
	}
	if d := durs[iv[1]]; len(d) != 1 || d[0] != 900 {
		t.Fatalf("[10,19] durations %v", d)
	}
	if d := durs[iv[2]]; len(d) != 1 || d[0] != 300 {
		t.Fatalf("[20,29] durations %v", d)
	}
	if d := durs[iv[4]]; len(d) != 1 || d[0] != 600 {
		t.Fatalf("[40,49] durations %v", d)
	}
	if d := durs[iv[5]]; len(d) != 1 || d[0] != 300 {
		t.Fatalf("[50,inf) durations %v", d)
	}
}

func TestLevelTraceAndDurations(t *testing.T) {
	ms := fakeMachine(0, 0.5, 1, 300,
		[]float64{0.05, 0.05, 0.25, 0.25, 0.45}, // relative: 0.1,0.1,0.5,0.5,0.9
		[]float64{0, 0, 0, 0, 0}, []float64{0, 0, 0, 0, 0})
	levels := LevelTrace(ms, CPUUsage, trace.LowPriority)
	want := []int{0, 0, 2, 2, 4}
	for i, l := range levels {
		if l != want[i] {
			t.Fatalf("levels %v, want %v", levels, want)
		}
	}
	durs := LevelDurations([]*cluster.MachineSeries{ms}, CPUUsage, trace.LowPriority)
	if len(durs[0]) != 1 || durs[0][0] != 600 {
		t.Fatalf("level 0 durations %v", durs[0])
	}
	if len(durs[2]) != 1 || durs[2][0] != 600 {
		t.Fatalf("level 2 durations %v", durs[2])
	}
	if len(durs[4]) != 1 || durs[4][0] != 300 {
		t.Fatalf("level 4 durations %v", durs[4])
	}
}

func TestUsageSamplesAndMean(t *testing.T) {
	ms := fakeMachine(0, 0.5, 1, 300,
		[]float64{0.1, 0.4}, []float64{0, 0}, []float64{0, 0})
	samples := UsageSamples([]*cluster.MachineSeries{ms}, CPUUsage, trace.LowPriority)
	if len(samples) != 2 || samples[0] != 20 || samples[1] != 80 {
		t.Fatalf("usage samples %v", samples)
	}
	mean := MeanRelativeUsage([]*cluster.MachineSeries{ms}, CPUUsage, trace.LowPriority)
	if math.Abs(mean-0.5) > 1e-12 {
		t.Fatalf("mean usage %v", mean)
	}
}

func TestNoiseComparisonGoogleVsGrid(t *testing.T) {
	// End-to-end: Google noise from the simulator must dwarf the
	// synthetic Grid host's (the paper's ~20x observation).
	machines := synth.GoogleMachines(20, rng.New(1))
	horizon := int64(2 * 86400)
	cfg := cluster.DefaultConfig(machines, horizon)
	gcfg := synth.ScaledGoogleConfig(len(machines), horizon)
	tasks := synth.GenerateGoogleTasks(gcfg, rng.New(2))
	res, err := cluster.Simulate(cfg, tasks, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	gNoise := Noise(res.Machines, CPUUsage, 2)
	if gNoise.N == 0 || gNoise.Mean <= 0 {
		t.Fatalf("google noise %+v", gNoise)
	}

	var gridCPU []*timeseries.Series
	for i := 0; i < 20; i++ {
		cpu, _ := synth.GridHostSeries(synth.DefaultGridHost("AuverGrid"), horizon, rng.New(uint64(10+i)))
		gridCPU = append(gridCPU, cpu)
	}
	agNoise := SeriesNoise(gridCPU, 2)
	if agNoise.N != 20 {
		t.Fatalf("grid noise %+v", agNoise)
	}
	ratio := gNoise.Mean / agNoise.Mean
	if ratio < 5 {
		t.Errorf("noise ratio %v, want Google >> Grid (paper: ~20x)", ratio)
	}

	// Autocorrelation: grid hosts are stable, Google hosts are not.
	gAC := MeanAutocorrelation(res.Machines, CPUUsage, 1)
	agAC := MeanSeriesAutocorrelation(gridCPU, 1)
	if agAC < 0.8 {
		t.Errorf("grid autocorrelation %v, want high", agAC)
	}
	if gAC >= agAC {
		t.Errorf("google autocorrelation %v should be below grid %v", gAC, agAC)
	}
}

// TestScansDeterministicAcrossRuns re-runs every parallelised
// per-machine scan on the same simulated park and requires identical
// output each time: the index-sharded workers must merge in machine
// order no matter how the scheduler interleaves them.
func TestScansDeterministicAcrossRuns(t *testing.T) {
	machines := synth.GoogleMachines(16, rng.New(7))
	horizon := int64(86400)
	cfg := cluster.DefaultConfig(machines, horizon)
	gcfg := synth.ScaledGoogleConfig(len(machines), horizon)
	tasks := synth.GenerateGoogleTasks(gcfg, rng.New(8))
	res, err := cluster.Simulate(cfg, tasks, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}

	type snapshot struct {
		maxLoads  map[float64][]float64
		runDurs   map[CountInterval][]float64
		levelDurs [UsageLevels][]float64
		samples   []float64
		noise     NoiseStats
		autocorr  float64
		cpuMem    float64
		meanUsage float64
	}
	take := func() snapshot {
		return snapshot{
			maxLoads:  MaxLoadsByClass(res.Machines, CPUUsage),
			runDurs:   RunningStateDurations(res.Machines, DefaultCountIntervals()),
			levelDurs: LevelDurations(res.Machines, CPUUsage, trace.LowPriority),
			samples:   UsageSamples(res.Machines, MemUsed, trace.LowPriority),
			noise:     Noise(res.Machines, CPUUsage, 2),
			autocorr:  MeanAutocorrelation(res.Machines, CPUUsage, 1),
			cpuMem:    CPUMemCorrelation(res.Machines),
			meanUsage: MeanRelativeUsage(res.Machines, CPUUsage, trace.LowPriority),
		}
	}
	first := take()
	for i := 0; i < 3; i++ {
		if again := take(); !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d produced different results:\nfirst: %+v\nagain: %+v", i+1, first, again)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	if n := Noise(nil, CPUUsage, 2); n.N != 0 {
		t.Fatal("empty noise should be zero")
	}
	if n := SeriesNoise(nil, 2); n.N != 0 {
		t.Fatal("empty series noise should be zero")
	}
	if !math.IsNaN(MeanRelativeUsage(nil, CPUUsage, trace.LowPriority)) {
		t.Fatal("empty mean usage should be NaN")
	}
	if got := MaxLoadsByClass(nil, CPUUsage); len(got) != 0 {
		t.Fatal("empty max loads should be empty")
	}
}

// TestZeroCapacityMachine is the end-to-end regression for the
// zero-capacity division: a machine with CPU capacity 0 used to yield
// an all-Inf/NaN relative series that poisoned MeanRelativeUsage (NaN
// for the whole population) and leaked Inf-clamped samples into
// UsageSamples. Now its relative series is all-NaN and every
// population kernel skips it.
func TestZeroCapacityMachine(t *testing.T) {
	good := fakeMachine(0, 0.5, 1, 300, []float64{0.1, 0.4}, []float64{0, 0}, []float64{0, 0})
	dead := fakeMachine(1, 0, 1, 300, []float64{0.2, 0.3}, []float64{0, 0}, []float64{0, 0})
	pop := []*cluster.MachineSeries{good, dead}

	rel := RelativeSeries(dead, CPUUsage, trace.LowPriority)
	for i, v := range rel.Values {
		if !math.IsNaN(v) {
			t.Fatalf("zero-capacity relative sample %d = %v, want NaN", i, v)
		}
	}

	mean := MeanRelativeUsage(pop, CPUUsage, trace.LowPriority)
	if math.IsNaN(mean) || math.Abs(mean-0.5) > 1e-12 {
		t.Errorf("MeanRelativeUsage = %v, want 0.5 — zero-capacity machine poisoned the mean", mean)
	}

	samples := UsageSamples(pop, CPUUsage, trace.LowPriority)
	if len(samples) != 2 || samples[0] != 20 || samples[1] != 80 {
		t.Errorf("UsageSamples = %v, want the good machine's [20 80] only", samples)
	}

	// Level durations must not credit the dead machine with idle time.
	durs := LevelDurations(pop, CPUUsage, trace.LowPriority)
	var total float64
	for _, ds := range durs {
		for _, d := range ds {
			total += d
		}
	}
	if total != 600 {
		t.Errorf("LevelDurations total = %v s, want 600 (good machine only)", total)
	}
}

// TestUsageSketchMatchesExactUsage: the streaming UsageSketch must
// agree with the materializing UsageSamples — identical count and
// mean, quantiles within the bin-width bound — including in the
// presence of a zero-capacity machine (counted as Rejected).
func TestUsageSketchMatchesExactUsage(t *testing.T) {
	s := rng.New(11)
	var pop []*cluster.MachineSeries
	for i := 0; i < 30; i++ {
		vals := make([]float64, 200)
		for j := range vals {
			vals[j] = 0.5 * s.Float64()
		}
		pop = append(pop, fakeMachine(i, 0.5, 1, 300, vals, make([]float64, 200), make([]float64, 200)))
	}
	pop = append(pop, fakeMachine(99, 0, 1, 300, make([]float64, 200), make([]float64, 200), make([]float64, 200)))

	exact := UsageSamples(pop, CPUUsage, trace.LowPriority)
	sk, err := UsageSketch(pop, CPUUsage, trace.LowPriority, 200)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Count() != len(exact) {
		t.Fatalf("sketch count %d != exact %d", sk.Count(), len(exact))
	}
	if sk.Rejected() != 200 {
		t.Errorf("Rejected = %d, want 200 (the zero-capacity machine's samples)", sk.Rejected())
	}
	var sum float64
	for _, v := range exact {
		sum += v
	}
	if math.Abs(sk.Mean()-sum/float64(len(exact))) > 1e-9 {
		t.Errorf("sketch mean %v != exact %v", sk.Mean(), sum/float64(len(exact)))
	}
	sorted := append([]float64(nil), exact...)
	sort.Float64s(sorted)
	w := sk.BinWidth()
	for _, p := range []float64{0.1, 0.5, 0.9} {
		r := int(math.Ceil(p * float64(len(sorted))))
		if r < 1 {
			r = 1
		}
		got, want := sk.Quantile(p), sorted[r-1]
		if math.Abs(got-want) > w {
			t.Errorf("Quantile(%g) = %v, exact %v, err beyond bin width %v", p, got, want, w)
		}
	}

	// Determinism: a second pass over the same park is bit-identical.
	sk2, err := UsageSketch(pop, CPUUsage, trace.LowPriority, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sk.BinCounts(), sk2.BinCounts()) || sk.Sum() != sk2.Sum() {
		t.Error("UsageSketch not deterministic across runs")
	}
}

// benchPark builds a synthetic machine park for the streaming
// benchmarks: nMachines hosts with nSamples usage samples each.
func benchPark(nMachines, nSamples int) []*cluster.MachineSeries {
	s := rng.New(5)
	pop := make([]*cluster.MachineSeries, nMachines)
	zeros := make([]float64, nSamples)
	for i := range pop {
		vals := make([]float64, nSamples)
		for j := range vals {
			vals[j] = 0.5 * s.Float64()
		}
		pop[i] = fakeMachine(i, 0.5, 1, 300, vals, zeros, zeros)
	}
	return pop
}

// BenchmarkUsageSamplesExact materializes the full population slice —
// the O(population) baseline the sketch replaces.
func BenchmarkUsageSamplesExact(b *testing.B) {
	pop := benchPark(64, 288)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samples := UsageSamples(pop, CPUUsage, trace.LowPriority)
		_ = stats.NewSorted(samples)
	}
}

// BenchmarkUsageSamplesStreaming runs the same aggregation through the
// O(bins)-per-machine sketch path; allocated bytes per op is the
// headline (peak-footprint proxy) metric.
func BenchmarkUsageSamplesStreaming(b *testing.B) {
	pop := benchPark(64, 288)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UsageSketch(pop, CPUUsage, trace.LowPriority, 200); err != nil {
			b.Fatal(err)
		}
	}
}
