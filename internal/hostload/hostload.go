// Package hostload implements the Section IV host-load analyses of
// the paper: per-machine maximum-load distributions by capacity class
// (Fig 7), queue states and task events (Fig 8), mass-count disparity
// of unchanged running-queue-state durations (Fig 9), usage-level
// traces (Fig 10), unchanged usage-level duration statistics (Tables
// II-III), usage mass-count (Figs 11-12) and the Google-vs-Grid
// host-load comparison with noise and autocorrelation (Fig 13).
package hostload

import (
	"cmp"
	"math"
	"slices"

	"repro/internal/cluster"
	"repro/internal/par"
	"repro/internal/stats"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// The per-machine scans below fan out over an index-sharded worker
// pool (par.Map) and merge the per-machine partials serially in
// machine order, so their output — including floating-point
// accumulation order — is byte-identical to a plain loop over the
// machines.

// Attribute selects which host signal an analysis reads.
type Attribute int

// Host-load attributes, matching Fig 7's four panels.
const (
	CPUUsage Attribute = iota
	MemUsed
	MemAssigned
	PageCache
)

// String names the attribute.
func (a Attribute) String() string {
	switch a {
	case CPUUsage:
		return "cpu"
	case MemUsed:
		return "memory-used"
	case MemAssigned:
		return "memory-assigned"
	case PageCache:
		return "page-cache"
	}
	return "attribute(?)"
}

// SeriesOf returns the machine's series for the attribute, restricted
// to priority groups >= minGroup (LowPriority selects all tasks).
// MemAssigned and PageCache are not split by priority, so minGroup is
// ignored for them.
func SeriesOf(ms *cluster.MachineSeries, attr Attribute, minGroup trace.PriorityGroup) *timeseries.Series {
	switch attr {
	case CPUUsage:
		return ms.CPUGroups(minGroup)
	case MemUsed:
		return ms.MemGroups(minGroup)
	case MemAssigned:
		return ms.MemAssigned
	case PageCache:
		return ms.PageCache
	}
	return nil
}

// Capacity returns the machine's capacity for the attribute.
func Capacity(m trace.Machine, attr Attribute) float64 {
	switch attr {
	case CPUUsage:
		return m.CPU
	case MemUsed, MemAssigned:
		return m.Memory
	case PageCache:
		return m.PageCache
	}
	return math.NaN()
}

// RelativeSeries returns the series divided by the machine's capacity,
// i.e. the paper's "relative usage level" in [0, 1].
//
// A machine whose capacity for the attribute is zero, negative or NaN
// has no meaningful relative level: every sample is emitted as NaN
// rather than letting v/0 leak ±Inf (or 0/0 leak incidental NaN) into
// whole-population aggregates. Population consumers — UsageSamples,
// UsageSketch, MeanRelativeUsage, the level segmentations — filter
// such samples explicitly.
func RelativeSeries(ms *cluster.MachineSeries, attr Attribute, minGroup trace.PriorityGroup) *timeseries.Series {
	s := SeriesOf(ms, attr, minGroup)
	c := Capacity(ms.Machine, attr)
	out := &timeseries.Series{Start: s.Start, Step: s.Step, Values: make([]float64, len(s.Values))}
	if !(c > 0) {
		for i := range out.Values {
			out.Values[i] = math.NaN()
		}
		return out
	}
	for i, v := range s.Values {
		out.Values[i] = v / c
	}
	return out
}

// ---------------------------------------------------------------------------
// Fig 7: maximum load by capacity class

// MaxLoadsByClass groups machines by their capacity for the attribute
// and collects each machine's maximum observed load (in normalised
// units, NOT divided by capacity — the paper plots absolute normalised
// load with the capacity classes as reference lines).
func MaxLoadsByClass(machines []*cluster.MachineSeries, attr Attribute) map[float64][]float64 {
	type classMax struct {
		cap, max float64
		ok       bool
	}
	maxes := par.Map(len(machines), 0, func(i int) classMax {
		ms := machines[i]
		s := SeriesOf(ms, attr, trace.LowPriority)
		if s == nil || s.Len() == 0 {
			return classMax{}
		}
		return classMax{Capacity(ms.Machine, attr), stats.Max(s.Values), true}
	})
	out := make(map[float64][]float64)
	for _, m := range maxes {
		if m.ok {
			out[m.cap] = append(out[m.cap], m.max)
		}
	}
	return out
}

// AtCapacityFraction returns, per capacity class, the fraction of
// machines whose maximum load reached at least frac of capacity
// (the paper: ">80%/70% of low/middle-CPU hosts' maxima equal their
// capacities").
func AtCapacityFraction(machines []*cluster.MachineSeries, attr Attribute, frac float64) map[float64]float64 {
	byClass := MaxLoadsByClass(machines, attr)
	out := make(map[float64]float64, len(byClass))
	for cap, maxima := range byClass {
		hit := 0
		for _, m := range maxima {
			if m >= frac*cap {
				hit++
			}
		}
		out[cap] = float64(hit) / float64(len(maxima))
	}
	return out
}

// ---------------------------------------------------------------------------
// Fig 8: task events and queue state on one machine

// MachineEvents filters the event stream to one machine, returning
// events ordered by time (Fig 8a).
func MachineEvents(events []trace.TaskEvent, machineID int) []trace.TaskEvent {
	var out []trace.TaskEvent
	for _, e := range events {
		if e.Machine == machineID {
			out = append(out, e)
		}
	}
	// Stable: the simulator emits same-time events for one machine in a
	// deterministic order, and an unstable sort could reorder them
	// differently across Go releases.
	slices.SortStableFunc(out, func(a, b trace.TaskEvent) int { return cmp.Compare(a.Time, b.Time) })
	return out
}

// QueueState is the Fig 8b view of one machine: the running count and
// the cumulative finished/abnormal completions over time.
type QueueState struct {
	Running  *timeseries.Series
	Finished *timeseries.Series // cumulative FINISH count
	Abnormal *timeseries.Series // cumulative EVICT+FAIL+KILL+LOST count
}

// MachineQueueState derives the queue-state series of one machine from
// the simulator's running series and the event stream.
func MachineQueueState(ms *cluster.MachineSeries, events []trace.TaskEvent) QueueState {
	run := ms.Running
	fin := &timeseries.Series{Start: run.Start, Step: run.Step, Values: make([]float64, run.Len())}
	abn := &timeseries.Series{Start: run.Start, Step: run.Step, Values: make([]float64, run.Len())}
	for _, e := range MachineEvents(events, ms.Machine.ID) {
		if !e.Type.Terminal() {
			continue
		}
		idx := int((e.Time - run.Start) / run.Step)
		if idx < 0 {
			idx = 0
		}
		if idx >= run.Len() {
			idx = run.Len() - 1
		}
		if e.Type == trace.EventFinish {
			fin.Values[idx]++
		} else {
			abn.Values[idx]++
		}
	}
	// Cumulative sums.
	for i := 1; i < run.Len(); i++ {
		fin.Values[i] += fin.Values[i-1]
		abn.Values[i] += abn.Values[i-1]
	}
	return QueueState{Running: run, Finished: fin, Abnormal: abn}
}

// ---------------------------------------------------------------------------
// Fig 9: unchanged running-queue-state durations

// CountInterval is one of the paper's running-count bins ([0,9],
// [10,19], ... [50,inf)).
type CountInterval struct{ Lo, Hi int }

// DefaultCountIntervals returns the six bins of Section IV.B.1.
func DefaultCountIntervals() []CountInterval {
	return []CountInterval{
		{0, 9}, {10, 19}, {20, 29}, {30, 39}, {40, 49}, {50, math.MaxInt32},
	}
}

// RunningStateDurations collects, across all machines, the durations
// (seconds) of maximal runs during which the (rounded) running-task
// count stays inside each interval.
func RunningStateDurations(machines []*cluster.MachineSeries, intervals []CountInterval) map[CountInterval][]float64 {
	out := make(map[CountInterval][]float64, len(intervals))
	binOf := func(count int) int {
		for bi, iv := range intervals {
			if count >= iv.Lo && count <= iv.Hi {
				return bi
			}
		}
		return -1
	}
	perMachine := par.Map(len(machines), 0, func(mi int) [][]float64 {
		run := machines[mi].Running
		if run.Len() == 0 {
			return nil
		}
		levels := make([]int, run.Len())
		for i, v := range run.Values {
			levels[i] = binOf(int(v + 0.5))
		}
		durs := make([][]float64, len(intervals))
		for _, seg := range run.SegmentsOf(levels) {
			if seg.Level < 0 {
				continue
			}
			durs[seg.Level] = append(durs[seg.Level], float64(seg.Duration))
		}
		return durs
	})
	for _, durs := range perMachine {
		for bi, ds := range durs {
			if len(ds) > 0 {
				out[intervals[bi]] = append(out[intervals[bi]], ds...)
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Fig 10 + Tables II-III: usage levels

// UsageLevels is the number of equal usage intervals the paper uses
// ([0,0.2), [0.2,0.4), ... [0.8,1]).
const UsageLevels = 5

// LevelTrace quantises one machine's relative usage into the five
// levels (the coloured rows of Fig 10).
func LevelTrace(ms *cluster.MachineSeries, attr Attribute, minGroup trace.PriorityGroup) []int {
	return RelativeSeries(ms, attr, minGroup).Quantize(UsageLevels)
}

// LevelDurations collects, across machines, the durations (seconds) of
// maximal runs during which the relative usage stays inside each of
// the five levels (the rows of Tables II and III).
func LevelDurations(machines []*cluster.MachineSeries, attr Attribute, minGroup trace.PriorityGroup) [UsageLevels][]float64 {
	perMachine := par.Map(len(machines), 0, func(i int) [UsageLevels][]float64 {
		var durs [UsageLevels][]float64
		rel := RelativeSeries(machines[i], attr, minGroup)
		for _, seg := range rel.LevelSegments(UsageLevels) {
			// Level -1 marks NaN samples (e.g. a zero-capacity machine);
			// they belong to no usage level.
			if seg.Level < 0 {
				continue
			}
			durs[seg.Level] = append(durs[seg.Level], float64(seg.Duration))
		}
		return durs
	})
	var out [UsageLevels][]float64
	for _, durs := range perMachine {
		for lvl := range durs {
			out[lvl] = append(out[lvl], durs[lvl]...)
		}
	}
	return out
}

// UsageSamples flattens all machines' relative usage samples into one
// slice of percentages in [0, 100] (Figs 11-12 x-axis). Non-finite
// samples — a zero-capacity machine's NaN relative series, or a NaN
// usage reading — are dropped rather than clamped, so one bad machine
// cannot poison the population distribution.
func UsageSamples(machines []*cluster.MachineSeries, attr Attribute, minGroup trace.PriorityGroup) []float64 {
	perMachine := par.Map(len(machines), 0, func(i int) []float64 {
		rel := RelativeSeries(machines[i], attr, minGroup)
		ps := make([]float64, 0, len(rel.Values))
		for _, v := range rel.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			p := v * 100
			if p < 0 {
				p = 0
			}
			if p > 100 {
				p = 100
			}
			ps = append(ps, p)
		}
		return ps
	})
	var n int
	for _, ps := range perMachine {
		n += len(ps)
	}
	out := make([]float64, 0, n)
	for _, ps := range perMachine {
		out = append(out, ps...)
	}
	return out
}

// UsageSketch is the streaming counterpart of UsageSamples for the
// Figs 11-12 aggregations: instead of materializing every machine's
// relative usage into one population-sized slice, each machine feeds a
// fixed-bin sketch over [0, 100] percent (O(nbins) memory per machine
// — the exactness buffers are spilled up front) and the partials merge
// in machine order, so the result is deterministic for a given park.
//
// Samples are filtered and clamped exactly as UsageSamples does:
// non-finite values (zero-capacity machines, NaN readings) are counted
// in the sketch's Rejected tally instead of binned, finite values are
// clamped into [0, 100]. Quantiles/mass-count read off the sketch
// within its documented error bound (stats.Sketch); Mean and Count are
// exact.
func UsageSketch(machines []*cluster.MachineSeries, attr Attribute, minGroup trace.PriorityGroup, nbins int) (*stats.Sketch, error) {
	merged, err := stats.NewSketch(nbins, 0, 100)
	if err != nil {
		return nil, err
	}
	merged.Spill()
	partials := par.Map(len(machines), 0, func(i int) *stats.Sketch {
		sk, _ := stats.NewSketch(nbins, 0, 100)
		sk.Spill()
		rel := RelativeSeries(machines[i], attr, minGroup)
		for _, v := range rel.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				sk.Add(math.NaN()) // counts toward Rejected
				continue
			}
			p := v * 100
			if p < 0 {
				p = 0
			}
			if p > 100 {
				p = 100
			}
			sk.Add(p)
		}
		return sk
	})
	for _, sk := range partials {
		// Geometry is identical by construction; Merge cannot fail.
		if err := merged.Merge(sk); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// ---------------------------------------------------------------------------
// Fig 13: noise and autocorrelation

// NoiseStats summarises per-machine noise measurements.
type NoiseStats struct {
	Min, Mean, Max float64
	N              int
}

// Noise measures each machine's relative-CPU noise with a mean filter
// of the given half-width and summarises across machines, mirroring
// the paper's min/mean/max noise comparison.
func Noise(machines []*cluster.MachineSeries, attr Attribute, half int) NoiseStats {
	perMachine := par.Map(len(machines), 0, func(i int) float64 {
		return RelativeSeries(machines[i], attr, trace.LowPriority).Noise(half)
	})
	vals := dropNaN(perMachine)
	if len(vals) == 0 {
		return NoiseStats{}
	}
	return NoiseStats{
		Min:  stats.Min(vals),
		Mean: stats.Mean(vals),
		Max:  stats.Max(vals),
		N:    len(vals),
	}
}

// SeriesNoise summarises noise over raw series (used for the synthetic
// Grid host models, which are already relative).
func SeriesNoise(series []*timeseries.Series, half int) NoiseStats {
	perSeries := par.Map(len(series), 0, func(i int) float64 {
		return series[i].Noise(half)
	})
	vals := dropNaN(perSeries)
	if len(vals) == 0 {
		return NoiseStats{}
	}
	return NoiseStats{
		Min:  stats.Min(vals),
		Mean: stats.Mean(vals),
		Max:  stats.Max(vals),
		N:    len(vals),
	}
}

// MeanAutocorrelation returns the mean lag-k autocorrelation of the
// machines' relative usage.
func MeanAutocorrelation(machines []*cluster.MachineSeries, attr Attribute, lag int) float64 {
	perMachine := par.Map(len(machines), 0, func(i int) float64 {
		return RelativeSeries(machines[i], attr, trace.LowPriority).Autocorrelation(lag)
	})
	return stats.Mean(dropNaN(perMachine))
}

// MeanSeriesAutocorrelation is the raw-series analogue for the Grid
// host models.
func MeanSeriesAutocorrelation(series []*timeseries.Series, lag int) float64 {
	perSeries := par.Map(len(series), 0, func(i int) float64 {
		return series[i].Autocorrelation(lag)
	})
	return stats.Mean(dropNaN(perSeries))
}

// CPUMemCorrelation returns the mean per-machine Pearson correlation
// between relative CPU and memory usage. Grid hosts, whose single job
// drives both, correlate strongly; Google hosts mix CPU-light services
// with CPU-heavy batch, decoupling the two signals.
func CPUMemCorrelation(machines []*cluster.MachineSeries) float64 {
	perMachine := par.Map(len(machines), 0, func(i int) float64 {
		cpu := RelativeSeries(machines[i], CPUUsage, trace.LowPriority)
		mem := RelativeSeries(machines[i], MemUsed, trace.LowPriority)
		return stats.Correlation(cpu.Values, mem.Values)
	})
	return stats.Mean(dropNaN(perMachine))
}

// MeanRelativeUsage returns the average relative usage across all
// machines and samples (the paper: CPU ~35% overall, ~20% for
// high-priority tasks; memory ~60% and ~50%).
func MeanRelativeUsage(machines []*cluster.MachineSeries, attr Attribute, minGroup trace.PriorityGroup) float64 {
	// The division by capacity dominates; compute the relative series in
	// parallel but accumulate serially in machine order so the sum's
	// floating-point association matches a plain loop exactly.
	rels := par.Map(len(machines), 0, func(i int) *timeseries.Series {
		return RelativeSeries(machines[i], attr, minGroup)
	})
	var sum float64
	var n int
	for _, rel := range rels {
		for _, v := range rel.Values {
			// Skip non-finite samples: a single zero-capacity machine
			// (NaN relative series) or ±Inf reading used to poison the
			// whole-population mean.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// dropNaN filters NaN entries, preserving order.
func dropNaN(xs []float64) []float64 {
	vals := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			vals = append(vals, x)
		}
	}
	return vals
}
