package cluster

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/synth"
)

// TestCalibrationProbe prints utilization/noise numbers at moderate
// scale; run with -run Probe -v to inspect.
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	machines := synth.GoogleMachines(100, rng.New(1))
	horizon := int64(4 * 86400)
	cfg := DefaultConfig(machines, horizon)
	gcfg := synth.ScaledGoogleConfig(len(machines), horizon)
	tasks := synth.GenerateGoogleTasks(gcfg, rng.New(2))
	t.Logf("tasks=%d", len(tasks))
	res, err := Simulate(cfg, tasks, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var cpuL, memL, maxCPU, maxMem, maxAssign, noise []float64
	for _, m := range res.Machines {
		cpu := m.CPU()
		mem := m.Mem()
		for i := range cpu.Values {
			cpuL = append(cpuL, cpu.Values[i]/m.Machine.CPU)
			memL = append(memL, mem.Values[i]/m.Machine.Memory)
		}
		maxCPU = append(maxCPU, stats.Max(cpu.Values)/m.Machine.CPU)
		maxMem = append(maxMem, stats.Max(mem.Values)/m.Machine.Memory)
		maxAssign = append(maxAssign, stats.Max(m.MemAssigned.Values)/m.Machine.Memory)
		noise = append(noise, cpu.Noise(2))
	}
	t.Logf("mean CPU util=%.3f mean MEM util=%.3f", stats.Mean(cpuL), stats.Mean(memL))
	t.Logf("mean max CPU=%.3f frac-at-cap=%.3f", stats.Mean(maxCPU), fracAbove(maxCPU, 0.99))
	t.Logf("mean max MEM=%.3f mean max ASSIGN=%.3f", stats.Mean(maxMem), stats.Mean(maxAssign))
	t.Logf("mean CPU noise=%.4f", stats.Mean(noise))
	t.Logf("abnormal=%.3f attempts=%d neverSched=%d preempt=%d",
		res.Stats.AbnormalFraction(), res.Stats.Attempts, res.Stats.NeverScheduled, res.Stats.Preemptions)
}

func fracAbove(xs []float64, thr float64) float64 {
	n := 0
	for _, x := range xs {
		if x >= thr {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
