package cluster

import (
	"slices"

	"repro/internal/trace"
)

// placeIndex accelerates placement over a fixed machine park so that
// scheduling is sublinear in the machine count. It keeps one
// lazily-deleted max-heap of (score, machine) entries per CPU
// capacity class:
//
//   - Entries carry the machine's version at push time; any mutation
//     of a machine's free capacity or up/down state bumps the version
//     (idxUpdate), turning older entries stale. Stale entries are
//     discarded when popped, so no O(heap) deletion ever happens.
//   - Every up machine has exactly one fresh entry, pushed with the
//     exact score scoreOf computes — the same float64 expression the
//     reference scan evaluates, so the argmax is bit-identical.
//   - The heap orders by (score desc, machine index asc), which is
//     precisely the reference scan's "first machine with the maximal
//     score" tie-break.
//   - A class heap is compacted once it exceeds a deterministic
//     multiple of the class size, so the rebuild schedule depends only
//     on the event sequence, never on wall-clock or memory pressure.
//
// Random placement bypasses the scored heaps entirely (it must
// consume the RNG exactly like the reference path) but still uses the
// per-class eligibility lists to skip machines below a task's
// MinCPUClass constraint during preemption.
type placeIndex struct {
	caps    []float64 // distinct machine CPU capacities, ascending
	classes []pclass  // one per capacity, same order as caps
	classOf []int32   // machine index -> class index
	ver     []uint32  // machine index -> current entry version
	scratch []pentry  // reused pop stash for classBest
}

type pclass struct {
	members  []int32 // machine indices in this class, ascending
	eligible []int32 // machines with capacity >= this class's, ascending
	heap     []pentry
}

// pentry is one heap entry: a machine's placement score at version
// ver. 16 bytes, kept small on purpose — compaction and sift costs
// are dominated by moving these.
type pentry struct {
	score float64
	idx   int32
	ver   uint32
}

// entryBefore orders the class heaps: best score first, ties to the
// lowest machine index (the reference scan's strict-> semantics).
func entryBefore(a, b pentry) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.idx < b.idx
}

func heapPushEntry(h *[]pentry, e pentry) {
	*h = append(*h, e)
	hs := *h
	i := len(hs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entryBefore(hs[i], hs[p]) {
			break
		}
		hs[i], hs[p] = hs[p], hs[i]
		i = p
	}
}

func heapPopEntry(h *[]pentry) pentry {
	hs := *h
	top := hs[0]
	n := len(hs) - 1
	hs[0] = hs[n]
	*h = hs[:n]
	hs = hs[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && entryBefore(hs[r], hs[l]) {
			best = r
		}
		if !entryBefore(hs[best], hs[i]) {
			break
		}
		hs[i], hs[best] = hs[best], hs[i]
		i = best
	}
	return top
}

// newPlaceIndex builds the index for the sim's machine park. All
// machines start up with full capacity, so every machine gets one
// fresh entry at version 0.
func newPlaceIndex(sm *sim) *placeIndex {
	n := len(sm.machines)
	p := &placeIndex{classOf: make([]int32, n), ver: make([]uint32, n)}
	for _, ms := range sm.machines {
		if !slices.Contains(p.caps, ms.m.CPU) {
			p.caps = append(p.caps, ms.m.CPU)
		}
	}
	slices.Sort(p.caps)
	p.classes = make([]pclass, len(p.caps))
	for i, ms := range sm.machines {
		ci, _ := slices.BinarySearch(p.caps, ms.m.CPU)
		p.classOf[i] = int32(ci)
		p.classes[ci].members = append(p.classes[ci].members, int32(i))
	}
	// eligible[ci] is the ascending union of classes ci..top, built
	// top-down so each list is a merge of the class below's list.
	for ci := len(p.classes) - 1; ci >= 0; ci-- {
		if ci == len(p.classes)-1 {
			p.classes[ci].eligible = p.classes[ci].members
			continue
		}
		p.classes[ci].eligible = mergeAscending(p.classes[ci].members, p.classes[ci+1].eligible)
	}
	for i, ms := range sm.machines {
		ci := p.classOf[i]
		heapPushEntry(&p.classes[ci].heap, pentry{score: sm.scoreOf(ms), idx: int32(i)})
	}
	return p
}

func mergeAscending(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// eligible returns the machine indices (ascending) whose CPU capacity
// satisfies minClass, or nil when no class does.
func (p *placeIndex) eligible(minClass float64) []int32 {
	ci, _ := slices.BinarySearch(p.caps, minClass)
	if ci >= len(p.classes) {
		return nil
	}
	return p.classes[ci].eligible
}

// idxUpdate refreshes machine mi's index entry after any change to its
// free capacity or up/down state. The version bump invalidates the old
// entry; a fresh one is pushed only while the machine is up, so down
// machines simply vanish from the heaps.
func (sm *sim) idxUpdate(mi int) {
	p := sm.pidx
	if p == nil {
		return
	}
	p.ver[mi]++
	ms := sm.machines[mi]
	if ms.down {
		return
	}
	cl := &p.classes[p.classOf[mi]]
	heapPushEntry(&cl.heap, pentry{score: sm.scoreOf(ms), idx: int32(mi), ver: p.ver[mi]})
	if len(cl.heap) > 4*len(cl.members)+16 {
		sm.idxCompact(cl)
	}
}

// idxCompact rebuilds a class heap from its members, dropping the
// stale entries that lazy deletion accumulates.
func (sm *sim) idxCompact(cl *pclass) {
	cl.heap = cl.heap[:0]
	for _, mi := range cl.members {
		ms := sm.machines[mi]
		if ms.down {
			continue
		}
		heapPushEntry(&cl.heap, pentry{score: sm.scoreOf(ms), idx: mi, ver: sm.pidx.ver[mi]})
	}
}

// placeIndexed finds the best feasible machine across the classes the
// task's MinCPUClass admits: maximal score, ties to the lowest global
// machine index — exactly the reference scan's choice.
func (sm *sim) placeIndexed(t *trace.Task) int {
	p := sm.pidx
	best := int32(-1)
	var bestScore float64
	examined := 0
	ci, _ := slices.BinarySearch(p.caps, t.MinCPUClass)
	for ; ci < len(p.classes); ci++ {
		mi, score, n := sm.classBest(&p.classes[ci], t)
		examined += n
		if mi >= 0 && (best < 0 || score > bestScore || (score == bestScore && mi < best)) {
			best, bestScore = mi, score
		}
	}
	sm.met.scans.Add(int64(examined))
	if best < 0 {
		return -1
	}
	return int(best)
}

// classBest pops the class heap until the best-scoring fresh machine
// that fits t surfaces. Fresh entries (feasible or not) are pushed
// back afterwards, so the heap keeps indexing machines that merely
// lacked room for this particular task; stale entries are dropped for
// good.
func (sm *sim) classBest(cl *pclass, t *trace.Task) (int32, float64, int) {
	p := sm.pidx
	stash := p.scratch[:0]
	found := int32(-1)
	var foundScore float64
	examined := 0
	for len(cl.heap) > 0 {
		e := heapPopEntry(&cl.heap)
		if e.ver != p.ver[e.idx] {
			continue // stale: superseded or machine down
		}
		examined++
		ms := sm.machines[e.idx]
		if ms.freeCPU < t.CPUReq || ms.freeMem < t.MemReq {
			stash = append(stash, e)
			continue
		}
		found, foundScore = e.idx, e.score
		stash = append(stash, e)
		break
	}
	for _, e := range stash {
		heapPushEntry(&cl.heap, e)
	}
	p.scratch = stash[:0]
	return found, foundScore, examined
}
