package cluster

import (
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/trace"
)

// identityConfig builds a workload with churn and preemption armed so
// the indexed placement path exercises machine-down/up index updates
// and the preemption eligible-class lists, not just the happy path.
func identityConfig(t *testing.T, seed uint64, pol Policy) (Config, []trace.Task) {
	t.Helper()
	machines := synth.GoogleMachines(18, rng.New(seed))
	horizon := int64(12 * 3600)
	cfg := DefaultConfig(machines, horizon)
	cfg.Placement = pol
	cfg.ChurnMTBF = 4 * 3600
	cfg.ChurnDowntime = 1800
	gcfg := synth.ScaledGoogleConfig(len(machines), horizon)
	tasks := synth.GenerateGoogleTasks(gcfg, rng.New(seed+100))
	return cfg, tasks
}

// TestReferencePlacementByteIdentical pins the tentpole invariant: the
// capacity-indexed placement path must reproduce the original linear
// scan event-for-event, across seeds and policies. Any divergence in
// scoring, tie-breaking, or index staleness handling shows up here as
// the first differing event.
func TestReferencePlacementByteIdentical(t *testing.T) {
	for _, pol := range []Policy{Balanced, BestFit, Random} {
		for _, seed := range []uint64{1, 2, 3} {
			t.Run(fmt.Sprintf("%v/seed%d", pol, seed), func(t *testing.T) {
				cfg, tasks := identityConfig(t, seed, pol)

				refCfg := cfg
				refCfg.ReferencePlacement = true
				ref, err := Simulate(refCfg, tasks, rng.New(seed+200))
				if err != nil {
					t.Fatal(err)
				}
				idx, err := Simulate(cfg, tasks, rng.New(seed+200))
				if err != nil {
					t.Fatal(err)
				}

				if len(ref.Events) != len(idx.Events) {
					t.Fatalf("event counts differ: reference %d vs indexed %d",
						len(ref.Events), len(idx.Events))
				}
				for i := range ref.Events {
					if ref.Events[i] != idx.Events[i] {
						t.Fatalf("event %d differs:\nreference %+v\nindexed   %+v",
							i, ref.Events[i], idx.Events[i])
					}
				}
				if len(ref.MachineEvents) != len(idx.MachineEvents) {
					t.Fatalf("machine event counts differ: %d vs %d",
						len(ref.MachineEvents), len(idx.MachineEvents))
				}
				for i := range ref.MachineEvents {
					if ref.MachineEvents[i] != idx.MachineEvents[i] {
						t.Fatalf("machine event %d differs", i)
					}
				}
				if ref.Stats.Preemptions != idx.Stats.Preemptions ||
					ref.Stats.Attempts != idx.Stats.Attempts ||
					ref.Stats.NeverScheduled != idx.Stats.NeverScheduled {
					t.Fatalf("stats differ:\nreference %+v\nindexed   %+v", ref.Stats, idx.Stats)
				}
				for typ, n := range ref.Stats.EventCounts {
					if idx.Stats.EventCounts[typ] != n {
						t.Fatalf("%v count: reference %d vs indexed %d",
							typ, n, idx.Stats.EventCounts[typ])
					}
				}
				for mi := range ref.Machines {
					rv := ref.Machines[mi].CPU().Values
					iv := idx.Machines[mi].CPU().Values
					for k := range rv {
						if rv[k] != iv[k] {
							t.Fatalf("machine %d CPU sample %d differs: %v vs %v",
								mi, k, rv[k], iv[k])
						}
					}
				}
			})
		}
	}
}

// TestEventQueueOrdering checks the 4-ary heap against its contract
// directly: pops come out in strictly increasing (time, seq) order for
// an adversarial mix of duplicate times and interleaved push/pop.
func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	s := rng.New(42)
	var seq int64
	push := func(time int64) {
		q.push(simEvent{time: time, seq: seq})
		seq++
	}
	// Bulk phase: many duplicate timestamps.
	for i := 0; i < 2000; i++ {
		push(s.Int64N(50))
	}
	// Interleaved phase: pop a few, push a few, like the live loop.
	popped := make([]simEvent, 0, 4000)
	for q.len() > 0 {
		e := q.pop()
		popped = append(popped, e)
		if len(popped) < 1000 && s.Bool(0.5) {
			push(e.time + s.Int64N(20))
		}
	}
	for i := 1; i < len(popped); i++ {
		a, b := popped[i-1], popped[i]
		if b.time < a.time {
			t.Fatalf("pop %d out of time order: %d after %d", i, b.time, a.time)
		}
		if b.time == a.time && b.seq < a.seq {
			t.Fatalf("pop %d breaks FIFO within time %d: seq %d after %d",
				i, b.time, b.seq, a.seq)
		}
	}
}
