package cluster

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/trace"
)

func TestPlacementConstraintRespected(t *testing.T) {
	machines := []trace.Machine{
		{ID: 0, CPU: 0.25, Memory: 1, PageCache: 1},
		{ID: 1, CPU: 0.5, Memory: 1, PageCache: 1},
		{ID: 2, CPU: 1.0, Memory: 1, PageCache: 1},
	}
	cfg := DefaultConfig(machines, 3600)
	cfg.Outcomes = alwaysFinish()
	task := oneTask(1, 0, 5, 0.1, 0.1, 600)
	task.MinCPUClass = 1.0
	res, err := Simulate(cfg, []trace.Task{task}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Events {
		if e.Type == trace.EventSchedule && e.Machine != 2 {
			t.Fatalf("constrained task placed on machine %d", e.Machine)
		}
	}
	if res.Stats.Attempts != 1 {
		t.Fatalf("attempts %d", res.Stats.Attempts)
	}
}

func TestConstraintBlocksWhenNoMachineQualifies(t *testing.T) {
	machines := []trace.Machine{{ID: 0, CPU: 0.25, Memory: 1, PageCache: 1}}
	cfg := DefaultConfig(machines, 3600)
	cfg.Outcomes = alwaysFinish()
	task := oneTask(1, 0, 5, 0.1, 0.1, 600)
	task.MinCPUClass = 1.0
	res, err := Simulate(cfg, []trace.Task{task}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Attempts != 0 {
		t.Fatal("constrained task scheduled on an unqualified machine")
	}
	if res.Stats.NeverScheduled != 1 {
		t.Fatalf("never scheduled %d, want 1", res.Stats.NeverScheduled)
	}
}

func TestConstraintWithPreemption(t *testing.T) {
	// The big machine is fully reserved by a low-priority task; a
	// constrained high-priority task must preempt it there rather than
	// run on the (forbidden) small machine.
	machines := []trace.Machine{
		{ID: 0, CPU: 0.25, Memory: 1, PageCache: 1},
		{ID: 1, CPU: 1.0, Memory: 1, PageCache: 1},
	}
	cfg := DefaultConfig(machines, 7200)
	cfg.Outcomes = alwaysFinish()
	cfg.MaxRetries = 0
	low := oneTask(1, 0, 2, 0.95, 0.9, 5000)
	high := oneTask(2, 100, 11, 0.9, 0.5, 600)
	high.MinCPUClass = 1.0
	res, err := Simulate(cfg, []trace.Task{low, high}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var highMachine = -1
	var lowEvicted bool
	for _, e := range res.Events {
		if e.Type == trace.EventSchedule && e.JobID == 2 {
			highMachine = e.Machine
		}
		if e.Type == trace.EventEvict && e.JobID == 1 {
			lowEvicted = true
		}
	}
	if highMachine != 1 {
		t.Fatalf("constrained high-priority task on machine %d, want 1", highMachine)
	}
	if !lowEvicted {
		t.Fatal("low-priority task not preempted on the constrained machine")
	}
}
