// Package cluster implements a discrete-event simulator of the Google
// data-center scheduling model described in Section II of the paper:
// heterogeneous machines, a priority scheduler (high priority first,
// FCFS within a priority, preemption of lower-priority work), task
// failure/kill/loss injection with resubmission, and 5-minute usage
// sampling per machine.
//
// The simulator consumes the task workload produced by internal/synth
// (or any []trace.Task) and emits the event stream and per-machine
// usage series that the Section IV host-load analyses consume.
package cluster

import (
	"cmp"
	"context"
	"fmt"
	"slices"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// Policy selects the placement heuristic.
type Policy int

// Placement policies. Balanced (worst-fit) mirrors the paper's "use
// the best resources first ... reaching an approximate load balancing
// situation"; BestFit and Random exist for the ablation benches.
const (
	Balanced Policy = iota
	BestFit
	Random
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Balanced:
		return "balanced"
	case BestFit:
		return "best-fit"
	case Random:
		return "random"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// OutcomeMix is the probability of each terminal event for an
// execution attempt. The default reproduces the paper's completion
// statistics: 59.2% of completion events are abnormal, of which 50%
// fail and 30.7% are kills.
type OutcomeMix struct {
	Finish, Fail, Kill, Evict, Lost float64
}

// validate rejects negative probabilities and totals above 1 (the
// remainder, if any, is folded into Lost by drawOutcome's default arm,
// so a total below 1 is legal).
func (m OutcomeMix) validate() error {
	for _, p := range []float64{m.Finish, m.Fail, m.Kill, m.Evict, m.Lost} {
		if p < 0 {
			return fmt.Errorf("cluster: negative outcome probability %v", p)
		}
	}
	if total := m.Finish + m.Fail + m.Kill + m.Evict + m.Lost; total > 1+1e-9 {
		return fmt.Errorf("cluster: outcome probabilities sum to %v > 1", total)
	}
	return nil
}

// DefaultOutcomeMix returns the calibrated mix.
func DefaultOutcomeMix() OutcomeMix {
	return OutcomeMix{
		Finish: 0.425,
		Fail:   0.296, // 0.592 * 0.50
		Kill:   0.182, // 0.592 * 0.307
		Evict:  0.070,
		Lost:   0.027,
	}
}

// Config parameterises a simulation run.
type Config struct {
	Machines     []trace.Machine
	Horizon      int64 // seconds simulated
	SamplePeriod int64 // usage sampling period; 0 means 300 s (5 min)

	Placement  Policy
	Preemption bool // allow high-priority tasks to evict lower ones

	// ReferencePlacement routes place()/preemptFor() through the
	// original linear machine scan instead of the capacity-indexed
	// fast path. Debug flag: both paths produce byte-identical event
	// streams (asserted by TestReferencePlacementByteIdentical); the
	// flag exists so that equivalence stays independently testable.
	ReferencePlacement bool

	Outcomes OutcomeMix

	// Resubmission of failed/evicted tasks (step 6 of Fig 1).
	MaxRetries  int
	RetryDelay  int64   // seconds before a resubmission
	FailRetryP  float64 // probability a failed task is resubmitted
	EvictRetryP float64 // probability an evicted task is resubmitted

	// UsageNoise is the std-dev of the per-window multiplicative CPU
	// noise of each running task; this is the source of the Google
	// host-load jitter the paper measures in Fig 13.
	UsageNoise float64

	// BurstProb and BurstMax model rare machine-wide CPU demand bursts
	// (co-located antagonists, cron storms): with probability BurstProb
	// per machine per sampling window, every task's CPU demand in that
	// window is multiplied by a factor in (1.5, BurstMax). Bursts are
	// what push each machine's maximum observed CPU to its capacity
	// over a month-long trace (Fig 7a). Zero disables bursts.
	BurstProb float64
	BurstMax  float64

	// UpdateProb is the per-attempt probability that the user tunes the
	// task's constraints mid-run (Fig 1 step 3), emitting an UPDATE
	// event. Purely observational: the resource profile is unchanged.
	UpdateProb float64

	// Machine churn: machines fail with exponential inter-failure
	// times of mean ChurnMTBF seconds and stay offline for an
	// exponential downtime of mean ChurnDowntime seconds. A failing
	// machine evicts everything running on it (the real trace's
	// machine_events REMOVE rows). Zero MTBF disables churn.
	ChurnMTBF     int64
	ChurnDowntime int64

	// EmitUsage additionally records per-task UsageSamples (expensive;
	// intended for small traces and format round-trips).
	EmitUsage bool

	// Metrics, when non-nil, receives the run's operational counters
	// (events dispatched, machine scans, queue-depth samples, per-type
	// event counts). Purely observational: the simulation consumes no
	// randomness and takes no decisions based on it, so results are
	// byte-identical with or without a registry attached.
	Metrics *obs.Registry
}

// DefaultConfig returns the calibrated simulation parameters for the
// given machine park and horizon.
func DefaultConfig(machines []trace.Machine, horizon int64) Config {
	return Config{
		Machines:     machines,
		Horizon:      horizon,
		SamplePeriod: 300,
		Placement:    Balanced,
		Preemption:   true,
		Outcomes:     DefaultOutcomeMix(),
		MaxRetries:   2,
		RetryDelay:   30,
		FailRetryP:   0.55,
		EvictRetryP:  0.90,
		UsageNoise:   0.85,
		BurstProb:    0.001,
		BurstMax:     3.5,
		UpdateProb:   0.02,
	}
}

// MachineSeries holds one machine's sampled load signals. CPU and Mem
// are split by the paper's three priority groups; the total is the sum.
type MachineSeries struct {
	Machine trace.Machine

	CPUByGroup [3]*timeseries.Series // low / middle / high
	MemByGroup [3]*timeseries.Series

	MemAssigned *timeseries.Series
	PageCache   *timeseries.Series
	Running     *timeseries.Series // mean number of running tasks
}

// CPU returns the total CPU usage series (all priorities), normalised
// by nothing — divide by Machine.CPU for a relative load level.
func (m *MachineSeries) CPU() *timeseries.Series { return sumSeries(m.CPUByGroup[:]) }

// Mem returns the total consumed-memory series.
func (m *MachineSeries) Mem() *timeseries.Series { return sumSeries(m.MemByGroup[:]) }

// CPUGroups returns the usage of the groups at or above the given
// group (e.g. HighPriority → high only; MiddlePriority → mid+high).
func (m *MachineSeries) CPUGroups(min trace.PriorityGroup) *timeseries.Series {
	return sumSeries(m.CPUByGroup[int(min):])
}

// MemGroups is the memory analogue of CPUGroups.
func (m *MachineSeries) MemGroups(min trace.PriorityGroup) *timeseries.Series {
	return sumSeries(m.MemByGroup[int(min):])
}

func sumSeries(ss []*timeseries.Series) *timeseries.Series {
	if len(ss) == 0 {
		return nil
	}
	out := &timeseries.Series{
		Start:  ss[0].Start,
		Step:   ss[0].Step,
		Values: append([]float64(nil), ss[0].Values...),
	}
	for _, s := range ss[1:] {
		for i := range out.Values {
			out.Values[i] += s.Values[i]
		}
	}
	return out
}

// Stats aggregates run-level counters.
type Stats struct {
	TasksSubmitted  int
	Attempts        int // execution attempts (schedules)
	EventCounts     map[trace.EventType]int
	Preemptions     int
	NeverScheduled  int // tasks still pending at the horizon
	MachineFailures int // churn events (machines going offline)
}

// AbnormalFraction returns the share of terminal events that are
// abnormal (the paper reports 59.2%).
func (s Stats) AbnormalFraction() float64 {
	var term, abn int
	for e, n := range s.EventCounts {
		if e.Terminal() {
			term += n
			if e.Abnormal() {
				abn += n
			}
		}
	}
	if term == 0 {
		return 0
	}
	return float64(abn) / float64(term)
}

// MachineEvent is one churn transition (the machine_events ADD/REMOVE
// rows of the real trace).
type MachineEvent struct {
	Time    int64
	Machine int
	Up      bool // true = machine (re)joined, false = went offline
}

// Result is the simulator output.
type Result struct {
	Config        Config
	Events        []trace.TaskEvent
	Usage         []trace.UsageSample // only when Config.EmitUsage
	Machines      []*MachineSeries
	MachineEvents []MachineEvent     // churn transitions, if any
	Pending       *timeseries.Series // cluster-wide mean pending tasks
	Stats         Stats
}

// ---------------------------------------------------------------------------
// engine internals

type runningTask struct {
	task    *trace.Task
	machine int
	start   int64
	end     int64 // scheduled completion time
	outcome trace.EventType
	retries int
	// Per-attempt resource profile.
	cpuUse   float64 // mean CPU actually consumed
	memUse   float64 // consumed memory
	cacheUse float64
	updateAt int64 // pending UPDATE event time (0 = none)
	runIdx   int32 // position in machineState.running (swap-remove bookkeeping)
	live     bool  // not yet settled; false once evicted or completed
}

type pendingTask struct {
	task     *trace.Task
	retries  int
	seq      int64 // FCFS order within a priority
	enqueued int64 // when the task entered the pending queue
}

type eventKind int

const (
	evArrive eventKind = iota
	evComplete
	evMachineDown
	evMachineUp
)

type simEvent struct {
	time    int64
	seq     int64
	kind    eventKind
	pend    pendingTask  // evArrive
	run     *runningTask // evComplete
	machine int          // evMachineDown / evMachineUp
}

// eventQueue is a 4-ary min-heap of simEvents ordered by (time, seq).
// It replaces container/heap: the concrete element type keeps push and
// pop free of the interface boxing that copies every simEvent through
// an `any` on both ends, and the flatter 4-ary layout halves the tree
// depth so a sift touches fewer cache lines. (time, seq) is a strict
// total order — seq is unique per event — so any correct heap yields
// the identical pop sequence and event replay stays byte-identical to
// the container/heap implementation it replaces.
type eventQueue struct {
	evs []simEvent
}

func eventBefore(a, b *simEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (q *eventQueue) len() int { return len(q.evs) }

func (q *eventQueue) push(e simEvent) {
	q.evs = append(q.evs, e)
	i := len(q.evs) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventBefore(&q.evs[i], &q.evs[p]) {
			break
		}
		q.evs[i], q.evs[p] = q.evs[p], q.evs[i]
		i = p
	}
}

func (q *eventQueue) pop() simEvent {
	top := q.evs[0]
	n := len(q.evs) - 1
	q.evs[0] = q.evs[n]
	q.evs[n] = simEvent{} // drop the *runningTask reference
	q.evs = q.evs[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := min(first+4, n)
		for c := first + 1; c < last; c++ {
			if eventBefore(&q.evs[c], &q.evs[best]) {
				best = c
			}
		}
		if !eventBefore(&q.evs[best], &q.evs[i]) {
			break
		}
		q.evs[i], q.evs[best] = q.evs[best], q.evs[i]
		i = best
	}
	return top
}

type machineState struct {
	m        trace.Machine
	freeCPU  float64 // unreserved CPU (requests)
	freeMem  float64
	running  []*runningTask // unordered; runIdx gives O(1) removal
	cacheAff float64        // per-machine page-cache affinity (drives Fig 7d bimodality)
	down     bool           // offline due to churn
}

func (ms *machineState) addRunning(rt *runningTask) {
	rt.runIdx = int32(len(ms.running))
	ms.running = append(ms.running, rt)
}

// removeRunning swap-deletes rt. Storage order is irrelevant to the
// results: every consumer that iterates ms.running sorts by a total
// order before acting (see tryPreempt, machineDown, finishAccounting).
func (ms *machineState) removeRunning(rt *runningTask) {
	last := len(ms.running) - 1
	moved := ms.running[last]
	ms.running[rt.runIdx] = moved
	moved.runIdx = rt.runIdx
	ms.running[last] = nil
	ms.running = ms.running[:last]
}

// simMetrics caches the registry metrics the event loop touches.
// Every field is nil when Config.Metrics is nil; the obs methods are
// nil-safe, so the hot path carries no "is observability on?" branch.
type simMetrics struct {
	events *obs.Counter // cluster.events_dispatched
	// scans counts machines examined during placement: full-scan
	// iterations on the reference/Random paths, index probes on the
	// indexed path.
	scans      *obs.Counter   // cluster.machine_scans
	queueDepth *obs.Histogram // cluster.queue_depth, sampled per dispatched event
}

func newSimMetrics(reg *obs.Registry) simMetrics {
	return simMetrics{
		events: reg.Counter("cluster.events_dispatched"),
		scans:  reg.Counter("cluster.machine_scans"),
		queueDepth: reg.Histogram("cluster.queue_depth",
			[]float64{0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}),
	}
}

type sim struct {
	cfg      Config
	s        *rng.Stream
	noise    *rng.Stream
	met      simMetrics
	machines []*machineState
	pendingQ [trace.MaxPriority + 1][]pendingTask
	pendingN int
	events   eventQueue
	seq      int64
	pidx     *placeIndex // nil when Config.ReferencePlacement is set

	rtSlab  []runningTask  // bump-allocated backing storage for attempts
	rtFree  []*runningTask // recycled attempts (safe once their evComplete popped)
	victims []*runningTask // scratch for tryPreempt/machineDown

	out        []trace.TaskEvent
	machineEvs []MachineEvent
	usage      []trace.UsageSample
	series     []*MachineSeries
	cpuAcc     [][3]*timeseries.Accumulator
	memAcc     [][3]*timeseries.Accumulator
	assignAcc  []*timeseries.Accumulator
	cacheAcc   []*timeseries.Accumulator
	runningAcc []*timeseries.Accumulator
	pendAcc    *timeseries.Accumulator
	stats      Stats
}

// Simulate runs the workload through the cluster and returns the
// event stream, machine series and statistics. It is SimulateCtx with
// a background context, for callers that don't need cancellation.
func Simulate(cfg Config, tasks []trace.Task, s *rng.Stream) (*Result, error) {
	return SimulateCtx(context.Background(), cfg, tasks, s)
}

// SimulateCtx is Simulate with cooperative cancellation: the event
// loop polls ctx every few hundred events, so a cancelled or expired
// context aborts the simulation promptly with ctx's cause instead of
// running the horizon out.
func SimulateCtx(ctx context.Context, cfg Config, tasks []trace.Task, s *rng.Stream) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	if len(cfg.Machines) == 0 {
		return nil, fmt.Errorf("cluster: no machines configured")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("cluster: horizon %d must be positive", cfg.Horizon)
	}
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = 300
	}
	if cfg.Outcomes == (OutcomeMix{}) {
		cfg.Outcomes = DefaultOutcomeMix()
	}
	if err := cfg.Outcomes.validate(); err != nil {
		return nil, err
	}

	sm := &sim{cfg: cfg, s: s.Child("sim"), noise: s.Child("noise"), met: newSimMetrics(cfg.Metrics)}
	sm.stats.EventCounts = make(map[trace.EventType]int)

	// Accumulator construction can only fail on a range/step the
	// validation above rejects, but a hand-built Config deserves an
	// error, not a process crash: collect the first failure and return
	// it after setup instead of panicking.
	var accErr error
	newAcc := func() *timeseries.Accumulator {
		a, err := timeseries.NewAccumulator(0, cfg.Horizon, cfg.SamplePeriod)
		if err != nil && accErr == nil {
			accErr = err
		}
		return a
	}
	nm := len(cfg.Machines)
	states := make([]machineState, nm) // one slab, not nm boxes
	sm.machines = make([]*machineState, 0, nm)
	sm.cpuAcc = make([][3]*timeseries.Accumulator, 0, nm)
	sm.memAcc = make([][3]*timeseries.Accumulator, 0, nm)
	sm.assignAcc = make([]*timeseries.Accumulator, 0, nm)
	sm.cacheAcc = make([]*timeseries.Accumulator, 0, nm)
	sm.runningAcc = make([]*timeseries.Accumulator, 0, nm)
	for i, m := range cfg.Machines {
		ms := &states[i]
		ms.m, ms.freeCPU, ms.freeMem = m, m.CPU, m.Memory
		// Bimodal page-cache affinity: some machines serve file-backed
		// workloads, most do not (Fig 7d).
		if sm.s.Bool(0.45) {
			ms.cacheAff = sm.s.Range(2.0, 5.0)
		} else {
			ms.cacheAff = sm.s.Range(0.1, 0.8)
		}
		sm.machines = append(sm.machines, ms)
		sm.cpuAcc = append(sm.cpuAcc, [3]*timeseries.Accumulator{newAcc(), newAcc(), newAcc()})
		sm.memAcc = append(sm.memAcc, [3]*timeseries.Accumulator{newAcc(), newAcc(), newAcc()})
		sm.assignAcc = append(sm.assignAcc, newAcc())
		sm.cacheAcc = append(sm.cacheAcc, newAcc())
		sm.runningAcc = append(sm.runningAcc, newAcc())
	}
	sm.pendAcc = newAcc()
	if accErr != nil {
		return nil, fmt.Errorf("cluster: accumulator setup: %w", accErr)
	}
	if !cfg.ReferencePlacement {
		sm.pidx = newPlaceIndex(sm)
	}

	// Pre-size the hot-path buffers from the workload: the event heap
	// peaks near one entry per not-yet-completed task, and the output
	// stream carries roughly SUBMIT + SCHEDULE + terminal per attempt.
	sm.events.evs = make([]simEvent, 0, len(tasks)+64)
	sm.out = make([]trace.TaskEvent, 0, 3*len(tasks))

	// Seed arrivals.
	for i := range tasks {
		t := &tasks[i]
		if t.Submit >= cfg.Horizon {
			continue
		}
		sm.push(simEvent{time: t.Submit, kind: evArrive, pend: pendingTask{task: t}})
	}

	// Seed machine churn.
	if cfg.ChurnMTBF > 0 && cfg.ChurnDowntime > 0 {
		churn := s.Child("churn")
		for mi := range sm.machines {
			t := int64(churn.ExpFloat64() * float64(cfg.ChurnMTBF))
			for t < cfg.Horizon {
				down := 1 + int64(churn.ExpFloat64()*float64(cfg.ChurnDowntime))
				sm.push(simEvent{time: t, kind: evMachineDown, machine: mi})
				if up := t + down; up < cfg.Horizon {
					sm.push(simEvent{time: up, kind: evMachineUp, machine: mi})
				}
				t += down + int64(churn.ExpFloat64()*float64(cfg.ChurnMTBF))
			}
		}
	}

	if err := sm.run(ctx); err != nil {
		return nil, err
	}
	return sm.result(), nil
}

func (sm *sim) push(e simEvent) {
	e.seq = sm.seq
	sm.seq++
	sm.events.push(e)
}

// newRunningTask returns a zeroed attempt from the pool. Attempts are
// recycled in complete(): each attempt owns exactly one evComplete
// event, so once that event pops, neither the event heap nor any
// machine's running list can still reference the struct.
func (sm *sim) newRunningTask() *runningTask {
	if n := len(sm.rtFree); n > 0 {
		rt := sm.rtFree[n-1]
		sm.rtFree = sm.rtFree[:n-1]
		*rt = runningTask{}
		return rt
	}
	if len(sm.rtSlab) == 0 {
		sm.rtSlab = make([]runningTask, 512)
	}
	rt := &sm.rtSlab[0]
	sm.rtSlab = sm.rtSlab[1:]
	return rt
}

func (sm *sim) emit(e trace.TaskEvent) {
	sm.out = append(sm.out, e)
	sm.stats.EventCounts[e.Type]++
}

// run drains the event heap. Cancellation and the "cluster.run" fault
// site are polled every 256 events so the hot path stays one branch
// wide; event processing itself is strictly deterministic, so the
// poll cadence never changes results — only how promptly an abort is
// noticed.
func (sm *sim) run(ctx context.Context) error {
	var polled int
	for sm.events.len() > 0 {
		if polled++; polled&255 == 0 {
			if err := ctx.Err(); err != nil {
				return context.Cause(ctx)
			}
			if err := fault.Hit("cluster.run"); err != nil {
				return err
			}
		}
		e := sm.events.pop()
		if e.time >= sm.cfg.Horizon {
			break
		}
		sm.met.events.Add(1)
		switch e.kind {
		case evArrive:
			sm.arrive(e.time, e.pend)
		case evComplete:
			sm.complete(e.time, e.run)
		case evMachineDown:
			sm.machineDown(e.time, e.machine)
		case evMachineUp:
			sm.machineUp(e.time, e.machine)
		}
		sm.schedulePending(e.time)
		sm.met.queueDepth.Observe(float64(sm.pendingN))
	}
	// Tasks still running at the horizon contribute usage up to the
	// horizon; their accounting happens in finishAccounting.
	sm.finishAccounting()
	return nil
}

func (sm *sim) arrive(now int64, p pendingTask) {
	t := p.task
	sm.stats.TasksSubmitted++
	sm.emit(trace.TaskEvent{
		Time: now, JobID: t.JobID, TaskIndex: t.Index,
		Machine: -1, Type: trace.EventSubmit, Priority: t.Priority,
	})
	p.seq = sm.seq
	p.enqueued = now
	sm.pendingQ[t.Priority] = append(sm.pendingQ[t.Priority], p)
	sm.pendingN++
}

// schedulePending drains the pending queues highest priority first and
// in FCFS order within each priority. A task that cannot be placed
// (capacity or constraints) is skipped rather than blocking the queue:
// on a heterogeneous park a constrained task would otherwise convoy
// every peer behind it, which is not how the production scheduler
// behaves (constrained tasks pend individually).
func (sm *sim) schedulePending(now int64) {
	for prio := trace.MaxPriority; prio >= trace.MinPriority; prio-- {
		q := sm.pendingQ[prio]
		if len(q) == 0 {
			continue
		}
		remain := q[:0]
		for _, p := range q {
			mi := sm.place(p.task)
			if mi < 0 && sm.cfg.Preemption {
				mi = sm.preemptFor(now, p.task)
			}
			if mi < 0 {
				remain = append(remain, p)
				continue
			}
			// Time-weighted pending occupancy (Fig 8b pending curve).
			sm.pendAcc.AddRange(p.enqueued, now, 1)
			sm.start(now, p, mi)
			sm.pendingN--
		}
		sm.pendingQ[prio] = remain
	}
}

// scoreOf is the placement score of a machine: higher is better, ties
// break to the lowest machine index. Both expressions are machine
// properties only, so the placement index can maintain them
// incrementally; the reference and indexed paths call this one
// function so their floating-point arithmetic is bit-identical.
//   - Balanced: mean relative headroom (worst fit).
//   - BestFit: tightest absolute free capacity. (The pre-index code
//     also subtracted the task's own requests; that per-call constant
//     never changed the argmax, and dropping it makes the score a pure
//     machine property.)
func (sm *sim) scoreOf(ms *machineState) float64 {
	if sm.cfg.Placement == BestFit {
		return -(ms.freeCPU + ms.freeMem)
	}
	return (ms.freeCPU/ms.m.CPU + ms.freeMem/ms.m.Memory) / 2
}

// place finds a machine for the task per the placement policy, or -1.
// Random draws a uniform starting index and scans from it (the same
// code runs in both modes so the RNG stream stays aligned); Balanced
// and BestFit route through the capacity index unless
// Config.ReferencePlacement pins the original linear scan.
func (sm *sim) place(t *trace.Task) int {
	if sm.cfg.Placement == Random {
		return sm.placeRandom(t)
	}
	if sm.pidx == nil {
		return sm.placeReference(t)
	}
	return sm.placeIndexed(t)
}

func (sm *sim) placeRandom(t *trace.Task) int {
	n := len(sm.machines)
	checkFrom := sm.s.IntN(n)
	for k := 0; k < n; k++ {
		i := (checkFrom + k) % n
		ms := sm.machines[i]
		if ms.down || ms.m.CPU < t.MinCPUClass || ms.freeCPU < t.CPUReq || ms.freeMem < t.MemReq {
			continue
		}
		sm.met.scans.Add(int64(k + 1))
		return i
	}
	sm.met.scans.Add(int64(n))
	return -1
}

// placeReference is the original O(machines) scan, kept as the
// byte-identity oracle for the indexed path: first machine with the
// maximal score wins (strict >, so ties break to the lowest index).
func (sm *sim) placeReference(t *trace.Task) int {
	best := -1
	var bestScore float64
	for i, ms := range sm.machines {
		if ms.down || ms.m.CPU < t.MinCPUClass || ms.freeCPU < t.CPUReq || ms.freeMem < t.MemReq {
			continue
		}
		score := sm.scoreOf(ms)
		if best < 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	sm.met.scans.Add(int64(len(sm.machines)))
	return best
}

// preemptFor tries to make room for a high-priority task by evicting
// strictly-lower-priority tasks from one machine. Returns the machine
// index, or -1 if no machine can be cleared. Machines are tried in
// index order in both modes; the index merely skips capacity classes
// below the task's constraint.
func (sm *sim) preemptFor(now int64, t *trace.Task) int {
	if sm.pidx == nil {
		for i := range sm.machines {
			if sm.tryPreempt(now, t, i) {
				return i
			}
		}
		return -1
	}
	for _, i := range sm.pidx.eligible(t.MinCPUClass) {
		if sm.tryPreempt(now, t, int(i)) {
			return int(i)
		}
	}
	return -1
}

// tryPreempt clears machine i for t if evicting its strictly-lower-
// priority work frees enough capacity. Victims go lowest priority
// first (FCFS ties by start then identity) until the task fits; the
// sort keeps victim choice deterministic regardless of how the
// running list is stored.
func (sm *sim) tryPreempt(now int64, t *trace.Task, i int) bool {
	ms := sm.machines[i]
	if ms.down || ms.m.CPU < t.MinCPUClass {
		return false
	}
	var cpuGain, memGain float64
	victims := sm.victims[:0]
	for _, rt := range ms.running {
		if rt.task.Priority < t.Priority {
			victims = append(victims, rt)
			cpuGain += rt.task.CPUReq
			memGain += rt.task.MemReq
		}
	}
	ok := false
	if ms.freeCPU+cpuGain >= t.CPUReq && ms.freeMem+memGain >= t.MemReq {
		slices.SortFunc(victims, func(a, b *runningTask) int {
			if a.task.Priority != b.task.Priority {
				return cmp.Compare(a.task.Priority, b.task.Priority)
			}
			if a.start != b.start {
				return cmp.Compare(a.start, b.start)
			}
			if a.task.JobID != b.task.JobID {
				return cmp.Compare(a.task.JobID, b.task.JobID)
			}
			return cmp.Compare(a.task.Index, b.task.Index)
		})
		for _, v := range victims {
			if ms.freeCPU >= t.CPUReq && ms.freeMem >= t.MemReq {
				break
			}
			sm.evict(now, v)
		}
		if ms.freeCPU >= t.CPUReq && ms.freeMem >= t.MemReq {
			sm.stats.Preemptions++
			ok = true
		}
	}
	sm.victims = victims[:0]
	return ok
}

// machineDown takes a machine offline, evicting everything on it.
func (sm *sim) machineDown(now int64, mi int) {
	ms := sm.machines[mi]
	if ms.down {
		return
	}
	ms.down = true
	sm.idxUpdate(mi) // invalidate: down machines have no index entry
	sm.stats.MachineFailures++
	sm.machineEvs = append(sm.machineEvs, MachineEvent{Time: now, Machine: mi, Up: false})
	victims := append(sm.victims[:0], ms.running...)
	slices.SortFunc(victims, func(a, b *runningTask) int {
		if a.task.JobID != b.task.JobID {
			return cmp.Compare(a.task.JobID, b.task.JobID)
		}
		return cmp.Compare(a.task.Index, b.task.Index)
	})
	for _, rt := range victims {
		sm.evict(now, rt)
	}
	sm.victims = victims[:0]
}

// machineUp returns a machine to service.
func (sm *sim) machineUp(now int64, mi int) {
	sm.machines[mi].down = false
	sm.machineEvs = append(sm.machineEvs, MachineEvent{Time: now, Machine: mi, Up: true})
	sm.idxUpdate(mi)
}

// evict terminates a running task early with an EVICT event.
func (sm *sim) evict(now int64, rt *runningTask) {
	rt.end = now
	rt.outcome = trace.EventEvict
	sm.settle(now, rt)
}

// reserve books t's requests on machine mi and refreshes its index
// entry; release is the inverse. All free-capacity mutations go
// through these two so the index can never go stale.
func (sm *sim) reserve(mi int, t *trace.Task) {
	ms := sm.machines[mi]
	ms.freeCPU -= t.CPUReq
	ms.freeMem -= t.MemReq
	sm.idxUpdate(mi)
}

func (sm *sim) release(mi int, t *trace.Task) {
	ms := sm.machines[mi]
	ms.freeCPU += t.CPUReq
	ms.freeMem += t.MemReq
	sm.idxUpdate(mi)
}

// start begins an execution attempt on machine mi.
func (sm *sim) start(now int64, p pendingTask, mi int) {
	t := p.task
	ms := sm.machines[mi]
	sm.reserve(mi, t)

	outcome, dur := sm.drawOutcome(t)
	rt := sm.newRunningTask()
	rt.task, rt.machine, rt.start, rt.end = t, mi, now, now+dur
	rt.outcome, rt.retries = outcome, p.retries
	rt.cpuUse = t.CPUReq * t.Busy
	rt.memUse = t.MemReq * sm.s.Range(0.60, 0.95)
	rt.cacheUse = t.MemReq * ms.cacheAff * sm.s.Range(0.5, 1.5)
	rt.live = true
	ms.addRunning(rt)

	sm.emit(trace.TaskEvent{
		Time: now, JobID: t.JobID, TaskIndex: t.Index,
		Machine: mi, Type: trace.EventSchedule, Priority: t.Priority,
	})
	sm.stats.Attempts++
	// Fig 1 step 3: the user may tune the task's constraints while it
	// runs. Draw a uniform point inside the attempt; the UPDATE is
	// emitted at settle time only if the attempt actually survived
	// that long (an early eviction must not leave an UPDATE after the
	// terminal event).
	if sm.cfg.UpdateProb > 0 && dur > 2 && sm.s.Bool(sm.cfg.UpdateProb) {
		rt.updateAt = now + 1 + sm.s.Int64N(dur-1)
	}
	sm.push(simEvent{time: rt.end, kind: evComplete, run: rt})
}

// drawOutcome picks the terminal event and the attempt duration.
func (sm *sim) drawOutcome(t *trace.Task) (trace.EventType, int64) {
	mix := sm.cfg.Outcomes
	u := sm.s.Float64()
	var outcome trace.EventType
	switch {
	case u < mix.Finish:
		outcome = trace.EventFinish
	case u < mix.Finish+mix.Fail:
		outcome = trace.EventFail
	case u < mix.Finish+mix.Fail+mix.Kill:
		outcome = trace.EventKill
	case u < mix.Finish+mix.Fail+mix.Kill+mix.Evict:
		outcome = trace.EventEvict
	default:
		outcome = trace.EventLost
	}
	dur := t.Duration
	switch outcome {
	case trace.EventFail:
		dur = int64(float64(t.Duration) * sm.s.Range(0.05, 0.95))
	case trace.EventKill:
		dur = int64(float64(t.Duration) * sm.s.Range(0.05, 1.0))
	case trace.EventEvict:
		dur = int64(float64(t.Duration) * sm.s.Range(0.10, 0.90))
	case trace.EventLost:
		dur = int64(float64(t.Duration) * sm.s.Range(0.01, 0.20))
	}
	if dur < 1 {
		dur = 1
	}
	return outcome, dur
}

// complete handles a completion event. Stale events for attempts that
// were already evicted settle nothing. Either way this attempt's only
// remaining reference just left the event heap, so the struct goes
// back to the pool.
func (sm *sim) complete(now int64, rt *runningTask) {
	if rt.live {
		sm.settle(now, rt)
	}
	sm.rtFree = append(sm.rtFree, rt)
}

// settle finalises an attempt: frees resources, emits the terminal
// event, accounts usage and possibly resubmits.
func (sm *sim) settle(now int64, rt *runningTask) {
	sm.machines[rt.machine].removeRunning(rt)
	rt.live = false
	sm.release(rt.machine, rt.task)

	if rt.updateAt > 0 && rt.updateAt < now && rt.updateAt < sm.cfg.Horizon {
		sm.emit(trace.TaskEvent{
			Time: rt.updateAt, JobID: rt.task.JobID, TaskIndex: rt.task.Index,
			Machine: rt.machine, Type: trace.EventUpdate, Priority: rt.task.Priority,
		})
	}
	sm.emit(trace.TaskEvent{
		Time: now, JobID: rt.task.JobID, TaskIndex: rt.task.Index,
		Machine: rt.machine, Type: rt.outcome, Priority: rt.task.Priority,
	})
	sm.account(rt, now)

	retryP := 0.0
	switch rt.outcome {
	case trace.EventFail:
		retryP = sm.cfg.FailRetryP
	case trace.EventEvict:
		retryP = sm.cfg.EvictRetryP
	}
	if retryP > 0 && rt.retries < sm.cfg.MaxRetries && sm.s.Bool(retryP) {
		resub := now + sm.cfg.RetryDelay
		if resub < sm.cfg.Horizon {
			sm.push(simEvent{time: resub, kind: evArrive,
				pend: pendingTask{task: rt.task, retries: rt.retries + 1}})
		}
	}
}

// account adds the attempt's usage over [rt.start, end) to the
// machine accumulators, window by window so per-window noise shows up
// in the host signal.
func (sm *sim) account(rt *runningTask, end int64) {
	if end > sm.cfg.Horizon {
		end = sm.cfg.Horizon
	}
	if end <= rt.start {
		return
	}
	mi := rt.machine
	g := int(trace.GroupOf(rt.task.Priority))
	step := sm.cfg.SamplePeriod
	cpu := sm.cpuAcc[mi][g]
	mem := sm.memAcc[mi][g]

	for t := rt.start; t < end; {
		winEnd := (t/step + 1) * step
		if winEnd > end {
			winEnd = end
		}
		frac := float64(winEnd-t) / float64(step)
		n := 1 + sm.cfg.UsageNoise*sm.noise.NormFloat64()
		if n < 0.05 {
			n = 0.05
		}
		n *= sm.burstFactor(mi, t/step)
		cpu.Add(t, rt.cpuUse*n*frac)
		mem.Add(t, rt.memUse*frac*(1+0.15*sm.noise.NormFloat64()))
		sm.assignAcc[mi].Add(t, rt.task.MemReq*frac)
		sm.cacheAcc[mi].Add(t, rt.cacheUse*frac)
		sm.runningAcc[mi].Add(t, frac)
		t = winEnd
	}

	if sm.cfg.EmitUsage {
		sm.usage = append(sm.usage, trace.UsageSample{
			Start: rt.start, End: end,
			JobID: rt.task.JobID, TaskIndex: rt.task.Index,
			Machine: mi, CPU: rt.cpuUse, MemUsed: rt.memUse,
			MemAssigned: rt.task.MemReq, PageCache: rt.cacheUse,
			Priority: rt.task.Priority,
		})
	}
}

// burstFactor returns the machine-wide CPU burst multiplier for one
// sampling window. It hashes (machine, window, seed) so every task on
// the machine sees the same factor in the same window regardless of
// accounting order — keeping the simulation deterministic without
// storing a machines x windows matrix.
func (sm *sim) burstFactor(machine int, window int64) float64 {
	if sm.cfg.BurstProb <= 0 || sm.cfg.BurstMax <= 1 {
		return 1
	}
	x := uint64(machine)<<40 ^ uint64(window) ^ sm.s.Seed()
	// splitmix64 finaliser.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53)
	if u >= sm.cfg.BurstProb {
		return 1
	}
	// Map the sub-threshold draw to a factor in (1.5, BurstMax).
	return 1.5 + (sm.cfg.BurstMax-1.5)*(u/sm.cfg.BurstProb)
}

// finishAccounting settles tasks still running at the horizon (they
// contribute usage up to the horizon but emit no terminal event,
// exactly like the truncated real trace) and counts stranded pending
// tasks.
func (sm *sim) finishAccounting() {
	for _, ms := range sm.machines {
		// Deterministic order: accounting consumes the noise stream.
		// Sorting in place is fine — the run is over, so the swap-remove
		// bookkeeping no longer matters.
		slices.SortFunc(ms.running, func(a, b *runningTask) int {
			if a.task.JobID != b.task.JobID {
				return cmp.Compare(a.task.JobID, b.task.JobID)
			}
			return cmp.Compare(a.task.Index, b.task.Index)
		})
		for _, rt := range ms.running {
			sm.account(rt, sm.cfg.Horizon)
		}
	}
	for _, q := range sm.pendingQ {
		sm.stats.NeverScheduled += len(q)
		for _, p := range q {
			sm.pendAcc.AddRange(p.enqueued, sm.cfg.Horizon, 1)
		}
	}
}

// publishStats copies the run-level tallies into the configured
// registry once, after the event loop has drained (so the registry
// never sees a half-run snapshot).
func (sm *sim) publishStats() {
	reg := sm.cfg.Metrics
	if reg == nil {
		return
	}
	reg.Counter("cluster.tasks_submitted").Add(int64(sm.stats.TasksSubmitted))
	reg.Counter("cluster.tasks_scheduled").Add(int64(sm.stats.Attempts))
	reg.Counter("cluster.preemptions").Add(int64(sm.stats.Preemptions))
	reg.Counter("cluster.never_scheduled").Add(int64(sm.stats.NeverScheduled))
	reg.Counter("cluster.machine_failures").Add(int64(sm.stats.MachineFailures))
	for typ, n := range sm.stats.EventCounts {
		reg.Counter("cluster.events." + typ.String()).Add(int64(n))
	}
}

func (sm *sim) result() *Result {
	sm.publishStats()
	res := &Result{
		Config:        sm.cfg,
		Events:        sm.out,
		Usage:         sm.usage,
		MachineEvents: sm.machineEvs,
		Pending:       sm.pendAcc.Series(),
		Stats:         sm.stats,
	}
	for i, ms := range sm.machines {
		s := &MachineSeries{Machine: ms.m}
		for g := 0; g < 3; g++ {
			s.CPUByGroup[g] = sm.cpuAcc[i][g].Series()
			s.MemByGroup[g] = sm.memAcc[i][g].Series()
		}
		// Physical clamp: a machine cannot consume beyond its CPU
		// capacity; demand bursts above it saturate (this is why the
		// paper sees per-machine maxima exactly at capacity, Fig 7a).
		clampGroups(s.CPUByGroup[:], ms.m.CPU)
		clampGroups(s.MemByGroup[:], ms.m.Memory)
		s.MemAssigned = sm.assignAcc[i].Series()
		clampSeries(s.MemAssigned, ms.m.Memory)
		s.PageCache = sm.cacheAcc[i].Series()
		clampSeries(s.PageCache, ms.m.PageCache)
		s.Running = sm.runningAcc[i].Series()
		res.Machines = append(res.Machines, s)
	}
	return res
}

// clampGroups scales the per-group series down proportionally wherever
// their sum exceeds cap.
func clampGroups(groups []*timeseries.Series, cap float64) {
	if len(groups) == 0 {
		return
	}
	n := len(groups[0].Values)
	for i := 0; i < n; i++ {
		var sum float64
		for _, g := range groups {
			sum += g.Values[i]
		}
		if sum > cap {
			scale := cap / sum
			for _, g := range groups {
				g.Values[i] *= scale
			}
		}
	}
}

func clampSeries(s *timeseries.Series, cap float64) {
	for i, v := range s.Values {
		if v > cap {
			s.Values[i] = cap
		}
	}
}
